package xsim

import (
	"xsim/internal/checkpoint"
	"xsim/internal/fsmodel"
	"xsim/internal/powermodel"
	"xsim/internal/redundancy"
	"xsim/internal/reliability"
	"xsim/internal/softerror"
	"xsim/internal/trace"
	"xsim/internal/ulfm"
)

// TraceBuffer records simulator events for timeline analysis; attach one
// via Config.Trace and read it after the run (Events, OfRank, Counts,
// WriteCSV).
type TraceBuffer = trace.Buffer

// TraceEvent is one recorded trace event.
type TraceEvent = trace.Event

// TraceKind classifies a trace event.
type TraceKind = trace.Kind

// Trace event kinds, re-exported for OfKind queries.
const (
	TraceUser     = trace.KindUser
	TraceSend     = trace.KindSend
	TraceRecvPost = trace.KindRecvPost
	TraceComplete = trace.KindComplete
	TraceFailure  = trace.KindFailure
	TraceDetect   = trace.KindDetect
	TraceAbort    = trace.KindAbort
)

// NewTrace returns a trace buffer retaining at most max events (<= 0 for
// unbounded).
func NewTrace(max int) *TraceBuffer { return trace.New(max) }

// ReliabilitySystem is a component-based system reliability model: nodes
// composed of components with exponential/Weibull/lognormal time-to-
// failure distributions. Its CampaignSource method plugs into
// Campaign.DrawFailures, replacing the paper's worst-case uniform draw
// with model-driven failures.
type ReliabilitySystem = reliability.System

// ReliabilityNode is one node's component composition.
type ReliabilityNode = reliability.Node

// ReliabilityComponent is one component and its failure distribution.
type ReliabilityComponent = reliability.Component

// Failure distributions for reliability components.
type (
	// Exponential is the constant-hazard distribution.
	Exponential = reliability.Exponential
	// Weibull covers infant mortality (shape < 1) and wear-out
	// (shape > 1).
	Weibull = reliability.Weibull
	// LogNormal is the lognormal time-to-failure distribution.
	LogNormal = reliability.LogNormal
)

// PaperReliabilityNode returns a plausible compute-node reliability model
// whose 32,768-node system MTTF lands in the paper's 3,000–6,000 s regime.
func PaperReliabilityNode() ReliabilityNode { return reliability.PaperNode() }

// RedundantComm is a redMPI-style dual-redundant communicator: every
// logical rank is two replicas, and receivers digest-compare messages with
// their partner replica to detect silent data corruption online.
type RedundantComm = redundancy.Comm

// SDCError reports a detected silent data corruption in a redundant
// communicator.
type SDCError = redundancy.SDCError

// WrapRedundant builds the dual-redundant communicator for this process;
// the world size must be even (the upper half mirrors the lower half).
func WrapRedundant(env *Env) (*RedundantComm, error) { return redundancy.Wrap(env) }

// WrapReplicated builds an r-way replicated communicator: the world splits
// into Ranks/degree logical ranks of degree replicas each. Degree 2 is
// WrapRedundant.
func WrapReplicated(env *Env, degree int) (*RedundantComm, error) {
	return redundancy.WrapN(env, degree)
}

// ReplicaProtocol selects how a replicated communicator moves messages:
// ReplicaParallel (the default) sends one payload copy within each replica
// sphere and cross-checks digests, ReplicaMirror sends every copy to every
// receiver replica, which buys failover through surviving replicas (and
// majority-vote correction at degree ≥ 3) for r² message traffic.
type ReplicaProtocol = redundancy.Protocol

// Replica protocols.
const (
	ReplicaParallel = redundancy.Parallel
	ReplicaMirror   = redundancy.Mirror
)

// ReplicaFailedError reports that an operation found no live replica of a
// logical rank — the replica group is exhausted and failover is impossible.
type ReplicaFailedError = redundancy.ReplicaFailedError

// TagRangeError reports a user message tag outside [0, ReservedTagBase):
// the tags above are reserved for the replication layer's collective and
// digest traffic.
type TagRangeError = redundancy.TagRangeError

// ReservedTagBase is the first reserved message tag; user tags passed to a
// replicated communicator must be below it.
const ReservedTagBase = redundancy.UserTagLimit

// PowerModel is the per-node power model (compute/idle/overhead watts).
type PowerModel = powermodel.Model

// PowerReport aggregates a run's energy.
type PowerReport = powermodel.Report

// PaperPower returns a plausible power model for the paper's simulated
// node (100 W compute, 40 W idle, 20 W overhead).
func PaperPower() PowerModel { return powermodel.Paper() }

// This file re-exports the extension surfaces (ULFM recovery and
// soft-error injection) so applications only import the xsim package.

// RecoveryWork is one attempt of an application phase in a ULFM recovery
// loop; see RunWithRecovery.
type RecoveryWork = ulfm.Work

// RunWithRecovery runs work on c, recovering from process failures by
// revoking the communicator, shrinking it to the survivors, and retrying —
// the user-level failure mitigation alternative to checkpoint/restart (the
// paper's ULFM future work). See internal/ulfm for details.
func RunWithRecovery(c *Comm, maxAttempts int, work RecoveryWork) (*Comm, error) {
	return ulfm.RunWithRecovery(c, maxAttempts, work)
}

// IsProcFailed reports whether err is (or wraps) a detected process
// failure.
func IsProcFailed(err error) (*ProcFailedError, bool) { return ulfm.IsProcFailed(err) }

// IsRevoked reports whether err is (or wraps) a communicator revocation.
func IsRevoked(err error) bool { return ulfm.IsRevoked(err) }

// FlipFloat64 flips one bit of a float64 in place — the soft-error
// injection building block for studying silent data corruption in
// application state. bit must be in [0, 64).
func FlipFloat64(vals []float64, idx, bit int) (old, flipped float64) {
	return softerror.FlipFloat64(vals, idx, bit)
}

// FSModel is the flat file-system cost model (metadata latency,
// per-client and aggregate bandwidth); Config.FSModel and every FSTier
// carry one.
type FSModel = fsmodel.Model

// PaperPFS returns the parallel-file-system cost model used by the
// checkpoint-I/O ablation (1 ms metadata operations, 1 GB/s writes,
// 2 GB/s reads per client).
func PaperPFS() fsmodel.Model { return fsmodel.PaperPFS() }

// PaperPFSShared is PaperPFS with a finite aggregate backplane, so
// per-client bandwidth degrades as 1/clients once the shared links
// saturate — the configuration that breaks the zero-cost checkpoint
// assumption at scale.
func PaperPFSShared() fsmodel.Model { return fsmodel.PaperPFSShared() }

// FSTier is one level of a hierarchical checkpoint store: a cost model
// plus capacity and volatility.
type FSTier = fsmodel.Tier

// FSHierarchy is an ordered list of storage tiers, fastest (node-local)
// first, stable backing store (PFS) last.
type FSHierarchy = fsmodel.Hierarchy

// PaperTieredFS returns the three-tier hierarchy used by the checkpoint
// I/O ablation: node-local memory → burst buffer → parallel file system,
// in the spirit of SCR-style multilevel checkpointing.
func PaperTieredFS() FSHierarchy { return fsmodel.PaperTieredFS() }

// CheckpointFS gives a simulated process timed access to the simulated
// parallel file system for application-level checkpointing (full,
// synthetic, and incremental writes; validated reads; restart helpers).
type CheckpointFS = checkpoint.FS

// CheckpointMeta describes a checkpoint file.
type CheckpointMeta = checkpoint.Meta

// NewCheckpointFS returns the process's checkpoint file-system handle; the
// simulation must have a file-system store (Config.Store is created by
// default).
func NewCheckpointFS(env *Env) (*CheckpointFS, error) { return checkpoint.NewFS(env) }
