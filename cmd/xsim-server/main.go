// Command xsim-server runs the campaign service: simulation-as-a-service
// over the versioned wire-form CampaignSpec. Clients POST a spec to
// /v1/campaigns, poll /v1/campaigns/{id}, stream NDJSON progress from
// /v1/campaigns/{id}/events, and fetch the canonical result from
// /v1/campaigns/{id}/result. Results are content-addressed by the
// canonical spec encoding, so resubmitting an identical campaign — from
// any tenant — is served from cache without simulating anything.
//
// On SIGINT/SIGTERM the server drains gracefully: intake stops (new
// submissions get 503), queued jobs are cancelled, in-flight campaigns
// stop through the simulator's cancellation path, and completed results
// stay flushed in the store.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"xsim/internal/jobstore"
	"xsim/internal/service"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address")
	workers := flag.Int("workers", 2, "concurrent campaign executors")
	quota := flag.Int("quota", 0, "default per-tenant cap on unfinished jobs (0 = unlimited)")
	weights := flag.String("weights", "", "per-tenant scheduling weights, e.g. 'alice=3,bob=1'")
	quotas := flag.String("quotas", "", "per-tenant quota overrides, e.g. 'alice=10,bob=2'")
	data := flag.String("data", "", "directory for the persistent result store (default in-memory)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "grace period for shutdown drain")
	verbose := flag.Bool("v", false, "log service activity")
	flag.Parse()

	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "xsim-server: "+format+"\n", args...)
		}
	}

	var store jobstore.Store = jobstore.NewMem()
	if *data != "" {
		dir, err := jobstore.NewDir(*data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xsim-server: %v\n", err)
			os.Exit(1)
		}
		store = dir
	}

	weightMap, err := parseTenantInts(*weights)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xsim-server: -weights: %v\n", err)
		os.Exit(2)
	}
	quotaMap, err := parseTenantInts(*quotas)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xsim-server: -quotas: %v\n", err)
		os.Exit(2)
	}

	svc := service.New(service.Config{
		Workers: *workers,
		Store:   store,
		Queue: service.QueueConfig{
			DefaultQuota: *quota,
			Weights:      weightMap,
			Quotas:       quotaMap,
		},
		Logf: logf,
	})

	server := &http.Server{Addr: *addr, Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- server.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "xsim-server: listening on http://%s\n", *addr)

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "xsim-server: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "xsim-server: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := svc.Drain(drainCtx)
	shutdownErr := server.Shutdown(drainCtx)
	if err := errors.Join(drainErr, shutdownErr); err != nil {
		fmt.Fprintf(os.Stderr, "xsim-server: shutdown: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "xsim-server: drained")
}

// parseTenantInts parses 'name=value,name=value' flag syntax.
func parseTenantInts(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]int)
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("expected name=value, got %q", part)
		}
		n, err := strconv.Atoi(val)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("value for %q must be a positive integer, got %q", name, val)
		}
		out[name] = n
	}
	return out, nil
}
