// Command xsim-bitflip regenerates the paper's Table I: a fault (bit
// flip) injection campaign against victim application instances, reporting
// the injections-to-failure statistics (min/max/mean/median/mode/stddev).
//
//	xsim-bitflip
//	xsim-bitflip -victims 1000 -max 100 -seed 7
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"xsim"
	"xsim/internal/cliflags"
)

func main() {
	log.SetFlags(0)
	var (
		victims = flag.Int("victims", 100, "victim application instances (Table I: 100)")
		max     = flag.Int("max", 100, "injection cap per victim (Table I: 100)")
	)
	trunk := cliflags.Register(flag.CommandLine, cliflags.Options{Seed: 2013})
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	spec, err := trunk.Spec()
	if err != nil {
		log.Fatal(err)
	}
	res, err := xsim.RunTableIContext(ctx, xsim.TableIConfig{
		RunSpec:       spec,
		Victims:       *victims,
		MaxInjections: *max,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Table I: fault (bit flip) injection results")
	fmt.Println()
	fmt.Print(res.Table())
	if res.Survived > 0 {
		fmt.Printf("\n%d victims survived the %d-injection cap\n", res.Survived, *max)
	}
	fmt.Println("\nfatal flips by image region:")
	for _, region := range []string{"registers", "stack", "code", "data", "heap"} {
		fmt.Printf("  %-10s %d\n", region, res.KillsByRegion[region])
	}
	fmt.Println("\ninjections-to-failure distribution:")
	fmt.Print(res.Histogram(10, 40))
	fmt.Printf("\np50 = %.0f, p90 = %.0f, p99 = %.0f injections\n",
		res.Percentile(50), res.Percentile(90), res.Percentile(99))
}
