// Command xsim-heat runs the heat-equation application (the paper's
// targeted application) inside the simulator and regenerates the paper's
// evaluation:
//
//	xsim-heat -table2                 # Table II (scaled to -ranks)
//	xsim-heat -table2 -ranks 32768    # Table II at the paper's full scale
//	xsim-heat -table2 -pool 4         # four grid cells simulated at once
//	xsim-heat -phases                 # §V-D failure-mode classification
//	xsim-heat -io-ablation            # Table II with checkpoint-I/O cost on
//	                                  # (free vs flat PFS vs tiered vs tiered+incremental)
//	xsim-heat -mttf 3000 -interval 125
//	xsim-heat -failures "12@350,99@1200"
//
// The failure schedule can also come from the XSIM_FAILURES environment
// variable, mirroring xSim's command-line/environment injection interface.
// SIGINT cancels the run at the next simulation window; partial results
// are discarded.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"xsim"
	"xsim/internal/cliflags"
)

func main() {
	log.SetFlags(0)
	var (
		iterations = flag.Int("iterations", 1000, "total iteration count")
		interval   = flag.Int("interval", 0, "checkpoint/halo-exchange interval (default: iterations)")
		mttfSecs   = flag.Float64("mttf", 0, "system MTTF in seconds for random failure injection (0 = none)")
		failures   = flag.String("failures", os.Getenv("XSIM_FAILURES"), "failure schedule as rank@seconds,... (also via $XSIM_FAILURES)")
		table2     = flag.Bool("table2", false, "regenerate Table II (checkpoint interval × system MTTF sweep)")
		ioAblation = flag.Bool("io-ablation", false, "rerun the Table II sweep with checkpoint-I/O cost on (free vs flat PFS vs tiered vs tiered+incremental)")
		payloadMB  = flag.Int("payload-mb", 256, "modelled per-rank checkpoint payload in MiB for -io-ablation")
		sweep      = flag.Bool("sweep", false, "sweep the checkpoint interval against Daly's analytic optimum")
		phases     = flag.Bool("phases", false, "run the §V-D failure-mode classification")
		trials     = flag.Int("trials", 10, "trials for -phases")
		withIO     = flag.Bool("io", false, "enable the file-system cost model (checkpoint-I/O ablation)")
	)
	trunk := cliflags.Register(flag.CommandLine, cliflags.Options{
		Ranks:     512,
		RanksHelp: "simulated MPI ranks (32768 = the paper's scale)",
		Workers:   1,
		Seed:      133,
	})
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	spec, err := trunk.Spec()
	if err != nil {
		log.Fatal(err)
	}

	switch {
	case *ioAblation:
		cfg := xsim.CheckpointIOAblationConfig{
			RunSpec:           spec,
			Iterations:        *iterations,
			CheckpointPayload: *payloadMB << 20,
		}
		fmt.Printf("checkpoint-I/O ablation: Table II with the I/O cost on\n")
		fmt.Printf("(%d simulated MPI ranks, %d iterations, %d MiB/rank checkpoints, seed %d)\n\n",
			spec.Ranks, *iterations, *payloadMB, spec.Seed)
		tab, err := xsim.RunCheckpointIOAblationContext(ctx, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(tab.Render())
	case *table2:
		cfg := xsim.TableIIConfig{
			RunSpec:    spec,
			Iterations: *iterations,
		}
		if *withIO {
			cfg.FSModel = xsim.PaperPFS()
		}
		fmt.Printf("Table II: varying the checkpoint interval and system MTTF\n")
		fmt.Printf("(%d simulated MPI ranks, %d iterations, seed %d)\n\n", spec.Ranks, *iterations, spec.Seed)
		tab, err := xsim.RunTableIIContext(ctx, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(tab.Render())
	case *sweep:
		cfg := xsim.IntervalSweepConfig{
			RunSpec:    spec,
			Iterations: *iterations,
			MTTF:       xsim.Seconds(*mttfSecs),
		}
		s, err := xsim.RunIntervalSweepContext(ctx, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(s.Render())
	case *phases:
		fi, err := xsim.RunFirstImpressionsContext(ctx, xsim.FirstImpressionsConfig{
			RunSpec:    spec,
			Iterations: *iterations,
			Interval:   *interval,
			Trials:     *trials,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(fi.Render())
	default:
		runSingle(ctx, spec, *iterations, *interval, *mttfSecs, *failures, *withIO)
	}
}

// runSingle runs one heat campaign (with restarts if failures strike) and
// reports the paper's per-row metrics.
func runSingle(ctx context.Context, spec xsim.RunSpec, iterations, interval int, mttfSecs float64, failures string, withIO bool) {
	if interval == 0 {
		interval = iterations
	}
	hc, err := xsim.HeatWorkloadFor(spec.Ranks)
	if err != nil {
		log.Fatal(err)
	}
	hc.Iterations = iterations
	hc.ExchangeInterval = interval
	hc.CheckpointInterval = interval

	sched, err := xsim.ParseSchedule(failures)
	if err != nil {
		log.Fatal(err)
	}
	base := xsim.Config{
		Ranks:        spec.Ranks,
		Workers:      spec.Workers,
		Failures:     sched,
		CallOverhead: xsim.PaperCallOverhead,
		Logf:         spec.Logf,
	}
	if withIO {
		base.FSModel = xsim.PaperPFS()
	}
	camp := xsim.Campaign{
		Base:             base,
		MTTF:             xsim.Seconds(mttfSecs),
		Seed:             spec.Seed,
		CheckpointPrefix: "heat",
	}
	if spec.ProgMode {
		camp.ProgFor = func(int) func(rank int) xsim.Prog { return xsim.RunHeatProg(hc) }
	} else {
		camp.AppFor = func(int) xsim.App { return xsim.RunHeat(hc) }
	}
	res, err := camp.RunContext(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("heat: %d ranks, %d iterations, checkpoint interval %d\n", spec.Ranks, iterations, interval)
	for _, run := range res.Runs {
		inj := "none"
		if run.Injected != nil {
			inj = run.Injected.String()
		}
		fmt.Printf("  run %d: start %v end %v (injected: %s; %d completed, %d failed, %d aborted)\n",
			run.Run, run.Start, run.End, inj, run.Completed, run.Failed, run.Aborted)
	}
	fmt.Printf("E2 = %.0f s over %d runs, F = %d, MTTF_a = %.0f s\n",
		res.E2.Seconds(), len(res.Runs), res.Failures, res.MTTFa().Seconds())
}
