// Command xsim-reliability explores the component-based system reliability
// models: it estimates the system MTTF of an n-node machine built from the
// default component model, and can emit failure schedules for the
// simulator's injection interface.
//
//	xsim-reliability -nodes 32768
//	xsim-reliability -nodes 32768 -schedule 5 -seed 7
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"

	"xsim"
	"xsim/internal/reliability"
	"xsim/internal/vclock"
)

func main() {
	log.SetFlags(0)
	var (
		nodes    = flag.Int("nodes", 32768, "system size in nodes (one simulated MPI rank per node)")
		samples  = flag.Int("samples", 100, "Monte-Carlo samples for the system MTTF estimate")
		schedule = flag.Int("schedule", 0, "emit this many first-failure draws as rank@seconds schedules")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	sys := reliability.System{Nodes: *nodes, Node: reliability.PaperNode()}
	if err := sys.Validate(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("node model (series system):\n")
	for _, c := range sys.Node.Components {
		fmt.Printf("  %-8s %s (mean TTF %.1f years)\n",
			c.Name, c.Dist.Name(), c.Dist.Mean().Seconds()/(365*24*3600))
	}

	rng := rand.New(rand.NewSource(*seed))
	nodeSamples := make([]float64, 200)
	for i := range nodeSamples {
		ttf, _ := sys.Node.SampleTTF(rng)
		nodeSamples[i] = ttf.Seconds() / (365 * 24 * 3600)
	}
	var nodeSum float64
	for _, s := range nodeSamples {
		nodeSum += s
	}
	fmt.Printf("\nnode MTTF ≈ %.1f years (sampled)\n", nodeSum/float64(len(nodeSamples)))

	mttf := sys.EstimateSystemMTTF(rand.New(rand.NewSource(*seed)), *samples)
	fmt.Printf("system MTTF at %d nodes ≈ %.0f s (%.2f hours) over %d samples\n",
		*nodes, mttf.Seconds(), mttf.Seconds()/3600, *samples)
	fmt.Printf("(the paper's Table II experiments use system MTTFs of 3,000 s and 6,000 s)\n")

	if *schedule > 0 {
		fmt.Printf("\nfirst-failure schedules (rank@seconds, for xsim-heat -failures / $%s):\n", "XSIM_FAILURES")
		src := sys.CampaignSource(*seed)
		for run := 0; run < *schedule; run++ {
			if ctx.Err() != nil {
				log.Fatal(ctx.Err())
			}
			s := src(run, vclock.Time(0))
			f := sys.FirstFailure(rand.New(rand.NewSource(*seed+int64(run))), 0)
			fmt.Printf("  run %d: %s (component: %s)\n", run, xsim.Schedule(s).String(), f.Component)
		}
	}
}
