// Command xsim-reliability explores the component-based system reliability
// models: it estimates the system MTTF of an n-node machine built from the
// default component model, and can emit failure schedules for the
// simulator's injection interface. With -crossover it instead runs the
// replication-vs-checkpoint crossover study: the replicated stencil under
// Poisson failure injection across an MTTF sweep, reporting where r-way
// replication overtakes Daly-optimal checkpoint/restart.
//
//	xsim-reliability -nodes 32768
//	xsim-reliability -nodes 32768 -schedule 5 -seed 7
//	xsim-reliability -crossover -ranks 24 -degrees 2,3
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"xsim"
	"xsim/internal/cliflags"
	"xsim/internal/reliability"
	"xsim/internal/vclock"
)

func main() {
	log.SetFlags(0)
	var (
		nodes     = flag.Int("nodes", 32768, "system size in nodes (one simulated MPI rank per node)")
		samples   = flag.Int("samples", 100, "Monte-Carlo samples for the system MTTF estimate")
		schedule  = flag.Int("schedule", 0, "emit this many first-failure draws as rank@seconds schedules")
		crossover = flag.Bool("crossover", false, "run the replication-vs-checkpoint crossover study")
		degrees   = flag.String("degrees", "2,3", "crossover: comma-separated replication degrees")
		mttfs     = flag.String("mttfs", "", "crossover: comma-separated system MTTFs in seconds (default 50..1600 doubling)")
	)
	trunk := cliflags.Register(flag.CommandLine, cliflags.Options{
		Ranks:     24,
		RanksHelp: "crossover: physical world size",
		Seed:      1,
	})
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	spec, err := trunk.Spec()
	if err != nil {
		log.Fatal(err)
	}
	seed := &spec.Seed

	if *crossover {
		runCrossover(ctx, spec, *degrees, *mttfs)
		return
	}

	sys := reliability.System{Nodes: *nodes, Node: reliability.PaperNode()}
	if err := sys.Validate(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("node model (series system):\n")
	for _, c := range sys.Node.Components {
		fmt.Printf("  %-8s %s (mean TTF %.1f years)\n",
			c.Name, c.Dist.Name(), c.Dist.Mean().Seconds()/(365*24*3600))
	}

	rng := rand.New(rand.NewSource(*seed))
	nodeSamples := make([]float64, 200)
	for i := range nodeSamples {
		ttf, _ := sys.Node.SampleTTF(rng)
		nodeSamples[i] = ttf.Seconds() / (365 * 24 * 3600)
	}
	var nodeSum float64
	for _, s := range nodeSamples {
		nodeSum += s
	}
	fmt.Printf("\nnode MTTF ≈ %.1f years (sampled)\n", nodeSum/float64(len(nodeSamples)))

	mttf := sys.EstimateSystemMTTF(rand.New(rand.NewSource(*seed)), *samples)
	fmt.Printf("system MTTF at %d nodes ≈ %.0f s (%.2f hours) over %d samples\n",
		*nodes, mttf.Seconds(), mttf.Seconds()/3600, *samples)
	fmt.Printf("(the paper's Table II experiments use system MTTFs of 3,000 s and 6,000 s)\n")

	if *schedule > 0 {
		fmt.Printf("\nfirst-failure schedules (rank@seconds, for xsim-heat -failures / $%s):\n", "XSIM_FAILURES")
		src := sys.CampaignSource(*seed)
		for run := 0; run < *schedule; run++ {
			if ctx.Err() != nil {
				log.Fatal(ctx.Err())
			}
			s := src(run, vclock.Time(0))
			f := sys.FirstFailure(rand.New(rand.NewSource(*seed+int64(run))), 0)
			fmt.Printf("  run %d: %s (component: %s)\n", run, xsim.Schedule(s).String(), f.Component)
		}
	}
}

// parseInts splits a comma-separated integer list.
func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q: %v", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// runCrossover runs the replication-vs-checkpoint crossover study and
// prints the rendered table.
func runCrossover(ctx context.Context, spec xsim.RunSpec, degrees, mttfs string) {
	degs, err := parseInts(degrees)
	if err != nil {
		log.Fatalf("-degrees: %v", err)
	}
	var ms []xsim.Duration
	if mttfs != "" {
		secs, err := parseInts(mttfs)
		if err != nil {
			log.Fatalf("-mttfs: %v", err)
		}
		for _, s := range secs {
			ms = append(ms, xsim.Duration(s)*xsim.Second)
		}
	}
	// The crossover has always narrated its sweep; keep that unless the
	// caller supplied a logger explicitly.
	if spec.Logf == nil {
		spec.Logf = log.Printf
	}
	table, err := xsim.RunReplicationCrossoverContext(ctx, xsim.ReplicationCrossoverConfig{
		RunSpec: spec,
		Degrees: degs,
		MTTFs:   ms,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(table.Render())
	fmt.Println("E2 is the simulated completion time including restarts; the ◀ best arm")
	fmt.Println("flips from replication to checkpoint/restart as the MTTF grows.")
}
