// Command xsim-run executes one of the built-in demo applications inside
// the simulator with optional failure injection — the quickest way to poke
// at the simulator from the command line:
//
//	xsim-run -app ring -ranks 64
//	xsim-run -app allreduce -ranks 1024 -failures "7@0.001"
//	xsim-run -app ulfm -ranks 16 -failures "3@0.5"
//
// With -campaign it instead executes a wire-form campaign spec (the JSON
// document xsim-server accepts at POST /v1/campaigns) and writes the
// canonical outcome encoding to stdout — byte-identical to what the
// server's /v1/campaigns/{id}/result endpoint returns for the same spec:
//
//	xsim-run -campaign table2.json
//	echo '{"version":1,"kind":"table1"}' | xsim-run -campaign -
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"

	"xsim"
	"xsim/internal/cliflags"
)

func main() {
	log.SetFlags(0)
	var (
		app      = flag.String("app", "ring", "application: ring, allreduce, ulfm")
		rounds   = flag.Int("rounds", 3, "communication rounds")
		failures = flag.String("failures", os.Getenv("XSIM_FAILURES"), "failure schedule as rank@seconds,...")
		traceOut = flag.String("trace", "", "write a per-operation event timeline to this file (.json for Chrome trace-event format, anything else for CSV)")
		metrics  = flag.Bool("metrics", false, "print engine and MPI counters (and the per-rank trace summary when -trace is set)")
		campaign = flag.String("campaign", "", "run a wire-form campaign spec from this file ('-' = stdin) and print the canonical outcome JSON")
	)
	trunk := cliflags.Register(flag.CommandLine, cliflags.Options{
		Ranks:   64,
		Workers: 1,
		NoSeed:  true,
		NoPool:  true,
	})
	flag.Parse()

	if *campaign != "" {
		runCampaign(*campaign, trunk.Logf())
		return
	}

	spec, err := trunk.Spec()
	if err != nil {
		log.Fatal(err)
	}
	sched, err := xsim.ParseSchedule(*failures)
	if err != nil {
		log.Fatal(err)
	}
	cfg := xsim.Config{Ranks: spec.Ranks, Workers: spec.Workers, Failures: sched, Logf: spec.Logf}
	var tr *xsim.TraceBuffer
	if *traceOut != "" || *metrics {
		tr = xsim.NewTrace(1 << 20)
		cfg.Trace = tr
	}
	sim, err := xsim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	var body xsim.App
	switch *app {
	case "ring":
		body = ringApp(*rounds)
	case "allreduce":
		body = allreduceApp(*rounds)
	case "ulfm":
		body = ulfmApp(*rounds)
	default:
		log.Fatalf("unknown app %q (ring, allreduce, ulfm)", *app)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, err := sim.RunContext(ctx, body)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on %d ranks: simulated time %v (min %v avg %v), wall %v\n",
		*app, cfg.Ranks, res.SimTime, res.MinTime, res.AvgTime, res.WallTime)
	fmt.Printf("%d completed, %d failed, %d aborted\n", res.Completed, res.Failed, res.Aborted)
	rep := res.Energy(xsim.PaperPower())
	fmt.Printf("energy: %s\n", rep)

	if *metrics {
		fmt.Print(res.MetricsReport())
		if err := tr.WriteSummary(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
	if *traceOut != "" {
		if err := writeTrace(tr, *traceOut); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace: %d events written to %s (%d dropped)\n", tr.Len(), *traceOut, tr.Dropped())
	}
}

// runCampaign executes a wire-form campaign spec and prints its
// canonical outcome encoding — the same bytes xsim-server stores and
// serves for the identical spec, which is how the CI smoke proves the
// two transports agree bit-for-bit. SIGINT cancels through the
// simulator's cancellation path.
func runCampaign(path string, logf func(format string, args ...any)) {
	var spec *xsim.CampaignSpec
	var err error
	if path == "-" {
		spec, err = xsim.ReadCampaignSpec(os.Stdin)
	} else {
		var data []byte
		data, err = os.ReadFile(path)
		if err == nil {
			spec, err = xsim.DecodeCampaignSpec(data)
		}
	}
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	out, err := spec.RunWith(ctx, xsim.RunOptions{Logf: logf})
	if err != nil {
		log.Fatal(err)
	}
	data, err := out.Canonical()
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(append(data, '\n'))
}

// writeTrace exports the timeline, picking the format from the file
// extension: .json gets the Chrome trace-event format (load it in
// chrome://tracing or Perfetto), everything else CSV.
func writeTrace(tr *xsim.TraceBuffer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.EqualFold(filepath.Ext(path), ".json") {
		err = tr.WriteChromeTrace(f)
	} else {
		err = tr.WriteCSV(f)
	}
	if err != nil {
		return err
	}
	return f.Close()
}

// ringApp circulates a token around the rank ring, computing between hops.
func ringApp(rounds int) xsim.App {
	return func(e *xsim.Env) {
		defer e.Finalize()
		c := e.World()
		n := e.Size()
		next := (e.Rank() + 1) % n
		prev := (e.Rank() - 1 + n) % n
		for round := 0; round < rounds; round++ {
			e.Compute(1e7)
			if e.Rank() == 0 {
				if err := c.Send(next, round, []byte{byte(round)}); err != nil {
					return
				}
				if _, err := c.Recv(prev, round); err != nil {
					return
				}
			} else {
				msg, err := c.Recv(prev, round)
				if err != nil {
					return
				}
				if err := c.Send(next, round, msg.Data); err != nil {
					return
				}
			}
		}
	}
}

// allreduceApp repeatedly sums a vector across all ranks.
func allreduceApp(rounds int) xsim.App {
	return func(e *xsim.Env) {
		defer e.Finalize()
		c := e.World()
		for round := 0; round < rounds; round++ {
			e.Compute(1e7)
			sum, err := c.Allreduce([]float64{float64(e.Rank())}, xsim.OpSum)
			if err != nil {
				return
			}
			n := float64(e.Size())
			if want := n * (n - 1) / 2; sum[0] != want && e.Rank() == 0 {
				e.Logf("allreduce mismatch: %v != %v", sum[0], want)
			}
		}
	}
}

// ulfmApp runs allreduce rounds under ULFM recovery: when a rank fails,
// the survivors revoke, shrink, and continue on the smaller communicator.
func ulfmApp(rounds int) xsim.App {
	return func(e *xsim.Env) {
		defer e.Finalize()
		c := e.World()
		c.SetErrorHandler(xsim.ErrorsReturn)
		final, err := xsim.RunWithRecovery(c, 4, func(c *xsim.Comm, attempt int) error {
			for round := 0; round < rounds; round++ {
				e.Compute(1e7)
				if _, err := c.Allreduce([]float64{1}, xsim.OpSum); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			e.Logf("recovery failed: %v", err)
			return
		}
		if final.Rank() == 0 && final.Size() != e.Size() {
			e.Logf("completed on a shrunk communicator of %d ranks (was %d)", final.Size(), e.Size())
		}
	}
}
