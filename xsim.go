// Package xsim is a simulation-based performance/resilience investigation
// toolkit for hardware/software co-design of high-performance computing
// systems — a from-scratch Go reproduction of the system described in
// "Toward a Performance/Resilience Tool for Hardware/Software Co-Design of
// High-Performance Computing Systems" (Engelmann & Naughton, ICPP 2013).
//
// Applications written against the simulated MPI layer run as virtual
// processes with their own virtual clocks inside a deterministic
// discrete-event engine, against configurable processor, network and file
// system models. The resilience features of the paper are all available:
// MPI process failure injection (explicit schedules or random failures
// drawn from a system MTTF), purely timeout-based failure detection with
// simulator-internal notification, simulated MPI abort, and
// application-level checkpoint/restart with continuous virtual time across
// restarts.
//
// A minimal simulation looks like:
//
//	sim, err := xsim.New(xsim.Config{Ranks: 64})
//	if err != nil { ... }
//	res, err := sim.Run(func(env *xsim.Env) {
//	    world := env.World()
//	    if env.Rank() == 0 {
//	        world.Send(1, 0, []byte("hello"))
//	    } else if env.Rank() == 1 {
//	        msg, _ := world.Recv(0, 0)
//	        env.Logf("got %q", msg.Data)
//	    }
//	    env.Finalize()
//	})
//	fmt.Println("simulated time:", res.SimTime)
package xsim

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"xsim/internal/core"
	"xsim/internal/fault"
	"xsim/internal/fsmodel"
	"xsim/internal/heat"
	"xsim/internal/mpi"
	"xsim/internal/netmodel"
	"xsim/internal/procmodel"
	"xsim/internal/stats"
	"xsim/internal/topology"
	"xsim/internal/vclock"
)

// Re-exported simulation types: applications only ever import this
// package.
type (
	// Env is the per-process handle passed to the application.
	Env = mpi.Env
	// Comm is a simulated MPI communicator.
	Comm = mpi.Comm
	// Message is a received message.
	Message = mpi.Message
	// Request is a nonblocking operation handle.
	Request = mpi.Request
	// ProcFailedError reports a detected process failure.
	ProcFailedError = mpi.ProcFailedError
	// Time is a virtual timestamp.
	Time = vclock.Time
	// Duration is a virtual time span.
	Duration = vclock.Duration
	// Schedule is a failure-injection schedule (rank@time pairs).
	Schedule = fault.Schedule
	// Injection is one scheduled process failure.
	Injection = fault.Injection
	// Store is the simulated parallel file system's persistent contents.
	Store = fsmodel.Store
	// Prog is a program-mode rank: a resumable step function instead of
	// a goroutine-backed closure. See Sim.RunProgs.
	Prog = mpi.Prog
	// WaitState, SleepState, RecvState, SendState, ProbeState and
	// CollectiveState are the resumable blocking-operation states a Prog
	// parks on; each is the step-based twin of the corresponding
	// closure-mode call.
	WaitState       = mpi.WaitState
	SleepState      = mpi.SleepState
	RecvState       = mpi.RecvState
	SendState       = mpi.SendState
	ProbeState      = mpi.ProbeState
	CollectiveState = mpi.CollectiveState
	// ClosureOnlyError is the typed panic value raised when a program
	// VP enters an operation that only closure mode can block on.
	ClosureOnlyError = mpi.ClosureOnlyError
)

// Wildcards and error handlers, re-exported.
const (
	AnySource      = mpi.AnySource
	AnyTag         = mpi.AnyTag
	ErrorsAreFatal = mpi.ErrorsAreFatal
	ErrorsReturn   = mpi.ErrorsReturn
)

// Virtual-time units, re-exported.
const (
	Microsecond = vclock.Microsecond
	Millisecond = vclock.Millisecond
	Second      = vclock.Second
	Minute      = vclock.Minute
	Hour        = vclock.Hour
)

// Reduction operators, re-exported.
var (
	OpSum = mpi.OpSum
	OpMax = mpi.OpMax
	OpMin = mpi.OpMin
)

// Never is the sentinel virtual time for "not scheduled" (e.g. the
// predicted failure time of a run in which no failure was drawn).
const Never = vclock.Never

// Seconds converts float seconds to a virtual duration.
func Seconds(s float64) Duration { return vclock.FromSeconds(s) }

// ParseSchedule reads a failure schedule in "rank@seconds,..." syntax.
func ParseSchedule(s string) (Schedule, error) { return fault.Parse(s) }

// NewStore returns an empty simulated parallel file system, shared across
// simulation runs to support checkpoint/restart.
func NewStore() *Store { return fsmodel.NewStore() }

// App is a simulated MPI application: the function runs once per rank.
type App = func(*Env)

// Config parameterises a simulation.
type Config struct {
	// Ranks is the number of simulated MPI processes (required).
	Ranks int
	// Workers is the number of engine partitions executing virtual
	// processes concurrently under conservative synchronisation; 0 or 1
	// runs sequentially. Results are identical either way.
	Workers int
	// Net is the network model; nil uses the paper's link parameters
	// (1 µs links, 32 GB/s, 256 kB eager threshold) on a torus sized to
	// Ranks (the paper's 32×32×32 torus when Ranks is 32,768).
	Net *netmodel.Model
	// Proc is the processor model; the zero value uses the paper's
	// (a node 1000× slower than a 1.7 GHz Opteron core).
	Proc procmodel.Model
	// Store is the simulated parallel file system shared across runs;
	// nil means the simulation gets a fresh private one.
	Store *Store
	// FSModel is the file-system cost model; the zero value charges
	// nothing, matching the paper's Table II configuration.
	FSModel fsmodel.Model
	// FSHierarchy, when non-empty, enables hierarchical multi-tier
	// checkpoint storage (node-local memory → burst buffer → PFS) with
	// staged writes and asynchronous drains; it takes precedence over
	// FSModel on the checkpoint path.
	FSHierarchy fsmodel.Hierarchy
	// Failures is an explicit failure-injection schedule.
	Failures Schedule
	// StartClock initialises the virtual clocks, for restarts (the
	// restart helpers manage it automatically).
	StartClock Time
	// CallOverhead is the per-MPI-call CPU cost (simulated MPI software
	// overhead); it dominates large linear collectives.
	CallOverhead Duration
	// Collectives selects linear (default, as in the paper) or
	// binomial-tree collective algorithms.
	Collectives mpi.CollectiveAlgo
	// NotifyDelay overrides the simulator-internal notification latency
	// (default: the system link latency).
	NotifyDelay Duration
	// Logf, when set, receives the simulator's informational messages
	// (failure injections, aborts, shutdown statistics).
	Logf func(format string, args ...any)
	// Trace, when set, records one event per MPI operation for timeline
	// analysis (see NewTrace).
	Trace *TraceBuffer
	// Validate compiles the simulator's internal invariant checks into
	// the run: engine-level (per-VP clock monotonicity, no event emitted
	// before its emitter's current time, parallel-window horizon safety)
	// and MPI-level (posted-receive index consistency, unexpected-queue
	// conservation, pending-request sweep at Finalize). A violation stops
	// the run with a diagnostic naming the rank, event, and virtual time.
	// When false — the default — the checks cost nothing.
	Validate bool
}

// DefaultNet returns the paper's network parameters on a torus sized for n
// ranks: the paper's 32×32×32 torus when it fits n exactly, otherwise a
// near-cubic torus with exactly n nodes.
func DefaultNet(n int) *netmodel.Model {
	net := netmodel.Paper()
	if n != net.Topo.Nodes() {
		x, y, z := factor3(n)
		net.Topo = topology.NewTorus3D(x, y, z)
	}
	return net
}

// factor3 splits n into three factors x >= y >= z as close to cubic as
// possible: z is the largest divisor at most the cube root, y the largest
// divisor of the remainder at most its square root.
func factor3(n int) (x, y, z int) {
	z = 1
	for d := 1; d*d*d <= n; d++ {
		if n%d == 0 {
			z = d
		}
	}
	rest := n / z
	y = 1
	for d := 1; d*d <= rest; d++ {
		if rest%d == 0 {
			y = d
		}
	}
	x = rest / y
	// Order the factors (the remainder split can undercut z, e.g.
	// 1057 = 151×1×7).
	if y < z {
		y, z = z, y
	}
	if x < y {
		x, y = y, x
	}
	if y < z {
		y, z = z, y
	}
	return x, y, z
}

// Sim is one configured simulation run.
type Sim struct {
	cfg   Config
	world *mpi.World
	store *Store
}

// Result summarises one simulation run.
type Result struct {
	// SimTime is the simulated time of the application exit: the
	// maximum simulated MPI process time, which restarts persist for
	// continuous virtual timing.
	SimTime Time
	// MinTime and AvgTime complete the per-process timing statistics
	// (minimum, maximum, average) the simulator prints at shutdown.
	MinTime, AvgTime Time
	// Completed, Failed and Aborted count ranks by how they terminated.
	Completed, Failed, Aborted int
	// PerRank holds each rank's final virtual clock.
	PerRank []Time
	// Deaths holds each rank's termination reason ("completed", "failed",
	// "aborted", "killed", "panicked"), indexed by rank.
	Deaths []string
	// Busy and Waited hold each rank's virtual time spent executing and
	// blocked, respectively; the power model turns them into energy.
	Busy, Waited []Duration
	// StartClock is the virtual time the run began at (non-zero for
	// restarts).
	StartClock Time
	// WallTime is the native execution time of the simulation itself.
	WallTime time.Duration
	// Engine holds the discrete-event engine's counters (events
	// dispatched, pool hits/misses, heap high-water depths, parallel
	// window statistics).
	Engine EngineMetrics
	// MPI holds the simulated MPI layer's counters (traffic by protocol,
	// collectives, unexpected-queue high-water, failure detection
	// latencies).
	MPI MPIMetrics
}

// EngineMetrics is the discrete-event engine's counter snapshot.
type EngineMetrics = core.MetricsSnapshot

// MPIMetrics is the simulated MPI layer's counter snapshot.
type MPIMetrics = mpi.MetricsSnapshot

// FailureMetric reports one injected failure's detection behaviour.
type FailureMetric = mpi.FailureMetric

// Energy evaluates a power model over the run: per-node compute/idle
// draws applied to each rank's busy/wait time — the
// performance/resilience/power view the paper works toward.
func (r *Result) Energy(m PowerModel) PowerReport {
	return m.SystemEnergy(r.Busy, r.Waited, r.SimTime.Sub(r.StartClock))
}

// Success reports whether every rank finished cleanly.
func (r *Result) Success() bool { return r.Failed == 0 && r.Aborted == 0 }

// New validates cfg and builds a simulation. A Sim runs exactly once.
func New(cfg Config) (*Sim, error) {
	if cfg.Ranks <= 0 {
		return nil, fmt.Errorf("xsim: Ranks must be positive, got %d", cfg.Ranks)
	}
	if cfg.Net == nil {
		cfg.Net = DefaultNet(cfg.Ranks)
	}
	if (cfg.Proc == procmodel.Model{}) {
		cfg.Proc = procmodel.Paper()
	}
	if cfg.Store == nil {
		cfg.Store = NewStore()
	}
	lookahead := Duration(0)
	if cfg.Workers > 1 {
		lookahead = cfg.Net.System.Latency
		if cfg.Net.OnNode.Latency < lookahead {
			lookahead = cfg.Net.OnNode.Latency
		}
		if cfg.NotifyDelay > 0 && cfg.NotifyDelay < lookahead {
			lookahead = cfg.NotifyDelay
		}
		if lookahead <= 0 {
			return nil, fmt.Errorf("xsim: Workers > 1 requires positive network latencies for conservative synchronisation")
		}
	}
	eng, err := core.New(core.Config{
		NumVPs:     cfg.Ranks,
		Workers:    cfg.Workers,
		Lookahead:  lookahead,
		StartClock: cfg.StartClock,
		Logf:       cfg.Logf,
		Validate:   cfg.Validate,
	})
	if err != nil {
		return nil, err
	}
	wcfg := mpi.WorldConfig{
		Net:          cfg.Net,
		Proc:         cfg.Proc,
		NotifyDelay:  cfg.NotifyDelay,
		CallOverhead: cfg.CallOverhead,
		Collectives:  cfg.Collectives,
		FSStore:      cfg.Store,
		FSModel:      cfg.FSModel,
		FSHierarchy:  cfg.FSHierarchy,
		Validate:     cfg.Validate,
	}
	if cfg.Trace != nil {
		wcfg.Tracer = cfg.Trace
	}
	world, err := mpi.NewWorld(eng, wcfg)
	if err != nil {
		return nil, err
	}
	if err := fault.Apply(eng, cfg.Failures); err != nil {
		return nil, err
	}
	return &Sim{cfg: cfg, world: world, store: cfg.Store}, nil
}

// Store returns the simulation's file system store.
func (s *Sim) Store() *Store { return s.store }

// Run executes app on every rank and drives the simulation to completion.
// It is RunContext without cancellation.
func (s *Sim) Run(app App) (*Result, error) {
	return s.RunContext(context.Background(), app)
}

// RunContext executes app on every rank and drives the simulation to
// completion, honouring ctx: when the context is cancelled (or a deadline
// passes), the discrete-event engine stops cooperatively at the next
// simulation window boundary, tears the surviving virtual processes down,
// and RunContext returns the partial Result alongside an error wrapping
// ErrCancelled. A deadlocked simulation likewise returns its partial
// Result with an error wrapping ErrDeadlock.
func (s *Sim) RunContext(ctx context.Context, app App) (*Result, error) {
	return s.runContext(ctx, func() (*core.Result, error) { return s.world.Run(app) })
}

// RunProgs executes one program-mode rank per virtual process: newProg is
// called once per rank and the returned Prog is stepped to completion.
// Program mode trades the per-rank goroutine (and its stack) for a few
// hundred bytes of parked state, which is what makes 256k–1M-rank
// experiments practical; a conforming Prog is observationally identical
// to its closure twin.
func (s *Sim) RunProgs(newProg func(rank int) Prog) (*Result, error) {
	return s.RunProgsContext(context.Background(), newProg)
}

// RunProgsContext is RunProgs honouring ctx the way RunContext does.
func (s *Sim) RunProgsContext(ctx context.Context, newProg func(rank int) Prog) (*Result, error) {
	return s.runContext(ctx, func() (*core.Result, error) { return s.world.RunProgs(newProg) })
}

func (s *Sim) runContext(ctx context.Context, run func() (*core.Result, error)) (*Result, error) {
	if ctx.Err() != nil {
		return nil, fmt.Errorf("%w before the run started: %v", ErrCancelled, context.Cause(ctx))
	}
	wallStart := time.Now()
	if ctx.Done() != nil {
		// The watcher forwards the context's cancellation to the engine's
		// cooperative stop flag; closing watchDone on return reclaims it.
		watchDone := make(chan struct{})
		defer close(watchDone)
		go func() {
			select {
			case <-ctx.Done():
				s.world.Engine().Cancel()
			case <-watchDone:
			}
		}()
	}
	res, err := run()
	if err != nil && res == nil {
		return nil, err
	}
	deaths := make([]string, len(res.Deaths))
	for i, d := range res.Deaths {
		deaths[i] = d.String()
	}
	result := &Result{
		SimTime:    res.MaxClock,
		MinTime:    res.MinClock,
		AvgTime:    res.AvgClock,
		Completed:  res.Completed,
		Failed:     res.Failed,
		Aborted:    res.Aborted,
		PerRank:    res.FinalClocks,
		Deaths:     deaths,
		Busy:       res.Busy,
		Waited:     res.Waited,
		StartClock: s.cfg.StartClock,
		WallTime:   time.Since(wallStart),
		Engine:     s.world.Engine().Metrics(),
		MPI:        s.world.Metrics(),
	}
	if s.cfg.Trace != nil {
		// Export the VP-lifecycle gauges as Chrome-trace counter tracks so
		// a loaded timeline graphs the run's carrier-pool and scheduler
		// high-water marks alongside the per-rank events.
		for _, c := range []struct {
			name  string
			value float64
		}{
			{"carriers-spawned", float64(result.Engine.CarriersSpawned)},
			{"carrier-reuses", float64(result.Engine.CarrierReuses)},
			{"carriers-hi", float64(result.Engine.CarriersHighWater)},
			{"carrier-idle-hi", float64(result.Engine.CarrierIdleHighWater)},
			{"ready-hi", float64(result.Engine.ReadyHeapHighWater)},
			{"program-steps", float64(result.Engine.ProgramSteps)},
		} {
			s.cfg.Trace.RecordCounter(c.name, result.SimTime, c.value)
		}
	}
	switch {
	case err == nil:
		return result, nil
	case errors.Is(err, core.ErrStopped):
		return result, fmt.Errorf("%w at %v: %v", ErrCancelled, result.SimTime, context.Cause(ctx))
	default:
		// Deadlocks (wrapping ErrDeadlock) and VP panics pass through
		// with the partial result attached.
		return result, err
	}
}

// MetricsReport renders the run's engine and MPI counters as fixed-width
// tables in the style of the simulator's shutdown statistics.
func (r *Result) MetricsReport() string {
	var sb strings.Builder
	sb.WriteString("engine:\n")
	sb.WriteString(stats.Table(
		[]string{"events", "resumes", "pool-hits", "pool-misses", "cross-events", "eventq-hi", "ready-hi", "rounds", "avg-window"},
		[][]string{{
			fmt.Sprint(r.Engine.EventsDispatched),
			fmt.Sprint(r.Engine.Resumes),
			fmt.Sprint(r.Engine.PoolHits),
			fmt.Sprint(r.Engine.PoolMisses),
			fmt.Sprint(r.Engine.CrossEvents),
			fmt.Sprint(r.Engine.EventHeapHighWater),
			fmt.Sprint(r.Engine.ReadyHeapHighWater),
			fmt.Sprint(r.Engine.BarrierRounds),
			r.Engine.AvgWindowWidth().String(),
		}},
	))
	sb.WriteString("vp lifecycle:\n")
	sb.WriteString(stats.Table(
		[]string{"carriers-spawned", "carrier-reuses", "carriers-hi", "carrier-idle-hi", "carriers-live", "program-steps"},
		[][]string{{
			fmt.Sprint(r.Engine.CarriersSpawned),
			fmt.Sprint(r.Engine.CarrierReuses),
			fmt.Sprint(r.Engine.CarriersHighWater),
			fmt.Sprint(r.Engine.CarrierIdleHighWater),
			fmt.Sprint(r.Engine.CarriersLive),
			fmt.Sprint(r.Engine.ProgramSteps),
		}},
	))
	sb.WriteString("mpi:\n")
	sb.WriteString(stats.Table(
		[]string{"eager-msgs", "eager-bytes", "rdv-msgs", "rdv-bytes", "collectives", "unexpected-hi"},
		[][]string{{
			fmt.Sprint(r.MPI.EagerMsgs),
			fmt.Sprint(r.MPI.EagerBytes),
			fmt.Sprint(r.MPI.RendezvousMsgs),
			fmt.Sprint(r.MPI.RendezvousBytes),
			fmt.Sprint(r.MPI.CollectiveOps),
			fmt.Sprint(r.MPI.UnexpectedMax),
		}},
	))
	if len(r.MPI.Failures) > 0 {
		sb.WriteString("failures:\n")
		rows := make([][]string, 0, len(r.MPI.Failures))
		for _, f := range r.MPI.Failures {
			lat := "undetected"
			if f.Detections > 0 {
				lat = f.DetectionLatency().String()
			}
			rows = append(rows, []string{
				fmt.Sprint(f.Rank),
				f.FailedAt.String(),
				f.NotifiedAt.String(),
				fmt.Sprint(f.Detections),
				lat,
			})
		}
		sb.WriteString(stats.Table(
			[]string{"rank", "failed-at", "notified-at", "detections", "detection-latency"},
			rows,
		))
	}
	return sb.String()
}

// HeatConfig is the heat-equation application configuration (the paper's
// targeted application), re-exported.
type HeatConfig = heat.Config

// HeatTracker records the heat application's per-rank progress and
// phases, re-exported.
type HeatTracker = heat.Tracker

// PaperHeatWorkload returns the paper's Table II workload (512³ grid,
// 32,768 ranks, 1,000 iterations); see HeatWorkloadFor for scaled-down
// variants.
func PaperHeatWorkload() HeatConfig { return heat.PaperWorkload() }

// HeatWorkloadFor scales the paper's workload to n ranks, keeping 16³
// grid points per rank so the per-rank compute and checkpoint sizes match
// the paper's.
func HeatWorkloadFor(n int) (HeatConfig, error) {
	if n <= 0 {
		return HeatConfig{}, fmt.Errorf("xsim: rank count %d must be positive", n)
	}
	cfg := heat.PaperWorkload()
	x, y, z := factor3(n)
	cfg.PX, cfg.PY, cfg.PZ = x, y, z
	cfg.NX, cfg.NY, cfg.NZ = 16*x, 16*y, 16*z
	return cfg, nil
}

// RunHeat executes the heat application under cfg; it is the App used by
// the Table II experiments.
func RunHeat(hc HeatConfig) App {
	return func(e *Env) { heat.Run(e, hc) }
}

// RunHeatProg is RunHeat in program mode: the per-rank factory passed to
// Sim.RunProgs. The program-mode heat application is observationally
// identical to the closure one (same checkpoints, barriers, halo traffic
// and virtual timeline) while a parked rank costs a few hundred bytes
// instead of a goroutine stack.
func RunHeatProg(hc HeatConfig) func(rank int) Prog {
	return heat.NewProg(hc)
}

// NewHeatTracker sizes a tracker for n ranks.
func NewHeatTracker(n int) *HeatTracker { return heat.NewTracker(n) }
