package xsim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"

	"xsim/internal/checkpoint"
	"xsim/internal/daly"
	"xsim/internal/fault"
	"xsim/internal/fsmodel"
	"xsim/internal/runner"
	"xsim/internal/softerror"
	"xsim/internal/stats"
	"xsim/internal/vclock"
)

// PaperCallOverhead is the calibrated per-MPI-call CPU cost used by the
// paper-shaped experiments: about 2.9 µs of native MPI software overhead
// per call, scaled by the paper's 1000× node slowdown. It makes the
// 32,768-rank linear collectives dominate the per-checkpoint-cycle cost,
// which is what spreads the paper's E1 column as the checkpoint interval
// shrinks.
const PaperCallOverhead = Duration(2900 * Microsecond)

// --- Table I: fault (bit flip) injection ---------------------------------

// TableIConfig parameterises the Table I reproduction (the Finject bit
// flip campaign the paper reports). Only the RunSpec's Seed, Logf, and
// Pool apply: the victims are process-image models, not simulations.
type TableIConfig struct {
	RunSpec
	// Victims is the number of victim application instances (paper: 100).
	Victims int
	// MaxInjections is the per-victim cap (paper: an arbitrary 100).
	MaxInjections int
}

// TableIResult is the campaign result, re-exported.
type TableIResult = softerror.CampaignResult

// defaults fills the paper's Table I parameters.
func (cfg *TableIConfig) defaults() {
	if cfg.Victims == 0 {
		cfg.Victims = 100
	}
	if cfg.MaxInjections == 0 {
		cfg.MaxInjections = 100
	}
}

// RunTableI reproduces Table I; it is RunTableIContext without
// cancellation.
func RunTableI(cfg TableIConfig) (*TableIResult, error) {
	return RunTableIContext(context.Background(), cfg)
}

// RunTableIContext reproduces Table I: bit flips are injected into victim
// process images until the victims fail, and the injections-to-failure
// distribution is summarised. Victims fan out across the campaign pool;
// each victim's random sequence depends only on Seed and its index, so
// the distribution is identical at any pool size.
func RunTableIContext(ctx context.Context, cfg TableIConfig) (*TableIResult, error) {
	cfg.defaults()
	return softerror.RunCampaignContext(ctx, softerror.CampaignConfig{
		Victims:       cfg.Victims,
		MaxInjections: cfg.MaxInjections,
		Seed:          cfg.Seed,
		Pool:          cfg.Pool,
		Logf:          cfg.Logf,
		OnProgress:    cfg.runnerOnProgress(),
	})
}

// --- Table II: varying the checkpoint interval and system MTTF -----------

// TableIIConfig parameterises the Table II reproduction.
type TableIIConfig struct {
	// RunSpec carries the shared simulation parameters (Ranks defaults to
	// the paper's 32,768) and the campaign-pool controls.
	RunSpec
	// Iterations is the total iteration count (paper: 1,000; always
	// fixed per the paper).
	Iterations int
	// Intervals are the checkpoint (and halo-exchange) intervals to
	// sweep (paper: 500, 250, 125 — 50 %, 25 %, 12.5 % of the total
	// iteration count). The no-failure baseline with a single final
	// checkpoint is always included.
	Intervals []int
	// MTTFs are the system mean-time-to-failure values to sweep
	// (paper: 6,000 s and 3,000 s).
	MTTFs []Duration
	// FSModel is the file-system cost model. The paper's Table II
	// excludes checkpoint I/O overhead (its file system model was a work
	// in progress), so the zero value charges nothing; the checkpoint-I/O
	// ablation sets PaperPFS().
	FSModel fsmodel.Model
	// MaxRuns caps failure/restart cycles per cell.
	MaxRuns int
}

// TableIIRow is one row of Table II.
type TableIIRow struct {
	// MTTFs is the system MTTF (0 for the no-failure baseline rows).
	MTTFs Duration
	// C is the checkpoint interval in iterations.
	C int
	// E1 is the simulated execution time without failures.
	E1 Time
	// E2 is the simulated execution time with failures and restarts
	// (0 for baseline rows).
	E2 Time
	// F is the number of injected failures experienced.
	F int
	// MTTFa is the experienced application mean-time-to-failure,
	// E2/(F+1).
	MTTFa Duration
	// Runs is the number of application runs (1 + restarts).
	Runs int
}

// TableII is the Table II reproduction.
type TableII struct {
	Config TableIIConfig
	Rows   []TableIIRow
	// Stats pools the grid's execution accounting and simulation metrics
	// across every E1 run and campaign cell.
	Stats CampaignStats
}

// paperTableIIDefaults fills the paper's parameters.
func (cfg *TableIIConfig) defaults() {
	cfg.RunSpec.defaults(32768)
	if cfg.Iterations == 0 {
		cfg.Iterations = 1000
	}
	if len(cfg.Intervals) == 0 {
		cfg.Intervals = []int{cfg.Iterations / 2, cfg.Iterations / 4, cfg.Iterations / 8}
	}
	if len(cfg.MTTFs) == 0 {
		cfg.MTTFs = []Duration{6000 * Second, 3000 * Second}
	}
}

// expCell is one fanned-out unit of an experiment grid: either a single
// no-failure run (res) or a failure/restart campaign (camp).
type expCell struct {
	res  *Result
	camp *CampaignResult
}

// setHeatApp installs the heat application on the campaign in the
// requested execution mode.
func setHeatApp(camp *Campaign, hc HeatConfig, prog bool) {
	if prog {
		camp.ProgFor = func(int) func(rank int) Prog { return RunHeatProg(hc) }
	} else {
		camp.AppFor = func(int) App { return RunHeat(hc) }
	}
}

// runHeatE1 executes one no-failure heat run and returns its Result.
func runHeatE1(ctx context.Context, simCfg Config, hc HeatConfig, prog bool) (*Result, error) {
	sim, err := New(simCfg)
	if err != nil {
		return nil, err
	}
	var res *Result
	if prog {
		res, err = sim.RunProgsContext(ctx, RunHeatProg(hc))
	} else {
		res, err = sim.RunContext(ctx, RunHeat(hc))
	}
	if err != nil {
		return res, err
	}
	if err := res.Err(); err != nil {
		return res, fmt.Errorf("xsim: E1 run with interval %d: %w", hc.CheckpointInterval, err)
	}
	return res, nil
}

// RunTableII reproduces Table II; it is RunTableIIContext without
// cancellation.
func RunTableII(cfg TableIIConfig) (*TableII, error) {
	return RunTableIIContext(context.Background(), cfg)
}

// RunTableIIContext reproduces Table II: the heat application runs at
// Ranks simulated MPI processes with the checkpoint interval and the
// system MTTF varied; each cell reports E1 (no failures), E2 (with
// failures and restarts), F, and MTTFa. The baseline, the per-interval E1
// runs, and every (MTTF, interval) campaign cell are independent and fan
// out across the campaign pool; each cell's failure draws depend only on
// Seed and its MTTF, so the table is identical at any pool size. On error
// (a failed cell, or cancellation) the partial table keeps its pooled
// Stats but no Rows.
func RunTableIIContext(ctx context.Context, cfg TableIIConfig) (*TableII, error) {
	cfg.defaults()
	base, err := HeatWorkloadFor(cfg.Ranks)
	if err != nil {
		return nil, err
	}
	base.Iterations = cfg.Iterations

	simCfg := cfg.baseConfig()
	simCfg.FSModel = cfg.FSModel

	heatAt := func(interval int) HeatConfig {
		hc := base
		hc.ExchangeInterval = interval
		hc.CheckpointInterval = interval
		return hc
	}
	e1Task := func(index, interval int) runner.Task[expCell] {
		return runner.Task[expCell]{
			Spec: runner.Spec{Index: index, Label: fmt.Sprintf("E1 c=%d", interval)},
			Run: func(ctx context.Context) (expCell, error) {
				res, err := runHeatE1(ctx, simCfg, heatAt(interval), cfg.ProgMode)
				return expCell{res: res}, err
			},
		}
	}

	// Task order: baseline E1, per-interval E1s, then the campaign grid in
	// row order. Rows are assembled from this fixed order, never from
	// completion order.
	tasks := []runner.Task[expCell]{e1Task(0, cfg.Iterations)}
	for _, c := range cfg.Intervals {
		tasks = append(tasks, e1Task(len(tasks), c))
	}
	campStart := len(tasks)
	for _, mttf := range cfg.MTTFs {
		for _, c := range cfg.Intervals {
			hc := heatAt(c)
			// Mix the MTTF into the seed so different MTTF sweeps draw
			// independent failure sequences.
			seed := cfg.Seed + int64(mttf)
			tasks = append(tasks, runner.Task[expCell]{
				Spec: runner.Spec{
					Index: len(tasks),
					Label: fmt.Sprintf("mttf=%.0fs c=%d", mttf.Seconds(), c),
					Seed:  seed,
				},
				Run: func(ctx context.Context) (expCell, error) {
					camp := Campaign{
						Base:             simCfg,
						MTTF:             mttf,
						Seed:             seed,
						MaxRuns:          cfg.MaxRuns,
						CheckpointPrefix: "heat",
					}
					setHeatApp(&camp, hc, cfg.ProgMode)
					res, err := camp.RunContext(ctx)
					return expCell{camp: res}, err
				},
			})
		}
	}

	cells, rstats, err := runner.Run(ctx, cfg.runnerConfig(), tasks)
	table := &TableII{Config: cfg, Stats: CampaignStats{Runner: rstats}}
	for _, c := range cells {
		table.Stats.absorb(c.res)
		table.Stats.absorbCampaign(c.camp)
	}
	if err != nil {
		return table, err
	}

	table.Rows = append(table.Rows, TableIIRow{C: cfg.Iterations, E1: cells[0].res.SimTime, Runs: 1})
	e1ByC := make(map[int]Time, len(cfg.Intervals))
	for i, c := range cfg.Intervals {
		e1ByC[c] = cells[1+i].res.SimTime
	}
	i := campStart
	for _, mttf := range cfg.MTTFs {
		for _, c := range cfg.Intervals {
			res := cells[i].camp
			i++
			table.Rows = append(table.Rows, TableIIRow{
				MTTFs: mttf,
				C:     c,
				E1:    e1ByC[c],
				E2:    res.E2,
				F:     res.Failures,
				MTTFa: res.MTTFa(),
				Runs:  len(res.Runs),
			})
		}
	}
	return table, nil
}

// Render prints the table in the paper's layout.
func (t *TableII) Render() string {
	header := []string{"MTTF_s", "C", "E1", "E2", "F", "MTTF_a"}
	var rows [][]string
	secs := func(v vclock.Time) string {
		if v == 0 {
			return "—"
		}
		return fmt.Sprintf("%.0f s", v.Seconds())
	}
	for _, r := range t.Rows {
		mttf := "—"
		e2 := "—"
		f := "0"
		mttfa := "—"
		if r.MTTFs > 0 {
			mttf = fmt.Sprintf("%.0f s", r.MTTFs.Seconds())
			e2 = secs(r.E2)
			f = fmt.Sprintf("%d", r.F)
			mttfa = fmt.Sprintf("%.0f s", r.MTTFa.Seconds())
		}
		rows = append(rows, []string{mttf, fmt.Sprintf("%d", r.C), secs(r.E1), e2, f, mttfa})
	}
	return stats.Table(header, rows)
}

// --- §V-D First impressions: failure-mode classification -----------------

// FirstImpressionsConfig parameterises the failure-mode study: repeated
// single-failure runs of the heat application, classifying in which phase
// the failure struck, in which phase the survivors detected it (and
// aborted), and the state the checkpoint files were left in.
type FirstImpressionsConfig struct {
	// RunSpec carries the shared simulation parameters (Ranks defaults to
	// 512) and the campaign-pool controls.
	RunSpec
	// Iterations and Interval describe the workload.
	Iterations int
	Interval   int
	// Trials is the number of independent single-failure runs.
	Trials int
	// MTTF spreads the random failure times (default 6,000 s).
	MTTF Duration
}

// FirstImpressions aggregates the failure-mode study.
type FirstImpressions struct {
	Config FirstImpressionsConfig
	// Trials is the number of runs in which the failure activated.
	Trials int
	// FailedIn histograms the phase the failed rank was in.
	FailedIn map[string]int
	// DetectedIn histograms the phases the surviving ranks aborted in.
	DetectedIn map[string]int
	// CheckpointOutcomes histograms the post-abort checkpoint state:
	// "corrupted-file" (present but incomplete), "incomplete-set"
	// (files missing), "partially-deleted-old-set", "clean".
	CheckpointOutcomes map[string]int
	// Stats pools the study's execution accounting and simulation metrics.
	Stats CampaignStats
}

// defaults fills the zero fields.
func (cfg *FirstImpressionsConfig) defaults() {
	cfg.RunSpec.defaults(512)
	if cfg.Iterations == 0 {
		cfg.Iterations = 1000
	}
	if cfg.Interval == 0 {
		cfg.Interval = cfg.Iterations / 8
	}
	if cfg.Trials == 0 {
		cfg.Trials = 10
	}
	if cfg.MTTF == 0 {
		// Scale the MTTF to the run: one iteration is ≈5.25 simulated
		// seconds, and failures draw uniform within [0, 2×MTTF), so a
		// quarter of the expected execution time guarantees the failure
		// activates within the run.
		cfg.MTTF = Duration(cfg.Iterations) * Seconds(5.25) / 4
	}
}

// firstImpressionsTrial is one trial's classification.
type firstImpressionsTrial struct {
	activated  bool
	failedIn   string
	detectedIn map[string]int
	checkpoint string
	camp       *CampaignResult
}

// RunFirstImpressions reproduces the paper's §V-D observations; it is
// RunFirstImpressionsContext without cancellation.
func RunFirstImpressions(cfg FirstImpressionsConfig) (*FirstImpressions, error) {
	return RunFirstImpressionsContext(context.Background(), cfg)
}

// RunFirstImpressionsContext reproduces the paper's §V-D observations:
// because the computation phase dominates, failures usually strike during
// computation and are detected in the halo exchange; failures during the
// checkpoint phase are detected in the following barrier; aborts leave
// incomplete or corrupted checkpoints, or partially deleted old sets.
// Trials are independent (each owns a private store and tracker) and fan
// out across the campaign pool; histograms merge in trial order.
func RunFirstImpressionsContext(ctx context.Context, cfg FirstImpressionsConfig) (*FirstImpressions, error) {
	cfg.defaults()
	base, err := HeatWorkloadFor(cfg.Ranks)
	if err != nil {
		return nil, err
	}
	base.Iterations = cfg.Iterations
	base.ExchangeInterval = cfg.Interval
	base.CheckpointInterval = cfg.Interval

	tasks := make([]runner.Task[firstImpressionsTrial], cfg.Trials)
	for trial := 0; trial < cfg.Trials; trial++ {
		seed := cfg.Seed + int64(trial)*1000
		tasks[trial] = runner.Task[firstImpressionsTrial]{
			Spec: runner.Spec{Index: trial, Label: fmt.Sprintf("trial=%d", trial), Seed: seed},
			Run: func(ctx context.Context) (firstImpressionsTrial, error) {
				store := NewStore()
				tracker := NewHeatTracker(cfg.Ranks)
				hc := base
				hc.Tracker = tracker
				simCfg := cfg.baseConfig()
				simCfg.Store = store
				camp := Campaign{
					Base:    simCfg,
					MTTF:    cfg.MTTF,
					Seed:    seed,
					MaxRuns: 1, // observe the first failure only
				}
				setHeatApp(&camp, hc, cfg.ProgMode)
				res, err := camp.RunContext(ctx)
				out := firstImpressionsTrial{camp: res}
				// The single run usually aborts; that is the point. Only
				// cancellation is a real failure of the trial itself.
				if err != nil && errors.Is(err, ErrCancelled) {
					return out, err
				}
				if res == nil || len(res.Runs) == 0 {
					return out, nil
				}
				run := res.Runs[0]
				if run.Failed == 0 {
					// The drawn failure time was beyond the application's end.
					return out, nil
				}
				out.activated = true
				failedRank := run.Injected.Rank
				out.failedIn = tracker.PhaseOf(failedRank).String()
				out.detectedIn = make(map[string]int)
				for r := 0; r < cfg.Ranks; r++ {
					if r == failedRank {
						continue
					}
					out.detectedIn[tracker.PhaseOf(r).String()]++
				}
				out.checkpoint = classifyCheckpoints(store, "heat", cfg.Ranks)
				return out, nil
			},
		}
	}

	trials, rstats, err := runner.Run(ctx, cfg.runnerConfig(), tasks)
	out := &FirstImpressions{
		Config:             cfg,
		FailedIn:           make(map[string]int),
		DetectedIn:         make(map[string]int),
		CheckpointOutcomes: make(map[string]int),
		Stats:              CampaignStats{Runner: rstats},
	}
	for _, t := range trials {
		out.Stats.absorbCampaign(t.camp)
		if !t.activated {
			continue
		}
		out.Trials++
		out.FailedIn[t.failedIn]++
		for phase, n := range t.detectedIn {
			out.DetectedIn[phase] += n
		}
		out.CheckpointOutcomes[t.checkpoint]++
	}
	return out, err
}

// classifyCheckpoints inspects the post-abort checkpoint state.
func classifyCheckpoints(store *Store, prefix string, n int) string {
	iters := checkpoint.Iterations(store, prefix)
	if len(iters) == 0 {
		return "no-checkpoint"
	}
	corrupted := false
	incomplete := false
	for _, it := range iters {
		present := 0
		for r := 0; r < n; r++ {
			name := checkpoint.FileName(prefix, it, r)
			if !store.Exists(name) {
				continue
			}
			present++
			if !store.Complete(name) {
				corrupted = true
			}
		}
		if present < n {
			incomplete = true
		}
	}
	switch {
	case corrupted:
		return "corrupted-file"
	case incomplete && len(iters) > 1:
		return "partially-deleted-old-set"
	case incomplete:
		return "incomplete-set"
	default:
		return "clean"
	}
}

// Render prints the failure-mode study.
func (f *FirstImpressions) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "first impressions: %d trials with an activated failure\n\n", f.Trials)
	section := func(title string, m map[string]int) {
		fmt.Fprintf(&b, "%s:\n", title)
		for _, k := range sortedKeys(m) {
			fmt.Fprintf(&b, "  %-28s %d\n", k, m[k])
		}
		b.WriteByte('\n')
	}
	section("failed rank was in phase", f.FailedIn)
	section("survivors aborted in phase (rank counts)", f.DetectedIn)
	section("checkpoint state after abort", f.CheckpointOutcomes)
	return b.String()
}

// sortedKeys returns m's keys in sorted order.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// --- Replication/checkpoint crossover ------------------------------------

// Crossover arm names.
const (
	// ArmCheckpoint is the unreplicated checkpoint/restart arm at the
	// Daly-optimal interval.
	ArmCheckpoint = "ckpt"
	// ArmReplication is the r-way replication arm without checkpoints.
	ArmReplication = "repl"
	// ArmHybrid combines r-way replication with periodic checkpoints.
	ArmHybrid = "hybrid"
)

// ReplicationCrossoverConfig parameterises the replication-vs-checkpoint
// crossover study: the fixed-size replicated stencil runs under Poisson
// multi-failure injection at a sweep of system MTTFs, once per protection
// arm — plain checkpoint/restart at the Daly-optimal interval, plain
// r-way replication, and the hybrid of both — so the table exposes the
// MTTF below which burning r× the resources on replication beats
// restarting, the trade redMPI was built around.
type ReplicationCrossoverConfig struct {
	// RunSpec carries the shared simulation parameters. Ranks (default 24)
	// is the physical world size of every arm and must be divisible by
	// every replication degree: the replication arms split it into
	// Ranks/r logical ranks carrying r× the per-rank work.
	RunSpec
	// Degrees are the replication degrees to sweep (default 2, 3).
	Degrees []int
	// MTTFs are the system mean-time-to-failure values to sweep (default
	// 50 s … 1600 s, doubling).
	MTTFs []Duration
	// Iterations, ComputePerIteration, and HaloBytes shape the stencil
	// (defaults 40 iterations × 2.5 s, 1 KiB halos → a 100 s solve).
	Iterations          int
	ComputePerIteration Duration
	HaloBytes           int
	// CheckpointCost and RestartCost are Daly's δ and R (default 15 s
	// each).
	CheckpointCost Duration
	RestartCost    Duration
	// MaxRuns caps the failure/restart cycles per campaign cell (default
	// 400; low-MTTF checkpoint cells restart often).
	MaxRuns int
}

// defaults fills the zero fields.
func (cfg *ReplicationCrossoverConfig) defaults() {
	cfg.RunSpec.defaults(24)
	if len(cfg.Degrees) == 0 {
		cfg.Degrees = []int{2, 3}
	}
	if len(cfg.MTTFs) == 0 {
		cfg.MTTFs = []Duration{50 * Second, 100 * Second, 200 * Second,
			400 * Second, 800 * Second, 1600 * Second}
	}
	if cfg.Iterations == 0 {
		cfg.Iterations = 40
	}
	if cfg.ComputePerIteration == 0 {
		cfg.ComputePerIteration = Seconds(2.5)
	}
	if cfg.HaloBytes == 0 {
		cfg.HaloBytes = 1024
	}
	if cfg.CheckpointCost == 0 {
		cfg.CheckpointCost = 15 * Second
	}
	if cfg.RestartCost == 0 {
		cfg.RestartCost = 15 * Second
	}
	if cfg.MaxRuns == 0 {
		cfg.MaxRuns = 400
	}
}

// ReplicationCrossoverRow is one campaign cell of the crossover table.
type ReplicationCrossoverRow struct {
	// MTTF is the system mean time to failure of this cell.
	MTTF Duration
	// Arm is the protection strategy (ArmCheckpoint, ArmReplication,
	// ArmHybrid).
	Arm string
	// Degree is the replication degree (1 for the checkpoint arm).
	Degree int
	// Interval is the checkpoint interval in iterations (0 = none).
	Interval int
	// E2 is the simulated completion time including failures/restarts.
	E2 Time
	// F is the number of process failures experienced.
	F int
	// Runs is the number of application runs (1 + restarts).
	Runs int
	// Predicted is the analytic expectation: Daly's T(τ) for the
	// checkpoint arm, r×solve for failure-free replication, and
	// r×solve plus checkpoint overhead for the hybrid. Replication
	// predictions ignore restart cycles, so the simulated E2 exceeding
	// Predicted measures how often replicas were exhausted.
	Predicted Duration
}

// ReplicationCrossover is the crossover study result.
type ReplicationCrossover struct {
	Config ReplicationCrossoverConfig
	// Solve is the measured failure-free unreplicated solve time (the
	// study's E1 baseline).
	Solve Duration
	// Rows holds one entry per (MTTF, arm, degree) cell in sweep order.
	Rows []ReplicationCrossoverRow
	// Stats pools the grid's execution accounting and simulation metrics.
	Stats CampaignStats
}

// Row returns the cell for (mttf, arm, degree), or nil.
func (t *ReplicationCrossover) Row(mttf Duration, arm string, degree int) *ReplicationCrossoverRow {
	for i := range t.Rows {
		r := &t.Rows[i]
		if r.MTTF == mttf && r.Arm == arm && r.Degree == degree {
			return r
		}
	}
	return nil
}

// RunReplicationCrossover runs the crossover study; it is
// RunReplicationCrossoverContext without cancellation.
func RunReplicationCrossover(cfg ReplicationCrossoverConfig) (*ReplicationCrossover, error) {
	return RunReplicationCrossoverContext(context.Background(), cfg)
}

// RunReplicationCrossoverContext runs the crossover study. It first
// measures the failure-free unreplicated solve time, then fans one
// failure/restart campaign per (MTTF, arm, degree) cell across the
// campaign pool: every cell draws its own deterministic Poisson failure
// schedule (multiple failures per run — a single-failure model could
// never exhaust a replica group), restarts on abort with continuous
// virtual time, and counts a run as done once every logical rank has a
// surviving completed replica. Cell seeds depend only on Seed, the MTTF,
// and the arm, so the table is identical at any pool size.
func RunReplicationCrossoverContext(ctx context.Context, cfg ReplicationCrossoverConfig) (*ReplicationCrossover, error) {
	cfg.defaults()
	for _, r := range cfg.Degrees {
		if r < 2 {
			return nil, fmt.Errorf("xsim: replication degree %d must be at least 2", r)
		}
		if cfg.Ranks%r != 0 {
			return nil, fmt.Errorf("xsim: Ranks %d must be divisible by replication degree %d", cfg.Ranks, r)
		}
	}

	stencil := func(degree, interval int) ReplicatedStencilConfig {
		return ReplicatedStencilConfig{
			Degree:              degree,
			Iterations:          cfg.Iterations,
			ComputePerIteration: cfg.ComputePerIteration,
			HaloBytes:           cfg.HaloBytes,
			CheckpointInterval:  interval,
			CheckpointCost:      cfg.CheckpointCost,
			RestartCost:         cfg.RestartCost,
			Prefix:              "repl",
		}
	}

	table := &ReplicationCrossover{Config: cfg}

	// E1: the failure-free unreplicated solve, measured (not assumed) so
	// the Daly parameters include the simulated communication time.
	e1cfg := cfg.baseConfig()
	sim, err := New(e1cfg)
	if err != nil {
		return nil, err
	}
	res, err := sim.RunContext(ctx, RunReplicatedStencil(stencil(1, 0)))
	if err != nil {
		return table, err
	}
	table.Stats.absorb(res)
	if err := res.Err(); err != nil {
		return table, fmt.Errorf("xsim: crossover E1 run: %w", err)
	}
	solve := Duration(res.SimTime)
	table.Solve = solve
	perIter := solve / Duration(cfg.Iterations)

	// dalyInterval converts Daly's optimal compute-time interval into a
	// whole number of iterations of the (possibly replicated) stencil.
	dalyInterval := func(mttf Duration, degree int) (int, daly.Params) {
		dp := daly.Params{
			Solve:   Duration(degree) * solve,
			Delta:   cfg.CheckpointCost,
			Restart: cfg.RestartCost,
			MTTF:    mttf,
		}
		iters := int(math.Round(dp.OptimalInterval().Seconds() / (Duration(degree) * perIter).Seconds()))
		if iters < 1 {
			iters = 1
		}
		if iters > cfg.Iterations {
			iters = cfg.Iterations
		}
		return iters, dp
	}
	// ckptOverhead is the failure-free checkpoint cost at the given
	// interval: one δ per interior checkpoint.
	ckptOverhead := func(interval int) Duration {
		if interval <= 0 {
			return 0
		}
		return cfg.CheckpointCost * Duration((cfg.Iterations-1)/interval)
	}

	type cellSpec struct {
		row  ReplicationCrossoverRow
		seed int64
	}
	var specs []cellSpec
	addCell := func(mttf Duration, arm string, degree, interval int, predicted Duration) {
		specs = append(specs, cellSpec{
			row: ReplicationCrossoverRow{
				MTTF: mttf, Arm: arm, Degree: degree,
				Interval: interval, Predicted: predicted,
			},
			// Mix the MTTF and the arm index into the seed so every cell
			// draws an independent failure sequence.
			seed: cfg.Seed + int64(mttf.Seconds())*1009 + int64(len(specs))*37,
		})
	}
	for _, mttf := range cfg.MTTFs {
		interval, dp := dalyInterval(mttf, 1)
		addCell(mttf, ArmCheckpoint, 1, interval,
			dp.ExpectedRuntime(Duration(interval)*perIter))
		for _, degree := range cfg.Degrees {
			addCell(mttf, ArmReplication, degree, 0, Duration(degree)*solve)
			hInterval, _ := dalyInterval(mttf, degree)
			addCell(mttf, ArmHybrid, degree, hInterval,
				Duration(degree)*solve+ckptOverhead(hInterval))
		}
	}

	tasks := make([]runner.Task[expCell], len(specs))
	for i, spec := range specs {
		spec := spec
		sc := stencil(spec.row.Degree, spec.row.Interval)
		// The failure horizon comfortably covers the longest single run
		// of the cell (compute + checkpoint overhead + restart).
		horizon := Duration(spec.row.Degree)*solve + ckptOverhead(spec.row.Interval) +
			cfg.RestartCost + solve
		tasks[i] = runner.Task[expCell]{
			Spec: runner.Spec{
				Index: i,
				Label: fmt.Sprintf("mttf=%.0fs %s r=%d", spec.row.MTTF.Seconds(), spec.row.Arm, spec.row.Degree),
				Seed:  spec.seed,
			},
			Run: func(ctx context.Context) (expCell, error) {
				base := cfg.baseConfig()
				base.Store = NewStore()
				camp := Campaign{
					Base:    base,
					Seed:    spec.seed,
					MaxRuns: cfg.MaxRuns,
					DrawFailures: func(run int, start Time) Schedule {
						rng := rand.New(rand.NewSource(spec.seed + int64(run)*101))
						return fault.PoissonSchedule(rng, cfg.Ranks, spec.row.MTTF, horizon, start)
					},
					SuccessFor: replicatedSuccess(cfg.Ranks, spec.row.Degree),
					// Clean checkpoint sets between runs with the
					// replica-aware criterion: the every-world-rank test
					// would delete sets a dead replica left incomplete but
					// that still cover every logical rank — exactly the
					// sets the restart resumes from.
					CheckpointPrefix: sc.Prefix,
					SetCompleteFor:   ReplicatedSetComplete(cfg.Ranks, spec.row.Degree),
					AppFor:           func(int) App { return RunReplicatedStencil(sc) },
				}
				res, err := camp.RunContext(ctx)
				return expCell{camp: res}, err
			},
		}
	}

	cells, rstats, err := runner.Run(ctx, cfg.runnerConfig(), tasks)
	table.Stats.Runner = rstats
	for _, c := range cells {
		table.Stats.absorbCampaign(c.camp)
	}
	if err != nil {
		return table, err
	}
	for i, spec := range specs {
		row := spec.row
		camp := cells[i].camp
		row.E2 = camp.E2
		row.F = camp.Failures
		row.Runs = len(camp.Runs)
		table.Rows = append(table.Rows, row)
	}
	return table, nil
}

// --- Checkpoint-I/O ablation: Table II with the I/O cost on --------------

// Checkpoint-I/O ablation arm names.
const (
	// IOArmFree is the paper's Table II configuration: checkpoint I/O
	// charges nothing (the zero-cost assumption under test).
	IOArmFree = "free"
	// IOArmFlatPFS charges every checkpoint against a single shared
	// parallel file system whose aggregate backplane saturates, so the
	// per-client bandwidth degrades as 1/clients at scale.
	IOArmFlatPFS = "flat-pfs"
	// IOArmTiered stages checkpoints through the multi-tier hierarchy
	// (node-local memory → burst buffer → PFS): the commit costs only
	// the fast local tier, drains to the deeper tiers overlap compute.
	IOArmTiered = "tiered"
	// IOArmTieredIncr adds incremental (delta) checkpoints on top of the
	// tiered hierarchy.
	IOArmTieredIncr = "tiered-incr"
)

// ioAblationArms lists the sweep's arms in report order.
var ioAblationArms = []string{IOArmFree, IOArmFlatPFS, IOArmTiered, IOArmTieredIncr}

// CheckpointIOAblationConfig parameterises the checkpoint-I/O ablation:
// the Table II sweep rerun with the file-system cost enabled, once per
// storage arm, to show where the paper's zero-cost checkpoint assumption
// breaks at scale and how much of the flat-PFS overhead hierarchical
// (and incremental) checkpointing recovers.
type CheckpointIOAblationConfig struct {
	// RunSpec carries the shared simulation parameters (Ranks defaults
	// to the paper's 32,768) and the campaign-pool controls.
	RunSpec
	// Iterations is the total iteration count (paper: 1,000).
	Iterations int
	// Intervals are the checkpoint intervals to sweep (paper: 500, 250,
	// 125). The no-failure baseline with a single final checkpoint is
	// always included.
	Intervals []int
	// MTTFs are the system MTTF values to sweep (default 6,000 s only —
	// one Table II block per arm keeps the 4-arm grid tractable).
	MTTFs []Duration
	// CheckpointPayload is the modelled per-rank checkpoint size
	// (default 256 MiB). The paper's 16³-points cube is ~32 KB per rank,
	// invisible at any bandwidth; production-scale state is what makes
	// the I/O cost observable.
	CheckpointPayload int
	// DeltaFraction and FullEvery parameterise the incremental arm
	// (defaults 0.25 and 4: deltas are a quarter of the payload, every
	// fourth checkpoint is full).
	DeltaFraction float64
	FullEvery     int
	// Flat is the flat-PFS arm's cost model (default PaperPFSShared()).
	Flat fsmodel.Model
	// Tiers is the tiered arms' storage hierarchy (default
	// PaperTieredFS()).
	Tiers fsmodel.Hierarchy
	// MaxRuns caps failure/restart cycles per campaign cell.
	MaxRuns int
}

// defaults fills the zero fields.
func (cfg *CheckpointIOAblationConfig) defaults() {
	cfg.RunSpec.defaults(32768)
	if cfg.Iterations == 0 {
		cfg.Iterations = 1000
	}
	if len(cfg.Intervals) == 0 {
		cfg.Intervals = []int{cfg.Iterations / 2, cfg.Iterations / 4, cfg.Iterations / 8}
	}
	if len(cfg.MTTFs) == 0 {
		cfg.MTTFs = []Duration{6000 * Second}
	}
	if cfg.CheckpointPayload == 0 {
		cfg.CheckpointPayload = 256 << 20
	}
	if cfg.DeltaFraction == 0 {
		cfg.DeltaFraction = 0.25
	}
	if cfg.FullEvery == 0 {
		cfg.FullEvery = 4
	}
	if cfg.Flat == (fsmodel.Model{}) {
		cfg.Flat = fsmodel.PaperPFSShared()
	}
	if cfg.Tiers == nil {
		cfg.Tiers = fsmodel.PaperTieredFS()
	}
}

// CheckpointIOAblationRow is one cell of the ablation: Table II's columns
// plus the storage arm.
type CheckpointIOAblationRow struct {
	// Arm is the storage configuration (IOArmFree … IOArmTieredIncr).
	Arm string
	// MTTFs is the system MTTF (0 for the no-failure E1 rows).
	MTTFs Duration
	// C is the checkpoint interval in iterations.
	C int
	// E1 is the simulated execution time without failures.
	E1 Time
	// E2 is the simulated execution time with failures and restarts.
	E2 Time
	// F is the number of injected failures experienced.
	F int
	// MTTFa is the experienced application mean-time-to-failure.
	MTTFa Duration
	// Runs is the number of application runs (1 + restarts).
	Runs int
}

// CheckpointIOAblation is the ablation result.
type CheckpointIOAblation struct {
	Config CheckpointIOAblationConfig
	// Rows holds one entry per (arm, MTTF, interval) cell plus one
	// baseline E1 row per arm, in sweep order.
	Rows []CheckpointIOAblationRow
	// Stats pools the grid's execution accounting and simulation metrics.
	Stats CampaignStats
}

// Row returns the cell for (arm, mttf, c), or nil. The per-arm baseline
// and E1 rows have mttf 0.
func (t *CheckpointIOAblation) Row(arm string, mttf Duration, c int) *CheckpointIOAblationRow {
	for i := range t.Rows {
		r := &t.Rows[i]
		if r.Arm == arm && r.MTTFs == mttf && r.C == c {
			return r
		}
	}
	return nil
}

// RecoveredE1 reports the fraction of the flat-PFS failure-free overhead
// the given arm recovers at checkpoint interval c:
// (E1_flat − E1_arm) / (E1_flat − E1_free). 1 means checkpoint I/O became
// free again; 0 means the arm is as slow as the flat PFS.
func (t *CheckpointIOAblation) RecoveredE1(arm string, c int) float64 {
	free, flat, a := t.Row(IOArmFree, 0, c), t.Row(IOArmFlatPFS, 0, c), t.Row(arm, 0, c)
	if free == nil || flat == nil || a == nil || flat.E1 <= free.E1 {
		return 0
	}
	return float64(flat.E1-a.E1) / float64(flat.E1-free.E1)
}

// Recovered reports the fraction of the flat-PFS end-to-end overhead
// (failures and restarts included) the given arm recovers in the
// (mttf, c) campaign cell: (E2_flat − E2_arm) / (E2_flat − E2_free).
func (t *CheckpointIOAblation) Recovered(arm string, mttf Duration, c int) float64 {
	free, flat, a := t.Row(IOArmFree, mttf, c), t.Row(IOArmFlatPFS, mttf, c), t.Row(arm, mttf, c)
	if free == nil || flat == nil || a == nil || flat.E2 <= free.E2 {
		return 0
	}
	return float64(flat.E2-a.E2) / float64(flat.E2-free.E2)
}

// RunCheckpointIOAblation runs the ablation; it is
// RunCheckpointIOAblationContext without cancellation.
func RunCheckpointIOAblation(cfg CheckpointIOAblationConfig) (*CheckpointIOAblation, error) {
	return RunCheckpointIOAblationContext(context.Background(), cfg)
}

// RunCheckpointIOAblationContext reruns the Table II sweep with checkpoint
// I/O cost enabled, once per storage arm: free (the paper's zero-cost
// assumption), a flat shared PFS, the multi-tier hierarchy with staged
// writes, and the hierarchy plus incremental checkpoints. Every arm sweeps
// the same intervals and MTTFs, and a campaign cell's failure draws depend
// only on Seed and its MTTF — not the arm — so all arms face identical
// failure sequences and their E2 columns are directly comparable. Cells
// fan out across the campaign pool; rows are assembled from the fixed
// sweep order, so the table is identical at any pool size.
func RunCheckpointIOAblationContext(ctx context.Context, cfg CheckpointIOAblationConfig) (*CheckpointIOAblation, error) {
	cfg.defaults()
	base, err := HeatWorkloadFor(cfg.Ranks)
	if err != nil {
		return nil, err
	}
	base.Iterations = cfg.Iterations
	base.CheckpointPayload = cfg.CheckpointPayload
	base.FullEvery = cfg.FullEvery

	type armSpec struct {
		name  string
		model fsmodel.Model
		hier  fsmodel.Hierarchy
		delta float64
	}
	arms := []armSpec{
		{IOArmFree, fsmodel.Model{}, nil, 0},
		{IOArmFlatPFS, cfg.Flat, nil, 0},
		{IOArmTiered, fsmodel.Model{}, cfg.Tiers, 0},
		{IOArmTieredIncr, fsmodel.Model{}, cfg.Tiers, cfg.DeltaFraction},
	}
	simFor := func(a armSpec) Config {
		c := cfg.baseConfig()
		c.FSModel = a.model
		c.FSHierarchy = a.hier
		return c
	}
	heatAt := func(a armSpec, interval int) HeatConfig {
		hc := base
		hc.ExchangeInterval = interval
		hc.CheckpointInterval = interval
		hc.DeltaFraction = a.delta
		return hc
	}

	// Task order: per arm a baseline E1 and the per-interval E1s, then the
	// campaign grid in (arm, MTTF, interval) row order. Rows are assembled
	// from this fixed order, never from completion order.
	var tasks []runner.Task[expCell]
	e1Task := func(a armSpec, interval int) {
		simCfg := simFor(a)
		hc := heatAt(a, interval)
		tasks = append(tasks, runner.Task[expCell]{
			Spec: runner.Spec{Index: len(tasks), Label: fmt.Sprintf("%s E1 c=%d", a.name, interval)},
			Run: func(ctx context.Context) (expCell, error) {
				res, err := runHeatE1(ctx, simCfg, hc, cfg.ProgMode)
				return expCell{res: res}, err
			},
		})
	}
	for _, a := range arms {
		e1Task(a, cfg.Iterations)
		for _, c := range cfg.Intervals {
			e1Task(a, c)
		}
	}
	campStart := len(tasks)
	for _, a := range arms {
		for _, mttf := range cfg.MTTFs {
			for _, c := range cfg.Intervals {
				a, mttf := a, mttf
				simCfg := simFor(a)
				hc := heatAt(a, c)
				// The seed mixes in the MTTF but not the arm: every arm
				// faces the same failure sequences.
				seed := cfg.Seed + int64(mttf)
				tasks = append(tasks, runner.Task[expCell]{
					Spec: runner.Spec{
						Index: len(tasks),
						Label: fmt.Sprintf("%s mttf=%.0fs c=%d", a.name, mttf.Seconds(), c),
						Seed:  seed,
					},
					Run: func(ctx context.Context) (expCell, error) {
						camp := Campaign{
							Base:             simCfg,
							MTTF:             mttf,
							Seed:             seed,
							MaxRuns:          cfg.MaxRuns,
							CheckpointPrefix: "heat",
						}
						setHeatApp(&camp, hc, cfg.ProgMode)
						res, err := camp.RunContext(ctx)
						return expCell{camp: res}, err
					},
				})
			}
		}
	}

	cells, rstats, err := runner.Run(ctx, cfg.runnerConfig(), tasks)
	table := &CheckpointIOAblation{Config: cfg, Stats: CampaignStats{Runner: rstats}}
	for _, c := range cells {
		table.Stats.absorb(c.res)
		table.Stats.absorbCampaign(c.camp)
	}
	if err != nil {
		return table, err
	}

	i := 0
	for _, a := range arms {
		table.Rows = append(table.Rows, CheckpointIOAblationRow{
			Arm: a.name, C: cfg.Iterations, E1: cells[i].res.SimTime, Runs: 1,
		})
		i++
		for _, c := range cfg.Intervals {
			table.Rows = append(table.Rows, CheckpointIOAblationRow{
				Arm: a.name, C: c, E1: cells[i].res.SimTime, Runs: 1,
			})
			i++
		}
	}
	i = campStart
	for _, a := range arms {
		for _, mttf := range cfg.MTTFs {
			for _, c := range cfg.Intervals {
				camp := cells[i].camp
				i++
				e1 := Time(0)
				if r := t0Row(table, a.name, c); r != nil {
					e1 = r.E1
				}
				table.Rows = append(table.Rows, CheckpointIOAblationRow{
					Arm:   a.name,
					MTTFs: mttf,
					C:     c,
					E1:    e1,
					E2:    camp.E2,
					F:     camp.Failures,
					MTTFa: camp.MTTFa(),
					Runs:  len(camp.Runs),
				})
			}
		}
	}
	return table, nil
}

// t0Row returns the arm's no-failure E1 row at interval c.
func t0Row(t *CheckpointIOAblation, arm string, c int) *CheckpointIOAblationRow {
	return t.Row(arm, 0, c)
}

// Render prints the ablation, one Table II-shaped block per arm, followed
// by the recovered-overhead summary the tiered arms exist to demonstrate.
func (t *CheckpointIOAblation) Render() string {
	header := []string{"arm", "MTTF_s", "C", "E1", "E2", "F", "MTTF_a"}
	var rows [][]string
	secs := func(v vclock.Time) string {
		if v == 0 {
			return "—"
		}
		return fmt.Sprintf("%.0f s", v.Seconds())
	}
	for _, r := range t.Rows {
		mttf, e2, f, mttfa := "—", "—", "0", "—"
		if r.MTTFs > 0 {
			mttf = fmt.Sprintf("%.0f s", r.MTTFs.Seconds())
			e2 = secs(r.E2)
			f = fmt.Sprintf("%d", r.F)
			mttfa = fmt.Sprintf("%.0f s", r.MTTFa.Seconds())
		}
		rows = append(rows, []string{r.Arm, mttf, fmt.Sprintf("%d", r.C), secs(r.E1), e2, f, mttfa})
	}
	var b strings.Builder
	b.WriteString(stats.Table(header, rows))
	b.WriteString("\nrecovered fraction of flat-PFS overhead (1 = I/O free again):\n")
	for _, arm := range []string{IOArmTiered, IOArmTieredIncr} {
		for _, c := range t.Config.Intervals {
			fmt.Fprintf(&b, "  %-12s c=%-4d E1: %4.0f %%", arm, c, 100*t.RecoveredE1(arm, c))
			for _, mttf := range t.Config.MTTFs {
				fmt.Fprintf(&b, "   E2@%.0fs: %4.0f %%", mttf.Seconds(), 100*t.Recovered(arm, mttf, c))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Render prints the crossover table, one block per MTTF, marking each
// block's winning arm.
func (t *ReplicationCrossover) Render() string {
	header := []string{"MTTF", "arm", "r", "c", "E2", "F", "runs", "predicted", ""}
	var rows [][]string
	for _, mttf := range t.Config.MTTFs {
		var best *ReplicationCrossoverRow
		for i := range t.Rows {
			r := &t.Rows[i]
			if r.MTTF == mttf && (best == nil || r.E2 < best.E2) {
				best = r
			}
		}
		for i := range t.Rows {
			r := &t.Rows[i]
			if r.MTTF != mttf {
				continue
			}
			interval := "—"
			if r.Interval > 0 {
				interval = fmt.Sprintf("%d", r.Interval)
			}
			mark := ""
			if r == best {
				mark = "◀ best"
			}
			rows = append(rows, []string{
				fmt.Sprintf("%.0f s", r.MTTF.Seconds()),
				r.Arm,
				fmt.Sprintf("%d", r.Degree),
				interval,
				fmt.Sprintf("%.0f s", r.E2.Seconds()),
				fmt.Sprintf("%d", r.F),
				fmt.Sprintf("%d", r.Runs),
				fmt.Sprintf("%.0f s", r.Predicted.Seconds()),
				mark,
			})
		}
	}
	return fmt.Sprintf("solve (E1, r=1): %.0f s\n%s", t.Solve.Seconds(), stats.Table(header, rows))
}
