package xsim

import (
	"fmt"
	"strings"

	"xsim/internal/daly"
	"xsim/internal/stats"
)

// IntervalSweepConfig parameterises the checkpoint-interval sweep: the
// figure-style extension of Table II. E2 is measured across a range of
// checkpoint intervals at a fixed system MTTF and compared with Daly's
// analytic expected-runtime model (the optimisation literature the paper
// cites) — locating the empirical optimum and the crossover between
// checkpointing too often and losing too much work.
type IntervalSweepConfig struct {
	// Ranks is the number of simulated MPI processes.
	Ranks int
	// Workers is the engine parallelism.
	Workers int
	// Iterations is the total iteration count (default 1,000).
	Iterations int
	// Intervals are the checkpoint intervals to sweep (default
	// 500/250/125/62/31).
	Intervals []int
	// MTTF is the system mean-time-to-failure (default 3,000 s).
	MTTF Duration
	// Seeds are averaged per interval to smooth the random failure
	// draws (default 3 seeds starting at 133).
	Seeds []int64
	// CallOverhead defaults to PaperCallOverhead.
	CallOverhead Duration
	// Logf receives simulator progress messages.
	Logf func(format string, args ...any)
}

// IntervalSweepPoint is one measured point of the sweep.
type IntervalSweepPoint struct {
	// C is the checkpoint interval in iterations.
	C int
	// E1 is the no-failure execution time at this interval.
	E1 Time
	// MeanE2 averages the measured completion times over the seeds.
	MeanE2 Duration
	// MeanF averages the experienced failures over the seeds.
	MeanF float64
	// Daly is the analytic expected runtime at this interval.
	Daly Duration
}

// IntervalSweep is the sweep result.
type IntervalSweep struct {
	Config IntervalSweepConfig
	// Points holds the measured series, in the order of
	// Config.Intervals.
	Points []IntervalSweepPoint
	// Baseline is the no-failure, single-checkpoint execution time.
	Baseline Time
	// CheckpointCost is the empirical per-checkpoint-cycle cost derived
	// from the E1 measurements (Daly's δ).
	CheckpointCost Duration
	// DalyOptimal is the analytic optimal interval in *iterations*.
	DalyOptimal float64
	// BestMeasured is the interval (in iterations) with the lowest
	// measured mean E2.
	BestMeasured int
}

// RunIntervalSweep measures E2 across checkpoint intervals and fits Daly's
// model to the same scenario.
func RunIntervalSweep(cfg IntervalSweepConfig) (*IntervalSweep, error) {
	if cfg.Ranks == 0 {
		cfg.Ranks = 512
	}
	if cfg.Iterations == 0 {
		cfg.Iterations = 1000
	}
	if len(cfg.Intervals) == 0 {
		cfg.Intervals = []int{500, 250, 125, 62, 31}
	}
	if cfg.MTTF == 0 {
		cfg.MTTF = 3000 * Second
	}
	if len(cfg.Seeds) == 0 {
		cfg.Seeds = []int64{133, 134, 135}
	}
	if cfg.CallOverhead == 0 {
		cfg.CallOverhead = PaperCallOverhead
	}
	base, err := HeatWorkloadFor(cfg.Ranks)
	if err != nil {
		return nil, err
	}
	base.Iterations = cfg.Iterations

	runE1 := func(interval int) (Time, error) {
		hc := base
		hc.ExchangeInterval = interval
		hc.CheckpointInterval = interval
		sim, err := New(Config{Ranks: cfg.Ranks, Workers: cfg.Workers, CallOverhead: cfg.CallOverhead, Logf: cfg.Logf})
		if err != nil {
			return 0, err
		}
		res, err := sim.Run(RunHeat(hc))
		if err != nil {
			return 0, err
		}
		if !res.Success() {
			return 0, fmt.Errorf("xsim: sweep E1 run failed at interval %d", interval)
		}
		return res.SimTime, nil
	}

	sweep := &IntervalSweep{Config: cfg}
	if sweep.Baseline, err = runE1(cfg.Iterations); err != nil {
		return nil, err
	}

	for _, c := range cfg.Intervals {
		e1, err := runE1(c)
		if err != nil {
			return nil, err
		}
		point := IntervalSweepPoint{C: c, E1: e1}
		var sumE2, sumF float64
		for _, seed := range cfg.Seeds {
			hc := base
			hc.ExchangeInterval = c
			hc.CheckpointInterval = c
			camp := Campaign{
				Base:             Config{Ranks: cfg.Ranks, Workers: cfg.Workers, CallOverhead: cfg.CallOverhead, Logf: cfg.Logf},
				MTTF:             cfg.MTTF,
				Seed:             seed,
				CheckpointPrefix: "heat",
				AppFor:           func(int) App { return RunHeat(hc) },
			}
			res, err := camp.Run()
			if err != nil {
				return nil, err
			}
			sumE2 += Duration(res.E2).Seconds()
			sumF += float64(res.Failures)
		}
		point.MeanE2 = Seconds(sumE2 / float64(len(cfg.Seeds)))
		point.MeanF = sumF / float64(len(cfg.Seeds))
		sweep.Points = append(sweep.Points, point)
	}

	// Fit Daly's model: the per-cycle checkpoint cost δ comes from the
	// measured E1 slope (extra cycles vs the baseline's single one), the
	// solve time from the baseline.
	var deltaSum float64
	var deltaN int
	for _, p := range sweep.Points {
		cycles := cfg.Iterations/p.C - 1 // extra checkpoint cycles vs baseline
		if cycles > 0 {
			deltaSum += p.E1.Sub(sweep.Baseline).Seconds() / float64(cycles)
			deltaN++
		}
	}
	if deltaN > 0 {
		sweep.CheckpointCost = Seconds(deltaSum / float64(deltaN))
	}
	iterTime := Seconds(sweep.Baseline.Seconds() / float64(cfg.Iterations))
	dp := daly.Params{
		Solve: Duration(sweep.Baseline),
		Delta: sweep.CheckpointCost,
		MTTF:  cfg.MTTF,
	}
	if err := dp.Validate(); err == nil {
		for i, p := range sweep.Points {
			tau := Duration(p.C) * iterTime / Duration(Second) * Second
			sweep.Points[i].Daly = dp.ExpectedRuntime(tau)
		}
		if iterTime > 0 {
			sweep.DalyOptimal = dp.OptimalInterval().Seconds() / iterTime.Seconds()
		}
	}

	best := 0
	for i, p := range sweep.Points {
		if p.MeanE2 < sweep.Points[best].MeanE2 {
			best = i
		}
	}
	if len(sweep.Points) > 0 {
		sweep.BestMeasured = sweep.Points[best].C
	}
	return sweep, nil
}

// Render prints the sweep series with the Daly comparison.
func (s *IntervalSweep) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "checkpoint interval sweep: %d ranks, MTTF %.0f s, %d seeds averaged\n",
		s.Config.Ranks, s.Config.MTTF.Seconds(), len(s.Config.Seeds))
	fmt.Fprintf(&b, "baseline (single checkpoint): %.0f s; empirical checkpoint-cycle cost δ ≈ %.1f s\n\n",
		s.Baseline.Seconds(), s.CheckpointCost.Seconds())
	header := []string{"C", "E1", "mean E2", "mean F", "Daly E[T]"}
	var rows [][]string
	for _, p := range s.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.C),
			fmt.Sprintf("%.0f s", p.E1.Seconds()),
			fmt.Sprintf("%.0f s", p.MeanE2.Seconds()),
			fmt.Sprintf("%.1f", p.MeanF),
			fmt.Sprintf("%.0f s", p.Daly.Seconds()),
		})
	}
	b.WriteString(stats.Table(header, rows))
	fmt.Fprintf(&b, "\nmeasured best interval: %d iterations; Daly optimum: %.0f iterations\n",
		s.BestMeasured, s.DalyOptimal)
	return b.String()
}
