package xsim

import (
	"context"
	"fmt"
	"strings"

	"xsim/internal/daly"
	"xsim/internal/runner"
	"xsim/internal/stats"
)

// IntervalSweepConfig parameterises the checkpoint-interval sweep: the
// figure-style extension of Table II. E2 is measured across a range of
// checkpoint intervals at a fixed system MTTF and compared with Daly's
// analytic expected-runtime model (the optimisation literature the paper
// cites) — locating the empirical optimum and the crossover between
// checkpointing too often and losing too much work.
type IntervalSweepConfig struct {
	// RunSpec carries the shared simulation parameters (Ranks defaults to
	// 512) and the campaign-pool controls. RunSpec.Seed is unused: the
	// sweep averages over the explicit Seeds list.
	RunSpec
	// Iterations is the total iteration count (default 1,000).
	Iterations int
	// Intervals are the checkpoint intervals to sweep (default
	// 500/250/125/62/31).
	Intervals []int
	// MTTF is the system mean-time-to-failure (default 3,000 s).
	MTTF Duration
	// Seeds are averaged per interval to smooth the random failure
	// draws (default 3 seeds starting at 133).
	Seeds []int64
}

// IntervalSweepPoint is one measured point of the sweep.
type IntervalSweepPoint struct {
	// C is the checkpoint interval in iterations.
	C int
	// E1 is the no-failure execution time at this interval.
	E1 Time
	// MeanE2 averages the measured completion times over the seeds.
	MeanE2 Duration
	// MeanF averages the experienced failures over the seeds.
	MeanF float64
	// Daly is the analytic expected runtime at this interval.
	Daly Duration
}

// IntervalSweep is the sweep result.
type IntervalSweep struct {
	Config IntervalSweepConfig
	// Points holds the measured series, in the order of
	// Config.Intervals.
	Points []IntervalSweepPoint
	// Baseline is the no-failure, single-checkpoint execution time.
	Baseline Time
	// CheckpointCost is the empirical per-checkpoint-cycle cost derived
	// from the E1 measurements (Daly's δ).
	CheckpointCost Duration
	// DalyOptimal is the analytic optimal interval in *iterations*.
	DalyOptimal float64
	// BestMeasured is the interval (in iterations) with the lowest
	// measured mean E2.
	BestMeasured int
	// Stats pools the sweep's execution accounting and simulation
	// metrics across every E1 run and seed campaign.
	Stats CampaignStats
}

// defaults fills the zero fields.
func (cfg *IntervalSweepConfig) defaults() {
	cfg.RunSpec.defaults(512)
	if cfg.Iterations == 0 {
		cfg.Iterations = 1000
	}
	if len(cfg.Intervals) == 0 {
		cfg.Intervals = []int{500, 250, 125, 62, 31}
	}
	if cfg.MTTF == 0 {
		cfg.MTTF = 3000 * Second
	}
	if len(cfg.Seeds) == 0 {
		cfg.Seeds = []int64{133, 134, 135}
	}
}

// RunIntervalSweep measures E2 across checkpoint intervals; it is
// RunIntervalSweepContext without cancellation.
func RunIntervalSweep(cfg IntervalSweepConfig) (*IntervalSweep, error) {
	return RunIntervalSweepContext(context.Background(), cfg)
}

// RunIntervalSweepContext measures E2 across checkpoint intervals and fits
// Daly's model to the same scenario. The baseline, the per-interval E1
// runs, and every (interval, seed) campaign are independent and fan out
// across the campaign pool; each campaign's failure draws depend only on
// its seed, so the sweep is identical at any pool size. On error (a
// failed point, or cancellation) the partial sweep keeps its pooled Stats
// but no Points.
func RunIntervalSweepContext(ctx context.Context, cfg IntervalSweepConfig) (*IntervalSweep, error) {
	cfg.defaults()
	base, err := HeatWorkloadFor(cfg.Ranks)
	if err != nil {
		return nil, err
	}
	base.Iterations = cfg.Iterations

	simCfg := cfg.baseConfig()
	heatAt := func(interval int) HeatConfig {
		hc := base
		hc.ExchangeInterval = interval
		hc.CheckpointInterval = interval
		return hc
	}
	e1Task := func(index, interval int) runner.Task[expCell] {
		return runner.Task[expCell]{
			Spec: runner.Spec{Index: index, Label: fmt.Sprintf("E1 c=%d", interval)},
			Run: func(ctx context.Context) (expCell, error) {
				res, err := runHeatE1(ctx, simCfg, heatAt(interval), cfg.ProgMode)
				return expCell{res: res}, err
			},
		}
	}

	// Task order: baseline E1, per-interval E1s, then interval-major
	// (interval, seed) campaigns. Points are assembled from this fixed
	// order, never from completion order.
	tasks := []runner.Task[expCell]{e1Task(0, cfg.Iterations)}
	for _, c := range cfg.Intervals {
		tasks = append(tasks, e1Task(len(tasks), c))
	}
	campStart := len(tasks)
	for _, c := range cfg.Intervals {
		for _, seed := range cfg.Seeds {
			hc := heatAt(c)
			tasks = append(tasks, runner.Task[expCell]{
				Spec: runner.Spec{
					Index: len(tasks),
					Label: fmt.Sprintf("c=%d seed=%d", c, seed),
					Seed:  seed,
				},
				Run: func(ctx context.Context) (expCell, error) {
					camp := Campaign{
						Base:             simCfg,
						MTTF:             cfg.MTTF,
						Seed:             seed,
						CheckpointPrefix: "heat",
					}
					setHeatApp(&camp, hc, cfg.ProgMode)
					res, err := camp.RunContext(ctx)
					return expCell{camp: res}, err
				},
			})
		}
	}

	cells, rstats, err := runner.Run(ctx, cfg.runnerConfig(), tasks)
	sweep := &IntervalSweep{Config: cfg, Stats: CampaignStats{Runner: rstats}}
	for _, c := range cells {
		sweep.Stats.absorb(c.res)
		sweep.Stats.absorbCampaign(c.camp)
	}
	if err != nil {
		return sweep, err
	}

	sweep.Baseline = cells[0].res.SimTime
	i := campStart
	for ci, c := range cfg.Intervals {
		point := IntervalSweepPoint{C: c, E1: cells[1+ci].res.SimTime}
		var sumE2, sumF float64
		for range cfg.Seeds {
			res := cells[i].camp
			i++
			sumE2 += Duration(res.E2).Seconds()
			sumF += float64(res.Failures)
		}
		point.MeanE2 = Seconds(sumE2 / float64(len(cfg.Seeds)))
		point.MeanF = sumF / float64(len(cfg.Seeds))
		sweep.Points = append(sweep.Points, point)
	}

	// Fit Daly's model: the per-cycle checkpoint cost δ comes from the
	// measured E1 slope (extra cycles vs the baseline's single one), the
	// solve time from the baseline.
	var deltaSum float64
	var deltaN int
	for _, p := range sweep.Points {
		cycles := cfg.Iterations/p.C - 1 // extra checkpoint cycles vs baseline
		if cycles > 0 {
			deltaSum += p.E1.Sub(sweep.Baseline).Seconds() / float64(cycles)
			deltaN++
		}
	}
	if deltaN > 0 {
		sweep.CheckpointCost = Seconds(deltaSum / float64(deltaN))
	}
	iterTime := Seconds(sweep.Baseline.Seconds() / float64(cfg.Iterations))
	dp := daly.Params{
		Solve: Duration(sweep.Baseline),
		Delta: sweep.CheckpointCost,
		MTTF:  cfg.MTTF,
	}
	if err := dp.Validate(); err == nil {
		for i, p := range sweep.Points {
			tau := Duration(p.C) * iterTime / Duration(Second) * Second
			sweep.Points[i].Daly = dp.ExpectedRuntime(tau)
		}
		if iterTime > 0 {
			sweep.DalyOptimal = dp.OptimalInterval().Seconds() / iterTime.Seconds()
		}
	}

	best := 0
	for i, p := range sweep.Points {
		if p.MeanE2 < sweep.Points[best].MeanE2 {
			best = i
		}
	}
	if len(sweep.Points) > 0 {
		sweep.BestMeasured = sweep.Points[best].C
	}
	return sweep, nil
}

// Render prints the sweep series with the Daly comparison.
func (s *IntervalSweep) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "checkpoint interval sweep: %d ranks, MTTF %.0f s, %d seeds averaged\n",
		s.Config.Ranks, s.Config.MTTF.Seconds(), len(s.Config.Seeds))
	fmt.Fprintf(&b, "baseline (single checkpoint): %.0f s; empirical checkpoint-cycle cost δ ≈ %.1f s\n\n",
		s.Baseline.Seconds(), s.CheckpointCost.Seconds())
	header := []string{"C", "E1", "mean E2", "mean F", "Daly E[T]"}
	var rows [][]string
	for _, p := range s.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.C),
			fmt.Sprintf("%.0f s", p.E1.Seconds()),
			fmt.Sprintf("%.0f s", p.MeanE2.Seconds()),
			fmt.Sprintf("%.1f", p.MeanF),
			fmt.Sprintf("%.0f s", p.Daly.Seconds()),
		})
	}
	b.WriteString(stats.Table(header, rows))
	fmt.Fprintf(&b, "\nmeasured best interval: %d iterations; Daly optimum: %.0f iterations\n",
		s.BestMeasured, s.DalyOptimal)
	return b.String()
}
