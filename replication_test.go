package xsim

import (
	"testing"

	"xsim/internal/checkpoint"
)

// writeCkpt puts a (complete or incomplete) checkpoint file for (iter,
// rank) into the store.
func writeCkpt(t *testing.T, store *Store, prefix string, iter, rank int, complete bool) {
	t.Helper()
	w := store.Create(checkpoint.FileName(prefix, iter, rank))
	if _, err := w.Write([]byte{1}); err != nil {
		t.Fatal(err)
	}
	if complete {
		if err := w.Commit(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLatestReplicatedCheckpointCoverage(t *testing.T) {
	// 3 logical ranks × 2 replicas (world 0..5). A logical rank is covered
	// by either of its replicas' complete files; one uncovered logical
	// rank sinks the whole iteration.
	const n, degree = 3, 2
	store := NewStore()
	if got := latestReplicatedCheckpoint(store, "r", n, degree); got != 0 {
		t.Fatalf("empty store: got %d, want 0", got)
	}
	// Iteration 5: fully covered, logical 1 only by its replica (rank 4).
	for _, rank := range []int{0, 2, 4} {
		writeCkpt(t, store, "r", 5, rank, true)
	}
	writeCkpt(t, store, "r", 5, 1, false) // replica 0 of logical 1 died mid-write
	// Iteration 10: logical 2 has no complete file at all — not covered.
	for _, rank := range []int{0, 1, 3, 4} {
		writeCkpt(t, store, "r", 10, rank, true)
	}
	writeCkpt(t, store, "r", 10, 2, false)
	if got := latestReplicatedCheckpoint(store, "r", n, degree); got != 5 {
		t.Fatalf("got iteration %d, want 5 (iteration 10 leaves logical 2 uncovered)", got)
	}
	writeCkpt(t, store, "r", 10, 5, true) // replica of logical 2 completes
	if got := latestReplicatedCheckpoint(store, "r", n, degree); got != 10 {
		t.Fatalf("got iteration %d, want 10 after coverage completes", got)
	}
}

// Regression: between-run cleanup used the every-world-rank completeness
// criterion even for replicated campaigns, deleting exactly the sets a
// replicated restart resumes from — a set missing one dead replica's file
// is incomplete by world-rank count but perfectly restorable.
func TestReplicaAwareCleanupKeepsCoveredSets(t *testing.T) {
	const ranks, degree = 6, 2 // 3 logical ranks
	store := NewStore()
	// Iteration 5: every logical rank covered — logical 0 by rank 0,
	// logical 1 only by its replica (rank 4; rank 1 died mid-write),
	// logical 2 by rank 2. Ranks 3 and 5 never wrote at all.
	for _, rank := range []int{0, 2, 4} {
		writeCkpt(t, store, "repl", 5, rank, true)
	}
	writeCkpt(t, store, "repl", 5, 1, false)
	// Iteration 10: logical 2 (ranks 2 and 5) has no complete file.
	for _, rank := range []int{0, 1, 3, 4} {
		writeCkpt(t, store, "repl", 10, rank, true)
	}

	if checkpoint.SetComplete(store, "repl", 5, ranks) {
		t.Fatal("every-rank criterion unexpectedly accepts the covered set")
	}
	covered := ReplicatedSetComplete(ranks, degree)
	if !covered(store, "repl", 5) {
		t.Fatal("replica criterion rejects the covered set")
	}
	removed := checkpoint.CleanIncompleteSetsBy(store, "repl", func(it int) bool {
		return covered(store, "repl", it)
	})
	if len(removed) != 1 || removed[0] != 10 {
		t.Fatalf("removed %v, want [10]", removed)
	}
	if got := checkpoint.Iterations(store, "repl"); len(got) != 1 || got[0] != 5 {
		t.Fatalf("surviving sets %v, want [5]", got)
	}
	if got := latestReplicatedCheckpoint(store, "repl", ranks/degree, degree); got != 5 {
		t.Fatalf("restart point %d, want 5", got)
	}
}

// End-to-end: one replica dies and is absorbed; later its buddy dies too,
// exhausting the logical rank and aborting the run. With the replica-aware
// cleanup criterion the campaign restarts from the replica-covered
// checkpoint; the default every-rank criterion deletes it (the first dead
// replica's file is missing) and forces a from-scratch rerun.
func TestReplicatedFailoverThenRestart(t *testing.T) {
	const ranks, degree = 8, 2
	run := func(setComplete func(*Store, string, int) bool) *CampaignResult {
		sc := ReplicatedStencilConfig{
			Degree:              degree,
			Iterations:          10,
			ComputePerIteration: Seconds(1),
			HaloBytes:           256,
			CheckpointInterval:  2,
			CheckpointCost:      100 * Millisecond,
			Prefix:              "repl",
		}
		camp := Campaign{
			Base: Config{
				Ranks: ranks,
				Failures: Schedule{
					{Rank: 1, At: Time(2500 * Millisecond)}, // replica 0 of logical 1: absorbed
					{Rank: 5, At: Time(6500 * Millisecond)}, // replica 1 of logical 1: exhaustion
				},
			},
			CheckpointPrefix: sc.Prefix,
			SetCompleteFor:   setComplete,
			SuccessFor:       replicatedSuccess(ranks, degree),
			AppFor:           func(int) App { return RunReplicatedStencil(sc) },
		}
		res, err := camp.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Done || len(res.Runs) != 2 || res.Failures != 2 {
			t.Fatalf("result = %+v", res)
		}
		return res
	}
	aware := run(ReplicatedSetComplete(ranks, degree))
	def := run(nil)
	// Both campaigns face the same failures; only the restart point
	// differs, so the replica-aware campaign must finish strictly sooner.
	if aware.E2 >= def.E2 {
		t.Fatalf("replica-aware cleanup E2 %v not sooner than every-rank E2 %v",
			Duration(aware.E2), Duration(def.E2))
	}
}

func TestReplicatedStencilFailoverRun(t *testing.T) {
	// A single run with one injected failure per replica sphere: every
	// logical rank keeps a live replica, so the run completes without a
	// restart and replicatedSuccess accepts it while Result.Success does
	// not.
	const ranks, degree = 8, 2
	sc := ReplicatedStencilConfig{
		Degree:              degree,
		Iterations:          10,
		ComputePerIteration: Seconds(1),
		HaloBytes:           256,
	}
	sim, err := New(Config{
		Ranks: ranks,
		Failures: Schedule{
			{Rank: 1, At: Time(2500 * Millisecond)}, // replica 0 of logical 1
			{Rank: 6, At: Time(9500 * Millisecond)}, // replica 1 of logical 2
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(RunReplicatedStencil(sc))
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 2 || res.Aborted != 0 || res.Completed != ranks-2 {
		t.Fatalf("completed=%d failed=%d aborted=%d, want 6/2/0 (deaths: %v)",
			res.Completed, res.Failed, res.Aborted, res.Deaths)
	}
	if res.Success() {
		t.Fatal("Result.Success should reject a run with failed ranks")
	}
	if !replicatedSuccess(ranks, degree)(res) {
		t.Fatal("replicatedSuccess should accept failed-but-covered replicas")
	}
}

func TestReplicatedStencilExhaustionAborts(t *testing.T) {
	// Both replicas of logical 1 die: the survivors must notice the
	// exhausted replica group and abort rather than hang, and
	// replicatedSuccess must demand a restart.
	const ranks, degree = 8, 2
	sc := ReplicatedStencilConfig{
		Degree:              degree,
		Iterations:          10,
		ComputePerIteration: Seconds(1),
		HaloBytes:           256,
	}
	sim, err := New(Config{
		Ranks: ranks,
		Failures: Schedule{
			{Rank: 1, At: Time(2500 * Millisecond)},
			{Rank: 5, At: Time(4500 * Millisecond)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(RunReplicatedStencil(sc))
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted == 0 {
		t.Fatalf("expected survivors to abort on replica exhaustion (deaths: %v)", res.Deaths)
	}
	if replicatedSuccess(ranks, degree)(res) {
		t.Fatal("replicatedSuccess should reject an exhausted replica group")
	}
}

// smokeCrossoverConfig is a tiny grid for the CI smoke test.
func smokeCrossoverConfig() ReplicationCrossoverConfig {
	return ReplicationCrossoverConfig{
		RunSpec:             RunSpec{Ranks: 12, Seed: 7},
		Degrees:             []int{2, 3},
		MTTFs:               []Duration{100 * Second},
		Iterations:          8,
		ComputePerIteration: Seconds(1),
		HaloBytes:           256,
		CheckpointCost:      2 * Second,
		RestartCost:         2 * Second,
	}
}

func TestReplicationCrossoverSmoke(t *testing.T) {
	table, err := RunReplicationCrossover(smokeCrossoverConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 1 MTTF × (checkpoint + 2 degrees × {replication, hybrid}) = 5 cells.
	if len(table.Rows) != 5 {
		t.Fatalf("got %d rows, want 5:\n%s", len(table.Rows), table.Render())
	}
	if table.Solve <= 0 {
		t.Fatalf("non-positive solve %v", table.Solve)
	}
	for _, row := range table.Rows {
		if row.E2 <= 0 || row.Runs < 1 {
			t.Fatalf("degenerate cell %+v:\n%s", row, table.Render())
		}
		if row.Arm == ArmReplication && row.Interval != 0 {
			t.Fatalf("replication arm with checkpoint interval %d", row.Interval)
		}
		if row.Arm != ArmReplication && row.Interval < 1 {
			t.Fatalf("arm %s without checkpoint interval", row.Arm)
		}
	}
	t.Logf("\n%s", table.Render())
}

func TestReplicationCrossoverValidatesDegrees(t *testing.T) {
	cfg := smokeCrossoverConfig()
	cfg.Degrees = []int{5} // 12 % 5 != 0
	if _, err := RunReplicationCrossover(cfg); err == nil {
		t.Fatal("expected divisibility error")
	}
	cfg.Degrees = []int{1}
	if _, err := RunReplicationCrossover(cfg); err == nil {
		t.Fatal("expected degree >= 2 error")
	}
}

func TestReplicationCrossoverFrontier(t *testing.T) {
	if testing.Short() {
		t.Skip("frontier sweep is long")
	}
	// The study's acceptance bar, pinned at one seed: at a 50 s MTTF the
	// 2-way replication arm (≈ 2×solve plus occasional replica-exhaustion
	// restarts) beats Daly-optimal checkpoint/restart, and at 1600 s the
	// ordering flips — paying double resources for failover only pays
	// when failures are frequent.
	cfg := ReplicationCrossoverConfig{
		RunSpec: RunSpec{Ranks: 24, Seed: 11},
		Degrees: []int{2},
		MTTFs:   []Duration{50 * Second, 1600 * Second},
	}
	table, err := RunReplicationCrossover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", table.Render())

	low, high := 50*Second, 1600*Second
	ckptLow := table.Row(low, ArmCheckpoint, 1)
	replLow := table.Row(low, ArmReplication, 2)
	ckptHigh := table.Row(high, ArmCheckpoint, 1)
	replHigh := table.Row(high, ArmReplication, 2)
	if ckptLow == nil || replLow == nil || ckptHigh == nil || replHigh == nil {
		t.Fatal("missing frontier cells")
	}
	if replLow.E2 >= ckptLow.E2 {
		t.Errorf("MTTF=50s: replication E2 %v should beat checkpoint E2 %v",
			replLow.E2, ckptLow.E2)
	}
	if ckptHigh.E2 >= replHigh.E2 {
		t.Errorf("MTTF=1600s: checkpoint E2 %v should beat replication E2 %v",
			ckptHigh.E2, replHigh.E2)
	}
	// Failover proof: the low-MTTF replication cell experienced failures,
	// and fewer restarts than failures — some failures were absorbed by
	// surviving replicas instead of forcing a restart.
	if replLow.F == 0 {
		t.Error("MTTF=50s replication cell saw no failures — injection broken")
	}
	if replLow.Runs >= replLow.F+1 {
		t.Errorf("MTTF=50s replication: %d runs for %d failures — no failure was absorbed by failover",
			replLow.Runs, replLow.F)
	}
}
