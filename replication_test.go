package xsim

import (
	"testing"

	"xsim/internal/checkpoint"
)

// writeCkpt puts a (complete or incomplete) checkpoint file for (iter,
// rank) into the store.
func writeCkpt(t *testing.T, store *Store, prefix string, iter, rank int, complete bool) {
	t.Helper()
	w := store.Create(checkpoint.FileName(prefix, iter, rank))
	if _, err := w.Write([]byte{1}); err != nil {
		t.Fatal(err)
	}
	if complete {
		if err := w.Commit(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLatestReplicatedCheckpointCoverage(t *testing.T) {
	// 3 logical ranks × 2 replicas (world 0..5). A logical rank is covered
	// by either of its replicas' complete files; one uncovered logical
	// rank sinks the whole iteration.
	const n, degree = 3, 2
	store := NewStore()
	if got := latestReplicatedCheckpoint(store, "r", n, degree); got != 0 {
		t.Fatalf("empty store: got %d, want 0", got)
	}
	// Iteration 5: fully covered, logical 1 only by its replica (rank 4).
	for _, rank := range []int{0, 2, 4} {
		writeCkpt(t, store, "r", 5, rank, true)
	}
	writeCkpt(t, store, "r", 5, 1, false) // replica 0 of logical 1 died mid-write
	// Iteration 10: logical 2 has no complete file at all — not covered.
	for _, rank := range []int{0, 1, 3, 4} {
		writeCkpt(t, store, "r", 10, rank, true)
	}
	writeCkpt(t, store, "r", 10, 2, false)
	if got := latestReplicatedCheckpoint(store, "r", n, degree); got != 5 {
		t.Fatalf("got iteration %d, want 5 (iteration 10 leaves logical 2 uncovered)", got)
	}
	writeCkpt(t, store, "r", 10, 5, true) // replica of logical 2 completes
	if got := latestReplicatedCheckpoint(store, "r", n, degree); got != 10 {
		t.Fatalf("got iteration %d, want 10 after coverage completes", got)
	}
}

func TestReplicatedStencilFailoverRun(t *testing.T) {
	// A single run with one injected failure per replica sphere: every
	// logical rank keeps a live replica, so the run completes without a
	// restart and replicatedSuccess accepts it while Result.Success does
	// not.
	const ranks, degree = 8, 2
	sc := ReplicatedStencilConfig{
		Degree:              degree,
		Iterations:          10,
		ComputePerIteration: Seconds(1),
		HaloBytes:           256,
	}
	sim, err := New(Config{
		Ranks: ranks,
		Failures: Schedule{
			{Rank: 1, At: Time(2500 * Millisecond)}, // replica 0 of logical 1
			{Rank: 6, At: Time(9500 * Millisecond)}, // replica 1 of logical 2
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(RunReplicatedStencil(sc))
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 2 || res.Aborted != 0 || res.Completed != ranks-2 {
		t.Fatalf("completed=%d failed=%d aborted=%d, want 6/2/0 (deaths: %v)",
			res.Completed, res.Failed, res.Aborted, res.Deaths)
	}
	if res.Success() {
		t.Fatal("Result.Success should reject a run with failed ranks")
	}
	if !replicatedSuccess(ranks, degree)(res) {
		t.Fatal("replicatedSuccess should accept failed-but-covered replicas")
	}
}

func TestReplicatedStencilExhaustionAborts(t *testing.T) {
	// Both replicas of logical 1 die: the survivors must notice the
	// exhausted replica group and abort rather than hang, and
	// replicatedSuccess must demand a restart.
	const ranks, degree = 8, 2
	sc := ReplicatedStencilConfig{
		Degree:              degree,
		Iterations:          10,
		ComputePerIteration: Seconds(1),
		HaloBytes:           256,
	}
	sim, err := New(Config{
		Ranks: ranks,
		Failures: Schedule{
			{Rank: 1, At: Time(2500 * Millisecond)},
			{Rank: 5, At: Time(4500 * Millisecond)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(RunReplicatedStencil(sc))
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted == 0 {
		t.Fatalf("expected survivors to abort on replica exhaustion (deaths: %v)", res.Deaths)
	}
	if replicatedSuccess(ranks, degree)(res) {
		t.Fatal("replicatedSuccess should reject an exhausted replica group")
	}
}

// smokeCrossoverConfig is a tiny grid for the CI smoke test.
func smokeCrossoverConfig() ReplicationCrossoverConfig {
	return ReplicationCrossoverConfig{
		RunSpec:             RunSpec{Ranks: 12, Seed: 7},
		Degrees:             []int{2, 3},
		MTTFs:               []Duration{100 * Second},
		Iterations:          8,
		ComputePerIteration: Seconds(1),
		HaloBytes:           256,
		CheckpointCost:      2 * Second,
		RestartCost:         2 * Second,
	}
}

func TestReplicationCrossoverSmoke(t *testing.T) {
	table, err := RunReplicationCrossover(smokeCrossoverConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 1 MTTF × (checkpoint + 2 degrees × {replication, hybrid}) = 5 cells.
	if len(table.Rows) != 5 {
		t.Fatalf("got %d rows, want 5:\n%s", len(table.Rows), table.Render())
	}
	if table.Solve <= 0 {
		t.Fatalf("non-positive solve %v", table.Solve)
	}
	for _, row := range table.Rows {
		if row.E2 <= 0 || row.Runs < 1 {
			t.Fatalf("degenerate cell %+v:\n%s", row, table.Render())
		}
		if row.Arm == ArmReplication && row.Interval != 0 {
			t.Fatalf("replication arm with checkpoint interval %d", row.Interval)
		}
		if row.Arm != ArmReplication && row.Interval < 1 {
			t.Fatalf("arm %s without checkpoint interval", row.Arm)
		}
	}
	t.Logf("\n%s", table.Render())
}

func TestReplicationCrossoverValidatesDegrees(t *testing.T) {
	cfg := smokeCrossoverConfig()
	cfg.Degrees = []int{5} // 12 % 5 != 0
	if _, err := RunReplicationCrossover(cfg); err == nil {
		t.Fatal("expected divisibility error")
	}
	cfg.Degrees = []int{1}
	if _, err := RunReplicationCrossover(cfg); err == nil {
		t.Fatal("expected degree >= 2 error")
	}
}

func TestReplicationCrossoverFrontier(t *testing.T) {
	if testing.Short() {
		t.Skip("frontier sweep is long")
	}
	// The study's acceptance bar, pinned at one seed: at a 50 s MTTF the
	// 2-way replication arm (≈ 2×solve plus occasional replica-exhaustion
	// restarts) beats Daly-optimal checkpoint/restart, and at 1600 s the
	// ordering flips — paying double resources for failover only pays
	// when failures are frequent.
	cfg := ReplicationCrossoverConfig{
		RunSpec: RunSpec{Ranks: 24, Seed: 11},
		Degrees: []int{2},
		MTTFs:   []Duration{50 * Second, 1600 * Second},
	}
	table, err := RunReplicationCrossover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", table.Render())

	low, high := 50*Second, 1600*Second
	ckptLow := table.Row(low, ArmCheckpoint, 1)
	replLow := table.Row(low, ArmReplication, 2)
	ckptHigh := table.Row(high, ArmCheckpoint, 1)
	replHigh := table.Row(high, ArmReplication, 2)
	if ckptLow == nil || replLow == nil || ckptHigh == nil || replHigh == nil {
		t.Fatal("missing frontier cells")
	}
	if replLow.E2 >= ckptLow.E2 {
		t.Errorf("MTTF=50s: replication E2 %v should beat checkpoint E2 %v",
			replLow.E2, ckptLow.E2)
	}
	if ckptHigh.E2 >= replHigh.E2 {
		t.Errorf("MTTF=1600s: checkpoint E2 %v should beat replication E2 %v",
			ckptHigh.E2, replHigh.E2)
	}
	// Failover proof: the low-MTTF replication cell experienced failures,
	// and fewer restarts than failures — some failures were absorbed by
	// surviving replicas instead of forcing a restart.
	if replLow.F == 0 {
		t.Error("MTTF=50s replication cell saw no failures — injection broken")
	}
	if replLow.Runs >= replLow.F+1 {
		t.Errorf("MTTF=50s replication: %d runs for %d failures — no failure was absorbed by failover",
			replLow.Runs, replLow.F)
	}
}
