#!/bin/sh
# ci.sh — the tier-1 gate for this repository.
#
# Every change must pass this script before it lands. It runs, in order:
#   1. go vet        (static checks)
#   2. go build      (everything compiles, including examples and cmds)
#   3. go test       (full unit/integration suite, includes the
#                     Workers ∈ {1,2,4} determinism cross-check)
#   4. go test -race (engine + MPI layer under the race detector; the
#                     parallel window protocol must be data-race free)
set -eu

cd "$(dirname "$0")"

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race (core + mpi)"
go test -race ./internal/core/ ./internal/mpi/

echo "CI OK"
