#!/bin/sh
# ci.sh — the tier-1 gate for this repository.
#
# Every change must pass this script before it lands. It runs, in order:
#   1. gofmt -l      (formatting)
#   2. go vet        (static checks)
#   3. go build      (everything compiles, including examples and cmds)
#   4. go test       (full unit/integration suite, includes the
#                     Workers ∈ {1,2,4} determinism cross-check)
#   5. go test -race (engine + MPI layer under the race detector; the
#                     parallel window protocol must be data-race free)
#   6. BenchmarkHandoff allocation gate (the context-switch hot path
#                     must stay at 0 allocs/op)
set -eu

cd "$(dirname "$0")"

echo "== gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race (core + mpi)"
go test -race ./internal/core/ ./internal/mpi/

echo "== BenchmarkHandoff allocation gate"
bench=$(go test -run '^$' -bench '^BenchmarkHandoff$' -benchmem -benchtime 1000x ./internal/core/)
echo "$bench"
echo "$bench" | awk '
	/^BenchmarkHandoff/ {
		seen = 1
		for (i = 1; i <= NF; i++) {
			if ($i == "allocs/op" && $(i-1) != "0") {
				print "FAIL: handoff hot path allocates (" $(i-1) " allocs/op, want 0)" > "/dev/stderr"
				exit 1
			}
		}
	}
	END { if (!seen) { print "FAIL: BenchmarkHandoff did not run" > "/dev/stderr"; exit 1 } }
'

echo "CI OK"
