#!/bin/sh
# ci.sh — the tier-1 gate for this repository.
#
# Every change must pass this script before it lands. It runs, in order:
#   1. gofmt -l      (formatting)
#   2. go vet        (static checks)
#   3. go build      (everything compiles, including examples and cmds)
#   4. go test       (full unit/integration suite, includes the
#                     Workers ∈ {1,2,4} determinism cross-check)
#   5. go test -race (whole module under the race detector; the parallel
#                     window protocol must be data-race free)
#   6. differential harness (500 random MPI workloads under -race,
#                     sequential vs Workers ∈ {2,4}, engine/MPI invariants
#                     enabled; payload digests double as a check that
#                     data-plane pooling never leaks one message's bytes
#                     into another)
#   6b. program-mode equivalence (closure vs program digests under -race:
#                     500 random workloads both ways, the heat/MPI twin
#                     tests, and the Table II program-mode campaign)
#   7. fuzz smoke     (10s of coverage-guided fuzzing per parsing surface;
#                     checked-in corpora already ran as regressions in 4)
#   8. BenchmarkHandoff allocation gate (the context-switch hot path
#                     must stay at 0 allocs/op — Validate must cost nothing
#                     when off)
#   8b. BenchmarkPingPong allocation gate (the MPI data plane recycles
#                     envelopes/requests/payload buffers; a regression that
#                     reintroduces per-message allocation fails here)
#   8c. bytes-per-VP budget gate (a 256k-rank program-mode world must
#                     stay within 1 KiB of resident memory per virtual
#                     process after one exchange step — the paper's
#                     oversubscription scaling dimension)
#   8d. checkpointing-workload memory gate (the full Table II loop in
#                     program mode at 256k ranks must finish within
#                     1.25 KiB of live memory per virtual process)
#   9. campaign-parallelism smoke (a pooled campaign under -race must
#                     produce bit-identical results to the sequential one:
#                     pool=4 vs pool=1 digests for the Table II grid and a
#                     50-seed campaign set)
#   10. checkpoint-I/O ablation smoke (with the I/O cost on, the free arm
#                     stays strictly fastest and the tiered hierarchy
#                     strictly beats the flat shared PFS; the buddy-copy
#                     drain fallback and replica-aware cleanup run under
#                     -race)
#   11. campaign-service smoke (a -race build of xsim-server serves a
#                     Table II campaign whose result is bit-for-bit the
#                     CLI's `xsim-run -campaign` output; resubmission is a
#                     cache hit with zero new simulations per /metrics;
#                     SIGTERM drains and exits cleanly)
set -eu

cd "$(dirname "$0")"

echo "== gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./..."
go test -race ./...

echo "== differential harness (500 seeds, Validate on, -race)"
XSIM_DIFF_SEEDS=500 go test -race -count=1 -run '^TestDifferentialSeqVsParallel$' ./internal/mpitest/

echo "== program-mode equivalence (closure vs prog digests, -race)"
# Program mode must be observationally identical to closure mode: the
# differential harness runs every random workload both ways (Workers in
# {1,2,4}) and compares digests, and the Table II campaign smoke pins
# row-identical results in program mode under the race detector.
XSIM_DIFF_SEEDS=500 go test -race -count=1 -run '^TestDifferentialClosureVsProg$' ./internal/mpitest/
go test -race -count=1 -run '^(TestProgHeatMatchesClosure|TestProgHeatWithFailureMatchesClosure|TestProgStepOpsMatchClosure|TestProgCollectiveWithFailureMatchesClosure)$' ./internal/mpi/
go test -race -count=1 -run '^(TestHeatProgMatchesClosure|TestHeatProgRestartMatchesClosure)$' ./internal/heat/
go test -race -count=1 -run '^TestRunTableIIProgModeMatchesClosure$' .

echo "== fuzz smoke (10s per target)"
go test -run '^$' -fuzz '^FuzzUnframe$' -fuzztime 10s ./internal/mpi/
go test -run '^$' -fuzz '^FuzzDecodeF64s$' -fuzztime 10s ./internal/mpi/
go test -run '^$' -fuzz '^FuzzDecode$' -fuzztime 10s ./internal/checkpoint/
go test -run '^$' -fuzz '^FuzzLoadExitTime$' -fuzztime 10s ./internal/checkpoint/
go test -run '^$' -fuzz '^FuzzParse$' -fuzztime 10s ./internal/fault/
go test -run '^$' -fuzz '^FuzzCampaignSpecDecode$' -fuzztime 10s .

echo "== BenchmarkHandoff allocation gate"
bench=$(go test -run '^$' -bench '^BenchmarkHandoff$' -benchmem -benchtime 1000x ./internal/core/)
echo "$bench"
echo "$bench" | awk '
	/^BenchmarkHandoff/ {
		seen = 1
		for (i = 1; i <= NF; i++) {
			if ($i == "allocs/op" && $(i-1) != "0") {
				print "FAIL: handoff hot path allocates (" $(i-1) " allocs/op, want 0)" > "/dev/stderr"
				exit 1
			}
		}
	}
	END { if (!seen) { print "FAIL: BenchmarkHandoff did not run" > "/dev/stderr"; exit 1 } }
'

echo "== BenchmarkPingPong allocation gate"
# Pre-pooling the round-trip cost 20 (eager) / 26 (rendezvous) allocs/op;
# the pooled data plane runs at 6/6. Gate at half the old numbers so noise
# cannot flake the build but a real regression cannot hide.
bench=$(go test -run '^$' -bench '^BenchmarkPingPong$' -benchmem -benchtime 1000x ./internal/mpi/)
echo "$bench"
echo "$bench" | awk '
	/^BenchmarkPingPong\/eager/    { kind = "eager"; limit = 10 }
	/^BenchmarkPingPong\/rendezvous/ { kind = "rendezvous"; limit = 13 }
	/^BenchmarkPingPong\// {
		seen++
		for (i = 1; i <= NF; i++) {
			if ($i == "allocs/op" && $(i-1) + 0 > limit) {
				print "FAIL: ping-pong " kind " path allocates (" $(i-1) " allocs/op, want <= " limit ")" > "/dev/stderr"
				exit 1
			}
		}
	}
	END { if (seen != 2) { print "FAIL: BenchmarkPingPong sub-benchmarks did not run" > "/dev/stderr"; exit 1 } }
'

echo "== bytes-per-VP budget gate (program mode, 256k ranks)"
# PR 6 carried the residual cost of one virtual process from ~2.3 KB to
# under 1 KB (bounded carriers + program VPs + slimmed per-process MPI
# state). Gate at 1024 bytes/vp so a regression that reintroduces a
# per-VP map, goroutine, or unbounded pool fails loudly.
bench=$(go test -run '^$' -bench '^BenchmarkBytesPerVP/prog/ranks=262144$' -benchtime 1x ./internal/mpi/)
echo "$bench"
echo "$bench" | awk '
	/^BenchmarkBytesPerVP\/prog\/ranks=262144/ {
		seen = 1
		for (i = 1; i <= NF; i++) {
			if ($i == "bytes/vp" && $(i-1) + 0 > 1024) {
				print "FAIL: program-mode VP footprint is " $(i-1) " bytes/vp, want <= 1024" > "/dev/stderr"
				exit 1
			}
		}
	}
	END { if (!seen) { print "FAIL: BenchmarkBytesPerVP/prog/ranks=262144 did not run" > "/dev/stderr"; exit 1 } }
'

echo "== checkpointing-workload memory gate (program mode, 256k ranks)"
# The full Table II loop (halo exchange + checkpoint + barrier every other
# iteration) must leave at most 1.25 KiB of live memory per virtual
# process once the run completes — the budget that makes 256k–1M-rank
# campaigns feasible on one host. Gates the post-run live footprint
# (retained-bytes/vp); the mid-run peak is reported alongside for the
# closure-vs-program comparison but is dominated by the all-ranks halo
# burst, which is reused capacity, not per-rank state.
bench=$(go test -run '^$' -bench '^BenchmarkHeatCkptBytesPerVP/prog/ranks=262144$' -benchtime 1x ./internal/heat/)
echo "$bench"
echo "$bench" | awk '
	/^BenchmarkHeatCkptBytesPerVP\/prog\/ranks=262144/ {
		seen = 1
		for (i = 1; i <= NF; i++) {
			if ($i == "retained-bytes/vp" && $(i-1) + 0 > 1280) {
				print "FAIL: checkpointing program-mode footprint is " $(i-1) " retained-bytes/vp, want <= 1280" > "/dev/stderr"
				exit 1
			}
		}
	}
	END { if (!seen) { print "FAIL: BenchmarkHeatCkptBytesPerVP/prog/ranks=262144 did not run" > "/dev/stderr"; exit 1 } }
'

echo "== campaign-parallelism smoke (pool=4 vs pool=1 digests, -race)"
go test -race -count=1 -run '^(TestRunCampaignsDeterministicAcrossPools|TestTableIIPoolMatchesSequential|TestTableIPoolMatchesSequential)$' .

echo "== replication-crossover smoke (r in {2,3}, one MTTF point, -race)"
go test -race -count=1 -run '^(TestReplicationCrossoverSmoke|TestReplicatedStencilFailoverRun|TestMirrorFailoverSurvivesReplicaDeath|TestParallelPartnerDeathMidDigestExchange)$' . ./internal/redundancy/

echo "== checkpoint-I/O ablation smoke (free < tiered < flat-pfs, -race)"
go test -race -count=1 -run '^(TestCheckpointIOAblationSmoke|TestDrainInterruptedByFailureFallsBackATier|TestReplicaAwareCleanupKeepsCoveredSets)$' . ./internal/checkpoint/

echo "== campaign-service smoke (server vs CLI bit-for-bit, cache hit, drain)"
smoke_dir=$(mktemp -d)
server_pid=""
cleanup_smoke() {
	[ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null
	rm -rf "$smoke_dir"
}
trap cleanup_smoke EXIT

go build -race -o "$smoke_dir/xsim-server" ./cmd/xsim-server
go build -o "$smoke_dir/xsim-run" ./cmd/xsim-run
cat > "$smoke_dir/campaign.json" <<'EOF'
{"version":1,"kind":"table2","ranks":64,"seed":133,"table2":{"iterations":200,"intervals":[100,50],"mttf_seconds":[1000]}}
EOF

addr=localhost:18462
"$smoke_dir/xsim-server" -addr "$addr" -workers 2 &
server_pid=$!
ok=""
for _ in $(seq 1 100); do
	if curl -fsS "$addr/healthz" >/dev/null 2>&1; then ok=1; break; fi
	sleep 0.1
done
[ -n "$ok" ] || { echo "FAIL: xsim-server never became healthy" >&2; exit 1; }

id=$(curl -fsS -X POST -H 'X-Tenant: ci' --data-binary @"$smoke_dir/campaign.json" \
	"$addr/v1/campaigns" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
[ -n "$id" ] || { echo "FAIL: submit returned no campaign id" >&2; exit 1; }

# The NDJSON stream must carry progress events and end at the terminal line.
curl -fsS --no-buffer "$addr/v1/campaigns/$id/events" > "$smoke_dir/events.ndjson"
grep -q '"event":"progress"' "$smoke_dir/events.ndjson"
grep -q '"event":"done"' "$smoke_dir/events.ndjson"
grep -q '"state":"completed"' "$smoke_dir/events.ndjson"

# Transport equivalence: the served result must be bit-for-bit the CLI's.
curl -fsS "$addr/v1/campaigns/$id/result" > "$smoke_dir/server-result.json"
"$smoke_dir/xsim-run" -campaign "$smoke_dir/campaign.json" > "$smoke_dir/cli-result.json"
cmp "$smoke_dir/server-result.json" "$smoke_dir/cli-result.json"

# Resubmission (different tenant, extra execution knobs) is a cache hit
# that runs zero new simulations.
curl -fsS -X POST -H 'X-Tenant: ci2' --data-binary \
	'{"version":1,"kind":"table2","ranks":64,"seed":133,"workers":2,"pool":1,"table2":{"iterations":200,"intervals":[100,50],"mttf_seconds":[1000]}}' \
	"$addr/v1/campaigns" | grep -q '"cached": *true'
curl -fsS "$addr/metrics" > "$smoke_dir/metrics.txt"
grep -q '^xsim_sim_runs_total 1$' "$smoke_dir/metrics.txt"
grep -q '^xsim_cache_hits_total 1$' "$smoke_dir/metrics.txt"
grep -q '^xsim_cache_misses_total 1$' "$smoke_dir/metrics.txt"

# Graceful drain: SIGTERM must exit 0 (the -race build also verifies the
# shutdown path is data-race free).
kill -TERM "$server_pid"
wait "$server_pid"
server_pid=""

echo "CI OK"
