package xsim

import "testing"

// Regression: RunSummary.Injected used to report cfg.Failures[0], which on
// run 0 is the first Base.Failures carry-over — not the run's earliest
// injection once a drawn failure lands before it.
func TestCampaignInjectedReportsEarliestInjection(t *testing.T) {
	hc, err := HeatWorkloadFor(8)
	if err != nil {
		t.Fatal(err)
	}
	hc.Iterations = 50
	hc.ExchangeInterval = 25
	hc.CheckpointInterval = 25
	camp := Campaign{
		// The base schedule's failure is listed first but happens last.
		Base: Config{Ranks: 8, Failures: Schedule{{Rank: 2, At: Time(500 * Second)}}},
		DrawFailures: func(run int, start Time) Schedule {
			if run == 0 {
				return Schedule{{Rank: 0, At: Time(30 * Second)}}
			}
			return nil
		},
		CheckpointPrefix: "heat",
		AppFor:           func(int) App { return RunHeat(hc) },
	}
	res, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) < 2 || !res.Done {
		t.Fatalf("result = %+v", res)
	}
	inj := res.Runs[0].Injected
	if inj == nil || inj.Rank != 0 || inj.At != Time(30*Second) {
		t.Fatalf("run 0 Injected = %+v, want rank 0 at 30s", inj)
	}
	if res.Runs[1].Injected != nil {
		t.Fatalf("run 1 Injected = %+v, want nil", res.Runs[1].Injected)
	}
}
