package xsim

import "testing"

// Regression: MTTFa divided the absolute E2 clock by F+1. A campaign that
// starts at a nonzero StartClock (a later link of a restart chain, or a
// stacked experiment reusing one virtual timeline) had its elapsed time
// inflated by the start offset, overstating the experienced MTTF.
func TestMTTFaUsesElapsedTimeNotAbsoluteClock(t *testing.T) {
	r := &CampaignResult{
		Start:    Time(3000 * Second),
		E2:       Time(9000 * Second),
		Failures: 1,
	}
	if got, want := r.MTTFa(), Duration(3000*Second); got != want {
		t.Fatalf("MTTFa = %v, want elapsed/(F+1) = %v", got, want)
	}
	// A campaign starting at zero is unchanged.
	r.Start = 0
	if got, want := r.MTTFa(), Duration(4500*Second); got != want {
		t.Fatalf("MTTFa from zero = %v, want %v", got, want)
	}
}

// End-to-end: a campaign whose Base.StartClock is nonzero must report the
// same MTTFa as the identical campaign started at zero.
func TestMTTFaInvariantUnderStartClock(t *testing.T) {
	run := func(start Time) *CampaignResult {
		hc, err := HeatWorkloadFor(8)
		if err != nil {
			t.Fatal(err)
		}
		hc.Iterations = 50
		hc.ExchangeInterval = 25
		hc.CheckpointInterval = 25
		camp := Campaign{
			Base: Config{Ranks: 8, StartClock: start},
			DrawFailures: func(run int, at Time) Schedule {
				if run == 0 {
					return Schedule{{Rank: 1, At: at + Time(30*Second)}}
				}
				return nil
			},
			CheckpointPrefix: "heat",
			AppFor:           func(int) App { return RunHeat(hc) },
		}
		res, err := camp.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Done || res.Failures != 1 {
			t.Fatalf("start %v: result = %+v", start, res)
		}
		return res
	}
	atZero := run(0)
	shifted := run(Time(5000 * Second))
	if atZero.MTTFa() != shifted.MTTFa() {
		t.Fatalf("MTTFa changed with start clock: %v at zero vs %v shifted",
			atZero.MTTFa(), shifted.MTTFa())
	}
	if shifted.E2.Sub(shifted.Start) != Duration(atZero.E2) {
		t.Fatalf("elapsed time not invariant: %v vs %v",
			shifted.E2.Sub(shifted.Start), atZero.E2)
	}
}

// Regression: RunSummary.Injected used to report cfg.Failures[0], which on
// run 0 is the first Base.Failures carry-over — not the run's earliest
// injection once a drawn failure lands before it.
func TestCampaignInjectedReportsEarliestInjection(t *testing.T) {
	hc, err := HeatWorkloadFor(8)
	if err != nil {
		t.Fatal(err)
	}
	hc.Iterations = 50
	hc.ExchangeInterval = 25
	hc.CheckpointInterval = 25
	camp := Campaign{
		// The base schedule's failure is listed first but happens last.
		Base: Config{Ranks: 8, Failures: Schedule{{Rank: 2, At: Time(500 * Second)}}},
		DrawFailures: func(run int, start Time) Schedule {
			if run == 0 {
				return Schedule{{Rank: 0, At: Time(30 * Second)}}
			}
			return nil
		},
		CheckpointPrefix: "heat",
		AppFor:           func(int) App { return RunHeat(hc) },
	}
	res, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) < 2 || !res.Done {
		t.Fatalf("result = %+v", res)
	}
	inj := res.Runs[0].Injected
	if inj == nil || inj.Rank != 0 || inj.At != Time(30*Second) {
		t.Fatalf("run 0 Injected = %+v, want rank 0 at 30s", inj)
	}
	if res.Runs[1].Injected != nil {
		t.Fatalf("run 1 Injected = %+v, want nil", res.Runs[1].Injected)
	}
}
