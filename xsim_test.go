package xsim

import (
	"strings"
	"testing"
	"testing/quick"
)

// The aggregate-bandwidth extension must degenerate exactly: a flat model
// whose aggregate share exceeds the per-client bandwidth charges
// bit-identically to the plain per-client model, so existing flat
// configurations (and the 500-seed differential harness's zero-cost
// model) keep their digests.
func TestFlatModelDigestUnchangedByAggregateHeadroom(t *testing.T) {
	run := func(m FSModel) []Time {
		hc, err := HeatWorkloadFor(8)
		if err != nil {
			t.Fatal(err)
		}
		hc.Iterations = 40
		hc.ExchangeInterval = 10
		hc.CheckpointInterval = 10
		sim, err := New(Config{Ranks: 8, FSModel: m})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(RunHeat(hc))
		if err != nil {
			t.Fatal(err)
		}
		if res.Completed != 8 {
			t.Fatalf("completed = %d", res.Completed)
		}
		return res.PerRank
	}
	flat := run(PaperPFS())
	// 8 clients × 1 GB/s per client ≤ 256 GB/s aggregate: the per-client
	// rate governs and the shared model must charge the same times.
	shared := run(PaperPFSShared())
	for r := range flat {
		if flat[r] != shared[r] {
			t.Fatalf("rank %d: flat %v != shared-with-headroom %v", r, flat[r], shared[r])
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero Ranks should fail")
	}
	if _, err := New(Config{Ranks: -1}); err == nil {
		t.Error("negative Ranks should fail")
	}
	if _, err := New(Config{Ranks: 8}); err != nil {
		t.Errorf("defaulted config should build: %v", err)
	}
}

func TestQuickstartSendRecv(t *testing.T) {
	sim, err := New(Config{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	var got string
	res, err := sim.Run(func(env *Env) {
		defer env.Finalize()
		world := env.World()
		switch env.Rank() {
		case 0:
			if err := world.Send(1, 0, []byte("hello")); err != nil {
				t.Errorf("send: %v", err)
			}
		case 1:
			msg, err := world.Recv(0, 0)
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			got = string(msg.Data)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != "hello" {
		t.Fatalf("got %q", got)
	}
	if !res.Success() || res.Completed != 2 {
		t.Fatalf("result = %+v", res)
	}
	if res.SimTime <= 0 {
		t.Fatal("simulated time should advance")
	}
}

func TestMetricsReportListsVPLifecycle(t *testing.T) {
	sim, err := New(Config{Ranks: 4, Trace: NewTrace(0)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(func(env *Env) {
		defer env.Finalize()
		env.Compute(1e6)
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.MetricsReport()
	for _, want := range []string{"vp lifecycle:", "carriers-spawned", "carrier-reuses", "carriers-live", "program-steps"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
	if res.Engine.CarriersSpawned == 0 {
		t.Fatal("closure run spawned no carriers")
	}
	if res.Engine.CarriersLive != 0 {
		t.Fatalf("CarriersLive = %d after the run", res.Engine.CarriersLive)
	}
	// The run-end gauges also land on the trace as counter tracks.
	var names []string
	for _, c := range sim.cfg.Trace.Counters() {
		names = append(names, c.Name)
	}
	if len(names) == 0 || !strings.Contains(strings.Join(names, " "), "carriers-spawned") {
		t.Fatalf("trace counters = %v", names)
	}
}

func TestFactor3(t *testing.T) {
	cases := map[int][3]int{
		32768: {32, 32, 32},
		512:   {8, 8, 8},
		64:    {4, 4, 4},
		12:    {3, 2, 2},
		7:     {7, 1, 1},
		1:     {1, 1, 1},
	}
	for n, want := range cases {
		x, y, z := factor3(n)
		if x != want[0] || y != want[1] || z != want[2] {
			t.Errorf("factor3(%d) = %d,%d,%d, want %v", n, x, y, z, want)
		}
	}
}

func TestQuickFactor3Product(t *testing.T) {
	f := func(raw uint16) bool {
		n := int(raw)%4096 + 1
		x, y, z := factor3(n)
		return x*y*z == n && x >= y && y >= z && z >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultNet(t *testing.T) {
	net := DefaultNet(32768)
	if net.Topo.Nodes() != 32768 || net.Topo.Name() != "32x32x32 torus" {
		t.Errorf("paper net = %v", net.Topo.Name())
	}
	net = DefaultNet(100)
	if net.Topo.Nodes() != 100 {
		t.Errorf("scaled net nodes = %d", net.Topo.Nodes())
	}
}

func TestHeatWorkloadFor(t *testing.T) {
	hc, err := HeatWorkloadFor(512)
	if err != nil {
		t.Fatal(err)
	}
	if err := hc.Validate(512); err != nil {
		t.Fatal(err)
	}
	if hc.PointsPerRank() != 4096 {
		t.Errorf("points per rank = %d, want 4096 (16³)", hc.PointsPerRank())
	}
	if _, err := HeatWorkloadFor(0); err == nil {
		t.Error("zero ranks should fail")
	}
	full := PaperHeatWorkload()
	if err := full.Validate(32768); err != nil {
		t.Fatal(err)
	}
}

func TestScheduledFailureAbortsHeat(t *testing.T) {
	hc, err := HeatWorkloadFor(8)
	if err != nil {
		t.Fatal(err)
	}
	hc.Iterations = 100
	hc.ExchangeInterval = 10
	hc.CheckpointInterval = 10
	sched, err := ParseSchedule("3@50")
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(Config{Ranks: 8, Failures: sched})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(RunHeat(hc))
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 || res.Aborted != 7 {
		t.Fatalf("result = %+v", res)
	}
	if res.Success() {
		t.Fatal("aborted run should not be a success")
	}
}

func TestCampaignCompletesWithoutFailures(t *testing.T) {
	hc, _ := HeatWorkloadFor(8)
	hc.Iterations = 50
	hc.ExchangeInterval = 25
	hc.CheckpointInterval = 25
	camp := Campaign{
		Base:             Config{Ranks: 8},
		CheckpointPrefix: "heat",
		AppFor:           func(int) App { return RunHeat(hc) },
	}
	res, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || len(res.Runs) != 1 || res.Failures != 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.MTTFa() != Duration(res.E2) {
		t.Errorf("MTTFa with F=0 should equal E2")
	}
}

func TestCampaignRestartsThroughFailures(t *testing.T) {
	hc, _ := HeatWorkloadFor(8)
	hc.Iterations = 100
	hc.ExchangeInterval = 20
	hc.CheckpointInterval = 20
	camp := Campaign{
		Base:             Config{Ranks: 8, Failures: Schedule{{Rank: 2, At: Time(120 * Second)}}},
		CheckpointPrefix: "heat",
		AppFor:           func(int) App { return RunHeat(hc) },
	}
	res, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || res.Failures != 1 || len(res.Runs) != 2 {
		t.Fatalf("result = %+v", res)
	}
	// Continuous virtual time: the restart begins at the abort's end.
	if res.Runs[1].Start != res.Runs[0].End {
		t.Errorf("restart start %v != first run end %v", res.Runs[1].Start, res.Runs[0].End)
	}
	if res.E2 <= res.Runs[0].End {
		t.Errorf("completion %v should be after the first run's abort %v", res.E2, res.Runs[0].End)
	}
	want := Duration(res.E2) / 2
	if res.MTTFa() != want {
		t.Errorf("MTTFa = %v, want %v", res.MTTFa(), want)
	}
}

func TestCampaignRequiresApp(t *testing.T) {
	if _, err := (Campaign{Base: Config{Ranks: 2}}).Run(); err == nil {
		t.Fatal("missing AppFor should fail")
	}
}

func TestSavedExitTime(t *testing.T) {
	store := NewStore()
	if _, ok := SavedExitTime(store); ok {
		t.Fatal("fresh store should have no exit time")
	}
	hc, _ := HeatWorkloadFor(8)
	hc.Iterations = 50
	hc.ExchangeInterval = 10
	hc.CheckpointInterval = 10
	camp := Campaign{
		Base:             Config{Ranks: 8, Store: store, Failures: Schedule{{Rank: 0, At: Time(60 * Second)}}},
		CheckpointPrefix: "heat",
		AppFor:           func(int) App { return RunHeat(hc) },
	}
	if _, err := camp.Run(); err != nil {
		t.Fatal(err)
	}
	if _, ok := SavedExitTime(store); !ok {
		t.Fatal("campaign with a failure should persist an exit time")
	}
}

func TestRunTableIShape(t *testing.T) {
	res, err := RunTableI(TableIConfig{RunSpec: RunSpec{Seed: 2013}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Victims != 100 {
		t.Fatalf("victims = %d", res.Victims)
	}
	s := res.Summary
	if s.Mean < 15 || s.Mean > 30 {
		t.Errorf("mean = %v, want ≈ 22 (Table I: 21.97)", s.Mean)
	}
	if s.Min > 3 || s.Max < 50 {
		t.Errorf("min/max = %v/%v, want wide spread (Table I: 1/98)", s.Min, s.Max)
	}
	if !strings.Contains(res.Table(), "Victims") {
		t.Error("table rendering broken")
	}
}

// runSmallTableII runs the Table II reproduction at 64 ranks (fast) with
// the documented seed.
func runSmallTableII(t *testing.T) *TableII {
	t.Helper()
	tab, err := RunTableII(TableIIConfig{RunSpec: RunSpec{Ranks: 64, Seed: 133}})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestRunTableIIShape(t *testing.T) {
	tab := runSmallTableII(t)
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d, want 7 (baseline + 3 C × 2 MTTF)", len(tab.Rows))
	}
	base := tab.Rows[0]
	if base.C != 1000 || base.F != 0 || base.E2 != 0 {
		t.Fatalf("baseline row = %+v", base)
	}

	// E1 grows as the checkpoint interval shrinks (more checkpoints and
	// halo exchanges), starting from the baseline.
	for _, group := range [][]TableIIRow{tab.Rows[1:4], tab.Rows[4:7]} {
		prevE1 := base.E1
		for _, r := range group {
			if r.E1 <= prevE1 {
				t.Errorf("E1 not increasing: C=%d E1=%v (prev %v)", r.C, r.E1, prevE1)
			}
			prevE1 = r.E1
			if r.F > 0 {
				if r.E2 <= r.E1 {
					t.Errorf("E2 %v should exceed E1 %v when failures struck", r.E2, r.E1)
				}
				if want := Duration(r.E2) / Duration(r.F+1); r.MTTFa != want {
					t.Errorf("MTTFa = %v, want E2/(F+1) = %v", r.MTTFa, want)
				}
			}
		}
	}

	// The headline result: with failures present, a shorter checkpoint
	// interval loses less progress, so E2 falls as C shrinks.
	for _, group := range [][]TableIIRow{tab.Rows[1:4], tab.Rows[4:7]} {
		withF := make([]TableIIRow, 0, 3)
		for _, r := range group {
			if r.F > 0 {
				withF = append(withF, r)
			}
		}
		for i := 1; i < len(withF); i++ {
			if withF[i].F == withF[i-1].F && withF[i].E2 >= withF[i-1].E2 {
				t.Errorf("E2 not decreasing with smaller C at MTTF %v: C=%d E2=%v vs C=%d E2=%v",
					withF[i].MTTFs, withF[i].C, withF[i].E2, withF[i-1].C, withF[i-1].E2)
			}
		}
	}

	out := tab.Render()
	for _, col := range []string{"MTTF_s", "C", "E1", "E2", "F", "MTTF_a"} {
		if !strings.Contains(out, col) {
			t.Errorf("render missing column %q:\n%s", col, out)
		}
	}
}

func TestRunTableIIDeterministic(t *testing.T) {
	a := runSmallTableII(t)
	b := runSmallTableII(t)
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, a.Rows[i], b.Rows[i])
		}
	}
}

// TestRunTableIIProgModeMatchesClosure pins the headline experiment's
// program-mode switch: the full Table II grid — E1 runs and every
// failure/restart campaign cell — must be row-identical in both
// execution modes.
func TestRunTableIIProgModeMatchesClosure(t *testing.T) {
	ref := runSmallTableII(t)
	tab, err := RunTableII(TableIIConfig{RunSpec: RunSpec{Ranks: 64, Seed: 133, ProgMode: true}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(ref.Rows) {
		t.Fatalf("prog rows = %d, closure rows = %d", len(tab.Rows), len(ref.Rows))
	}
	for i := range ref.Rows {
		if tab.Rows[i] != ref.Rows[i] {
			t.Fatalf("row %d differs in program mode: %+v vs %+v", i, tab.Rows[i], ref.Rows[i])
		}
	}
}

func TestFirstImpressions(t *testing.T) {
	fi, err := RunFirstImpressions(FirstImpressionsConfig{
		RunSpec: RunSpec{Ranks: 64, Seed: 1},
		Trials:  6, Iterations: 200, Interval: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fi.Trials == 0 {
		t.Fatal("no failure activated in any trial")
	}
	// The computation phase dominates, so failures strike there (§V-D).
	if fi.FailedIn["compute"] == 0 {
		t.Errorf("no failure in compute: %v", fi.FailedIn)
	}
	// Detection happens in the communication phases: halo exchange or
	// the barrier after a checkpoint.
	detected := fi.DetectedIn["halo-exchange"] + fi.DetectedIn["barrier"] + fi.DetectedIn["checkpoint"]
	if detected == 0 {
		t.Errorf("no detection in communication phases: %v", fi.DetectedIn)
	}
	// Every abort leaves checkpoint debris (incomplete, corrupted, or
	// partially deleted sets) — the paper's observation.
	if fi.CheckpointOutcomes["clean"] == fi.Trials {
		t.Errorf("aborts left no checkpoint debris: %v", fi.CheckpointOutcomes)
	}
	if !strings.Contains(fi.Render(), "failed rank was in phase") {
		t.Error("render broken")
	}
}

func TestIntervalSweepShape(t *testing.T) {
	s, err := RunIntervalSweep(IntervalSweepConfig{
		RunSpec: RunSpec{Ranks: 64},
		Seeds:   []int64{133, 134}, Intervals: []int{500, 125, 31},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 3 {
		t.Fatalf("points = %d", len(s.Points))
	}
	// At MTTF 3,000 s against a ~5,000+ s solve, failures are frequent:
	// shorter intervals must win, and Daly's model must agree on the
	// direction.
	if s.Points[0].MeanE2 <= s.Points[2].MeanE2 {
		t.Errorf("E2 at C=500 (%v) should exceed E2 at C=31 (%v)", s.Points[0].MeanE2, s.Points[2].MeanE2)
	}
	if s.Points[0].Daly <= s.Points[2].Daly {
		t.Errorf("Daly at C=500 (%v) should exceed Daly at C=31 (%v)", s.Points[0].Daly, s.Points[2].Daly)
	}
	if s.BestMeasured != 31 {
		t.Errorf("best measured = %d, want 31", s.BestMeasured)
	}
	if s.DalyOptimal <= 0 {
		t.Errorf("Daly optimum = %v", s.DalyOptimal)
	}
	if s.CheckpointCost <= 0 {
		t.Errorf("empirical checkpoint cost = %v", s.CheckpointCost)
	}
	if !strings.Contains(s.Render(), "Daly optimum") {
		t.Error("render broken")
	}
}

func TestResultEnergy(t *testing.T) {
	hc, _ := HeatWorkloadFor(8)
	hc.Iterations = 50
	hc.ExchangeInterval = 10
	hc.CheckpointInterval = 10
	sim, err := New(Config{Ranks: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(RunHeat(hc))
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Energy(PaperPower())
	if rep.TotalJoules <= 0 || rep.AvgPowerWatts <= 0 {
		t.Fatalf("energy report = %+v", rep)
	}
	// The heat application is compute-dominated: the busy fraction
	// should be high.
	if rep.BusyFraction < 0.5 {
		t.Errorf("busy fraction = %v, want compute-dominated", rep.BusyFraction)
	}
	// Sanity: energy is bounded by every node drawing full power for the
	// whole run.
	maxPossible := PaperPower().ComputeWatts * float64(8) * res.SimTime.Seconds()
	maxPossible += PaperPower().OverheadWatts * float64(8) * res.SimTime.Seconds()
	if rep.TotalJoules > maxPossible {
		t.Errorf("energy %v exceeds physical bound %v", rep.TotalJoules, maxPossible)
	}
}

// runProactiveCampaign runs a fixed-failure campaign with or without a
// failure predictor (lead > 0 enables proactive checkpointing).
func runProactiveCampaign(t *testing.T, lead Duration) *CampaignResult {
	t.Helper()
	hc, err := HeatWorkloadFor(64)
	if err != nil {
		t.Fatal(err)
	}
	hc.Iterations = 200
	hc.ExchangeInterval = 100
	hc.CheckpointInterval = 100
	camp := Campaign{
		Base:             Config{Ranks: 64, Failures: Schedule{{Rank: 9, At: Time(900 * Second)}}},
		CheckpointPrefix: "heat",
		PredictionLead:   lead,
		AppForPredicted: func(run int, predicted Time) App {
			h := hc
			if lead > 0 {
				// Never = proactive mode without a trigger this run
				// (restart runs still find off-cadence checkpoints).
				h.ProactiveTrigger = predicted
			}
			return RunHeat(h)
		},
	}
	res, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || res.Failures != 1 {
		t.Fatalf("campaign = %+v", res)
	}
	return res
}

func TestProactiveCheckpointReducesLostWork(t *testing.T) {
	reactive := runProactiveCampaign(t, 0)
	proactive := runProactiveCampaign(t, 30*Second)
	// The predictor fires 30 s before the failure; the extra checkpoint
	// saves most of the ~375 s of progress since the last regular
	// checkpoint, so the proactive E2 must be clearly smaller.
	if proactive.E2 >= reactive.E2 {
		t.Fatalf("proactive E2 %v should beat reactive %v", proactive.E2, reactive.E2)
	}
	saved := (Duration(reactive.E2) - Duration(proactive.E2)).Seconds()
	if saved < 100 {
		t.Fatalf("proactive checkpoint saved only %.0f s", saved)
	}
}

func TestReliabilityDrivenCampaign(t *testing.T) {
	hc, _ := HeatWorkloadFor(8)
	hc.Iterations = 100
	hc.ExchangeInterval = 20
	hc.CheckpointInterval = 20
	// A fragile system: one component whose 8-node fleet fails every
	// ~65 s — several failures during the ~530 s run.
	sys := ReliabilitySystem{
		Nodes: 8,
		Node: ReliabilityNode{Components: []ReliabilityComponent{
			{Name: "flaky-dimm", Dist: Exponential{MTBF: 520 * Second}},
		}},
	}
	camp := Campaign{
		Base:             Config{Ranks: 8},
		DrawFailures:     sys.CampaignSource(11),
		CheckpointPrefix: "heat",
		AppFor:           func(int) App { return RunHeat(hc) },
	}
	res, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatalf("campaign did not finish: %+v", res)
	}
	if res.Failures == 0 {
		t.Fatal("fragile system produced no failures")
	}
	// Energy accounting spans all runs.
	rep := res.Energy(PaperPower())
	if rep.TotalJoules <= 0 {
		t.Fatalf("energy = %+v", rep)
	}
}

func TestTraceRecordsOperations(t *testing.T) {
	tr := NewTrace(0)
	sched, _ := ParseSchedule("1@5")
	sim, err := New(Config{Ranks: 2, Failures: sched, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(func(e *Env) {
		defer e.Finalize()
		w := e.World()
		w.SetErrorHandler(ErrorsReturn)
		switch e.Rank() {
		case 0:
			if err := w.SendN(1, 7, 64); err != nil {
				t.Errorf("send: %v", err)
			}
			if _, err := w.Recv(1, 0); err == nil {
				t.Error("recv from failing rank should error")
			}
		case 1:
			e.Elapse(10 * Second) // fails here
		}
	}); err != nil {
		t.Fatal(err)
	}
	counts := tr.Counts()
	if counts["send"] == 0 || counts["recv-post"] == 0 || counts["complete"] == 0 {
		t.Fatalf("missing operation events: %v", counts)
	}
	if counts["failure"] != 1 {
		t.Fatalf("failure events = %d, want 1 (%v)", counts["failure"], counts)
	}
	// The failed receive's completion carries the error detail.
	found := false
	for _, ev := range tr.OfKind(TraceComplete) {
		if strings.Contains(ev.Detail, "err=") {
			found = true
		}
	}
	if !found {
		t.Error("no completion recorded the detection error")
	}
	// CSV renders.
	var buf strings.Builder
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "send") {
		t.Error("CSV missing events")
	}
}

// TestGoldenDeterminism anchors the simulator's exact behaviour: a fixed
// workload must produce these exact virtual times on every platform and
// in every future revision that claims model compatibility. If a model
// change intentionally shifts timing, update the constants and say so in
// the commit.
func TestGoldenDeterminism(t *testing.T) {
	hc, err := HeatWorkloadFor(27)
	if err != nil {
		t.Fatal(err)
	}
	hc.Iterations = 50
	hc.ExchangeInterval = 10
	hc.CheckpointInterval = 25
	sim, err := New(Config{Ranks: 27, CallOverhead: PaperCallOverhead})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(RunHeat(hc))
	if err != nil {
		t.Fatal(err)
	}
	var sum Time
	for _, c := range res.PerRank {
		sum += c
	}
	const (
		wantMax = Time(262918543504) // 262.919 s
		wantSum = Time(7097782828608)
	)
	if res.SimTime != wantMax || sum != wantSum {
		t.Fatalf("golden mismatch: max=%d sum=%d (want %d / %d)\n"+
			"a model change shifted simulated timing — verify it is intentional and update the golden values",
			res.SimTime, sum, wantMax, wantSum)
	}
}

func TestParallelWorkersMatchSequential(t *testing.T) {
	run := func(workers int) *Result {
		hc, _ := HeatWorkloadFor(27)
		hc.Iterations = 40
		hc.ExchangeInterval = 10
		hc.CheckpointInterval = 10
		sim, err := New(Config{Ranks: 27, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(RunHeat(hc))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	par := run(4)
	for r := range seq.PerRank {
		if seq.PerRank[r] != par.PerRank[r] {
			t.Fatalf("rank %d: sequential %v != parallel %v", r, seq.PerRank[r], par.PerRank[r])
		}
	}
}
