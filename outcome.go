// outcome.go defines the wire form of campaign results and the dispatch
// that executes a CampaignSpec. A CampaignOutcome carries only the
// deterministic portion of a driver's result — the simulated rows,
// points, and histograms that depend solely on the spec and seed — never
// wall-clock accounting, so the same spec produces byte-identical
// canonical outcomes whether it ran via the CLI, the campaign service, or
// a cache replay on another machine.
package xsim

import (
	"context"
	"fmt"

	"xsim/internal/stats"
)

// RunOptions carries the non-serializable execution hooks a caller
// attaches when running a CampaignSpec: both are side channels (logging,
// progress streaming) that cannot influence the outcome.
type RunOptions struct {
	// Logf receives simulator and campaign progress messages; nil
	// discards them.
	Logf func(format string, args ...any)
	// OnProgress receives one ProgressEvent per run state change of the
	// campaign pool; callbacks are never concurrent.
	OnProgress func(ProgressEvent)
}

// CampaignOutcome is the versioned wire form of one campaign's result.
// Exactly the block matching Kind is set. SimTimeNS pools the virtual
// time simulated across the campaign's runs — deterministic, unlike wall
// time, which deliberately does not appear here.
type CampaignOutcome struct {
	// Version is the wire-format version (SpecVersion).
	Version int `json:"version"`
	// Kind echoes the spec's campaign kind.
	Kind CampaignKind `json:"kind"`
	// SimTimeNS is the pooled virtual time simulated, in nanoseconds
	// (0 for table1, whose victims are process-image models).
	SimTimeNS int64 `json:"sim_time_ns"`

	TableI     *TableIOutcome           `json:"table1,omitempty"`
	TableII    *TableIIOutcome          `json:"table2,omitempty"`
	Sweep      *IntervalSweepOutcome    `json:"interval_sweep,omitempty"`
	Phases     *FirstImpressionsOutcome `json:"first_impressions,omitempty"`
	Crossover  *CrossoverOutcome        `json:"replication_crossover,omitempty"`
	IOAblation *IOAblationOutcome       `json:"io_ablation,omitempty"`
}

// WireSummary is the wire form of a sample summary (stats.Summary).
type WireSummary struct {
	N      int     `json:"n"`
	Sum    float64 `json:"sum"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Mean   float64 `json:"mean"`
	Median float64 `json:"median"`
	Mode   float64 `json:"mode"`
	StdDev float64 `json:"stddev"`
}

func wireSummary(s stats.Summary) WireSummary {
	return WireSummary{N: s.N, Sum: s.Sum, Min: s.Min, Max: s.Max,
		Mean: s.Mean, Median: s.Median, Mode: s.Mode, StdDev: s.StdDev}
}

// TableIOutcome is the wire form of the Table I bit-flip campaign result.
type TableIOutcome struct {
	Victims       int            `json:"victims"`
	Injections    int            `json:"injections"`
	Survived      int            `json:"survived"`
	ToFailure     []int          `json:"to_failure"`
	KillsByRegion map[string]int `json:"kills_by_region"`
	Summary       WireSummary    `json:"summary"`
}

// WireTableIIRow is one Table II cell on the wire; virtual times travel
// as _ns nanosecond integers.
type WireTableIIRow struct {
	MTTFSeconds float64 `json:"mttf_seconds"`
	C           int     `json:"c"`
	E1NS        int64   `json:"e1_ns"`
	E2NS        int64   `json:"e2_ns"`
	F           int     `json:"f"`
	MTTFaNS     int64   `json:"mttfa_ns"`
	Runs        int     `json:"runs"`
}

// TableIIOutcome is the wire form of the Table II grid.
type TableIIOutcome struct {
	Rows []WireTableIIRow `json:"rows"`
}

// WireSweepPoint is one interval-sweep point on the wire.
type WireSweepPoint struct {
	C        int     `json:"c"`
	E1NS     int64   `json:"e1_ns"`
	MeanE2NS int64   `json:"mean_e2_ns"`
	MeanF    float64 `json:"mean_f"`
	DalyNS   int64   `json:"daly_ns"`
}

// IntervalSweepOutcome is the wire form of the interval sweep.
type IntervalSweepOutcome struct {
	BaselineNS       int64            `json:"baseline_ns"`
	CheckpointCostNS int64            `json:"checkpoint_cost_ns"`
	DalyOptimalIters float64          `json:"daly_optimal_iters"`
	BestMeasured     int              `json:"best_measured"`
	Points           []WireSweepPoint `json:"points"`
}

// FirstImpressionsOutcome is the wire form of the §V-D failure-mode
// histograms.
type FirstImpressionsOutcome struct {
	Trials             int            `json:"trials"`
	FailedIn           map[string]int `json:"failed_in"`
	DetectedIn         map[string]int `json:"detected_in"`
	CheckpointOutcomes map[string]int `json:"checkpoint_outcomes"`
}

// WireCrossoverRow is one replication-crossover cell on the wire.
type WireCrossoverRow struct {
	MTTFSeconds float64 `json:"mttf_seconds"`
	Arm         string  `json:"arm"`
	Degree      int     `json:"degree"`
	Interval    int     `json:"interval"`
	E2NS        int64   `json:"e2_ns"`
	F           int     `json:"f"`
	Runs        int     `json:"runs"`
	PredictedNS int64   `json:"predicted_ns"`
}

// CrossoverOutcome is the wire form of the replication-crossover study.
type CrossoverOutcome struct {
	SolveNS int64              `json:"solve_ns"`
	Rows    []WireCrossoverRow `json:"rows"`
}

// WireIOAblationRow is one checkpoint-I/O-ablation cell on the wire.
type WireIOAblationRow struct {
	Arm         string  `json:"arm"`
	MTTFSeconds float64 `json:"mttf_seconds"`
	C           int     `json:"c"`
	E1NS        int64   `json:"e1_ns"`
	E2NS        int64   `json:"e2_ns"`
	F           int     `json:"f"`
	MTTFaNS     int64   `json:"mttfa_ns"`
	Runs        int     `json:"runs"`
}

// IOAblationOutcome is the wire form of the checkpoint-I/O ablation.
type IOAblationOutcome struct {
	Rows []WireIOAblationRow `json:"rows"`
}

// Canonical returns the outcome's canonical encoding (sorted keys, no
// insignificant whitespace) — the bytes the campaign service stores and
// the form in which results from different transports are compared.
func (o *CampaignOutcome) Canonical() ([]byte, error) {
	raw, err := canonicalMarshal(o)
	if err != nil {
		return nil, fmt.Errorf("xsim: encoding outcome: %w", err)
	}
	return raw, nil
}

// --- execution ------------------------------------------------------------

// Run executes the campaign the spec describes; it is RunWith without
// hooks.
func (s *CampaignSpec) Run(ctx context.Context) (*CampaignOutcome, error) {
	return s.RunWith(ctx, RunOptions{})
}

// RunWith normalizes and validates the spec (leaving the receiver
// untouched), dispatches to the kind's experiment driver, and converts
// the result to its deterministic wire form. Validation failures return
// the same typed *SpecError values the decode path produces; driver
// errors (including cancellation) pass through unwrapped.
func (s *CampaignSpec) RunWith(ctx context.Context, opt RunOptions) (*CampaignOutcome, error) {
	c := s.clone()
	c.Normalize()
	if err := c.Validate(); err != nil {
		return nil, err
	}
	out := &CampaignOutcome{Version: SpecVersion, Kind: c.Kind}
	switch c.Kind {
	case KindTableI:
		res, err := RunTableIContext(ctx, c.tableIConfig(opt))
		if err != nil {
			return nil, err
		}
		out.TableI = &TableIOutcome{
			Victims:       res.Victims,
			Injections:    res.Injections,
			Survived:      res.Survived,
			ToFailure:     res.ToFailure,
			KillsByRegion: res.KillsByRegion,
			Summary:       wireSummary(res.Summary),
		}
	case KindTableII:
		res, err := RunTableIIContext(ctx, c.tableIIConfig(opt))
		if err != nil {
			return nil, err
		}
		out.SimTimeNS = int64(res.Stats.SimTime)
		t := &TableIIOutcome{Rows: make([]WireTableIIRow, 0, len(res.Rows))}
		for _, r := range res.Rows {
			t.Rows = append(t.Rows, WireTableIIRow{
				MTTFSeconds: durationToSeconds(r.MTTFs),
				C:           r.C,
				E1NS:        int64(r.E1),
				E2NS:        int64(r.E2),
				F:           r.F,
				MTTFaNS:     int64(r.MTTFa),
				Runs:        r.Runs,
			})
		}
		out.TableII = t
	case KindIntervalSweep:
		res, err := RunIntervalSweepContext(ctx, c.sweepConfig(opt))
		if err != nil {
			return nil, err
		}
		out.SimTimeNS = int64(res.Stats.SimTime)
		sw := &IntervalSweepOutcome{
			BaselineNS:       int64(res.Baseline),
			CheckpointCostNS: int64(res.CheckpointCost),
			DalyOptimalIters: res.DalyOptimal,
			BestMeasured:     res.BestMeasured,
			Points:           make([]WireSweepPoint, 0, len(res.Points)),
		}
		for _, p := range res.Points {
			sw.Points = append(sw.Points, WireSweepPoint{
				C:        p.C,
				E1NS:     int64(p.E1),
				MeanE2NS: int64(p.MeanE2),
				MeanF:    p.MeanF,
				DalyNS:   int64(p.Daly),
			})
		}
		out.Sweep = sw
	case KindFirstImpressions:
		res, err := RunFirstImpressionsContext(ctx, c.phasesConfig(opt))
		if err != nil {
			return nil, err
		}
		out.SimTimeNS = int64(res.Stats.SimTime)
		out.Phases = &FirstImpressionsOutcome{
			Trials:             res.Trials,
			FailedIn:           res.FailedIn,
			DetectedIn:         res.DetectedIn,
			CheckpointOutcomes: res.CheckpointOutcomes,
		}
	case KindCrossover:
		res, err := RunReplicationCrossoverContext(ctx, c.crossoverConfig(opt))
		if err != nil {
			return nil, err
		}
		out.SimTimeNS = int64(res.Stats.SimTime)
		co := &CrossoverOutcome{
			SolveNS: int64(res.Solve),
			Rows:    make([]WireCrossoverRow, 0, len(res.Rows)),
		}
		for _, r := range res.Rows {
			co.Rows = append(co.Rows, WireCrossoverRow{
				MTTFSeconds: durationToSeconds(r.MTTF),
				Arm:         r.Arm,
				Degree:      r.Degree,
				Interval:    r.Interval,
				E2NS:        int64(r.E2),
				F:           r.F,
				Runs:        r.Runs,
				PredictedNS: int64(r.Predicted),
			})
		}
		out.Crossover = co
	case KindIOAblation:
		res, err := RunCheckpointIOAblationContext(ctx, c.ioAblationConfig(opt))
		if err != nil {
			return nil, err
		}
		out.SimTimeNS = int64(res.Stats.SimTime)
		io := &IOAblationOutcome{Rows: make([]WireIOAblationRow, 0, len(res.Rows))}
		for _, r := range res.Rows {
			io.Rows = append(io.Rows, WireIOAblationRow{
				Arm:         r.Arm,
				MTTFSeconds: durationToSeconds(r.MTTFs),
				C:           r.C,
				E1NS:        int64(r.E1),
				E2NS:        int64(r.E2),
				F:           r.F,
				MTTFaNS:     int64(r.MTTFa),
				Runs:        r.Runs,
			})
		}
		out.IOAblation = io
	default:
		return nil, &SpecError{Field: "kind", Msg: fmt.Sprintf("unknown campaign kind %q", c.Kind)}
	}
	return out, nil
}
