package xsim

import (
	"xsim/internal/netmodel"
	"xsim/internal/runner"
)

// RunSpec is the shared trunk of every Run-family configuration
// (TableIConfig, TableIIConfig, IntervalSweepConfig,
// FirstImpressionsConfig, CampaignSetConfig,
// ReplicationCrossoverConfig): the simulation parameters
// the drivers used to copy-paste into five divergent config structs.
// Embedding it gives every driver the same field names, the same defaults
// path, and the same campaign-pool controls. Field access is unchanged
// from the old per-struct fields (cfg.Ranks still works via promotion);
// keyed composite literals set the embedded struct explicitly:
//
//	xsim.TableIIConfig{RunSpec: xsim.RunSpec{Ranks: 512, Workers: 2}}
type RunSpec struct {
	// Ranks is the number of simulated MPI processes; each driver fills
	// its own default (the paper's scale for Table II, 512 elsewhere).
	Ranks int
	// Workers is each run's engine parallelism (0/1 = sequential). It
	// composes with Pool: the default pool budget is GOMAXPROCS/Workers.
	Workers int
	// Seed drives the driver's random draws; per-run seeds derive
	// deterministically from it and the run index, so results are
	// identical at any pool size.
	Seed int64
	// CallOverhead is the per-MPI-call CPU cost; experiment drivers
	// default it to PaperCallOverhead.
	CallOverhead Duration
	// Net is the network model; nil uses the paper's parameters sized to
	// Ranks.
	Net *netmodel.Model
	// Logf receives simulator and campaign progress messages; nil
	// discards them (every driver treats nil the same way).
	Logf func(format string, args ...any)
	// Pool caps the number of simulation runs in flight (0 = the
	// GOMAXPROCS/Workers composition; 1 = sequential execution).
	Pool int
	// ProgMode runs the experiment's simulated applications in program
	// mode (resumable per-rank state machines instead of goroutine-backed
	// closures) where the driver supports it. The two modes are
	// observationally identical; program mode cuts per-rank memory from a
	// goroutine stack to a few hundred bytes, which is what makes the
	// headline experiments practical at 256k–1M ranks.
	ProgMode bool
	// OnProgress, when set, receives one serialized ProgressEvent per
	// run state change of the campaign pool (started, retrying,
	// completed, failed) — the wire-typed feed the campaign service
	// streams to clients. Callbacks are never concurrent.
	OnProgress func(ProgressEvent)
}

// defaults fills the spec's zero fields: the driver-specific default rank
// count and the paper's calibrated per-call overhead. It is the single
// defaults path all Run-family configs share.
func (s *RunSpec) defaults(defaultRanks int) {
	if s.Ranks == 0 {
		s.Ranks = defaultRanks
	}
	if s.CallOverhead == 0 {
		s.CallOverhead = PaperCallOverhead
	}
}

// logf returns the spec's logger, never nil.
func (s *RunSpec) logf() func(format string, args ...any) {
	if s.Logf != nil {
		return s.Logf
	}
	return func(string, ...any) {}
}

// baseConfig returns the per-run simulation Config the spec describes.
func (s *RunSpec) baseConfig() Config {
	return Config{
		Ranks:        s.Ranks,
		Workers:      s.Workers,
		Net:          s.Net,
		CallOverhead: s.CallOverhead,
		Logf:         s.Logf,
	}
}

// runnerConfig returns the campaign-pool configuration for this spec:
// the pool budget composes with the per-run engine workers, run
// completions stream through the spec's logger, and state changes
// through the spec's wire-typed progress hook.
func (s *RunSpec) runnerConfig() runner.Config {
	return runner.Config{
		Pool:          s.Pool,
		EngineWorkers: s.Workers,
		Logf:          s.Logf,
		OnProgress:    s.runnerOnProgress(),
	}
}

// runnerOnProgress adapts the spec's wire-typed progress hook to the
// runner's callback type (nil when unset, so the runner skips the
// reporting path entirely).
func (s *RunSpec) runnerOnProgress() func(runner.Progress) {
	if s.OnProgress == nil {
		return nil
	}
	hook := s.OnProgress
	return func(p runner.Progress) { hook(progressEvent(p)) }
}

// CampaignStats aggregates a concurrent campaign's execution: the pool's
// run accounting plus the pooled simulation metrics — wall time vs
// simulated virtual time, and the engine/MPI counter sums across every
// run of the campaign.
type CampaignStats struct {
	// Runner is the pool's run accounting (started/completed/failed,
	// wall time, summed per-run wall time).
	Runner runner.Stats
	// SimTime sums the virtual time simulated across all runs.
	SimTime Duration
	// Engine and MPI sum the per-run engine and MPI counters.
	Engine EngineMetrics
	// MPI sums the per-run MPI-layer counters; FailureMetric records are
	// concatenated.
	MPI MPIMetrics
}

// absorb accumulates one run's result into the campaign stats.
func (cs *CampaignStats) absorb(res *Result) {
	if res == nil {
		return
	}
	cs.SimTime += res.SimTime.Sub(res.StartClock)
	cs.Engine.Add(res.Engine)
	cs.MPI.Add(res.MPI)
}

// absorbCampaign accumulates a whole restart chain's pooled metrics.
func (cs *CampaignStats) absorbCampaign(res *CampaignResult) {
	if res == nil {
		return
	}
	cs.SimTime += res.SimTime
	cs.Engine.Add(res.Engine)
	cs.MPI.Add(res.MPI)
}
