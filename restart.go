package xsim

import (
	"context"
	"fmt"

	"xsim/internal/checkpoint"
	"xsim/internal/fault"
	"xsim/internal/vclock"
)

// Campaign drives an application through failure/restart cycles until it
// completes: each run draws one random failure (uniform rank, uniform time
// within 2×MTTF of the run start — the paper's worst-case model); when the
// application aborts, the simulated exit time is persisted and the next
// run resumes from it with continuous virtual time, after the checkpoint
// cleanup the paper performs with a shell script.
type Campaign struct {
	// Base is the per-run configuration template. Its Store is shared
	// across runs (one is created if nil); StartClock and Failures are
	// managed by the campaign (Base.Failures applies to the first run
	// only, for reproducing specific scenarios).
	Base Config
	// MTTF is the system mean-time-to-failure for random injection;
	// zero injects nothing beyond Base.Failures.
	MTTF Duration
	// DrawFailures, when set, replaces the MTTF draw: it returns the
	// failure schedule for each run (e.g. a component-based reliability
	// model via ReliabilitySystem.CampaignSource).
	DrawFailures func(run int, start Time) Schedule
	// Seed makes the campaign's random failures repeatable.
	Seed int64
	// MaxRuns caps the failure/restart cycles (default 100).
	MaxRuns int
	// CheckpointPrefix, when set, enables the between-runs cleanup of
	// incomplete checkpoint sets.
	CheckpointPrefix string
	// SuccessFor, when set, replaces Result.Success as the campaign's
	// run-completion test. Replication campaigns need it: a run whose
	// failed ranks were all covered by surviving replicas is done even
	// though Result.Failed is non-zero, and Result.Success would restart
	// it forever.
	SuccessFor func(*Result) bool
	// SetCompleteFor, when set, replaces the every-rank completeness test
	// used by the between-runs checkpoint cleanup. Replication campaigns
	// need it: a set in which a dead replica's file is missing is still
	// restorable as long as every logical rank is covered by some
	// surviving replica, and the every-rank criterion would delete
	// exactly the sets worth keeping.
	SetCompleteFor func(store *Store, prefix string, iteration int) bool
	// AppFor builds the application for each run (fresh trackers etc.);
	// use the same closure for every run if no per-run state is needed.
	AppFor func(run int) App
	// AppForPredicted, when set, is used instead of AppFor and
	// additionally receives the run's predicted failure time (the drawn
	// injection minus PredictionLead; vclock.Never when no failure was
	// drawn) — proactive fault tolerance experiments build applications
	// that checkpoint ahead of the predicted failure.
	AppForPredicted func(run int, predicted Time) App
	// ProgFor, when set, runs each campaign run in program mode: the
	// returned per-rank factory is passed to Sim.RunProgs instead of
	// executing an App closure per rank. It takes precedence over AppFor
	// and AppForPredicted.
	ProgFor func(run int) func(rank int) Prog
	// PredictionLead is how far ahead the failure predictor fires.
	PredictionLead Duration
}

// RunSummary describes one application run within a campaign.
type RunSummary struct {
	// Run is the 0-based run index.
	Run int
	// Start and End are the run's virtual start and exit times.
	Start, End Time
	// Injected is the failure drawn for this run (nil when none).
	Injected *Injection
	// Completed, Failed, Aborted count ranks by termination.
	Completed, Failed, Aborted int
}

// CampaignResult summarises a failure/restart campaign.
type CampaignResult struct {
	// Runs holds one summary per application run.
	Runs []RunSummary
	// Done reports whether the application eventually completed.
	Done bool
	// Start is the campaign's initial virtual clock (Base.StartClock);
	// restart chains continue the previous chain's virtual time, so it
	// need not be zero.
	Start Time
	// E2 is the simulated completion time including all failure/restart
	// cycles (the paper's E2 column).
	E2 Time
	// Failures is the number of process failures experienced (the
	// paper's F column).
	Failures int
	// Busy and Waited accumulate each rank's executing and blocked
	// virtual time across all runs of the campaign, for energy
	// accounting.
	Busy, Waited []Duration
	// SimTime sums each run's virtual clock advance; restarts resume
	// from the previous exit time, so over a whole chain this equals the
	// E2 completion time minus the campaign's start clock.
	SimTime Duration
	// Engine and MPI pool the per-run engine and MPI counters across the
	// whole restart chain.
	Engine EngineMetrics
	MPI    MPIMetrics
}

// Energy evaluates a power model over the whole campaign: every run's
// busy/wait time contributes, so the energy cost of lost work and
// restarts is included.
func (r *CampaignResult) Energy(m PowerModel) PowerReport {
	return m.SystemEnergy(r.Busy, r.Waited, Duration(r.E2))
}

// MTTFa returns the experienced application mean-time-to-failure — the
// campaign's elapsed virtual time divided by F+1, the paper's MTTFa
// column. The elapsed time is E2 − Start: a campaign in a restart chain
// begins at a nonzero StartClock, and dividing the absolute completion
// time would overstate the experienced MTTF.
func (r *CampaignResult) MTTFa() Duration {
	return Duration(r.E2-r.Start) / Duration(r.Failures+1)
}

// Run executes the campaign; it is RunContext without cancellation.
func (c Campaign) Run() (*CampaignResult, error) {
	return c.RunContext(context.Background())
}

// RunContext executes the campaign's failure/restart chain. The chain is
// inherently ordered — each restart resumes from the previous run's
// persisted exit time — so its runs execute sequentially; fan campaigns
// of independent seeds out with RunCampaigns instead. ctx cancels the
// chain between runs and, through Sim.RunContext, within a run at the
// next simulation window; the partial CampaignResult accompanies an
// error wrapping ErrCancelled.
func (c Campaign) RunContext(ctx context.Context) (*CampaignResult, error) {
	if c.AppFor == nil && c.AppForPredicted == nil && c.ProgFor == nil {
		return nil, fmt.Errorf("xsim: Campaign.AppFor is required")
	}
	maxRuns := c.MaxRuns
	if maxRuns == 0 {
		maxRuns = 100
	}
	if c.Base.Store == nil {
		c.Base.Store = NewStore()
	}
	store := c.Base.Store
	checkpoint.ClearExitTime(store)
	rcamp := fault.Campaign{Seed: c.Seed, Ranks: c.Base.Ranks, MTTF: c.MTTF}
	result := &CampaignResult{Start: c.Base.StartClock}
	start := c.Base.StartClock

	for run := 0; run < maxRuns; run++ {
		cfg := c.Base
		cfg.StartClock = start
		cfg.Failures = nil
		if run == 0 {
			cfg.Failures = append(cfg.Failures, c.Base.Failures...)
		}
		var drawn Schedule
		if c.DrawFailures != nil {
			drawn = c.DrawFailures(run, start)
		} else {
			drawn = rcamp.ForRun(run, start)
		}
		cfg.Failures = append(cfg.Failures, drawn...)

		if err := ctx.Err(); err != nil {
			return result, fmt.Errorf("%w before run %d: %v", ErrCancelled, run, context.Cause(ctx))
		}
		sim, err := New(cfg)
		if err != nil {
			return result, err
		}
		var res *Result
		if c.ProgFor != nil {
			res, err = sim.RunProgsContext(ctx, c.ProgFor(run))
		} else {
			var app App
			if c.AppForPredicted != nil {
				// The predictor sees the run's earliest upcoming failure
				// (explicit or drawn) and fires PredictionLead ahead of it.
				predicted := Time(vclock.Never)
				if sorted := cfg.Failures.Sorted(); len(sorted) > 0 {
					predicted = sorted[0].At - Time(c.PredictionLead)
					if predicted < start {
						predicted = start
					}
				}
				app = c.AppForPredicted(run, predicted)
			} else {
				app = c.AppFor(run)
			}
			res, err = sim.RunContext(ctx, app)
		}
		if err != nil {
			return result, err
		}
		result.SimTime += res.SimTime.Sub(res.StartClock)
		result.Engine.Add(res.Engine)
		result.MPI.Add(res.MPI)
		summary := RunSummary{
			Run:       run,
			Start:     start,
			End:       res.SimTime,
			Completed: res.Completed,
			Failed:    res.Failed,
			Aborted:   res.Aborted,
		}
		// Report the run's earliest injection. The schedule must be sorted
		// first: on run 0 it is Base.Failures carry-overs followed by the
		// drawn failure, and neither part is ordered by time.
		if sorted := cfg.Failures.Sorted(); len(sorted) > 0 {
			inj := sorted[0]
			summary.Injected = &inj
		}
		result.Runs = append(result.Runs, summary)
		result.Failures += res.Failed
		if result.Busy == nil {
			result.Busy = make([]Duration, c.Base.Ranks)
			result.Waited = make([]Duration, c.Base.Ranks)
		}
		for r := range res.Busy {
			result.Busy[r] += res.Busy[r]
			result.Waited[r] += res.Waited[r]
		}

		success := res.Success()
		if c.SuccessFor != nil {
			success = c.SuccessFor(res)
		}
		if success {
			result.Done = true
			result.E2 = res.SimTime
			return result, nil
		}
		// Abort path: persist the exit time for continuous virtual
		// timing, clean up incomplete checkpoint sets, restart.
		if err := checkpoint.SaveExitTime(store, res.SimTime); err != nil {
			return result, err
		}
		if len(c.Base.FSHierarchy) > 0 {
			// Tiered storage: a failed node takes its volatile tier copies
			// (and any drains still in flight at the failure) down with
			// it, so the next run's restart falls back to a deeper tier or
			// an older set.
			for _, inj := range cfg.Failures {
				if inj.At <= res.SimTime {
					store.ResolveFailure(c.Base.FSHierarchy, inj.Rank, inj.At)
				}
			}
		}
		if c.CheckpointPrefix != "" {
			complete := c.SetCompleteFor
			if complete == nil {
				complete = func(store *Store, prefix string, iteration int) bool {
					return checkpoint.SetComplete(store, prefix, iteration, c.Base.Ranks)
				}
			}
			checkpoint.CleanIncompleteSetsBy(store, c.CheckpointPrefix, func(it int) bool {
				return complete(store, c.CheckpointPrefix, it)
			})
		}
		start = res.SimTime
	}
	result.E2 = start
	return result, fmt.Errorf("%w: campaign did not complete within %d runs (%d failures)",
		ErrAborted, maxRuns, result.Failures)
}

// SavedExitTime reads the exit time a previous aborted run persisted in
// the store (ok is false when none was saved).
func SavedExitTime(store *Store) (Time, bool) { return checkpoint.LoadExitTime(store) }
