package xsim

import (
	"errors"
	"fmt"

	"xsim/internal/core"
	"xsim/internal/runner"
)

// The Run family reports failures through typed sentinel errors, so every
// driver — single simulations, restart campaigns, and the concurrent
// experiment grids — means the same thing by "aborted", "deadlocked", and
// "cancelled". Match them with errors.Is; a run that fails inside a
// campaign additionally arrives wrapped in a *RunError naming the run.
var (
	// ErrAborted is wrapped by errors reporting a simulation that ended
	// with failed or aborted ranks where the caller required clean
	// completion (see Result.Err and the E1 runs of the experiment
	// drivers), and by a Campaign that exhausted MaxRuns without the
	// application completing.
	ErrAborted = errors.New("xsim: application did not complete cleanly")
	// ErrCancelled is wrapped by errors reporting a run cut short by
	// context cancellation or a per-run deadline. The partial Result (when
	// available) accompanies it.
	ErrCancelled = errors.New("xsim: run cancelled")
	// ErrDeadlock is wrapped by errors reporting a simulation that ended
	// with live processes blocked forever.
	ErrDeadlock = core.ErrDeadlock
)

// RunError is the typed error a failing campaign run becomes: it carries
// the run's spec (index, label, seed) and the underlying cause instead of
// killing the whole campaign. Retrieve it with errors.As.
type RunError = runner.RunError

// Err returns nil when every rank finished cleanly, and otherwise an
// error wrapping ErrAborted that counts the casualties — the typed
// counterpart of Success for callers that propagate errors instead of
// inspecting counters.
func (r *Result) Err() error {
	if r.Success() {
		return nil
	}
	return fmt.Errorf("%w: %d failed, %d aborted, %d completed of %d ranks",
		ErrAborted, r.Failed, r.Aborted, r.Completed, len(r.PerRank))
}
