package xsim

import (
	"context"
	"fmt"

	"xsim/internal/runner"
)

// CampaignSetConfig parameterises a set of independent failure/restart
// campaigns fanned out across the campaign pool: the same experiment
// repeated over many seeds — the averaging the paper's evaluation does by
// hand. Each campaign's restart chain stays internally ordered (a restart
// resumes from its predecessor's exit time); the chains themselves are
// independent and run concurrently.
type CampaignSetConfig struct {
	// RunSpec supplies the pool controls (Pool, Workers composition),
	// the base seed for derived campaign seeds, the progress logger, and
	// fills any zero simulation fields of Template.Base.
	RunSpec
	// Template is the per-campaign template. Its Seed is replaced by each
	// campaign's own seed, and its Base.Store must be nil: every campaign
	// gets a fresh private file-system store, because a store shared
	// across concurrent chains would race.
	Template Campaign
	// Seeds are the campaign seeds, one campaign per entry. When empty,
	// Count seeds are derived deterministically from RunSpec.Seed.
	Seeds []int64
	// Count is the number of derived-seed campaigns when Seeds is empty
	// (default 10).
	Count int
}

// CampaignSet is the result of a campaign fan-out.
type CampaignSet struct {
	// Seeds holds the campaign seeds actually used, in task order.
	Seeds []int64
	// Results holds one campaign result per seed, index-aligned with
	// Seeds regardless of completion order (nil for campaigns that
	// failed or were skipped by cancellation — see the returned error).
	Results []*CampaignResult
	// Stats pools the set's execution accounting and simulation metrics.
	Stats CampaignStats
}

// MeanE2 averages the completion time over the campaigns that finished.
func (s *CampaignSet) MeanE2() Duration {
	var sum float64
	n := 0
	for _, r := range s.Results {
		if r != nil && r.Done {
			sum += Duration(r.E2).Seconds()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return Seconds(sum / float64(n))
}

// RunCampaigns executes one failure/restart campaign per seed across the
// campaign pool. Per-campaign failures (a chain that exhausts MaxRuns, a
// panicking application) become *RunError entries in the joined error
// while the other campaigns keep running; cancellation stops the set
// within one simulation window and returns the finished results.
func RunCampaigns(ctx context.Context, cfg CampaignSetConfig) (*CampaignSet, error) {
	cfg.defaults(cfg.Template.Base.Ranks)
	if cfg.Template.AppFor == nil && cfg.Template.AppForPredicted == nil {
		return nil, fmt.Errorf("xsim: RunCampaigns requires Template.AppFor")
	}
	if cfg.Template.Base.Store != nil {
		return nil, fmt.Errorf("xsim: RunCampaigns forbids a shared Template.Base.Store (each campaign gets a fresh one)")
	}
	seeds := cfg.Seeds
	if len(seeds) == 0 {
		count := cfg.Count
		if count == 0 {
			count = 10
		}
		seeds = make([]int64, count)
		for i := range seeds {
			seeds[i] = runner.DeriveSeed(cfg.Seed, i)
		}
	}

	// Fill the template's zero simulation fields from the spec so the set
	// and single-campaign paths describe runs the same way.
	base := cfg.Template.Base
	if base.Ranks == 0 {
		base.Ranks = cfg.Ranks
	}
	if base.Workers == 0 {
		base.Workers = cfg.Workers
	}
	if base.Net == nil {
		base.Net = cfg.Net
	}
	if base.CallOverhead == 0 {
		base.CallOverhead = cfg.CallOverhead
	}
	if base.Logf == nil {
		base.Logf = cfg.Logf
	}

	tasks := make([]runner.Task[*CampaignResult], len(seeds))
	for i, seed := range seeds {
		camp := cfg.Template
		camp.Base = base
		camp.Seed = seed
		tasks[i] = runner.Task[*CampaignResult]{
			Spec: runner.Spec{Index: i, Label: fmt.Sprintf("seed=%d", seed), Seed: seed},
			Run: func(ctx context.Context) (*CampaignResult, error) {
				return camp.RunContext(ctx)
			},
		}
	}
	results, rstats, err := runner.Run(ctx, cfg.runnerConfig(), tasks)
	set := &CampaignSet{Seeds: seeds, Results: results, Stats: CampaignStats{Runner: rstats}}
	for _, r := range results {
		set.Stats.absorbCampaign(r)
	}
	return set, err
}
