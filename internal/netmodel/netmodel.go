// Package netmodel provides the network model of the simulated system. It
// charges virtual communication time based on the topology's route length,
// per-link latency, and link bandwidth, selects the eager or rendezvous
// protocol by message size, and supplies the configurable network
// communication timeout the simulated MPI layer uses for failure detection
// (the paper's detection is purely timeout-based, with each simulated
// network — on-node and system-wide — having its own timeout).
package netmodel

import (
	"fmt"

	"xsim/internal/topology"
	"xsim/internal/vclock"
)

// LinkParams describes one simulated network tier.
type LinkParams struct {
	// Latency is the per-hop link latency.
	Latency vclock.Duration
	// Bandwidth is the link bandwidth in bytes per second.
	Bandwidth float64
	// DetectionTimeout is the communication timeout after which a blocked
	// operation against a failed peer completes in error. The paper makes
	// this configurable per network tier.
	DetectionTimeout vclock.Duration
}

// Model is the complete network model: a topology plus per-tier link
// parameters and protocol selection.
type Model struct {
	// Topo supplies route lengths between nodes.
	Topo topology.Topology
	// System describes links between distinct nodes.
	System LinkParams
	// OnNode describes intra-node communication (src node == dst node).
	OnNode LinkParams
	// EagerThreshold is the largest payload in bytes sent with the eager
	// protocol; larger payloads use the rendezvous protocol. The paper's
	// evaluation sets this to 256 kB.
	EagerThreshold int
	// SoftwareOverhead is the fixed per-message software cost charged to
	// the sender in addition to wire time (MPI stack overhead).
	SoftwareOverhead vclock.Duration
	// InjectBandwidth and EjectBandwidth, when positive, model endpoint
	// contention: a node's NIC injects (ejects) payloads one at a time
	// at these bandwidths in bytes per second, so concurrent senders to
	// one receiver serialise (incast) and one sender's messages queue
	// behind each other. Zero disables contention (the default — the
	// base model is contention-free, like the paper's).
	InjectBandwidth float64
	EjectBandwidth  float64
}

// Paper returns the network model of the paper's simulated system: a
// 32×32×32 wrapped torus, 1 µs link latency, 32 GB/s link bandwidth, 256 kB
// eager threshold, and a 5 s system-wide detection timeout (the paper keeps
// the timeout configurable; 5 s is this repo's default).
func Paper() *Model {
	return &Model{
		Topo: topology.PaperTorus(),
		System: LinkParams{
			Latency:          vclock.Microsecond,
			Bandwidth:        32e9,
			DetectionTimeout: 5 * vclock.Second,
		},
		OnNode: LinkParams{
			Latency:          100 * vclock.Nanosecond,
			Bandwidth:        100e9,
			DetectionTimeout: 1 * vclock.Second,
		},
		EagerThreshold: 256 * 1024,
	}
}

// Validate reports a configuration error, if any.
func (m *Model) Validate() error {
	if m.Topo == nil {
		return fmt.Errorf("netmodel: Topo must be set")
	}
	for _, p := range []struct {
		name string
		lp   LinkParams
	}{{"System", m.System}, {"OnNode", m.OnNode}} {
		if p.lp.Latency < 0 {
			return fmt.Errorf("netmodel: %s.Latency must be non-negative", p.name)
		}
		if p.lp.Bandwidth <= 0 {
			return fmt.Errorf("netmodel: %s.Bandwidth must be positive", p.name)
		}
		if p.lp.DetectionTimeout < 0 {
			return fmt.Errorf("netmodel: %s.DetectionTimeout must be non-negative", p.name)
		}
	}
	if m.EagerThreshold < 0 {
		return fmt.Errorf("netmodel: EagerThreshold must be non-negative")
	}
	if m.SoftwareOverhead < 0 {
		return fmt.Errorf("netmodel: SoftwareOverhead must be non-negative")
	}
	if m.InjectBandwidth < 0 || m.EjectBandwidth < 0 {
		return fmt.Errorf("netmodel: NIC bandwidths must be non-negative")
	}
	return nil
}

// Contended reports whether endpoint contention modelling is enabled.
func (m *Model) Contended() bool { return m.InjectBandwidth > 0 || m.EjectBandwidth > 0 }

// InjectOccupancy returns how long a size-byte payload occupies the
// sender's NIC (zero when injection contention is disabled).
func (m *Model) InjectOccupancy(size int) vclock.Duration {
	if m.InjectBandwidth <= 0 || size <= 0 {
		return 0
	}
	return vclock.FromSeconds(float64(size) / m.InjectBandwidth)
}

// EjectOccupancy returns how long a size-byte payload occupies the
// receiver's NIC (zero when ejection contention is disabled).
func (m *Model) EjectOccupancy(size int) vclock.Duration {
	if m.EjectBandwidth <= 0 || size <= 0 {
		return 0
	}
	return vclock.FromSeconds(float64(size) / m.EjectBandwidth)
}

// tier returns the link parameters governing a src→dst transfer.
func (m *Model) tier(src, dst int) LinkParams {
	if src == dst {
		return m.OnNode
	}
	return m.System
}

// Eager reports whether a payload of size bytes uses the eager protocol.
func (m *Model) Eager(size int) bool { return size <= m.EagerThreshold }

// TransferTime returns the wire time of a size-byte payload from node src
// to node dst: per-hop latency along the route plus serialisation at the
// link bandwidth. Intra-node transfers use the on-node tier with one
// latency charge.
func (m *Model) TransferTime(src, dst, size int) vclock.Duration {
	lp := m.tier(src, dst)
	hops := 1
	if src != dst {
		hops = m.Topo.Hops(src, dst)
	}
	wire := vclock.Duration(hops) * lp.Latency
	if size > 0 {
		wire += vclock.FromSeconds(float64(size) / lp.Bandwidth)
	}
	return wire + m.SoftwareOverhead
}

// ControlTime returns the wire time of a zero-payload control message
// (rendezvous handshake, acknowledgements) from src to dst.
func (m *Model) ControlTime(src, dst int) vclock.Duration {
	return m.TransferTime(src, dst, 0)
}

// SendOverhead returns the time the *sender* is busy injecting a size-byte
// eager message before it may proceed (software overhead plus
// serialisation); the message then propagates without the sender.
// Rendezvous senders instead block until the transfer completes.
func (m *Model) SendOverhead(src, dst, size int) vclock.Duration {
	lp := m.tier(src, dst)
	o := m.SoftwareOverhead
	if size > 0 {
		o += vclock.FromSeconds(float64(size) / lp.Bandwidth)
	}
	return o
}

// Timeout returns the failure-detection timeout governing communication
// between src and dst.
func (m *Model) Timeout(src, dst int) vclock.Duration {
	return m.tier(src, dst).DetectionTimeout
}

// String describes the model.
func (m *Model) String() string {
	return fmt.Sprintf("%s, %v/link, %.3g B/s, eager<=%dB, timeout %v",
		m.Topo.Name(), m.System.Latency, m.System.Bandwidth, m.EagerThreshold,
		m.System.DetectionTimeout)
}
