package netmodel

import (
	"testing"
	"testing/quick"

	"xsim/internal/topology"
	"xsim/internal/vclock"
)

func TestPaperModelValid(t *testing.T) {
	m := Paper()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Topo.Nodes() != 32768 {
		t.Fatalf("paper topology nodes = %d", m.Topo.Nodes())
	}
}

func TestEagerThreshold(t *testing.T) {
	m := Paper()
	if !m.Eager(256 * 1024) {
		t.Error("payload at threshold should be eager")
	}
	if m.Eager(256*1024 + 1) {
		t.Error("payload above threshold should use rendezvous")
	}
	if !m.Eager(0) {
		t.Error("empty payload should be eager")
	}
}

func TestTransferTimeLatencyOnly(t *testing.T) {
	m := Paper()
	tor := m.Topo.(*topology.Torus3D)
	src := tor.ID(0, 0, 0)
	dst := tor.ID(3, 0, 0)
	// Zero-byte message over 3 hops: 3 µs.
	if got := m.TransferTime(src, dst, 0); got != 3*vclock.Microsecond {
		t.Fatalf("TransferTime = %v, want 3µs", got)
	}
}

func TestTransferTimeBandwidth(t *testing.T) {
	m := Paper()
	tor := m.Topo.(*topology.Torus3D)
	src := tor.ID(0, 0, 0)
	dst := tor.ID(1, 0, 0)
	// 32 GB over a 32 GB/s link takes 1 s (plus 1 µs latency).
	got := m.TransferTime(src, dst, 32e9)
	want := vclock.Second + vclock.Microsecond
	if got != want {
		t.Fatalf("TransferTime = %v, want %v", got, want)
	}
}

func TestIntraNodeUsesOnNodeTier(t *testing.T) {
	m := Paper()
	if got := m.TransferTime(7, 7, 0); got != m.OnNode.Latency {
		t.Fatalf("intra-node transfer = %v, want %v", got, m.OnNode.Latency)
	}
	if got := m.Timeout(7, 7); got != m.OnNode.DetectionTimeout {
		t.Fatalf("intra-node timeout = %v", got)
	}
	if got := m.Timeout(7, 8); got != m.System.DetectionTimeout {
		t.Fatalf("system timeout = %v", got)
	}
}

func TestControlTime(t *testing.T) {
	m := Paper()
	if m.ControlTime(0, 1) != m.TransferTime(0, 1, 0) {
		t.Fatal("control message must equal zero-payload transfer")
	}
}

func TestSendOverhead(t *testing.T) {
	m := Paper()
	m.SoftwareOverhead = vclock.Microsecond
	// Sender overhead is independent of distance for eager sends.
	if m.SendOverhead(0, 1, 1024) != m.SendOverhead(0, 31, 1024) {
		t.Error("sender overhead should not depend on hops")
	}
	if m.SendOverhead(0, 1, 0) != vclock.Microsecond {
		t.Error("zero payload overhead should equal software overhead")
	}
}

func TestTransferTimeMonotoneInSize(t *testing.T) {
	m := Paper()
	f := func(a, b uint32) bool {
		x, y := int(a%1e9), int(b%1e9)
		if x > y {
			x, y = y, x
		}
		return m.TransferTime(0, 1, x) <= m.TransferTime(0, 1, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransferTimeMonotoneInHops(t *testing.T) {
	m := Paper()
	tor := m.Topo.(*topology.Torus3D)
	prev := vclock.Duration(0)
	for d := 1; d <= 16; d++ {
		cur := m.TransferTime(tor.ID(0, 0, 0), tor.ID(d, 0, 0), 0)
		if cur < prev {
			t.Fatalf("transfer time not monotone in hops at distance %d", d)
		}
		prev = cur
	}
}

func TestOccupancies(t *testing.T) {
	m := Paper()
	m.InjectBandwidth = 1e9
	m.EjectBandwidth = 2e9
	if !m.Contended() {
		t.Fatal("model should report contention enabled")
	}
	if got := m.InjectOccupancy(1e9); got != vclock.Second {
		t.Errorf("inject occupancy = %v", got)
	}
	if got := m.EjectOccupancy(2e9); got != vclock.Second {
		t.Errorf("eject occupancy = %v", got)
	}
	if m.InjectOccupancy(0) != 0 || m.EjectOccupancy(-5) != 0 {
		t.Error("non-positive sizes should cost nothing")
	}
}

func TestValidateErrors(t *testing.T) {
	ok := Paper()
	cases := []func(*Model){
		func(m *Model) { m.Topo = nil },
		func(m *Model) { m.System.Bandwidth = 0 },
		func(m *Model) { m.OnNode.Bandwidth = -1 },
		func(m *Model) { m.System.Latency = -1 },
		func(m *Model) { m.System.DetectionTimeout = -1 },
		func(m *Model) { m.EagerThreshold = -1 },
		func(m *Model) { m.SoftwareOverhead = -1 },
		func(m *Model) { m.InjectBandwidth = -1 },
		func(m *Model) { m.EjectBandwidth = -1 },
	}
	for i, mutate := range cases {
		m := *ok
		mutate(&m)
		if m.Validate() == nil {
			t.Errorf("case %d: Validate should fail", i)
		}
	}
}
