package reliability

import (
	"math"
	"math/rand"
	"testing"

	"xsim/internal/vclock"
)

func TestExponentialMean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := Exponential{MTBF: 1000 * vclock.Second}
	if d.Mean() != 1000*vclock.Second {
		t.Fatalf("mean = %v", d.Mean())
	}
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += d.Sample(rng).Seconds()
	}
	if got := sum / n; math.Abs(got-1000) > 30 {
		t.Fatalf("sample mean = %v, want ≈1000", got)
	}
}

func TestWeibullMean(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Shape 1 reduces to exponential: mean = scale.
	d := Weibull{Shape: 1, Scale: 500 * vclock.Second}
	if got := d.Mean().Seconds(); math.Abs(got-500) > 1e-6 {
		t.Fatalf("weibull k=1 mean = %v, want 500", got)
	}
	// Shape 2: mean = scale × Γ(1.5) = scale × 0.8862.
	d2 := Weibull{Shape: 2, Scale: 1000 * vclock.Second}
	if got := d2.Mean().Seconds(); math.Abs(got-886.2) > 0.5 {
		t.Fatalf("weibull k=2 mean = %v, want ≈886.2", got)
	}
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += d2.Sample(rng).Seconds()
	}
	if got := sum / n; math.Abs(got-886.2) > 20 {
		t.Fatalf("weibull sample mean = %v, want ≈886", got)
	}
}

func TestWeibullHazardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Infant mortality (k<1) produces far more very-early failures than
	// wear-out (k>1) at the same mean.
	infant := Weibull{Shape: 0.5, Scale: 500 * vclock.Second} // mean = 2×500
	wear := Weibull{Shape: 3, Scale: 1119 * vclock.Second}    // mean ≈ 1000
	early := func(d Distribution) int {
		count := 0
		for i := 0; i < 5000; i++ {
			if d.Sample(rng) < 50*vclock.Second {
				count++
			}
		}
		return count
	}
	if ei, ew := early(infant), early(wear); ei <= 10*ew {
		t.Fatalf("infant-mortality early failures %d should dwarf wear-out %d", ei, ew)
	}
}

func TestLogNormalMean(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := LogNormal{Mu: math.Log(1000), Sigma: 0.5}
	want := 1000 * math.Exp(0.125)
	if got := d.Mean().Seconds(); math.Abs(got-want) > 1 {
		t.Fatalf("mean = %v, want %v", got, want)
	}
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		sum += d.Sample(rng).Seconds()
	}
	if got := sum / n; math.Abs(got-want) > 0.05*want {
		t.Fatalf("sample mean = %v, want ≈%v", got, want)
	}
}

func TestNodeSeriesSystem(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	node := Node{Components: []Component{
		{Name: "weak", Dist: Exponential{MTBF: 100 * vclock.Second}},
		{Name: "strong", Dist: Exponential{MTBF: 1e6 * vclock.Second}},
	}}
	if err := node.Validate(); err != nil {
		t.Fatal(err)
	}
	weakKills := 0
	var sum float64
	const n = 5000
	for i := 0; i < n; i++ {
		ttf, comp := node.SampleTTF(rng)
		sum += ttf.Seconds()
		if comp == "weak" {
			weakKills++
		}
	}
	// The weak component dominates: nearly every failure is its fault,
	// and the node MTTF is close to the weak MTBF.
	if weakKills < n*95/100 {
		t.Fatalf("weak component caused only %d/%d failures", weakKills, n)
	}
	if got := sum / n; math.Abs(got-100) > 10 {
		t.Fatalf("node mean TTF = %v, want ≈100 (series ≈ weakest)", got)
	}
}

func TestNodeValidate(t *testing.T) {
	if (Node{}).Validate() == nil {
		t.Error("empty node should fail")
	}
	bad := Node{Components: []Component{{Name: "x"}}}
	if bad.Validate() == nil {
		t.Error("nil distribution should fail")
	}
}

func TestPaperNodeSystemMTTF(t *testing.T) {
	sys := System{Nodes: 32768, Node: PaperNode()}
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	mttf := sys.EstimateSystemMTTF(rng, 60)
	// The paper's experiments use system MTTFs of 3,000–6,000 s; the
	// component model should land within an order of magnitude.
	if mttf < 500*vclock.Second || mttf > 50000*vclock.Second {
		t.Fatalf("system MTTF = %v, want within the paper's regime", mttf)
	}
}

func TestSystemValidate(t *testing.T) {
	if (System{Nodes: 0, Node: PaperNode()}).Validate() == nil {
		t.Error("zero nodes should fail")
	}
}

func TestFirstFailureBounds(t *testing.T) {
	sys := System{Nodes: 16, Node: Node{Components: []Component{
		{Name: "only", Dist: Exponential{MTBF: 100 * vclock.Second}},
	}}}
	rng := rand.New(rand.NewSource(7))
	start := vclock.TimeFromSeconds(500)
	for i := 0; i < 100; i++ {
		f := sys.FirstFailure(rng, start)
		if f.Node < 0 || f.Node >= 16 {
			t.Fatalf("node %d out of range", f.Node)
		}
		if f.At < start {
			t.Fatalf("failure at %v precedes start %v", f.At, start)
		}
		if f.Component != "only" {
			t.Fatalf("component = %q", f.Component)
		}
	}
}

func TestCampaignSourceDeterministic(t *testing.T) {
	sys := System{Nodes: 64, Node: PaperNode()}
	src := sys.CampaignSource(42)
	a := src(3, vclock.TimeFromSeconds(100))
	b := src(3, vclock.TimeFromSeconds(100))
	if len(a) != 1 || len(b) != 1 || a[0] != b[0] {
		t.Fatalf("not deterministic: %v vs %v", a, b)
	}
	c := src(4, vclock.TimeFromSeconds(100))
	if a[0] == c[0] {
		t.Fatalf("different runs drew identical failures: %v", a[0])
	}
}

func TestDistributionNames(t *testing.T) {
	for _, d := range []Distribution{
		Exponential{MTBF: vclock.Second},
		Weibull{Shape: 2, Scale: vclock.Second},
		LogNormal{Mu: 1, Sigma: 0.5},
	} {
		if d.Name() == "" {
			t.Errorf("%T has empty name", d)
		}
	}
}
