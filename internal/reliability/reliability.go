// Package reliability provides component-based system reliability models —
// the paper's future-work item (2). Instead of the evaluation's worst-case
// uniform failure draw, a simulated system is composed of nodes, each a
// series system of components (CPU, memory, NIC, ...) with their own
// time-to-failure distributions; the model generates MPI process failure
// schedules for the fault injector and estimates of the system MTTF.
//
// Distributions follow the HPC reliability literature: exponential
// (constant hazard), Weibull (infant mortality for shape < 1, wear-out for
// shape > 1), and lognormal.
package reliability

import (
	"fmt"
	"math"
	"math/rand"

	"xsim/internal/fault"
	"xsim/internal/vclock"
)

// maxTTF caps sampled times-to-failure: virtual time is int64 nanoseconds
// (max ≈ 292 years), and heavy-tailed draws beyond a century are
// irrelevant to any simulated run anyway.
const maxTTF = 100 * 365 * 24 * vclock.Hour

// clampTTF converts seconds to a duration, capping at maxTTF.
func clampTTF(seconds float64) vclock.Duration {
	if seconds >= maxTTF.Seconds() {
		return maxTTF
	}
	return vclock.FromSeconds(seconds)
}

// Distribution samples component times-to-failure.
type Distribution interface {
	// Sample draws one time-to-failure.
	Sample(rng *rand.Rand) vclock.Duration
	// Mean returns the distribution's expected time-to-failure.
	Mean() vclock.Duration
	// Name describes the distribution.
	Name() string
}

// Exponential is the constant-hazard distribution, parameterised by its
// mean time between failures.
type Exponential struct {
	MTBF vclock.Duration
}

// Sample implements Distribution via inverse-CDF sampling.
func (e Exponential) Sample(rng *rand.Rand) vclock.Duration {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return clampTTF(-e.MTBF.Seconds() * math.Log(u))
}

// Mean implements Distribution.
func (e Exponential) Mean() vclock.Duration { return e.MTBF }

// Name implements Distribution.
func (e Exponential) Name() string { return fmt.Sprintf("exponential(MTBF=%v)", e.MTBF) }

// Weibull is the Weibull distribution with the given shape and scale.
// Shape < 1 models infant mortality (decreasing hazard), shape > 1
// wear-out (increasing hazard), shape = 1 reduces to exponential.
type Weibull struct {
	Shape float64
	Scale vclock.Duration
}

// Sample implements Distribution via inverse-CDF sampling.
func (w Weibull) Sample(rng *rand.Rand) vclock.Duration {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return clampTTF(w.Scale.Seconds() * math.Pow(-math.Log(u), 1/w.Shape))
}

// Mean implements Distribution: scale × Γ(1 + 1/shape), capped at the
// representable maximum.
func (w Weibull) Mean() vclock.Duration {
	g, _ := math.Lgamma(1 + 1/w.Shape)
	return clampTTF(w.Scale.Seconds() * math.Exp(g))
}

// Name implements Distribution.
func (w Weibull) Name() string { return fmt.Sprintf("weibull(k=%g, λ=%v)", w.Shape, w.Scale) }

// LogNormal is the lognormal distribution: ln(TTF seconds) ~ N(Mu, Sigma²).
type LogNormal struct {
	Mu, Sigma float64
}

// Sample implements Distribution.
func (l LogNormal) Sample(rng *rand.Rand) vclock.Duration {
	return clampTTF(math.Exp(l.Mu + l.Sigma*rng.NormFloat64()))
}

// Mean implements Distribution: exp(Mu + Sigma²/2), capped at the
// representable maximum.
func (l LogNormal) Mean() vclock.Duration {
	return clampTTF(math.Exp(l.Mu + l.Sigma*l.Sigma/2))
}

// Name implements Distribution.
func (l LogNormal) Name() string { return fmt.Sprintf("lognormal(µ=%g, σ=%g)", l.Mu, l.Sigma) }

// Component is one part of a node with its own failure behaviour.
type Component struct {
	Name string
	Dist Distribution
}

// Node is a series system: it fails when its first component fails.
type Node struct {
	Components []Component
}

// Validate reports a configuration error, if any.
func (n Node) Validate() error {
	if len(n.Components) == 0 {
		return fmt.Errorf("reliability: node has no components")
	}
	for _, c := range n.Components {
		if c.Dist == nil {
			return fmt.Errorf("reliability: component %q has no distribution", c.Name)
		}
		if c.Dist.Mean() <= 0 {
			return fmt.Errorf("reliability: component %q has non-positive mean TTF", c.Name)
		}
	}
	return nil
}

// SampleTTF draws the node's time-to-failure and the failing component.
func (n Node) SampleTTF(rng *rand.Rand) (vclock.Duration, string) {
	best := vclock.Duration(math.MaxInt64)
	which := ""
	for _, c := range n.Components {
		if ttf := c.Dist.Sample(rng); ttf < best {
			best = ttf
			which = c.Name
		}
	}
	return best, which
}

// PaperNode returns a plausible compute-node model in the band the paper's
// discussion implies (exascale-era components with decreasing
// reliability): exponential CPU and NIC, Weibull wear-out memory and
// infant-mortality power supply, combining to a node MTBF of roughly 7
// years — so a 32,768-node system fails every several hours, the regime of
// Table II's 3,000–6,000 s system MTTFs.
func PaperNode() Node {
	year := 365 * 24 * vclock.Hour
	return Node{Components: []Component{
		{Name: "cpu", Dist: Exponential{MTBF: 25 * year}},
		{Name: "memory", Dist: Weibull{Shape: 1.5, Scale: 20 * year}},
		{Name: "nic", Dist: Exponential{MTBF: 40 * year}},
		{Name: "psu", Dist: Weibull{Shape: 0.9, Scale: 30 * year}},
	}}
}

// System is a machine of identical nodes, one simulated MPI rank per node.
type System struct {
	Nodes int
	Node  Node
}

// Validate reports a configuration error, if any.
func (s System) Validate() error {
	if s.Nodes <= 0 {
		return fmt.Errorf("reliability: system needs nodes, got %d", s.Nodes)
	}
	return s.Node.Validate()
}

// Failure is a drawn node failure.
type Failure struct {
	// Node is the failed node (= rank) index.
	Node int
	// At is the virtual failure time.
	At vclock.Time
	// Component names the component that failed.
	Component string
}

// FirstFailure draws each node's time-to-failure from start and returns
// the earliest — the next system failure under the renewal assumption
// (every restart begins with fresh components, the analogue of the paper's
// per-run failure draws).
func (s System) FirstFailure(rng *rand.Rand, start vclock.Time) Failure {
	best := Failure{Node: -1, At: vclock.Never}
	for node := 0; node < s.Nodes; node++ {
		ttf, comp := s.Node.SampleTTF(rng)
		if at := start.Add(ttf); at < best.At {
			best = Failure{Node: node, At: at, Component: comp}
		}
	}
	return best
}

// EstimateSystemMTTF Monte-Carlo-estimates the system's mean time to first
// failure over the given number of samples.
func (s System) EstimateSystemMTTF(rng *rand.Rand, samples int) vclock.Duration {
	if samples <= 0 {
		samples = 100
	}
	var sum float64
	for i := 0; i < samples; i++ {
		f := s.FirstFailure(rng, 0)
		sum += vclock.Duration(f.At).Seconds()
	}
	return vclock.FromSeconds(sum / float64(samples))
}

// CampaignSource adapts the system model to the restart campaign: run i
// draws the system's first failure after the run's start time,
// deterministically from the base seed. The returned schedule has one
// entry (the paper's evaluation also injects at most one failure per run).
func (s System) CampaignSource(seed int64) func(run int, start vclock.Time) fault.Schedule {
	return func(run int, start vclock.Time) fault.Schedule {
		rng := rand.New(rand.NewSource(seed + int64(run)))
		f := s.FirstFailure(rng, start)
		if f.Node < 0 {
			return nil
		}
		return fault.Schedule{{Rank: f.Node, At: f.At}}
	}
}
