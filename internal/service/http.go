// http.go maps the Service onto HTTP: versioned campaign endpoints, a
// chunked NDJSON progress stream, a health probe, and Prometheus-style
// text metrics. Handlers stay thin — every decision (validation, quota,
// cache, dedup) lives in service.go; here errors just become status
// codes: *xsim.SpecError → 400, ErrQuotaExceeded → 429,
// ErrQueueClosed → 503.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"xsim"
)

// maxSpecBytes bounds a submitted spec document; canonical specs are a
// few hundred bytes, so 1 MiB is generous.
const maxSpecBytes = 1 << 20

// Handler returns the service's HTTP API.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /v1/campaigns", s.handleList)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/campaigns/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/campaigns/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// apiError is the JSON error envelope.
type apiError struct {
	Error  string   `json:"error"`
	Fields []string `json:"fields,omitempty"`
}

// writeError maps a service error to its status code and JSON body.
func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case xsim.IsSpecError(err):
		code = http.StatusBadRequest
	case errors.Is(err, ErrQuotaExceeded):
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrQueueClosed):
		code = http.StatusServiceUnavailable
	}
	body := apiError{Error: err.Error()}
	// Surface each violated field separately so clients can point at
	// their inputs; errors.Join flattens into Unwrap() []error.
	var joined interface{ Unwrap() []error }
	if errors.As(err, &joined) {
		for _, e := range joined.Unwrap() {
			var se *xsim.SpecError
			if errors.As(e, &se) && se.Field != "" {
				body.Fields = append(body.Fields, se.Field)
			}
		}
	} else {
		var se *xsim.SpecError
		if errors.As(err, &se) && se.Field != "" {
			body.Fields = append(body.Fields, se.Field)
		}
	}
	writeJSON(w, code, body)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// handleSubmit admits one campaign: the body is a wire-form
// CampaignSpec, the tenant comes from the X-Tenant header ("default"
// when absent). 202 Accepted for queued/joined work, 200 for instant
// cache hits.
func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeError(w, &xsim.SpecError{Msg: fmt.Sprintf("reading body: %v", err)})
		return
	}
	if len(body) > maxSpecBytes {
		writeError(w, &xsim.SpecError{Msg: "spec document exceeds 1 MiB"})
		return
	}
	spec, err := xsim.DecodeCampaignSpec(body)
	if err != nil {
		writeError(w, err)
		return
	}
	status, err := s.Submit(r.Header.Get("X-Tenant"), spec)
	if err != nil {
		writeError(w, err)
		return
	}
	code := http.StatusAccepted
	if status.State == StateCompleted {
		code = http.StatusOK
	}
	writeJSON(w, code, status)
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	status, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such campaign"})
		return
	}
	writeJSON(w, http.StatusOK, status)
}

// handleResult serves a completed campaign's canonical outcome bytes
// verbatim — the same bytes the CLI's canonical output produces, so
// transports can be compared bit-for-bit.
func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	status, ok := s.Job(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such campaign"})
		return
	}
	data, ok, err := s.Result(id)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	if !ok {
		writeJSON(w, http.StatusConflict, apiError{
			Error: fmt.Sprintf("campaign %s is %s, result not available", id, status.State)})
		return
	}
	// Trailing newline matches xsim-run -campaign output so the two
	// transports are byte-identical end to end.
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

// handleEvents streams a campaign's progress as chunked NDJSON
// (application/x-ndjson): the replay buffer first, then live events,
// ending after the terminal "done" line. Clients that connect after
// completion still receive the full replay.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	lines, cancel, ok := s.Subscribe(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such campaign"})
		return
	}
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	for {
		select {
		case line, open := <-lines:
			if !open {
				return
			}
			if _, err := w.Write(append(line, '\n')); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleMetrics emits the counters in Prometheus text exposition format.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.Metrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	emit := func(name, help string, value int) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, value)
	}
	emit("xsim_campaigns_submitted_total", "Campaign submissions admitted.", m.Submitted)
	emit("xsim_campaigns_completed_total", "Campaigns finished successfully.", m.Completed)
	emit("xsim_campaigns_failed_total", "Campaigns finished with an error.", m.Failed)
	emit("xsim_campaigns_cancelled_total", "Campaigns cancelled (drain or shutdown).", m.Cancelled)
	emit("xsim_cache_hits_total", "Submissions answered from the result store.", m.CacheHits)
	emit("xsim_cache_misses_total", "Submissions not answered from the result store.", m.CacheMiss)
	emit("xsim_dedup_joins_total", "Submissions joined to an in-flight identical campaign.", m.DedupJoins)
	emit("xsim_sim_runs_total", "Campaigns actually executed by the simulator.", m.SimRuns)
	emit("xsim_queue_depth", "Jobs currently queued.", m.QueueDepth)
	emit("xsim_store_keys", "Canonical results in the store.", m.StoredKeys)
}
