// Package service implements the campaign service behind cmd/xsim-server:
// an in-process job system that accepts wire-form campaign specs
// (xsim.CampaignSpec), schedules them across tenants with weighted
// fairness and quotas, executes them through the existing experiment
// drivers, and caches canonical outcomes content-addressed by the
// canonical spec encoding. The layering is cmd → service → store: this
// package owns queueing, execution, dedup, progress streaming, and
// metrics; jobstore owns result bytes; the HTTP handlers in http.go are a
// thin status-code mapping over the methods here.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"xsim"
	"xsim/internal/jobstore"
)

// Config parameterises a Service.
type Config struct {
	// Workers is the number of concurrent campaign executors (default
	// 2). Each campaign additionally parallelises internally through its
	// spec's pool, so a small worker count saturates the machine.
	Workers int
	// Store holds canonical outcome bytes keyed by canonical spec hash
	// (default an in-memory store).
	Store jobstore.Store
	// Queue configures per-tenant weights and quotas.
	Queue QueueConfig
	// Logf receives service logs; nil discards them.
	Logf func(format string, args ...any)
}

// Job states.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateCompleted = "completed"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// job is one submitted campaign.
type job struct {
	id      string
	tenant  string
	key     string
	kind    xsim.CampaignKind
	spec    *xsim.CampaignSpec
	created time.Time

	mu     sync.Mutex
	state  string
	cached bool // satisfied from cache or by joining an in-flight leader
	errMsg string
	events [][]byte // NDJSON replay buffer, one line per event
	subs   map[chan []byte]struct{}
	// followers are jobs for the same cache key submitted while this
	// leader was in flight; they finish when the leader does.
	followers []*job
	done      chan struct{}
}

// JobStatus is a job's wire-form status document.
type JobStatus struct {
	ID      string            `json:"id"`
	Tenant  string            `json:"tenant"`
	Kind    xsim.CampaignKind `json:"kind"`
	Key     string            `json:"key"`
	State   string            `json:"state"`
	Cached  bool              `json:"cached"`
	Error   string            `json:"error,omitempty"`
	Created time.Time         `json:"created"`
}

// Metrics is a snapshot of the service counters. CacheHits counts
// submissions answered from the result store without touching the queue;
// DedupJoins counts submissions that attached to an in-flight leader for
// the same key; SimRuns counts campaigns actually executed — the
// determinism contract's "resubmission runs zero new simulations" is
// asserted against these.
type Metrics struct {
	Submitted  int `json:"submitted"`
	Completed  int `json:"completed"`
	Failed     int `json:"failed"`
	Cancelled  int `json:"cancelled"`
	CacheHits  int `json:"cache_hits"`
	CacheMiss  int `json:"cache_misses"`
	DedupJoins int `json:"dedup_joins"`
	SimRuns    int `json:"sim_runs"`
	QueueDepth int `json:"queue_depth"`
	StoredKeys int `json:"stored_keys"`
}

// Service is the campaign service core.
type Service struct {
	cfg   Config
	store jobstore.Store
	q     *queue

	runCtx    context.Context
	runCancel context.CancelFunc
	wg        sync.WaitGroup

	mu      sync.Mutex
	jobs    map[string]*job
	order   []*job
	leaders map[string]*job // cache key → in-flight leader job
	seq     int
	m       Metrics
}

// New builds a Service and starts its workers.
func New(cfg Config) *Service {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Store == nil {
		cfg.Store = jobstore.NewMem()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:       cfg,
		store:     cfg.Store,
		q:         newQueue(cfg.Queue),
		runCtx:    ctx,
		runCancel: cancel,
		jobs:      make(map[string]*job),
		leaders:   make(map[string]*job),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

func (s *Service) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Submit validates and admits one campaign for a tenant. The spec is
// normalized and validated first (*xsim.SpecError → 400); its cache key
// is computed from the canonical encoding; a stored result completes the
// job instantly (cache hit), an in-flight computation of the same key is
// joined (dedup), and otherwise the job is enqueued under the tenant's
// quota (ErrQuotaExceeded → 429).
func (s *Service) Submit(tenant string, spec *xsim.CampaignSpec) (JobStatus, error) {
	if tenant == "" {
		tenant = "default"
	}
	key, err := spec.CacheKey() // normalizes + validates a copy
	if err != nil {
		return JobStatus{}, err
	}

	s.mu.Lock()
	s.seq++
	j := &job{
		id:      fmt.Sprintf("c%06d", s.seq),
		tenant:  tenant,
		key:     key,
		kind:    spec.Kind,
		spec:    spec,
		created: time.Now(),
		state:   StateQueued,
		subs:    make(map[chan []byte]struct{}),
		done:    make(chan struct{}),
	}
	s.m.Submitted++

	// Cache: a stored canonical outcome answers the job instantly.
	if _, ok, serr := s.store.Get(key); serr == nil && ok {
		s.m.CacheHits++
		s.jobs[j.id] = j
		s.order = append(s.order, j)
		s.mu.Unlock()
		j.finish(StateCompleted, "", true)
		s.logf("job %s tenant=%s key=%.12s… cache hit", j.id, tenant, key)
		return s.status(j), nil
	}
	s.m.CacheMiss++

	// Dedup: join an in-flight leader computing the same key — the cell
	// is deterministic, so computing it twice buys nothing.
	if leader, ok := s.leaders[key]; ok {
		s.m.DedupJoins++
		s.jobs[j.id] = j
		s.order = append(s.order, j)
		leader.mu.Lock()
		leader.followers = append(leader.followers, j)
		leader.mu.Unlock()
		s.mu.Unlock()
		s.logf("job %s tenant=%s key=%.12s… joined %s", j.id, tenant, key, leader.id)
		return s.status(j), nil
	}
	// Leader: enqueue under the tenant's quota. The push happens while
	// s.mu is still held so that registering the leader is atomic with
	// queueing it — a worker cannot finish the job (which deletes the
	// leader entry) before the entry exists. Lock order s.mu → q.mu is
	// used nowhere in reverse.
	if err := s.q.Push(j); err != nil {
		// Rejected submissions (quota, drain) never become jobs: undo
		// the admission counters so metrics reflect accepted work only.
		s.m.Submitted--
		s.m.CacheMiss--
		s.mu.Unlock()
		return JobStatus{}, err
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	s.leaders[key] = j
	s.mu.Unlock()
	s.logf("job %s tenant=%s key=%.12s… queued", j.id, tenant, key)
	return s.status(j), nil
}

// worker executes queued jobs until the queue closes and drains.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.q.Pop()
		if !ok {
			return
		}
		s.runJob(j)
	}
}

// runJob executes one leader job through the experiment drivers, stores
// its canonical outcome, and finishes it and its followers.
func (s *Service) runJob(j *job) {
	j.setState(StateRunning)
	j.publish(map[string]any{"event": "state", "state": StateRunning})

	s.mu.Lock()
	s.m.SimRuns++
	s.mu.Unlock()

	out, err := j.spec.RunWith(s.runCtx, xsim.RunOptions{
		Logf: func(format string, args ...any) { s.logf("job %s: "+format, append([]any{j.id}, args...)...) },
		OnProgress: func(ev xsim.ProgressEvent) {
			j.publish(map[string]any{"event": "progress", "data": ev})
		},
	})
	if err != nil {
		state := StateFailed
		if s.runCtx.Err() != nil {
			state = StateCancelled
		}
		s.logf("job %s: %s: %v", j.id, state, err)
		s.completeJob(j, state, err.Error())
		return
	}
	data, err := out.Canonical()
	if err == nil {
		err = s.store.Put(j.key, data)
	}
	if err != nil {
		s.logf("job %s: storing result: %v", j.id, err)
		s.completeJob(j, StateFailed, err.Error())
		return
	}
	s.logf("job %s: completed, %d result bytes", j.id, len(data))
	s.completeJob(j, StateCompleted, "")
}

// completeJob finishes a leader and its followers, releases quota, and
// updates counters.
func (s *Service) completeJob(j *job, state, errMsg string) {
	s.mu.Lock()
	delete(s.leaders, j.key)
	s.countFinish(state)
	s.mu.Unlock()

	j.mu.Lock()
	followers := j.followers
	j.followers = nil
	j.mu.Unlock()

	j.finish(state, errMsg, false)
	s.q.Release(j.tenant)
	for _, f := range followers {
		s.mu.Lock()
		s.countFinish(state)
		s.mu.Unlock()
		f.finish(state, errMsg, true)
	}
}

// countFinish updates the outcome counters for one finished job.
// Callers hold s.mu.
func (s *Service) countFinish(state string) {
	switch state {
	case StateCompleted:
		s.m.Completed++
	case StateFailed:
		s.m.Failed++
	case StateCancelled:
		s.m.Cancelled++
	}
}

// Drain gracefully shuts the service down: intake closes (new Submits
// fail with ErrQueueClosed), the queued backlog is cancelled without
// running, in-flight campaigns are cancelled through the simulator's
// cancellation path (Engine.Cancel at the next window boundary), and
// workers are awaited until ctx expires. Completed results are already
// flushed to the store by the time their jobs finish, so a drained
// server loses only cancelled work.
func (s *Service) Drain(ctx context.Context) error {
	s.q.Close()
	for _, j := range s.q.Flush() {
		s.completeJob(j, StateCancelled, "server draining")
	}
	s.runCancel()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain: %w", ctx.Err())
	}
}

// --- introspection --------------------------------------------------------

// status snapshots a job's wire status.
func (s *Service) status(j *job) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:      j.id,
		Tenant:  j.tenant,
		Kind:    j.kind,
		Key:     j.key,
		State:   j.state,
		Cached:  j.cached,
		Error:   j.errMsg,
		Created: j.created,
	}
}

// Job returns a job's status by ID.
func (s *Service) Job(id string) (JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	return s.status(j), true
}

// Jobs lists every job in submission order.
func (s *Service) Jobs() []JobStatus {
	s.mu.Lock()
	order := append([]*job(nil), s.order...)
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(order))
	for _, j := range order {
		out = append(out, s.status(j))
	}
	return out
}

// Result returns a finished job's canonical outcome bytes.
func (s *Service) Result(id string) ([]byte, bool, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	j.mu.Lock()
	state, key := j.state, j.key
	j.mu.Unlock()
	if state != StateCompleted {
		return nil, false, nil
	}
	return s.store.Get(key)
}

// Metrics snapshots the service counters.
func (s *Service) Metrics() Metrics {
	s.mu.Lock()
	m := s.m
	s.mu.Unlock()
	m.QueueDepth = s.q.Depth()
	if n, err := s.store.Len(); err == nil {
		m.StoredKeys = n
	}
	return m
}

// Subscribe streams a job's NDJSON event lines: the replay buffer first,
// then live events until the job finishes. The returned channel closes
// after the terminal event; cancel detaches early. ok is false for an
// unknown job.
func (s *Service) Subscribe(id string) (lines <-chan []byte, cancel func(), ok bool) {
	s.mu.Lock()
	j, found := s.jobs[id]
	s.mu.Unlock()
	if !found {
		return nil, nil, false
	}
	return j.subscribe()
}

// --- job internals --------------------------------------------------------

func (j *job) setState(state string) {
	j.mu.Lock()
	j.state = state
	j.mu.Unlock()
}

// publish appends one event line to the replay buffer and fans it out to
// live subscribers. A subscriber too slow to keep up is dropped (its
// channel closed) rather than allowed to stall the campaign.
func (j *job) publish(ev map[string]any) {
	line, err := json.Marshal(ev)
	if err != nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.publishLocked(line)
}

func (j *job) publishLocked(line []byte) {
	j.events = append(j.events, line)
	for ch := range j.subs {
		select {
		case ch <- line:
		default:
			delete(j.subs, ch)
			close(ch)
		}
	}
}

// finish moves the job to a terminal state, publishes the terminal
// event, and wakes waiters.
func (j *job) finish(state, errMsg string, cached bool) {
	term := map[string]any{"event": "done", "state": state}
	if errMsg != "" {
		term["error"] = errMsg
	}
	if cached {
		term["cached"] = true
	}
	line, _ := json.Marshal(term)

	j.mu.Lock()
	if j.state == StateCompleted || j.state == StateFailed || j.state == StateCancelled {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.errMsg = errMsg
	j.cached = cached
	j.publishLocked(line)
	for ch := range j.subs {
		delete(j.subs, ch)
		close(ch)
	}
	j.mu.Unlock()
	close(j.done)
}

// Done exposes a job's completion channel (used by tests and the HTTP
// wait path).
func (s *Service) Done(id string) (<-chan struct{}, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	return j.done, true
}

// subscribe attaches a live channel carrying the replay buffer followed
// by future events.
func (j *job) subscribe() (<-chan []byte, func(), bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	// Capacity for the whole replay plus live headroom; the fan-out
	// drops subscribers whose buffers fill.
	ch := make(chan []byte, len(j.events)+256)
	for _, line := range j.events {
		ch <- line
	}
	terminal := j.state == StateCompleted || j.state == StateFailed || j.state == StateCancelled
	if terminal {
		close(ch)
		return ch, func() {}, true
	}
	j.subs[ch] = struct{}{}
	cancel := func() {
		j.mu.Lock()
		if _, ok := j.subs[ch]; ok {
			delete(j.subs, ch)
			close(ch)
		}
		j.mu.Unlock()
	}
	return ch, cancel, true
}
