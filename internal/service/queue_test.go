package service

import (
	"errors"
	"fmt"
	"testing"
)

func testJob(tenant string, n int) *job {
	return &job{id: fmt.Sprintf("%s-%d", tenant, n), tenant: tenant}
}

// popAll drains the queue synchronously (it must not block: the backlog
// is fully pushed first and the queue is closed).
func popAll(q *queue) []string {
	q.Close()
	var order []string
	for {
		j, ok := q.Pop()
		if !ok {
			return order
		}
		order = append(order, j.tenant)
	}
}

// TestQueueInterleavesEqualTenants pins the acceptance criterion: two
// tenants with equal weight and 10 jobs each interleave with bounded
// skew — at every prefix of the pop order the tenants' grant counts
// differ by at most one. The property is over pop order alone, so the
// test needs no clocks and no goroutines.
func TestQueueInterleavesEqualTenants(t *testing.T) {
	q := newQueue(QueueConfig{})
	for i := 0; i < 10; i++ {
		if err := q.Push(testJob("alice", i)); err != nil {
			t.Fatal(err)
		}
		if err := q.Push(testJob("bob", i)); err != nil {
			t.Fatal(err)
		}
	}
	order := popAll(q)
	if len(order) != 20 {
		t.Fatalf("popped %d jobs, want 20", len(order))
	}
	counts := map[string]int{}
	for i, tenant := range order {
		counts[tenant]++
		if skew := counts["alice"] - counts["bob"]; skew < -1 || skew > 1 {
			t.Fatalf("after %d pops skew = %d (order %v)", i+1, skew, order[:i+1])
		}
	}
}

// TestQueueHonoursWeights pins weighted fairness: weight 3 vs 1 grants
// 3:1 within every full cycle.
func TestQueueHonoursWeights(t *testing.T) {
	q := newQueue(QueueConfig{Weights: map[string]int{"heavy": 3}})
	for i := 0; i < 9; i++ {
		q.Push(testJob("heavy", i))
	}
	for i := 0; i < 3; i++ {
		q.Push(testJob("light", i))
	}
	order := popAll(q)
	want := []string{
		"heavy", "heavy", "heavy", "light",
		"heavy", "heavy", "heavy", "light",
		"heavy", "heavy", "heavy", "light",
	}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("pop order = %v, want %v", order, want)
	}
}

// TestQueueLateTenantStillBounded pins that a tenant arriving after
// another has queued a backlog is not starved: from its first grant on,
// per-cycle skew stays bounded by the weights.
func TestQueueLateTenantStillBounded(t *testing.T) {
	q := newQueue(QueueConfig{})
	for i := 0; i < 10; i++ {
		q.Push(testJob("early", i))
	}
	for i := 0; i < 10; i++ {
		q.Push(testJob("late", i))
	}
	order := popAll(q)
	// After the first "late" grant, alternation must hold.
	first := -1
	for i, tenant := range order {
		if tenant == "late" {
			first = i
			break
		}
	}
	if first < 0 || first > 2 {
		t.Fatalf("late tenant first granted at position %d: %v", first, order)
	}
	for i := first; i+1 < len(order)-1 && order[i] == "late"; i += 2 {
		if order[i+1] != "early" {
			t.Fatalf("alternation broken at %d: %v", i, order)
		}
	}
}

func TestQueueQuotaAndRelease(t *testing.T) {
	q := newQueue(QueueConfig{DefaultQuota: 2})
	if err := q.Push(testJob("a", 0)); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(testJob("a", 1)); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(testJob("a", 2)); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("third push err = %v, want ErrQuotaExceeded", err)
	}
	// Another tenant is unaffected.
	if err := q.Push(testJob("b", 0)); err != nil {
		t.Fatal(err)
	}
	// Quota covers queued + running: popping alone frees nothing.
	if _, ok := q.Pop(); !ok {
		t.Fatal("pop failed")
	}
	if err := q.Push(testJob("a", 3)); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("push after pop err = %v, want ErrQuotaExceeded (job still running)", err)
	}
	q.Release("a")
	if err := q.Push(testJob("a", 4)); err != nil {
		t.Fatalf("push after release: %v", err)
	}
}

func TestQueueCloseDrainsThenStops(t *testing.T) {
	q := newQueue(QueueConfig{})
	q.Push(testJob("a", 0))
	q.Close()
	if err := q.Push(testJob("a", 1)); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("push after close err = %v, want ErrQueueClosed", err)
	}
	if _, ok := q.Pop(); !ok {
		t.Fatal("expected the queued job before shutdown")
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("expected ok=false after drain")
	}
}
