// queue.go implements the campaign service's admission queue: per-tenant
// FIFOs drained by weighted round-robin, with per-tenant quotas enforced
// at submission. Fairness is a property of pop order alone — a tenant
// with weight w receives w consecutive grants per cycle across the
// tenants that have work — so it is deterministic given the push
// sequence and testable without wall-clock.
package service

import (
	"errors"
	"fmt"
	"sync"
)

// ErrQuotaExceeded reports a submission rejected because the tenant
// already has its quota of unfinished jobs; the HTTP layer maps it to
// 429.
var ErrQuotaExceeded = errors.New("service: tenant quota exceeded")

// ErrQueueClosed reports a submission after intake closed (server
// draining); the HTTP layer maps it to 503.
var ErrQueueClosed = errors.New("service: queue closed")

// QueueConfig parameterises the fair queue.
type QueueConfig struct {
	// DefaultWeight is a tenant's round-robin weight when Weights has no
	// entry (default 1). A tenant with weight w is granted w consecutive
	// pops per cycle while it has work.
	DefaultWeight int
	// Weights overrides per-tenant weights.
	Weights map[string]int
	// DefaultQuota caps a tenant's unfinished jobs — queued plus running
	// — when Quotas has no entry (0 = unlimited).
	DefaultQuota int
	// Quotas overrides per-tenant quotas.
	Quotas map[string]int
}

// tenantQueue is one tenant's FIFO plus its fairness state.
type tenantQueue struct {
	name string
	jobs []*job
	// inflight counts unfinished jobs (queued + running) for quota
	// enforcement; Release decrements it when a job finishes.
	inflight int
	// credit is the tenant's remaining grants in the current round-robin
	// cycle; it refills to the tenant's weight when every tenant with
	// work is out of credit.
	credit int
}

// queue is the weighted fair scheduler. Pop blocks until work arrives or
// intake closes with the queue empty.
type queue struct {
	cfg QueueConfig

	mu      sync.Mutex
	cond    *sync.Cond
	tenants map[string]*tenantQueue
	// order fixes the round-robin scan sequence (first-seen order), so
	// scheduling is deterministic.
	order  []*tenantQueue
	closed bool
	queued int
}

// newQueue builds an empty queue.
func newQueue(cfg QueueConfig) *queue {
	if cfg.DefaultWeight <= 0 {
		cfg.DefaultWeight = 1
	}
	q := &queue{cfg: cfg, tenants: make(map[string]*tenantQueue)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// weight returns a tenant's configured round-robin weight.
func (q *queue) weight(tenant string) int {
	if w, ok := q.cfg.Weights[tenant]; ok && w > 0 {
		return w
	}
	return q.cfg.DefaultWeight
}

// quota returns a tenant's configured quota (0 = unlimited).
func (q *queue) quota(tenant string) int {
	if limit, ok := q.cfg.Quotas[tenant]; ok {
		return limit
	}
	return q.cfg.DefaultQuota
}

// tenant returns (creating if needed) a tenant's queue state.
func (q *queue) tenant(name string) *tenantQueue {
	tq, ok := q.tenants[name]
	if !ok {
		tq = &tenantQueue{name: name, credit: q.weight(name)}
		q.tenants[name] = tq
		q.order = append(q.order, tq)
	}
	return tq
}

// Push enqueues a job for its tenant, enforcing the tenant's quota
// against its unfinished (queued + running) count.
func (q *queue) Push(j *job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	tq := q.tenant(j.tenant)
	if limit := q.quota(j.tenant); limit > 0 && tq.inflight >= limit {
		return fmt.Errorf("%w: tenant %q has %d unfinished jobs (quota %d)",
			ErrQuotaExceeded, j.tenant, tq.inflight, limit)
	}
	tq.inflight++
	tq.jobs = append(tq.jobs, j)
	q.queued++
	q.cond.Signal()
	return nil
}

// Pop removes and returns the next job by weighted round-robin, blocking
// while the queue is open and empty. It returns ok=false once the queue
// is closed and drained.
func (q *queue) Pop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.queued > 0 {
			return q.popLocked(), true
		}
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
}

// popLocked picks the next tenant by weighted round-robin: scan tenants
// in first-seen order for one with queued work and remaining credit;
// when every tenant with work is out of credit, refill all credits (one
// cycle ends) and scan again. Each grant consumes one credit, so a cycle
// gives tenant t at most weight(t) pops — the bounded-skew fairness the
// service promises.
func (q *queue) popLocked() *job {
	for {
		for _, tq := range q.order {
			if len(tq.jobs) == 0 || tq.credit <= 0 {
				continue
			}
			tq.credit--
			j := tq.jobs[0]
			tq.jobs = tq.jobs[1:]
			q.queued--
			return j
		}
		// Every tenant with work exhausted its credit: start a new cycle.
		for _, tq := range q.order {
			tq.credit = q.weight(tq.name)
		}
	}
}

// Release returns one unit of a tenant's quota when a job finishes
// (completed, failed, or cancelled).
func (q *queue) Release(tenant string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if tq, ok := q.tenants[tenant]; ok && tq.inflight > 0 {
		tq.inflight--
	}
}

// Close stops intake: subsequent Pushes fail with ErrQueueClosed and
// Pops drain the backlog then return ok=false.
func (q *queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// Flush removes and returns every queued job without running them — the
// drain path uses it to mark the backlog cancelled.
func (q *queue) Flush() []*job {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []*job
	for _, tq := range q.order {
		out = append(out, tq.jobs...)
		tq.jobs = nil
	}
	q.queued = 0
	q.cond.Broadcast()
	return out
}

// Depth reports the number of queued jobs.
func (q *queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.queued
}
