package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"xsim"
)

// table2Spec is the small Table II campaign the integration tests
// submit: the fast 64-rank scale the repo's other tests use.
const table2Spec = `{"version":1,"kind":"table2","ranks":64,"seed":133,
  "table2":{"iterations":200,"intervals":[100,50],"mttf_seconds":[1000]}}`

func startServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc := New(cfg)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		svc.Drain(ctx)
	})
	return svc, srv
}

func submit(t *testing.T, srv *httptest.Server, tenant, spec string) (JobStatus, int) {
	t.Helper()
	req, err := http.NewRequest("POST", srv.URL+"/v1/campaigns", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status JobStatus
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
			t.Fatalf("decoding submit response: %v", err)
		}
	}
	return status, resp.StatusCode
}

// streamUntilDone reads the NDJSON event stream until the terminal line
// and returns every event.
func streamUntilDone(t *testing.T, srv *httptest.Server, id string) []map[string]any {
	t.Helper()
	resp, err := http.Get(srv.URL + "/v1/campaigns/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content-type = %q", ct)
	}
	var events []map[string]any
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
		if ev["event"] == "done" {
			return events
		}
	}
	t.Fatalf("stream ended without a done event (%d events)", len(events))
	return nil
}

func fetchMetrics(t *testing.T, srv *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return buf.String()
}

func metricValue(t *testing.T, text, name string) int {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		var v int
		if _, err := fmt.Sscanf(line, name+" %d", &v); err == nil {
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, text)
	return 0
}

// TestServerEndToEnd is the tentpole's acceptance path: submit a small
// Table II campaign over HTTP, stream its progress, verify the stored
// result is byte-identical to running the same wire spec in-process (the
// CLI path), then resubmit — with different execution knobs — and
// observe a cache hit that runs zero new simulations, asserted via the
// /metrics counters.
func TestServerEndToEnd(t *testing.T) {
	_, srv := startServer(t, Config{Workers: 2})

	status, code := submit(t, srv, "alice", table2Spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}
	if status.State != StateQueued || status.Key == "" {
		t.Fatalf("submit returned %+v", status)
	}

	// Stream progress: expect state + progress lines and a completed
	// terminal event.
	events := streamUntilDone(t, srv, status.ID)
	last := events[len(events)-1]
	if last["state"] != StateCompleted {
		t.Fatalf("terminal event = %v", last)
	}
	sawProgress := false
	for _, ev := range events {
		if ev["event"] == "progress" {
			sawProgress = true
			data := ev["data"].(map[string]any)
			if data["total"].(float64) <= 0 {
				t.Fatalf("progress event without a total: %v", ev)
			}
		}
	}
	if !sawProgress {
		t.Fatal("no progress events streamed")
	}

	// The served result must be byte-identical to executing the same
	// wire spec in-process — exactly what xsim-run -campaign prints.
	resp, err := http.Get(srv.URL + "/v1/campaigns/" + status.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	served, _ := readAll(resp)
	spec, err := xsim.DecodeCampaignSpec([]byte(table2Spec))
	if err != nil {
		t.Fatal(err)
	}
	out, err := spec.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	local, err := out.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	local = append(local, '\n') // xsim-run -campaign prints a trailing newline
	if !bytes.Equal(served, local) {
		t.Fatalf("served result differs from local run:\nserved %s\nlocal  %s", served, local)
	}

	// Resubmit with different execution knobs and another tenant: the
	// canonical key ignores knobs, so this must be an instant cache hit.
	knobbed := strings.Replace(table2Spec, `"ranks":64`, `"ranks":64,"workers":2,"pool":1`, 1)
	status2, code2 := submit(t, srv, "bob", knobbed)
	if code2 != http.StatusOK {
		t.Fatalf("resubmit status = %d, want 200 (cache hit)", code2)
	}
	if status2.State != StateCompleted || !status2.Cached {
		t.Fatalf("resubmit returned %+v, want completed+cached", status2)
	}
	if status2.Key != status.Key {
		t.Fatalf("knobbed resubmit keyed differently: %s vs %s", status2.Key, status.Key)
	}

	metrics := fetchMetrics(t, srv)
	if v := metricValue(t, metrics, "xsim_sim_runs_total"); v != 1 {
		t.Errorf("sim runs = %d, want 1 (resubmission must not simulate)", v)
	}
	if v := metricValue(t, metrics, "xsim_cache_hits_total"); v != 1 {
		t.Errorf("cache hits = %d, want 1", v)
	}
	if v := metricValue(t, metrics, "xsim_cache_misses_total"); v != 1 {
		t.Errorf("cache misses = %d, want 1", v)
	}

	// The cached job's result is served from the same stored bytes.
	resp2, err := http.Get(srv.URL + "/v1/campaigns/" + status2.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	cached, _ := readAll(resp2)
	if !bytes.Equal(cached, served) {
		t.Fatal("cached job served different result bytes")
	}
}

// TestServerDedupesInFlight pins leader/follower dedup: an identical
// spec submitted while the first is still queued or running joins it
// instead of simulating twice.
func TestServerDedupesInFlight(t *testing.T) {
	_, srv := startServer(t, Config{Workers: 1})

	// Occupy the single worker with a slower campaign so the next
	// submissions stay queued deterministically.
	blocker, code := submit(t, srv, "alice", table2Spec)
	if code != http.StatusAccepted {
		t.Fatalf("blocker submit = %d", code)
	}
	fast := `{"version":1,"kind":"table1","seed":9,"table1":{"victims":20,"max_injections":50}}`
	first, code := submit(t, srv, "alice", fast)
	if code != http.StatusAccepted {
		t.Fatalf("first submit = %d", code)
	}
	second, code := submit(t, srv, "bob", fast)
	if code != http.StatusAccepted {
		t.Fatalf("second submit = %d", code)
	}
	if second.Key != first.Key {
		t.Fatal("identical specs keyed differently")
	}

	for _, id := range []string{blocker.ID, first.ID, second.ID} {
		streamUntilDone(t, srv, id)
	}
	metrics := fetchMetrics(t, srv)
	if v := metricValue(t, metrics, "xsim_sim_runs_total"); v != 2 {
		t.Errorf("sim runs = %d, want 2 (dedup must not simulate the join)", v)
	}
	if v := metricValue(t, metrics, "xsim_dedup_joins_total"); v != 1 {
		t.Errorf("dedup joins = %d, want 1", v)
	}

	ra, _ := http.Get(srv.URL + "/v1/campaigns/" + first.ID + "/result")
	rb, _ := http.Get(srv.URL + "/v1/campaigns/" + second.ID + "/result")
	a, _ := readAll(ra)
	b, _ := readAll(rb)
	if !bytes.Equal(a, b) || len(a) == 0 {
		t.Fatalf("leader/follower results differ (%d vs %d bytes)", len(a), len(b))
	}
}

// TestServerErrorMapping pins the typed-error → status-code contract.
func TestServerErrorMapping(t *testing.T) {
	_, srv := startServer(t, Config{Workers: 1})

	post := func(body string) (int, apiError) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/campaigns", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var ae apiError
		json.NewDecoder(resp.Body).Decode(&ae)
		return resp.StatusCode, ae
	}

	// Malformed JSON, unknown fields, and validation failures are 400s
	// with the offending fields named.
	if code, _ := post(`{not json`); code != http.StatusBadRequest {
		t.Errorf("malformed JSON = %d, want 400", code)
	}
	if code, ae := post(`{"version":1,"kind":"table1","bogus":1}`); code != http.StatusBadRequest ||
		len(ae.Fields) != 1 || ae.Fields[0] != "bogus" {
		t.Errorf("unknown field = %d %+v, want 400 naming bogus", code, ae)
	}
	if code, ae := post(`{"version":3,"kind":"nope"}`); code != http.StatusBadRequest || len(ae.Fields) < 2 {
		t.Errorf("bad version+kind = %d %+v, want 400 naming both", code, ae)
	}
	if code, _ := post(``); code != http.StatusBadRequest {
		t.Errorf("empty body = %d, want 400", code)
	}

	// Unknown campaign IDs are 404s.
	resp, err := http.Get(srv.URL + "/v1/campaigns/c999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id = %d, want 404", resp.StatusCode)
	}

	// Healthz answers.
	if resp, err := http.Get(srv.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}
}

// TestServerQuota pins the 429 mapping: a tenant at its quota of
// unfinished jobs is rejected until one finishes, while other tenants
// are unaffected.
func TestServerQuota(t *testing.T) {
	_, srv := startServer(t, Config{
		Workers: 1,
		Queue:   QueueConfig{DefaultQuota: 1},
	})

	first, code := submit(t, srv, "alice", table2Spec)
	if code != http.StatusAccepted {
		t.Fatalf("first submit = %d", code)
	}
	other := `{"version":1,"kind":"table1","seed":5,"table1":{"victims":5,"max_injections":50}}`
	if _, code := submit(t, srv, "alice", other); code != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit = %d, want 429", code)
	}
	if _, code := submit(t, srv, "bob", other); code != http.StatusAccepted {
		t.Fatalf("other tenant = %d, want 202", code)
	}
	streamUntilDone(t, srv, first.ID)
	if _, code := submit(t, srv, "alice", other); code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("post-completion submit = %d, want accepted", code)
	}
}

// TestServerDrain pins graceful shutdown: drain stops intake (503),
// finishes or cancels everything, flushes completed results, and leaks
// no goroutines.
func TestServerDrain(t *testing.T) {
	before := runtime.NumGoroutine()

	svc := New(Config{Workers: 2})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	done, code := submit(t, srv, "alice", table2Spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	streamUntilDone(t, srv, done.ID)

	// Queue one more and drain immediately: it is cancelled, not run.
	pending, code := submit(t, srv, "alice",
		`{"version":1,"kind":"table2","ranks":64,"seed":134,"table2":{"iterations":200,"intervals":[100],"mttf_seconds":[1000]}}`)
	if code != http.StatusAccepted {
		t.Fatalf("second submit = %d", code)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Intake is closed: new (uncached) submissions map to 503. Cached
	// specs still answer 200 — results outlive the queue.
	uncached := `{"version":1,"kind":"table1","seed":77,"table1":{"victims":3,"max_injections":50}}`
	if _, code := submit(t, srv, "alice", uncached); code != http.StatusServiceUnavailable {
		t.Fatalf("submit after drain = %d, want 503", code)
	}
	if _, code := submit(t, srv, "alice", table2Spec); code != http.StatusOK {
		t.Fatalf("cached submit after drain = %d, want 200", code)
	}

	// The completed job's result survived the drain.
	resp, err := http.Get(srv.URL + "/v1/campaigns/" + done.ID + "/result")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("result after drain = %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	// The pending job ended cancelled (either flushed from the queue or
	// cancelled mid-run through the simulator's cancellation path).
	st, ok := svc.Job(pending.ID)
	if !ok || (st.State != StateCancelled && st.State != StateFailed) {
		t.Fatalf("pending job after drain = %+v", st)
	}

	// No leaked goroutines: workers exited, subscribers closed. Allow
	// the runtime a moment to reap HTTP keep-alives.
	srv.Close()
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines: %d before, %d after drain\n%s", before, runtime.NumGoroutine(), buf[:n])
}

func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}
