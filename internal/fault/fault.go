// Package fault provides the MPI process failure injection facilities of
// the simulator: explicit failure schedules given as rank/time pairs (the
// paper's command-line/environment-variable method) and randomly drawn
// failures parameterised by a system mean-time-to-failure (the paper's
// evaluation draws a random rank and a random time within 2×MTTF for each
// application run).
package fault

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"xsim/internal/core"
	"xsim/internal/vclock"
)

// EnvVar is the environment variable conventionally holding a failure
// schedule for the command-line tools (rank@seconds pairs).
const EnvVar = "XSIM_FAILURES"

// Injection schedules a simulated MPI process failure: rank fails at the
// earliest failure time At (the actual failure happens when the simulator
// regains control at or after At).
type Injection struct {
	Rank int
	At   vclock.Time
}

// String renders the injection in schedule syntax.
func (i Injection) String() string {
	return fmt.Sprintf("%d@%g", i.Rank, i.At.Seconds())
}

// Schedule is a set of failure injections.
type Schedule []Injection

// Parse reads a schedule in "rank@seconds[,rank@seconds...]" syntax, e.g.
// "12@350.5,99@1200". Whitespace around entries is ignored; an empty
// string is an empty schedule.
func Parse(s string) (Schedule, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out Schedule
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		rankStr, timeStr, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("fault: entry %q is not rank@seconds", part)
		}
		rank, err := strconv.Atoi(strings.TrimSpace(rankStr))
		if err != nil {
			return nil, fmt.Errorf("fault: bad rank in %q: %v", part, err)
		}
		if rank < 0 {
			return nil, fmt.Errorf("fault: negative rank in %q", part)
		}
		secs, err := strconv.ParseFloat(strings.TrimSpace(timeStr), 64)
		if err != nil {
			return nil, fmt.Errorf("fault: bad time in %q: %v", part, err)
		}
		// ParseFloat accepts "NaN" and "Inf", and `secs < 0` is false for
		// both NaN and +Inf; a float64→int64 conversion of either (or of
		// any value at or beyond 2^63 nanoseconds) is implementation-
		// defined, so reject everything the virtual clock cannot represent.
		// float64(math.MaxInt64) is exactly 2^63, so ns < that bound
		// guarantees a safe conversion.
		if secs < 0 || math.IsNaN(secs) {
			return nil, fmt.Errorf("fault: negative time in %q", part)
		}
		if ns := secs * 1e9; math.IsInf(ns, 0) || ns >= float64(math.MaxInt64) {
			return nil, fmt.Errorf("fault: time in %q overflows the virtual clock", part)
		}
		out = append(out, Injection{Rank: rank, At: vclock.TimeFromSeconds(secs)})
	}
	return out, nil
}

// String renders the schedule in Parse syntax.
func (s Schedule) String() string {
	parts := make([]string, len(s))
	for i, inj := range s {
		parts[i] = inj.String()
	}
	return strings.Join(parts, ",")
}

// Sorted returns a copy ordered by (time, rank).
func (s Schedule) Sorted() Schedule {
	out := append(Schedule(nil), s...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Rank < out[j].Rank
	})
	return out
}

// Apply schedules every injection on the engine. Must be called before the
// engine runs.
func Apply(eng *core.Engine, s Schedule) error {
	for _, inj := range s {
		if err := eng.ScheduleFailure(inj.Rank, inj.At); err != nil {
			return err
		}
	}
	return nil
}

// RandomFailure draws one failure for an application run starting at
// virtual time start, following the paper's worst-case model: the failed
// rank is uniform over the n ranks and the failure time is uniform within
// [start, start + 2×MTTF). The evenly distributed system MTTF applies to
// each application run separately (start to finish/failure, restart to
// finish/failure).
func RandomFailure(rng *rand.Rand, n int, mttf vclock.Duration, start vclock.Time) Injection {
	if n <= 0 {
		panic(fmt.Sprintf("fault: invalid rank count %d", n))
	}
	if mttf <= 0 {
		panic(fmt.Sprintf("fault: invalid MTTF %v", mttf))
	}
	rank := rng.Intn(n)
	// 2×mttf overflows int64 for mttf > MaxInt64/2 (Int63n would then be
	// handed a negative bound and panic, or a wrapped positive one and
	// draw from the wrong window); clamp the window to the representable
	// range.
	span := int64(mttf)
	if span > math.MaxInt64/2 {
		span = math.MaxInt64
	} else {
		span *= 2
	}
	offset := vclock.Duration(rng.Int63n(span))
	at := start.Add(offset)
	if at < start {
		// start + offset overflowed Time; saturate below "fail never".
		at = vclock.Never - 1
	}
	return Injection{Rank: rank, At: at}
}

// PoissonSchedule draws a multi-failure schedule for one application run:
// failures arrive as a Poisson process at system rate 1/MTTF within
// [start, start+horizon), each striking a uniformly drawn rank. A rank is
// struck at most once (repeat draws keep the earliest hit — a dead
// process cannot die again within a run), and the draw stops early once
// every rank has failed. This is the multi-failure generalisation of
// RandomFailure that replication experiments need: a single failure per
// run can never exhaust an r ≥ 2 replica group, so the one-failure model
// would make replication trivially unbeatable.
func PoissonSchedule(rng *rand.Rand, n int, mttf, horizon vclock.Duration, start vclock.Time) Schedule {
	if n <= 0 {
		panic(fmt.Sprintf("fault: invalid rank count %d", n))
	}
	if mttf <= 0 {
		panic(fmt.Sprintf("fault: invalid MTTF %v", mttf))
	}
	if horizon <= 0 {
		return nil
	}
	end := start.Add(horizon)
	if end < start {
		end = vclock.Never - 1
	}
	struck := make(map[int]bool, 4)
	var out Schedule
	t := start
	for len(struck) < n {
		gap := mttf.Seconds() * rng.ExpFloat64()
		if ns := gap * 1e9; math.IsInf(ns, 0) || ns >= float64(math.MaxInt64) {
			break
		}
		next := t.Add(vclock.FromSeconds(gap))
		if next < t || next >= end {
			break
		}
		t = next
		rank := rng.Intn(n)
		if struck[rank] {
			continue
		}
		struck[rank] = true
		out = append(out, Injection{Rank: rank, At: t})
	}
	return out
}

// Campaign generates failures for repeated application runs
// deterministically: run i of a campaign with base seed s uses an rng
// seeded with s+i, so experiments are repeatable (the paper stresses that
// the simulator and application are deterministic and experiments
// repeatable).
type Campaign struct {
	// Seed is the base seed.
	Seed int64
	// Ranks is the world size.
	Ranks int
	// MTTF is the system mean-time-to-failure (zero disables injection).
	MTTF vclock.Duration
}

// ForRun returns the failure schedule of the campaign's run-th application
// run (0-based) starting at virtual time start: one random failure per
// run, or none when MTTF is zero.
func (c Campaign) ForRun(run int, start vclock.Time) Schedule {
	if c.MTTF <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(c.Seed + int64(run)))
	return Schedule{RandomFailure(rng, c.Ranks, c.MTTF, start)}
}
