package fault

import (
	"strings"
	"testing"

	"xsim/internal/vclock"
)

// FuzzParse exercises the failure-schedule parser: it must never panic,
// everything it accepts must be representable on the virtual clock, and
// the schedule must survive a String/Parse round trip.
func FuzzParse(f *testing.F) {
	f.Add("")
	f.Add("12@350.5,99@1200")
	f.Add(" 0@0 , 1@0.000001 ")
	f.Add("0@NaN")
	f.Add("0@+Inf")
	f.Add("0@-Inf")
	f.Add("0@1e300")
	f.Add("0@9.3e9")
	f.Add("0@-1")
	f.Add("-1@5")
	f.Add("1@@5")
	f.Add("@")
	f.Add("0@0x1p62")
	f.Add(strings.Repeat("1@1,", 40))
	f.Fuzz(func(t *testing.T, s string) {
		sched, err := Parse(s)
		if err != nil {
			return
		}
		nearClockEdge := false
		for _, inj := range sched {
			if inj.Rank < 0 {
				t.Fatalf("Parse(%q) accepted negative rank %d", s, inj.Rank)
			}
			if inj.At < 0 || inj.At >= vclock.Never {
				t.Fatalf("Parse(%q) accepted unrepresentable time %d", s, inj.At)
			}
			// Within a few µs of the clock's end, the Seconds()→%g→ParseFloat
			// round trip can round just past the overflow bound; exact
			// re-parsing is only promised away from the edge.
			if inj.At > vclock.Never-vclock.Time(1)<<42 {
				nearClockEdge = true
			}
		}
		if nearClockEdge {
			return
		}
		again, err := Parse(sched.String())
		if err != nil {
			t.Fatalf("Parse(%q).String() = %q does not re-parse: %v", s, sched.String(), err)
		}
		if len(again) != len(sched) {
			t.Fatalf("round trip changed schedule length: %d vs %d", len(again), len(sched))
		}
		for i := range sched {
			if again[i].Rank != sched[i].Rank {
				t.Fatalf("round trip changed entry %d rank: %d vs %d", i, again[i].Rank, sched[i].Rank)
			}
		}
	})
}
