package fault

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"xsim/internal/core"
	"xsim/internal/vclock"
)

func TestParseEmpty(t *testing.T) {
	for _, s := range []string{"", "  ", ","} {
		sched, err := Parse(s)
		if err != nil || len(sched) != 0 {
			t.Errorf("Parse(%q) = %v, %v", s, sched, err)
		}
	}
}

func TestParseValid(t *testing.T) {
	sched, err := Parse(" 12@350.5, 99@1200 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != 2 {
		t.Fatalf("len = %d", len(sched))
	}
	if sched[0].Rank != 12 || sched[0].At != vclock.TimeFromSeconds(350.5) {
		t.Errorf("sched[0] = %+v", sched[0])
	}
	if sched[1].Rank != 99 || sched[1].At != vclock.TimeFromSeconds(1200) {
		t.Errorf("sched[1] = %+v", sched[1])
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"12", "a@5", "1@b", "-3@5", "3@-5", "1@@2"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

// Regression: ParseFloat accepts "NaN"/"Inf" (which sneak past a plain
// `secs < 0` check) and times at or beyond 2^63 ns make the float→int64
// conversion implementation-defined; all must be rejected.
func TestParseRejectsNonFiniteAndOverflow(t *testing.T) {
	for _, s := range []string{"0@NaN", "0@nan", "0@+Inf", "0@Inf", "0@-Inf", "0@1e300", "0@9.3e9", "0@0x1p62"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
	// The largest representable whole-second schedule still parses.
	if _, err := Parse("0@9.2e9"); err != nil {
		t.Errorf("Parse(0@9.2e9) = %v, want ok", err)
	}
}

func TestStringRoundTrip(t *testing.T) {
	orig := Schedule{{Rank: 3, At: vclock.TimeFromSeconds(1.5)}, {Rank: 0, At: 0}}
	back, err := Parse(orig.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orig) {
		t.Fatalf("round trip length %d", len(back))
	}
	for i := range orig {
		if back[i] != orig[i] {
			t.Errorf("entry %d: %+v != %+v", i, back[i], orig[i])
		}
	}
}

func TestSorted(t *testing.T) {
	s := Schedule{{Rank: 5, At: 100}, {Rank: 1, At: 50}, {Rank: 0, At: 100}}
	got := s.Sorted()
	if got[0].Rank != 1 || got[1].Rank != 0 || got[2].Rank != 5 {
		t.Errorf("sorted = %v", got)
	}
	// Original untouched.
	if s[0].Rank != 5 {
		t.Error("Sorted mutated the receiver")
	}
}

func TestApply(t *testing.T) {
	eng, err := core.New(core.Config{NumVPs: 4})
	if err != nil {
		t.Fatal(err)
	}
	sched := Schedule{{Rank: 2, At: vclock.TimeFromSeconds(1)}}
	if err := Apply(eng, sched); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(func(c *core.Ctx) { c.Elapse(5 * vclock.Second) })
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 || res.Deaths[2] != core.DeathFailed {
		t.Fatalf("result = %+v", res)
	}
}

func TestApplyBadRank(t *testing.T) {
	eng, _ := core.New(core.Config{NumVPs: 2})
	if err := Apply(eng, Schedule{{Rank: 7, At: 0}}); err == nil {
		t.Fatal("out-of-range rank should fail")
	}
}

func TestRandomFailureBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	mttf := 3000 * vclock.Second
	start := vclock.TimeFromSeconds(500)
	for i := 0; i < 1000; i++ {
		inj := RandomFailure(rng, 32768, mttf, start)
		if inj.Rank < 0 || inj.Rank >= 32768 {
			t.Fatalf("rank %d out of range", inj.Rank)
		}
		if inj.At < start || inj.At >= start.Add(2*mttf) {
			t.Fatalf("time %v outside [start, start+2*MTTF)", inj.At)
		}
	}
}

func TestRandomFailureUniformish(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mttf := 1000 * vclock.Second
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += RandomFailure(rng, 10, mttf, 0).At.Seconds()
	}
	mean := sum / n
	// Uniform over [0, 2000): mean should be near 1000 s (= the MTTF).
	if mean < 950 || mean > 1050 {
		t.Fatalf("mean failure time = %v, want ~1000", mean)
	}
}

// TestRandomFailureHugeMTTF is the overflow regression: 2×MTTF used to
// wrap int64 for MTTF > MaxInt64/2, handing Int63n a negative bound
// (panic). The window now clamps to the representable range and the drawn
// time saturates below vclock.Never, staying a valid future failure.
func TestRandomFailureHugeMTTF(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	start := vclock.TimeFromSeconds(500)
	for _, mttf := range []vclock.Duration{
		math.MaxInt64/2 + 1,
		math.MaxInt64 - 1,
		math.MaxInt64,
	} {
		for i := 0; i < 100; i++ {
			inj := RandomFailure(rng, 16, mttf, start)
			if inj.At < start {
				t.Fatalf("mttf %d: failure at %d precedes start", mttf, inj.At)
			}
			if inj.At >= vclock.Never {
				t.Fatalf("mttf %d: failure at Never (fail-never sentinel)", mttf)
			}
		}
	}
	// Exactly at the boundary the doubled window still fits and the old
	// arithmetic must keep working.
	boundary := vclock.Duration(math.MaxInt64 / 2)
	for i := 0; i < 100; i++ {
		inj := RandomFailure(rng, 16, boundary, 0)
		if inj.At < 0 || int64(inj.At) >= math.MaxInt64/2*2 {
			t.Fatalf("boundary mttf: failure at %d outside window", inj.At)
		}
	}
}

func TestRandomFailurePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, f := range []func(){
		func() { RandomFailure(rng, 0, vclock.Second, 0) },
		func() { RandomFailure(rng, 4, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			f()
		}()
	}
}

func TestCampaignDeterministic(t *testing.T) {
	c := Campaign{Seed: 7, Ranks: 1024, MTTF: 3000 * vclock.Second}
	a := c.ForRun(3, vclock.TimeFromSeconds(100))
	b := c.ForRun(3, vclock.TimeFromSeconds(100))
	if len(a) != 1 || len(b) != 1 || a[0] != b[0] {
		t.Fatalf("campaign not deterministic: %v vs %v", a, b)
	}
	// Different runs draw different failures (with overwhelming
	// probability for these seeds).
	d := c.ForRun(4, vclock.TimeFromSeconds(100))
	if a[0] == d[0] {
		t.Fatalf("runs 3 and 4 drew identical failures: %v", a[0])
	}
}

func TestCampaignDisabled(t *testing.T) {
	c := Campaign{Seed: 7, Ranks: 1024, MTTF: 0}
	if s := c.ForRun(0, 0); s != nil {
		t.Fatalf("disabled campaign returned %v", s)
	}
}

func TestQuickParseSortedStable(t *testing.T) {
	f := func(ranks []uint8, times []uint16) bool {
		n := len(ranks)
		if len(times) < n {
			n = len(times)
		}
		var s Schedule
		for i := 0; i < n; i++ {
			s = append(s, Injection{Rank: int(ranks[i]), At: vclock.Time(times[i]) * vclock.Time(vclock.Second)})
		}
		sorted := s.Sorted()
		for i := 1; i < len(sorted); i++ {
			if sorted[i].At < sorted[i-1].At {
				return false
			}
			if sorted[i].At == sorted[i-1].At && sorted[i].Rank < sorted[i-1].Rank {
				return false
			}
		}
		return len(sorted) == len(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPoissonScheduleDeterministic(t *testing.T) {
	a := PoissonSchedule(rand.New(rand.NewSource(9)), 16, 50*vclock.Second, 400*vclock.Second, 0)
	b := PoissonSchedule(rand.New(rand.NewSource(9)), 16, 50*vclock.Second, 400*vclock.Second, 0)
	if len(a) == 0 {
		t.Fatal("expected some failures in an 8×MTTF horizon")
	}
	if a.String() != b.String() {
		t.Fatalf("same seed diverged:\n%v\n%v", a, b)
	}
}

func TestPoissonScheduleBoundsAndUniqueness(t *testing.T) {
	const n = 8
	start := vclock.TimeFromSeconds(1000)
	horizon := 500 * vclock.Second
	seen := map[int]bool{}
	s := PoissonSchedule(rand.New(rand.NewSource(3)), n, 20*vclock.Second, horizon, start)
	var prev vclock.Time
	for _, inj := range s {
		if inj.Rank < 0 || inj.Rank >= n {
			t.Fatalf("rank %d out of range", inj.Rank)
		}
		if seen[inj.Rank] {
			t.Fatalf("rank %d struck twice", inj.Rank)
		}
		seen[inj.Rank] = true
		if inj.At < start || inj.At >= start.Add(horizon) {
			t.Fatalf("injection %v outside [start, start+horizon)", inj)
		}
		if inj.At < prev {
			t.Fatalf("schedule not time-ordered: %v", s)
		}
		prev = inj.At
	}
	if len(s) > n {
		t.Fatalf("%d injections for %d ranks", len(s), n)
	}
}

func TestPoissonScheduleRate(t *testing.T) {
	// Over many draws the injection count inside the horizon tracks the
	// Poisson mean horizon/MTTF (with a large rank pool, dedup is rare).
	const trials = 400
	mttf := 100 * vclock.Second
	horizon := 300 * vclock.Second
	total := 0
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < trials; i++ {
		total += len(PoissonSchedule(rng, 1024, mttf, horizon, 0))
	}
	mean := float64(total) / trials
	if math.Abs(mean-3) > 0.3 {
		t.Fatalf("mean injections = %v, want ≈ 3 (horizon/MTTF)", mean)
	}
}

func TestPoissonScheduleEdgeCases(t *testing.T) {
	if s := PoissonSchedule(rand.New(rand.NewSource(1)), 4, vclock.Second, 0, 0); s != nil {
		t.Fatalf("zero horizon returned %v", s)
	}
	// A tiny MTTF exhausts every rank well inside the horizon.
	s := PoissonSchedule(rand.New(rand.NewSource(2)), 3, vclock.Millisecond, 100*vclock.Second, 0)
	if len(s) != 3 {
		t.Fatalf("tiny MTTF should strike all 3 ranks, got %v", s)
	}
	for _, bad := range []func(){
		func() { PoissonSchedule(rand.New(rand.NewSource(1)), 0, vclock.Second, vclock.Second, 0) },
		func() { PoissonSchedule(rand.New(rand.NewSource(1)), 4, 0, vclock.Second, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic on invalid arguments")
				}
			}()
			bad()
		}()
	}
}
