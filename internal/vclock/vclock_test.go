package vclock

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestConstants(t *testing.T) {
	if Second != 1e9 {
		t.Fatalf("Second = %d, want 1e9", Second)
	}
	if Minute != 60*Second || Hour != 60*Minute {
		t.Fatalf("minute/hour wrong: %d %d", Minute, Hour)
	}
}

func TestAddSub(t *testing.T) {
	tm := Time(0).Add(5 * Second)
	if tm != Time(5*Second) {
		t.Fatalf("Add: got %v", tm)
	}
	if d := tm.Sub(Time(2 * Second)); d != 3*Second {
		t.Fatalf("Sub: got %v", d)
	}
}

func TestBeforeAfter(t *testing.T) {
	a, b := Time(1), Time(2)
	if !a.Before(b) || a.After(b) || b.Before(a) || !b.After(a) {
		t.Fatal("ordering broken")
	}
	if a.Before(a) || a.After(a) {
		t.Fatal("a should not be before/after itself")
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	for _, s := range []float64{0, 1, 5248, 0.000001, 12345.678901} {
		tm := TimeFromSeconds(s)
		if got := tm.Seconds(); math.Abs(got-s) > 1e-9*math.Max(1, s) {
			t.Errorf("TimeFromSeconds(%v).Seconds() = %v", s, got)
		}
		d := FromSeconds(s)
		if got := d.Seconds(); math.Abs(got-s) > 1e-9*math.Max(1, s) {
			t.Errorf("FromSeconds(%v).Seconds() = %v", s, got)
		}
	}
}

func TestFromStd(t *testing.T) {
	if FromStd(3*time.Millisecond) != 3*Millisecond {
		t.Fatal("FromStd mismatch")
	}
}

func TestString(t *testing.T) {
	if got := Time(5248 * Second).String(); got != "5248.000000s" {
		t.Errorf("Time.String() = %q", got)
	}
	if got := Never.String(); got != "never" {
		t.Errorf("Never.String() = %q", got)
	}
	if got := (1500 * Millisecond).String(); got != "1.500000s" {
		t.Errorf("Duration.String() = %q", got)
	}
}

func TestMaxMin(t *testing.T) {
	if Max(Time(1), Time(2)) != Time(2) || Max(Time(2), Time(1)) != Time(2) {
		t.Fatal("Max wrong")
	}
	if Min(Time(1), Time(2)) != Time(1) || Min(Time(2), Time(1)) != Time(1) {
		t.Fatal("Min wrong")
	}
}

func TestNeverIsLatest(t *testing.T) {
	if !Time(1 << 40).Before(Never) {
		t.Fatal("Never must compare later than any realistic time")
	}
}

// Property: Add and Sub are inverses for non-overflowing operands.
func TestQuickAddSubInverse(t *testing.T) {
	f := func(base int32, delta int32) bool {
		tm := Time(base)
		d := Duration(delta)
		return tm.Add(d).Sub(tm) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Max/Min return one of their operands and order correctly.
func TestQuickMaxMin(t *testing.T) {
	f := func(a, b int64) bool {
		x, y := Time(a), Time(b)
		mx, mn := Max(x, y), Min(x, y)
		return (mx == x || mx == y) && (mn == x || mn == y) &&
			!mx.Before(mn) && mn.Add(mx.Sub(mn)) == mx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
