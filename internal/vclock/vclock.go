// Package vclock provides the virtual-time primitives used throughout the
// simulator. Simulated MPI processes each maintain their own virtual clock;
// the engine orders events by virtual timestamps with a deterministic
// tie-breaking key so that simulations are exactly repeatable.
package vclock

import (
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, measured in nanoseconds from the start of
// the simulated application's life. A simulation that restarts after an
// abort resumes from the previously persisted exit time, so Time is
// continuous across failure/restart cycles.
//
// The zero Time is the epoch (application start).
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations, mirroring time package conventions.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

// Never is the sentinel for "no scheduled time" (e.g. a process whose time
// of failure is unset fails never). The paper initialises time-of-failure to
// 0 meaning "fail never"; we use an explicit sentinel so that a legitimate
// failure at virtual time 0 remains expressible.
const Never Time = math.MaxInt64

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// Seconds returns the time as floating-point seconds since the epoch.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Duration converts a standard library duration into a virtual duration.
func FromStd(d time.Duration) Duration { return Duration(d.Nanoseconds()) }

// Seconds returns the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// FromSeconds converts floating-point seconds into a virtual duration,
// rounding to the nearest nanosecond.
func FromSeconds(s float64) Duration { return Duration(math.Round(s * float64(Second))) }

// TimeFromSeconds converts floating-point seconds since the epoch into a
// virtual time, rounding to the nearest nanosecond.
func TimeFromSeconds(s float64) Time { return Time(math.Round(s * float64(Second))) }

// String renders the time as seconds with microsecond precision, e.g.
// "5248.000107s", or "never" for the Never sentinel.
func (t Time) String() string {
	if t == Never {
		return "never"
	}
	return fmt.Sprintf("%.6fs", t.Seconds())
}

// String renders the duration as seconds with microsecond precision.
func (d Duration) String() string { return fmt.Sprintf("%.6fs", d.Seconds()) }

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}
