package mpitest

import (
	"fmt"

	"xsim"
	"xsim/internal/mpi"
)

// RunProg executes the workload in program mode at the given worker count:
// the same scripted per-rank program as Run, expressed as a resumable
// state machine over the step-based blocking surface (WaitStep,
// SendStep, RecvStep, ProbeStep, SleepStep, CollectiveStep) instead of
// goroutine-blocking calls. A correct engine produces a bit-identical
// Outcome from both modes, so Diff(Run(...), RunProg(...)) == "" is the
// program-mode conformance check across every workload shape the
// generator emits.
func (w *Workload) RunProg(workers int) (*Outcome, error) {
	sim, err := xsim.New(w.simConfig(workers))
	if err != nil {
		return nil, err
	}
	digests := make([]uint64, w.Ranks)
	errs := make([]string, w.Ranks)
	res, err := sim.RunProgs(func(rank int) xsim.Prog {
		return &progRank{w: w, d: newDigest(), digests: digests, errs: errs}
	})
	if err != nil {
		return nil, err
	}
	return w.outcome(res, digests, errs), nil
}

// progRank is one rank's resumable scripted program: the program-mode
// twin of runRank, phase for phase and observation for observation.
type progRank struct {
	w       *Workload
	digests []uint64
	errs    []string
	d       *digest

	started   bool
	pi        int  // current phase
	atBarrier bool // in the phase-quiescing barrier

	mi    int // message/collective/step cursor within the phase
	wi    int // wait-permutation cursor (burst phases)
	stage int // sub-stage of the current message (probe phases)

	reqs    []*xsim.Request
	recvOf  []int
	perm    []int
	waiting bool
	pmSrc   int // probed envelope for the follow-up receive
	pmTag   int

	ws    xsim.WaitState
	ss    xsim.SendState
	rs    xsim.RecvState
	ps    xsim.ProbeState
	sl    xsim.SleepState
	cs    xsim.CollectiveState
	armed bool
}

// Step advances the scripted program; the body is runRank's loop unrolled
// into resumable phases, folding the same observations in the same order.
func (p *progRank) Step(e *xsim.Env, wake any) (any, bool) {
	c := e.World()
	if !p.started {
		p.started = true
		c.SetErrorHandler(xsim.ErrorsReturn)
	}
	rank := c.Rank()
	for {
		if p.pi == len(p.w.phases) {
			p.digests[rank] = p.d.sum()
			e.Finalize()
			return nil, true
		}
		ph := p.w.phases[p.pi]
		if p.atBarrier {
			if !p.armed {
				p.armed = true
				p.cs.BeginBarrier()
			}
			done, park, err := c.CollectiveStep(&p.cs)
			if !done {
				return park, false
			}
			p.armed = false
			if err != nil {
				return p.bail(rank, fmt.Errorf("phase %d barrier: %w", p.pi, err))
			}
			p.atBarrier = false
			p.pi++
			p.resetPhase()
			continue
		}
		var done bool
		var park any
		var err error
		switch ph.kind {
		case phaseP2P, phaseStorm:
			done, park, err = p.stepBurst(e, ph)
		case phaseColl:
			done, park, err = p.stepColl(e, ph)
		case phaseCompute:
			done, park = p.stepCompute(e, ph)
		case phaseProbe:
			done, park, err = p.stepProbe(e, ph)
		case phaseCancel:
			// Cancel phases are entirely nonblocking: the closure body is
			// already a valid program step.
			done, err = true, p.w.runCancel(e, p.d, p.pi, ph)
		}
		if !done {
			return park, false
		}
		if err != nil {
			return p.bail(rank, fmt.Errorf("phase %d (%s): %w", p.pi, ph.kind, err))
		}
		p.d.time(e.Now())
		p.digests[rank] = p.d.sum()
		p.atBarrier = true
	}
}

// bail records the digest and error and completes without Finalize — a
// simulated process failure, exactly like the closure app's error path.
func (p *progRank) bail(rank int, err error) (any, bool) {
	p.digests[rank] = p.d.sum()
	p.errs[rank] = err.Error()
	return nil, true
}

func (p *progRank) resetPhase() {
	p.mi, p.wi, p.stage = 0, 0, 0
	p.reqs = p.reqs[:0]
	p.recvOf = p.recvOf[:0]
	p.perm = nil
	p.waiting = false
}

// stepBurst is runBurst as a state machine: post everything nonblockingly
// (one inline pass), then wait request by request in the seeded
// permutation order.
func (p *progRank) stepBurst(e *xsim.Env, ph phase) (done bool, park any, err error) {
	c := e.World()
	rank := c.Rank()
	if p.perm == nil {
		for mi, m := range ph.msgs {
			if m.dst != rank {
				continue
			}
			src, tag := m.src, m.tag
			if m.wildSrc {
				src = xsim.AnySource
			}
			if m.anyTag {
				tag = xsim.AnyTag
			}
			r, err := c.Irecv(src, tag)
			if err != nil {
				return true, nil, err
			}
			p.reqs = append(p.reqs, r)
			p.recvOf = append(p.recvOf, mi)
		}
		for mi, m := range ph.msgs {
			if m.src != rank {
				continue
			}
			if m.pre > 0 {
				e.Elapse(m.pre)
			}
			var r *xsim.Request
			var err error
			if m.payload {
				r, err = c.Isend(m.dst, m.tag, fill(mi*31+m.tag, m.size))
			} else {
				r, err = c.IsendN(m.dst, m.tag, m.size)
			}
			if err != nil {
				return true, nil, err
			}
			p.reqs = append(p.reqs, r)
			p.recvOf = append(p.recvOf, -1)
		}
		p.perm = permFor(p.w.Seed, p.pi, rank, len(p.reqs))
	}
	for p.wi < len(p.perm) {
		i := p.perm[p.wi]
		if !p.waiting {
			p.waiting = true
			p.ws.Begin(p.reqs[i])
		}
		wd, park, msg, err := c.WaitStep(&p.ws)
		if !wd {
			return false, park, nil
		}
		p.waiting = false
		p.d.num(i)
		if err != nil {
			return true, nil, err
		}
		if p.recvOf[i] >= 0 {
			p.d.msg(msg)
			msg.Release()
		}
		p.wi++
	}
	return true, nil, nil
}

// stepColl is runColl as a state machine: one CollectiveState per
// scripted op, armed once, stepped to completion, results folded exactly
// as the closure path folds the returned values.
func (p *progRank) stepColl(e *xsim.Env, ph phase) (done bool, park any, err error) {
	c := e.World()
	rank, n := c.Rank(), c.Size()
	ops := []mpi.ReduceOp{xsim.OpSum, xsim.OpMax, xsim.OpMin}
	for p.mi < len(ph.colls) {
		ci, op := p.mi, ph.colls[p.mi]
		if !p.armed {
			p.armed = true
			switch op.kind {
			case collBarrier:
				p.cs.BeginBarrier()
			case collBcast:
				var data []byte
				if rank == op.root {
					data = fill(ci*17+op.root, op.size)
				}
				p.cs.BeginBcast(op.root, data)
			case collReduce:
				p.cs.BeginReduce(op.root, fillF64(rank*257+ci, 1+op.size%8), ops[op.op])
			case collAllreduce:
				p.cs.BeginAllreduce(fillF64(rank*263+ci, 1+op.size%8), ops[op.op])
			case collGather:
				p.cs.BeginGather(op.root, fill(rank*269+ci, op.size))
			case collScatter:
				var parts [][]byte
				if rank == op.root {
					parts = make([][]byte, n)
					for i := range parts {
						parts[i] = fill(i*271+ci, op.size)
					}
				}
				p.cs.BeginScatter(op.root, parts)
			case collAllgather:
				p.cs.BeginAllgather(fill(rank*277+ci, op.size))
			case collAlltoall:
				parts := make([][]byte, n)
				for i := range parts {
					parts[i] = fill(rank*281+i*283+ci, op.size%128)
				}
				p.cs.BeginAlltoall(parts)
			}
		}
		cd, park, err := c.CollectiveStep(&p.cs)
		if !cd {
			return false, park, nil
		}
		p.armed = false
		if err != nil {
			return true, nil, err
		}
		switch op.kind {
		case collBcast, collScatter:
			p.d.bytes(p.cs.Bytes())
		case collReduce:
			if rank == op.root {
				p.d.floats(p.cs.Floats())
			}
		case collAllreduce:
			p.d.floats(p.cs.Floats())
		case collGather, collAllgather, collAlltoall:
			for _, part := range p.cs.Parts() {
				p.d.bytes(part)
			}
		}
		p.mi++
	}
	return true, nil, nil
}

// stepCompute replays the rank's Elapse/Sleep script with SleepStep in
// place of the blocking Sleep.
func (p *progRank) stepCompute(e *xsim.Env, ph phase) (done bool, park any) {
	steps := ph.steps[e.Rank()]
	for p.mi < len(steps) {
		st := steps[p.mi]
		if st.sleep {
			sd, park := e.SleepStep(&p.sl, st.d)
			if !sd {
				return false, park
			}
		} else {
			e.Elapse(st.d)
		}
		p.mi++
	}
	return true, nil
}

// stepProbe is runProbe as a state machine: senders pre-elapse then send
// via SendStep; receivers Iprobe inline, probe via ProbeStep, and receive
// via RecvStep, folding the same envelope observations.
func (p *progRank) stepProbe(e *xsim.Env, ph phase) (done bool, park any, err error) {
	c := e.World()
	rank := c.Rank()
	for p.mi < len(ph.msgs) {
		m := ph.msgs[p.mi]
		switch rank {
		case m.src:
			if p.stage == 0 {
				if m.pre > 0 {
					e.Elapse(m.pre)
				}
				p.stage = 1
			}
			var sd bool
			var park any
			var err error
			if m.payload {
				sd, park, err = c.SendStep(&p.ss, m.dst, m.tag, fill(p.mi*29+m.tag, m.size))
			} else {
				sd, park, err = c.SendNStep(&p.ss, m.dst, m.tag, m.size)
			}
			if !sd {
				return false, park, nil
			}
			if err != nil {
				return true, nil, err
			}
		case m.dst:
			if p.stage == 0 {
				pm, ok, err := c.Iprobe(m.src, xsim.AnyTag)
				if err != nil {
					return true, nil, err
				}
				p.d.bool(ok)
				if ok {
					p.d.num(pm.Src)
					p.d.num(pm.Tag)
					p.d.num(pm.Size)
				}
				p.stage = 1
			}
			if p.stage == 1 {
				pd, park, pm, err := c.ProbeStep(&p.ps, m.src, xsim.AnyTag)
				if !pd {
					return false, park, nil
				}
				if err != nil {
					return true, nil, err
				}
				p.d.num(pm.Src)
				p.d.num(pm.Tag)
				p.d.num(pm.Size)
				p.pmSrc, p.pmTag = pm.Src, pm.Tag
				p.stage = 2
			}
			rd, park, msg, err := c.RecvStep(&p.rs, p.pmSrc, p.pmTag)
			if !rd {
				return false, park, nil
			}
			if err != nil {
				return true, nil, err
			}
			p.d.msg(msg)
			msg.Release()
		}
		p.mi++
		p.stage = 0
	}
	return true, nil, nil
}
