package mpitest

import (
	"fmt"
	"testing"
)

// progSeedCount returns how many seeds the prog-vs-closure differential
// sweeps: the full XSIM_DIFF_SEEDS override if set, else a smaller
// default than the seq-vs-parallel sweep (each seed runs four times).
func progSeedCount(t *testing.T) int {
	n := seedCount(t)
	if n > 120 {
		n = 120
	}
	return n
}

// TestDifferentialClosureVsProg runs every seeded workload in closure
// mode sequentially and in program mode at 1, 2 and 4 workers, and
// requires bit-identical outcomes: simulated times, per-rank clocks,
// terminations and observation digests, and MPI metrics. This is the
// conformance proof that the step-based blocking surface (waits, sends,
// receives, probes, sleeps, and every collective algorithm) replays the
// closure semantics exactly — including wildcard matching, failure
// detection, and error bail-out paths.
func TestDifferentialClosureVsProg(t *testing.T) {
	seeds := progSeedCount(t)
	const shard = 15
	for lo := 0; lo < seeds; lo += shard {
		lo := lo
		hi := lo + shard
		if hi > seeds {
			hi = seeds
		}
		t.Run(fmt.Sprintf("seeds%d-%d", lo, hi-1), func(t *testing.T) {
			t.Parallel()
			for seed := lo; seed < hi; seed++ {
				w := Generate(int64(seed))
				ref, err := w.Run(1)
				if err != nil {
					t.Fatalf("%s: closure run: %v", w, err)
				}
				for _, workers := range []int{1, 2, 4} {
					got, err := w.RunProg(workers)
					if err != nil {
						t.Fatalf("%s: prog workers=%d run: %v", w, workers, err)
					}
					if d := Diff(ref, got); d != "" {
						t.Fatalf("%s: prog workers=%d diverges from closure: %s", w, workers, d)
					}
				}
			}
		})
	}
}
