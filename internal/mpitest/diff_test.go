package mpitest

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"xsim"
	"xsim/internal/vclock"
)

// seedCount returns how many seeds the differential test sweeps:
// XSIM_DIFF_SEEDS if set, else 60 in -short mode, else 500.
func seedCount(t *testing.T) int {
	if s := os.Getenv("XSIM_DIFF_SEEDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad XSIM_DIFF_SEEDS=%q", s)
		}
		return n
	}
	if testing.Short() {
		return 60
	}
	return 500
}

// TestDifferentialSeqVsParallel runs every seeded workload sequentially
// and at 2 and 4 workers, with invariant checking enabled, and requires
// bit-identical outcomes: simulated times, per-rank clocks and
// terminations, per-rank observation digests, and MPI metrics.
func TestDifferentialSeqVsParallel(t *testing.T) {
	seeds := seedCount(t)
	const shard = 25
	for lo := 0; lo < seeds; lo += shard {
		lo := lo
		hi := lo + shard
		if hi > seeds {
			hi = seeds
		}
		t.Run(fmt.Sprintf("seeds%d-%d", lo, hi-1), func(t *testing.T) {
			t.Parallel()
			for seed := lo; seed < hi; seed++ {
				w := Generate(int64(seed))
				ref, err := w.Run(1)
				if err != nil {
					t.Fatalf("%s: sequential run: %v", w, err)
				}
				for _, workers := range []int{2, 4} {
					got, err := w.Run(workers)
					if err != nil {
						t.Fatalf("%s: workers=%d run: %v", w, workers, err)
					}
					if d := Diff(ref, got); d != "" {
						t.Fatalf("%s: workers=%d diverges from sequential: %s", w, workers, d)
					}
				}
			}
		})
	}
}

// TestRepeatability reruns the same workload at the same worker count and
// requires identical outcomes — the paper's repeatable-experiments
// property.
func TestRepeatability(t *testing.T) {
	for _, seed := range []int64{3, 17, 41} {
		w := Generate(seed)
		for _, workers := range []int{1, 4} {
			a, err := w.Run(workers)
			if err != nil {
				t.Fatalf("%s: workers=%d: %v", w, workers, err)
			}
			b, err := w.Run(workers)
			if err != nil {
				t.Fatalf("%s: workers=%d rerun: %v", w, workers, err)
			}
			if d := Diff(a, b); d != "" {
				t.Fatalf("%s: workers=%d not repeatable: %s", w, workers, d)
			}
		}
	}
}

// TestCampaignDifferential runs a checkpoint/restart campaign (heat
// distribution application with failures drawn from an MTTF) at several
// worker counts and requires identical campaign trajectories.
func TestCampaignDifferential(t *testing.T) {
	type runKey struct {
		Start, End xsim.Time
		Injected   string
		C, F, A    int
	}
	campaign := func(workers int) ([]runKey, xsim.Time, int, error) {
		hw, err := xsim.HeatWorkloadFor(8)
		if err != nil {
			return nil, 0, 0, err
		}
		hw.Iterations = 40
		hw.ExchangeInterval = 10
		hw.CheckpointInterval = 10
		c := xsim.Campaign{
			Base: xsim.Config{
				Ranks:    8,
				Workers:  workers,
				Validate: true,
			},
			MTTF:             150 * vclock.Second,
			Seed:             99,
			MaxRuns:          40,
			CheckpointPrefix: "heat",
			AppFor:           func(run int) xsim.App { return xsim.RunHeat(hw) },
		}
		res, err := c.Run()
		if err != nil {
			return nil, 0, 0, err
		}
		keys := make([]runKey, len(res.Runs))
		for i, r := range res.Runs {
			k := runKey{Start: r.Start, End: r.End, C: r.Completed, F: r.Failed, A: r.Aborted}
			if r.Injected != nil {
				k.Injected = r.Injected.String()
			}
			keys[i] = k
		}
		return keys, res.E2, res.Failures, nil
	}
	refRuns, refE2, refF, err := campaign(1)
	if err != nil {
		t.Fatalf("sequential campaign: %v", err)
	}
	for _, workers := range []int{2, 4} {
		runs, e2, f, err := campaign(workers)
		if err != nil {
			t.Fatalf("workers=%d campaign: %v", workers, err)
		}
		if e2 != refE2 || f != refF || len(runs) != len(refRuns) {
			t.Fatalf("workers=%d campaign diverges: E2 %v vs %v, failures %d vs %d, runs %d vs %d",
				workers, e2, refE2, f, refF, len(runs), len(refRuns))
		}
		for i := range runs {
			if runs[i] != refRuns[i] {
				t.Fatalf("workers=%d campaign run %d diverges: %+v vs %+v", workers, i, runs[i], refRuns[i])
			}
		}
	}
}
