// Package mpitest generates seeded random MPI workloads and runs them
// under different engine configurations so their results can be
// cross-checked: the windowed parallel engine must be bit-identical to
// the sequential one for every workload shape the simulated MPI layer
// supports — p2p bursts with AnySource/AnyTag wildcards, nonblocking
// storms, linear and tree collectives, probes, cancels, and random
// failure schedules.
//
// A Workload is pure data: Generate derives everything from the seed, and
// Run executes the same program at any worker count. Each rank folds
// every observation it makes (matched sources and tags, payload bytes,
// collective results, probe outcomes, errors, clock samples) into an
// order-sensitive FNV digest, so any divergence in matching, timing, or
// failure detection shows up as a digest mismatch even when the final
// clocks happen to agree.
//
// Deadlock freedom by construction: wildcard receives either carry a tag
// that is unique per destination (source-only wildcard) or live in a
// storm phase where every receive is fully wild (any match is a valid
// match); phases are separated by barriers so late traffic cannot leak
// into a later phase's matching; and a rank that observes any error bails
// by returning without Finalize — a simulated process failure, which
// releases every peer blocked on it through the timeout-based detection
// path.
package mpitest

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"strings"

	"xsim"
	"xsim/internal/mpi"
	"xsim/internal/netmodel"
	"xsim/internal/topology"
	"xsim/internal/vclock"
)

// phaseKind enumerates the workload phase shapes.
type phaseKind int

const (
	phaseP2P     phaseKind = iota // burst of point-to-point messages, mixed wildcards
	phaseStorm                    // nonblocking storm into fully-wild receives
	phaseColl                     // sequence of collectives
	phaseCompute                  // Elapse/Sleep mix
	phaseProbe                    // blocking probes + receives against scripted senders
	phaseCancel                   // receives nobody matches, then cancelled
	numPhaseKinds
)

func (k phaseKind) String() string {
	return [...]string{"p2p", "storm", "coll", "compute", "probe", "cancel"}[k]
}

// p2pMsg is one scripted message. In a p2p phase wild receives match the
// source only (the tag is unique per destination); in storm and probe
// phases the flags below select the fully-wild and probed variants.
type p2pMsg struct {
	src, dst  int
	tag, size int
	payload   bool            // carry real bytes (vs size-only)
	wildSrc   bool            // receiver posts AnySource
	anyTag    bool            // receiver posts AnyTag (storm phases only)
	pre       vclock.Duration // sender-side Elapse before this send
}

// collKind enumerates collective operations.
type collKind int

const (
	collBarrier collKind = iota
	collBcast
	collReduce
	collAllreduce
	collGather
	collScatter
	collAllgather
	collAlltoall
	numCollKinds
)

// collOp is one scripted collective.
type collOp struct {
	kind collKind
	root int
	size int // payload bytes, or float64 element count for reductions
	op   int // 0 sum, 1 max, 2 min
}

// computeStep is one scripted local-activity step.
type computeStep struct {
	d     vclock.Duration
	sleep bool
}

// phase is one phase of the workload; which fields are used depends on
// kind.
type phase struct {
	kind    phaseKind
	msgs    []p2pMsg
	colls   []collOp
	steps   [][]computeStep // per rank
	cancels int             // unmatched receives per rank
}

// Workload is a seeded random MPI program plus the simulation parameters
// it runs under. It is pure data: running it at any worker count executes
// exactly the same per-rank program.
type Workload struct {
	Seed       int64
	Ranks      int
	Tree       bool // tree collectives instead of linear
	NetVariant int  // 0 plain, 1 endpoint contention, 2 ring torus, 3 rendezvous-heavy
	Failures   xsim.Schedule

	callOverhead vclock.Duration
	phases       []phase
}

// String summarises the workload for failure reports.
func (w *Workload) String() string {
	kinds := make([]string, len(w.phases))
	for i, p := range w.phases {
		kinds[i] = p.kind.String()
	}
	algo := "linear"
	if w.Tree {
		algo = "tree"
	}
	return fmt.Sprintf("seed=%d ranks=%d net=%d coll=%s phases=[%s] failures=%q",
		w.Seed, w.Ranks, w.NetVariant, algo, strings.Join(kinds, " "), w.Failures.String())
}

// tagBase returns the tag namespace of phase pi; phases never share tags.
func tagBase(pi int) int { return (pi + 1) * 1_000_000 }

// Generate derives a workload from the seed.
func Generate(seed int64) *Workload {
	rng := rand.New(rand.NewSource(seed))
	w := &Workload{
		Seed:       seed,
		Ranks:      2 + rng.Intn(7), // 2..8
		Tree:       rng.Intn(2) == 1,
		NetVariant: rng.Intn(4),
	}
	if rng.Intn(3) == 0 {
		w.callOverhead = vclock.Duration(1+rng.Intn(5)) * 100 * vclock.Nanosecond
	}
	nPhases := 2 + rng.Intn(3)
	for pi := 0; pi < nPhases; pi++ {
		w.phases = append(w.phases, w.genPhase(rng, pi))
	}
	// Just under half the seeds inject one or two failures somewhere in
	// (or after) the run, exercising detection, wild-receive timeouts and
	// the bail-without-Finalize cascade.
	if rng.Intn(100) < 45 {
		for k := 1 + rng.Intn(2); k > 0; k-- {
			w.Failures = append(w.Failures, xsim.Injection{
				Rank: rng.Intn(w.Ranks),
				At:   xsim.Time(rng.Int63n(int64(300 * vclock.Microsecond))),
			})
		}
	}
	return w
}

// genPhase builds one phase. Tags are unique per destination within a
// phase (except storm phases, where every receive is fully wild and tags
// are free to collide).
func (w *Workload) genPhase(rng *rand.Rand, pi int) phase {
	base := tagBase(pi)
	switch k := phaseKind(rng.Intn(int(numPhaseKinds))); k {
	case phaseP2P, phaseStorm:
		ph := phase{kind: k}
		tagCount := make([]int, w.Ranks)
		for n := w.Ranks * (2 + rng.Intn(3)); n > 0; n-- {
			src := rng.Intn(w.Ranks)
			dst := rng.Intn(w.Ranks - 1)
			if dst >= src {
				dst++
			}
			m := p2pMsg{
				src:     src,
				dst:     dst,
				tag:     base + tagCount[dst],
				size:    msgSize(rng),
				payload: rng.Intn(2) == 0,
				pre:     vclock.Duration(rng.Intn(20)) * vclock.Microsecond,
			}
			tagCount[dst]++
			if k == phaseStorm {
				m.wildSrc, m.anyTag = true, true
				if rng.Intn(2) == 0 {
					m.tag = base + rng.Intn(4) // colliding tags are fine when fully wild
				}
			} else {
				m.wildSrc = rng.Intn(100) < 30
			}
			if m.payload && m.size > 4096 {
				m.size = 4096
			}
			ph.msgs = append(ph.msgs, m)
		}
		return ph
	case phaseColl:
		ph := phase{kind: phaseColl}
		for n := 2 + rng.Intn(4); n > 0; n-- {
			ph.colls = append(ph.colls, collOp{
				kind: collKind(rng.Intn(int(numCollKinds))),
				root: rng.Intn(w.Ranks),
				size: 1 + rng.Intn(200),
				op:   rng.Intn(3),
			})
		}
		return ph
	case phaseCompute:
		ph := phase{kind: phaseCompute, steps: make([][]computeStep, w.Ranks)}
		for r := range ph.steps {
			for n := 1 + rng.Intn(3); n > 0; n-- {
				ph.steps[r] = append(ph.steps[r], computeStep{
					d:     vclock.Duration(1+rng.Intn(50)) * vclock.Microsecond,
					sleep: rng.Intn(3) == 0,
				})
			}
		}
		return ph
	case phaseProbe:
		// Disjoint sender→receiver pairs: a probe-phase rank is either a
		// sender or a receiver, never both, so blocking Send/Probe chains
		// cannot form cycles.
		ph := phase{kind: phaseProbe}
		perm := rng.Perm(w.Ranks)
		tags := 0
		for i := 0; i+1 < len(perm) && i < 4; i += 2 {
			snd, rcv := perm[i], perm[i+1]
			for n := 1 + rng.Intn(3); n > 0; n-- {
				ph.msgs = append(ph.msgs, p2pMsg{
					src:     snd,
					dst:     rcv,
					tag:     base + tags,
					size:    msgSize(rng),
					payload: rng.Intn(2) == 0,
					pre:     vclock.Duration(rng.Intn(10)) * vclock.Microsecond,
				})
				tags++
			}
		}
		return ph
	default:
		return phase{kind: phaseCancel, cancels: 1 + rng.Intn(3)}
	}
}

// msgSize draws a payload size spanning the eager/rendezvous split of
// every net variant (thresholds 256 and 32).
func msgSize(rng *rand.Rand) int {
	switch rng.Intn(3) {
	case 0:
		return rng.Intn(64)
	case 1:
		return 64 + rng.Intn(512)
	default:
		return 1024 + rng.Intn(8192)
	}
}

// net builds the workload's network model.
func (w *Workload) net() *netmodel.Model {
	m := &netmodel.Model{
		Topo: topology.NewFullyConnected(w.Ranks),
		System: netmodel.LinkParams{
			Latency:          vclock.Microsecond,
			Bandwidth:        1e9,
			DetectionTimeout: 500 * vclock.Microsecond,
		},
		OnNode: netmodel.LinkParams{
			Latency:          vclock.Microsecond,
			Bandwidth:        1e9,
			DetectionTimeout: 500 * vclock.Microsecond,
		},
		EagerThreshold: 256,
	}
	switch w.NetVariant {
	case 1:
		// Endpoint contention: concurrent transfers serialise at the NICs,
		// making same-virtual-time handler ordering observable.
		m.InjectBandwidth, m.EjectBandwidth = 2e9, 2e9
	case 2:
		// Ring (degenerate torus): multi-hop latencies.
		m.Topo = topology.NewTorus3D(w.Ranks, 1, 1)
	case 3:
		// Rendezvous-heavy: tiny eager threshold plus software overhead.
		m.EagerThreshold = 32
		m.SoftwareOverhead = 200 * vclock.Nanosecond
	}
	return m
}

// Outcome is everything a run must reproduce bit-identically at any
// worker count.
type Outcome struct {
	SimTime, MinTime, AvgTime  xsim.Time
	Completed, Failed, Aborted int
	PerRank                    []xsim.Time
	Deaths                     []string
	Busy, Waited               []xsim.Duration
	Digests                    []uint64
	Errs                       []string

	EagerMsgs, EagerBytes, RdvMsgs, RdvBytes, CollectiveOps uint64
	UnexpectedMax                                           int
	Failures                                                []xsim.FailureMetric
}

// simConfig builds the simulation configuration shared by the closure
// and program execution modes.
func (w *Workload) simConfig(workers int) xsim.Config {
	cfg := xsim.Config{
		Ranks:        w.Ranks,
		Workers:      workers,
		Net:          w.net(),
		Failures:     w.Failures,
		CallOverhead: w.callOverhead,
		Validate:     true,
	}
	if w.Tree {
		cfg.Collectives = mpi.Tree
	}
	return cfg
}

// outcome folds a run's result and the per-rank observations into the
// comparable Outcome.
func (w *Workload) outcome(res *xsim.Result, digests []uint64, errs []string) *Outcome {
	return &Outcome{
		SimTime: res.SimTime, MinTime: res.MinTime, AvgTime: res.AvgTime,
		Completed: res.Completed, Failed: res.Failed, Aborted: res.Aborted,
		PerRank: res.PerRank, Deaths: res.Deaths,
		Busy: res.Busy, Waited: res.Waited,
		Digests: digests, Errs: errs,
		EagerMsgs: res.MPI.EagerMsgs, EagerBytes: res.MPI.EagerBytes,
		RdvMsgs: res.MPI.RendezvousMsgs, RdvBytes: res.MPI.RendezvousBytes,
		CollectiveOps: res.MPI.CollectiveOps,
		UnexpectedMax: res.MPI.UnexpectedMax,
		Failures:      res.MPI.Failures,
	}
}

// Run executes the workload at the given worker count with invariant
// checks enabled and returns its outcome.
func (w *Workload) Run(workers int) (*Outcome, error) {
	sim, err := xsim.New(w.simConfig(workers))
	if err != nil {
		return nil, err
	}
	digests := make([]uint64, w.Ranks)
	errs := make([]string, w.Ranks)
	res, err := sim.Run(w.app(digests, errs))
	if err != nil {
		return nil, err
	}
	return w.outcome(res, digests, errs), nil
}

// Diff compares two outcomes field by field and describes the first
// difference, or returns "" when they are identical.
func Diff(a, b *Outcome) string {
	if d := cmpTimes("SimTime", a.SimTime, b.SimTime); d != "" {
		return d
	}
	if d := cmpTimes("MinTime", a.MinTime, b.MinTime); d != "" {
		return d
	}
	if d := cmpTimes("AvgTime", a.AvgTime, b.AvgTime); d != "" {
		return d
	}
	if a.Completed != b.Completed || a.Failed != b.Failed || a.Aborted != b.Aborted {
		return fmt.Sprintf("termination counts differ: %d/%d/%d vs %d/%d/%d (completed/failed/aborted)",
			a.Completed, a.Failed, a.Aborted, b.Completed, b.Failed, b.Aborted)
	}
	for r := range a.PerRank {
		if a.PerRank[r] != b.PerRank[r] {
			return fmt.Sprintf("rank %d final clock differs: %v vs %v", r, a.PerRank[r], b.PerRank[r])
		}
		if a.Deaths[r] != b.Deaths[r] {
			return fmt.Sprintf("rank %d termination differs: %s vs %s", r, a.Deaths[r], b.Deaths[r])
		}
		if a.Busy[r] != b.Busy[r] || a.Waited[r] != b.Waited[r] {
			return fmt.Sprintf("rank %d busy/waited differ: %v/%v vs %v/%v",
				r, a.Busy[r], a.Waited[r], b.Busy[r], b.Waited[r])
		}
		if a.Digests[r] != b.Digests[r] {
			return fmt.Sprintf("rank %d observation digest differs: %#x vs %#x (errs %q vs %q)",
				r, a.Digests[r], b.Digests[r], a.Errs[r], b.Errs[r])
		}
		if a.Errs[r] != b.Errs[r] {
			return fmt.Sprintf("rank %d error differs: %q vs %q", r, a.Errs[r], b.Errs[r])
		}
	}
	if a.EagerMsgs != b.EagerMsgs || a.EagerBytes != b.EagerBytes ||
		a.RdvMsgs != b.RdvMsgs || a.RdvBytes != b.RdvBytes ||
		a.CollectiveOps != b.CollectiveOps || a.UnexpectedMax != b.UnexpectedMax {
		return fmt.Sprintf("MPI metrics differ: eager %d/%d rdv %d/%d coll %d unexp %d vs eager %d/%d rdv %d/%d coll %d unexp %d",
			a.EagerMsgs, a.EagerBytes, a.RdvMsgs, a.RdvBytes, a.CollectiveOps, a.UnexpectedMax,
			b.EagerMsgs, b.EagerBytes, b.RdvMsgs, b.RdvBytes, b.CollectiveOps, b.UnexpectedMax)
	}
	if len(a.Failures) != len(b.Failures) {
		return fmt.Sprintf("failure metric counts differ: %d vs %d", len(a.Failures), len(b.Failures))
	}
	for i := range a.Failures {
		if a.Failures[i] != b.Failures[i] {
			return fmt.Sprintf("failure metric %d differs: %+v vs %+v", i, a.Failures[i], b.Failures[i])
		}
	}
	return ""
}

func cmpTimes(name string, a, b xsim.Time) string {
	if a != b {
		return fmt.Sprintf("%s differs: %v vs %v", name, a, b)
	}
	return ""
}

// digest folds a rank's observations into an order-sensitive hash.
type digest struct {
	h   interface{ Sum64() uint64 }
	buf [8]byte
	w   interface{ Write([]byte) (int, error) }
}

func newDigest() *digest {
	h := fnv.New64a()
	return &digest{h: h, w: h}
}

func (d *digest) u64(v uint64) {
	for i := 0; i < 8; i++ {
		d.buf[i] = byte(v >> (8 * i))
	}
	d.w.Write(d.buf[:])
}
func (d *digest) num(v int)          { d.u64(uint64(int64(v))) }
func (d *digest) time(t vclock.Time) { d.u64(uint64(t)) }
func (d *digest) bool(b bool)        { d.num(map[bool]int{false: 0, true: 1}[b]) }
func (d *digest) bytes(b []byte)     { d.num(len(b)); d.w.Write(b) }
func (d *digest) str(s string)       { d.bytes([]byte(s)) }
func (d *digest) floats(vs []float64) {
	d.num(len(vs))
	for _, v := range vs {
		d.u64(math.Float64bits(v))
	}
}
func (d *digest) msg(m *xsim.Message) { d.num(m.Src); d.num(m.Tag); d.num(m.Size); d.bytes(m.Data) }
func (d *digest) sum() uint64         { return d.h.Sum64() }

// fill produces deterministic payload bytes.
func fill(seed, n int) []byte {
	b := make([]byte, n)
	x := uint32(seed)*2654435761 + 12345
	for i := range b {
		x = x*1664525 + 1013904223
		b[i] = byte(x >> 24)
	}
	return b
}

// fillF64 produces a deterministic reduction contribution.
func fillF64(seed, n int) []float64 {
	out := make([]float64, n)
	x := uint32(seed)*2654435761 + 99991
	for i := range out {
		x = x*1664525 + 1013904223
		out[i] = float64(int32(x)) / 65536.0
	}
	return out
}

// permFor returns the deterministic wait-order permutation of rank's
// requests in phase pi — a function of the workload only, so every worker
// count replays the same wait order.
func permFor(seed int64, pi, rank, n int) []int {
	h := seed*1000003 + int64(pi)*8191 + int64(rank)*131 + 7
	return rand.New(rand.NewSource(h)).Perm(n)
}

// app builds the per-rank program. Each rank updates digests[rank] after
// every phase (and on bail), so a rank killed mid-run still contributes
// the digest of everything it observed before dying.
func (w *Workload) app(digests []uint64, errs []string) xsim.App {
	return func(e *xsim.Env) {
		rank := e.Rank()
		d := newDigest()
		err := w.runRank(e, d, digests)
		digests[rank] = d.sum()
		if err != nil {
			// Bail without Finalize: a simulated process failure, which
			// releases peers blocked on this rank via timeout detection.
			errs[rank] = err.Error()
			return
		}
		e.Finalize()
	}
}

// runRank executes the rank's scripted program.
func (w *Workload) runRank(e *xsim.Env, d *digest, digests []uint64) error {
	c := e.World()
	c.SetErrorHandler(xsim.ErrorsReturn)
	rank := c.Rank()
	for pi, ph := range w.phases {
		var err error
		switch ph.kind {
		case phaseP2P, phaseStorm:
			err = w.runBurst(e, d, pi, ph)
		case phaseColl:
			err = w.runColl(e, d, ph)
		case phaseCompute:
			for _, st := range ph.steps[rank] {
				if st.sleep {
					e.Sleep(st.d)
				} else {
					e.Elapse(st.d)
				}
			}
		case phaseProbe:
			err = w.runProbe(e, d, ph)
		case phaseCancel:
			err = w.runCancel(e, d, pi, ph)
		}
		if err != nil {
			return fmt.Errorf("phase %d (%s): %w", pi, ph.kind, err)
		}
		d.time(e.Now())
		digests[rank] = d.sum()
		// The barrier quiesces the phase: every rank has matched all of
		// its receives before anyone starts the next phase, so wildcard
		// receives can never swallow a later phase's traffic.
		if err := c.Barrier(); err != nil {
			return fmt.Errorf("phase %d barrier: %w", pi, err)
		}
	}
	return nil
}

// runBurst executes a p2p or storm phase: post all inbound receives, then
// issue all outbound sends, then wait everything in the rank's seeded
// permutation order.
func (w *Workload) runBurst(e *xsim.Env, d *digest, pi int, ph phase) error {
	c := e.World()
	rank := c.Rank()
	var reqs []*xsim.Request
	var recvOf []int // msg index for receives, -1 for sends
	for mi, m := range ph.msgs {
		if m.dst != rank {
			continue
		}
		src, tag := m.src, m.tag
		if m.wildSrc {
			src = xsim.AnySource
		}
		if m.anyTag {
			tag = xsim.AnyTag
		}
		r, err := c.Irecv(src, tag)
		if err != nil {
			return err
		}
		reqs = append(reqs, r)
		recvOf = append(recvOf, mi)
	}
	for mi, m := range ph.msgs {
		if m.src != rank {
			continue
		}
		if m.pre > 0 {
			e.Elapse(m.pre)
		}
		var r *xsim.Request
		var err error
		if m.payload {
			r, err = c.Isend(m.dst, m.tag, fill(mi*31+m.tag, m.size))
		} else {
			r, err = c.IsendN(m.dst, m.tag, m.size)
		}
		if err != nil {
			return err
		}
		reqs = append(reqs, r)
		recvOf = append(recvOf, -1)
	}
	for _, i := range permFor(w.Seed, pi, rank, len(reqs)) {
		msg, err := c.Wait(reqs[i])
		d.num(i)
		if err != nil {
			return err
		}
		if recvOf[i] >= 0 {
			d.msg(msg)
			// Hand the buffer back once digested: the differential then
			// also cross-checks that pooled-buffer reuse cannot leak one
			// receive's bytes into another.
			msg.Release()
		}
	}
	return nil
}

// runColl executes a collectives phase.
func (w *Workload) runColl(e *xsim.Env, d *digest, ph phase) error {
	c := e.World()
	rank, n := c.Rank(), c.Size()
	ops := []mpi.ReduceOp{xsim.OpSum, xsim.OpMax, xsim.OpMin}
	for ci, op := range ph.colls {
		switch op.kind {
		case collBarrier:
			if err := c.Barrier(); err != nil {
				return err
			}
		case collBcast:
			var data []byte
			if rank == op.root {
				data = fill(ci*17+op.root, op.size)
			}
			out, err := c.Bcast(op.root, data)
			if err != nil {
				return err
			}
			d.bytes(out)
		case collReduce:
			out, err := c.Reduce(op.root, fillF64(rank*257+ci, 1+op.size%8), ops[op.op])
			if err != nil {
				return err
			}
			if rank == op.root {
				d.floats(out)
			}
		case collAllreduce:
			out, err := c.Allreduce(fillF64(rank*263+ci, 1+op.size%8), ops[op.op])
			if err != nil {
				return err
			}
			d.floats(out)
		case collGather:
			parts, err := c.Gather(op.root, fill(rank*269+ci, op.size))
			if err != nil {
				return err
			}
			for _, p := range parts {
				d.bytes(p)
			}
		case collScatter:
			var parts [][]byte
			if rank == op.root {
				parts = make([][]byte, n)
				for i := range parts {
					parts[i] = fill(i*271+ci, op.size)
				}
			}
			out, err := c.Scatter(op.root, parts)
			if err != nil {
				return err
			}
			d.bytes(out)
		case collAllgather:
			parts, err := c.Allgather(fill(rank*277+ci, op.size))
			if err != nil {
				return err
			}
			for _, p := range parts {
				d.bytes(p)
			}
		case collAlltoall:
			parts := make([][]byte, n)
			for i := range parts {
				parts[i] = fill(rank*281+i*283+ci, op.size%128)
			}
			out, err := c.Alltoall(parts)
			if err != nil {
				return err
			}
			for _, p := range out {
				d.bytes(p)
			}
		}
	}
	return nil
}

// runProbe executes a probe phase: receivers probe before receiving each
// scripted message; senders send them blockingly.
func (w *Workload) runProbe(e *xsim.Env, d *digest, ph phase) error {
	c := e.World()
	rank := c.Rank()
	for mi, m := range ph.msgs {
		switch rank {
		case m.src:
			if m.pre > 0 {
				e.Elapse(m.pre)
			}
			var err error
			if m.payload {
				err = c.Send(m.dst, m.tag, fill(mi*29+m.tag, m.size))
			} else {
				err = c.SendN(m.dst, m.tag, m.size)
			}
			if err != nil {
				return err
			}
		case m.dst:
			if pm, ok, err := c.Iprobe(m.src, xsim.AnyTag); err != nil {
				return err
			} else {
				d.bool(ok)
				if ok {
					d.num(pm.Src)
					d.num(pm.Tag)
					d.num(pm.Size)
				}
			}
			pm, err := c.Probe(m.src, xsim.AnyTag)
			if err != nil {
				return err
			}
			d.num(pm.Src)
			d.num(pm.Tag)
			d.num(pm.Size)
			msg, err := c.Recv(pm.Src, pm.Tag)
			if err != nil {
				return err
			}
			d.msg(msg)
			msg.Release()
		}
	}
	return nil
}

// runCancel executes a cancel phase: receives that can never match,
// probed (miss) and then cancelled.
func (w *Workload) runCancel(e *xsim.Env, d *digest, pi int, ph phase) error {
	c := e.World()
	rank := c.Rank()
	for i := 0; i < ph.cancels; i++ {
		tag := tagBase(pi) + 500_000 + i*w.Ranks + rank // nobody sends these
		r, err := c.Irecv(xsim.AnySource, tag)
		if err != nil {
			return err
		}
		_, ok, err := c.Iprobe(xsim.AnySource, tag)
		if err != nil {
			return err
		}
		d.bool(ok)
		d.bool(c.Cancel(r))
		if r.Err() != nil {
			d.str(r.Err().Error())
		}
	}
	return nil
}
