// Package daly implements the checkpoint-interval optimisation model of
// J. T. Daly ("A higher order estimate of the optimum checkpoint interval
// for restart dumps", FGCS 2006) — the reference the paper cites for the
// standard practice of modelling checkpoint/restart. It predicts the
// expected completion time of an application under periodic checkpointing
// with a given system MTTF, and the interval minimising it; the simulator's
// interval sweeps can be compared directly against these predictions.
package daly

import (
	"fmt"
	"math"

	"xsim/internal/vclock"
)

// Params describes one checkpoint/restart scenario.
type Params struct {
	// Solve is the failure-free solve time (no checkpoints).
	Solve vclock.Duration
	// Delta is the cost of writing one checkpoint.
	Delta vclock.Duration
	// Restart is the cost of restarting after a failure (rework is
	// modelled separately by the formula).
	Restart vclock.Duration
	// MTTF is the system mean time to failure.
	MTTF vclock.Duration
}

// Validate reports a configuration error, if any.
func (p Params) Validate() error {
	if p.Solve <= 0 {
		return fmt.Errorf("daly: Solve must be positive")
	}
	if p.Delta < 0 || p.Restart < 0 {
		return fmt.Errorf("daly: Delta and Restart must be non-negative")
	}
	if p.MTTF <= 0 {
		return fmt.Errorf("daly: MTTF must be positive")
	}
	return nil
}

// OptimalIntervalFirstOrder returns Young's classic first-order optimum:
//
//	τ_opt = sqrt(2δM) − δ   for δ < 2M
//	τ_opt = M               otherwise
//
// The δ ≥ 2M fallback matches OptimalInterval: past that point the
// unclamped formula goes non-positive (a checkpoint costs more than it
// can ever save), which is not a usable interval.
func (p Params) OptimalIntervalFirstOrder() vclock.Duration {
	d := p.Delta.Seconds()
	m := p.MTTF.Seconds()
	if d >= 2*m {
		return p.MTTF
	}
	return vclock.FromSeconds(math.Sqrt(2*d*m) - d)
}

// OptimalInterval returns Daly's higher-order optimum:
//
//	τ_opt = sqrt(2δM)·[1 + (1/3)·sqrt(δ/2M) + (1/9)·(δ/2M)] − δ   for δ < 2M
//	τ_opt = M                                                      otherwise
func (p Params) OptimalInterval() vclock.Duration {
	d := p.Delta.Seconds()
	m := p.MTTF.Seconds()
	if d >= 2*m {
		return p.MTTF
	}
	x := d / (2 * m)
	tau := math.Sqrt(2*d*m)*(1+math.Sqrt(x)/3+x/9) - d
	return vclock.FromSeconds(tau)
}

// ExpectedRuntime returns Daly's expected completion wall time for
// checkpoint interval tau (compute time between checkpoints):
//
//	T(τ) = M · e^(R/M) · (e^((τ+δ)/M) − 1) · Ts/τ
//
// It accounts for checkpoint overhead, lost work, and restart costs under
// exponentially distributed failures.
func (p Params) ExpectedRuntime(tau vclock.Duration) vclock.Duration {
	if tau <= 0 {
		return vclock.Duration(math.MaxInt64)
	}
	m := p.MTTF.Seconds()
	t := m * math.Exp(p.Restart.Seconds()/m) *
		(math.Exp((tau.Seconds()+p.Delta.Seconds())/m) - 1) *
		p.Solve.Seconds() / tau.Seconds()
	if t >= float64(math.MaxInt64)/float64(vclock.Second) {
		return vclock.Duration(math.MaxInt64)
	}
	return vclock.FromSeconds(t)
}

// ExpectedFailures returns the expected number of failures during a run of
// the given expected duration.
func (p Params) ExpectedFailures(runtime vclock.Duration) float64 {
	return runtime.Seconds() / p.MTTF.Seconds()
}

// Efficiency returns the failure-free solve time divided by the expected
// runtime at interval tau (1.0 = no overhead).
func (p Params) Efficiency(tau vclock.Duration) float64 {
	rt := p.ExpectedRuntime(tau)
	if rt <= 0 {
		return 0
	}
	return p.Solve.Seconds() / rt.Seconds()
}
