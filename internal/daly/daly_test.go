package daly

import (
	"math"
	"testing"
	"testing/quick"

	"xsim/internal/vclock"
)

func params() Params {
	return Params{
		Solve:   5248 * vclock.Second,
		Delta:   60 * vclock.Second,
		Restart: 0,
		MTTF:    6000 * vclock.Second,
	}
}

func TestValidate(t *testing.T) {
	if err := params().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, mutate := range []func(*Params){
		func(p *Params) { p.Solve = 0 },
		func(p *Params) { p.Delta = -1 },
		func(p *Params) { p.Restart = -1 },
		func(p *Params) { p.MTTF = 0 },
	} {
		p := params()
		mutate(&p)
		if p.Validate() == nil {
			t.Errorf("Validate(%+v) should fail", p)
		}
	}
}

func TestFirstOrderOptimum(t *testing.T) {
	p := params()
	// sqrt(2·60·6000) − 60 = sqrt(720000) − 60 ≈ 788.5 s.
	got := p.OptimalIntervalFirstOrder().Seconds()
	want := math.Sqrt(2*60*6000) - 60
	if math.Abs(got-want) > 0.1 {
		t.Fatalf("first-order optimum = %v, want %v", got, want)
	}
}

func TestHigherOrderAboveFirstOrder(t *testing.T) {
	p := params()
	ho := p.OptimalInterval().Seconds()
	fo := p.OptimalIntervalFirstOrder().Seconds()
	if ho <= fo {
		t.Fatalf("higher-order %v should exceed first-order %v", ho, fo)
	}
	// The correction is small for δ << M.
	if ho > fo*1.2 {
		t.Fatalf("higher-order %v unreasonably far from first-order %v", ho, fo)
	}
}

func TestOptimalIntervalDegenerate(t *testing.T) {
	p := params()
	p.Delta = 3 * p.MTTF // δ >= 2M: checkpointing every MTTF
	if got := p.OptimalInterval(); got != p.MTTF {
		t.Fatalf("degenerate optimum = %v, want MTTF", got)
	}
}

func TestExpectedRuntimeMinimumNearOptimum(t *testing.T) {
	p := params()
	opt := p.OptimalInterval()
	rOpt := p.ExpectedRuntime(opt)
	// The optimum beats intervals substantially away from it on both
	// sides.
	for _, tau := range []vclock.Duration{opt / 4, opt * 4} {
		if r := p.ExpectedRuntime(tau); r <= rOpt {
			t.Errorf("runtime at %v (%v) should exceed runtime at optimum %v (%v)", tau, r, opt, rOpt)
		}
	}
	// And a fine sweep finds no interval more than marginally better.
	for tau := opt / 2; tau <= opt*2; tau += opt / 20 {
		if r := p.ExpectedRuntime(tau); r < rOpt-rOpt/100 {
			t.Errorf("sweep found %v at %v, below optimum %v", r, tau, rOpt)
		}
	}
}

func TestExpectedRuntimeAboveSolve(t *testing.T) {
	p := params()
	f := func(tauSecs uint16) bool {
		tau := vclock.Duration(tauSecs%5000+1) * vclock.Second
		return p.ExpectedRuntime(tau) > p.Solve
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExpectedRuntimeZeroTau(t *testing.T) {
	p := params()
	if p.ExpectedRuntime(0) != vclock.Duration(math.MaxInt64) {
		t.Fatal("zero interval should be infinitely bad")
	}
}

func TestEfficiency(t *testing.T) {
	p := params()
	eff := p.Efficiency(p.OptimalInterval())
	if eff <= 0 || eff >= 1 {
		t.Fatalf("efficiency = %v, want in (0,1)", eff)
	}
	// Very frequent checkpointing is less efficient than the optimum.
	if worse := p.Efficiency(10 * vclock.Second); worse >= eff {
		t.Fatalf("10 s interval efficiency %v should be below optimum's %v", worse, eff)
	}
}

func TestExpectedFailures(t *testing.T) {
	p := params()
	if got := p.ExpectedFailures(12000 * vclock.Second); math.Abs(got-2) > 1e-9 {
		t.Fatalf("expected failures = %v, want 2", got)
	}
}

func TestShorterMTTFShortensOptimum(t *testing.T) {
	p := params()
	long := p.OptimalInterval()
	p.MTTF = 3000 * vclock.Second
	short := p.OptimalInterval()
	if short >= long {
		t.Fatalf("optimum at MTTF 3000 (%v) should be below optimum at 6000 (%v)", short, long)
	}
}

func TestOptimalIntervalFirstOrderClampsAtHugeDelta(t *testing.T) {
	// The unclamped Young formula sqrt(2δM)−δ goes non-positive once
	// δ ≥ 2M; both optima must fall back to MTTF there instead of
	// returning a negative (unusable) interval.
	p := params()
	p.Delta = 2 * p.MTTF
	if got := p.OptimalIntervalFirstOrder(); got != p.MTTF {
		t.Fatalf("at delta=2M first-order optimum = %v, want MTTF %v", got, p.MTTF)
	}
	p.Delta = 3 * p.MTTF
	if got := p.OptimalIntervalFirstOrder(); got != p.MTTF {
		t.Fatalf("at delta=3M first-order optimum = %v, want MTTF %v", got, p.MTTF)
	}
	// Just inside the valid region the formula is positive and finite.
	p.Delta = 2*p.MTTF - vclock.Second
	if got := p.OptimalIntervalFirstOrder(); got <= 0 {
		t.Fatalf("just below the clamp boundary the optimum should stay positive, got %v", got)
	}
}
