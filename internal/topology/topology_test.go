package topology

import (
	"testing"
	"testing/quick"
)

func TestTorusCoordIDRoundTrip(t *testing.T) {
	tor := NewTorus3D(4, 3, 2)
	for id := 0; id < tor.Nodes(); id++ {
		x, y, z := tor.Coord(id)
		if got := tor.ID(x, y, z); got != id {
			t.Fatalf("round trip: id %d -> (%d,%d,%d) -> %d", id, x, y, z, got)
		}
	}
}

func TestTorusWrapID(t *testing.T) {
	tor := NewTorus3D(4, 4, 4)
	if tor.ID(-1, 0, 0) != tor.ID(3, 0, 0) {
		t.Error("negative x should wrap")
	}
	if tor.ID(4, 2, 0) != tor.ID(0, 2, 0) {
		t.Error("overflow x should wrap")
	}
	if tor.ID(0, -1, 5) != tor.ID(0, 3, 1) {
		t.Error("y/z wrap broken")
	}
}

func TestTorusHops(t *testing.T) {
	tor := NewTorus3D(32, 32, 32)
	if h := tor.Hops(0, 0); h != 0 {
		t.Errorf("self hops = %d", h)
	}
	// Neighbours in each dimension are 1 hop.
	if h := tor.Hops(tor.ID(0, 0, 0), tor.ID(1, 0, 0)); h != 1 {
		t.Errorf("x neighbour hops = %d", h)
	}
	// Wrap-around: (0,0,0) -> (31,0,0) is 1 hop on a ring of 32.
	if h := tor.Hops(tor.ID(0, 0, 0), tor.ID(31, 0, 0)); h != 1 {
		t.Errorf("wrap hops = %d", h)
	}
	// Opposite corner: 16+16+16.
	if h := tor.Hops(tor.ID(0, 0, 0), tor.ID(16, 16, 16)); h != 48 {
		t.Errorf("diameter path hops = %d, want 48", h)
	}
	if d := tor.Diameter(); d != 48 {
		t.Errorf("diameter = %d, want 48", d)
	}
}

func TestTorusHopsSymmetric(t *testing.T) {
	tor := NewTorus3D(5, 7, 3)
	f := func(a, b uint16) bool {
		s := int(a) % tor.Nodes()
		d := int(b) % tor.Nodes()
		h := tor.Hops(s, d)
		if h != tor.Hops(d, s) {
			return false
		}
		if s == d {
			return h == 0
		}
		return h >= 1 && h <= 5/2+7/2+3/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTorusTriangleInequality(t *testing.T) {
	tor := NewTorus3D(4, 4, 4)
	f := func(a, b, c uint16) bool {
		x := int(a) % tor.Nodes()
		y := int(b) % tor.Nodes()
		z := int(c) % tor.Nodes()
		return tor.Hops(x, z) <= tor.Hops(x, y)+tor.Hops(y, z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPaperTorus(t *testing.T) {
	tor := PaperTorus()
	if tor.Nodes() != 32768 {
		t.Fatalf("paper torus nodes = %d, want 32768", tor.Nodes())
	}
	if tor.Name() != "32x32x32 torus" {
		t.Errorf("name = %q", tor.Name())
	}
}

func TestMeshHops(t *testing.T) {
	m := NewMesh3D(4, 4, 4)
	// No wrap-around: 0 -> 3 along x is 3 hops, not 1.
	if h := m.Hops(0, 3); h != 3 {
		t.Errorf("mesh hops = %d, want 3", h)
	}
	if h := m.Hops(5, 5); h != 0 {
		t.Errorf("self hops = %d", h)
	}
	if m.Nodes() != 64 {
		t.Errorf("nodes = %d", m.Nodes())
	}
}

func TestMeshVsTorus(t *testing.T) {
	m := NewMesh3D(8, 8, 8)
	tor := NewTorus3D(8, 8, 8)
	// The torus never takes more hops than the mesh.
	f := func(a, b uint16) bool {
		s := int(a) % m.Nodes()
		d := int(b) % m.Nodes()
		return tor.Hops(s, d) <= m.Hops(s, d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFullyConnected(t *testing.T) {
	fc := NewFullyConnected(10)
	if fc.Nodes() != 10 {
		t.Errorf("nodes = %d", fc.Nodes())
	}
	if fc.Hops(3, 3) != 0 || fc.Hops(3, 7) != 1 {
		t.Error("crossbar hops wrong")
	}
}

func TestInvalidConstruction(t *testing.T) {
	for _, f := range []func(){
		func() { NewTorus3D(0, 1, 1) },
		func() { NewMesh3D(1, -1, 1) },
		func() { NewFullyConnected(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic for invalid dimensions")
				}
			}()
			f()
		}()
	}
}
