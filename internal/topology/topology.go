// Package topology models the interconnect topologies of simulated HPC
// systems. The paper's evaluation uses a 32×32×32 3-D wrapped torus with one
// simulated MPI rank per compute node; the network model charges per-hop
// latency along dimension-ordered routes.
package topology

import "fmt"

// Topology maps node identifiers to route lengths. Node identifiers equal
// simulated MPI ranks when one rank is placed per node (the paper's
// configuration, assuming an MPI+X programming model inside the node).
type Topology interface {
	// Nodes returns the total number of nodes.
	Nodes() int
	// Hops returns the number of links a message from src to dst
	// traverses under the topology's routing (0 for src == dst).
	Hops(src, dst int) int
	// Name returns a short human-readable description.
	Name() string
}

// Torus3D is a 3-dimensional wrapped torus with dimension-ordered routing.
type Torus3D struct {
	X, Y, Z int
}

// NewTorus3D returns an x×y×z wrapped torus. It panics if any dimension is
// not positive (a construction-time programming error).
func NewTorus3D(x, y, z int) *Torus3D {
	if x <= 0 || y <= 0 || z <= 0 {
		panic(fmt.Sprintf("topology: invalid torus dimensions %d×%d×%d", x, y, z))
	}
	return &Torus3D{X: x, Y: y, Z: z}
}

// PaperTorus returns the 32×32×32 wrapped torus used in the paper's
// evaluation (32,768 nodes).
func PaperTorus() *Torus3D { return NewTorus3D(32, 32, 32) }

// Nodes implements Topology.
func (t *Torus3D) Nodes() int { return t.X * t.Y * t.Z }

// Coord returns the (x, y, z) coordinate of node id, with x varying fastest.
func (t *Torus3D) Coord(id int) (x, y, z int) {
	x = id % t.X
	y = (id / t.X) % t.Y
	z = id / (t.X * t.Y)
	return
}

// ID returns the node identifier of coordinate (x, y, z). Coordinates wrap,
// so negative and out-of-range values are valid (e.g. x = -1 is the last
// column), which makes neighbour arithmetic convenient for applications.
func (t *Torus3D) ID(x, y, z int) int {
	x = wrap(x, t.X)
	y = wrap(y, t.Y)
	z = wrap(z, t.Z)
	return x + y*t.X + z*t.X*t.Y
}

func wrap(v, n int) int {
	v %= n
	if v < 0 {
		v += n
	}
	return v
}

// Hops implements Topology using dimension-ordered (e-cube) routing: the
// route length is the sum of the per-dimension wrapped distances.
func (t *Torus3D) Hops(src, dst int) int {
	if src == dst {
		return 0
	}
	sx, sy, sz := t.Coord(src)
	dx, dy, dz := t.Coord(dst)
	return ringDist(sx, dx, t.X) + ringDist(sy, dy, t.Y) + ringDist(sz, dz, t.Z)
}

// ringDist returns the shortest distance between a and b on a ring of n.
func ringDist(a, b, n int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if n-d < d {
		d = n - d
	}
	return d
}

// Diameter returns the maximum route length between any pair of nodes.
func (t *Torus3D) Diameter() int { return t.X/2 + t.Y/2 + t.Z/2 }

// Name implements Topology.
func (t *Torus3D) Name() string { return fmt.Sprintf("%dx%dx%d torus", t.X, t.Y, t.Z) }

// Mesh3D is a 3-dimensional mesh (no wrap-around links) with
// dimension-ordered routing. Useful for topology ablations.
type Mesh3D struct {
	X, Y, Z int
}

// NewMesh3D returns an x×y×z mesh. It panics if any dimension is not
// positive.
func NewMesh3D(x, y, z int) *Mesh3D {
	if x <= 0 || y <= 0 || z <= 0 {
		panic(fmt.Sprintf("topology: invalid mesh dimensions %d×%d×%d", x, y, z))
	}
	return &Mesh3D{X: x, Y: y, Z: z}
}

// Nodes implements Topology.
func (m *Mesh3D) Nodes() int { return m.X * m.Y * m.Z }

// Coord returns the (x, y, z) coordinate of node id, with x varying fastest.
func (m *Mesh3D) Coord(id int) (x, y, z int) {
	x = id % m.X
	y = (id / m.X) % m.Y
	z = id / (m.X * m.Y)
	return
}

// Hops implements Topology: the Manhattan distance between the coordinates.
func (m *Mesh3D) Hops(src, dst int) int {
	sx, sy, sz := m.Coord(src)
	dx, dy, dz := m.Coord(dst)
	return abs(sx-dx) + abs(sy-dy) + abs(sz-dz)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Name implements Topology.
func (m *Mesh3D) Name() string { return fmt.Sprintf("%dx%dx%d mesh", m.X, m.Y, m.Z) }

// FullyConnected is a crossbar: every pair of distinct nodes is one hop
// apart. It is the simplest model and a useful baseline.
type FullyConnected struct {
	N int
}

// NewFullyConnected returns a crossbar over n nodes. It panics if n is not
// positive.
func NewFullyConnected(n int) *FullyConnected {
	if n <= 0 {
		panic(fmt.Sprintf("topology: invalid node count %d", n))
	}
	return &FullyConnected{N: n}
}

// Nodes implements Topology.
func (f *FullyConnected) Nodes() int { return f.N }

// Hops implements Topology.
func (f *FullyConnected) Hops(src, dst int) int {
	if src == dst {
		return 0
	}
	return 1
}

// Name implements Topology.
func (f *FullyConnected) Name() string { return fmt.Sprintf("fully connected (%d nodes)", f.N) }
