package mpi

import (
	"sort"
	"sync"

	"xsim/internal/vclock"
)

// The MPI layer counts its own traffic the way the paper's performance-tool
// half reports it: messages and bytes by protocol, collective operations,
// unexpected-queue pressure, and — the Section V quantity — failure
// detection latency (time of failure → last surviving rank's detection).
//
// Per-rank counters are partition-confined: each rank's counters are only
// touched by the VP itself or its partition's handlers, so increments need
// no atomics and no locks — the aggregation in Metrics runs after the
// engine has joined its workers. Failure records are shared across
// partitions and guarded by a mutex; failures are rare, so the lock is off
// every message path.

// rankCounters is one rank's partition-confined traffic counters.
type rankCounters struct {
	eagerMsgs   uint64
	eagerBytes  uint64
	rdvMsgs     uint64
	rdvBytes    uint64
	collectives uint64
	unexpNow    int
	unexpMax    int
}

// metrics is the world's counter state.
type metrics struct {
	perRank []rankCounters

	mu       sync.Mutex
	failures map[int]*failureRec // by failed world rank
}

// failureRec accumulates one failure's detection behaviour.
type failureRec struct {
	failedAt     vclock.Time
	notifiedAt   vclock.Time
	lastDetectAt vclock.Time
	detectors    map[int]bool
}

func (m *metrics) init(n int) {
	m.perRank = make([]rankCounters, n)
	m.failures = make(map[int]*failureRec)
}

// counters returns rank's counter block (nil for simulator-level ranks).
func (m *metrics) counters(rank int) *rankCounters {
	if rank < 0 || rank >= len(m.perRank) {
		return nil
	}
	return &m.perRank[rank]
}

// countSend tallies one point-to-point send on the sender.
func (m *metrics) countSend(rank, size int, rendezvous bool) {
	c := m.counters(rank)
	if c == nil {
		return
	}
	if rendezvous {
		c.rdvMsgs++
		c.rdvBytes += uint64(size)
	} else {
		c.eagerMsgs++
		c.eagerBytes += uint64(size)
	}
}

// countCollective tallies one collective call at its public entry point
// (composite collectives count once, not once per building block).
func (m *metrics) countCollective(rank int) {
	if c := m.counters(rank); c != nil {
		c.collectives++
	}
}

// unexpectedDelta tracks the unexpected-queue depth and its high-water
// mark at one rank.
func (m *metrics) unexpectedDelta(rank, delta int) {
	c := m.counters(rank)
	if c == nil {
		return
	}
	c.unexpNow += delta
	if c.unexpNow > c.unexpMax {
		c.unexpMax = c.unexpNow
	}
}

// recordFailure opens the detection record for a failed rank.
func (m *metrics) recordFailure(rank int, failedAt, notifiedAt vclock.Time) {
	m.mu.Lock()
	if _, ok := m.failures[rank]; !ok {
		m.failures[rank] = &failureRec{
			failedAt:   failedAt,
			notifiedAt: notifiedAt,
			detectors:  make(map[int]bool),
		}
	}
	m.mu.Unlock()
}

// recordDetection notes that detector first observed failed's failure (an
// operation completed with ProcFailedError) at virtual time at. Only the
// first detection per surviving rank counts; the record keeps the latest
// such first detection — the moment the last surviving rank learned.
func (m *metrics) recordDetection(detector, failed int, at vclock.Time) {
	m.mu.Lock()
	rec := m.failures[failed]
	if rec != nil && !rec.detectors[detector] {
		rec.detectors[detector] = true
		if at > rec.lastDetectAt {
			rec.lastDetectAt = at
		}
	}
	m.mu.Unlock()
}

// FailureMetric reports one injected failure's detection behaviour.
type FailureMetric struct {
	// Rank is the failed world rank.
	Rank int
	// FailedAt is the time of failure.
	FailedAt vclock.Time
	// NotifiedAt is when the simulator-internal failure notification
	// reached the surviving processes (FailedAt + NotifyDelay).
	NotifiedAt vclock.Time
	// LastDetectAt is the virtual time the last surviving rank first
	// detected the failure (a pending operation completed with
	// ProcFailedError). Zero if no rank detected it.
	LastDetectAt vclock.Time
	// Detections is the number of distinct ranks that detected the failure.
	Detections int
}

// DetectionLatency is the paper's Section V quantity: time of failure to
// the last surviving rank's detection. It returns -1 if nothing detected
// the failure (no surviving rank communicated with the failed one).
func (f FailureMetric) DetectionLatency() vclock.Duration {
	if f.Detections == 0 {
		return -1
	}
	return f.LastDetectAt.Sub(f.FailedAt)
}

// MetricsSnapshot aggregates the world's MPI-layer counters. Values are
// totals across ranks except UnexpectedMax, which is the maximum per-rank
// high-water mark.
type MetricsSnapshot struct {
	// EagerMsgs and EagerBytes count point-to-point sends below the eager
	// threshold.
	EagerMsgs  uint64
	EagerBytes uint64
	// RendezvousMsgs and RendezvousBytes count rendezvous-protocol sends.
	RendezvousMsgs  uint64
	RendezvousBytes uint64
	// CollectiveOps counts collective calls at their public entry points,
	// summed over participating ranks.
	CollectiveOps uint64
	// UnexpectedMax is the deepest any rank's unexpected-message queue got.
	UnexpectedMax int

	// Data-plane pool behaviour (see internal/mpi/pool.go), summed across
	// partitions. PoolHits/PoolMisses count object free-list reuse
	// (envelopes, requests, messages, rendezvous control records);
	// BufHits/BufMisses count payload-buffer reuse. Counters are run
	// totals, not digest material: they vary with the partition layout.
	PoolHits   uint64
	PoolMisses uint64
	BufHits    uint64
	BufMisses  uint64
	// BufHighWater is the peak of pooled payload bytes checked out at
	// once, summed across partitions within a run — the resident cost of
	// in-flight payloads. Add keeps the maximum across runs.
	BufHighWater int64

	// Failures describes each injected failure's detection, ordered by
	// failed rank.
	Failures []FailureMetric
}

// Add accumulates other into s: traffic counters sum, UnexpectedMax takes
// the maximum, and failure records are concatenated. The campaign layer
// uses it to pool metrics across many runs.
func (s *MetricsSnapshot) Add(other MetricsSnapshot) {
	s.EagerMsgs += other.EagerMsgs
	s.EagerBytes += other.EagerBytes
	s.RendezvousMsgs += other.RendezvousMsgs
	s.RendezvousBytes += other.RendezvousBytes
	s.CollectiveOps += other.CollectiveOps
	if other.UnexpectedMax > s.UnexpectedMax {
		s.UnexpectedMax = other.UnexpectedMax
	}
	s.PoolHits += other.PoolHits
	s.PoolMisses += other.PoolMisses
	s.BufHits += other.BufHits
	s.BufMisses += other.BufMisses
	if other.BufHighWater > s.BufHighWater {
		s.BufHighWater = other.BufHighWater
	}
	s.Failures = append(s.Failures, other.Failures...)
}

// Metrics aggregates the per-rank counters into a snapshot. Call it after
// Run returns; it is not synchronised against a running engine's
// partitions.
func (w *World) Metrics() MetricsSnapshot {
	var s MetricsSnapshot
	for i := range w.m.perRank {
		c := &w.m.perRank[i]
		s.EagerMsgs += c.eagerMsgs
		s.EagerBytes += c.eagerBytes
		s.RendezvousMsgs += c.rdvMsgs
		s.RendezvousBytes += c.rdvBytes
		s.CollectiveOps += c.collectives
		if c.unexpMax > s.UnexpectedMax {
			s.UnexpectedMax = c.unexpMax
		}
	}
	for _, p := range w.pools {
		s.PoolHits += p.objHits
		s.PoolMisses += p.objMisses
		s.BufHits += p.bufHits
		s.BufMisses += p.bufMisses
		s.BufHighWater += p.bufHighWater
	}
	w.m.mu.Lock()
	for rank, rec := range w.m.failures {
		s.Failures = append(s.Failures, FailureMetric{
			Rank:         rank,
			FailedAt:     rec.failedAt,
			NotifiedAt:   rec.notifiedAt,
			LastDetectAt: rec.lastDetectAt,
			Detections:   len(rec.detectors),
		})
	}
	w.m.mu.Unlock()
	sort.Slice(s.Failures, func(i, j int) bool { return s.Failures[i].Rank < s.Failures[j].Rank })
	return s
}
