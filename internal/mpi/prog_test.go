package mpi

import (
	"strings"
	"testing"

	"xsim/internal/core"
	"xsim/internal/procmodel"
	"xsim/internal/vclock"
)

// runProgWorldErr mirrors runWorldErr for program mode.
func runProgWorldErr(t *testing.T, n, workers int, failures map[int]vclock.Time, newProg func(rank int) Prog, opts ...worldOpt) (*core.Result, error) {
	t.Helper()
	eng, err := core.New(core.Config{NumVPs: n, Workers: workers, Lookahead: vclock.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	cfg := WorldConfig{Net: testNet(n), Proc: procmodel.Paper()}
	for _, o := range opts {
		o(&cfg)
	}
	w, err := NewWorld(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for r, at := range failures {
		if err := eng.ScheduleFailure(r, at); err != nil {
			t.Fatal(err)
		}
	}
	return w.RunProgs(newProg)
}

// heatProg is the halo-exchange state machine: the program-mode twin of
// the closure heat step (Irecv/Irecv/SendN/SendN/Waitall per step).
type heatProg struct {
	n, steps int
	step     int
	waiting  bool
	ws       WaitState
	rl, rr   *Request
}

func (p *heatProg) Step(e *Env, wake any) (any, bool) {
	c := e.World()
	for {
		if !p.waiting {
			if p.step == p.steps {
				e.Finalize()
				return nil, true
			}
			left := (e.Rank() + p.n - 1) % p.n
			right := (e.Rank() + 1) % p.n
			var err error
			if p.rl, err = c.Irecv(left, 0); err != nil {
				return nil, true
			}
			if p.rr, err = c.Irecv(right, 0); err != nil {
				return nil, true
			}
			if err := c.SendN(left, 0, 512); err != nil {
				return nil, true
			}
			if err := c.SendN(right, 0, 512); err != nil {
				return nil, true
			}
			p.ws.Begin(p.rl, p.rr)
			p.waiting = true
		}
		done, park, err := c.WaitallStep(&p.ws)
		if !done {
			return park, false
		}
		if err != nil {
			e.Finalize()
			return nil, true
		}
		p.waiting = false
		p.step++
	}
}

// closureHeat is the goroutine-mode reference for the same exchange.
func closureHeat(n, steps int) func(*Env) {
	return func(e *Env) {
		c := e.World()
		left := (e.Rank() + n - 1) % n
		right := (e.Rank() + 1) % n
		for s := 0; s < steps; s++ {
			rl, err := c.Irecv(left, 0)
			if err != nil {
				return
			}
			rr, err := c.Irecv(right, 0)
			if err != nil {
				return
			}
			if err := c.SendN(left, 0, 512); err != nil {
				return
			}
			if err := c.SendN(right, 0, 512); err != nil {
				return
			}
			if err := c.Waitall([]*Request{rl, rr}); err != nil {
				e.Finalize()
				return
			}
		}
		e.Finalize()
	}
}

// TestProgHeatMatchesClosure checks the program execution mode is
// observationally identical to the goroutine mode on the dominant MPI
// shape: same per-rank final clocks, same death reasons, at one and at
// several workers.
func TestProgHeatMatchesClosure(t *testing.T) {
	const n, steps = 64, 3
	ref, err := runWorldErr(t, n, 1, nil, closureHeat(n, steps))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		got, err := runProgWorldErr(t, n, workers, nil, func(rank int) Prog {
			return &heatProg{n: n, steps: steps}
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.Completed != n {
			t.Fatalf("workers=%d: completed = %d", workers, got.Completed)
		}
		for r := range ref.FinalClocks {
			if ref.FinalClocks[r] != got.FinalClocks[r] || ref.Deaths[r] != got.Deaths[r] {
				t.Fatalf("workers=%d rank %d: closure (%v, %v) vs prog (%v, %v)",
					workers, r, ref.FinalClocks[r], ref.Deaths[r], got.FinalClocks[r], got.Deaths[r])
			}
		}
	}
}

// TestProgHeatWithFailureMatchesClosure injects a process failure and
// checks the detection path (armTimeout from waitStep, completion in
// error, error-handler abort) agrees between the modes.
func TestProgHeatWithFailureMatchesClosure(t *testing.T) {
	const n, steps = 16, 4
	failures := map[int]vclock.Time{5: vclock.TimeFromSeconds(0.00001)}
	ref, refErr := runWorldErr(t, n, 1, failures, closureHeat(n, steps))
	got, gotErr := runProgWorldErr(t, n, 1, failures, func(rank int) Prog {
		return &heatProg{n: n, steps: steps}
	})
	if (refErr == nil) != (gotErr == nil) {
		t.Fatalf("closure err = %v, prog err = %v", refErr, gotErr)
	}
	if ref.Failed != got.Failed || ref.Aborted != got.Aborted || ref.Completed != got.Completed {
		t.Fatalf("closure %d/%d/%d vs prog %d/%d/%d (completed/failed/aborted)",
			ref.Completed, ref.Failed, ref.Aborted, got.Completed, got.Failed, got.Aborted)
	}
	for r := range ref.FinalClocks {
		if ref.FinalClocks[r] != got.FinalClocks[r] || ref.Deaths[r] != got.Deaths[r] {
			t.Fatalf("rank %d: closure (%v, %v) vs prog (%v, %v)",
				r, ref.FinalClocks[r], ref.Deaths[r], got.FinalClocks[r], got.Deaths[r])
		}
	}
}

// noFinalizeProg completes without calling Finalize — the MPI discipline
// must classify it as a simulated process failure, as in closure mode.
type noFinalizeProg struct{}

func (noFinalizeProg) Step(e *Env, wake any) (any, bool) { return nil, true }

func TestProgWithoutFinalizeFails(t *testing.T) {
	res, err := runProgWorldErr(t, 2, 1, nil, func(rank int) Prog { return noFinalizeProg{} })
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 2 {
		t.Fatalf("failed = %d, want 2", res.Failed)
	}
}

// rendezvousProg attempts a blocking rendezvous send from a program.
type rendezvousProg struct{}

func (rendezvousProg) Step(e *Env, wake any) (any, bool) {
	if e.Rank() == 0 {
		_ = e.World().SendN(1, 0, 1<<20) // above eager threshold: must block
		e.Finalize()
		return nil, true
	}
	return "never matched", false
}

func TestProgRendezvousSendPanicsWithDiagnostic(t *testing.T) {
	_, err := runProgWorldErr(t, 2, 1, nil, func(rank int) Prog { return rendezvousProg{} })
	if err == nil || !strings.Contains(err.Error(), "closure-mode-only") {
		t.Fatalf("err = %v, want the typed closure-only diagnostic", err)
	}
	if err == nil || !strings.Contains(err.Error(), "rank 0") {
		t.Fatalf("err = %v, want the offending rank named", err)
	}
}

// closureOnlyProg drives one closure-mode-only entry point per op name.
type closureOnlyProg struct{ op string }

func (p closureOnlyProg) Step(e *Env, wake any) (any, bool) {
	c := e.World()
	switch p.op {
	case "recv":
		if e.Rank() == 0 {
			_, _ = c.Recv(1, 0)
		}
	case "sleep":
		e.Sleep(vclock.Millisecond)
	case "probe":
		if e.Rank() == 0 {
			_, _ = c.Probe(1, 0)
		}
	case "barrier":
		_ = c.Barrier()
	}
	e.Finalize()
	return nil, true
}

func TestProgClosureOnlyEntriesPanicTyped(t *testing.T) {
	for _, op := range []string{"recv", "sleep", "probe", "barrier"} {
		t.Run(op, func(t *testing.T) {
			_, err := runProgWorldErr(t, 2, 1, nil, func(rank int) Prog { return closureOnlyProg{op: op} })
			if err == nil || !strings.Contains(err.Error(), "closure-mode-only") {
				t.Fatalf("op %s: err = %v, want the typed closure-only diagnostic", op, err)
			}
		})
	}
}

// parkedRecvProg posts a receive that is never matched, parks on it, and
// must render an MPI wait reason in the deadlock report even though the
// rank never owned a goroutine.
type parkedRecvProg struct {
	posted bool
	ws     WaitState
}

func (p *parkedRecvProg) Step(e *Env, wake any) (any, bool) {
	c := e.World()
	if !p.posted {
		p.posted = true
		r, err := c.Irecv(AnySource, 7)
		if err != nil {
			return nil, true
		}
		p.ws.Begin(r)
	}
	done, park, _ := c.WaitallStep(&p.ws)
	if !done {
		return park, false
	}
	e.Finalize()
	return nil, true
}

func TestProgDeadlockReportRendersWaitReason(t *testing.T) {
	_, err := runProgWorldErr(t, 2, 1, nil, func(rank int) Prog { return &parkedRecvProg{} })
	if err == nil || !strings.Contains(err.Error(), "MPI wait: recv") {
		t.Fatalf("err = %v, want a deadlock report with an MPI wait reason", err)
	}
}
