package mpi

import (
	"fmt"
	"testing"

	"xsim/internal/core"
	"xsim/internal/procmodel"
	"xsim/internal/trace"
	"xsim/internal/vclock"
)

// benchWorld builds an n-rank world for benchmarking.
func benchWorld(b *testing.B, n int) *World {
	b.Helper()
	eng, err := core.New(core.Config{NumVPs: n})
	if err != nil {
		b.Fatal(err)
	}
	w, err := NewWorld(eng, WorldConfig{Net: testNet(n), Proc: procmodel.Paper()})
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkSendRecv measures simulated point-to-point throughput through
// the full stack (matching, protocol selection, virtual-time accounting).
func BenchmarkSendRecv(b *testing.B) {
	msgs := b.N
	w := benchWorld(b, 2)
	b.ResetTimer()
	if _, err := w.Run(func(e *Env) {
		defer e.Finalize()
		c := e.World()
		for i := 0; i < msgs; i++ {
			if e.Rank() == 0 {
				if err := c.SendN(1, 0, 64); err != nil {
					b.Error(err)
				}
			} else {
				if _, err := c.Recv(0, 0); err != nil {
					b.Error(err)
				}
			}
		}
	}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSendRecvTraced is BenchmarkSendRecv with a tracer attached:
// the delta against the untraced run is the tracer's per-operation cost
// through the full stack (each send/recv pair records several events).
func BenchmarkSendRecvTraced(b *testing.B) {
	msgs := b.N
	eng, err := core.New(core.Config{NumVPs: 2})
	if err != nil {
		b.Fatal(err)
	}
	w, err := NewWorld(eng, WorldConfig{
		Net:    testNet(2),
		Proc:   procmodel.Paper(),
		Tracer: trace.New(1 << 16),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if _, err := w.Run(func(e *Env) {
		defer e.Finalize()
		c := e.World()
		for i := 0; i < msgs; i++ {
			if e.Rank() == 0 {
				if err := c.SendN(1, 0, 64); err != nil {
					b.Error(err)
				}
			} else {
				if _, err := c.Recv(0, 0); err != nil {
					b.Error(err)
				}
			}
		}
	}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkBarrier measures the linear barrier at several scales (one
// barrier per iteration).
func BenchmarkBarrier(b *testing.B) {
	for _, n := range []int{16, 256, 1024} {
		b.Run(fmt.Sprintf("ranks=%d", n), func(b *testing.B) {
			rounds := b.N
			w := benchWorld(b, n)
			b.ResetTimer()
			if _, err := w.Run(func(e *Env) {
				defer e.Finalize()
				for i := 0; i < rounds; i++ {
					if err := e.World().Barrier(); err != nil {
						b.Error(err)
					}
				}
			}); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkUnexpectedMatching measures the indexed unexpected-queue path:
// many queued envelopes, receives posted afterwards.
func BenchmarkUnexpectedMatching(b *testing.B) {
	const queued = 512
	iters := b.N
	w := benchWorld(b, 2)
	b.ResetTimer()
	if _, err := w.Run(func(e *Env) {
		defer e.Finalize()
		c := e.World()
		for i := 0; i < iters; i++ {
			if e.Rank() == 0 {
				for m := 0; m < queued; m++ {
					if _, err := c.IsendN(1, m%8, 16); err != nil {
						b.Error(err)
					}
				}
				// Per-iteration ack keeps the unexpected queue bounded.
				if _, err := c.Recv(1, 100); err != nil {
					b.Error(err)
				}
			} else {
				e.Sleep(vclock.Millisecond)
				for m := 0; m < queued; m++ {
					if _, err := c.Recv(0, m%8); err != nil {
						b.Error(err)
					}
				}
				if err := c.SendN(0, 100, 0); err != nil {
					b.Error(err)
				}
			}
		}
	}); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(queued*iters)/b.Elapsed().Seconds(), "matches/s")
}
