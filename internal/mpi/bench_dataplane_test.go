package mpi

import (
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkPingPong measures a full payload round-trip between two ranks:
// rank 0 sends, rank 1 receives and echoes, rank 0 receives. One iteration
// is one round-trip. The eager case stays under testNet's 1 KiB threshold;
// the rendezvous case goes through the envelope/CTS/data exchange. Both
// are the data plane's allocation hot path, so allocs/op is the headline
// number (ci.sh gates it).
func BenchmarkPingPong(b *testing.B) {
	for _, bc := range []struct {
		name string
		size int
	}{
		{"eager", 64},
		{"rendezvous", 4096},
	} {
		b.Run(bc.name, func(b *testing.B) {
			rounds := b.N
			w := benchWorld(b, 2)
			payload := make([]byte, bc.size)
			for i := range payload {
				payload[i] = byte(i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			if _, err := w.Run(func(e *Env) {
				defer e.Finalize()
				c := e.World()
				for i := 0; i < rounds; i++ {
					if e.Rank() == 0 {
						if err := c.Send(1, 0, payload); err != nil {
							b.Error(err)
						}
						msg, err := c.Recv(1, 0)
						if err != nil {
							b.Error(err)
						}
						msg.Release()
					} else {
						msg, err := c.Recv(0, 0)
						if err != nil {
							b.Error(err)
						}
						if err := c.Send(0, 0, payload); err != nil {
							b.Error(err)
						}
						msg.Release()
					}
				}
			}); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkAllreduce measures the linear allreduce (reduce to 0 plus
// broadcast) with an 8-double contribution across 16 ranks — the
// encode/decode scratch path in the collectives.
func BenchmarkAllreduce(b *testing.B) {
	const n = 16
	rounds := b.N
	w := benchWorld(b, n)
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := w.Run(func(e *Env) {
		defer e.Finalize()
		contrib := []float64{1, 2, 3, 4, 5, 6, 7, 8}
		for i := 0; i < rounds; i++ {
			if _, err := e.World().Allreduce(contrib, OpSum); err != nil {
				b.Error(err)
			}
		}
	}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWildcardStorm measures MPI_ANY_SOURCE matching under pressure:
// several senders flood one receiver, which drains everything with fully
// wild receives. One iteration is one message received.
func BenchmarkWildcardStorm(b *testing.B) {
	const senders = 4
	total := b.N
	w := benchWorld(b, senders+1)
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := w.Run(func(e *Env) {
		defer e.Finalize()
		c := e.World()
		if e.Rank() == senders {
			for i := 0; i < total; i++ {
				msg, err := c.Recv(AnySource, AnyTag)
				if err != nil {
					b.Error(err)
				}
				msg.Release()
			}
			return
		}
		share := total / senders
		if e.Rank() < total%senders {
			share++
		}
		for i := 0; i < share; i++ {
			if err := c.SendN(senders, i%8, 32); err != nil {
				b.Error(err)
			}
		}
	}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkHeatStep runs one Jacobi-style halo exchange step over a 1-D
// ring of 4096 ranks per iteration: each rank exchanges a fixed-size halo
// with both neighbours (Irecv/Irecv/Send/Send/Waitall) and "computes".
// This is the oversubscription shape the paper targets: thousands of
// virtual processes per host, dominated by data-plane throughput.
func BenchmarkHeatStep(b *testing.B) {
	const n = 4096
	steps := b.N
	w := benchWorld(b, n)
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := w.Run(func(e *Env) {
		defer e.Finalize()
		c := e.World()
		left := (e.Rank() + n - 1) % n
		right := (e.Rank() + 1) % n
		for i := 0; i < steps; i++ {
			rl, err := c.Irecv(left, 0)
			if err != nil {
				b.Error(err)
			}
			rr, err := c.Irecv(right, 0)
			if err != nil {
				b.Error(err)
			}
			if err := c.SendN(left, 0, 512); err != nil {
				b.Error(err)
			}
			if err := c.SendN(right, 0, 512); err != nil {
				b.Error(err)
			}
			if err := c.Waitall([]*Request{rl, rr}); err != nil {
				b.Error(err)
			}
		}
	}); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(n)*float64(steps)/b.Elapsed().Seconds(), "rankstep/s")
}

// heatBenchProg is the program-mode heat step used by the scale
// benchmarks: the same Irecv/Irecv/SendN/SendN/Waitall shape as
// BenchmarkHeatStep, expressed as a parked state machine so ranks cost no
// goroutine and no stack.
type heatBenchProg struct {
	n, steps int
	step     int
	waiting  bool
	ws       WaitState
	rl, rr   *Request
	fail     func(error)
}

func (p *heatBenchProg) Step(e *Env, wake any) (any, bool) {
	c := e.World()
	for {
		if !p.waiting {
			if p.step == p.steps {
				p.ws.reqs = nil
				e.Finalize()
				return nil, true
			}
			left := (e.Rank() + p.n - 1) % p.n
			right := (e.Rank() + 1) % p.n
			var err error
			if p.rl, err = c.Irecv(left, 0); err != nil {
				p.fail(err)
			}
			if p.rr, err = c.Irecv(right, 0); err != nil {
				p.fail(err)
			}
			if err := c.SendN(left, 0, 512); err != nil {
				p.fail(err)
			}
			if err := c.SendN(right, 0, 512); err != nil {
				p.fail(err)
			}
			p.ws.Begin(p.rl, p.rr)
			p.waiting = true
		}
		done, park, err := c.WaitallStep(&p.ws)
		if !done {
			return park, false
		}
		if err != nil {
			p.fail(err)
		}
		c.Free(p.rl)
		c.Free(p.rr)
		p.rl, p.rr = nil, nil
		p.waiting = false
		p.step++
	}
}

// BenchmarkHeatStepProg is BenchmarkHeatStep in program mode, swept to the
// million-rank scale the paper targets. One iteration is one exchange step
// across all n ranks; run with -benchtime=1x at the large sizes.
func BenchmarkHeatStepProg(b *testing.B) {
	for _, n := range []int{4096, 65536, 262144, 1048576} {
		b.Run(fmt.Sprintf("ranks=%d", n), func(b *testing.B) {
			steps := b.N
			w := benchWorld(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			if _, err := w.RunProgs(func(rank int) Prog {
				return &heatBenchProg{n: n, steps: steps, fail: func(err error) { b.Error(err) }}
			}); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(n)*float64(steps)/b.Elapsed().Seconds(), "rankstep/s")
		})
	}
}

// BenchmarkBytesPerVP measures the resident memory cost of one virtual
// process at oversubscription scale: it builds an n-rank world, runs one
// neighbour-exchange step so every VP has touched its data-plane state,
// and reports (heap+goroutine stack growth)/n. This is the paper's
// headline scaling dimension — how many virtual MPI processes fit on one
// host. The closure variant carries each rank on a (pooled) goroutine;
// the prog variant runs the same exchange as a parked state machine and
// is the configuration the ci.sh memory gate and the 1M-rank target use.
func BenchmarkBytesPerVP(b *testing.B) {
	measure := func(b *testing.B, n int, run func(w *World) error) {
		for i := 0; i < b.N; i++ {
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			w := benchWorld(b, n)
			if err := run(w); err != nil {
				b.Fatal(err)
			}
			runtime.GC()
			runtime.ReadMemStats(&after)
			grew := (after.HeapInuse + after.StackInuse) - (before.HeapInuse + before.StackInuse)
			b.ReportMetric(float64(grew)/float64(n), "bytes/vp")
			runtime.KeepAlive(w)
		}
	}
	for _, n := range []int{4096, 65536} {
		n := n
		b.Run(fmt.Sprintf("closure/ranks=%d", n), func(b *testing.B) {
			measure(b, n, func(w *World) error {
				_, err := w.Run(func(e *Env) {
					defer e.Finalize()
					c := e.World()
					right := (e.Rank() + 1) % n
					left := (e.Rank() + n - 1) % n
					r, err := c.Irecv(left, 0)
					if err != nil {
						b.Error(err)
					}
					if err := c.SendN(right, 0, 512); err != nil {
						b.Error(err)
					}
					if _, err := c.Wait(r); err != nil {
						b.Error(err)
					}
				})
				return err
			})
		})
	}
	for _, n := range []int{4096, 65536, 262144, 1048576} {
		n := n
		b.Run(fmt.Sprintf("prog/ranks=%d", n), func(b *testing.B) {
			measure(b, n, func(w *World) error {
				_, err := w.RunProgs(func(rank int) Prog {
					return &heatBenchProg{n: n, steps: 1, fail: func(err error) { b.Error(err) }}
				})
				return err
			})
		})
	}
}
