package mpi

import (
	"xsim/internal/core"
	"xsim/internal/trace"
	"xsim/internal/vclock"
)

// Event handlers in this file receive pooled *core.Event pointers: the
// engine recycles the event as soon as the handler returns, so handlers
// read what they need (Time, Payload) during the call and never store the
// event itself. Payload values (*envelope, ctsMsg, notifications, ...) are
// independent allocations and may be retained — the unexpected-message
// queue and pending-request tables do exactly that.

// localState returns the procState of a local, still-alive rank, or nil.
func localState(s *core.SchedCtx, rank int) *procState {
	if !s.Alive(rank) {
		return nil
	}
	ps, _ := s.Data(rank).(*procState)
	return ps
}

// wakeIfWaiting resumes a VP blocked on a wait containing req.
func wakeIfWaiting(s *core.SchedCtx, ps *procState, req *Request, at vclock.Time) {
	rank := ps.env.Rank()
	if !s.Blocked(rank) {
		return
	}
	for _, r := range ps.waitingOn {
		if r == req {
			s.Wake(rank, at, nil)
			return
		}
	}
}

// handleEnvelope delivers a message envelope at the receiver: match the
// first compatible posted receive, or queue it as unexpected. Envelopes to
// failed processes are deleted — once a simulated MPI process fails, all
// messages directed to it are dropped.
func (w *World) handleEnvelope(s *core.SchedCtx, ev *core.Event) {
	env := ev.Payload.(*envelope)
	ps := localState(s, env.dst)
	if ps == nil {
		dropEnvelope(w.pools[s.Partition()], env)
		return
	}
	// Endpoint contention: eager payloads serialise through the
	// receiver's NIC in arrival order (rendezvous payloads pay at the
	// data delivery instead — their envelope is control-sized).
	if !env.rendezvous {
		if occ := w.cfg.Net.EjectOccupancy(env.size); occ > 0 {
			start := vclock.Max(ev.Time, ps.ejectFreeAt)
			ps.ejectFreeAt = start.Add(occ)
			env.dataAt = vclock.Max(env.dataAt, ps.ejectFreeAt)
		}
	}
	if req := ps.takePosted(env); req != nil {
		matchEnvelope(w, ps, req, env, schedEmitter{s, env.dst})
		ps.releaseEnvelope(env)
		if w.cfg.Validate {
			ps.checkIndexes("envelope-match")
		}
		if req.done {
			wakeIfWaiting(s, ps, req, req.completeAt)
		}
		return
	}
	ps.addUnexpected(env)
	if w.cfg.Validate {
		ps.checkIndexes("envelope-unexpected")
	}
	// A blocked probe matching this envelope wakes to inspect it.
	for _, pr := range ps.probes {
		if pr.matchesEnvelope(env) && s.Blocked(env.dst) {
			s.Wake(env.dst, ev.Time, nil)
			break
		}
	}
}

// handleCts completes the sender side of a rendezvous: the payload streams
// to the receiver, the send request completes once the payload has been
// injected. A clear-to-send reaching a failed sender is dropped; the
// receiver's request is released by the failure notification timeout.
func (w *World) handleCts(s *core.SchedCtx, ev *core.Event) {
	cts := ev.Payload.(*ctsMsg)
	sender := ev.Target
	ps := localState(s, sender)
	if ps == nil {
		w.pools[s.Partition()].putCts(cts)
		return
	}
	req := ps.findPending(cts.sendReqID)
	if req == nil || req.done {
		ps.dp.putCts(cts)
		return
	}
	net := w.cfg.Net
	// Endpoint contention: the payload queues behind the sender NIC's
	// earlier injections.
	start := ev.Time
	if occ := net.InjectOccupancy(req.size); occ > 0 {
		start = vclock.Max(start, ps.injectFreeAt)
		ps.injectFreeAt = start.Add(occ)
	}
	// The payload is read now, at clear-to-send time — the copy elided
	// at post. An owned buffer transfers outright; the caller's buffer
	// is copied into a pooled one (the sender is either blocked in Wait
	// or, for Isend, has promised not to touch it — MPI's contract).
	dm := ps.dp.getDm()
	dm.recvReqID = cts.recvReqID
	if req.data != nil {
		if req.ownedData {
			dm.data = req.data
		} else {
			buf := ps.dp.getBuf(len(req.data))
			copy(buf, req.data)
			dm.data = buf
		}
		req.data = nil
		req.ownedData = false
	}
	s.EmitFor(sender, core.Event{
		Time:    start.Add(net.TransferTime(req.src, req.dst, req.size)),
		Kind:    kindData,
		Target:  cts.recvRank,
		Payload: dm,
	})
	ps.dp.putCts(cts)
	completeRequest(ps, req, start.Add(net.SendOverhead(req.src, req.dst, req.size)), nil)
	if w.cfg.Validate {
		ps.checkIndexes("cts")
	}
	wakeIfWaiting(s, ps, req, req.completeAt)
}

// handleData delivers a rendezvous payload at the receiver.
func (w *World) handleData(s *core.SchedCtx, ev *core.Event) {
	dm := ev.Payload.(*dataMsg)
	ps := localState(s, ev.Target)
	if ps == nil {
		dp := w.pools[s.Partition()]
		dp.putBuf(dm.data)
		dm.data = nil
		dp.putDm(dm)
		return
	}
	req := ps.findPending(dm.recvReqID)
	if req == nil || req.done || !req.awaitingData {
		// The request already completed in error (failure detection
		// timed out first); drop the late payload.
		ps.dp.putBuf(dm.data)
		dm.data = nil
		ps.dp.putDm(dm)
		return
	}
	at := ev.Time
	if occ := w.cfg.Net.EjectOccupancy(req.msg.Size); occ > 0 {
		start := vclock.Max(at, ps.ejectFreeAt)
		ps.ejectFreeAt = start.Add(occ)
		at = ps.ejectFreeAt
	}
	req.msg.Data = dm.data
	dm.data = nil
	ps.dp.putDm(dm)
	completeRequest(ps, req, at, nil)
	if w.cfg.Validate {
		ps.checkIndexes("data")
	}
	wakeIfWaiting(s, ps, req, req.completeAt)
}

// handleReqTimeout fires a failure-detection timeout: if the request is
// still pending, it completes in error after the simulated network
// communication timeout, which is how the simulated MPI layer detects
// process failures.
func (w *World) handleReqTimeout(s *core.SchedCtx, ev *core.Event) {
	to := ev.Payload.(reqTimeout)
	ps := localState(s, ev.Target)
	if ps == nil {
		return
	}
	req := ps.findPending(to.reqID)
	if req == nil || req.done {
		return
	}
	completeRequest(ps, req, ev.Time, &ProcFailedError{Rank: to.peer, FailedAt: to.failedAt, Op: req.opName()})
	w.trace(trace.Event{At: ev.Time, Kind: trace.KindDetect, Rank: int32(ev.Target), Peer: int32(to.peer), Aux: int64(to.failedAt)})
	w.m.recordDetection(ev.Target, to.peer, ev.Time)
	if w.cfg.Validate {
		ps.checkIndexes("timeout")
	}
	wakeIfWaiting(s, ps, req, req.completeAt)
}

// handleFailNotify processes the simulator-internal failure notification
// at one partition: every local process records the failed rank and its
// time of failure in its own failed-peer list, and failure-detection
// timeouts are armed for pending requests that involve the failed rank —
// releasing (and failing) unmatched receives, MPI_ANY_SOURCE receives, and
// waited-on sends, per the paper's detection design.
func (w *World) handleFailNotify(s *core.SchedCtx, ev *core.Event) {
	fn := ev.Payload.(failNotify)
	lo, hi := s.LocalRanks()
	for rank := lo; rank < hi; rank++ {
		ps := localState(s, rank)
		if ps == nil {
			continue
		}
		if old, ok := ps.failedPeers[fn.rank]; !ok || fn.at < old {
			if ps.failedPeers == nil {
				ps.failedPeers = make(map[int]vclock.Time)
			}
			ps.failedPeers[fn.rank] = fn.at
		}
		// The pending list is id-ordered and armTimeout never unlinks,
		// so walking it directly is deterministic and allocation-free.
		for req := ps.pendHead; req != nil; req = req.nNext {
			if req.involves(fn.rank) {
				ps.armTimeout(w, req, schedEmitter{s, rank})
			}
		}
		// A blocked probe on the failed rank (or a wildcard probe) wakes
		// to observe the failure.
		for _, pr := range ps.probes {
			if (pr.src == fn.rank || pr.src == AnySource) && s.Blocked(rank) {
				s.Wake(rank, ev.Time, nil)
				break
			}
		}
	}
}

// handleAbortNotify processes the simulator-internal abort notification at
// one partition: every local process unwinds at its first clock update at
// or past the abort time; blocked processes are released immediately.
func (w *World) handleAbortNotify(s *core.SchedCtx, ev *core.Event) {
	an := ev.Payload.(abortNotify)
	lo, hi := s.LocalRanks()
	for rank := lo; rank < hi; rank++ {
		if !s.Alive(rank) {
			continue
		}
		s.SetAbortAt(rank, an.at)
		if s.Blocked(rank) {
			s.Wake(rank, vclock.Max(an.at, ev.Time), nil)
		}
	}
}
