package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Internal collective tags live in the negative tag space so they never
// collide with application tags (which must be non-negative).
const (
	tagBarrierIn = -10 - iota
	tagBarrierOut
	tagBcast
	tagReduce
	tagGather
	tagScatter
	tagAlltoall
	tagAllgather
	// TagULFMBase is the first internal tag available to the ULFM
	// extension package.
	TagULFMBase = -100
)

// Collectives are built from the same point-to-point primitives the
// application uses, so they inherit the pooled-event discipline for free:
// sendTag/recvTag emit by value and only envelope payloads cross the
// engine boundary. Their requests never escape to the application, so
// they are recycled on return, and every hop's message is released (or
// its payload detached) once consumed — a long reduction chain runs on a
// handful of pooled objects.

// sendTag performs a blocking internal send (raw error, no handler),
// recycling the request.
func (c *Comm) sendTag(dst, tag, size int, data []byte) error {
	req := c.isendTag(dst, tag, size, data)
	err := c.env.wait(req)
	c.env.ps.dp.putReq(req)
	return err
}

// sendTagOwned is sendTag for a pooled buffer whose ownership transfers to
// the MPI layer: the payload travels with no copy at either end.
func (c *Comm) sendTagOwned(dst, tag, size int, data []byte) error {
	req := c.isendOwned(dst, tag, size, data)
	err := c.env.wait(req)
	c.env.ps.dp.putReq(req)
	return err
}

// recvTag performs a blocking internal receive (raw error, no handler),
// recycling the request. The caller owns the returned message: it must
// Release it (or detach its Data) once consumed.
func (c *Comm) recvTag(src, tag int) (*Message, error) {
	req := c.irecvTag(src, tag)
	err := c.env.wait(req)
	msg := req.msg
	req.msg = nil
	c.env.ps.dp.putReq(req)
	if err != nil {
		if msg != nil {
			msg.Release()
		}
		return nil, err
	}
	return msg, nil
}

// detachData takes the payload out of a message that is about to escape to
// the caller and releases the header: the buffer leaves the pool's custody,
// the header is recycled.
func detachData(msg *Message) []byte {
	data := msg.Data
	msg.Data = nil
	msg.Release()
	return data
}

// Barrier blocks until every member reaches it. With the paper's linear
// algorithm, every rank reports to rank 0, which then releases every rank;
// a failure anywhere is detected here by timeout — the paper's "failure
// during the checkpoint phase is detected in the following barrier".
func (c *Comm) Barrier() error {
	c.env.w.m.countCollective(c.env.Rank())
	return c.handleError(c.barrier())
}

func (c *Comm) barrier() error {
	if err := c.checkRevoked("barrier"); err != nil {
		return err
	}
	c.env.chargeCall()
	if c.Size() == 1 {
		return nil
	}
	if c.env.w.cfg.Collectives == Tree {
		// A zero-byte reduce-to-0 followed by a broadcast.
		if err := c.treeGatherSignal(tagBarrierIn); err != nil {
			return err
		}
		return c.treeBcastSignal(tagBarrierOut)
	}
	n := c.Size()
	if c.rank == 0 {
		for r := 1; r < n; r++ {
			m, err := c.recvTag(r, tagBarrierIn)
			if err != nil {
				return err
			}
			m.Release()
		}
		for r := 1; r < n; r++ {
			if err := c.sendTag(r, tagBarrierOut, 0, nil); err != nil {
				return err
			}
		}
		return nil
	}
	if err := c.sendTag(0, tagBarrierIn, 0, nil); err != nil {
		return err
	}
	m, err := c.recvTag(0, tagBarrierOut)
	if err != nil {
		return err
	}
	m.Release()
	return nil
}

// Bcast broadcasts root's data to every member; every rank returns the
// broadcast payload. Non-root callers pass nil.
func (c *Comm) Bcast(root int, data []byte) ([]byte, error) {
	c.env.w.m.countCollective(c.env.Rank())
	out, err := c.bcast(root, data, len(data), tagBcast)
	return out, c.handleError(err)
}

func (c *Comm) bcast(root int, data []byte, size, tag int) ([]byte, error) {
	if err := c.checkRevoked("bcast"); err != nil {
		return nil, err
	}
	c.env.chargeCall()
	if c.Size() == 1 {
		return data, nil
	}
	if c.env.w.cfg.Collectives == Tree {
		return c.treeBcast(root, data, size, tag)
	}
	if c.rank == root {
		for r := 0; r < c.Size(); r++ {
			if r == root {
				continue
			}
			if err := c.sendTag(r, tag, size, data); err != nil {
				return nil, err
			}
		}
		return data, nil
	}
	msg, err := c.recvTag(root, tag)
	if err != nil {
		return nil, err
	}
	return detachData(msg), nil
}

// ReduceOp folds src into dst elementwise; both slices have equal length.
type ReduceOp func(dst, src []float64)

// Predefined reduction operations.
var (
	// OpSum adds elementwise.
	OpSum ReduceOp = func(dst, src []float64) {
		for i := range dst {
			dst[i] += src[i]
		}
	}
	// OpMax takes the elementwise maximum.
	OpMax ReduceOp = func(dst, src []float64) {
		for i := range dst {
			dst[i] = math.Max(dst[i], src[i])
		}
	}
	// OpMin takes the elementwise minimum.
	OpMin ReduceOp = func(dst, src []float64) {
		for i := range dst {
			dst[i] = math.Min(dst[i], src[i])
		}
	}
)

// Reduce folds every member's contribution at root with op. The root
// returns the reduction, others return nil.
func (c *Comm) Reduce(root int, contrib []float64, op ReduceOp) ([]float64, error) {
	c.env.w.m.countCollective(c.env.Rank())
	out, err := c.reduce(root, contrib, op)
	return out, c.handleError(err)
}

func (c *Comm) reduce(root int, contrib []float64, op ReduceOp) ([]float64, error) {
	if err := c.checkRevoked("reduce"); err != nil {
		return nil, err
	}
	c.env.chargeCall()
	if c.Size() == 1 {
		return append([]float64(nil), contrib...), nil
	}
	if c.env.w.cfg.Collectives == Tree {
		return c.treeReduce(root, contrib, op)
	}
	if c.rank != root {
		return nil, c.sendTagOwned(root, tagReduce, 8*len(contrib), encodeF64sPool(c.env.ps.dp, contrib))
	}
	acc := append([]float64(nil), contrib...)
	// Linear: fold contributions in rank order, which keeps the result
	// deterministic even for non-associative floating-point ops. Each hop
	// decodes into the per-process scratch and releases its message — the
	// whole fold reuses one buffer and one float slice.
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		msg, err := c.recvTag(r, tagReduce)
		if err != nil {
			return nil, err
		}
		vals := c.env.ps.scratchF64(len(contrib))
		if err := decodeF64sInto(vals, msg.Data); err != nil {
			return nil, err
		}
		op(acc, vals)
		msg.Release()
	}
	return acc, nil
}

// treeReduce folds contributions along a binomial tree rooted at root.
// The fold order differs from the linear algorithm's, so results for
// non-associative floating-point operations may differ in the last bits —
// the usual MPI caveat.
func (c *Comm) treeReduce(root int, contrib []float64, op ReduceOp) ([]float64, error) {
	n := c.Size()
	vrank := (c.rank - root + n) % n
	acc := append([]float64(nil), contrib...)
	for mask := 1; mask < n; mask <<= 1 {
		if vrank&mask != 0 {
			parent := (vrank - mask + root) % n
			return nil, c.sendTagOwned(parent, tagReduce, 8*len(acc), encodeF64sPool(c.env.ps.dp, acc))
		}
		if child := vrank | mask; child < n {
			msg, err := c.recvTag((child+root)%n, tagReduce)
			if err != nil {
				return nil, err
			}
			vals := c.env.ps.scratchF64(len(acc))
			if err := decodeF64sInto(vals, msg.Data); err != nil {
				return nil, err
			}
			op(acc, vals)
			msg.Release()
		}
	}
	return acc, nil
}

// Allreduce folds every member's contribution and distributes the result
// to every member (implemented as a reduce to rank 0 plus a broadcast,
// matching linear-algorithm MPI implementations).
func (c *Comm) Allreduce(contrib []float64, op ReduceOp) ([]float64, error) {
	c.env.w.m.countCollective(c.env.Rank())
	out, err := c.allreduce(contrib, op)
	return out, c.handleError(err)
}

func (c *Comm) allreduce(contrib []float64, op ReduceOp) ([]float64, error) {
	acc, err := c.reduce(0, contrib, op)
	if err != nil {
		return nil, err
	}
	dp := c.env.ps.dp
	var buf []byte
	if c.rank == 0 {
		buf = encodeF64sPool(dp, acc)
	}
	buf, err = c.bcast(0, buf, 8*len(contrib), tagBcast)
	if err != nil {
		return nil, err
	}
	if c.rank == 0 {
		// The root already holds the reduction, and decode(encode(x)) is
		// bit-identical for float64: skip the round-trip and release the
		// broadcast buffer (bcast copied it per send).
		dp.putBuf(buf)
		return acc, nil
	}
	out, err := decodeF64s(buf, len(contrib))
	dp.putBuf(buf)
	return out, err
}

// Gather collects every member's data at root in rank order. The root
// returns one slice per rank, others return nil.
func (c *Comm) Gather(root int, data []byte) ([][]byte, error) {
	c.env.w.m.countCollective(c.env.Rank())
	out, err := c.gather(root, data, tagGather)
	return out, c.handleError(err)
}

func (c *Comm) gather(root int, data []byte, tag int) ([][]byte, error) {
	if err := c.checkRevoked("gather"); err != nil {
		return nil, err
	}
	c.env.chargeCall()
	if c.rank != root {
		return nil, c.sendTag(root, tag, len(data), data)
	}
	out := make([][]byte, c.Size())
	out[root] = append([]byte(nil), data...)
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		msg, err := c.recvTag(r, tag)
		if err != nil {
			return nil, err
		}
		out[r] = detachData(msg)
	}
	return out, nil
}

// Scatter distributes parts[i] from root to rank i; every rank returns its
// part. Non-root callers pass nil.
func (c *Comm) Scatter(root int, parts [][]byte) ([]byte, error) {
	c.env.w.m.countCollective(c.env.Rank())
	out, err := c.scatter(root, parts)
	return out, c.handleError(err)
}

func (c *Comm) scatter(root int, parts [][]byte) ([]byte, error) {
	if err := c.checkRevoked("scatter"); err != nil {
		return nil, err
	}
	c.env.chargeCall()
	if c.rank == root {
		if len(parts) != c.Size() {
			return nil, fmt.Errorf("mpi: scatter needs %d parts, got %d", c.Size(), len(parts))
		}
		for r := 0; r < c.Size(); r++ {
			if r == root {
				continue
			}
			if err := c.sendTag(r, tagScatter, len(parts[r]), parts[r]); err != nil {
				return nil, err
			}
		}
		return append([]byte(nil), parts[root]...), nil
	}
	msg, err := c.recvTag(root, tagScatter)
	if err != nil {
		return nil, err
	}
	return detachData(msg), nil
}

// Allgather collects every member's data at every member, in rank order
// (gather to rank 0 plus a broadcast of the framed result).
func (c *Comm) Allgather(data []byte) ([][]byte, error) {
	c.env.w.m.countCollective(c.env.Rank())
	out, err := c.allgather(data)
	return out, c.handleError(err)
}

func (c *Comm) allgather(data []byte) ([][]byte, error) {
	parts, err := c.gather(0, data, tagAllgather)
	if err != nil {
		return nil, err
	}
	dp := c.env.ps.dp
	var framed []byte
	if c.rank == 0 {
		framed = framePool(dp, parts)
		// The gathered per-rank buffers are folded into the frame now;
		// release the pooled ones (rank 0's own part is a fresh copy).
		for r, p := range parts {
			if r != c.rank {
				dp.putBuf(p)
			}
		}
	}
	framed, err = c.bcast(0, framed, len(framed), tagAllgather)
	if err != nil {
		return nil, err
	}
	out, err := unframe(framed)
	dp.putBuf(framed)
	return out, err
}

// Alltoall sends parts[i] to rank i and returns one received slice per
// rank. Receives are posted before sends so the exchange cannot deadlock
// under the rendezvous protocol.
func (c *Comm) Alltoall(parts [][]byte) ([][]byte, error) {
	c.env.w.m.countCollective(c.env.Rank())
	out, err := c.alltoall(parts)
	return out, c.handleError(err)
}

func (c *Comm) alltoall(parts [][]byte) ([][]byte, error) {
	if err := c.checkRevoked("alltoall"); err != nil {
		return nil, err
	}
	c.env.chargeCall()
	if len(parts) != c.Size() {
		return nil, fmt.Errorf("mpi: alltoall needs %d parts, got %d", c.Size(), len(parts))
	}
	n := c.Size()
	recvs := make([]*Request, 0, n-1)
	reqs := make([]*Request, 0, 2*(n-1))
	for r := 0; r < n; r++ {
		if r == c.rank {
			continue
		}
		req := c.irecvTag(r, tagAlltoall)
		recvs = append(recvs, req)
		reqs = append(reqs, req)
	}
	for r := 0; r < n; r++ {
		if r == c.rank {
			continue
		}
		reqs = append(reqs, c.isendTag(r, tagAlltoall, len(parts[r]), parts[r]))
	}
	if err := c.env.wait(reqs...); err != nil {
		return nil, err
	}
	out := make([][]byte, n)
	out[c.rank] = append([]byte(nil), parts[c.rank]...)
	i := 0
	for r := 0; r < n; r++ {
		if r == c.rank {
			continue
		}
		out[r] = detachData(recvs[i].msg)
		recvs[i].msg = nil
		i++
	}
	// None of the requests escaped; recycle them all.
	dp := c.env.ps.dp
	for _, req := range reqs {
		dp.putReq(req)
	}
	return out, nil
}

// --- Binomial-tree algorithms (collective-algorithm ablation) -----------

// treeBcast broadcasts along a binomial tree rooted at root (the standard
// MPICH-style algorithm).
func (c *Comm) treeBcast(root int, data []byte, size, tag int) ([]byte, error) {
	n := c.Size()
	vrank := (c.rank - root + n) % n
	mask := 1
	for ; mask < n; mask <<= 1 {
		if vrank&mask != 0 {
			parent := (vrank - mask + root) % n
			msg, err := c.recvTag(parent, tag)
			if err != nil {
				return nil, err
			}
			data = detachData(msg)
			break
		}
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if vrank+mask < n {
			child := (vrank + mask + root) % n
			if err := c.sendTag(child, tag, size, data); err != nil {
				return nil, err
			}
		}
	}
	return data, nil
}

// treeBcastSignal broadcasts a zero-byte release along a binomial tree
// rooted at rank 0.
func (c *Comm) treeBcastSignal(tag int) error {
	_, err := c.treeBcast(0, nil, 0, tag)
	return err
}

// treeGatherSignal gathers a zero-byte arrival signal to rank 0 along a
// binomial tree (the reduce direction of a tree barrier).
func (c *Comm) treeGatherSignal(tag int) error {
	n := c.Size()
	vrank := c.rank
	for mask := 1; mask < n; mask <<= 1 {
		if vrank&mask != 0 {
			return c.sendTag(vrank-mask, tag, 0, nil)
		}
		if child := vrank | mask; child < n {
			m, err := c.recvTag(child, tag)
			if err != nil {
				return err
			}
			m.Release()
		}
	}
	return nil
}

// encodeF64s encodes floats little-endian.
func encodeF64s(vals []float64) []byte {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return buf
}

// encodeF64sPool is encodeF64s into a pooled buffer; the caller owns it
// (transfer it with sendTagOwned or release it with putBuf).
func encodeF64sPool(dp *dpPool, vals []float64) []byte {
	buf := dp.getBuf(8 * len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return buf
}

// decodeF64sInto decodes len(dst) floats into dst, the in-place variant of
// decodeF64s for the collectives' scratch slice.
func decodeF64sInto(dst []float64, buf []byte) error {
	if len(buf) != 8*len(dst) {
		return fmt.Errorf("mpi: reduce payload is %d bytes, want %d floats", len(buf), len(dst))
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return nil
}

// scratchF64 returns the process's reusable n-float scratch slice.
func (ps *procState) scratchF64(n int) []float64 {
	if cap(ps.f64s) < n {
		ps.f64s = make([]float64, n)
	}
	return ps.f64s[:n]
}

// decodeF64s decodes exactly n floats. The n bound is checked before the
// 8*n multiply: for huge n the product wraps, which would let a corrupt
// count slip past the length comparison into a giant allocation.
func decodeF64s(buf []byte, n int) ([]float64, error) {
	if n < 0 || n > len(buf)/8 || len(buf) != 8*n {
		return nil, fmt.Errorf("mpi: reduce payload is %d bytes, want %d floats", len(buf), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out, nil
}

// frame length-prefixes a slice of byte slices into one buffer.
func frame(parts [][]byte) []byte {
	total := 4
	for _, p := range parts {
		total += 4 + len(p)
	}
	buf := make([]byte, 0, total)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(parts)))
	for _, p := range parts {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p)))
		buf = append(buf, p...)
	}
	return buf
}

// framePool is frame into a pooled buffer; the caller owns it. The appends
// stay within the buffer's capacity, so the pooled backing array survives
// for a later putBuf.
func framePool(dp *dpPool, parts [][]byte) []byte {
	total := 4
	for _, p := range parts {
		total += 4 + len(p)
	}
	buf := dp.getBuf(total)[:0]
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(parts)))
	for _, p := range parts {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p)))
		buf = append(buf, p...)
	}
	return buf
}

// unframe reverses frame.
func unframe(buf []byte) ([][]byte, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("mpi: framed buffer too short")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	// Each part carries at least its own 4-byte length prefix, so a count
	// beyond len(buf)/4 cannot be satisfied; reject it before sizing the
	// output (a hostile count field would otherwise drive a multi-gigabyte
	// allocation).
	if n < 0 || n > len(buf)/4 {
		return nil, fmt.Errorf("mpi: framed buffer claims %d parts in %d bytes", n, len(buf))
	}
	out := make([][]byte, n)
	for i := 0; i < n; i++ {
		if len(buf) < 4 {
			return nil, fmt.Errorf("mpi: framed buffer truncated at part %d", i)
		}
		l := int(binary.LittleEndian.Uint32(buf))
		buf = buf[4:]
		if len(buf) < l {
			return nil, fmt.Errorf("mpi: framed part %d truncated", i)
		}
		out[i] = append([]byte(nil), buf[:l]...)
		buf = buf[l:]
	}
	return out, nil
}
