package mpi

// Validate-mode invariant checks for the MPI matching state, compiled in
// behind WorldConfig.Validate. Each mutation of the posted-receive index
// or the unexpected queue is followed by a full consistency sweep; a
// clean Finalize additionally runs the conservation sweep (no pending
// requests, no posted receives, no outstanding probes). Violations panic
// with a *check.Violation; in VP context the engine surfaces it as the
// run's error with the diagnostic dump.

import (
	"fmt"

	"xsim/internal/check"
)

// fail raises a violation attributed to this process at its current
// virtual clock.
func (ps *procState) fail(invariant, where, format string, args ...any) {
	rank := ps.env.Rank()
	check.Failf(invariant, rank, ps.env.ctx.NowQuiet(), where, format, args...)
}

// checkIndexes verifies the posted-receive index and unexpected-queue
// invariants:
//
//   - every request filed under (comm, src) is an incomplete, posted,
//     exact-source receive for that key, present in the pending table;
//   - every wildcard entry is an incomplete, posted AnySource receive,
//     present in the pending table;
//   - both structures are ordered by post sequence (MPI's
//     first-match-in-post-order rule depends on it);
//   - every unexpected envelope is filed under its own (comm, src) key,
//     addressed to this rank, in arrival order, and the total count
//     matches the metrics layer's queue-depth gauge;
//   - the pending table holds only incomplete requests under their own
//     ids.
//
// where names the operation just performed, for the violation dump.
func (ps *procState) checkIndexes(where string) {
	rank := ps.env.Rank()
	for k, list := range ps.postedBySrc {
		if len(list) == 0 {
			ps.fail("posted-index", where, "empty posted-receive list retained for key %+v", k)
		}
		var lastSeq uint64
		for i, r := range list {
			switch {
			case r == nil:
				ps.fail("posted-index", where, "nil request in posted list %+v", k)
			case r.kind != recvReq || !r.posted || r.wild:
				ps.fail("posted-index", where, "request %d filed under %+v is not an exact-source posted receive (kind=%d posted=%v wild=%v)",
					r.id, k, r.kind, r.posted, r.wild)
			case r.done:
				ps.fail("posted-index", where, "completed request %d (%s) still filed under %+v", r.id, r.opName(), k)
			case r.postKey != k || r.comm.id != k.comm || r.src != k.src:
				ps.fail("posted-index", where, "request %d filed under %+v has key %+v (comm %d, src %d)",
					r.id, k, r.postKey, r.comm.id, r.src)
			case ps.pending[r.id] != r:
				ps.fail("posted-index", where, "posted receive %d missing from the pending table", r.id)
			case i > 0 && r.postSeq <= lastSeq:
				ps.fail("posted-index", where, "posted list %+v out of post order: seq %d after %d", k, r.postSeq, lastSeq)
			}
			lastSeq = r.postSeq
		}
	}
	var lastWild uint64
	for i, r := range ps.postedWild {
		switch {
		case r == nil:
			ps.fail("posted-index", where, "nil request in wildcard posted list")
		case r.kind != recvReq || !r.posted || !r.wild || r.src != AnySource:
			ps.fail("posted-index", where, "request %d in wildcard list is not a posted AnySource receive (kind=%d posted=%v wild=%v src=%d)",
				r.id, r.kind, r.posted, r.wild, r.src)
		case r.done:
			ps.fail("posted-index", where, "completed request %d still in wildcard posted list", r.id)
		case ps.pending[r.id] != r:
			ps.fail("posted-index", where, "wildcard posted receive %d missing from the pending table", r.id)
		case i > 0 && r.postSeq <= lastWild:
			ps.fail("posted-index", where, "wildcard posted list out of post order: seq %d after %d", r.postSeq, lastWild)
		}
		lastWild = r.postSeq
	}
	total := 0
	for k, list := range ps.unexpBySrc {
		if len(list) == 0 {
			ps.fail("unexpected-queue", where, "empty unexpected list retained for key %+v", k)
		}
		var lastArrive uint64
		for i, env := range list {
			switch {
			case env == nil:
				ps.fail("unexpected-queue", where, "nil envelope in unexpected list %+v", k)
			case env.commID != k.comm || env.src != k.src:
				ps.fail("unexpected-queue", where, "envelope (comm %d, src %d, tag %d) filed under key %+v",
					env.commID, env.src, env.tag, k)
			case env.dst != rank:
				ps.fail("unexpected-queue", where, "envelope for rank %d queued at rank %d", env.dst, rank)
			case i > 0 && env.arriveSeq <= lastArrive:
				ps.fail("unexpected-queue", where, "unexpected list %+v out of arrival order: seq %d after %d",
					k, env.arriveSeq, lastArrive)
			}
			lastArrive = env.arriveSeq
			total++
		}
	}
	if c := ps.env.w.m.counters(rank); c != nil && c.unexpNow != total {
		ps.fail("unexpected-conservation", where,
			"unexpected queue holds %d envelopes but the depth gauge reads %d", total, c.unexpNow)
	}
	for id, r := range ps.pending {
		switch {
		case r == nil:
			ps.fail("pending-index", where, "nil request pending under id %d", id)
		case r.id != id:
			ps.fail("pending-index", where, "request %d pending under id %d", r.id, id)
		case r.done:
			ps.fail("pending-index", where, "completed request %d (%s) still pending", r.id, r.opName())
		}
	}
}

// checkFinalize is the conservation sweep run by a clean Finalize: after
// a correct application quiesces, nothing may remain in flight at this
// process.
func (ps *procState) checkFinalize() {
	ps.checkIndexes("finalize")
	if n := len(ps.pending); n > 0 {
		detail := ""
		for _, r := range ps.pendingInOrder() {
			detail += fmt.Sprintf("\n    request %d: %s peer %d tag %d (comm %d)", r.id, r.opName(), r.peer(), r.tag, r.comm.id)
		}
		ps.fail("finalize-pending", "finalize", "%d requests still pending at Finalize:%s", n, detail)
	}
	if n := len(ps.postedWild); n > 0 {
		ps.fail("finalize-pending", "finalize", "%d wildcard receives still posted at Finalize", n)
	}
	for k, list := range ps.postedBySrc {
		ps.fail("finalize-pending", "finalize", "%d receives still posted for key %+v at Finalize", len(list), k)
	}
	if n := len(ps.probes); n > 0 {
		ps.fail("finalize-pending", "finalize", "%d probes still outstanding at Finalize", n)
	}
}
