package mpi

// Validate-mode invariant checks for the MPI matching state, compiled in
// behind WorldConfig.Validate. Each mutation of the posted-receive index
// or the unexpected queue is followed by a full consistency sweep; a
// clean Finalize additionally runs the conservation sweep (no pending
// requests, no posted receives, no outstanding probes). Violations panic
// with a *check.Violation; in VP context the engine surfaces it as the
// run's error with the diagnostic dump.

import (
	"fmt"

	"xsim/internal/check"
)

// fail raises a violation attributed to this process at its current
// virtual clock.
func (ps *procState) fail(invariant, where, format string, args ...any) {
	rank := ps.env.Rank()
	check.Failf(invariant, rank, ps.env.ctx.NowQuiet(), where, format, args...)
}

// checkIndexes verifies the posted-receive index and unexpected-queue
// invariants:
//
//   - every request linked under (comm, src) is an incomplete, posted,
//     exact-source receive for that key, present in the pending table,
//     with its postQ backpointer set to that list;
//   - every wildcard entry is an incomplete, posted AnySource receive,
//     present in the pending table;
//   - both structures are ordered by post sequence (MPI's
//     first-match-in-post-order rule depends on it);
//   - every unexpected envelope is linked under its own (comm, src) key,
//     addressed to this rank, in arrival order; the per-communicator
//     arrival lists are in arrival order and hold exactly the same
//     envelopes; and the total count matches the metrics layer's
//     queue-depth gauge;
//   - the pending table holds only incomplete requests under their own
//     ids, and the id-ordered pending list threads exactly the table's
//     entries in ascending id order.
//
// Emptied intrusive queue structs are deliberately retained in their maps
// (they are reused by later traffic), so an empty list is not a violation.
//
// where names the operation just performed, for the violation dump.
func (ps *procState) checkIndexes(where string) {
	rank := ps.env.Rank()
	ps.checkPostedList(where, "", &ps.postedWild)
	ps.posted.each(func(k matchKey, q *reqQ) {
		ps.checkPostedList(where, fmt.Sprintf("%+v", k), q)
		for r := q.head; r != nil; r = r.pNext {
			if r.postKey != k || r.comm.id != k.comm || r.src != k.src {
				ps.fail("posted-index", where, "request %d filed under %+v has key %+v (comm %d, src %d)",
					r.id, k, r.postKey, r.comm.id, r.src)
			}
		}
	})

	total := 0
	for k, q := range ps.unexpBySrc {
		var lastArrive uint64
		var prev *envelope
		for env := q.head; env != nil; env = env.sNext {
			switch {
			case env.commID != k.comm || env.src != k.src:
				ps.fail("unexpected-queue", where, "envelope (comm %d, src %d, tag %d) filed under key %+v",
					env.commID, env.src, env.tag, k)
			case env.dst != rank:
				ps.fail("unexpected-queue", where, "envelope for rank %d queued at rank %d", env.dst, rank)
			case prev != nil && env.arriveSeq <= lastArrive:
				ps.fail("unexpected-queue", where, "unexpected list %+v out of arrival order: seq %d after %d",
					k, env.arriveSeq, lastArrive)
			case env.sPrev != prev:
				ps.fail("unexpected-queue", where, "broken sPrev link in unexpected list %+v at seq %d", k, env.arriveSeq)
			}
			lastArrive = env.arriveSeq
			prev = env
			total++
		}
		if q.tail != prev {
			ps.fail("unexpected-queue", where, "unexpected list %+v tail does not match last element", k)
		}
	}
	arrTotal := 0
	for comm, q := range ps.unexpByComm {
		var lastArrive uint64
		var prev *envelope
		for env := q.head; env != nil; env = env.aNext {
			switch {
			case env.commID != comm:
				ps.fail("unexpected-queue", where, "envelope (comm %d) in arrival list of comm %d", env.commID, comm)
			case prev != nil && env.arriveSeq <= lastArrive:
				ps.fail("unexpected-queue", where, "arrival list (comm %d) out of order: seq %d after %d",
					comm, env.arriveSeq, lastArrive)
			case env.aPrev != prev:
				ps.fail("unexpected-queue", where, "broken aPrev link in arrival list (comm %d) at seq %d", comm, env.arriveSeq)
			}
			lastArrive = env.arriveSeq
			prev = env
			arrTotal++
		}
		if q.tail != prev {
			ps.fail("unexpected-queue", where, "arrival list (comm %d) tail does not match last element", comm)
		}
	}
	if arrTotal != total {
		ps.fail("unexpected-queue", where,
			"arrival lists hold %d envelopes but the source lists hold %d", arrTotal, total)
	}
	if c := ps.env.w.m.counters(rank); c != nil && c.unexpNow != total {
		ps.fail("unexpected-conservation", where,
			"unexpected queue holds %d envelopes but the depth gauge reads %d", total, c.unexpNow)
	}

	for id, r := range ps.pendSpill {
		switch {
		case r == nil:
			ps.fail("pending-index", where, "nil request pending under id %d", id)
		case r.id != id:
			ps.fail("pending-index", where, "request %d pending under id %d", r.id, id)
		}
	}
	listed := 0
	var lastID uint64
	var prev *Request
	for r := ps.pendHead; r != nil; r = r.nNext {
		switch {
		case r.done:
			ps.fail("pending-index", where, "completed request %d (%s) still pending", r.id, r.opName())
		case prev != nil && r.id <= lastID:
			ps.fail("pending-index", where, "pending list out of id order: %d after %d", r.id, lastID)
		case r.nPrev != prev:
			ps.fail("pending-index", where, "broken nPrev link in pending list at request %d", r.id)
		case ps.findPending(r.id) != r:
			ps.fail("pending-index", where, "pending-list request %d missing from the pending lookup", r.id)
		}
		lastID = r.id
		prev = r
		listed++
	}
	if ps.pendTail != prev {
		ps.fail("pending-index", where, "pending list tail does not match last element")
	}
	if listed != ps.pendLen {
		ps.fail("pending-index", where, "pending list holds %d requests but the count gauge reads %d", listed, ps.pendLen)
	}
	if ps.pendSpill != nil && listed != len(ps.pendSpill) {
		ps.fail("pending-index", where, "pending list holds %d requests but the spill map holds %d", listed, len(ps.pendSpill))
	}
}

// checkPostedList sweeps one posted-receive list (key == "" means the
// wildcard list).
func (ps *procState) checkPostedList(where, key string, q *reqQ) {
	wild := key == ""
	var lastSeq uint64
	var prev *Request
	for r := q.head; r != nil; r = r.pNext {
		switch {
		case r.kind != recvReq || !r.posted || r.wild != wild:
			ps.fail("posted-index", where, "request %d in posted list %q is not a posted receive of the right flavour (kind=%d posted=%v wild=%v)",
				r.id, key, r.kind, r.posted, r.wild)
		case wild && r.src != AnySource:
			ps.fail("posted-index", where, "request %d in wildcard list has source %d", r.id, r.src)
		case r.done:
			ps.fail("posted-index", where, "completed request %d (%s) still in posted list %q", r.id, r.opName(), key)
		case r.postQ != q:
			ps.fail("posted-index", where, "request %d in posted list %q has a stale postQ backpointer", r.id, key)
		case ps.findPending(r.id) != r:
			ps.fail("posted-index", where, "posted receive %d missing from the pending lookup", r.id)
		case prev != nil && r.postSeq <= lastSeq:
			ps.fail("posted-index", where, "posted list %q out of post order: seq %d after %d", key, r.postSeq, lastSeq)
		case r.pPrev != prev:
			ps.fail("posted-index", where, "broken pPrev link in posted list %q at request %d", key, r.id)
		}
		lastSeq = r.postSeq
		prev = r
	}
	if q.tail != prev {
		ps.fail("posted-index", where, "posted list %q tail does not match last element", key)
	}
}

// checkFinalize is the conservation sweep run by a clean Finalize: after
// a correct application quiesces, nothing may remain in flight at this
// process.
func (ps *procState) checkFinalize() {
	ps.checkIndexes("finalize")
	if n := ps.pendLen; n > 0 {
		detail := ""
		for r := ps.pendHead; r != nil; r = r.nNext {
			detail += fmt.Sprintf("\n    request %d: %s peer %d tag %d (comm %d)", r.id, r.opName(), r.peer(), r.tag, r.comm.id)
		}
		ps.fail("finalize-pending", "finalize", "%d requests still pending at Finalize:%s", n, detail)
	}
	if ps.postedWild.head != nil {
		ps.fail("finalize-pending", "finalize", "wildcard receives still posted at Finalize")
	}
	ps.posted.each(func(k matchKey, q *reqQ) {
		if q.head != nil {
			ps.fail("finalize-pending", "finalize", "receives still posted for key %+v at Finalize", k)
		}
	})
	if n := len(ps.probes); n > 0 {
		ps.fail("finalize-pending", "finalize", "%d probes still outstanding at Finalize", n)
	}
}
