package mpi

// The data-plane pools. One dpPool per engine partition holds free lists
// for every object the point-to-point fast path would otherwise allocate
// per message — envelopes, requests, received-message headers, the
// rendezvous control records — plus a size-classed payload buffer pool,
// following the pooled-event discipline the core engine established: a
// pool is only ever touched by its partition's execution context (the
// partition worker inside a handler, or the VP goroutine currently running
// on that partition), so gets and puts need no locks, and objects that
// travel between ranks simply migrate from the sender's pool to the
// receiver's, exactly like the core's pooled events.
//
// Payload buffers carry ownership-transfer semantics:
//
//   - an eager send copies the caller's bytes into a pooled buffer at post
//     time (the caller may reuse its buffer immediately — the broadcast
//     root does);
//   - a rendezvous send keeps only a reference at post time and copies
//     into a pooled buffer when the clear-to-send arrives, eliding the
//     defensive snapshot entirely — the sender either is blocked at that
//     moment (blocking Send) or has promised not to touch the buffer
//     before Wait (Isend, MPI's contract);
//   - internal senders that already own a pooled buffer (encoded
//     reductions, framed gathers) transfer it outright with no copy at
//     either end;
//   - the receiver's Message owns its Data buffer and may hand both back
//     with Message.Release once the payload has been consumed. Unreleased
//     messages fall to the garbage collector — correct, just slower.

const (
	// Buffer size classes are powers of two from 64 B to 1 MiB; larger
	// payloads are allocated exactly and dropped on release.
	minBufShift = 6
	maxBufShift = 20
	nBufClasses = maxBufShift - minBufShift + 1

	// Free-list caps bound how much memory an idle pool pins.
	maxFreeObjs        = 4096
	maxFreeBufsPerSize = 64
)

// dpPool is one partition's data-plane free lists.
type dpPool struct {
	envs []*envelope
	reqs []*Request
	msgs []*Message
	cts  []*ctsMsg
	dms  []*dataMsg

	bufs [nBufClasses][][]byte

	// Counters, partition-confined like the lists; World.Metrics sums
	// them after the run.
	objHits   uint64
	objMisses uint64
	bufHits   uint64
	bufMisses uint64
	// bufOut tracks pooled payload bytes currently checked out;
	// bufHighWater is its peak — the resident cost of in-flight payloads.
	bufOut       int64
	bufHighWater int64
}

// bufClass returns the size-class index for a payload of the given size,
// or -1 if the size is above the largest pooled class.
func bufClass(size int) int {
	c := 0
	for s := size - 1; s >= 1<<minBufShift; s >>= 1 {
		c++
	}
	if c >= nBufClasses {
		return -1
	}
	return c
}

// getBuf returns a buffer of exactly size bytes backed by pooled capacity
// (its cap is the size class). Oversize requests fall through to the
// allocator.
func (p *dpPool) getBuf(size int) []byte {
	if size <= 0 {
		return nil
	}
	c := bufClass(size)
	if c < 0 {
		p.bufMisses++
		return make([]byte, size)
	}
	list := p.bufs[c]
	if n := len(list) - 1; n >= 0 {
		b := list[n]
		list[n] = nil
		p.bufs[c] = list[:n]
		p.bufHits++
		p.bufCheckout(int64(cap(b)))
		return b[:size]
	}
	p.bufMisses++
	b := make([]byte, size, 1<<(minBufShift+c))
	p.bufCheckout(int64(cap(b)))
	return b
}

// putBuf returns a buffer obtained from getBuf. Buffers whose capacity is
// not an exact pooled class (oversize allocations, foreign slices) are
// dropped to the garbage collector.
func (p *dpPool) putBuf(b []byte) {
	if b == nil {
		return
	}
	c := bufClass(cap(b))
	if c < 0 || cap(b) != 1<<(minBufShift+c) {
		return
	}
	p.bufOut -= int64(cap(b))
	if len(p.bufs[c]) < maxFreeBufsPerSize {
		p.bufs[c] = append(p.bufs[c], b[:cap(b)])
	}
}

func (p *dpPool) bufCheckout(n int64) {
	p.bufOut += n
	if p.bufOut > p.bufHighWater {
		p.bufHighWater = p.bufOut
	}
}

// getEnv returns a zeroed envelope from the free list.
func (p *dpPool) getEnv() *envelope {
	if n := len(p.envs) - 1; n >= 0 {
		e := p.envs[n]
		p.envs[n] = nil
		p.envs = p.envs[:n]
		p.objHits++
		return e
	}
	p.objMisses++
	return new(envelope)
}

// putEnv recycles an envelope. The caller must have transferred or
// released env.data first — putEnv drops the reference without returning
// the buffer.
func (p *dpPool) putEnv(e *envelope) {
	*e = envelope{}
	if len(p.envs) < maxFreeObjs {
		p.envs = append(p.envs, e)
	}
}

// getReq returns a zeroed request from the free list.
func (p *dpPool) getReq() *Request {
	if n := len(p.reqs) - 1; n >= 0 {
		r := p.reqs[n]
		p.reqs[n] = nil
		p.reqs = p.reqs[:n]
		p.objHits++
		return r
	}
	p.objMisses++
	return new(Request)
}

// putReq recycles a request. Only internal requests that never escape to
// the application (blocking Send/Recv wrappers, collective internals) may
// be recycled: the next getReq hands the same pointer to an unrelated
// operation. The request must be complete and out of every index — stale
// in-flight events cannot resurrect it because handlers look requests up
// by id in the pending table, and a recycled request is reissued under a
// fresh id.
func (p *dpPool) putReq(r *Request) {
	*r = Request{}
	if len(p.reqs) < maxFreeObjs {
		p.reqs = append(p.reqs, r)
	}
}

// getMsg returns a zeroed message header from the free list.
func (p *dpPool) getMsg() *Message {
	if n := len(p.msgs) - 1; n >= 0 {
		m := p.msgs[n]
		p.msgs[n] = nil
		p.msgs = p.msgs[:n]
		p.objHits++
		return m
	}
	p.objMisses++
	return new(Message)
}

// putMsg recycles a message header (not its Data — detach or release that
// separately).
func (p *dpPool) putMsg(m *Message) {
	*m = Message{}
	if len(p.msgs) < maxFreeObjs {
		p.msgs = append(p.msgs, m)
	}
}

func (p *dpPool) getCts() *ctsMsg {
	if n := len(p.cts) - 1; n >= 0 {
		c := p.cts[n]
		p.cts[n] = nil
		p.cts = p.cts[:n]
		p.objHits++
		return c
	}
	p.objMisses++
	return new(ctsMsg)
}

func (p *dpPool) putCts(c *ctsMsg) {
	*c = ctsMsg{}
	if len(p.cts) < maxFreeObjs {
		p.cts = append(p.cts, c)
	}
}

func (p *dpPool) getDm() *dataMsg {
	if n := len(p.dms) - 1; n >= 0 {
		d := p.dms[n]
		p.dms[n] = nil
		p.dms = p.dms[:n]
		p.objHits++
		return d
	}
	p.objMisses++
	return new(dataMsg)
}

func (p *dpPool) putDm(d *dataMsg) {
	*d = dataMsg{}
	if len(p.dms) < maxFreeObjs {
		p.dms = append(p.dms, d)
	}
}
