package mpi

import (
	"bytes"
	"testing"

	"xsim/internal/core"
	"xsim/internal/procmodel"
	"xsim/internal/vclock"
)

// newWorldT builds an engine+world (validate on) and returns both, so
// tests can schedule failures up front and read pool metrics after Run.
func newWorldT(t *testing.T, n, workers int, failures map[int]vclock.Time) (*core.Engine, *World) {
	t.Helper()
	eng, err := core.New(core.Config{NumVPs: n, Workers: workers, Lookahead: vclock.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(eng, WorldConfig{Net: testNet(n), Proc: procmodel.Paper(), Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	for r, at := range failures {
		if err := eng.ScheduleFailure(r, at); err != nil {
			t.Fatal(err)
		}
	}
	return eng, w
}

// TestRecvNoAliasAfterRelease pins the buffer-ownership contract: bytes
// copied out of a received message survive Release, a released buffer is
// actually reused for later traffic, and the later message carries its own
// payload (no stale bytes from the previous occupant).
func TestRecvNoAliasAfterRelease(t *testing.T) {
	eng, w := newWorldT(t, 2, 1, nil)
	_ = eng
	first := bytes.Repeat([]byte{0xAA}, 64)
	second := bytes.Repeat([]byte{0xBB}, 64)
	if _, err := w.Run(func(e *Env) {
		c := e.World()
		switch e.Rank() {
		case 0:
			if err := c.Send(1, 1, first); err != nil {
				t.Errorf("send 1: %v", err)
			}
			m, err := c.Recv(1, 2)
			if err != nil {
				t.Errorf("recv echo: %v", err)
			} else {
				if !bytes.Equal(m.Data, second) {
					t.Errorf("echo got %x, want %x", m.Data[:4], second[:4])
				}
				m.Release()
			}
		case 1:
			m1, err := c.Recv(0, 1)
			if err != nil {
				t.Errorf("recv 1: %v", err)
				e.Finalize()
				return
			}
			copied := append([]byte(nil), m1.Data...)
			stale := m1.Data // deliberately kept across Release to prove reuse
			m1.Release()
			// This eager send snapshots `second` at post time; the pool
			// hands it the buffer just released, so the stale alias now
			// shows the new payload. This is exactly why the contract
			// forbids touching Data after Release — and the copy taken
			// beforehand must be unaffected.
			if err := c.Send(0, 2, second); err != nil {
				t.Errorf("send echo: %v", err)
			}
			if !bytes.Equal(copied, first) {
				t.Errorf("copy taken before Release was corrupted: %x", copied[:4])
			}
			if !bytes.Equal(stale, second) {
				t.Errorf("expected the released buffer to be reused for the next same-size send")
			}
		}
		e.Finalize()
	}); err != nil {
		t.Fatal(err)
	}
	m := w.Metrics()
	if m.BufHits == 0 {
		t.Errorf("expected pooled-buffer reuse, metrics report %d hits (%d misses)", m.BufHits, m.BufMisses)
	}
}

// TestBroadcastRootBufferReuse pins the eager copy-at-post rule: a root
// that reuses (and mutates) one buffer across consecutive broadcasts must
// not corrupt in-flight payloads.
func TestBroadcastRootBufferReuse(t *testing.T) {
	const n = 4
	got := make([][2]byte, n)
	eng, w := newWorldT(t, n, 2, nil)
	_ = eng
	if _, err := w.Run(func(e *Env) {
		c := e.World()
		buf := make([]byte, 128)
		// Record the first byte right after each broadcast: at the root,
		// Bcast returns the caller's own buffer, which the app is free to
		// mutate once the call returns.
		if e.Rank() == 0 {
			for i := range buf {
				buf[i] = 0x11
			}
			r1, err := c.Bcast(0, buf)
			if err != nil {
				t.Errorf("bcast 1: %v", err)
			} else {
				got[0][0] = r1[0]
			}
			// Mutate the same buffer immediately: the sends above must
			// have snapshotted it.
			for i := range buf {
				buf[i] = 0x22
			}
			r2, err := c.Bcast(0, buf)
			if err != nil {
				t.Errorf("bcast 2: %v", err)
			} else {
				got[0][1] = r2[0]
			}
		} else {
			r1, err := c.Bcast(0, nil)
			if err != nil {
				t.Errorf("bcast 1: %v", err)
			} else {
				got[e.Rank()][0] = r1[0]
			}
			r2, err := c.Bcast(0, nil)
			if err != nil {
				t.Errorf("bcast 2: %v", err)
			} else {
				got[e.Rank()][1] = r2[0]
			}
		}
		e.Finalize()
	}); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < n; r++ {
		if got[r] != [2]byte{0x11, 0x22} {
			t.Errorf("rank %d saw broadcasts %x, want [11 22]", r, got[r])
		}
	}
}

// TestArmTimeoutAnySourceTieBreak is the regression test for the
// AnySource failure-detection scan with several failed peers: when the
// detection deadlines tie, the lowest-ranked peer wins, and the reported
// time of failure must be that peer's — captured during the scan, not
// looked up afterwards.
func TestArmTimeoutAnySourceTieBreak(t *testing.T) {
	tof1 := vclock.Time(10 * vclock.Microsecond)
	tof2 := vclock.Time(20 * vclock.Microsecond)
	eng, w := newWorldT(t, 3, 1, map[int]vclock.Time{1: tof1, 2: tof2})
	_ = eng
	if _, err := w.Run(func(e *Env) {
		c := e.World()
		c.SetErrorHandler(ErrorsReturn)
		if e.Rank() != 0 {
			// Ranks 1 and 2 idle until their scheduled failures.
			e.Sleep(vclock.Millisecond)
			e.Finalize()
			return
		}
		// Post the wildcard receive well after both failures are known:
		// both peers' deadlines are then max(post, tof) + timeout, which
		// ties — rank 1 must win, with rank 1's time of failure.
		e.Sleep(vclock.Millisecond)
		_, err := c.Recv(AnySource, 5)
		pfe, ok := err.(*ProcFailedError)
		if !ok {
			t.Errorf("wildcard recv returned %v, want ProcFailedError", err)
		} else {
			if pfe.Rank != 1 {
				t.Errorf("tie-break picked rank %d, want 1", pfe.Rank)
			}
			if pfe.FailedAt != tof1 {
				t.Errorf("reported time of failure %v, want %v (rank 1's)", pfe.FailedAt, tof1)
			}
		}
		e.Finalize()
	}); err != nil {
		t.Fatal(err)
	}
}

// TestPoolMetrics checks the data-plane counters surface through
// World.Metrics and aggregate the way MetricsSnapshot.Add documents.
func TestPoolMetrics(t *testing.T) {
	eng, w := newWorldT(t, 2, 1, nil)
	_ = eng
	payload := bytes.Repeat([]byte{0x5A}, 48)
	if _, err := w.Run(func(e *Env) {
		c := e.World()
		// Ping-pong so every Release precedes the next same-size send:
		// after the first round-trip the payload pool serves every buffer.
		for i := 0; i < 32; i++ {
			if e.Rank() == 0 {
				if err := c.Send(1, 1, payload); err != nil {
					t.Errorf("send: %v", err)
				}
				m, err := c.Recv(1, 2)
				if err != nil {
					t.Errorf("recv: %v", err)
				} else {
					m.Release()
				}
			} else {
				m, err := c.Recv(0, 1)
				if err != nil {
					t.Errorf("recv: %v", err)
				} else {
					m.Release()
				}
				if err := c.Send(0, 2, payload); err != nil {
					t.Errorf("send: %v", err)
				}
			}
		}
		e.Finalize()
	}); err != nil {
		t.Fatal(err)
	}
	m := w.Metrics()
	if m.PoolHits == 0 {
		t.Errorf("expected object-pool hits after 32 pooled sends, got 0 (misses %d)", m.PoolMisses)
	}
	if m.BufHits == 0 {
		t.Errorf("expected buffer-pool hits after released receives, got 0 (misses %d)", m.BufMisses)
	}
	if m.BufHighWater <= 0 {
		t.Errorf("expected a positive payload high-water mark, got %d", m.BufHighWater)
	}
	var agg MetricsSnapshot
	agg.Add(m)
	agg.Add(MetricsSnapshot{BufHighWater: 1})
	if agg.PoolHits != m.PoolHits || agg.BufHighWater != m.BufHighWater {
		t.Errorf("Add mis-aggregated pool counters: %+v vs %+v", agg, m)
	}
}
