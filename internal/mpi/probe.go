package mpi

import (
	"fmt"

	"xsim/internal/trace"
	"xsim/internal/vclock"
)

// ErrCancelled is the error a cancelled request completes with.
type CancelledError struct {
	// Op names the cancelled operation.
	Op string
}

// Error implements error.
func (e *CancelledError) Error() string { return fmt.Sprintf("mpi: %s cancelled", e.Op) }

// probeRec is one outstanding blocking probe.
type probeRec struct {
	comm, src, tag int // src is a world rank or AnySource
}

// matchesEnvelope reports whether the probe accepts an envelope.
func (p *probeRec) matchesEnvelope(env *envelope) bool {
	if p.comm != env.commID {
		return false
	}
	if p.src != AnySource && p.src != env.src {
		return false
	}
	if p.tag == AnyTag {
		return env.tag >= 0 // wildcards never see internal traffic
	}
	return p.tag == env.tag
}

// peekUnexpected finds (without consuming) the earliest-arrived unexpected
// envelope matching (comm, src, tag); src is a world rank or AnySource.
// Both branches walk arrival-ordered lists, so the first compatible entry
// is the answer (the AnySource branch walks the communicator's arrival
// list directly, like takeUnexpected).
func (ps *procState) peekUnexpected(comm, src, tag int) *envelope {
	match := func(env *envelope) bool {
		if tag == AnyTag {
			return env.tag >= 0 // wildcards never see internal traffic
		}
		return tag == env.tag
	}
	if src != AnySource {
		if q := ps.unexpBySrc[matchKey{comm, src}]; q != nil {
			for env := q.head; env != nil; env = env.sNext {
				if match(env) {
					return env
				}
			}
		}
		return nil
	}
	if q := ps.unexpByComm[comm]; q != nil {
		for env := q.head; env != nil; env = env.aNext {
			if match(env) {
				return env
			}
		}
	}
	return nil
}

// Iprobe checks without blocking whether a matching message has arrived
// (MPI_Iprobe): it returns the envelope information of the earliest match
// without consuming it, or ok=false. Only messages whose envelope has
// reached this process are visible — exactly MPI's semantics.
func (c *Comm) Iprobe(src, tag int) (*Message, bool, error) {
	e := c.env
	e.chargeCall()
	if err := c.checkRevoked("iprobe"); err != nil {
		return nil, false, c.handleError(err)
	}
	worldSrc, err := c.probeSrc(src)
	if err != nil {
		return nil, false, c.handleError(err)
	}
	env := e.ps.peekUnexpected(c.id, worldSrc, tag)
	if env == nil {
		return nil, false, nil
	}
	return &Message{Src: env.srcCommRank, Tag: env.tag, Size: env.size}, true, nil
}

// Probe blocks until a matching message has arrived and returns its
// envelope information without consuming it (MPI_Probe). Probing a failed
// process completes in error after the detection timeout, like a receive.
func (c *Comm) Probe(src, tag int) (*Message, error) {
	e := c.env
	e.chargeCall()
	if err := c.checkRevoked("probe"); err != nil {
		return nil, c.handleError(err)
	}
	worldSrc, err := c.probeSrc(src)
	if err != nil {
		return nil, c.handleError(err)
	}
	postClock := e.ctx.NowQuiet()
	for {
		if env := e.ps.peekUnexpected(c.id, worldSrc, tag); env != nil {
			return &Message{Src: env.srcCommRank, Tag: env.tag, Size: env.size}, nil
		}
		// A relevant failed peer means no message can come: complete in
		// error after the detection timeout, like a receive would.
		if peer, tof, ok := e.ps.relevantFailure(worldSrc); ok {
			at := vclock.Max(postClock, tof).Add(e.w.cfg.Net.Timeout(e.Rank(), peer))
			now := vclock.Max(at, e.ctx.NowQuiet())
			e.ctx.AdvanceTo(now)
			e.w.trace(trace.Event{At: now, Kind: trace.KindDetect, Rank: int32(e.Rank()), Peer: int32(peer), Aux: int64(tof)})
			e.w.m.recordDetection(e.Rank(), peer, now)
			return nil, c.handleError(&ProcFailedError{Rank: peer, FailedAt: tof, Op: "probe"})
		}
		if e.prog {
			// A program VP cannot block; ProbeStep is the program-mode
			// form of this probe.
			panic(&ClosureOnlyError{Op: fmt.Sprintf("probe: src %d tag %d (comm %d)", worldSrc, tag, c.id), Rank: e.Rank()})
		}
		pr := &probeRec{comm: c.id, src: worldSrc, tag: tag}
		e.ps.probes = append(e.ps.probes, pr)
		// Block with the procState: the reason string is formatted lazily
		// (procState.BlockReason) only if a deadlock report prints it.
		e.ctx.Block(e.ps)
		e.ps.removeProbe(pr)
	}
}

// probeSrc validates and translates a probe source rank.
func (c *Comm) probeSrc(src int) (int, error) {
	if src == AnySource {
		return AnySource, nil
	}
	if src < 0 || src >= c.n {
		return 0, fmt.Errorf("mpi: probe source rank %d out of range [0,%d)", src, c.n)
	}
	return c.WorldRank(src), nil
}

// relevantFailure returns the earliest-detectable failed peer relevant to
// an operation on worldSrc (or any peer, for AnySource), deterministically.
func (ps *procState) relevantFailure(worldSrc int) (peer int, tof vclock.Time, ok bool) {
	if worldSrc != AnySource {
		t, dead := ps.failedPeers[worldSrc]
		return worldSrc, t, dead
	}
	best := vclock.Never
	bestPeer := -1
	for p, t := range ps.failedPeers {
		if t < best || (t == best && p < bestPeer) {
			best, bestPeer = t, p
		}
	}
	if bestPeer < 0 {
		return 0, 0, false
	}
	return bestPeer, best, true
}

// removeProbe unregisters an outstanding probe.
func (ps *procState) removeProbe(pr *probeRec) {
	for i, p := range ps.probes {
		if p == pr {
			ps.probes = append(ps.probes[:i], ps.probes[i+1:]...)
			return
		}
	}
}

// Cancel cancels a pending request (MPI_Cancel): the request completes
// with CancelledError at the current virtual time. Cancelling a completed
// request reports false. A cancelled receive leaves later-arriving
// messages in the unexpected queue for other receives; a cancelled
// rendezvous send drops the eventual clear-to-send.
func (c *Comm) Cancel(r *Request) bool {
	e := c.env
	e.chargeCall()
	if r.done {
		return false
	}
	completeRequest(e.ps, r, e.ctx.NowQuiet(), &CancelledError{Op: r.opName()})
	return true
}
