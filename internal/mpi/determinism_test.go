package mpi

import (
	"math/rand"
	"testing"

	"xsim/internal/core"
	"xsim/internal/procmodel"
	"xsim/internal/vclock"
)

// determinismOutcome captures everything the cross-check compares.
type determinismOutcome struct {
	clocks []vclock.Time
	deaths []core.DeathReason
	busy   []vclock.Duration
	waited []vclock.Duration
	events uint64
	resume uint64
}

// runDeterminismWorkload drives a randomized workload that mixes exact-source
// p2p, MPI_ANY_SOURCE receives, collectives, and injected process failures —
// every scheduler path the hot-path rewrite touches. Communicators use
// ErrorsReturn so failure-detection errors surface to the application (which
// ignores them and keeps going) instead of aborting the run.
func runDeterminismWorkload(t *testing.T, seed int64, workers int) determinismOutcome {
	t.Helper()
	const ranks, msgs = 12, 90
	script := randomScript(rand.New(rand.NewSource(seed)), ranks, msgs)

	eng, err := core.New(core.Config{NumVPs: ranks, Workers: workers, Lookahead: vclock.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(eng, WorldConfig{Net: testNet(ranks), Proc: procmodel.Paper()})
	if err != nil {
		t.Fatal(err)
	}
	frng := rand.New(rand.NewSource(seed ^ 0x0ddba11))
	for i := 0; i < 2; i++ {
		rank := frng.Intn(ranks)
		at := vclock.Time(frng.Int63n(int64(80 * vclock.Millisecond)))
		if err := eng.ScheduleFailure(rank, at); err != nil {
			t.Fatal(err)
		}
	}

	res, err := w.Run(func(e *Env) {
		defer e.Finalize()
		c := e.World()
		c.SetErrorHandler(ErrorsReturn)
		me := e.Rank()
		myRng := rand.New(rand.NewSource(seed*31 + int64(me)))

		// Phase 1: random p2p. Odd-indexed script messages are received
		// with an exact source, even-indexed ones via ANY_SOURCE (the
		// unique tag keeps the pairing deterministic either way).
		var reqs []*Request
		for i, m := range script {
			if m.dst != me {
				continue
			}
			src := m.src
			if i%2 == 0 {
				src = AnySource
			}
			r, err := c.Irecv(src, m.tag)
			if err != nil {
				return
			}
			reqs = append(reqs, r)
		}
		for _, m := range script {
			if m.src != me {
				continue
			}
			e.Elapse(vclock.Duration(myRng.Intn(500)) * vclock.Microsecond)
			r, err := c.IsendN(m.dst, m.tag, m.size)
			if err != nil {
				return
			}
			reqs = append(reqs, r)
		}
		c.Waitall(reqs) // errors expected once failures are detected

		// Phase 2: collectives over the surviving ranks; errors from
		// detected failures are ignored, the calls must still terminate
		// deterministically via the timeout-based detection.
		c.Allreduce([]float64{float64(me)}, OpSum)
		c.Bcast(0, []byte{byte(me)})
		c.Barrier()
	})
	if err != nil {
		t.Fatalf("seed %d workers %d: %v", seed, workers, err)
	}
	return determinismOutcome{
		clocks: res.FinalClocks,
		deaths: res.Deaths,
		busy:   res.Busy,
		waited: res.Waited,
		events: res.EventsProcessed,
		resume: res.Resumes,
	}
}

// TestDeterminismCrossCheck is the tentpole's safety net: the same randomized
// MPI workload (mixed p2p, ANY_SOURCE, collectives, injected failures) must
// produce identical per-rank results at Workers ∈ {1, 2, 4}, and identical
// engine work counts run-to-run at a fixed worker count. (Event counts are
// not compared across worker counts: simulator-internal failure notifications
// are delivered once per partition, so their number legitimately scales with
// the partition count.)
func TestDeterminismCrossCheck(t *testing.T) {
	for seed := int64(100); seed < 106; seed++ {
		ref := runDeterminismWorkload(t, seed, 1)
		for _, workers := range []int{2, 4} {
			got := runDeterminismWorkload(t, seed, workers)
			for r := range ref.clocks {
				if got.clocks[r] != ref.clocks[r] {
					t.Fatalf("seed %d workers %d: rank %d clock %v != sequential %v",
						seed, workers, r, got.clocks[r], ref.clocks[r])
				}
				if got.deaths[r] != ref.deaths[r] {
					t.Fatalf("seed %d workers %d: rank %d death %v != sequential %v",
						seed, workers, r, got.deaths[r], ref.deaths[r])
				}
				if got.busy[r] != ref.busy[r] || got.waited[r] != ref.waited[r] {
					t.Fatalf("seed %d workers %d: rank %d busy/wait %v/%v != sequential %v/%v",
						seed, workers, r, got.busy[r], got.waited[r], ref.busy[r], ref.waited[r])
				}
			}
		}
		// Run-to-run: the processed event and resume counts are part of
		// the deterministic contract at a fixed worker count.
		for _, workers := range []int{1, 2, 4} {
			a := runDeterminismWorkload(t, seed, workers)
			b := runDeterminismWorkload(t, seed, workers)
			if a.events != b.events || a.resume != b.resume {
				t.Fatalf("seed %d workers %d: work counts not repeatable: %d/%d vs %d/%d",
					seed, workers, a.events, a.resume, b.events, b.resume)
			}
		}
	}
}
