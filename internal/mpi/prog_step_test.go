package mpi

import (
	"bytes"
	"testing"

	"xsim/internal/vclock"
)

// The tests in this file pin the tentpole property of the step-based
// blocking surface: a program built from SendNStep/RecvStep/SleepStep/
// ProbeStep/CollectiveState is observationally identical (per-rank final
// clocks, death reasons, payload contents) to the closure program built
// from SendN/Recv/Sleep/Probe and the blocking collectives, under both
// the linear and the binomial-tree collective algorithms, at one and at
// several workers.

// stepPat builds a deterministic payload for rank r in context k.
func stepPat(r, k int) []byte {
	b := make([]byte, 8+(r+k)%5)
	for i := range b {
		b[i] = byte(r*31 + k*7 + i)
	}
	return b
}

// stepOpsReduceWant is the expected sum-reduction over n ranks of the
// per-rank contribution {rank, 1}.
func stepOpsReduceWant(n int) []float64 {
	return []float64{float64(n*(n-1)) / 2, float64(n)}
}

// checkF64s compares a float reduction result.
func checkF64s(t *testing.T, mode string, rank int, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s rank %d: reduction len %d, want %d", mode, rank, len(got), len(want))
		return
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("%s rank %d: reduction[%d] = %v, want %v", mode, rank, i, got[i], want[i])
		}
	}
}

// closureStepOps is the closure-mode reference workload: a rendezvous
// ring, a rank-dependent sleep, a probe/recv pairing, then every
// collective.
func closureStepOps(t *testing.T, n int) func(*Env) {
	return func(e *Env) {
		c := e.World()
		rank := e.Rank()

		// Rendezvous ring: above-eager send to the right, receive from
		// the left.
		recv, err := c.Irecv((rank+n-1)%n, 1)
		if err != nil {
			return
		}
		if err := c.SendN((rank+1)%n, 1, 1<<20); err != nil {
			return
		}
		if err := c.Waitall([]*Request{recv}); err != nil {
			return
		}
		c.Free(recv)

		// Rank-dependent sleep.
		e.Sleep(vclock.Duration(rank%3+1) * vclock.Microsecond)

		// Probe/recv pairing: even ranks send to their odd neighbour
		// after a rank-dependent delay; odd ranks probe then receive.
		if rank%2 == 0 {
			e.Elapse(vclock.Duration(rank+1) * vclock.Microsecond)
			if err := c.Send(rank+1, 7, stepPat(rank, 2)); err != nil {
				return
			}
		} else {
			pm, err := c.Probe(rank-1, 7)
			if err != nil {
				return
			}
			m, err := c.Recv(pm.Src, pm.Tag)
			if err != nil {
				return
			}
			if !bytes.Equal(m.Data, stepPat(rank-1, 2)) {
				t.Errorf("closure rank %d: probe recv = %v, want %v", rank, m.Data, stepPat(rank-1, 2))
			}
			m.Release()
		}

		// Every collective, content-checked.
		if err := c.Barrier(); err != nil {
			return
		}
		var bin []byte
		if rank == 1 {
			bin = stepPat(1, 99)
		}
		bout, err := c.Bcast(1, bin)
		if err != nil {
			return
		}
		if !bytes.Equal(bout, stepPat(1, 99)) {
			t.Errorf("closure rank %d: bcast = %v, want %v", rank, bout, stepPat(1, 99))
		}
		contrib := []float64{float64(rank), 1}
		red, err := c.Reduce(2, contrib, OpSum)
		if err != nil {
			return
		}
		if rank == 2 {
			checkF64s(t, "closure", rank, red, stepOpsReduceWant(n))
		}
		all, err := c.Allreduce(contrib, OpSum)
		if err != nil {
			return
		}
		checkF64s(t, "closure", rank, all, stepOpsReduceWant(n))
		gout, err := c.Gather(0, stepPat(rank, 4))
		if err != nil {
			return
		}
		if rank == 0 {
			for r := 0; r < n; r++ {
				if !bytes.Equal(gout[r], stepPat(r, 4)) {
					t.Errorf("closure: gather[%d] = %v, want %v", r, gout[r], stepPat(r, 4))
				}
			}
		}
		var parts [][]byte
		if rank == 1 {
			parts = make([][]byte, n)
			for r := range parts {
				parts[r] = stepPat(r, 5)
			}
		}
		part, err := c.Scatter(1, parts)
		if err != nil {
			return
		}
		if !bytes.Equal(part, stepPat(rank, 5)) {
			t.Errorf("closure rank %d: scatter = %v, want %v", rank, part, stepPat(rank, 5))
		}
		ag, err := c.Allgather(stepPat(rank, 6))
		if err != nil {
			return
		}
		for r := 0; r < n; r++ {
			if !bytes.Equal(ag[r], stepPat(r, 6)) {
				t.Errorf("closure rank %d: allgather[%d] = %v, want %v", rank, r, ag[r], stepPat(r, 6))
			}
		}
		a2a := make([][]byte, n)
		for r := range a2a {
			a2a[r] = stepPat(rank, r)
		}
		aout, err := c.Alltoall(a2a)
		if err != nil {
			return
		}
		for r := 0; r < n; r++ {
			if !bytes.Equal(aout[r], stepPat(r, rank)) {
				t.Errorf("closure rank %d: alltoall[%d] = %v, want %v", rank, r, aout[r], stepPat(r, rank))
			}
		}
		e.Finalize()
	}
}

// stepOpsProg is the program-mode twin of closureStepOps, built from the
// step-based states.
type stepOpsProg struct {
	t  *testing.T
	n  int
	pc int

	posted bool
	recv   *Request
	ws     WaitState
	ss     SendState
	sl     SleepState
	pbs    ProbeState
	rs     RecvState
	pm     *Message

	cq    int
	armed bool
	cs    CollectiveState
}

// bail ends the program on error, matching the closure's early return
// (no Finalize: the rank counts as failed in both modes).
func (p *stepOpsProg) bail() (any, bool) { return nil, true }

func (p *stepOpsProg) Step(e *Env, wake any) (any, bool) {
	c := e.World()
	rank, n := e.Rank(), p.n
	for {
		switch p.pc {
		case 0: // rendezvous ring
			if !p.posted {
				p.posted = true
				var err error
				if p.recv, err = c.Irecv((rank+n-1)%n, 1); err != nil {
					return p.bail()
				}
			}
			done, park, err := c.SendNStep(&p.ss, (rank+1)%n, 1, 1<<20)
			if !done {
				return park, false
			}
			if err != nil {
				return p.bail()
			}
			p.ws.Begin(p.recv)
			p.pc = 1
		case 1:
			done, park, err := c.WaitallStep(&p.ws)
			if !done {
				return park, false
			}
			if err != nil {
				return p.bail()
			}
			c.Free(p.recv)
			p.recv = nil
			p.pc = 2
		case 2: // rank-dependent sleep
			done, park := e.SleepStep(&p.sl, vclock.Duration(rank%3+1)*vclock.Microsecond)
			if !done {
				return park, false
			}
			p.pc = 3
		case 3: // probe/recv pairing
			if rank%2 == 0 {
				if p.ss.req == nil && p.pm == nil {
					e.Elapse(vclock.Duration(rank+1) * vclock.Microsecond)
				}
				done, park, err := c.SendStep(&p.ss, rank+1, 7, stepPat(rank, 2))
				if !done {
					p.pm = &Message{} // mark the pre-send delay as charged
					return park, false
				}
				p.pm = nil
				if err != nil {
					return p.bail()
				}
				p.pc = 5
				continue
			}
			done, park, msg, err := c.ProbeStep(&p.pbs, rank-1, 7)
			if !done {
				return park, false
			}
			if err != nil {
				return p.bail()
			}
			p.pm = msg
			p.pc = 4
		case 4:
			done, park, msg, err := c.RecvStep(&p.rs, p.pm.Src, p.pm.Tag)
			if !done {
				return park, false
			}
			if err != nil {
				return p.bail()
			}
			if !bytes.Equal(msg.Data, stepPat(rank-1, 2)) {
				p.t.Errorf("prog rank %d: probe recv = %v, want %v", rank, msg.Data, stepPat(rank-1, 2))
			}
			msg.Release()
			p.pm = nil
			p.pc = 5
		case 5: // collectives, content-checked
			if p.cq == 8 {
				e.Finalize()
				return nil, true
			}
			if !p.armed {
				p.armed = true
				switch p.cq {
				case 0:
					p.cs.BeginBarrier()
				case 1:
					var bin []byte
					if rank == 1 {
						bin = stepPat(1, 99)
					}
					p.cs.BeginBcast(1, bin)
				case 2:
					p.cs.BeginReduce(2, []float64{float64(rank), 1}, OpSum)
				case 3:
					p.cs.BeginAllreduce([]float64{float64(rank), 1}, OpSum)
				case 4:
					p.cs.BeginGather(0, stepPat(rank, 4))
				case 5:
					var parts [][]byte
					if rank == 1 {
						parts = make([][]byte, n)
						for r := range parts {
							parts[r] = stepPat(r, 5)
						}
					}
					p.cs.BeginScatter(1, parts)
				case 6:
					p.cs.BeginAllgather(stepPat(rank, 6))
				case 7:
					a2a := make([][]byte, n)
					for r := range a2a {
						a2a[r] = stepPat(rank, r)
					}
					p.cs.BeginAlltoall(a2a)
				}
			}
			done, park, err := c.CollectiveStep(&p.cs)
			if !done {
				return park, false
			}
			p.armed = false
			if err != nil {
				return p.bail()
			}
			switch p.cq {
			case 1:
				if !bytes.Equal(p.cs.Bytes(), stepPat(1, 99)) {
					p.t.Errorf("prog rank %d: bcast = %v, want %v", rank, p.cs.Bytes(), stepPat(1, 99))
				}
			case 2:
				if rank == 2 {
					checkF64s(p.t, "prog", rank, p.cs.Floats(), stepOpsReduceWant(n))
				}
			case 3:
				checkF64s(p.t, "prog", rank, p.cs.Floats(), stepOpsReduceWant(n))
			case 4:
				if rank == 0 {
					for r := 0; r < n; r++ {
						if !bytes.Equal(p.cs.Parts()[r], stepPat(r, 4)) {
							p.t.Errorf("prog: gather[%d] = %v, want %v", r, p.cs.Parts()[r], stepPat(r, 4))
						}
					}
				}
			case 5:
				if !bytes.Equal(p.cs.Bytes(), stepPat(rank, 5)) {
					p.t.Errorf("prog rank %d: scatter = %v, want %v", rank, p.cs.Bytes(), stepPat(rank, 5))
				}
			case 6:
				for r := 0; r < n; r++ {
					if !bytes.Equal(p.cs.Parts()[r], stepPat(r, 6)) {
						p.t.Errorf("prog rank %d: allgather[%d] = %v, want %v", rank, r, p.cs.Parts()[r], stepPat(r, 6))
					}
				}
			case 7:
				for r := 0; r < n; r++ {
					if !bytes.Equal(p.cs.Parts()[r], stepPat(r, rank)) {
						p.t.Errorf("prog rank %d: alltoall[%d] = %v, want %v", rank, r, p.cs.Parts()[r], stepPat(r, rank))
					}
				}
			}
			p.cq++
		}
	}
}

func TestProgStepOpsMatchClosure(t *testing.T) {
	const n = 8
	for _, tc := range []struct {
		name string
		opts []worldOpt
	}{{"linear", nil}, {"tree", []worldOpt{withTree()}}} {
		t.Run(tc.name, func(t *testing.T) {
			ref, err := runWorldErr(t, n, 1, nil, closureStepOps(t, n), tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			if ref.Completed != n {
				t.Fatalf("closure completed = %d, want %d", ref.Completed, n)
			}
			for _, workers := range []int{1, 2, 4} {
				got, err := runProgWorldErr(t, n, workers, nil, func(rank int) Prog {
					return &stepOpsProg{t: t, n: n}
				}, tc.opts...)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if got.Completed != n {
					t.Fatalf("workers=%d: prog completed = %d, want %d", workers, got.Completed, n)
				}
				for r := range ref.FinalClocks {
					if ref.FinalClocks[r] != got.FinalClocks[r] || ref.Deaths[r] != got.Deaths[r] {
						t.Fatalf("%s workers=%d rank %d: closure (%v, %v) vs prog (%v, %v)",
							tc.name, workers, r, ref.FinalClocks[r], ref.Deaths[r], got.FinalClocks[r], got.Deaths[r])
					}
				}
			}
		})
	}
}

// TestProgCollectiveWithFailureMatchesClosure injects a failure under a
// collective-heavy workload and checks detection and abort agree.
func TestProgCollectiveWithFailureMatchesClosure(t *testing.T) {
	const n = 8
	failures := map[int]vclock.Time{3: vclock.TimeFromSeconds(0.00001)}
	closure := func(e *Env) {
		c := e.World()
		for i := 0; i < 4; i++ {
			if _, err := c.Allreduce([]float64{1}, OpSum); err != nil {
				return
			}
		}
		e.Finalize()
	}
	ref, refErr := runWorldErr(t, n, 1, failures, closure)
	got, gotErr := runProgWorldErr(t, n, 1, failures, func(rank int) Prog {
		return &allreduceLoopProg{rounds: 4}
	})
	if (refErr == nil) != (gotErr == nil) {
		t.Fatalf("closure err = %v, prog err = %v", refErr, gotErr)
	}
	if ref.Failed != got.Failed || ref.Aborted != got.Aborted || ref.Completed != got.Completed {
		t.Fatalf("closure %d/%d/%d vs prog %d/%d/%d (completed/failed/aborted)",
			ref.Completed, ref.Failed, ref.Aborted, got.Completed, got.Failed, got.Aborted)
	}
	for r := range ref.FinalClocks {
		if ref.FinalClocks[r] != got.FinalClocks[r] || ref.Deaths[r] != got.Deaths[r] {
			t.Fatalf("rank %d: closure (%v, %v) vs prog (%v, %v)",
				r, ref.FinalClocks[r], ref.Deaths[r], got.FinalClocks[r], got.Deaths[r])
		}
	}
}

// allreduceLoopProg runs a fixed number of allreduce rounds.
type allreduceLoopProg struct {
	rounds int
	done   int
	armed  bool
	cs     CollectiveState
}

func (p *allreduceLoopProg) Step(e *Env, wake any) (any, bool) {
	c := e.World()
	for {
		if p.done == p.rounds {
			e.Finalize()
			return nil, true
		}
		if !p.armed {
			p.armed = true
			p.cs.BeginAllreduce([]float64{1}, OpSum)
		}
		done, park, err := c.CollectiveStep(&p.cs)
		if !done {
			return park, false
		}
		p.armed = false
		if err != nil {
			return nil, true
		}
		p.done++
	}
}
