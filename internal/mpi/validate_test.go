package mpi

import (
	"strings"
	"testing"
)

func withValidate() worldOpt { return func(c *WorldConfig) { c.Validate = true } }

// Finalize with a receive still pending is an application protocol bug;
// under Validate it fails the run with a dump naming the leaked request.
func TestValidateFinalizePendingReceive(t *testing.T) {
	_, err := runWorldErr(t, 2, 1, nil, func(e *Env) {
		if e.Rank() == 0 {
			if _, err := e.World().Irecv(1, 7); err != nil {
				t.Error(err)
			}
		}
	}, withValidate())
	if err == nil {
		t.Fatal("finalizing with a pending receive should fail under Validate")
	}
	for _, want := range []string{"invariant violation [finalize-pending]", "rank 0", "recv"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// Without Validate the same leak passes silently (checking is opt-in and
// must not change semantics).
func TestFinalizePendingReceiveWithoutValidate(t *testing.T) {
	runWorld(t, 2, 1, func(e *Env) {
		if e.Rank() == 0 {
			if _, err := e.World().Irecv(1, 7); err != nil {
				t.Error(err)
			}
		}
	})
}

// Corrupting the posted-receive index from inside (a stand-in for a future
// matching bug) is caught by the next index sweep.
func TestValidateDetectsPostedIndexCorruption(t *testing.T) {
	_, err := runWorldErr(t, 2, 1, nil, func(e *Env) {
		if e.Rank() != 0 {
			return
		}
		c := e.World()
		r, err := c.Irecv(AnySource, 3)
		if err != nil {
			t.Error(err)
			return
		}
		// Simulate a bug: the request completes but stays filed as posted.
		r.done = true
		if _, err := c.Irecv(AnySource, 4); err != nil { // triggers the sweep
			t.Error(err)
		}
	}, withValidate())
	if err == nil {
		t.Fatal("corrupted posted index should fail the run under Validate")
	}
	if !strings.Contains(err.Error(), "invariant violation [posted-index]") {
		t.Errorf("error %q does not mention the posted-index invariant", err)
	}
}
