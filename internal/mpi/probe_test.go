package mpi

import (
	"testing"

	"xsim/internal/vclock"
)

func TestIprobe(t *testing.T) {
	runWorld(t, 2, 1, func(e *Env) {
		c := e.World()
		if e.Rank() == 0 {
			if err := c.Send(1, 7, []byte("probe me")); err != nil {
				t.Fatal(err)
			}
			return
		}
		// Nothing arrived yet at t=0.
		if _, ok, err := c.Iprobe(0, 7); err != nil || ok {
			t.Fatalf("early iprobe = %v, %v", ok, err)
		}
		e.Sleep(vclock.Millisecond) // let the envelope arrive
		m, ok, err := c.Iprobe(0, 7)
		if err != nil || !ok {
			t.Fatalf("iprobe = %v, %v", ok, err)
		}
		if m.Src != 0 || m.Tag != 7 || m.Size != 8 {
			t.Fatalf("probed envelope = %+v", m)
		}
		// Probing does not consume: the receive still sees the message.
		got, err := c.Recv(0, 7)
		if err != nil || string(got.Data) != "probe me" {
			t.Fatalf("recv after probe: %v %q", err, got.Data)
		}
		// Consumed now.
		if _, ok, _ := c.Iprobe(0, 7); ok {
			t.Fatal("iprobe after recv should find nothing")
		}
	})
}

func TestProbeBlocksUntilArrival(t *testing.T) {
	runWorld(t, 2, 1, func(e *Env) {
		c := e.World()
		if e.Rank() == 0 {
			e.Elapse(5 * vclock.Millisecond)
			if err := c.SendN(1, 3, 64); err != nil {
				t.Fatal(err)
			}
			return
		}
		m, err := c.Probe(AnySource, AnyTag)
		if err != nil {
			t.Fatalf("probe: %v", err)
		}
		if m.Src != 0 || m.Tag != 3 || m.Size != 64 {
			t.Fatalf("probe result = %+v", m)
		}
		// The probe returned at (or after) the envelope's arrival.
		if e.Now() < vclock.Time(5*vclock.Millisecond) {
			t.Fatalf("probe returned at %v, before the send", e.Now())
		}
		// And the message is still receivable.
		if _, err := c.Recv(m.Src, m.Tag); err != nil {
			t.Fatalf("recv after probe: %v", err)
		}
	})
}

func TestProbeFailedPeerTimesOut(t *testing.T) {
	res, err := runWorldErr(t, 2, 1, map[int]vclock.Time{0: vclock.TimeFromSeconds(1)}, func(e *Env) {
		c := e.World()
		c.SetErrorHandler(ErrorsReturn)
		if e.Rank() == 0 {
			e.Elapse(2 * vclock.Second)
			return
		}
		_, err := c.Probe(0, 0)
		if _, ok := err.(*ProcFailedError); !ok {
			t.Fatalf("probe err = %v, want ProcFailedError", err)
		}
		// Detection latency includes the configured timeout.
		if e.Now() < vclock.TimeFromSeconds(2) {
			t.Fatalf("probe failed too early: %v", e.Now())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 || res.Completed != 1 {
		t.Fatalf("result = %+v", res)
	}
}

func TestProbeValidation(t *testing.T) {
	runWorld(t, 2, 1, func(e *Env) {
		c := e.World()
		c.SetErrorHandler(ErrorsReturn)
		if _, err := c.Probe(9, 0); err == nil {
			t.Error("out-of-range probe source should fail")
		}
		if _, _, err := c.Iprobe(-2, 0); err == nil {
			t.Error("out-of-range iprobe source should fail")
		}
	})
}

func TestCancelRecv(t *testing.T) {
	runWorld(t, 2, 1, func(e *Env) {
		c := e.World()
		if e.Rank() == 0 {
			e.Elapse(vclock.Millisecond)
			if err := c.Send(1, 0, []byte("late")); err != nil {
				t.Fatal(err)
			}
			return
		}
		req, err := c.Irecv(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !c.Cancel(req) {
			t.Fatal("cancel of pending recv should succeed")
		}
		if !req.Done() {
			t.Fatal("cancelled request should be done")
		}
		if _, ok := req.Err().(*CancelledError); !ok {
			t.Fatalf("err = %v, want CancelledError", req.Err())
		}
		if c.Cancel(req) {
			t.Fatal("double cancel should report false")
		}
		// The message was not consumed by the cancelled receive: a fresh
		// receive gets it.
		m, err := c.Recv(0, 0)
		if err != nil || string(m.Data) != "late" {
			t.Fatalf("recv after cancel: %v %q", err, m.Data)
		}
	})
}

func TestCancelRendezvousSend(t *testing.T) {
	runWorld(t, 2, 1, func(e *Env) {
		c := e.World()
		if e.Rank() == 0 {
			req, err := c.IsendN(1, 0, 1<<20) // rendezvous: pends on the CTS
			if err != nil {
				t.Fatal(err)
			}
			if !c.Cancel(req) {
				t.Fatal("cancel of pending send should succeed")
			}
			return
		}
		// The receiver never posts: without the cancel this would
		// deadlock; with it, both ranks complete.
		e.Elapse(vclock.Millisecond)
	})
}

func TestTreeReduce(t *testing.T) {
	const n = 6
	runWorld(t, n, 1, func(e *Env) {
		c := e.World()
		for root := 0; root < n; root += 2 {
			sum, err := c.Reduce(root, []float64{float64(e.Rank()), 1}, OpSum)
			if err != nil {
				t.Fatalf("tree reduce root %d: %v", root, err)
			}
			if e.Rank() == root {
				if sum[0] != float64(n*(n-1)/2) || sum[1] != n {
					t.Fatalf("root %d sum = %v", root, sum)
				}
			} else if sum != nil {
				t.Fatalf("non-root got %v", sum)
			}
		}
	}, withTree())
}
