package mpi

import "fmt"

// This file is the program-mode form of the collectives: CollectiveState
// drives the exact linear and binomial-tree algorithms of collectives.go
// as resumable state machines over the same reserved-tag traffic, hop for
// hop and charge for charge, so closure and program mode stay
// digest-identical. Each internal hop (the sendTag/sendTagOwned/recvTag
// of the closure algorithms) is a hopState: post the request, park on its
// WaitState, recycle it at completion.

// hopState is one internal blocking hop of a collective algorithm.
type hopState struct {
	ws  WaitState
	req *Request
}

// inFlight reports whether a hop has been posted and not yet completed;
// the per-kind machines use it to distinguish "start the next hop" from
// "resume the parked one".
func (h *hopState) inFlight() bool { return h.req != nil }

// hopSend posts the hop of a closure sendTag.
func (c *Comm) hopSend(h *hopState, dst, tag, size int, data []byte) {
	h.req = c.isendTag(dst, tag, size, data)
	h.ws.Begin(h.req)
}

// hopSendOwned posts the hop of a closure sendTagOwned (pooled buffer,
// ownership transfers to the MPI layer).
func (c *Comm) hopSendOwned(h *hopState, dst, tag, size int, data []byte) {
	h.req = c.isendOwned(dst, tag, size, data)
	h.ws.Begin(h.req)
}

// hopRecv posts the hop of a closure recvTag.
func (c *Comm) hopRecv(h *hopState, src, tag int) {
	h.req = c.irecvTag(src, tag)
	h.ws.Begin(h.req)
}

// hopStep advances the hop; on done the caller owns msg (nil for sends)
// exactly as after sendTag/recvTag, and the request has been recycled.
func (c *Comm) hopStep(h *hopState) (done bool, park any, msg *Message, err error) {
	done, park, err = c.env.waitStep(&h.ws)
	if !done {
		return false, park, nil, nil
	}
	req := h.req
	h.req = nil
	msg = req.msg
	req.msg = nil
	c.env.ps.dp.putReq(req)
	if err != nil {
		if msg != nil {
			msg.Release()
		}
		return true, nil, nil, err
	}
	return true, nil, msg, nil
}

// collKind identifies the armed collective.
type collKind uint8

const (
	collNone collKind = iota
	collBarrier
	collBcast
	collReduce
	collAllreduce
	collGather
	collScatter
	collAllgather
	collAlltoall
)

// CollectiveState carries one collective operation across program steps:
// the step form of Barrier/Bcast/Reduce/Allreduce/Gather/Scatter/
// Allgather/Alltoall. Arm it with the matching Begin method, then call
// CollectiveStep from every step until it reports done; read the result
// with Bytes/Floats/Parts. Zero value ready; reused collective after
// collective. One state drives one collective at a time.
type CollectiveState struct {
	kind    collKind
	counted bool
	// phase/sub/r/mask are the resumable algorithm counters: phase is the
	// per-algorithm program counter, sub sequences composite collectives
	// (allreduce = reduce+bcast, allgather = gather+bcast), r is the
	// linear rank cursor, mask the tree mask.
	phase int
	sub   int
	r     int
	mask  int

	// Operands (set by Begin) and results.
	root    int
	tag     int
	size    int
	data    []byte
	parts   [][]byte
	contrib []float64
	op      ReduceOp
	acc     []float64
	out     [][]byte

	hop hopState
	// ws and reqs/recvs serve alltoall's single posted-all wait.
	ws    WaitState
	reqs  []*Request
	recvs []*Request
}

// arm resets the machine for a new collective, keeping the slice
// capacities (request sets, wait sets) the state has already grown.
func (cs *CollectiveState) arm(kind collKind) {
	cs.kind = kind
	cs.counted = false
	cs.phase = 0
	cs.sub = 0
	cs.r = 0
	cs.mask = 0
	cs.root = 0
	cs.tag = 0
	cs.size = 0
	cs.data = nil
	cs.parts = nil
	cs.contrib = nil
	cs.op = nil
	cs.acc = nil
	cs.out = nil
	cs.reqs = cs.reqs[:0]
	cs.recvs = cs.recvs[:0]
}

// BeginBarrier arms a Barrier.
func (cs *CollectiveState) BeginBarrier() { cs.arm(collBarrier) }

// BeginBcast arms a Bcast of root's data; non-root callers pass nil.
// Bytes returns the broadcast payload on done.
func (cs *CollectiveState) BeginBcast(root int, data []byte) {
	cs.arm(collBcast)
	cs.root = root
	cs.data = data
	cs.size = len(data)
	cs.tag = tagBcast
}

// BeginReduce arms a Reduce of contrib at root with op. Floats returns
// the reduction at the root (nil elsewhere) on done.
func (cs *CollectiveState) BeginReduce(root int, contrib []float64, op ReduceOp) {
	cs.arm(collReduce)
	cs.root = root
	cs.contrib = contrib
	cs.op = op
}

// BeginAllreduce arms an Allreduce; Floats returns the reduction on done.
func (cs *CollectiveState) BeginAllreduce(contrib []float64, op ReduceOp) {
	cs.arm(collAllreduce)
	cs.contrib = contrib
	cs.op = op
}

// BeginGather arms a Gather of data at root; Parts returns one slice per
// rank at the root (nil elsewhere) on done.
func (cs *CollectiveState) BeginGather(root int, data []byte) {
	cs.arm(collGather)
	cs.root = root
	cs.data = data
	cs.tag = tagGather
}

// BeginScatter arms a Scatter of parts from root; non-root callers pass
// nil. Bytes returns this rank's part on done.
func (cs *CollectiveState) BeginScatter(root int, parts [][]byte) {
	cs.arm(collScatter)
	cs.root = root
	cs.parts = parts
}

// BeginAllgather arms an Allgather; Parts returns one slice per rank on
// done.
func (cs *CollectiveState) BeginAllgather(data []byte) {
	cs.arm(collAllgather)
	cs.data = data
}

// BeginAlltoall arms an Alltoall of parts[i] to rank i; Parts returns
// one received slice per rank on done.
func (cs *CollectiveState) BeginAlltoall(parts [][]byte) {
	cs.arm(collAlltoall)
	cs.parts = parts
}

// Bytes returns the byte-slice result (Bcast: the broadcast payload;
// Scatter: this rank's part) after CollectiveStep reports done.
func (cs *CollectiveState) Bytes() []byte { return cs.data }

// Floats returns the float result (Reduce at the root, Allreduce
// everywhere) after CollectiveStep reports done.
func (cs *CollectiveState) Floats() []float64 { return cs.acc }

// Parts returns the per-rank result (Gather at the root, Allgather,
// Alltoall) after CollectiveStep reports done.
func (cs *CollectiveState) Parts() [][]byte { return cs.out }

// CollectiveStep advances the armed collective. It returns done == false
// with the park value to return from Step, or done == true with the
// operation's error after the communicator's error handler ran (with
// ErrorsAreFatal a process-failure error aborts and this call does not
// return), exactly like the closure methods.
func (c *Comm) CollectiveStep(cs *CollectiveState) (done bool, park any, err error) {
	if !cs.counted {
		c.env.w.m.countCollective(c.env.Rank())
		cs.counted = true
	}
	switch cs.kind {
	case collBarrier:
		done, park, err = c.stepBarrier(cs)
	case collBcast:
		done, park, err = c.stepBcast(cs)
	case collReduce:
		done, park, err = c.stepReduce(cs)
	case collAllreduce:
		done, park, err = c.stepAllreduce(cs)
	case collGather:
		done, park, err = c.stepGather(cs)
	case collScatter:
		done, park, err = c.stepScatter(cs)
	case collAllgather:
		done, park, err = c.stepAllgather(cs)
	case collAlltoall:
		done, park, err = c.stepAlltoall(cs)
	default:
		panic("mpi: CollectiveStep without a Begin")
	}
	if done && err != nil {
		err = c.handleError(err)
	}
	return done, park, err
}

// Tree-phase numbers shared by the machines: the binomial-tree broadcast
// is reachable both from stepBcast and (as the release wave, without a
// fresh entry charge) from the tree barrier.
const (
	phaseTreeBcastRecv = 10
	phaseTreeBcastSend = 11
	phaseTreeReduce    = 20
	phaseTreeGather    = 30
)

// stepBarrier mirrors Comm.barrier.
func (c *Comm) stepBarrier(cs *CollectiveState) (done bool, park any, err error) {
	n := c.Size()
	for {
		switch cs.phase {
		case 0:
			if err := c.checkRevoked("barrier"); err != nil {
				return true, nil, err
			}
			c.env.chargeCall()
			if n == 1 {
				return true, nil, nil
			}
			if c.env.w.cfg.Collectives == Tree {
				cs.mask = 1
				cs.phase = phaseTreeGather
			} else if c.rank == 0 {
				cs.r = 1
				cs.phase = 1
			} else {
				cs.phase = 3
			}
		case 1: // linear rank 0: collect arrivals in rank order
			for cs.r < n {
				if !cs.hop.inFlight() {
					c.hopRecv(&cs.hop, cs.r, tagBarrierIn)
				}
				hd, park, msg, err := c.hopStep(&cs.hop)
				if !hd {
					return false, park, nil
				}
				if err != nil {
					return true, nil, err
				}
				msg.Release()
				cs.r++
			}
			cs.r = 1
			cs.phase = 2
		case 2: // linear rank 0: release everyone
			for cs.r < n {
				if !cs.hop.inFlight() {
					c.hopSend(&cs.hop, cs.r, tagBarrierOut, 0, nil)
				}
				hd, park, _, err := c.hopStep(&cs.hop)
				if !hd {
					return false, park, nil
				}
				if err != nil {
					return true, nil, err
				}
				cs.r++
			}
			return true, nil, nil
		case 3: // linear non-root: report to rank 0
			if !cs.hop.inFlight() {
				c.hopSend(&cs.hop, 0, tagBarrierIn, 0, nil)
			}
			hd, park, _, err := c.hopStep(&cs.hop)
			if !hd {
				return false, park, nil
			}
			if err != nil {
				return true, nil, err
			}
			cs.phase = 4
		case 4: // linear non-root: wait for the release
			if !cs.hop.inFlight() {
				c.hopRecv(&cs.hop, 0, tagBarrierOut)
			}
			hd, park, msg, err := c.hopStep(&cs.hop)
			if !hd {
				return false, park, nil
			}
			if err != nil {
				return true, nil, err
			}
			msg.Release()
			return true, nil, nil
		case phaseTreeGather: // tree: gather the arrival signal (treeGatherSignal)
			vrank := c.rank
			for cs.mask < n {
				if vrank&cs.mask != 0 {
					// Report to the parent; the closure returns right after.
					if !cs.hop.inFlight() {
						c.hopSend(&cs.hop, vrank-cs.mask, tagBarrierIn, 0, nil)
					}
					hd, park, _, err := c.hopStep(&cs.hop)
					if !hd {
						return false, park, nil
					}
					if err != nil {
						return true, nil, err
					}
					break
				}
				if child := vrank | cs.mask; child < n {
					if !cs.hop.inFlight() {
						c.hopRecv(&cs.hop, child, tagBarrierIn)
					}
					hd, park, msg, err := c.hopStep(&cs.hop)
					if !hd {
						return false, park, nil
					}
					if err != nil {
						return true, nil, err
					}
					msg.Release()
				}
				cs.mask <<= 1
			}
			// Release wave: a zero-byte tree bcast from rank 0 without a
			// fresh entry charge (treeBcastSignal).
			cs.root = 0
			cs.tag = tagBarrierOut
			cs.size = 0
			cs.data = nil
			cs.mask = 0
			cs.phase = phaseTreeBcastRecv
		case phaseTreeBcastRecv, phaseTreeBcastSend:
			return c.stepTreeBcast(cs)
		default:
			panic(fmt.Sprintf("mpi: barrier state machine in phase %d", cs.phase))
		}
	}
}

// stepBcast mirrors Comm.bcast(root, data, size, tag); the result lands
// in cs.data.
func (c *Comm) stepBcast(cs *CollectiveState) (done bool, park any, err error) {
	n := c.Size()
	for {
		switch cs.phase {
		case 0:
			if err := c.checkRevoked("bcast"); err != nil {
				return true, nil, err
			}
			c.env.chargeCall()
			if n == 1 {
				return true, nil, nil
			}
			if c.env.w.cfg.Collectives == Tree {
				cs.phase = phaseTreeBcastRecv
			} else if c.rank == cs.root {
				cs.r = 0
				cs.phase = 1
			} else {
				cs.phase = 2
			}
		case 1: // linear root: send to everyone in rank order
			for cs.r < n {
				if cs.r == cs.root {
					cs.r++
					continue
				}
				if !cs.hop.inFlight() {
					c.hopSend(&cs.hop, cs.r, cs.tag, cs.size, cs.data)
				}
				hd, park, _, err := c.hopStep(&cs.hop)
				if !hd {
					return false, park, nil
				}
				if err != nil {
					return true, nil, err
				}
				cs.r++
			}
			return true, nil, nil
		case 2: // linear non-root: receive from the root
			if !cs.hop.inFlight() {
				c.hopRecv(&cs.hop, cs.root, cs.tag)
			}
			hd, park, msg, err := c.hopStep(&cs.hop)
			if !hd {
				return false, park, nil
			}
			if err != nil {
				return true, nil, err
			}
			cs.data = detachData(msg)
			return true, nil, nil
		case phaseTreeBcastRecv, phaseTreeBcastSend:
			return c.stepTreeBcast(cs)
		default:
			panic(fmt.Sprintf("mpi: bcast state machine in phase %d", cs.phase))
		}
	}
}

// stepTreeBcast mirrors Comm.treeBcast: phase phaseTreeBcastRecv walks
// the mask to this rank's parent bit and receives (at most one hop),
// phase phaseTreeBcastSend forwards to the children. The result lands in
// cs.data.
func (c *Comm) stepTreeBcast(cs *CollectiveState) (done bool, park any, err error) {
	n := c.Size()
	vrank := (c.rank - cs.root + n) % n
	for {
		switch cs.phase {
		case phaseTreeBcastRecv:
			if cs.mask == 0 {
				cs.mask = 1
			}
			for cs.mask < n && vrank&cs.mask == 0 {
				cs.mask <<= 1
			}
			if cs.mask < n {
				if !cs.hop.inFlight() {
					c.hopRecv(&cs.hop, (vrank-cs.mask+cs.root)%n, cs.tag)
				}
				hd, park, msg, err := c.hopStep(&cs.hop)
				if !hd {
					return false, park, nil
				}
				if err != nil {
					return true, nil, err
				}
				cs.data = detachData(msg)
			}
			cs.mask >>= 1
			cs.phase = phaseTreeBcastSend
		case phaseTreeBcastSend:
			for cs.mask > 0 {
				if vrank+cs.mask < n {
					if !cs.hop.inFlight() {
						c.hopSend(&cs.hop, (vrank+cs.mask+cs.root)%n, cs.tag, cs.size, cs.data)
					}
					hd, park, _, err := c.hopStep(&cs.hop)
					if !hd {
						return false, park, nil
					}
					if err != nil {
						return true, nil, err
					}
				}
				cs.mask >>= 1
			}
			return true, nil, nil
		default:
			panic(fmt.Sprintf("mpi: tree bcast state machine in phase %d", cs.phase))
		}
	}
}

// stepReduce mirrors Comm.reduce(root, contrib, op); the result lands in
// cs.acc (root only).
func (c *Comm) stepReduce(cs *CollectiveState) (done bool, park any, err error) {
	n := c.Size()
	for {
		switch cs.phase {
		case 0:
			if err := c.checkRevoked("reduce"); err != nil {
				return true, nil, err
			}
			c.env.chargeCall()
			if n == 1 {
				cs.acc = append([]float64(nil), cs.contrib...)
				return true, nil, nil
			}
			if c.env.w.cfg.Collectives == Tree {
				cs.phase = phaseTreeReduce
			} else if c.rank != cs.root {
				cs.phase = 1
			} else {
				cs.acc = append([]float64(nil), cs.contrib...)
				cs.r = 0
				cs.phase = 2
			}
		case 1: // linear non-root: ship the encoded contribution
			if !cs.hop.inFlight() {
				c.hopSendOwned(&cs.hop, cs.root, tagReduce, 8*len(cs.contrib), encodeF64sPool(c.env.ps.dp, cs.contrib))
			}
			hd, park, _, err := c.hopStep(&cs.hop)
			if !hd {
				return false, park, nil
			}
			return true, nil, err
		case 2: // linear root: fold contributions in rank order
			for cs.r < n {
				if cs.r == cs.root {
					cs.r++
					continue
				}
				if !cs.hop.inFlight() {
					c.hopRecv(&cs.hop, cs.r, tagReduce)
				}
				hd, park, msg, err := c.hopStep(&cs.hop)
				if !hd {
					return false, park, nil
				}
				if err != nil {
					return true, nil, err
				}
				vals := c.env.ps.scratchF64(len(cs.contrib))
				if err := decodeF64sInto(vals, msg.Data); err != nil {
					return true, nil, err
				}
				cs.op(cs.acc, vals)
				msg.Release()
				cs.r++
			}
			return true, nil, nil
		case phaseTreeReduce: // tree: mirror Comm.treeReduce
			vrank := (c.rank - cs.root + n) % n
			if cs.mask == 0 {
				cs.mask = 1
				cs.acc = append([]float64(nil), cs.contrib...)
			}
			for cs.mask < n {
				if vrank&cs.mask != 0 {
					if !cs.hop.inFlight() {
						c.hopSendOwned(&cs.hop, (vrank-cs.mask+cs.root)%n, tagReduce, 8*len(cs.acc), encodeF64sPool(c.env.ps.dp, cs.acc))
					}
					hd, park, _, err := c.hopStep(&cs.hop)
					if !hd {
						return false, park, nil
					}
					cs.acc = nil // non-roots return nil, like the closure
					return true, nil, err
				}
				if child := vrank | cs.mask; child < n {
					if !cs.hop.inFlight() {
						c.hopRecv(&cs.hop, (child+cs.root)%n, tagReduce)
					}
					hd, park, msg, err := c.hopStep(&cs.hop)
					if !hd {
						return false, park, nil
					}
					if err != nil {
						return true, nil, err
					}
					vals := c.env.ps.scratchF64(len(cs.acc))
					if err := decodeF64sInto(vals, msg.Data); err != nil {
						return true, nil, err
					}
					cs.op(cs.acc, vals)
					msg.Release()
				}
				cs.mask <<= 1
			}
			return true, nil, nil
		default:
			panic(fmt.Sprintf("mpi: reduce state machine in phase %d", cs.phase))
		}
	}
}

// stepAllreduce mirrors Comm.allreduce: a reduce to rank 0 (sub 0)
// followed by a broadcast of the encoded result (sub 1). The result lands
// in cs.acc on every rank.
func (c *Comm) stepAllreduce(cs *CollectiveState) (done bool, park any, err error) {
	if cs.sub == 0 {
		cs.root = 0
		done, park, err := c.stepReduce(cs)
		if !done {
			return false, park, nil
		}
		if err != nil {
			return true, nil, err
		}
		cs.sub = 1
		cs.phase = 0
		cs.r = 0
		cs.mask = 0
		cs.tag = tagBcast
		cs.size = 8 * len(cs.contrib)
		if c.rank == 0 {
			cs.data = encodeF64sPool(c.env.ps.dp, cs.acc)
		} else {
			cs.data = nil
		}
	}
	done, park, err = c.stepBcast(cs)
	if !done {
		return false, park, nil
	}
	dp := c.env.ps.dp
	buf := cs.data
	cs.data = nil
	if err != nil {
		return true, nil, err
	}
	if c.rank == 0 {
		// The root already holds the reduction, and decode(encode(x)) is
		// bit-identical for float64: skip the round-trip and release the
		// broadcast buffer (bcast copied it per send).
		dp.putBuf(buf)
		return true, nil, nil
	}
	out, err := decodeF64s(buf, len(cs.contrib))
	dp.putBuf(buf)
	cs.acc = out
	return true, nil, err
}

// stepGather mirrors Comm.gather(root, data, tag); the per-rank result
// lands in cs.out (root only).
func (c *Comm) stepGather(cs *CollectiveState) (done bool, park any, err error) {
	n := c.Size()
	for {
		switch cs.phase {
		case 0:
			if err := c.checkRevoked("gather"); err != nil {
				return true, nil, err
			}
			c.env.chargeCall()
			if c.rank != cs.root {
				cs.phase = 1
			} else {
				cs.out = make([][]byte, n)
				cs.out[cs.root] = append([]byte(nil), cs.data...)
				cs.r = 0
				cs.phase = 2
			}
		case 1: // non-root: ship this rank's data
			if !cs.hop.inFlight() {
				c.hopSend(&cs.hop, cs.root, cs.tag, len(cs.data), cs.data)
			}
			hd, park, _, err := c.hopStep(&cs.hop)
			if !hd {
				return false, park, nil
			}
			return true, nil, err
		case 2: // root: collect in rank order
			for cs.r < n {
				if cs.r == cs.root {
					cs.r++
					continue
				}
				if !cs.hop.inFlight() {
					c.hopRecv(&cs.hop, cs.r, cs.tag)
				}
				hd, park, msg, err := c.hopStep(&cs.hop)
				if !hd {
					return false, park, nil
				}
				if err != nil {
					return true, nil, err
				}
				cs.out[cs.r] = detachData(msg)
				cs.r++
			}
			return true, nil, nil
		default:
			panic(fmt.Sprintf("mpi: gather state machine in phase %d", cs.phase))
		}
	}
}

// stepScatter mirrors Comm.scatter(root, parts); this rank's part lands
// in cs.data.
func (c *Comm) stepScatter(cs *CollectiveState) (done bool, park any, err error) {
	n := c.Size()
	for {
		switch cs.phase {
		case 0:
			if err := c.checkRevoked("scatter"); err != nil {
				return true, nil, err
			}
			c.env.chargeCall()
			if c.rank == cs.root {
				if len(cs.parts) != n {
					return true, nil, fmt.Errorf("mpi: scatter needs %d parts, got %d", n, len(cs.parts))
				}
				cs.r = 0
				cs.phase = 1
			} else {
				cs.phase = 2
			}
		case 1: // root: send each part in rank order
			for cs.r < n {
				if cs.r == cs.root {
					cs.r++
					continue
				}
				if !cs.hop.inFlight() {
					c.hopSend(&cs.hop, cs.r, tagScatter, len(cs.parts[cs.r]), cs.parts[cs.r])
				}
				hd, park, _, err := c.hopStep(&cs.hop)
				if !hd {
					return false, park, nil
				}
				if err != nil {
					return true, nil, err
				}
				cs.r++
			}
			cs.data = append([]byte(nil), cs.parts[cs.root]...)
			return true, nil, nil
		case 2: // non-root: receive this rank's part
			if !cs.hop.inFlight() {
				c.hopRecv(&cs.hop, cs.root, tagScatter)
			}
			hd, park, msg, err := c.hopStep(&cs.hop)
			if !hd {
				return false, park, nil
			}
			if err != nil {
				return true, nil, err
			}
			cs.data = detachData(msg)
			return true, nil, nil
		default:
			panic(fmt.Sprintf("mpi: scatter state machine in phase %d", cs.phase))
		}
	}
}

// stepAllgather mirrors Comm.allgather: a gather to rank 0 (sub 0)
// followed by a broadcast of the framed result (sub 1). The per-rank
// result lands in cs.out on every rank.
func (c *Comm) stepAllgather(cs *CollectiveState) (done bool, park any, err error) {
	dp := c.env.ps.dp
	if cs.sub == 0 {
		cs.root = 0
		cs.tag = tagAllgather
		done, park, err := c.stepGather(cs)
		if !done {
			return false, park, nil
		}
		if err != nil {
			return true, nil, err
		}
		cs.sub = 1
		cs.phase = 0
		cs.r = 0
		cs.mask = 0
		if c.rank == 0 {
			framed := framePool(dp, cs.out)
			// The gathered per-rank buffers are folded into the frame now;
			// release the pooled ones (rank 0's own part is a fresh copy).
			for r, p := range cs.out {
				if r != c.rank {
					dp.putBuf(p)
				}
			}
			cs.data = framed
			cs.size = len(framed)
		} else {
			cs.data = nil
			cs.size = 0
		}
		cs.out = nil
	}
	done, park, err = c.stepBcast(cs)
	if !done {
		return false, park, nil
	}
	framed := cs.data
	cs.data = nil
	if err != nil {
		return true, nil, err
	}
	out, err := unframe(framed)
	dp.putBuf(framed)
	cs.out = out
	return true, nil, err
}

// stepAlltoall mirrors Comm.alltoall: receives posted before sends, one
// wait over all of them, then the per-rank payload detach. The result
// lands in cs.out.
func (c *Comm) stepAlltoall(cs *CollectiveState) (done bool, park any, err error) {
	n := c.Size()
	switch cs.phase {
	case 0:
		if err := c.checkRevoked("alltoall"); err != nil {
			return true, nil, err
		}
		c.env.chargeCall()
		if len(cs.parts) != n {
			return true, nil, fmt.Errorf("mpi: alltoall needs %d parts, got %d", n, len(cs.parts))
		}
		for r := 0; r < n; r++ {
			if r == c.rank {
				continue
			}
			req := c.irecvTag(r, tagAlltoall)
			cs.recvs = append(cs.recvs, req)
			cs.reqs = append(cs.reqs, req)
		}
		for r := 0; r < n; r++ {
			if r == c.rank {
				continue
			}
			cs.reqs = append(cs.reqs, c.isendTag(r, tagAlltoall, len(cs.parts[r]), cs.parts[r]))
		}
		cs.ws.Begin(cs.reqs...)
		cs.phase = 1
		fallthrough
	case 1:
		done, park, err = c.env.waitStep(&cs.ws)
		if !done {
			return false, park, nil
		}
		if err != nil {
			// Like the closure, error paths leave the requests to the
			// garbage collector.
			return true, nil, err
		}
		out := make([][]byte, n)
		out[c.rank] = append([]byte(nil), cs.parts[c.rank]...)
		i := 0
		for r := 0; r < n; r++ {
			if r == c.rank {
				continue
			}
			out[r] = detachData(cs.recvs[i].msg)
			cs.recvs[i].msg = nil
			i++
		}
		// None of the requests escaped; recycle them all and drop the
		// references so the idle state does not pin the recycled requests.
		dp := c.env.ps.dp
		for i, req := range cs.reqs {
			dp.putReq(req)
			cs.reqs[i] = nil
		}
		cs.reqs = cs.reqs[:0]
		for i := range cs.recvs {
			cs.recvs[i] = nil
		}
		cs.recvs = cs.recvs[:0]
		cs.out = out
		return true, nil, nil
	default:
		panic(fmt.Sprintf("mpi: alltoall state machine in phase %d", cs.phase))
	}
}
