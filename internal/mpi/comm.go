package mpi

import (
	"fmt"
	"sort"

	"xsim/internal/core"
	"xsim/internal/trace"
)

// ErrorHandler selects how a communicator reacts to operation errors,
// mirroring MPI's error handlers.
type ErrorHandler int

const (
	// ErrorsAreFatal (the MPI default): a detected process failure
	// invokes MPI_Abort on the communicator, terminating the simulated
	// application.
	ErrorsAreFatal ErrorHandler = iota
	// ErrorsReturn: errors are returned to the caller.
	ErrorsReturn
	// ErrorsUser: the user handler runs, then the error is returned.
	ErrorsUser
)

// Comm is a simulated MPI communicator.
type Comm struct {
	env *Env
	id  int
	// n is the communicator size; group maps communicator ranks to
	// world ranks, with nil meaning the identity mapping (the world
	// communicator) — kept implicit so a million-rank world does not
	// materialise a million-entry table per process.
	n     int
	group []int
	// rank is this process's rank within the communicator.
	rank int

	errMode ErrorHandler
	errFn   func(*Comm, error)
}

// newComm builds a derived communicator. All members must derive
// communicators in the same order so ids agree (the usual MPI collective
// requirement).
func (e *Env) newComm(group []int, myWorldRank int) *Comm {
	e.nextCommID++
	rank := -1
	for i, wr := range group {
		if wr == myWorldRank {
			rank = i
			break
		}
	}
	return &Comm{env: e, id: e.nextCommID, n: len(group), group: append([]int(nil), group...), rank: rank}
}

// Rank returns this process's rank in the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.n }

// ID returns the communicator id (0 for the world communicator).
func (c *Comm) ID() int { return c.id }

// WorldRank translates a communicator rank to a world rank.
func (c *Comm) WorldRank(commRank int) int {
	if c.group == nil {
		return commRank
	}
	return c.group[commRank]
}

// Group returns a copy of the communicator's world-rank membership.
func (c *Comm) Group() []int {
	out := make([]int, c.n)
	for i := range out {
		out[i] = c.WorldRank(i)
	}
	return out
}

// SetErrorHandler selects ErrorsAreFatal or ErrorsReturn.
func (c *Comm) SetErrorHandler(h ErrorHandler) {
	if h == ErrorsUser {
		panic("mpi: use SetUserErrorHandler for user handlers")
	}
	c.errMode = h
	c.errFn = nil
}

// SetUserErrorHandler installs a user-defined error handler; it runs on
// every operation error, which is then returned to the caller.
func (c *Comm) SetUserErrorHandler(fn func(*Comm, error)) {
	c.errMode = ErrorsUser
	c.errFn = fn
}

// Dup returns a communicator with the same membership and a fresh id.
// Collective: every member must call it in the same order.
func (c *Comm) Dup() *Comm { return c.env.newComm(c.Group(), c.env.Rank()) }

// Sub returns a communicator restricted to the given communicator ranks
// (in the given order). Collective among the listed members; processes not
// listed receive a communicator with rank -1 and must not use it.
func (c *Comm) Sub(commRanks []int) *Comm {
	group := make([]int, len(commRanks))
	for i, cr := range commRanks {
		group[i] = c.WorldRank(cr)
	}
	return c.env.newComm(group, c.env.Rank())
}

// handleError applies the communicator's error handler to an operation
// error: with ErrorsAreFatal a process-failure error aborts the simulated
// application (this call then never returns); otherwise the error is
// returned (after a user handler, if installed).
func (c *Comm) handleError(err error) error {
	if err == nil {
		return nil
	}
	switch c.errMode {
	case ErrorsAreFatal:
		c.env.Logf("fatal MPI error: %v", err)
		c.Abort(1)
		panic("unreachable")
	case ErrorsUser:
		if c.errFn != nil {
			c.errFn(c, err)
		}
	}
	return err
}

// Abort aborts the simulated MPI application (MPI_Abort): an informational
// message reports the aborting rank and time, a simulator-internal
// notification broadcasts the abort and its time to every simulated
// process, and this process unwinds immediately. It does not return.
func (c *Comm) Abort(code int) {
	e := c.env
	at := e.ctx.NowQuiet()
	e.Logf("MPI_Abort invoked (rank %d, time %v, code %d)", e.Rank(), at, code)
	e.w.trace(trace.Event{At: at, Kind: trace.KindAbort, Rank: int32(e.Rank()), Peer: -1, Aux: int64(code)})
	e.ctx.EmitBroadcast(core.Event{
		Time:    at.Add(e.w.cfg.NotifyDelay),
		Kind:    kindAbortNotify,
		Payload: abortNotify{origin: e.Rank(), at: at, code: code},
	})
	e.ctx.AbortNow()
}

// Revoked reports whether the communicator was revoked (ULFM extension).
func (c *Comm) Revoked() bool {
	return c.env.ps.revoked != nil && c.env.ps.revoked[c.id]
}

// checkRevoked fails operations on revoked communicators.
func (c *Comm) checkRevoked(op string) error {
	if c.Revoked() {
		return &RevokedError{Comm: c.id}
	}
	return nil
}

// markRevoked records a revocation locally (used by the ULFM extension).
func (c *Comm) markRevoked() {
	if c.env.ps.revoked == nil {
		c.env.ps.revoked = make(map[int]bool)
	}
	c.env.ps.revoked[c.id] = true
}

// FailedInComm returns the communicator ranks this process knows to have
// failed, in ascending order (ULFM's failure acknowledgement reads this).
func (c *Comm) FailedInComm() []int {
	var out []int
	if c.group == nil {
		// Identity mapping: scan the (small) failed-peer list instead
		// of the full membership.
		for wr := range c.env.ps.failedPeers {
			if wr < c.n {
				out = append(out, wr)
			}
		}
		sort.Ints(out)
		return out
	}
	for cr, wr := range c.group {
		if _, dead := c.env.ps.failedPeers[wr]; dead {
			out = append(out, cr)
		}
	}
	sort.Ints(out)
	return out
}

// --- Public point-to-point operations -----------------------------------

// Send sends data to dst with tag and blocks until the send completes
// (eager sends complete locally; larger-than-threshold sends use the
// rendezvous protocol and wait for the receiver). The request never
// escapes, so it is recycled on return.
func (c *Comm) Send(dst, tag int, data []byte) error {
	req, err := c.isend(dst, tag, len(data), data)
	if err == nil {
		err = c.env.wait(req)
		c.env.ps.dp.putReq(req)
	}
	return c.handleError(err)
}

// SendN is Send with a payload-free message of the given size in bytes;
// the network model charges the same time without allocating the payload.
func (c *Comm) SendN(dst, tag, size int) error {
	req, err := c.isend(dst, tag, size, nil)
	if err == nil {
		err = c.env.wait(req)
		c.env.ps.dp.putReq(req)
	}
	return c.handleError(err)
}

// Isend posts a nonblocking send; complete it with Wait or Waitall.
func (c *Comm) Isend(dst, tag int, data []byte) (*Request, error) {
	req, err := c.isend(dst, tag, len(data), data)
	return req, c.handleError(err)
}

// IsendN posts a nonblocking payload-free send of the given size.
func (c *Comm) IsendN(dst, tag, size int) (*Request, error) {
	req, err := c.isend(dst, tag, size, nil)
	return req, c.handleError(err)
}

// Recv blocks until a message from src (or AnySource) with tag (or AnyTag)
// arrives. Receiving from a failed process completes in error after the
// simulated network communication timeout.
func (c *Comm) Recv(src, tag int) (*Message, error) {
	req, err := c.irecv(src, tag)
	if err != nil {
		return nil, c.handleError(err)
	}
	err = c.env.wait(req)
	// The request never escapes; the message does (the caller owns it and
	// may hand its buffer back with Message.Release).
	msg := req.msg
	req.msg = nil
	c.env.ps.dp.putReq(req)
	if err != nil {
		if msg != nil {
			msg.Release()
		}
		return nil, c.handleError(err)
	}
	return msg, nil
}

// Irecv posts a nonblocking receive; complete it with Wait or Waitall.
func (c *Comm) Irecv(src, tag int) (*Request, error) {
	req, err := c.irecv(src, tag)
	return req, c.handleError(err)
}

// Wait blocks until the request completes, returning the received message
// for receives (nil for sends).
func (c *Comm) Wait(r *Request) (*Message, error) {
	if err := c.env.wait(r); err != nil {
		return nil, c.handleError(err)
	}
	return r.msg, nil
}

// Waitall blocks until every request completes; it returns the first error
// among them in request order.
func (c *Comm) Waitall(reqs []*Request) error {
	return c.handleError(c.env.wait(reqs...))
}

// Free recycles a completed request back to the process's data-plane
// pool, releasing any still-attached received message. The caller must
// not touch the request afterwards. Freeing is optional — dropped
// requests fall to the garbage collector — but long-running programs at
// oversubscription scale free their requests to keep steady-state
// allocation flat. Requests still in flight are ignored.
func (c *Comm) Free(r *Request) {
	if r == nil || !r.done {
		return
	}
	r.msg.Release()
	r.msg = nil
	c.env.ps.dp.putReq(r)
}

// String describes the communicator.
func (c *Comm) String() string {
	return fmt.Sprintf("comm %d (rank %d of %d)", c.id, c.rank, c.n)
}
