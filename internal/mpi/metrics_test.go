package mpi

import (
	"math/rand"
	"reflect"
	"testing"

	"xsim/internal/core"
	"xsim/internal/procmodel"
	"xsim/internal/vclock"
)

// runWorldMetrics is runWorldErr returning the world, so tests can read
// its metrics after the run.
func runWorldMetrics(t *testing.T, n, workers int, failures map[int]vclock.Time, app func(*Env)) (*World, *core.Result, error) {
	t.Helper()
	eng, err := core.New(core.Config{NumVPs: n, Workers: workers, Lookahead: vclock.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(eng, WorldConfig{Net: testNet(n), Proc: procmodel.Paper()})
	if err != nil {
		t.Fatal(err)
	}
	for r, at := range failures {
		if err := eng.ScheduleFailure(r, at); err != nil {
			t.Fatal(err)
		}
	}
	res, err := w.Run(func(e *Env) {
		app(e)
		if !e.Finalized() {
			e.Finalize()
		}
	})
	return w, res, err
}

func TestMetricsTrafficCounters(t *testing.T) {
	w, _, err := runWorldMetrics(t, 2, 1, nil, func(e *Env) {
		c := e.World()
		switch e.Rank() {
		case 0:
			// Three eager messages before the receiver posts, then one
			// rendezvous (4096 > the 1024 eager threshold).
			for i := 0; i < 3; i++ {
				if err := c.SendN(1, i, 64); err != nil {
					t.Errorf("eager send: %v", err)
				}
			}
			if err := c.SendN(1, 3, 4096); err != nil {
				t.Errorf("rendezvous send: %v", err)
			}
		case 1:
			// Let the eager envelopes pile up unexpected first.
			e.Elapse(vclock.Millisecond)
			for i := 0; i < 4; i++ {
				if _, err := c.Recv(0, i); err != nil {
					t.Errorf("recv %d: %v", i, err)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	m := w.Metrics()
	if m.EagerMsgs != 3 || m.EagerBytes != 3*64 {
		t.Errorf("eager = %d msgs %d bytes, want 3 msgs 192 bytes", m.EagerMsgs, m.EagerBytes)
	}
	if m.RendezvousMsgs != 1 || m.RendezvousBytes != 4096 {
		t.Errorf("rendezvous = %d msgs %d bytes, want 1 msg 4096 bytes", m.RendezvousMsgs, m.RendezvousBytes)
	}
	if m.CollectiveOps != 0 {
		t.Errorf("collectives = %d, want 0", m.CollectiveOps)
	}
	if m.UnexpectedMax != 3 {
		t.Errorf("unexpected high-water = %d, want 3", m.UnexpectedMax)
	}
	if len(m.Failures) != 0 {
		t.Errorf("failures = %v, want none", m.Failures)
	}
}

func TestMetricsCollectiveCount(t *testing.T) {
	const n = 4
	w, _, err := runWorldMetrics(t, n, 1, nil, func(e *Env) {
		c := e.World()
		if err := c.Barrier(); err != nil {
			t.Errorf("barrier: %v", err)
		}
		if _, err := c.Allreduce([]float64{1}, OpSum); err != nil {
			t.Errorf("allreduce: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each rank counts each public collective call once — composite
	// implementations (allreduce = reduce + bcast) must not double-count.
	if m := w.Metrics(); m.CollectiveOps != 2*n {
		t.Errorf("collectives = %d, want %d", m.CollectiveOps, 2*n)
	}
}

// detectionWorkload runs a randomized pairwise traffic pattern with one
// injected failure: rank failRank dies at tof while every surviving rank
// eventually posts a receive from it and detects the failure by timeout.
func detectionWorkload(t *testing.T, workers int) (*World, MetricsSnapshot) {
	t.Helper()
	const (
		n        = 8
		failRank = 3
	)
	tof := vclock.TimeFromSeconds(2)
	w, res, err := runWorldMetrics(t, n, workers, map[int]vclock.Time{failRank: tof}, func(e *Env) {
		c := e.World()
		c.SetErrorHandler(ErrorsReturn)
		if e.Rank() == failRank {
			// Dies at tof during this sleep, before any communication.
			e.Sleep(3 * vclock.Second)
			return
		}
		// Randomized (but rank-agreed) ping traffic between pair buddies;
		// the pair containing the failing rank skips it.
		rng := rand.New(rand.NewSource(1))
		counts := make([]int, n/2)
		for i := range counts {
			counts[i] = 1 + rng.Intn(4)
		}
		buddy := e.Rank() ^ 1
		if buddy != failRank {
			for i := 0; i < counts[e.Rank()/2]; i++ {
				if e.Rank() < buddy {
					if err := c.SendN(buddy, i, 64); err != nil {
						t.Errorf("rank %d send: %v", e.Rank(), err)
					}
				} else if _, err := c.Recv(buddy, i); err != nil {
					t.Errorf("rank %d recv: %v", e.Rank(), err)
				}
			}
		}
		// Every survivor now waits on the failing rank and must detect
		// the failure via the communication timeout.
		if _, err := c.Recv(failRank, 99); err == nil {
			t.Errorf("rank %d: recv from failed rank succeeded", e.Rank())
		} else if _, ok := err.(*ProcFailedError); !ok {
			t.Errorf("rank %d: unexpected error %v", e.Rank(), err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 {
		t.Fatalf("failed = %d, want 1", res.Failed)
	}
	return w, w.Metrics()
}

func TestDetectionLatencyMetric(t *testing.T) {
	w, m := detectionWorkload(t, 1)
	if len(m.Failures) != 1 {
		t.Fatalf("failures = %v, want one", m.Failures)
	}
	f := m.Failures[0]
	if f.Rank != 3 || f.FailedAt != vclock.TimeFromSeconds(2) {
		t.Fatalf("failure record = %+v", f)
	}
	nd := w.Config().NotifyDelay
	if f.NotifiedAt != f.FailedAt.Add(nd) {
		t.Fatalf("notified at %v, want %v", f.NotifiedAt, f.FailedAt.Add(nd))
	}
	if f.Detections != 7 {
		t.Fatalf("detections = %d, want all 7 survivors", f.Detections)
	}
	// The paper's quantity: injection → last surviving rank detects. With
	// purely timeout-based detection the latency is the communication
	// timeout plus the notification delay, up to the engine lookahead.
	timeout := w.Config().Net.Timeout(0, 3)
	la := w.Engine().Lookahead()
	lat := f.DetectionLatency()
	tol := nd
	if la > tol {
		tol = la
	}
	if diff := lat - (timeout + nd); diff < -tol || diff > tol {
		t.Fatalf("detection latency %v, want %v + %v within %v", lat, timeout, nd, tol)
	}
}

func TestDetectionMetricsDeterministicAcrossWorkers(t *testing.T) {
	_, m1 := detectionWorkload(t, 1)
	_, m4 := detectionWorkload(t, 4)
	if !reflect.DeepEqual(m1, m4) {
		t.Fatalf("metrics differ across workers:\n  W1: %+v\n  W4: %+v", m1, m4)
	}
}
