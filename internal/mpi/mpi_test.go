package mpi

import (
	"fmt"
	"strings"
	"testing"

	"xsim/internal/core"
	"xsim/internal/fsmodel"
	"xsim/internal/netmodel"
	"xsim/internal/procmodel"
	"xsim/internal/topology"
	"xsim/internal/vclock"
)

// testNet returns a friendly network model: fully connected, 1 µs latency,
// 1 GB/s links, 1 KiB eager threshold, 100 ms detection timeout.
func testNet(n int) *netmodel.Model {
	return &netmodel.Model{
		Topo: topology.NewFullyConnected(n),
		System: netmodel.LinkParams{
			Latency:          vclock.Microsecond,
			Bandwidth:        1e9,
			DetectionTimeout: 100 * vclock.Millisecond,
		},
		OnNode: netmodel.LinkParams{
			Latency:          vclock.Microsecond,
			Bandwidth:        1e9,
			DetectionTimeout: 100 * vclock.Millisecond,
		},
		EagerThreshold: 1024,
	}
}

type worldOpt func(*WorldConfig)

func withTree() worldOpt { return func(c *WorldConfig) { c.Collectives = Tree } }

// runWorld builds an engine+world over n ranks and runs app; the app need
// not call Finalize (the harness appends it).
func runWorld(t *testing.T, n, workers int, app func(*Env), opts ...worldOpt) *core.Result {
	t.Helper()
	res, err := runWorldErr(t, n, workers, nil, app, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// runWorldErr is runWorld returning the raw error; failures scheduled via
// the failures map (rank -> time).
func runWorldErr(t *testing.T, n, workers int, failures map[int]vclock.Time, app func(*Env), opts ...worldOpt) (*core.Result, error) {
	t.Helper()
	eng, err := core.New(core.Config{NumVPs: n, Workers: workers, Lookahead: vclock.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	cfg := WorldConfig{Net: testNet(n), Proc: procmodel.Paper()}
	for _, o := range opts {
		o(&cfg)
	}
	w, err := NewWorld(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for r, at := range failures {
		if err := eng.ScheduleFailure(r, at); err != nil {
			t.Fatal(err)
		}
	}
	return w.Run(func(e *Env) {
		app(e)
		if !e.Finalized() {
			e.Finalize()
		}
	})
}

func TestEagerSendRecv(t *testing.T) {
	net := testNet(2)
	wantArrive := net.TransferTime(0, 1, 100)
	runWorld(t, 2, 1, func(e *Env) {
		c := e.World()
		switch e.Rank() {
		case 0:
			payload := make([]byte, 100)
			for i := range payload {
				payload[i] = byte(i)
			}
			if err := c.Send(1, 7, payload); err != nil {
				t.Errorf("send: %v", err)
			}
			// Eager sends complete locally after injection.
			if got, want := e.Now(), vclock.Time(0).Add(net.SendOverhead(0, 1, 100)); got != want {
				t.Errorf("sender clock = %v, want %v", got, want)
			}
		case 1:
			msg, err := c.Recv(0, 7)
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			if msg.Src != 0 || msg.Tag != 7 || msg.Size != 100 || len(msg.Data) != 100 {
				t.Errorf("msg = %+v", msg)
			}
			if got := e.Now(); got != vclock.Time(0).Add(wantArrive) {
				t.Errorf("recv clock = %v, want %v", got, vclock.Time(0).Add(wantArrive))
			}
		}
	})
}

func TestSendNPayloadFree(t *testing.T) {
	runWorld(t, 2, 1, func(e *Env) {
		c := e.World()
		if e.Rank() == 0 {
			if err := c.SendN(1, 0, 1<<20); err != nil {
				t.Errorf("sendN: %v", err)
			}
		} else {
			msg, err := c.Recv(0, 0)
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			if msg.Size != 1<<20 || msg.Data != nil {
				t.Errorf("msg = %+v", msg)
			}
		}
	})
}

func TestRendezvousTiming(t *testing.T) {
	net := testNet(2)
	size := 4096 // above the 1 KiB threshold
	if net.Eager(size) {
		t.Fatal("test size should use rendezvous")
	}
	runWorld(t, 2, 1, func(e *Env) {
		c := e.World()
		if e.Rank() == 0 {
			// Receiver posts late at t=1ms.
			e.Elapse(vclock.Millisecond)
			msg, err := c.Recv(1, 0)
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			if msg.Size != size {
				t.Errorf("size = %d", msg.Size)
			}
			// Envelope waits unexpected; match at post (1 ms); CTS back
			// (1 µs); data transfer (1 µs + size/bw).
			want := vclock.Time(0).
				Add(vclock.Millisecond).
				Add(net.ControlTime(0, 1)).
				Add(net.TransferTime(1, 0, size))
			if got := e.Now(); got != want {
				t.Errorf("recv done at %v, want %v", got, want)
			}
		} else {
			if err := c.SendN(0, 0, size); err != nil {
				t.Errorf("send: %v", err)
				return
			}
			// Sender completes at CTS arrival + injection.
			want := vclock.Time(0).
				Add(vclock.Millisecond).
				Add(net.ControlTime(0, 1)).
				Add(net.SendOverhead(1, 0, size))
			if got := e.Now(); got != want {
				t.Errorf("send done at %v, want %v", got, want)
			}
		}
	})
}

func TestRendezvousPayload(t *testing.T) {
	payload := make([]byte, 2000)
	for i := range payload {
		payload[i] = byte(i)
	}
	runWorld(t, 2, 1, func(e *Env) {
		c := e.World()
		if e.Rank() == 0 {
			if err := c.Send(1, 3, payload); err != nil {
				t.Errorf("send: %v", err)
			}
		} else {
			msg, err := c.Recv(0, 3)
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			if len(msg.Data) != len(payload) {
				t.Fatalf("len = %d", len(msg.Data))
			}
			for i := range payload {
				if msg.Data[i] != payload[i] {
					t.Fatalf("payload corrupted at %d", i)
				}
			}
		}
	})
}

func TestAnySourceAnyTag(t *testing.T) {
	runWorld(t, 3, 1, func(e *Env) {
		c := e.World()
		switch e.Rank() {
		case 1, 2:
			e.Elapse(vclock.Duration(e.Rank()) * vclock.Millisecond)
			if err := c.Send(0, e.Rank()*10, []byte{byte(e.Rank())}); err != nil {
				t.Errorf("send: %v", err)
			}
		case 0:
			// Earliest arrival (rank 1, sent at 1 ms) matches first.
			m1, err := c.Recv(AnySource, AnyTag)
			if err != nil {
				t.Fatalf("recv1: %v", err)
			}
			m2, err := c.Recv(AnySource, AnyTag)
			if err != nil {
				t.Fatalf("recv2: %v", err)
			}
			if m1.Src != 1 || m2.Src != 2 {
				t.Errorf("order: got %d then %d, want 1 then 2", m1.Src, m2.Src)
			}
			if m1.Tag != 10 || m2.Tag != 20 {
				t.Errorf("tags: %d %d", m1.Tag, m2.Tag)
			}
		}
	})
}

func TestNonOvertaking(t *testing.T) {
	runWorld(t, 2, 1, func(e *Env) {
		c := e.World()
		if e.Rank() == 0 {
			for i := 0; i < 5; i++ {
				if _, err := c.Isend(1, 0, []byte{byte(i)}); err != nil {
					t.Errorf("isend: %v", err)
				}
			}
		} else {
			e.Elapse(vclock.Millisecond) // let them all queue unexpected
			for i := 0; i < 5; i++ {
				msg, err := c.Recv(0, 0)
				if err != nil {
					t.Fatalf("recv %d: %v", i, err)
				}
				if msg.Data[0] != byte(i) {
					t.Fatalf("message %d out of order: got %d", i, msg.Data[0])
				}
			}
		}
	})
}

func TestIsendIrecvWaitall(t *testing.T) {
	runWorld(t, 2, 1, func(e *Env) {
		c := e.World()
		if e.Rank() == 0 {
			var reqs []*Request
			for i := 0; i < 4; i++ {
				r, err := c.IsendN(1, i, 64)
				if err != nil {
					t.Fatalf("isend: %v", err)
				}
				reqs = append(reqs, r)
			}
			if err := c.Waitall(reqs); err != nil {
				t.Errorf("waitall: %v", err)
			}
		} else {
			var reqs []*Request
			for i := 3; i >= 0; i-- { // post in reverse tag order
				r, err := c.Irecv(0, i)
				if err != nil {
					t.Fatalf("irecv: %v", err)
				}
				reqs = append(reqs, r)
			}
			if err := c.Waitall(reqs); err != nil {
				t.Errorf("waitall: %v", err)
			}
			for i, r := range reqs {
				if !r.Done() || r.msg.Tag != 3-i {
					t.Errorf("req %d: done=%v tag=%d", i, r.Done(), r.msg.Tag)
				}
			}
		}
	})
}

func TestSelfSend(t *testing.T) {
	runWorld(t, 1, 1, func(e *Env) {
		c := e.World()
		r, err := c.Isend(0, 5, []byte("self"))
		if err != nil {
			t.Fatalf("isend: %v", err)
		}
		msg, err := c.Recv(0, 5)
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		if string(msg.Data) != "self" {
			t.Errorf("data = %q", msg.Data)
		}
		if _, err := c.Wait(r); err != nil {
			t.Errorf("wait: %v", err)
		}
	})
}

func TestBarrierSynchronises(t *testing.T) {
	for _, opt := range []struct {
		name string
		opts []worldOpt
	}{{"linear", nil}, {"tree", []worldOpt{withTree()}}} {
		t.Run(opt.name, func(t *testing.T) {
			finish := make([]vclock.Time, 4)
			start := make([]vclock.Time, 4)
			runWorld(t, 4, 1, func(e *Env) {
				// Stagger arrivals: rank r arrives at r seconds.
				e.Elapse(vclock.Duration(e.Rank()) * vclock.Second)
				start[e.Rank()] = e.Now()
				if err := e.World().Barrier(); err != nil {
					t.Errorf("barrier: %v", err)
				}
				finish[e.Rank()] = e.Now()
			}, opt.opts...)
			last := start[3]
			for r, f := range finish {
				if f < last {
					t.Errorf("rank %d left the barrier at %v, before the last arrival %v", r, f, last)
				}
			}
		})
	}
}

func TestBcast(t *testing.T) {
	for _, opt := range []struct {
		name string
		opts []worldOpt
	}{{"linear", nil}, {"tree", []worldOpt{withTree()}}} {
		t.Run(opt.name, func(t *testing.T) {
			runWorld(t, 7, 1, func(e *Env) {
				var in []byte
				if e.Rank() == 2 {
					in = []byte("broadcast payload")
				}
				out, err := e.World().Bcast(2, in)
				if err != nil {
					t.Errorf("bcast: %v", err)
					return
				}
				if string(out) != "broadcast payload" {
					t.Errorf("rank %d got %q", e.Rank(), out)
				}
			}, opt.opts...)
		})
	}
}

func TestReduceAndAllreduce(t *testing.T) {
	const n = 6
	runWorld(t, n, 1, func(e *Env) {
		c := e.World()
		contrib := []float64{float64(e.Rank()), 1}
		sum, err := c.Reduce(0, contrib, OpSum)
		if err != nil {
			t.Errorf("reduce: %v", err)
			return
		}
		if e.Rank() == 0 {
			if sum[0] != float64(n*(n-1)/2) || sum[1] != n {
				t.Errorf("reduce = %v", sum)
			}
		} else if sum != nil {
			t.Errorf("non-root reduce = %v", sum)
		}
		all, err := c.Allreduce([]float64{float64(e.Rank())}, OpMax)
		if err != nil {
			t.Errorf("allreduce: %v", err)
			return
		}
		if all[0] != n-1 {
			t.Errorf("allreduce max = %v", all)
		}
	})
}

func TestGatherScatter(t *testing.T) {
	const n = 5
	runWorld(t, n, 1, func(e *Env) {
		c := e.World()
		got, err := c.Gather(1, []byte{byte(e.Rank() * 3)})
		if err != nil {
			t.Errorf("gather: %v", err)
			return
		}
		if e.Rank() == 1 {
			for r := 0; r < n; r++ {
				if len(got[r]) != 1 || got[r][0] != byte(r*3) {
					t.Errorf("gather[%d] = %v", r, got[r])
				}
			}
		}
		var parts [][]byte
		if e.Rank() == 0 {
			for r := 0; r < n; r++ {
				parts = append(parts, []byte{byte(r + 100)})
			}
		}
		mine, err := c.Scatter(0, parts)
		if err != nil {
			t.Errorf("scatter: %v", err)
			return
		}
		if len(mine) != 1 || mine[0] != byte(e.Rank()+100) {
			t.Errorf("scatter mine = %v", mine)
		}
	})
}

func TestAllgatherAlltoall(t *testing.T) {
	const n = 4
	runWorld(t, n, 1, func(e *Env) {
		c := e.World()
		all, err := c.Allgather([]byte(fmt.Sprintf("r%d", e.Rank())))
		if err != nil {
			t.Errorf("allgather: %v", err)
			return
		}
		for r := 0; r < n; r++ {
			if string(all[r]) != fmt.Sprintf("r%d", r) {
				t.Errorf("allgather[%d] = %q", r, all[r])
			}
		}
		parts := make([][]byte, n)
		for r := range parts {
			parts[r] = []byte{byte(e.Rank()*10 + r)}
		}
		got, err := c.Alltoall(parts)
		if err != nil {
			t.Errorf("alltoall: %v", err)
			return
		}
		for r := 0; r < n; r++ {
			if len(got[r]) != 1 || got[r][0] != byte(r*10+e.Rank()) {
				t.Errorf("alltoall[%d] = %v", r, got[r])
			}
		}
	})
}

func TestRecvFromFailedPeerTimesOut(t *testing.T) {
	net := testNet(2)
	failAt := vclock.TimeFromSeconds(1)
	res, err := runWorldErr(t, 2, 1, map[int]vclock.Time{0: failAt}, func(e *Env) {
		c := e.World()
		c.SetErrorHandler(ErrorsReturn)
		switch e.Rank() {
		case 0:
			e.Elapse(10 * vclock.Second) // failure activates at 10 s (end of compute)
		case 1:
			_, err := c.Recv(0, 0)
			pf, ok := err.(*ProcFailedError)
			if !ok {
				t.Fatalf("recv err = %v, want ProcFailedError", err)
			}
			if pf.Rank != 0 {
				t.Errorf("failed rank = %d", pf.Rank)
			}
			// Actual failure at 10 s (when the simulator regained
			// control); detection at max(post, failure) + timeout.
			wantFail := vclock.TimeFromSeconds(10)
			if pf.FailedAt != wantFail {
				t.Errorf("failedAt = %v, want %v", pf.FailedAt, wantFail)
			}
			want := wantFail.Add(net.Timeout(1, 0))
			if got := e.Now(); got != want {
				t.Errorf("detection at %v, want %v", got, want)
			}
			if len(e.FailedPeers()) != 1 {
				t.Errorf("failedPeers = %v", e.FailedPeers())
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 || res.Completed != 1 {
		t.Fatalf("result = %+v", res)
	}
}

func TestAnySourceReleasedOnFailure(t *testing.T) {
	res, err := runWorldErr(t, 2, 1, map[int]vclock.Time{0: vclock.TimeFromSeconds(1)}, func(e *Env) {
		c := e.World()
		c.SetErrorHandler(ErrorsReturn)
		switch e.Rank() {
		case 0:
			e.Elapse(2 * vclock.Second)
		case 1:
			_, err := c.Recv(AnySource, AnyTag)
			if _, ok := err.(*ProcFailedError); !ok {
				t.Errorf("wildcard recv err = %v, want ProcFailedError", err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 || res.Completed != 1 {
		t.Fatalf("result = %+v", res)
	}
}

func TestRendezvousSendToFailedPeerTimesOut(t *testing.T) {
	res, err := runWorldErr(t, 2, 1, map[int]vclock.Time{1: vclock.TimeFromSeconds(1)}, func(e *Env) {
		c := e.World()
		c.SetErrorHandler(ErrorsReturn)
		switch e.Rank() {
		case 0:
			// Rendezvous send blocks for a receiver that dies without
			// ever posting the receive.
			err := c.SendN(1, 0, 1<<20)
			if _, ok := err.(*ProcFailedError); !ok {
				t.Errorf("send err = %v, want ProcFailedError", err)
			}
		case 1:
			e.Elapse(2 * vclock.Second)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 || res.Completed != 1 {
		t.Fatalf("result = %+v", res)
	}
}

func TestFatalErrorAborts(t *testing.T) {
	res, err := runWorldErr(t, 4, 1, map[int]vclock.Time{2: vclock.TimeFromSeconds(1)}, func(e *Env) {
		c := e.World() // default handler: ErrorsAreFatal
		// Everybody receives from the next rank in a ring; rank 1's recv
		// from rank 2 detects the failure and aborts the application.
		next := (e.Rank() + 1) % e.Size()
		prev := (e.Rank() + 3) % e.Size()
		if _, err := c.Isend(prev, 0, nil); err != nil {
			t.Errorf("isend: %v", err)
		}
		for {
			if _, err := c.Recv(next, 0); err != nil {
				t.Errorf("unexpected returned error: %v", err)
				return
			}
			// Keep receiving forever; only the abort ends this loop.
			if _, err := c.Isend(next, 0, nil); err != nil {
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 {
		t.Fatalf("failed = %d, want 1 (%+v)", res.Failed, res)
	}
	if res.Aborted != 3 {
		t.Fatalf("aborted = %d, want 3 (%+v)", res.Aborted, res)
	}
}

func TestUserErrorHandler(t *testing.T) {
	var handled error
	res, err := runWorldErr(t, 2, 1, map[int]vclock.Time{0: 0}, func(e *Env) {
		c := e.World()
		if e.Rank() == 1 {
			c.SetUserErrorHandler(func(_ *Comm, err error) { handled = err })
			if _, err := c.Recv(0, 0); err == nil {
				t.Error("recv should fail")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if handled == nil {
		t.Error("user handler not invoked")
	}
	if res.Failed != 1 || res.Completed != 1 {
		t.Fatalf("result = %+v", res)
	}
}

func TestMissingFinalizeIsFailure(t *testing.T) {
	eng, err := core.New(core.Config{NumVPs: 1})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(eng, WorldConfig{Net: testNet(1), Proc: procmodel.Paper()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(func(e *Env) {
		e.Elapse(vclock.Second)
		// No Finalize: exiting main without MPI_Finalize is a process
		// failure under the paper's fault model.
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 || res.Completed != 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestCommDupAndSub(t *testing.T) {
	runWorld(t, 4, 1, func(e *Env) {
		c := e.World()
		d := c.Dup()
		if d.ID() == c.ID() || d.Rank() != c.Rank() || d.Size() != c.Size() {
			t.Errorf("dup: %v vs %v", d, c)
		}
		// Messages on different communicators do not cross-match.
		if e.Rank() == 0 {
			if _, err := d.Isend(1, 0, []byte("on dup")); err != nil {
				t.Fatalf("isend: %v", err)
			}
			if _, err := c.Isend(1, 0, []byte("on world")); err != nil {
				t.Fatalf("isend: %v", err)
			}
		}
		if e.Rank() == 1 {
			m, err := c.Recv(0, 0)
			if err != nil || string(m.Data) != "on world" {
				t.Errorf("world recv: %v %q", err, m.Data)
			}
			m, err = d.Recv(0, 0)
			if err != nil || string(m.Data) != "on dup" {
				t.Errorf("dup recv: %v %q", err, m.Data)
			}
		}
		// Sub communicator over the even ranks.
		sub := c.Sub([]int{0, 2})
		switch e.Rank() {
		case 0:
			if sub.Rank() != 0 || sub.Size() != 2 || sub.WorldRank(1) != 2 {
				t.Errorf("sub at 0: %v", sub)
			}
			if err := sub.Send(1, 9, []byte("sub")); err != nil {
				t.Errorf("sub send: %v", err)
			}
		case 2:
			if sub.Rank() != 1 {
				t.Errorf("sub rank = %d", sub.Rank())
			}
			if m, err := sub.Recv(0, 9); err != nil || string(m.Data) != "sub" {
				t.Errorf("sub recv: %v", err)
			}
		default:
			if sub.Rank() != -1 {
				t.Errorf("non-member sub rank = %d", sub.Rank())
			}
		}
	})
}

func TestValidationErrors(t *testing.T) {
	runWorld(t, 2, 1, func(e *Env) {
		c := e.World()
		c.SetErrorHandler(ErrorsReturn)
		if err := c.Send(5, 0, nil); err == nil {
			t.Error("send to out-of-range rank should fail")
		}
		if err := c.Send(1, -3, nil); err == nil {
			t.Error("negative tag should fail")
		}
		if _, err := c.Recv(9, 0); err == nil {
			t.Error("recv from out-of-range rank should fail")
		}
		if _, err := c.Recv(1, -3); err == nil {
			t.Error("negative recv tag should fail")
		}
	})
}

func TestWorldConfigValidation(t *testing.T) {
	eng, _ := core.New(core.Config{NumVPs: 4})
	if _, err := NewWorld(eng, WorldConfig{}); err == nil {
		t.Error("missing Net should fail")
	}
	small := testNet(2) // 2-node topology for 4 ranks
	if _, err := NewWorld(eng, WorldConfig{Net: small, Proc: procmodel.Paper()}); err == nil {
		t.Error("undersized topology should fail")
	}
	// Parallel engine with lookahead above the notification delay.
	eng2, _ := core.New(core.Config{NumVPs: 4, Workers: 2, Lookahead: vclock.Second})
	if _, err := NewWorld(eng2, WorldConfig{Net: testNet(4), Proc: procmodel.Paper()}); err == nil {
		t.Error("lookahead above min delay should fail")
	}
}

func TestFSAccessors(t *testing.T) {
	eng, _ := core.New(core.Config{NumVPs: 1})
	store := fsmodel.NewStore()
	w, err := NewWorld(eng, WorldConfig{Net: testNet(1), Proc: procmodel.Paper(), FSStore: store, FSModel: fsmodel.PaperPFS()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(func(e *Env) {
		if e.FSStore() != store {
			t.Error("FSStore mismatch")
		}
		if e.FSModel().MetadataLatency != vclock.Millisecond {
			t.Error("FSModel mismatch")
		}
		e.Finalize()
	}); err != nil {
		t.Fatal(err)
	}
}

// ringWorkload circulates a token around a ring several times.
func ringWorkload(t *testing.T, n, workers int) *core.Result {
	t.Helper()
	return runWorld(t, n, workers, func(e *Env) {
		c := e.World()
		next := (e.Rank() + 1) % n
		prev := (e.Rank() - 1 + n) % n
		for round := 0; round < 3; round++ {
			e.Compute(1e6)
			if e.Rank() == 0 {
				if err := c.Send(next, round, []byte{byte(round)}); err != nil {
					t.Errorf("send: %v", err)
				}
				if _, err := c.Recv(prev, round); err != nil {
					t.Errorf("recv: %v", err)
				}
			} else {
				m, err := c.Recv(prev, round)
				if err != nil || m.Data[0] != byte(round) {
					t.Errorf("recv: %v", err)
				}
				if err := c.Send(next, round, m.Data); err != nil {
					t.Errorf("send: %v", err)
				}
			}
		}
	})
}

func TestParallelEngineMatchesSequentialMPI(t *testing.T) {
	seq := ringWorkload(t, 8, 1)
	for _, workers := range []int{2, 4} {
		par := ringWorkload(t, 8, workers)
		for r := range seq.FinalClocks {
			if seq.FinalClocks[r] != par.FinalClocks[r] {
				t.Fatalf("workers=%d: rank %d clock %v != %v", workers, r, par.FinalClocks[r], seq.FinalClocks[r])
			}
		}
	}
}

func TestDeadlockReportNamesWait(t *testing.T) {
	_, err := runWorldErr(t, 2, 1, nil, func(e *Env) {
		if e.Rank() == 0 {
			if _, err := e.World().Recv(1, 0); err != nil {
				t.Errorf("recv: %v", err)
			}
		}
	})
	if err == nil || !strings.Contains(err.Error(), "recv from 1") {
		t.Fatalf("err = %v, want deadlock naming the recv", err)
	}
}

func TestProcFailedErrorString(t *testing.T) {
	e := &ProcFailedError{Rank: 3, FailedAt: vclock.TimeFromSeconds(2), Op: "recv"}
	if !strings.Contains(e.Error(), "rank 3") || !strings.Contains(e.Error(), "recv") {
		t.Errorf("error string = %q", e.Error())
	}
	r := &RevokedError{Comm: 2}
	if !strings.Contains(r.Error(), "revoked") {
		t.Errorf("revoked string = %q", r.Error())
	}
}
