package mpi

import (
	"math/rand"
	"testing"

	"xsim/internal/core"
	"xsim/internal/procmodel"
	"xsim/internal/vclock"
)

// randomScript generates a deadlock-free random communication pattern:
// a global list of messages (src, dst, tag, size) plus per-rank compute
// durations. Every rank posts all its receives up front, then issues its
// sends interleaved with compute, then waits for everything — no blocking
// cycles, any pattern is safe.
type scriptMsg struct {
	src, dst, tag, size int
}

func randomScript(rng *rand.Rand, ranks, msgs int) []scriptMsg {
	out := make([]scriptMsg, msgs)
	for i := range out {
		src := rng.Intn(ranks)
		dst := rng.Intn(ranks)
		for dst == src {
			dst = rng.Intn(ranks)
		}
		size := rng.Intn(512)
		if rng.Intn(4) == 0 {
			size = 2048 + rng.Intn(4096) // rendezvous in the test net
		}
		out[i] = scriptMsg{src: src, dst: dst, tag: i, size: size}
	}
	return out
}

// runRandomWorkload executes a random script and returns the final clocks.
func runRandomWorkload(t *testing.T, seed int64, ranks, msgs, workers int) []vclock.Time {
	t.Helper()
	script := randomScript(rand.New(rand.NewSource(seed)), ranks, msgs)
	computeSeed := seed * 31

	eng, err := core.New(core.Config{NumVPs: ranks, Workers: workers, Lookahead: vclock.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(eng, WorldConfig{Net: testNet(ranks), Proc: procmodel.Paper()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(func(e *Env) {
		defer e.Finalize()
		c := e.World()
		me := e.Rank()
		// Per-rank deterministic compute pattern.
		myRng := rand.New(rand.NewSource(computeSeed + int64(me)))
		var reqs []*Request
		for _, m := range script {
			if m.dst == me {
				r, err := c.Irecv(m.src, m.tag)
				if err != nil {
					t.Errorf("irecv: %v", err)
					return
				}
				reqs = append(reqs, r)
			}
		}
		for _, m := range script {
			if m.src == me {
				e.Elapse(vclock.Duration(myRng.Intn(1000)) * vclock.Microsecond)
				r, err := c.IsendN(m.dst, m.tag, m.size)
				if err != nil {
					t.Errorf("isend: %v", err)
					return
				}
				reqs = append(reqs, r)
			}
		}
		if err := c.Waitall(reqs); err != nil {
			t.Errorf("waitall: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != ranks {
		t.Fatalf("completed = %d (%+v)", res.Completed, res)
	}
	return res.FinalClocks
}

// TestRandomWorkloadsParallelEquivalence drives random communication
// patterns through the sequential and parallel engines and demands
// bit-identical virtual clocks — the core guarantee of the conservative
// windowed synchronisation.
func TestRandomWorkloadsParallelEquivalence(t *testing.T) {
	const ranks, msgs = 12, 120
	for seed := int64(1); seed <= 8; seed++ {
		seq := runRandomWorkload(t, seed, ranks, msgs, 1)
		for _, workers := range []int{3, 7} {
			par := runRandomWorkload(t, seed, ranks, msgs, workers)
			for r := range seq {
				if seq[r] != par[r] {
					t.Fatalf("seed %d workers %d: rank %d clock %v != sequential %v",
						seed, workers, r, par[r], seq[r])
				}
			}
		}
	}
}

// TestRandomWorkloadsRepeatable demands run-to-run determinism for random
// patterns (the paper: experiments are repeatable because the simulator
// and the application are deterministic).
func TestRandomWorkloadsRepeatable(t *testing.T) {
	const ranks, msgs = 10, 80
	for seed := int64(20); seed <= 23; seed++ {
		a := runRandomWorkload(t, seed, ranks, msgs, 2)
		b := runRandomWorkload(t, seed, ranks, msgs, 2)
		for r := range a {
			if a[r] != b[r] {
				t.Fatalf("seed %d: rank %d clock %v != %v across identical runs", seed, r, a[r], b[r])
			}
		}
	}
}

// TestRandomWorkloadsWithFailures mixes random failure injections into
// random workloads: no crashes, no deadlocks, deterministic outcomes, and
// consistent death accounting under both engines.
func TestRandomWorkloadsWithFailures(t *testing.T) {
	const ranks, msgs = 10, 60
	run := func(seed int64, workers int) *core.Result {
		script := randomScript(rand.New(rand.NewSource(seed)), ranks, msgs)
		eng, err := core.New(core.Config{NumVPs: ranks, Workers: workers, Lookahead: vclock.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		w, err := NewWorld(eng, WorldConfig{Net: testNet(ranks), Proc: procmodel.Paper()})
		if err != nil {
			t.Fatal(err)
		}
		frng := rand.New(rand.NewSource(seed ^ 0x5ca1ab1e))
		for i := 0; i < 2; i++ {
			rank := frng.Intn(ranks)
			at := vclock.Time(frng.Int63n(int64(50 * vclock.Millisecond)))
			if err := eng.ScheduleFailure(rank, at); err != nil {
				t.Fatal(err)
			}
		}
		res, err := w.Run(func(e *Env) {
			defer e.Finalize()
			c := e.World()
			me := e.Rank()
			var reqs []*Request
			for _, m := range script {
				if m.dst == me {
					r, err := c.Irecv(m.src, m.tag)
					if err != nil {
						return
					}
					reqs = append(reqs, r)
				}
			}
			for _, m := range script {
				if m.src == me {
					e.Elapse(vclock.Duration(me+1) * vclock.Millisecond)
					r, err := c.IsendN(m.dst, m.tag, m.size)
					if err != nil {
						return
					}
					reqs = append(reqs, r)
				}
			}
			// Fatal handler: a detected failure aborts the application,
			// which is the expected outcome for most seeds.
			c.Waitall(reqs)
		})
		if err != nil {
			t.Fatalf("seed %d workers %d: %v", seed, workers, err)
		}
		return res
	}
	for seed := int64(40); seed <= 45; seed++ {
		seq := run(seed, 1)
		par := run(seed, 4)
		if seq.Failed != par.Failed || seq.Aborted != par.Aborted || seq.Completed != par.Completed {
			t.Fatalf("seed %d: outcome mismatch seq=%+v par=%+v", seed, seq, par)
		}
		for r := range seq.FinalClocks {
			if seq.FinalClocks[r] != par.FinalClocks[r] {
				t.Fatalf("seed %d rank %d: %v != %v", seed, r, par.FinalClocks[r], seq.FinalClocks[r])
			}
		}
	}
}
