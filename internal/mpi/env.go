package mpi

import (
	"fmt"

	"xsim/internal/core"
	"xsim/internal/fsmodel"
	"xsim/internal/netmodel"
	"xsim/internal/procmodel"
	"xsim/internal/trace"
	"xsim/internal/vclock"
)

// CollectiveAlgo selects the collective communication algorithm.
type CollectiveAlgo int

const (
	// Linear collectives (the paper's configuration): the root
	// communicates with every other rank sequentially.
	Linear CollectiveAlgo = iota
	// Tree collectives use binomial trees, the usual optimisation; kept
	// for the collective-algorithm ablation.
	Tree
)

// String names the algorithm.
func (a CollectiveAlgo) String() string {
	if a == Tree {
		return "tree"
	}
	return "linear"
}

// WorldConfig parameterises the simulated MPI world.
type WorldConfig struct {
	// Net is the network model (required).
	Net *netmodel.Model
	// Proc is the processor model used by Env.Compute.
	Proc procmodel.Model
	// NotifyDelay is the latency of simulator-internal failure/abort
	// notifications. Zero defaults to the system link latency. With a
	// parallel engine it must be at least the engine lookahead.
	NotifyDelay vclock.Duration
	// CallOverhead is the per-MPI-call CPU cost charged to the caller.
	CallOverhead vclock.Duration
	// Collectives selects the collective algorithm (default Linear, as
	// in the paper).
	Collectives CollectiveAlgo
	// FSStore and FSModel expose the simulated parallel file system to
	// applications; FSStore may be nil if the application does no I/O.
	FSStore *fsmodel.Store
	// FSModel is the file-system cost model (zero value = free I/O,
	// matching the paper's Table II configuration).
	FSModel fsmodel.Model
	// FSHierarchy, when non-empty, describes a multi-tier checkpoint
	// storage hierarchy (node-local memory → burst buffer → PFS) used by
	// the checkpoint layer for staged writes. Empty means flat
	// single-tier storage under FSModel.
	FSHierarchy fsmodel.Hierarchy
	// Tracer, when set, receives one typed event per MPI operation
	// (sends, receive posts, completions, failures, detections, aborts)
	// for timeline analysis. It must be safe for concurrent use
	// (partitions record in parallel).
	Tracer Tracer
	// Validate compiles the MPI layer's internal invariant checks into
	// the run: posted-receive index consistency, unexpected-queue
	// conservation, and a pending-request sweep at Finalize. It is forced
	// on when the engine itself was built with Validate. Violations panic
	// with a *check.Violation naming the rank, operation and virtual
	// time.
	Validate bool
}

// Tracer receives typed simulator events; internal/trace.Buffer implements
// it. Events carry fixed fields only — no strings are formatted on the
// record path.
type Tracer interface {
	Record(ev trace.Event)
}

// trace records an event if tracing is enabled.
func (w *World) trace(ev trace.Event) {
	if w.cfg.Tracer != nil {
		w.cfg.Tracer.Record(ev)
	}
}

// World wires the simulated MPI layer into a core engine. Create the
// engine, then the world, then call World.Run with the application.
type World struct {
	cfg WorldConfig
	eng *core.Engine
	m   metrics
	// pools holds one data-plane pool per engine partition; a pool is
	// only touched by its partition's execution context (see pool.go).
	pools []*dpPool
}

// Event kinds registered by the MPI layer.
const (
	kindEnvelope core.Kind = core.FirstUserKind + iota
	kindCts
	kindData
	kindReqTimeout
	kindFailNotify
	kindAbortNotify
	kindRevoke
	// KindEnd is the first kind available to layers above MPI.
	KindEnd
)

// NewWorld validates cfg, registers the MPI event handlers and death hook
// on eng, and returns the world.
func NewWorld(eng *core.Engine, cfg WorldConfig) (*World, error) {
	if cfg.Net == nil {
		return nil, fmt.Errorf("mpi: WorldConfig.Net is required")
	}
	if err := cfg.Net.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Proc.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.FSModel.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.FSHierarchy.Validate(); err != nil {
		return nil, err
	}
	if cfg.NotifyDelay == 0 {
		cfg.NotifyDelay = cfg.Net.System.Latency
	}
	if cfg.NotifyDelay < 0 || cfg.CallOverhead < 0 {
		return nil, fmt.Errorf("mpi: NotifyDelay and CallOverhead must be non-negative")
	}
	if cfg.Net.Topo.Nodes() < eng.NumVPs() {
		return nil, fmt.Errorf("mpi: topology has %d nodes for %d ranks (one rank per node)",
			cfg.Net.Topo.Nodes(), eng.NumVPs())
	}
	if eng.ValidateEnabled() {
		cfg.Validate = true
	}
	if eng.Workers() > 1 {
		la := eng.Lookahead()
		minDelay := cfg.NotifyDelay
		for _, d := range []vclock.Duration{cfg.Net.System.Latency, cfg.Net.OnNode.Latency} {
			if d < minDelay {
				minDelay = d
			}
		}
		if la > minDelay {
			return nil, fmt.Errorf("mpi: engine lookahead %v exceeds minimum event delay %v", la, minDelay)
		}
	}
	w := &World{cfg: cfg, eng: eng}
	w.m.init(eng.NumVPs())
	w.pools = make([]*dpPool, eng.Workers())
	for i := range w.pools {
		w.pools[i] = new(dpPool)
	}
	eng.RegisterHandler(kindEnvelope, w.handleEnvelope)
	eng.RegisterHandler(kindCts, w.handleCts)
	eng.RegisterHandler(kindData, w.handleData)
	eng.RegisterHandler(kindReqTimeout, w.handleReqTimeout)
	eng.RegisterHandler(kindFailNotify, w.handleFailNotify)
	eng.RegisterHandler(kindAbortNotify, w.handleAbortNotify)
	eng.RegisterHandler(kindRevoke, w.handleRevoke)
	eng.OnDeath(w.onDeath)
	return w, nil
}

// Engine returns the underlying core engine.
func (w *World) Engine() *core.Engine { return w.eng }

// Config returns the world configuration.
func (w *World) Config() WorldConfig { return w.cfg }

// Run executes app once per simulated MPI process and drives the
// simulation to completion. An application that returns without calling
// Env.Finalize is treated as a process failure, mirroring the paper's
// fault model (returning from main or calling exit without MPI_Finalize).
func (w *World) Run(app func(*Env)) (*core.Result, error) {
	return w.eng.Run(func(c *core.Ctx) {
		env := newProcEnv(w, c)
		app(env)
		if !env.finalized {
			c.Logf("exited without MPI_Finalize: simulated MPI process failure")
			c.FailNow()
		}
	})
}

// procBundle packs one process's MPI state — procState, Env, and the world
// communicator — into a single allocation. At million-rank scale the
// per-VP allocation count is the memory bill: one bundle instead of three
// objects, and every index inside procState starts empty (inline or nil)
// instead of six pre-made maps.
type procBundle struct {
	ps    procState
	env   Env
	world Comm
}

// newProcEnv builds and attaches the per-process MPI state for the VP in
// whose context it runs.
func newProcEnv(w *World, c *core.Ctx) *Env {
	b := &procBundle{}
	initProcEnv(b, w, c)
	return &b.env
}

// initProcEnv wires up a (possibly embedded) procBundle in VP context.
func initProcEnv(b *procBundle, w *World, c *core.Ctx) {
	b.env = Env{w: w, ctx: c, ps: &b.ps, world: &b.world}
	b.world = Comm{env: &b.env, id: 0, n: c.N(), rank: c.Rank()}
	b.ps.dp = w.pools[c.Partition()]
	b.ps.env = &b.env
	c.SetData(&b.ps)
}

// onDeath broadcasts the simulator-internal failure notification when a
// simulated MPI process fails: an informational message is printed, and
// every simulated process is notified of the failed rank and its time of
// failure so that it can maintain its own list of failed peers.
func (w *World) onDeath(c *core.Ctx, reason core.DeathReason) {
	// Whatever the death reason, the rank's queued unexpected envelopes
	// are unreachable now — release them and their payload buffers.
	if ps, ok := c.Data().(*procState); ok {
		ps.drainUnexpected()
		ps.releaseIndexes()
	}
	if reason != core.DeathFailed {
		return
	}
	at := c.NowQuiet()
	c.Logf("simulated MPI process failure injected (rank %d, time of failure %v)", c.Rank(), at)
	w.trace(trace.Event{At: at, Kind: trace.KindFailure, Rank: int32(c.Rank()), Peer: -1})
	w.m.recordFailure(c.Rank(), at, at.Add(w.cfg.NotifyDelay))
	// EmitBroadcast copies the event value into one pooled event per
	// partition; the shared failNotify payload is never recycled.
	c.EmitBroadcast(core.Event{
		Time:    at.Add(w.cfg.NotifyDelay),
		Kind:    kindFailNotify,
		Payload: failNotify{rank: c.Rank(), at: at},
	})
}

// procState is the MPI layer's per-VP state, attached as the core VP's
// user data. It is only touched from the owning partition (either the VP's
// own goroutine while running, or its partition's event handlers).
type procState struct {
	env *Env

	// dp is the data-plane pool of the partition this VP lives on,
	// shared by every local rank (only one of them executes at a time).
	dp *dpPool

	// Posted receives are indexed by (communicator, source) — a small
	// inline index (postedIdx) since most ranks only ever receive from a
	// handful of distinct sources — with wildcard-source receives in a
	// separate ordered intrusive list; postSeq establishes MPI's
	// first-match-in-post-order rule across the two.
	posted     postedIdx
	postedWild reqQ
	postSeq    uint64
	// Unexpected envelopes sit in a per-(comm, src) FIFO and, at the
	// same time, in their communicator's arrival-order list; arriveSeq
	// stamps arrival order (used by validation and probes). Both maps are
	// created on the first unexpected arrival — a rank whose receives are
	// always posted first (the common halo-exchange shape) never pays for
	// them.
	unexpBySrc  map[matchKey]*envSrcQ
	unexpByComm map[int]*envArrQ
	arriveSeq   uint64
	// Incomplete requests thread through an id-ordered intrusive list
	// (pendHead/pendTail; ids are monotonic, so appends keep the order
	// the failure-notification scan depends on). Handler lookups walk the
	// list while it is short — pending sets are a handful of requests in
	// every common workload — and switch to the pendSpill map once
	// pendLen ever exceeds pendSpillThreshold (fan-in collectives).
	pendHead  *Request
	pendTail  *Request
	pendLen   int
	pendSpill map[uint64]*Request
	// failedPeers is this process's own list of failed simulated MPI
	// processes and their times of failure (the paper's per-process
	// failed list, filled in by notification events; nil until the first
	// notification arrives).
	failedPeers map[int]vclock.Time
	// waitingOn is the request set the VP is currently blocked on.
	waitingOn []*Request
	// probes holds outstanding blocking probes (at most one: a process
	// blocks in a single Probe at a time; kept as a slice for symmetry).
	probes []*probeRec
	// nextReqID numbers this VP's requests.
	nextReqID uint64

	// revoked communicator ids (ULFM extension).
	revoked map[int]bool

	// f64s is the collectives' per-process scratch for decoded operands
	// (see scratchF64); reused across reduction hops.
	f64s []float64

	// injectFreeAt and ejectFreeAt model endpoint contention: the
	// virtual times this node's NIC finishes its current injection and
	// ejection (used only when the network model enables contention).
	injectFreeAt vclock.Time
	ejectFreeAt  vclock.Time
}

func (ps *procState) newReqID() uint64 {
	ps.nextReqID++
	return ps.nextReqID
}

// Env is the per-process handle a simulated application uses: the analogue
// of the MPI library state inside one MPI process.
type Env struct {
	w     *World
	ctx   *core.Ctx
	ps    *procState
	world *Comm

	finalized  bool
	nextCommID int
	// prog marks a process executing as a program VP (World.RunProgs):
	// blocking calls panic with a typed ClosureOnlyError instead of
	// reaching core.Ctx.Block, directing the caller at the step-based
	// states (WaitState, RecvState, CollectiveState, SleepState, ...).
	prog bool
}

// Rank returns the process's world rank.
func (e *Env) Rank() int { return e.ctx.Rank() }

// Size returns the world size (total simulated MPI processes).
func (e *Env) Size() int { return e.ctx.N() }

// World returns the world communicator (all ranks).
func (e *Env) World() *Comm { return e.world }

// Now returns the process's virtual clock. Like a timing function in xSim
// (gettimeofday), it updates the clock and lets a pending failure or abort
// activate.
func (e *Env) Now() vclock.Time { return e.ctx.Now() }

// Elapse advances the virtual clock by d, modelling local computation.
func (e *Env) Elapse(d vclock.Duration) { e.ctx.Elapse(d) }

// Compute advances the virtual clock by the processor model's time for ops
// work units (reference-core cycles).
func (e *Env) Compute(ops float64) { e.ctx.Elapse(e.w.cfg.Proc.ComputeTime(ops)) }

// Sleep advances the virtual clock by d while yielding to the simulator
// (interruptible by failures and aborts, unlike Elapse). Programs use
// SleepStep instead: a positive-duration Sleep blocks, which a program
// VP cannot do.
func (e *Env) Sleep(d vclock.Duration) {
	if e.prog && d > 0 {
		panic(&ClosureOnlyError{Op: "sleep", Rank: e.Rank()})
	}
	e.ctx.Sleep(d)
}

// Finalize marks a clean MPI exit. Applications that return without
// calling it are treated as failed processes. In Validate mode it also
// runs the conservation sweep: a clean exit must leave no pending
// requests, no posted receives, no outstanding probes, and an unexpected
// queue consistent with its depth gauge.
func (e *Env) Finalize() {
	if e.w.cfg.Validate && !e.finalized {
		e.ps.checkFinalize()
	}
	if !e.finalized {
		// Unmatched messages are unreachable after a clean exit: release
		// the envelopes and their payload buffers back to the pool.
		e.ps.drainUnexpected()
	}
	e.finalized = true
}

// Finalized reports whether Finalize was called.
func (e *Env) Finalized() bool { return e.finalized }

// Abort aborts the simulated application from this process (MPI_Abort on
// the world communicator). It does not return.
func (e *Env) Abort(code int) { e.world.Abort(code) }

// FailNow makes this process fail immediately (an application-triggered
// process failure). It does not return.
func (e *Env) FailNow() { e.ctx.FailNow() }

// ScheduleFailure schedules this process's own failure at virtual time t
// (the earliest failure time; the actual failure happens at the next clock
// update at or past t).
func (e *Env) ScheduleFailure(t vclock.Time) { e.ctx.SetTimeOfFailure(t) }

// FailedPeers returns a snapshot of this process's failed-peer list as a
// map from world rank to time of failure.
func (e *Env) FailedPeers() map[int]vclock.Time {
	out := make(map[int]vclock.Time, len(e.ps.failedPeers))
	for r, t := range e.ps.failedPeers {
		out[r] = t
	}
	return out
}

// PeerFailed reports whether this process has been notified of the given
// world rank's failure. It is the allocation-free form of FailedPeers for
// hot paths that only test one peer's liveness (the redundancy layer's
// failover checks).
func (e *Env) PeerFailed(rank int) bool {
	_, dead := e.ps.failedPeers[rank]
	return dead
}

// FSStore returns the simulated parallel file system contents (nil if the
// world was configured without one).
func (e *Env) FSStore() *fsmodel.Store { return e.w.cfg.FSStore }

// FSModel returns the file-system cost model.
func (e *Env) FSModel() fsmodel.Model { return e.w.cfg.FSModel }

// FSHierarchy returns the multi-tier checkpoint storage hierarchy (empty
// for flat single-tier storage).
func (e *Env) FSHierarchy() fsmodel.Hierarchy { return e.w.cfg.FSHierarchy }

// Logf writes an informational message through the simulator's logger.
func (e *Env) Logf(format string, args ...any) { e.ctx.Logf(format, args...) }

// chargeCall charges the per-call CPU overhead; every MPI call is a clock
// update point where pending failures and aborts activate.
func (e *Env) chargeCall() { e.ctx.Elapse(e.w.cfg.CallOverhead) }

// coreCtx exposes the core context to sibling packages (ULFM).
func (e *Env) coreCtx() *core.Ctx { return e.ctx }
