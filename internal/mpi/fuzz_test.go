package mpi

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzUnframe exercises the collective payload deframer with arbitrary
// bytes: it must never panic or over-allocate, and anything it accepts
// must survive a frame/unframe round trip unchanged.
func FuzzUnframe(f *testing.F) {
	f.Add([]byte{})
	f.Add(frame(nil))
	f.Add(frame([][]byte{nil}))
	f.Add(frame([][]byte{[]byte("a"), {}, []byte("bcd")}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})                   // hostile part count
	f.Add([]byte{2, 0, 0, 0, 0xff, 0xff, 0xff, 0xff, 0, 0}) // hostile part length
	f.Add([]byte{1, 0, 0, 0})                               // count without part
	f.Fuzz(func(t *testing.T, data []byte) {
		parts, err := unframe(data)
		if err != nil {
			return
		}
		again, err := unframe(frame(parts))
		if err != nil {
			t.Fatalf("re-framed buffer rejected: %v", err)
		}
		if len(again) != len(parts) {
			t.Fatalf("round trip changed part count: %d vs %d", len(again), len(parts))
		}
		for i := range parts {
			if !bytes.Equal(again[i], parts[i]) {
				t.Fatalf("round trip changed part %d: %q vs %q", i, again[i], parts[i])
			}
		}
	})
}

// FuzzDecodeF64s exercises the reduction payload decoder: it must accept
// exactly the buffers encodeF64s produces and reproduce them bitwise.
func FuzzDecodeF64s(f *testing.F) {
	f.Add([]byte{}, 0)
	f.Add(encodeF64s([]float64{1.5, -2.25}), 2)
	f.Add(encodeF64s([]float64{0}), 2) // length mismatch
	f.Add([]byte{1, 2, 3}, 1)
	f.Add([]byte{}, -1)
	f.Fuzz(func(t *testing.T, data []byte, n int) {
		vals, err := decodeF64s(data, n)
		if (err == nil) != (n >= 0 && n <= len(data)/8 && len(data) == 8*n) {
			t.Fatalf("decodeF64s(%d bytes, n=%d) err=%v", len(data), n, err)
		}
		if err != nil {
			return
		}
		if !bytes.Equal(encodeF64s(vals), data) {
			t.Fatalf("encode/decode round trip changed %d-float payload", n)
		}
	})
}

// sanity check used by the fuzz seeds above.
func TestFrameLayout(t *testing.T) {
	buf := frame([][]byte{[]byte("xy")})
	if binary.LittleEndian.Uint32(buf) != 1 {
		t.Fatalf("frame header = %v", buf)
	}
}

// Regression: a framed buffer whose count field claims 2^32-1 parts used
// to size the output slice before reading a single part, driving a
// multi-gigabyte allocation from a 4-byte input.
func TestUnframeRejectsHostileCount(t *testing.T) {
	if _, err := unframe([]byte{0xff, 0xff, 0xff, 0xff}); err == nil {
		t.Fatal("hostile part count should be rejected")
	}
	if _, err := unframe([]byte{2, 0, 0, 0, 1, 0, 0, 0}); err == nil {
		t.Fatal("count beyond available prefixes should be rejected")
	}
}
