package mpi

import (
	"testing"

	"xsim/internal/core"
	"xsim/internal/netmodel"
	"xsim/internal/procmodel"
	"xsim/internal/vclock"
)

// contendedNet returns the test network with endpoint NICs limited to
// 1 GB/s in both directions.
func contendedNet(n int) *netmodel.Model {
	net := testNet(n)
	net.InjectBandwidth = 1e9
	net.EjectBandwidth = 1e9
	return net
}

func runContended(t *testing.T, n int, net *netmodel.Model, app func(*Env)) *core.Result {
	t.Helper()
	eng, err := core.New(core.Config{NumVPs: n})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(eng, WorldConfig{Net: net, Proc: procmodel.Paper()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(func(e *Env) {
		app(e)
		if !e.Finalized() {
			e.Finalize()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestIncastSerialisesAtReceiver(t *testing.T) {
	// 8 senders each push 1 kB (eager) to rank 0 at t=0. Contention-free,
	// all arrive after one transfer time; with a 1 GB/s ejection NIC the
	// payloads serialise: the last completes no earlier than 8 kB / 1 GB/s.
	const n = 9
	const size = 1000
	run := func(net *netmodel.Model) vclock.Time {
		res := runContended(t, n, net, func(e *Env) {
			c := e.World()
			if e.Rank() == 0 {
				for i := 1; i < n; i++ {
					if _, err := c.Recv(AnySource, 0); err != nil {
						t.Errorf("recv: %v", err)
					}
				}
			} else {
				if err := c.SendN(0, 0, size); err != nil {
					t.Errorf("send: %v", err)
				}
			}
		})
		return res.FinalClocks[0]
	}
	free := run(testNet(n))
	contended := run(contendedNet(n))
	if contended <= free {
		t.Fatalf("incast with contention (%v) should be slower than without (%v)", contended, free)
	}
	// The serialised lower bound: 8 payloads through a 1 GB/s NIC.
	lower := vclock.TimeFromSeconds(8 * size / 1e9)
	if contended < lower {
		t.Fatalf("contended completion %v below the serialisation bound %v", contended, lower)
	}
}

func TestInjectionSerialisesAtSender(t *testing.T) {
	// One sender bursts 8 *rendezvous* payloads to distinct receivers.
	// (Eager bursts already serialise through the sender's CPU via the
	// per-send injection overhead; rendezvous data is pushed by the NIC
	// after the clear-to-send, which is where injection contention
	// bites.) With contention the last receiver finishes no earlier than
	// 8 payloads through the 1 GB/s NIC.
	const n = 9
	const size = 4096 // above the 1 KiB test eager threshold
	run := func(net *netmodel.Model) vclock.Time {
		var last vclock.Time
		res := runContended(t, n, net, func(e *Env) {
			c := e.World()
			if e.Rank() == 0 {
				var reqs []*Request
				for i := 1; i < n; i++ {
					r, err := c.IsendN(i, 0, size)
					if err != nil {
						t.Errorf("isend: %v", err)
						return
					}
					reqs = append(reqs, r)
				}
				if err := c.Waitall(reqs); err != nil {
					t.Errorf("waitall: %v", err)
				}
			} else {
				if _, err := c.Recv(0, 0); err != nil {
					t.Errorf("recv: %v", err)
				}
			}
		})
		for r := 1; r < n; r++ {
			if res.FinalClocks[r] > last {
				last = res.FinalClocks[r]
			}
		}
		return last
	}
	free := run(testNet(n))
	contended := run(contendedNet(n))
	if contended <= free {
		t.Fatalf("burst with contention (%v) should be slower than without (%v)", contended, free)
	}
	lower := vclock.TimeFromSeconds(8 * size / 1e9)
	if contended < lower {
		t.Fatalf("contended completion %v below the injection bound %v", contended, lower)
	}
}

func TestRendezvousContention(t *testing.T) {
	// Two rendezvous payloads to the same receiver: ejection contention
	// pushes the second's completion behind the first's occupancy.
	const size = 4096
	net := contendedNet(3)
	res := runContended(t, 3, net, func(e *Env) {
		c := e.World()
		if e.Rank() == 0 {
			m1, err := c.Recv(AnySource, 0)
			if err != nil {
				t.Errorf("recv1: %v", err)
			}
			m2, err := c.Recv(AnySource, 0)
			if err != nil {
				t.Errorf("recv2: %v", err)
			}
			if m1.Size != size || m2.Size != size {
				t.Error("sizes wrong")
			}
		} else {
			if err := c.SendN(0, 0, size); err != nil {
				t.Errorf("send: %v", err)
			}
		}
	})
	// The receiver's final clock covers at least two payload ejections.
	if res.FinalClocks[0] < vclock.TimeFromSeconds(2*size/1e9) {
		t.Fatalf("receiver clock %v below two ejection occupancies", res.FinalClocks[0])
	}
}

func TestContentionOffByDefault(t *testing.T) {
	net := testNet(2)
	if net.Contended() {
		t.Fatal("test net should be contention-free by default")
	}
	if netmodel.Paper().Contended() {
		t.Fatal("paper net should be contention-free (as in the paper)")
	}
	if got := net.InjectOccupancy(1 << 20); got != 0 {
		t.Fatalf("disabled occupancy = %v", got)
	}
}

func TestContentionDeterministicAcrossWorkers(t *testing.T) {
	const n = 8
	run := func(workers int) []vclock.Time {
		eng, err := core.New(core.Config{NumVPs: n, Workers: workers, Lookahead: vclock.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		w, err := NewWorld(eng, WorldConfig{Net: contendedNet(n), Proc: procmodel.Paper()})
		if err != nil {
			t.Fatal(err)
		}
		res, err := w.Run(func(e *Env) {
			defer e.Finalize()
			c := e.World()
			if e.Rank() == 0 {
				for i := 1; i < n; i++ {
					if _, err := c.Recv(i, 0); err != nil {
						t.Errorf("recv: %v", err)
					}
				}
			} else {
				e.Elapse(vclock.Duration(e.Rank()) * vclock.Microsecond)
				if err := c.SendN(0, 0, 2000); err != nil {
					t.Errorf("send: %v", err)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalClocks
	}
	seq := run(1)
	par := run(4)
	for r := range seq {
		if seq[r] != par[r] {
			t.Fatalf("rank %d: %v != %v", r, par[r], seq[r])
		}
	}
}
