package mpi

import (
	"testing"

	"xsim/internal/vclock"
)

// Regression: a fully-wild (AnySource, AnyTag) receive must never
// intercept simulator-internal traffic (negative tags — barriers,
// collectives, ULFM). Found by the differential harness: rank 0's wild
// receive stole rank 1's barrier-entry message, deadlocking the barrier
// while the real user message sat in the unexpected queue forever.
func TestWildcardRecvIgnoresInternalTags(t *testing.T) {
	for _, workers := range []int{1, 2} {
		var got *Message
		runWorld(t, 2, workers, func(e *Env) {
			c := e.World()
			switch c.Rank() {
			case 0:
				req, err := c.Irecv(AnySource, AnyTag)
				if err != nil {
					t.Error(err)
					return
				}
				// The barrier's internal message from rank 1 arrives while
				// the wild receive is the oldest posted request.
				if err := c.Barrier(); err != nil {
					t.Error(err)
					return
				}
				msg, err := c.Wait(req)
				if err != nil {
					t.Error(err)
					return
				}
				got = msg
			case 1:
				if err := c.Barrier(); err != nil {
					t.Error(err)
					return
				}
				if err := c.Send(0, 5, []byte("user")); err != nil {
					t.Error(err)
				}
			}
		})
		if got == nil || got.Src != 1 || got.Tag != 5 || string(got.Data) != "user" {
			t.Fatalf("workers=%d: wild recv matched %+v, want user message tag 5 from rank 1", workers, got)
		}
	}
}

// Regression companion: probes with AnyTag must not observe internal
// envelopes sitting in the unexpected queue.
func TestWildcardProbeIgnoresInternalTags(t *testing.T) {
	runWorld(t, 2, 1, func(e *Env) {
		c := e.World()
		switch c.Rank() {
		case 0:
			// Rank 1 enters the barrier immediately, so its internal
			// barrier-entry envelope is queued unexpected here by now.
			e.Elapse(50 * vclock.Microsecond)
			if msg, ok, err := c.Iprobe(AnySource, AnyTag); err != nil {
				t.Error(err)
			} else if ok {
				t.Errorf("wild Iprobe saw internal envelope %+v", msg)
			}
			if err := c.Barrier(); err != nil {
				t.Error(err)
			}
		case 1:
			if err := c.Barrier(); err != nil {
				t.Error(err)
			}
		}
	})
}
