package mpi

import (
	"fmt"
	"sort"

	"xsim/internal/core"
	"xsim/internal/trace"
	"xsim/internal/vclock"
)

// envelope is the matching unit travelling between processes. Both eager
// messages and rendezvous ready-to-send envelopes are control-sized, so
// envelopes from one sender arrive in send order and MPI's non-overtaking
// matching rule holds; an eager payload becomes available at dataAt, while
// a rendezvous payload is transferred only after the receiver matches.
type envelope struct {
	commID      int
	src, dst    int // world ranks
	srcCommRank int // sender's rank within the communicator
	tag         int
	size        int

	// Eager fields.
	data   []byte
	dataAt vclock.Time

	// Rendezvous fields.
	rendezvous bool
	sendReqID  uint64

	// arriveSeq orders unexpected envelopes at the receiver.
	arriveSeq uint64
}

// ctsMsg is the rendezvous clear-to-send control message (receiver→sender).
type ctsMsg struct {
	sendReqID uint64
	recvReqID uint64
	recvRank  int // world rank of the receiver
}

// dataMsg is the rendezvous payload delivery (sender→receiver).
type dataMsg struct {
	recvReqID uint64
	data      []byte
}

// reqTimeout fires the failure-detection timeout of a pending request.
type reqTimeout struct {
	reqID    uint64
	peer     int
	failedAt vclock.Time
}

// failNotify is the simulator-internal failure notification payload.
type failNotify struct {
	rank int
	at   vclock.Time
}

// abortNotify is the simulator-internal abort notification payload.
type abortNotify struct {
	origin int
	at     vclock.Time
	code   int
}

// matchKey indexes posted receives and unexpected envelopes by
// communicator and source world rank.
type matchKey struct{ comm, src int }

// tagOK reports whether a posted receive's tag accepts an envelope's tag.
// AnyTag only spans the application tag space: internal messages (negative
// tags — barriers, collectives, ULFM) must never be intercepted by user
// wildcards, mirroring MPI's separate collective context.
func tagOK(r *Request, env *envelope) bool {
	if r.tag == AnyTag {
		return env.tag >= 0
	}
	return r.tag == env.tag
}

// addPosted files a receive request into the posted index.
func (ps *procState) addPosted(r *Request) {
	ps.postSeq++
	r.postSeq = ps.postSeq
	r.posted = true
	r.wild = r.src == AnySource
	if r.wild {
		ps.postedWild = append(ps.postedWild, r)
		return
	}
	r.postKey = matchKey{r.comm.id, r.src}
	ps.postedBySrc[r.postKey] = append(ps.postedBySrc[r.postKey], r)
}

// removePosted unfiles a receive request; it is a no-op for requests that
// already matched.
func (ps *procState) removePosted(r *Request) {
	if !r.posted {
		return
	}
	r.posted = false
	if r.wild {
		for i, q := range ps.postedWild {
			if q == r {
				ps.postedWild = append(ps.postedWild[:i], ps.postedWild[i+1:]...)
				return
			}
		}
		return
	}
	list := ps.postedBySrc[r.postKey]
	for i, q := range list {
		if q == r {
			if i == 0 {
				list = list[1:]
			} else {
				list = append(list[:i], list[i+1:]...)
			}
			break
		}
	}
	if len(list) == 0 {
		delete(ps.postedBySrc, r.postKey)
	} else {
		ps.postedBySrc[r.postKey] = list
	}
}

// takePosted finds and unfiles the posted receive an arriving envelope
// matches: the earliest-posted compatible request, considering both the
// exact-source list and wildcard receives (MPI's matching rule).
func (ps *procState) takePosted(env *envelope) *Request {
	var best *Request
	for _, r := range ps.postedBySrc[matchKey{env.commID, env.src}] {
		if tagOK(r, env) {
			best = r
			break
		}
	}
	for _, r := range ps.postedWild {
		if r.comm.id == env.commID && tagOK(r, env) {
			if best == nil || r.postSeq < best.postSeq {
				best = r
			}
			break
		}
	}
	if best != nil {
		ps.removePosted(best)
	}
	return best
}

// addUnexpected queues an envelope that matched no posted receive.
func (ps *procState) addUnexpected(env *envelope) {
	ps.arriveSeq++
	env.arriveSeq = ps.arriveSeq
	k := matchKey{env.commID, env.src}
	ps.unexpBySrc[k] = append(ps.unexpBySrc[k], env)
	ps.env.w.m.unexpectedDelta(env.dst, 1)
}

// takeUnexpected finds and removes the earliest-arrived envelope a freshly
// posted receive matches. For wildcard receives the earliest arrival
// across all sources wins (a deterministic min-scan, immune to map
// iteration order).
func (ps *procState) takeUnexpected(req *Request) *envelope {
	if req.src != AnySource {
		k := matchKey{req.comm.id, req.src}
		list := ps.unexpBySrc[k]
		for i, env := range list {
			if tagOK(req, env) {
				// The match is usually the head: slice it off without
				// copying the (possibly long) tail.
				if i == 0 {
					list = list[1:]
				} else {
					list = append(list[:i], list[i+1:]...)
				}
				if len(list) == 0 {
					delete(ps.unexpBySrc, k)
				} else {
					ps.unexpBySrc[k] = list
				}
				ps.env.w.m.unexpectedDelta(env.dst, -1)
				return env
			}
		}
		return nil
	}
	var best *envelope
	var bestKey matchKey
	var bestIdx int
	for k, list := range ps.unexpBySrc {
		if k.comm != req.comm.id {
			continue
		}
		for i, env := range list {
			if tagOK(req, env) {
				if best == nil || env.arriveSeq < best.arriveSeq {
					best, bestKey, bestIdx = env, k, i
				}
				break
			}
		}
	}
	if best == nil {
		return nil
	}
	list := ps.unexpBySrc[bestKey]
	if bestIdx == 0 {
		list = list[1:]
	} else {
		list = append(list[:bestIdx], list[bestIdx+1:]...)
	}
	if len(list) == 0 {
		delete(ps.unexpBySrc, bestKey)
	} else {
		ps.unexpBySrc[bestKey] = list
	}
	ps.env.w.m.unexpectedDelta(best.dst, -1)
	return best
}

// emitter abstracts the two contexts that can emit events and read the
// current virtual time: a running VP (its own Ctx) and an event handler
// (SchedCtx). Message matching runs in both.
//
// Pooled-event discipline: emit takes the core.Event by value and the
// engine copies it into a pooled event, so the MPI layer never holds a
// *core.Event of its own. Anything that must outlive the emit call or the
// handler invocation — envelopes, CTS records, notifications — travels as
// a Payload, which the engine never recycles.
type emitter interface {
	emit(ev core.Event)
	now() vclock.Time
}

// vpEmitter adapts a VP context.
type vpEmitter struct{ ctx *core.Ctx }

func (v vpEmitter) emit(ev core.Event) { v.ctx.Emit(ev) }
func (v vpEmitter) now() vclock.Time   { return v.ctx.NowQuiet() }

// schedEmitter adapts a handler context. rank is the local rank the
// handler is acting for; the engine derives the emitted event's
// deterministic ordering key from it (see core.SchedCtx.EmitFor), keeping
// same-virtual-time tie-breaks independent of the partition layout.
type schedEmitter struct {
	s    *core.SchedCtx
	rank int
}

func (h schedEmitter) emit(ev core.Event) { h.s.EmitFor(h.rank, ev) }
func (h schedEmitter) now() vclock.Time   { return h.s.Now() }

// isend posts a nonblocking send and returns its request. Internal: the
// public wrappers apply the communicator's error handler.
func (c *Comm) isend(dstCommRank, tag, size int, data []byte) (*Request, error) {
	e := c.env
	e.chargeCall()
	if err := c.checkRevoked("send"); err != nil {
		return nil, err
	}
	if dstCommRank < 0 || dstCommRank >= c.n {
		return nil, fmt.Errorf("mpi: send destination rank %d out of range [0,%d)", dstCommRank, c.n)
	}
	if tag < 0 {
		return nil, fmt.Errorf("mpi: send tag %d must be non-negative", tag)
	}
	return c.isendTag(dstCommRank, tag, size, data), nil
}

// isendTag posts a send with any tag value (internal tags are negative).
func (c *Comm) isendTag(dstCommRank, tag, size int, data []byte) *Request {
	e := c.env
	net := e.w.cfg.Net
	src := e.Rank()
	dst := c.WorldRank(dstCommRank)
	// Snapshot the payload: MPI owns the buffer until completion, and a
	// broadcast root reuses one buffer across many sends.
	if data != nil {
		data = append([]byte(nil), data...)
	}
	req := &Request{
		id:        e.ps.newReqID(),
		kind:      sendReq,
		comm:      c,
		src:       src,
		dst:       dst,
		tag:       tag,
		size:      size,
		data:      data,
		postClock: e.ctx.NowQuiet(),
	}
	env := &envelope{
		commID:      c.id,
		src:         src,
		dst:         dst,
		srcCommRank: c.rank,
		tag:         tag,
		size:        size,
	}
	t0 := e.ctx.NowQuiet()
	eager := net.Eager(size)
	e.w.m.countSend(src, size, !eager)
	if e.w.cfg.Tracer != nil {
		ev := trace.Event{At: t0, Kind: trace.KindSend, Rank: int32(src), Peer: int32(dst), Tag: int32(tag), Size: int64(size)}
		if !eager {
			ev.Flags = trace.FlagRendezvous
		}
		e.w.cfg.Tracer.Record(ev)
	}
	if eager {
		// Endpoint contention: the payload queues behind earlier
		// injections at this node's NIC.
		inject := t0
		if occ := net.InjectOccupancy(size); occ > 0 {
			inject = vclock.Max(t0, e.ps.injectFreeAt)
			e.ps.injectFreeAt = inject.Add(occ)
		}
		env.data = data
		env.dataAt = inject.Add(net.TransferTime(src, dst, size))
		// An eager send completes locally once the message is injected;
		// it never waits on the receiver (fire-and-forget buffering).
		req.done = true
		e.ctx.Emit(core.Event{Time: t0.Add(net.ControlTime(src, dst)), Kind: kindEnvelope, Target: dst, Payload: env})
		e.ctx.Elapse(net.SendOverhead(src, dst, size))
		req.completeAt = e.ctx.NowQuiet()
	} else {
		// Rendezvous: send the ready-to-send envelope and wait for the
		// receiver's clear-to-send before transferring the payload.
		env.rendezvous = true
		env.sendReqID = req.id
		e.ps.pending[req.id] = req
		e.ctx.Emit(core.Event{Time: t0.Add(net.ControlTime(src, dst)), Kind: kindEnvelope, Target: dst, Payload: env})
		e.ctx.Elapse(net.SendOverhead(src, dst, 0))
	}
	return req
}

// irecv posts a nonblocking receive. Internal: the public wrappers apply
// the communicator's error handler.
func (c *Comm) irecv(srcCommRank, tag int) (*Request, error) {
	e := c.env
	e.chargeCall()
	if err := c.checkRevoked("recv"); err != nil {
		return nil, err
	}
	if srcCommRank != AnySource && (srcCommRank < 0 || srcCommRank >= c.n) {
		return nil, fmt.Errorf("mpi: receive source rank %d out of range [0,%d)", srcCommRank, c.n)
	}
	if tag < 0 && tag != AnyTag {
		return nil, fmt.Errorf("mpi: receive tag %d must be non-negative or AnyTag", tag)
	}
	return c.irecvTag(srcCommRank, tag), nil
}

// irecvTag posts a receive with any tag value (internal tags are negative).
func (c *Comm) irecvTag(srcCommRank, tag int) *Request {
	e := c.env
	src := AnySource
	if srcCommRank != AnySource {
		src = c.WorldRank(srcCommRank)
	}
	req := &Request{
		id:        e.ps.newReqID(),
		kind:      recvReq,
		comm:      c,
		src:       src,
		dst:       e.Rank(),
		tag:       tag,
		postClock: e.ctx.NowQuiet(),
	}
	e.ps.pending[req.id] = req
	e.w.trace(trace.Event{At: req.postClock, Kind: trace.KindRecvPost, Rank: int32(e.Rank()), Peer: int32(src), Tag: int32(tag)})
	// Match the earliest compatible unexpected envelope first (arrival
	// order preserves MPI's non-overtaking rule).
	if env := e.ps.takeUnexpected(req); env != nil {
		matchEnvelope(e.w, e.ps, req, env, vpEmitter{e.ctx})
		if e.w.cfg.Validate {
			e.ps.checkIndexes("irecv-match")
		}
		return req
	}
	e.ps.addPosted(req)
	if e.w.cfg.Validate {
		e.ps.checkIndexes("irecv-post")
	}
	return req
}

// matchEnvelope binds a receive request to an envelope. For eager
// envelopes the request completes when the payload has arrived; for
// rendezvous envelopes a clear-to-send goes back to the sender and the
// request completes when the payload delivery event fires.
func matchEnvelope(w *World, ps *procState, req *Request, env *envelope, em emitter) {
	req.src = env.src
	req.msg = &Message{Src: env.srcCommRank, Tag: env.tag, Size: env.size}
	if env.rendezvous {
		req.awaitingData = true
		net := w.cfg.Net
		// The clear-to-send leaves once both the envelope has arrived
		// (em.now() when matching on arrival) and the receive is posted
		// (postClock when the envelope waited in the unexpected queue).
		em.emit(core.Event{
			Time:    vclock.Max(em.now(), req.postClock).Add(net.ControlTime(env.dst, env.src)),
			Kind:    kindCts,
			Target:  env.src,
			Payload: ctsMsg{sendReqID: env.sendReqID, recvReqID: req.id, recvRank: env.dst},
		})
		return
	}
	req.msg.Data = env.data
	completeRequest(ps, req, vclock.Max(req.postClock, env.dataAt), nil)
}

// completeRequest finalises a request at virtual time at.
func completeRequest(ps *procState, req *Request, at vclock.Time, err error) {
	req.done = true
	req.completeAt = at
	req.err = err
	req.awaitingData = false
	delete(ps.pending, req.id)
	ps.removePosted(req)
}

// waitReason describes a wait for deadlock reports.
func waitReason(reqs []*Request) string {
	if len(reqs) == 1 {
		r := reqs[0]
		if r.kind == recvReq {
			return fmt.Sprintf("MPI wait: recv from %d tag %d (comm %d)", r.src, r.tag, r.comm.id)
		}
		return fmt.Sprintf("MPI wait: send to %d tag %d (comm %d)", r.dst, r.tag, r.comm.id)
	}
	return fmt.Sprintf("MPI waitall: %d requests", len(reqs))
}

// wait blocks until every request completes, advancing the clock to the
// latest completion time. It returns the first error among the requests in
// request order. Internal: public wrappers apply the error handler.
func (e *Env) wait(reqs ...*Request) error {
	e.chargeCall()
	for {
		allDone := true
		var latest vclock.Time
		for _, r := range reqs {
			if !r.done {
				allDone = false
				break
			}
			if r.completeAt > latest {
				latest = r.completeAt
			}
		}
		if allDone {
			e.ctx.AdvanceTo(latest)
			if e.w.cfg.Tracer != nil {
				for _, r := range reqs {
					ev := trace.Event{At: r.completeAt, Kind: trace.KindComplete, Rank: int32(e.Rank()), Peer: int32(r.peer()), Size: int64(r.size)}
					if r.kind == sendReq {
						ev.Flags |= trace.FlagSendOp
					} else if r.msg != nil {
						ev.Size = int64(r.msg.Size)
					}
					if r.err != nil {
						ev.Flags |= trace.FlagError
						ev.Detail = r.opName() + " err=" + r.err.Error()
					}
					e.w.cfg.Tracer.Record(ev)
				}
			}
			for _, r := range reqs {
				if r.err != nil {
					return r.err
				}
			}
			return nil
		}
		// Before blocking, arm failure-detection timeouts for pending
		// requests that involve already-known-failed peers; requests
		// whose peer fails later are armed by the notification handler.
		for _, r := range reqs {
			if !r.done {
				e.ps.armTimeout(e.w, r, vpEmitter{e.ctx})
			}
		}
		e.ps.waitingOn = reqs
		e.ctx.Block(waitReason(reqs))
		e.ps.waitingOn = nil
	}
}

// armTimeout schedules the failure-detection timeout of a pending request
// whose peer is known to have failed. The operation completes in error at
// max(post time, time of failure) + the network tier's timeout — the
// paper's purely timeout-based detection — but never before the failure is
// knowable at this process.
func (ps *procState) armTimeout(w *World, req *Request, em emitter) {
	if req.done || req.timeoutScheduled {
		return
	}
	self := ps.env.Rank()
	best := vclock.Never
	bestPeer := -1
	consider := func(peer int, tof vclock.Time) {
		at := vclock.Max(req.postClock, tof).Add(w.cfg.Net.Timeout(self, peer))
		if at < best || (at == best && peer < bestPeer) {
			best, bestPeer = at, peer
		}
	}
	if req.kind == recvReq && req.src == AnySource {
		// Deterministic scan: pick the earliest-detectable failed peer.
		for peer, tof := range ps.failedPeers {
			consider(peer, tof)
		}
	} else if tof, ok := ps.failedPeers[req.peer()]; ok {
		consider(req.peer(), tof)
	}
	if bestPeer < 0 {
		return
	}
	at := vclock.Max(best, em.now())
	req.timeoutScheduled = true
	em.emit(core.Event{
		Time:    at,
		Kind:    kindReqTimeout,
		Target:  self,
		Payload: reqTimeout{reqID: req.id, peer: bestPeer, failedAt: ps.failedPeers[bestPeer]},
	})
}

// pendingInOrder returns the process's pending requests sorted by id, for
// deterministic iteration (map order is randomised).
func (ps *procState) pendingInOrder() []*Request {
	out := make([]*Request, 0, len(ps.pending))
	for _, r := range ps.pending {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}
