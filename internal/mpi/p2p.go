package mpi

import (
	"fmt"

	"xsim/internal/core"
	"xsim/internal/trace"
	"xsim/internal/vclock"
)

// envelope is the matching unit travelling between processes. Both eager
// messages and rendezvous ready-to-send envelopes are control-sized, so
// envelopes from one sender arrive in send order and MPI's non-overtaking
// matching rule holds; an eager payload becomes available at dataAt, while
// a rendezvous payload is transferred only after the receiver matches.
//
// Envelopes are pooled (dpPool): the sender's partition allocates one per
// message, and the receiver's partition recycles it when it is matched,
// dropped at a dead rank, or drained at finalize. While unexpected, an
// envelope sits in two intrusive lists at once — its (comm, src) FIFO
// (sNext/sPrev) and its communicator's arrival-order list (aNext/aPrev) —
// so wildcard matching walks arrivals directly instead of scanning every
// source.
type envelope struct {
	commID      int
	src, dst    int // world ranks
	srcCommRank int // sender's rank within the communicator
	tag         int
	size        int

	// Eager fields. data is a pooled buffer owned by the envelope until
	// matching transfers it to the receiver's Message.
	data   []byte
	dataAt vclock.Time

	// Rendezvous fields.
	rendezvous bool
	sendReqID  uint64

	// arriveSeq orders unexpected envelopes at the receiver.
	arriveSeq uint64

	// Unexpected-queue links: per-(comm, src) FIFO and per-communicator
	// arrival list.
	sNext, sPrev *envelope
	aNext, aPrev *envelope
}

// ctsMsg is the rendezvous clear-to-send control message (receiver→sender).
// Pooled: allocated by the receiver's partition, recycled by the sender's
// once consumed.
type ctsMsg struct {
	sendReqID uint64
	recvReqID uint64
	recvRank  int // world rank of the receiver
}

// dataMsg is the rendezvous payload delivery (sender→receiver). Pooled
// like ctsMsg; its data buffer transfers to the receiver's Message.
type dataMsg struct {
	recvReqID uint64
	data      []byte
}

// reqTimeout fires the failure-detection timeout of a pending request.
// Carried by value: timeouts only exist on the failure path.
type reqTimeout struct {
	reqID    uint64
	peer     int
	failedAt vclock.Time
}

// failNotify is the simulator-internal failure notification payload.
type failNotify struct {
	rank int
	at   vclock.Time
}

// abortNotify is the simulator-internal abort notification payload.
type abortNotify struct {
	origin int
	at     vclock.Time
	code   int
}

// matchKey indexes posted receives and unexpected envelopes by
// communicator and source world rank.
type matchKey struct{ comm, src int }

// reqQ is an intrusive list of posted receives in post order. The queue
// structs live in the posted index maps and are retained when emptied, so
// a rank that keeps receiving from the same peers never re-allocates them.
type reqQ struct{ head, tail *Request }

func (q *reqQ) push(r *Request) {
	r.pPrev = q.tail
	r.pNext = nil
	if q.tail != nil {
		q.tail.pNext = r
	} else {
		q.head = r
	}
	q.tail = r
}

func (q *reqQ) unlink(r *Request) {
	if r.pPrev != nil {
		r.pPrev.pNext = r.pNext
	} else {
		q.head = r.pNext
	}
	if r.pNext != nil {
		r.pNext.pPrev = r.pPrev
	} else {
		q.tail = r.pPrev
	}
	r.pNext, r.pPrev = nil, nil
}

// envSrcQ is the per-(comm, src) unexpected FIFO (sNext/sPrev links).
type envSrcQ struct{ head, tail *envelope }

func (q *envSrcQ) push(e *envelope) {
	e.sPrev = q.tail
	e.sNext = nil
	if q.tail != nil {
		q.tail.sNext = e
	} else {
		q.head = e
	}
	q.tail = e
}

func (q *envSrcQ) unlink(e *envelope) {
	if e.sPrev != nil {
		e.sPrev.sNext = e.sNext
	} else {
		q.head = e.sNext
	}
	if e.sNext != nil {
		e.sNext.sPrev = e.sPrev
	} else {
		q.tail = e.sPrev
	}
	e.sNext, e.sPrev = nil, nil
}

// envArrQ is the per-communicator arrival-order list (aNext/aPrev links).
type envArrQ struct{ head, tail *envelope }

func (q *envArrQ) push(e *envelope) {
	e.aPrev = q.tail
	e.aNext = nil
	if q.tail != nil {
		q.tail.aNext = e
	} else {
		q.head = e
	}
	q.tail = e
}

func (q *envArrQ) unlink(e *envelope) {
	if e.aPrev != nil {
		e.aPrev.aNext = e.aNext
	} else {
		q.head = e.aNext
	}
	if e.aNext != nil {
		e.aNext.aPrev = e.aPrev
	} else {
		q.tail = e.aPrev
	}
	e.aNext, e.aPrev = nil, nil
}

// postedInline is the number of (comm, src) posted-receive queues kept
// inline in procState before spilling to a map. A 1-D halo exchange uses
// exactly 2 distinct sources, so the dominant oversubscription shape pays
// no allocation and no hashing — and at a million ranks every inline slot
// is ~32 bytes/rank of resident footprint, so the array stays minimal.
const postedInline = 2

// postedIdx indexes the per-(comm, src) posted-receive queues: a linear
// inline array of queue values with a map spill for ranks that receive
// from many distinct sources. Queue addresses are stable either way (the
// inline array lives in procState, which never moves; spill queues are
// individually allocated), so Request.postQ may point at them.
type postedIdx struct {
	n     int
	keys  [postedInline]matchKey
	qs    [postedInline]reqQ
	spill map[matchKey]*reqQ
}

// get returns the queue for k, or nil if none was ever created.
func (ix *postedIdx) get(k matchKey) *reqQ {
	for i := 0; i < ix.n; i++ {
		if ix.keys[i] == k {
			return &ix.qs[i]
		}
	}
	if ix.spill != nil {
		return ix.spill[k]
	}
	return nil
}

// getOrAdd returns the queue for k, creating it (inline while room, in the
// spill map after) on first use. Queues are retained once created, like
// the map entries they replace.
func (ix *postedIdx) getOrAdd(k matchKey) *reqQ {
	if q := ix.get(k); q != nil {
		return q
	}
	if ix.n < postedInline {
		ix.keys[ix.n] = k
		q := &ix.qs[ix.n]
		ix.n++
		return q
	}
	if ix.spill == nil {
		ix.spill = make(map[matchKey]*reqQ)
	}
	q := new(reqQ)
	ix.spill[k] = q
	return q
}

// each visits every queue ever created (validation and finalize sweeps).
func (ix *postedIdx) each(f func(matchKey, *reqQ)) {
	for i := 0; i < ix.n; i++ {
		f(ix.keys[i], &ix.qs[i])
	}
	for k, q := range ix.spill {
		f(k, q)
	}
}

// tagOK reports whether a posted receive's tag accepts an envelope's tag.
// AnyTag only spans the application tag space: internal messages (negative
// tags — barriers, collectives, ULFM) must never be intercepted by user
// wildcards, mirroring MPI's separate collective context.
func tagOK(r *Request, env *envelope) bool {
	if r.tag == AnyTag {
		return env.tag >= 0
	}
	return r.tag == env.tag
}

// addPosted files a receive request into the posted index.
func (ps *procState) addPosted(r *Request) {
	ps.postSeq++
	r.postSeq = ps.postSeq
	r.posted = true
	r.wild = r.src == AnySource
	q := &ps.postedWild
	if !r.wild {
		r.postKey = matchKey{r.comm.id, r.src}
		q = ps.posted.getOrAdd(r.postKey)
	}
	q.push(r)
	r.postQ = q
}

// removePosted unfiles a receive request in O(1) via its intrusive links
// (both the exact-source and wildcard lists unlink the same way); it is a
// no-op for requests that already matched.
func (ps *procState) removePosted(r *Request) {
	if !r.posted {
		return
	}
	r.posted = false
	r.postQ.unlink(r)
	r.postQ = nil
}

// takePosted finds and unfiles the posted receive an arriving envelope
// matches: the earliest-posted compatible request, considering both the
// exact-source list and wildcard receives (MPI's matching rule). Each list
// is in post order, so the first compatible entry of each is its
// candidate; the lower post sequence of the two wins.
func (ps *procState) takePosted(env *envelope) *Request {
	var best *Request
	if q := ps.posted.get(matchKey{env.commID, env.src}); q != nil {
		for r := q.head; r != nil; r = r.pNext {
			if tagOK(r, env) {
				best = r
				break
			}
		}
	}
	for r := ps.postedWild.head; r != nil; r = r.pNext {
		if r.comm.id == env.commID && tagOK(r, env) {
			if best == nil || r.postSeq < best.postSeq {
				best = r
			}
			break
		}
	}
	if best != nil {
		ps.removePosted(best)
	}
	return best
}

// addUnexpected queues an envelope that matched no posted receive: into
// its (comm, src) FIFO and its communicator's arrival list.
func (ps *procState) addUnexpected(env *envelope) {
	ps.arriveSeq++
	env.arriveSeq = ps.arriveSeq
	k := matchKey{env.commID, env.src}
	sq := ps.unexpBySrc[k]
	if sq == nil {
		if ps.unexpBySrc == nil {
			ps.unexpBySrc = make(map[matchKey]*envSrcQ)
		}
		sq = new(envSrcQ)
		ps.unexpBySrc[k] = sq
	}
	sq.push(env)
	aq := ps.unexpByComm[env.commID]
	if aq == nil {
		if ps.unexpByComm == nil {
			ps.unexpByComm = make(map[int]*envArrQ)
		}
		aq = new(envArrQ)
		ps.unexpByComm[env.commID] = aq
	}
	aq.push(env)
	ps.env.w.m.unexpectedDelta(env.dst, 1)
}

// removeUnexpected unlinks an envelope from both unexpected lists.
func (ps *procState) removeUnexpected(env *envelope) {
	ps.unexpBySrc[matchKey{env.commID, env.src}].unlink(env)
	ps.unexpByComm[env.commID].unlink(env)
	ps.env.w.m.unexpectedDelta(env.dst, -1)
}

// takeUnexpected finds and removes the earliest-arrived envelope a freshly
// posted receive matches. Both branches are head-pops in the common case:
// each list is in arrival order, so the first compatible entry is the
// earliest arrival — the exact-source branch walks the (comm, src) FIFO,
// and the wildcard branch walks the communicator's arrival list directly,
// making MPI_ANY_SOURCE matching O(compatible-head) instead of a scan over
// every source.
func (ps *procState) takeUnexpected(req *Request) *envelope {
	if req.src != AnySource {
		if q := ps.unexpBySrc[matchKey{req.comm.id, req.src}]; q != nil {
			for env := q.head; env != nil; env = env.sNext {
				if tagOK(req, env) {
					ps.removeUnexpected(env)
					return env
				}
			}
		}
		return nil
	}
	if q := ps.unexpByComm[req.comm.id]; q != nil {
		for env := q.head; env != nil; env = env.aNext {
			if tagOK(req, env) {
				ps.removeUnexpected(env)
				return env
			}
		}
	}
	return nil
}

// releaseEnvelope recycles a consumed envelope whose payload (if any) was
// transferred elsewhere.
func (ps *procState) releaseEnvelope(env *envelope) {
	env.data = nil
	ps.dp.putEnv(env)
}

// dropEnvelope releases an envelope and its payload buffer (unmatched
// paths: dead receiver, finalize drain).
func dropEnvelope(dp *dpPool, env *envelope) {
	dp.putBuf(env.data)
	env.data = nil
	dp.putEnv(env)
}

// drainUnexpected releases every queued unexpected envelope and its
// buffer — the unmatched-message release path, run at a clean Finalize
// and at process death.
func (ps *procState) drainUnexpected() {
	for _, q := range ps.unexpByComm {
		for env := q.head; env != nil; {
			next := env.aNext
			ps.env.w.m.unexpectedDelta(env.dst, -1)
			dropEnvelope(ps.dp, env)
			env = next
		}
		q.head, q.tail = nil, nil
	}
	for _, q := range ps.unexpBySrc {
		q.head, q.tail = nil, nil
	}
}

// releaseIndexes drops the per-rank matching structures a dead rank no
// longer needs: the posted-receive index, the unexpected-message map
// shells (their queues were just emptied by drainUnexpected), the
// collective scratch, and the pending-lookup spill map. Every one of
// them is recreated on demand by its writer, so releasing an empty
// structure is behavior-neutral — and only empty ones are released: a
// failed rank that still has receives posted (or requests pending) keeps
// those structures, and with them the matching semantics for whatever is
// still in flight. At a million ranks the released maps are the dominant
// retained cost of a finished rank that ever received from more than
// postedInline distinct peers.
func (ps *procState) releaseIndexes() {
	ps.unexpBySrc = nil
	ps.unexpByComm = nil
	ps.f64s = nil
	if ps.postedWild.head == nil {
		empty := true
		ps.posted.each(func(_ matchKey, q *reqQ) {
			if q.head != nil {
				empty = false
			}
		})
		if empty {
			ps.posted = postedIdx{}
		}
	}
	if ps.pendHead == nil {
		ps.pendSpill = nil
	}
}

// pendSpillThreshold is the pending-set size past which id lookups switch
// from walking the intrusive list to the pendSpill map. Point-to-point
// shapes keep a handful of requests pending; fan-in collectives at the
// root can hold thousands at once.
const pendSpillThreshold = 32

// addPending files an incomplete request into the id-ordered pending list
// (ids are monotonic, so tail-append preserves the order the
// failure-notification scan depends on) and, once the set has ever grown
// past the spill threshold, into the lookup map.
func (ps *procState) addPending(r *Request) {
	r.nPrev = ps.pendTail
	r.nNext = nil
	if ps.pendTail != nil {
		ps.pendTail.nNext = r
	} else {
		ps.pendHead = r
	}
	ps.pendTail = r
	ps.pendLen++
	if ps.pendSpill != nil {
		ps.pendSpill[r.id] = r
	} else if ps.pendLen > pendSpillThreshold {
		ps.pendSpill = make(map[uint64]*Request, 2*pendSpillThreshold)
		for q := ps.pendHead; q != nil; q = q.nNext {
			ps.pendSpill[q.id] = q
		}
	}
}

// findPending returns the pending request with the given id, or nil. The
// common case walks the short list; ranks that ever spilled use the map.
func (ps *procState) findPending(id uint64) *Request {
	if ps.pendSpill != nil {
		return ps.pendSpill[id]
	}
	for r := ps.pendHead; r != nil; r = r.nNext {
		if r.id == id {
			return r
		}
	}
	return nil
}

// unlinkPending removes a request from the pending list (and spill map);
// it is a no-op for requests that are not pending.
func (ps *procState) unlinkPending(r *Request) {
	if ps.findPending(r.id) != r {
		return
	}
	if ps.pendSpill != nil {
		delete(ps.pendSpill, r.id)
	}
	ps.pendLen--
	if r.nPrev != nil {
		r.nPrev.nNext = r.nNext
	} else {
		ps.pendHead = r.nNext
	}
	if r.nNext != nil {
		r.nNext.nPrev = r.nPrev
	} else {
		ps.pendTail = r.nPrev
	}
	r.nNext, r.nPrev = nil, nil
}

// emitter abstracts the two contexts that can emit events and read the
// current virtual time: a running VP (its own Ctx) and an event handler
// (SchedCtx). Message matching runs in both.
//
// Pooled-event discipline: emit takes the core.Event by value and the
// engine copies it into a pooled event, so the MPI layer never holds a
// *core.Event of its own. Anything that must outlive the emit call or the
// handler invocation — envelopes, CTS records, notifications — travels as
// a Payload; the engine never recycles payloads, but the MPI layer
// recycles its own pooled payload objects at their consumption points.
type emitter interface {
	emit(ev core.Event)
	now() vclock.Time
}

// vpEmitter adapts a VP context.
type vpEmitter struct{ ctx *core.Ctx }

func (v vpEmitter) emit(ev core.Event) { v.ctx.Emit(ev) }
func (v vpEmitter) now() vclock.Time   { return v.ctx.NowQuiet() }

// schedEmitter adapts a handler context. rank is the local rank the
// handler is acting for; the engine derives the emitted event's
// deterministic ordering key from it (see core.SchedCtx.EmitFor), keeping
// same-virtual-time tie-breaks independent of the partition layout.
type schedEmitter struct {
	s    *core.SchedCtx
	rank int
}

func (h schedEmitter) emit(ev core.Event) { h.s.EmitFor(h.rank, ev) }
func (h schedEmitter) now() vclock.Time   { return h.s.Now() }

// isend posts a nonblocking send and returns its request. Internal: the
// public wrappers apply the communicator's error handler.
func (c *Comm) isend(dstCommRank, tag, size int, data []byte) (*Request, error) {
	e := c.env
	e.chargeCall()
	if err := c.checkRevoked("send"); err != nil {
		return nil, err
	}
	if dstCommRank < 0 || dstCommRank >= c.n {
		return nil, fmt.Errorf("mpi: send destination rank %d out of range [0,%d)", dstCommRank, c.n)
	}
	if tag < 0 {
		return nil, fmt.Errorf("mpi: send tag %d must be non-negative", tag)
	}
	return c.isendTag(dstCommRank, tag, size, data), nil
}

// isendTag posts a send with any tag value (internal tags are negative).
// The caller keeps ownership of data; the eager path copies it into a
// pooled buffer at post time, the rendezvous path reads it when the
// clear-to-send arrives (the MPI contract: the buffer is untouched until
// the send completes).
func (c *Comm) isendTag(dstCommRank, tag, size int, data []byte) *Request {
	return c.isendDP(dstCommRank, tag, size, data, false)
}

// isendOwned posts a send whose data is a pooled buffer the caller
// transfers to the MPI layer: no copy at post or transfer time. Internal
// senders (encoded reductions, framed gathers) use it for zero-copy hops.
func (c *Comm) isendOwned(dstCommRank, tag, size int, data []byte) *Request {
	return c.isendDP(dstCommRank, tag, size, data, true)
}

func (c *Comm) isendDP(dstCommRank, tag, size int, data []byte, owned bool) *Request {
	e := c.env
	dp := e.ps.dp
	net := e.w.cfg.Net
	src := e.Rank()
	dst := c.WorldRank(dstCommRank)
	req := dp.getReq()
	req.id = e.ps.newReqID()
	req.kind = sendReq
	req.comm = c
	req.src = src
	req.dst = dst
	req.tag = tag
	req.size = size
	req.postClock = e.ctx.NowQuiet()
	env := dp.getEnv()
	env.commID = c.id
	env.src = src
	env.dst = dst
	env.srcCommRank = c.rank
	env.tag = tag
	env.size = size
	t0 := req.postClock
	eager := net.Eager(size)
	e.w.m.countSend(src, size, !eager)
	if e.w.cfg.Tracer != nil {
		ev := trace.Event{At: t0, Kind: trace.KindSend, Rank: int32(src), Peer: int32(dst), Tag: int32(tag), Size: int64(size)}
		if !eager {
			ev.Flags = trace.FlagRendezvous
		}
		e.w.cfg.Tracer.Record(ev)
	}
	if eager {
		// The payload travels with the envelope: transfer an owned
		// buffer outright, or copy the caller's bytes into a pooled one
		// (the caller may reuse its buffer immediately — a broadcast
		// root does exactly that).
		if data != nil {
			if owned {
				env.data = data
			} else {
				buf := dp.getBuf(len(data))
				copy(buf, data)
				env.data = buf
			}
		}
		// Endpoint contention: the payload queues behind earlier
		// injections at this node's NIC.
		inject := t0
		if occ := net.InjectOccupancy(size); occ > 0 {
			inject = vclock.Max(t0, e.ps.injectFreeAt)
			e.ps.injectFreeAt = inject.Add(occ)
		}
		env.dataAt = inject.Add(net.TransferTime(src, dst, size))
		// An eager send completes locally once the message is injected;
		// it never waits on the receiver (fire-and-forget buffering).
		req.done = true
		e.ctx.Emit(core.Event{Time: t0.Add(net.ControlTime(src, dst)), Kind: kindEnvelope, Target: dst, Payload: env})
		e.ctx.Elapse(net.SendOverhead(src, dst, size))
		req.completeAt = e.ctx.NowQuiet()
	} else {
		// Rendezvous: send the ready-to-send envelope and wait for the
		// receiver's clear-to-send before transferring the payload. No
		// snapshot is taken here — the payload is read at CTS time.
		env.rendezvous = true
		env.sendReqID = req.id
		req.data = data
		req.ownedData = owned
		e.ps.addPending(req)
		e.ctx.Emit(core.Event{Time: t0.Add(net.ControlTime(src, dst)), Kind: kindEnvelope, Target: dst, Payload: env})
		e.ctx.Elapse(net.SendOverhead(src, dst, 0))
	}
	return req
}

// irecv posts a nonblocking receive. Internal: the public wrappers apply
// the communicator's error handler.
func (c *Comm) irecv(srcCommRank, tag int) (*Request, error) {
	e := c.env
	e.chargeCall()
	if err := c.checkRevoked("recv"); err != nil {
		return nil, err
	}
	if srcCommRank != AnySource && (srcCommRank < 0 || srcCommRank >= c.n) {
		return nil, fmt.Errorf("mpi: receive source rank %d out of range [0,%d)", srcCommRank, c.n)
	}
	if tag < 0 && tag != AnyTag {
		return nil, fmt.Errorf("mpi: receive tag %d must be non-negative or AnyTag", tag)
	}
	return c.irecvTag(srcCommRank, tag), nil
}

// irecvTag posts a receive with any tag value (internal tags are negative).
func (c *Comm) irecvTag(srcCommRank, tag int) *Request {
	e := c.env
	src := AnySource
	if srcCommRank != AnySource {
		src = c.WorldRank(srcCommRank)
	}
	req := e.ps.dp.getReq()
	req.id = e.ps.newReqID()
	req.kind = recvReq
	req.comm = c
	req.src = src
	req.dst = e.Rank()
	req.tag = tag
	req.postClock = e.ctx.NowQuiet()
	e.ps.addPending(req)
	e.w.trace(trace.Event{At: req.postClock, Kind: trace.KindRecvPost, Rank: int32(e.Rank()), Peer: int32(src), Tag: int32(tag)})
	// Match the earliest compatible unexpected envelope first (arrival
	// order preserves MPI's non-overtaking rule).
	if env := e.ps.takeUnexpected(req); env != nil {
		matchEnvelope(e.w, e.ps, req, env, vpEmitter{e.ctx})
		e.ps.releaseEnvelope(env)
		if e.w.cfg.Validate {
			e.ps.checkIndexes("irecv-match")
		}
		return req
	}
	e.ps.addPosted(req)
	if e.w.cfg.Validate {
		e.ps.checkIndexes("irecv-post")
	}
	return req
}

// matchEnvelope binds a receive request to an envelope. For eager
// envelopes the request completes when the payload has arrived (the
// envelope's pooled payload buffer transfers to the request's Message);
// for rendezvous envelopes a clear-to-send goes back to the sender and the
// request completes when the payload delivery event fires. The caller
// recycles the envelope afterwards (releaseEnvelope).
func matchEnvelope(w *World, ps *procState, req *Request, env *envelope, em emitter) {
	req.src = env.src
	msg := ps.dp.getMsg()
	msg.Src = env.srcCommRank
	msg.Tag = env.tag
	msg.Size = env.size
	msg.pool = ps.dp
	req.msg = msg
	if env.rendezvous {
		req.awaitingData = true
		net := w.cfg.Net
		cts := ps.dp.getCts()
		cts.sendReqID = env.sendReqID
		cts.recvReqID = req.id
		cts.recvRank = env.dst
		// The clear-to-send leaves once both the envelope has arrived
		// (em.now() when matching on arrival) and the receive is posted
		// (postClock when the envelope waited in the unexpected queue).
		em.emit(core.Event{
			Time:    vclock.Max(em.now(), req.postClock).Add(net.ControlTime(env.dst, env.src)),
			Kind:    kindCts,
			Target:  env.src,
			Payload: cts,
		})
		return
	}
	msg.Data = env.data
	env.data = nil
	completeRequest(ps, req, vclock.Max(req.postClock, env.dataAt), nil)
}

// completeRequest finalises a request at virtual time at. A send still
// owning a pooled buffer (an owned rendezvous send dying before its
// clear-to-send) releases it here.
func completeRequest(ps *procState, req *Request, at vclock.Time, err error) {
	req.done = true
	req.completeAt = at
	req.err = err
	req.awaitingData = false
	if req.waiter != nil {
		req.waiter.pending--
		req.waiter = nil
	}
	if req.data != nil {
		if req.ownedData {
			ps.dp.putBuf(req.data)
		}
		req.data = nil
	}
	ps.unlinkPending(req)
	ps.removePosted(req)
}

// waitReason describes a wait for deadlock reports. It is only called if
// a report is actually printed (see procState.BlockReason).
func waitReason(reqs []*Request) string {
	if len(reqs) == 1 {
		r := reqs[0]
		if r.kind == recvReq {
			return fmt.Sprintf("MPI wait: recv from %d tag %d (comm %d)", r.src, r.tag, r.comm.id)
		}
		return fmt.Sprintf("MPI wait: send to %d tag %d (comm %d)", r.dst, r.tag, r.comm.id)
	}
	return fmt.Sprintf("MPI waitall: %d requests", len(reqs))
}

// BlockReason renders the process's block reason lazily for deadlock
// reports: the wait fast path parks with the procState itself instead of
// formatting a string per block.
func (ps *procState) BlockReason() string {
	if len(ps.waitingOn) > 0 {
		return waitReason(ps.waitingOn)
	}
	if n := len(ps.probes); n > 0 {
		pr := ps.probes[n-1]
		return fmt.Sprintf("MPI probe: src %d tag %d (comm %d)", pr.src, pr.tag, pr.comm)
	}
	return "MPI: blocked"
}

// wait blocks until every request completes, advancing the clock to the
// latest completion time. It returns the first error among the requests in
// request order. Internal: public wrappers apply the error handler.
func (e *Env) wait(reqs ...*Request) error {
	e.chargeCall()
	for {
		allDone := true
		var latest vclock.Time
		for _, r := range reqs {
			if !r.done {
				allDone = false
				break
			}
			if r.completeAt > latest {
				latest = r.completeAt
			}
		}
		if allDone {
			e.ctx.AdvanceTo(latest)
			if e.w.cfg.Tracer != nil {
				for _, r := range reqs {
					ev := trace.Event{At: r.completeAt, Kind: trace.KindComplete, Rank: int32(e.Rank()), Peer: int32(r.peer()), Size: int64(r.size)}
					if r.kind == sendReq {
						ev.Flags |= trace.FlagSendOp
					} else if r.msg != nil {
						ev.Size = int64(r.msg.Size)
					}
					if r.err != nil {
						ev.Flags |= trace.FlagError
						ev.Detail = r.opName() + " err=" + r.err.Error()
					}
					e.w.cfg.Tracer.Record(ev)
				}
			}
			for _, r := range reqs {
				if r.err != nil {
					return r.err
				}
			}
			return nil
		}
		// Before blocking, arm failure-detection timeouts for pending
		// requests that involve already-known-failed peers; requests
		// whose peer fails later are armed by the notification handler.
		for _, r := range reqs {
			if !r.done {
				e.ps.armTimeout(e.w, r, vpEmitter{e.ctx})
			}
		}
		if e.prog {
			// A program VP has no goroutine to block; the step-based
			// WaitState is the program-mode form of this wait.
			panic(&ClosureOnlyError{Op: waitReason(reqs), Rank: e.Rank()})
		}
		e.ps.waitingOn = reqs
		e.ctx.Block(e.ps)
		e.ps.waitingOn = nil
	}
}

// armTimeout schedules the failure-detection timeout of a pending request
// whose peer is known to have failed. The operation completes in error at
// max(post time, time of failure) + the network tier's timeout — the
// paper's purely timeout-based detection — but never before the failure is
// knowable at this process.
func (ps *procState) armTimeout(w *World, req *Request, em emitter) {
	if req.done || req.timeoutScheduled {
		return
	}
	self := ps.env.Rank()
	best := vclock.Never
	bestPeer := -1
	var bestTof vclock.Time
	// consider captures the winning peer's time of failure alongside the
	// deadline, so the emitted timeout carries the exact value the
	// deterministic scan chose (no second map lookup).
	consider := func(peer int, tof vclock.Time) {
		at := vclock.Max(req.postClock, tof).Add(w.cfg.Net.Timeout(self, peer))
		if at < best || (at == best && peer < bestPeer) {
			best, bestPeer, bestTof = at, peer, tof
		}
	}
	if req.kind == recvReq && req.src == AnySource {
		// Deterministic scan: pick the earliest-detectable failed peer.
		for peer, tof := range ps.failedPeers {
			consider(peer, tof)
		}
	} else if tof, ok := ps.failedPeers[req.peer()]; ok {
		consider(req.peer(), tof)
	}
	if bestPeer < 0 {
		return
	}
	at := vclock.Max(best, em.now())
	req.timeoutScheduled = true
	em.emit(core.Event{
		Time:    at,
		Kind:    kindReqTimeout,
		Target:  self,
		Payload: reqTimeout{reqID: req.id, peer: bestPeer, failedAt: bestTof},
	})
}
