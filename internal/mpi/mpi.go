// Package mpi implements the simulated MPI layer: point-to-point messaging
// with tags, wildcards and nonblocking requests, linear (and, for ablation,
// tree-based) collectives, communicators, error handlers, and the paper's
// resilience semantics — simulated MPI process failure injection, purely
// timeout-based failure detection, simulator-internal failure/abort
// notification, and MPI abort.
//
// Simulated applications are Go functions of the form func(*Env); each runs
// inside a virtual process of the core engine with its own virtual clock.
// Communication time is charged by the network model, compute time by the
// processor model (Env.Compute / Env.Elapse).
package mpi

import (
	"fmt"

	"xsim/internal/vclock"
)

// Wildcards for Recv/Irecv source and tag matching.
const (
	// AnySource matches a message from any rank (MPI_ANY_SOURCE).
	AnySource = -1
	// AnyTag matches a message with any tag (MPI_ANY_TAG).
	AnyTag = -1
)

// Message is a received message.
type Message struct {
	// Src is the sender's rank in the receiving communicator.
	Src int
	// Tag is the message tag.
	Tag int
	// Size is the payload size in bytes. Payload-free sends (SendN)
	// carry a Size but nil Data, which lets large-scale experiments
	// model traffic without allocating it.
	Size int
	// Data is the payload, or nil for payload-free messages. The
	// receiving process owns it; see Release.
	Data []byte

	// pool points back to the receiving partition's data-plane pool so
	// Release can recycle the header and payload; nil for messages that
	// did not come from a pool (probe results).
	pool *dpPool
}

// Release hands the message and its payload buffer back to the simulated
// MPI layer's buffer pool. It is optional — an unreleased message simply
// falls to the garbage collector — but releasing keeps oversubscribed
// runs allocation-free. After Release the message and its Data must not
// be used: the buffer will back a future message. Call it only from the
// process (simulated rank) that received the message.
func (m *Message) Release() {
	if m == nil {
		return
	}
	p := m.pool
	if p == nil {
		return
	}
	m.pool = nil
	data := m.Data
	m.Data = nil
	p.putBuf(data)
	p.putMsg(m)
}

// ProcFailedError reports that an operation involved a failed simulated MPI
// process. Detection is purely timeout-based: the operation completes in
// error only after the configured network communication timeout (plus
// notification latency) has passed in virtual time.
type ProcFailedError struct {
	// Rank is the failed process's world rank.
	Rank int
	// FailedAt is the virtual time the process failed.
	FailedAt vclock.Time
	// Op names the operation that detected the failure.
	Op string
}

// Error implements error.
func (e *ProcFailedError) Error() string {
	return fmt.Sprintf("mpi: %s detected failure of rank %d (failed at %v)", e.Op, e.Rank, e.FailedAt)
}

// RevokedError reports that a communicator was revoked (ULFM extension).
type RevokedError struct {
	// Comm is the revoked communicator's id.
	Comm int
}

// Error implements error.
func (e *RevokedError) Error() string {
	return fmt.Sprintf("mpi: communicator %d revoked", e.Comm)
}

// reqKind distinguishes request flavours.
type reqKind int

const (
	recvReq reqKind = iota
	sendReq
)

// Request is a nonblocking operation handle (MPI_Request).
type Request struct {
	id   uint64
	kind reqKind
	comm *Comm

	// Matching fields in world ranks; src may be AnySource, tag AnyTag.
	src, dst int
	tag      int

	postClock vclock.Time
	size      int
	data      []byte

	// Completion state.
	done       bool
	completeAt vclock.Time
	msg        *Message
	err        error

	// awaitingData marks a recv matched to a rendezvous envelope whose
	// data transfer is still in flight.
	awaitingData bool
	// timeoutScheduled dedupes failure-detection timeout events.
	timeoutScheduled bool
	// ownedData marks a send whose data buffer the MPI layer owns (a
	// pooled buffer transferred by an internal sender): it travels
	// without copying and is released if the send dies early.
	ownedData bool

	// Posted-receive index bookkeeping: an intrusive doubly-linked list
	// per (comm, src) key (or the wildcard list), in post order.
	posted       bool
	wild         bool
	postKey      matchKey
	postSeq      uint64
	postQ        *reqQ
	pNext, pPrev *Request

	// Pending-table links: every incomplete request sits in the
	// id-ordered pending list (ids are monotonic, so appending keeps the
	// order) alongside the id-keyed map.
	nNext, nPrev *Request

	// waiter points at the program-mode WaitState tracking this request,
	// so completion can decrement its pending count in O(1) instead of
	// the wait re-scanning the request set on every wake; nil for
	// requests not under a program wait (closure mode, free-standing
	// Isends). Cleared at completion and by putReq's zeroing.
	waiter *WaitState
}

// Done reports whether the request has completed (successfully or not).
func (r *Request) Done() bool { return r.done }

// Msg returns the received message of a completed receive request (nil
// for sends and for requests still in flight). The message follows the
// usual ownership rules: the caller may keep it until Message.Release or
// until the request is handed to Comm.Free.
func (r *Request) Msg() *Message { return r.msg }

// Err returns the request's error after completion, nil on success.
func (r *Request) Err() error { return r.err }

// TakeMsg detaches and returns the received message of a completed
// receive request: the caller assumes ownership (and the eventual
// Message.Release), and a subsequent Comm.Free recycles only the request.
// It returns nil for sends, for requests still in flight, and when the
// message was already taken.
func (r *Request) TakeMsg() *Message {
	if !r.done {
		return nil
	}
	m := r.msg
	r.msg = nil
	return m
}

// opName names the request's operation for error messages.
func (r *Request) opName() string {
	if r.kind == recvReq {
		return "recv"
	}
	return "send"
}

// peer returns the world rank of the remote process the request involves
// (AnySource for wildcard receives that have not matched).
func (r *Request) peer() int {
	if r.kind == recvReq {
		return r.src
	}
	return r.dst
}

// involves reports whether the failure of world rank affects this pending
// request: a receive from that rank (or a wildcard receive, which the
// paper also releases, since the failed process can no longer send), or a
// send to that rank.
func (r *Request) involves(rank int) bool {
	if r.done {
		return false
	}
	if r.kind == recvReq {
		return r.src == rank || r.src == AnySource
	}
	return r.dst == rank
}
