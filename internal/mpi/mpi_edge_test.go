package mpi

import (
	"strings"
	"testing"

	"xsim/internal/vclock"
)

func TestAnyTagSpecificSource(t *testing.T) {
	runWorld(t, 2, 1, func(e *Env) {
		c := e.World()
		if e.Rank() == 0 {
			for _, tag := range []int{5, 9, 2} {
				if _, err := c.Isend(1, tag, []byte{byte(tag)}); err != nil {
					t.Fatalf("isend: %v", err)
				}
			}
		} else {
			e.Elapse(vclock.Millisecond)
			// AnyTag takes the earliest arrival regardless of tag.
			for _, want := range []int{5, 9, 2} {
				m, err := c.Recv(0, AnyTag)
				if err != nil {
					t.Fatalf("recv: %v", err)
				}
				if m.Tag != want {
					t.Errorf("tag = %d, want %d", m.Tag, want)
				}
			}
		}
	})
}

func TestTagSelectivity(t *testing.T) {
	runWorld(t, 2, 1, func(e *Env) {
		c := e.World()
		if e.Rank() == 0 {
			if _, err := c.Isend(1, 6, []byte("six")); err != nil {
				t.Fatal(err)
			}
			if _, err := c.Isend(1, 5, []byte("five")); err != nil {
				t.Fatal(err)
			}
		} else {
			// Posting for tag 5 must skip the earlier tag-6 message.
			m5, err := c.Recv(0, 5)
			if err != nil || string(m5.Data) != "five" {
				t.Fatalf("tag 5: %v %q", err, m5.Data)
			}
			m6, err := c.Recv(0, 6)
			if err != nil || string(m6.Data) != "six" {
				t.Fatalf("tag 6: %v %q", err, m6.Data)
			}
		}
	})
}

func TestRendezvousSelfSendNonblocking(t *testing.T) {
	runWorld(t, 1, 1, func(e *Env) {
		c := e.World()
		big := make([]byte, 4096) // above the 1 KiB test threshold
		req, err := c.Isend(0, 0, big)
		if err != nil {
			t.Fatal(err)
		}
		m, err := c.Recv(0, 0)
		if err != nil || len(m.Data) != 4096 {
			t.Fatalf("recv: %v", err)
		}
		if _, err := c.Wait(req); err != nil {
			t.Fatalf("wait: %v", err)
		}
	})
}

func TestBlockingRendezvousSelfSendDeadlocks(t *testing.T) {
	_, err := runWorldErr(t, 1, 1, nil, func(e *Env) {
		// The MPI classic: a blocking send to self above the eager
		// threshold can never complete — the deadlock detector must
		// catch it rather than hang.
		e.World().SendN(0, 0, 1<<20)
		t.Error("unreachable: send should deadlock")
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

func TestMultipleFailuresAllDetected(t *testing.T) {
	failures := map[int]vclock.Time{
		1: vclock.TimeFromSeconds(1),
		2: vclock.TimeFromSeconds(2),
	}
	res, err := runWorldErr(t, 4, 1, failures, func(e *Env) {
		c := e.World()
		c.SetErrorHandler(ErrorsReturn)
		switch e.Rank() {
		case 1, 2:
			e.Elapse(10 * vclock.Second)
		case 0:
			if _, err := c.Recv(1, 0); err == nil {
				t.Error("recv from rank 1 should fail")
			}
			if _, err := c.Recv(2, 0); err == nil {
				t.Error("recv from rank 2 should fail")
			}
			if n := len(e.FailedPeers()); n != 2 {
				t.Errorf("failed peers = %d, want 2", n)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 2 || res.Completed != 2 {
		t.Fatalf("result = %+v", res)
	}
}

func TestBarrierRootFailureAborts(t *testing.T) {
	// Rank 0 is the linear barrier's root; its failure must be detected
	// by the participants and abort the application.
	res, err := runWorldErr(t, 4, 1, map[int]vclock.Time{0: vclock.TimeFromSeconds(1)}, func(e *Env) {
		c := e.World()
		if e.Rank() == 0 {
			e.Elapse(5 * vclock.Second)
			return
		}
		if err := c.Barrier(); err != nil {
			t.Errorf("fatal handler should abort, not return: %v", err)
		}
		t.Errorf("rank %d survived the barrier", e.Rank())
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 || res.Aborted != 3 {
		t.Fatalf("result = %+v", res)
	}
}

func TestCollectivesOnRevokedComm(t *testing.T) {
	runWorld(t, 3, 1, func(e *Env) {
		c := e.World()
		c.SetErrorHandler(ErrorsReturn)
		if e.Rank() == 0 {
			c.Revoke()
		} else {
			e.Sleep(vclock.Millisecond) // let the revocation arrive
		}
		if err := c.Barrier(); err == nil {
			t.Errorf("rank %d: barrier on revoked comm should fail", e.Rank())
		}
		if _, err := c.Bcast(0, nil); err == nil {
			t.Errorf("rank %d: bcast on revoked comm should fail", e.Rank())
		}
		if _, err := c.Allreduce([]float64{1}, OpSum); err == nil {
			t.Errorf("rank %d: allreduce on revoked comm should fail", e.Rank())
		}
	})
}

func TestEmptyMessage(t *testing.T) {
	runWorld(t, 2, 1, func(e *Env) {
		c := e.World()
		if e.Rank() == 0 {
			if err := c.Send(1, 0, nil); err != nil {
				t.Fatal(err)
			}
		} else {
			m, err := c.Recv(0, 0)
			if err != nil || m.Size != 0 || len(m.Data) != 0 {
				t.Fatalf("empty message: %v %+v", err, m)
			}
		}
	})
}

func TestMixedProtocolOrdering(t *testing.T) {
	// A big rendezvous send followed by a small eager send from the same
	// source: matching must stay in send order even though the eager
	// payload could physically arrive first.
	runWorld(t, 2, 1, func(e *Env) {
		c := e.World()
		if e.Rank() == 0 {
			big, err := c.IsendN(1, 0, 1<<20)
			if err != nil {
				t.Fatal(err)
			}
			small, err := c.Isend(1, 0, []byte("small"))
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Waitall([]*Request{big, small}); err != nil {
				t.Fatalf("waitall: %v", err)
			}
		} else {
			e.Elapse(vclock.Millisecond)
			m1, err := c.Recv(0, 0)
			if err != nil || m1.Size != 1<<20 {
				t.Fatalf("first recv: %v size=%d, want the rendezvous message", err, m1.Size)
			}
			m2, err := c.Recv(0, 0)
			if err != nil || string(m2.Data) != "small" {
				t.Fatalf("second recv: %v %q", err, m2.Data)
			}
		}
	})
}

func TestWildcardVsSpecificPostOrder(t *testing.T) {
	runWorld(t, 2, 1, func(e *Env) {
		c := e.World()
		if e.Rank() == 0 {
			e.Elapse(vclock.Millisecond)
			if _, err := c.Isend(1, 3, []byte("first")); err != nil {
				t.Fatal(err)
			}
			if _, err := c.Isend(1, 3, []byte("second")); err != nil {
				t.Fatal(err)
			}
		} else {
			// The wildcard receive is posted first: MPI matching gives
			// it the first message, the later specific receive gets the
			// second.
			wild, err := c.Irecv(AnySource, AnyTag)
			if err != nil {
				t.Fatal(err)
			}
			spec, err := c.Irecv(0, 3)
			if err != nil {
				t.Fatal(err)
			}
			mWild, err := c.Wait(wild)
			if err != nil {
				t.Fatalf("wild wait: %v", err)
			}
			if string(mWild.Data) != "first" || mWild.Tag != 3 || mWild.Src != 0 {
				t.Fatalf("wildcard got %+v, want the first message", mWild)
			}
			mSpec, err := c.Wait(spec)
			if err != nil {
				t.Fatalf("spec wait: %v", err)
			}
			if string(mSpec.Data) != "second" {
				t.Fatalf("specific got %q, want the second message", mSpec.Data)
			}
		}
	})
}

func TestWaitallFirstErrorInOrder(t *testing.T) {
	res, err := runWorldErr(t, 3, 1, map[int]vclock.Time{2: 0}, func(e *Env) {
		c := e.World()
		c.SetErrorHandler(ErrorsReturn)
		switch e.Rank() {
		case 0:
			// req0: from the failed rank (errors); req1: from rank 1
			// (succeeds). Waitall returns req0's error.
			r0, err := c.Irecv(2, 0)
			if err != nil {
				t.Fatal(err)
			}
			r1, err := c.Irecv(1, 0)
			if err != nil {
				t.Fatal(err)
			}
			werr := c.Waitall([]*Request{r0, r1})
			if _, ok := werr.(*ProcFailedError); !ok {
				t.Fatalf("waitall err = %v, want ProcFailedError", werr)
			}
			if !r1.Done() || r1.Err() != nil {
				t.Error("healthy request should have completed cleanly")
			}
		case 1:
			if err := c.Send(0, 0, []byte("ok")); err != nil {
				t.Errorf("send: %v", err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 || res.Completed != 2 {
		t.Fatalf("result = %+v", res)
	}
}

func TestTreeCollectivesOddSizes(t *testing.T) {
	for _, n := range []int{3, 5, 6} {
		n := n
		runWorld(t, n, 1, func(e *Env) {
			c := e.World()
			if err := c.Barrier(); err != nil {
				t.Errorf("n=%d barrier: %v", n, err)
			}
			out, err := c.Bcast(n-1, []byte{42})
			if err != nil || len(out) != 1 || out[0] != 42 {
				t.Errorf("n=%d bcast: %v %v", n, err, out)
			}
			sum, err := c.Allreduce([]float64{1}, OpSum)
			if err != nil || sum[0] != float64(n) {
				t.Errorf("n=%d allreduce: %v %v", n, err, sum)
			}
		}, withTree())
	}
}

func TestLargeScaleBarrierSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := runWorld(t, 4096, 1, func(e *Env) {
		if err := e.World().Barrier(); err != nil {
			t.Errorf("barrier: %v", err)
		}
	})
	if res.Completed != 4096 {
		t.Fatalf("completed = %d", res.Completed)
	}
}

func TestFailedPeersSnapshotIsolated(t *testing.T) {
	runWorld(t, 2, 1, func(e *Env) {
		snap := e.FailedPeers()
		snap[42] = 1 // mutating the snapshot must not corrupt the state
		if len(e.FailedPeers()) != 0 {
			t.Error("snapshot mutation leaked into the failed-peer list")
		}
	})
}
