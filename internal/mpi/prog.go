package mpi

import (
	"xsim/internal/core"
	"xsim/internal/trace"
	"xsim/internal/vclock"
)

// This file is the MPI layer's program execution mode: the state-machine
// counterpart of World.Run for the core engine's Program VPs
// (core.RunPrograms). A parked program owns no goroutine and no stack, so
// this is the mode that scales a world to millions of simulated MPI
// processes.
//
// The programming model: a Prog's Step runs MPI calls that complete
// without blocking — Irecv, eager Send/SendN/Isend/IsendN (below the
// network model's eager threshold), Elapse/Compute — and expresses every
// wait as a WaitState it parks on by
// returning. Calls that must block the caller (rendezvous or blocking
// sends, Recv, Probe, Barrier, collectives, Sleep) are closure-mode only
// and panic with a diagnostic if used from a program. The dominant
// oversubscription shapes (halo exchange: Irecv/Irecv/Send/Send/Waitall)
// fit the restriction exactly; use World.Run when they don't.

// Prog is a resumable MPI program: one simulated process expressed as
// explicit steps between waits. Step is called once to start (wake == nil)
// and once per resume; it returns (park, false) to park — park must be the
// value handed back by WaitallStep/WaitStep — or (_, true) when the
// process is finished, after calling Env.Finalize.
type Prog interface {
	Step(e *Env, wake any) (park any, done bool)
}

// RunProgs executes one Prog per simulated process and drives the
// simulation to completion — the program-mode analogue of World.Run.
// newProg is called once per rank, in VP context, at the rank's first
// execution (lazy, like everything else about program VPs). A program
// that reports done without having called Env.Finalize is treated as a
// process failure, exactly as in Run.
func (w *World) RunProgs(newProg func(rank int) Prog) (*core.Result, error) {
	return w.eng.RunPrograms(func(c *core.Ctx) core.Program {
		b := &progBundle{}
		initProcEnv(&b.procBundle, w, c)
		b.pv = progVP{env: &b.env, user: newProg(c.Rank())}
		return &b.pv
	})
}

// progBundle extends the per-process allocation with the program adapter,
// keeping program mode at one allocation per rank too.
type progBundle struct {
	procBundle
	pv progVP
}

// progVP adapts a Prog to the core engine's Program interface and applies
// the MPI layer's finalize discipline at completion.
type progVP struct {
	env  *Env
	user Prog
}

func (pv *progVP) Step(c *core.Ctx, wake any) (park any, done bool) {
	park, done = pv.user.Step(pv.env, wake)
	if done && !pv.env.finalized {
		c.Logf("exited without MPI_Finalize: simulated MPI process failure")
		c.FailNow()
	}
	return park, done
}

// WaitState carries one wait (a Wait or Waitall) across program steps: the
// request set being waited on and whether the per-call overhead has been
// charged. It is embedded in the user's program state and reused wait
// after wait; Begin never allocates once the request slice has grown to
// the program's steady-state width.
type WaitState struct {
	reqs    []*Request
	charged bool
}

// Begin arms the wait for a new request set. Call it once per wait, then
// call WaitStep/WaitallStep from every step until it reports done.
func (ws *WaitState) Begin(reqs ...*Request) {
	ws.reqs = append(ws.reqs[:0], reqs...)
	ws.charged = false
}

// waitStep is one scheduling quantum of Env.wait, shaped for programs: it
// either completes the wait (done == true: the clock has advanced to the
// latest completion and err is the first request error in request order)
// or arms failure-detection timeouts and returns the park value the
// program must return from Step. Wake-ups deliver no value — re-calling
// waitStep re-examines the request set, exactly like the closure loop.
func (e *Env) waitStep(ws *WaitState) (done bool, park any, err error) {
	if !ws.charged {
		e.chargeCall()
		ws.charged = true
	}
	allDone := true
	var latest vclock.Time
	for _, r := range ws.reqs {
		if !r.done {
			allDone = false
			break
		}
		if r.completeAt > latest {
			latest = r.completeAt
		}
	}
	if !allDone {
		// Before parking, arm failure-detection timeouts for pending
		// requests that involve already-known-failed peers; requests whose
		// peer fails later are armed by the notification handler.
		for _, r := range ws.reqs {
			if !r.done {
				e.ps.armTimeout(e.w, r, vpEmitter{e.ctx})
			}
		}
		e.ps.waitingOn = ws.reqs
		return false, e.ps, nil
	}
	e.ps.waitingOn = nil
	e.ctx.AdvanceTo(latest)
	if e.w.cfg.Tracer != nil {
		for _, r := range ws.reqs {
			ev := trace.Event{At: r.completeAt, Kind: trace.KindComplete, Rank: int32(e.Rank()), Peer: int32(r.peer()), Size: int64(r.size)}
			if r.kind == sendReq {
				ev.Flags |= trace.FlagSendOp
			} else if r.msg != nil {
				ev.Size = int64(r.msg.Size)
			}
			if r.err != nil {
				ev.Flags |= trace.FlagError
				ev.Detail = r.opName() + " err=" + r.err.Error()
			}
			e.w.cfg.Tracer.Record(ev)
		}
	}
	for _, r := range ws.reqs {
		if r.err != nil {
			return true, nil, r.err
		}
	}
	return true, nil, nil
}

// WaitallStep advances a program's wait on the request set armed by
// ws.Begin. Returns done == false with the park value to return from Step
// (the wait is still in progress), or done == true with the first error
// among the requests after the communicator's error handler ran (with
// ErrorsAreFatal a process-failure error aborts and this call does not
// return). The completed requests are the caller's to recycle or reuse,
// exactly as after Waitall.
func (c *Comm) WaitallStep(ws *WaitState) (done bool, park any, err error) {
	done, park, err = c.env.waitStep(ws)
	if done && err != nil {
		err = c.handleError(err)
	}
	return done, park, err
}
