package mpi

import (
	"fmt"

	"xsim/internal/core"
	"xsim/internal/trace"
	"xsim/internal/vclock"
)

// This file is the MPI layer's program execution mode: the state-machine
// counterpart of World.Run for the core engine's Program VPs
// (core.RunPrograms). A parked program owns no goroutine and no stack, so
// this is the mode that scales a world to millions of simulated MPI
// processes.
//
// The programming model: a Prog's Step runs MPI calls that complete
// without blocking — Irecv, Isend/IsendN (rendezvous sends included),
// Elapse/Compute — and expresses every blocking point as a step state it
// parks on by returning: WaitState for Wait/Waitall (rendezvous sends
// park on the clear-to-send exactly like a blocked closure), RecvState
// and SendState for blocking point-to-point, ProbeState for MPI_Probe,
// SleepState for interruptible sleeps (checkpoint I/O charging), and
// CollectiveState (prog_coll.go) for barrier/bcast/reduce/allreduce/
// gather/scatter/allgather/alltoall over the same reserved-tag traffic
// as the closure algorithms — the two modes are digest-identical.
// Closure-style blocking entry points (Comm.Recv, rendezvous Comm.Send,
// Comm.Probe, the collective methods, Env.Sleep) cannot run on a program
// VP and panic with a typed *ClosureOnlyError naming the op and rank.
// Comm.Abort and Env.FailNow keep their closure semantics — they unwind
// the VP via panic, which the scheduler classifies, so programs may call
// them directly.

// Prog is a resumable MPI program: one simulated process expressed as
// explicit steps between waits. Step is called once to start (wake == nil)
// and once per resume; it returns (park, false) to park — park must be the
// value handed back by WaitallStep/WaitStep — or (_, true) when the
// process is finished, after calling Env.Finalize.
type Prog interface {
	Step(e *Env, wake any) (park any, done bool)
}

// RunProgs executes one Prog per simulated process and drives the
// simulation to completion — the program-mode analogue of World.Run.
// newProg is called once per rank, in VP context, at the rank's first
// execution (lazy, like everything else about program VPs). A program
// that reports done without having called Env.Finalize is treated as a
// process failure, exactly as in Run.
func (w *World) RunProgs(newProg func(rank int) Prog) (*core.Result, error) {
	return w.eng.RunPrograms(func(c *core.Ctx) core.Program {
		b := &progBundle{}
		initProcEnv(&b.procBundle, w, c)
		b.env.prog = true
		b.pv = progVP{env: &b.env, user: newProg(c.Rank())}
		return &b.pv
	})
}

// ClosureOnlyError is the panic value raised when a program VP calls a
// blocking MPI entry point (Comm.Recv, a rendezvous Comm.Send, Comm.Probe,
// a collective method, Env.Sleep): a program has no goroutine to block, so
// the call names the op and rank and points at the step-based equivalent.
// It doubles as the typed error path for ops that stay closure-only.
type ClosureOnlyError struct {
	// Op describes the blocking operation (e.g. "MPI wait: recv from 3
	// tag 0 (comm 0)", "probe: src 1 tag -1 (comm 0)", "sleep").
	Op string
	// Rank is the world rank of the offending process.
	Rank int
}

// Error implements error.
func (e *ClosureOnlyError) Error() string {
	return fmt.Sprintf("mpi: rank %d: %s would block, which a program VP cannot do (closure-mode-only; use the step-based state instead)", e.Rank, e.Op)
}

// progBundle extends the per-process allocation with the program adapter,
// keeping program mode at one allocation per rank too.
type progBundle struct {
	procBundle
	pv progVP
}

// progVP adapts a Prog to the core engine's Program interface and applies
// the MPI layer's finalize discipline at completion.
type progVP struct {
	env  *Env
	user Prog
}

func (pv *progVP) Step(c *core.Ctx, wake any) (park any, done bool) {
	park, done = pv.user.Step(pv.env, wake)
	if done {
		if !pv.env.finalized {
			c.Logf("exited without MPI_Finalize: simulated MPI process failure")
			c.FailNow()
		}
		// The rank is done: drop the user program (and everything its
		// state machine pins — request slices, grids, wait sets) while
		// the per-process bundle lives on for post-run accounting. At a
		// million ranks the finished programs would otherwise be the
		// largest block of dead memory in the residual footprint.
		pv.user = nil
	}
	return park, done
}

// WaitState carries one wait (a Wait or Waitall) across program steps: the
// request set being waited on, whether the per-call overhead has been
// charged, and a pending count maintained by request completion
// (completeRequest decrements it through Request.waiter), so a wake that
// does not finish the wait re-parks in O(1) instead of re-scanning the
// request set. It is embedded in the user's program state and reused wait
// after wait; Begin never allocates once the request slice has grown to
// the program's steady-state width.
type WaitState struct {
	reqs    []*Request
	charged bool
	// pending counts the tracked not-yet-complete requests; valid once
	// the wait has parked (waitStep's first not-done pass fills it).
	pending int
}

// Begin arms the wait for a new request set. Call it once per wait, then
// call WaitStep/WaitallStep from every step until it reports done. A
// request must appear at most once in the set.
func (ws *WaitState) Begin(reqs ...*Request) {
	ws.reqs = append(ws.reqs[:0], reqs...)
	ws.charged = false
	ws.pending = 0
}

// waitStep is one scheduling quantum of Env.wait, shaped for programs: it
// either completes the wait (done == true: the clock has advanced to the
// latest completion and err is the first request error in request order)
// or arms failure-detection timeouts and returns the park value the
// program must return from Step. Wake-ups deliver no value — a wake with
// requests still pending re-parks in O(1) off the pending count, and the
// final wake re-examines the request set exactly like the closure loop.
func (e *Env) waitStep(ws *WaitState) (done bool, park any, err error) {
	if ws.charged && ws.pending > 0 {
		// O(1) re-park: a completion woke the VP but the wait is not
		// done. No re-scan and no timeout re-arm is needed — timeouts
		// for peers that failed while parked are armed by the
		// failure-notification handler, as in closure mode.
		e.ps.waitingOn = ws.reqs
		return false, e.ps, nil
	}
	if !ws.charged {
		e.chargeCall()
		ws.charged = true
	}
	allDone := true
	var latest vclock.Time
	for _, r := range ws.reqs {
		if !r.done {
			allDone = false
			break
		}
		if r.completeAt > latest {
			latest = r.completeAt
		}
	}
	if !allDone {
		// Before parking, register each pending request with this wait
		// (completion decrements pending in O(1)) and arm
		// failure-detection timeouts for requests that involve
		// already-known-failed peers; requests whose peer fails later
		// are armed by the notification handler.
		for _, r := range ws.reqs {
			if !r.done {
				if r.waiter != ws {
					r.waiter = ws
					ws.pending++
				}
				e.ps.armTimeout(e.w, r, vpEmitter{e.ctx})
			}
		}
		e.ps.waitingOn = ws.reqs
		return false, e.ps, nil
	}
	e.ps.waitingOn = nil
	e.ctx.AdvanceTo(latest)
	if e.w.cfg.Tracer != nil {
		for _, r := range ws.reqs {
			ev := trace.Event{At: r.completeAt, Kind: trace.KindComplete, Rank: int32(e.Rank()), Peer: int32(r.peer()), Size: int64(r.size)}
			if r.kind == sendReq {
				ev.Flags |= trace.FlagSendOp
			} else if r.msg != nil {
				ev.Size = int64(r.msg.Size)
			}
			if r.err != nil {
				ev.Flags |= trace.FlagError
				ev.Detail = r.opName() + " err=" + r.err.Error()
			}
			e.w.cfg.Tracer.Record(ev)
		}
	}
	for _, r := range ws.reqs {
		if r.err != nil {
			err = r.err
			break
		}
	}
	// Drop the request references (capacity stays for the next Begin): an
	// idle WaitState must not pin completed — and possibly recycled —
	// requests in memory while the program is parked elsewhere. At a
	// million ranks those stale pointers are the difference between a
	// parked rank costing its state machine and costing its state machine
	// plus a dozen dead Requests.
	for i := range ws.reqs {
		ws.reqs[i] = nil
	}
	ws.reqs = ws.reqs[:0]
	return true, nil, err
}

// WaitallStep advances a program's wait on the request set armed by
// ws.Begin. Returns done == false with the park value to return from Step
// (the wait is still in progress), or done == true with the first error
// among the requests after the communicator's error handler ran (with
// ErrorsAreFatal a process-failure error aborts and this call does not
// return). The completed requests are the caller's to recycle or reuse,
// exactly as after Waitall.
func (c *Comm) WaitallStep(ws *WaitState) (done bool, park any, err error) {
	done, park, err = c.env.waitStep(ws)
	if done && err != nil {
		err = c.handleError(err)
	}
	return done, park, err
}

// WaitStep advances a program's wait on the single request armed by
// ws.Begin — the step form of Comm.Wait. On done it returns the received
// message for receives (nil for sends); like Wait, the request stays the
// caller's to Free or reuse.
func (c *Comm) WaitStep(ws *WaitState) (done bool, park any, msg *Message, err error) {
	req := ws.reqs[0] // waitStep drops the references on completion
	done, park, err = c.env.waitStep(ws)
	if !done {
		return false, park, nil, nil
	}
	if err != nil {
		return true, nil, nil, c.handleError(err)
	}
	return true, nil, req.msg, nil
}

// SleepState carries one interruptible sleep across program steps: the
// step form of Env.Sleep, used e.g. to charge checkpoint-restore gate
// delays. Zero value ready; reused sleep after sleep.
type SleepState struct {
	armed bool
}

// SleepStep advances the sleep. The first call arms the wake timer and
// returns the park value to return from Step (or done immediately for
// d <= 0); the resume call reports done. The clock advances to the wake
// time on resume, with events due before the deadline (failure
// activations, aborts, message arrivals) processed in order — exactly
// Env.Sleep's semantics.
func (e *Env) SleepStep(ss *SleepState, d vclock.Duration) (done bool, park any) {
	if ss.armed {
		ss.armed = false
		return true, nil
	}
	park, ok := e.ctx.SleepPark(d)
	if !ok {
		return true, nil
	}
	ss.armed = true
	return false, park
}

// RecvState carries one blocking receive across program steps: the step
// form of Comm.Recv. Zero value ready; reused receive after receive.
type RecvState struct {
	ws  WaitState
	req *Request
}

// RecvStep advances a blocking receive from src (or AnySource) with tag
// (or AnyTag). The first call posts the receive; src and tag are ignored
// on resume calls. On done the caller owns msg (Release it once
// consumed); a failed-process receive completes in error after the
// detection timeout, through the communicator's error handler, exactly
// like Recv.
func (c *Comm) RecvStep(rs *RecvState, src, tag int) (done bool, park any, msg *Message, err error) {
	if rs.req == nil {
		req, err := c.irecv(src, tag)
		if err != nil {
			return true, nil, nil, c.handleError(err)
		}
		rs.req = req
		rs.ws.Begin(req)
	}
	done, park, err = c.env.waitStep(&rs.ws)
	if !done {
		return false, park, nil, nil
	}
	req := rs.req
	rs.req = nil
	msg = req.msg
	req.msg = nil
	c.env.ps.dp.putReq(req)
	if err != nil {
		if msg != nil {
			msg.Release()
		}
		return true, nil, nil, c.handleError(err)
	}
	return true, nil, msg, nil
}

// SendState carries one blocking send across program steps: the step form
// of Comm.Send/SendN. Zero value ready; reused send after send.
type SendState struct {
	ws  WaitState
	req *Request
}

// SendStep advances a blocking send of data to dst with tag. Eager sends
// complete on the first call; larger-than-threshold sends post the
// rendezvous envelope and park until the receiver's clear-to-send — data
// must stay untouched until done (the MPI contract; the payload is read
// at clear-to-send time). dst, tag, and data are ignored on resume calls.
func (c *Comm) SendStep(ss *SendState, dst, tag int, data []byte) (done bool, park any, err error) {
	return c.sendStep(ss, dst, tag, len(data), data)
}

// SendNStep is SendStep for a payload-free message of the given size.
func (c *Comm) SendNStep(ss *SendState, dst, tag, size int) (done bool, park any, err error) {
	return c.sendStep(ss, dst, tag, size, nil)
}

func (c *Comm) sendStep(ss *SendState, dst, tag, size int, data []byte) (done bool, park any, err error) {
	if ss.req == nil {
		req, err := c.isend(dst, tag, size, data)
		if err != nil {
			return true, nil, c.handleError(err)
		}
		ss.req = req
		ss.ws.Begin(req)
	}
	done, park, err = c.env.waitStep(&ss.ws)
	if !done {
		return false, park, nil
	}
	c.env.ps.dp.putReq(ss.req)
	ss.req = nil
	return true, nil, c.handleError(err)
}

// ProbeState carries one blocking probe across program steps: the step
// form of Comm.Probe. Zero value ready; reused probe after probe. The
// embedded probe record is registered by address, so a ProbeState must
// not be copied while a probe is in flight.
type ProbeState struct {
	begun     bool
	parked    bool
	worldSrc  int
	tag       int
	postClock vclock.Time
	pr        probeRec
}

// ProbeStep advances a blocking probe for a message from src (or
// AnySource) with tag (or AnyTag); src and tag are ignored on resume
// calls. On done msg carries the envelope information without consuming
// the message; probing a failed process completes in error after the
// detection timeout, like Probe.
func (c *Comm) ProbeStep(st *ProbeState, src, tag int) (done bool, park any, msg *Message, err error) {
	e := c.env
	if !st.begun {
		e.chargeCall()
		if err := c.checkRevoked("probe"); err != nil {
			return true, nil, nil, c.handleError(err)
		}
		worldSrc, err := c.probeSrc(src)
		if err != nil {
			return true, nil, nil, c.handleError(err)
		}
		st.begun = true
		st.worldSrc = worldSrc
		st.tag = tag
		st.postClock = e.ctx.NowQuiet()
	}
	if st.parked {
		st.parked = false
		e.ps.removeProbe(&st.pr)
	}
	if env := e.ps.peekUnexpected(c.id, st.worldSrc, st.tag); env != nil {
		st.begun = false
		return true, nil, &Message{Src: env.srcCommRank, Tag: env.tag, Size: env.size}, nil
	}
	// A relevant failed peer means no message can come: complete in error
	// after the detection timeout, like a receive would.
	if peer, tof, ok := e.ps.relevantFailure(st.worldSrc); ok {
		at := vclock.Max(st.postClock, tof).Add(e.w.cfg.Net.Timeout(e.Rank(), peer))
		now := vclock.Max(at, e.ctx.NowQuiet())
		e.ctx.AdvanceTo(now)
		e.w.trace(trace.Event{At: now, Kind: trace.KindDetect, Rank: int32(e.Rank()), Peer: int32(peer), Aux: int64(tof)})
		e.w.m.recordDetection(e.Rank(), peer, now)
		st.begun = false
		return true, nil, nil, c.handleError(&ProcFailedError{Rank: peer, FailedAt: tof, Op: "probe"})
	}
	st.pr = probeRec{comm: c.id, src: st.worldSrc, tag: st.tag}
	e.ps.probes = append(e.ps.probes, &st.pr)
	st.parked = true
	return false, e.ps, nil, nil
}
