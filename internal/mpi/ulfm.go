package mpi

import (
	"encoding/binary"
	"fmt"
	"sort"

	"xsim/internal/core"
)

// This file implements the MPI user-level failure mitigation (ULFM)
// surface the paper names as future work it had just begun: error
// notification at the application (ProcFailedError instead of a fatal
// abort), remote process notification via communicator revocation
// (MPI_Comm_revoke), and communicator reconfiguration (MPI_Comm_shrink),
// plus a simplified fault-tolerant agreement (MPI_Comm_agree).

// Internal ULFM tags (within the reserved negative tag space).
const (
	tagShrinkReport = TagULFMBase - iota
	tagShrinkResult
	tagAgreeReport
	tagAgreeResult
)

// revokeNotify is the simulator-internal revocation notification payload.
type revokeNotify struct {
	commID int
	origin int
}

// handleRevoke processes a communicator revocation at one partition:
// every local process marks the communicator revoked, and pending
// operations on it complete with RevokedError.
func (w *World) handleRevoke(s *core.SchedCtx, ev *core.Event) {
	rn := ev.Payload.(revokeNotify)
	lo, hi := s.LocalRanks()
	for rank := lo; rank < hi; rank++ {
		ps := localState(s, rank)
		if ps == nil {
			continue
		}
		if ps.revoked == nil {
			ps.revoked = make(map[int]bool)
		}
		if ps.revoked[rn.commID] {
			continue
		}
		ps.revoked[rn.commID] = true
		// completeRequest unlinks the request from the pending list, so
		// capture the successor before completing each one.
		for req := ps.pendHead; req != nil; {
			next := req.nNext
			if req.comm.id == rn.commID {
				completeRequest(ps, req, ev.Time, &RevokedError{Comm: rn.commID})
				wakeIfWaiting(s, ps, req, req.completeAt)
			}
			req = next
		}
	}
}

// Revoke revokes the communicator (MPI_Comm_revoke): a simulator-internal
// notification reaches every process, pending and future operations on
// the communicator fail with RevokedError, and collective recovery
// (Shrink) becomes possible. Revoke itself never blocks.
func (c *Comm) Revoke() {
	e := c.env
	c.markRevoked()
	e.Logf("MPI_Comm_revoke on comm %d", c.id)
	e.ctx.EmitBroadcast(core.Event{
		Time:    e.ctx.NowQuiet().Add(e.w.cfg.NotifyDelay),
		Kind:    kindRevoke,
		Payload: revokeNotify{commID: c.id, origin: e.Rank()},
	})
}

// encodeRanks serialises a rank list.
func encodeRanks(ranks []int) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(ranks)))
	for _, r := range ranks {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r))
	}
	return buf
}

// decodeRanks reverses encodeRanks.
func decodeRanks(buf []byte) ([]int, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("mpi: rank list too short")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	if len(buf) != 4+4*n {
		return nil, fmt.Errorf("mpi: rank list is %d bytes for %d ranks", len(buf), n)
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(binary.LittleEndian.Uint32(buf[4+4*i:]))
	}
	return out, nil
}

// Shrink builds a new communicator containing the surviving members
// (MPI_Comm_shrink). It is collective among the survivors: each reports
// its locally known failed set to the lowest-ranked survivor, which unions
// them (treating report timeouts as further failures), decides the new
// membership, and distributes it. Survivors return the new communicator
// with their new rank; the simplification relative to full ULFM is that
// the root survivor must stay alive through the shrink.
func (c *Comm) Shrink() (*Comm, error) {
	e := c.env
	e.chargeCall()
	failed := make(map[int]bool)
	for _, cr := range c.FailedInComm() {
		failed[cr] = true
	}
	root := -1
	for cr := 0; cr < c.n; cr++ {
		if !failed[cr] {
			root = cr
			break
		}
	}
	if root < 0 {
		return nil, fmt.Errorf("mpi: shrink of comm %d: no survivors", c.id)
	}
	if c.rank == root {
		for cr := 0; cr < c.n; cr++ {
			if cr == root || failed[cr] {
				continue
			}
			msg, err := c.recvTag(cr, tagShrinkReport)
			if err != nil {
				// A survivor candidate died before reporting: the
				// timeout reveals it; treat it as failed.
				if _, ok := err.(*ProcFailedError); ok {
					failed[cr] = true
					continue
				}
				return nil, err
			}
			reported, err := decodeRanks(msg.Data)
			msg.Release() // decodeRanks copied the payload out
			if err != nil {
				return nil, err
			}
			for _, fr := range reported {
				failed[fr] = true
			}
		}
		var live []int
		for cr := 0; cr < c.n; cr++ {
			if !failed[cr] {
				live = append(live, cr)
			}
		}
		sort.Ints(live)
		payload := encodeRanks(live)
		for _, cr := range live {
			if cr == root {
				continue
			}
			if err := c.sendTag(cr, tagShrinkResult, len(payload), payload); err != nil {
				if _, ok := err.(*ProcFailedError); ok {
					continue // died after deciding membership; survivors proceed
				}
				return nil, err
			}
		}
		return c.commFromCommRanks(live), nil
	}
	report := encodeRanks(c.FailedInComm())
	if err := c.sendTag(root, tagShrinkReport, len(report), report); err != nil {
		return nil, fmt.Errorf("mpi: shrink report to root failed: %w", err)
	}
	msg, err := c.recvTag(root, tagShrinkResult)
	if err != nil {
		return nil, fmt.Errorf("mpi: shrink result from root failed: %w", err)
	}
	live, err := decodeRanks(msg.Data)
	msg.Release()
	if err != nil {
		return nil, err
	}
	return c.commFromCommRanks(live), nil
}

// commFromCommRanks derives a communicator from a list of this
// communicator's ranks.
func (c *Comm) commFromCommRanks(commRanks []int) *Comm {
	group := make([]int, len(commRanks))
	for i, cr := range commRanks {
		group[i] = c.WorldRank(cr)
	}
	return c.env.newComm(group, c.env.Rank())
}

// Agree performs a simplified fault-tolerant agreement (MPI_Comm_agree):
// the survivors' flags are combined with bitwise AND and every survivor
// receives the result, even if other members failed. The root survivor
// must stay alive through the agreement.
func (c *Comm) Agree(flag uint32) (uint32, error) {
	e := c.env
	e.chargeCall()
	failed := make(map[int]bool)
	for _, cr := range c.FailedInComm() {
		failed[cr] = true
	}
	root := -1
	for cr := 0; cr < c.n; cr++ {
		if !failed[cr] {
			root = cr
			break
		}
	}
	if root < 0 {
		return 0, fmt.Errorf("mpi: agree on comm %d: no survivors", c.id)
	}
	if c.rank == root {
		acc := flag
		var live []int
		for cr := 0; cr < c.n; cr++ {
			if cr == root || failed[cr] {
				continue
			}
			msg, err := c.recvTag(cr, tagAgreeReport)
			if err != nil {
				if _, ok := err.(*ProcFailedError); ok {
					continue
				}
				return 0, err
			}
			if len(msg.Data) != 4 {
				return 0, fmt.Errorf("mpi: agree report is %d bytes", len(msg.Data))
			}
			acc &= binary.LittleEndian.Uint32(msg.Data)
			msg.Release()
			live = append(live, cr)
		}
		payload := binary.LittleEndian.AppendUint32(nil, acc)
		for _, cr := range live {
			if err := c.sendTag(cr, tagAgreeResult, 4, payload); err != nil {
				if _, ok := err.(*ProcFailedError); ok {
					continue
				}
				return 0, err
			}
		}
		return acc, nil
	}
	report := binary.LittleEndian.AppendUint32(nil, flag)
	if err := c.sendTag(root, tagAgreeReport, 4, report); err != nil {
		return 0, fmt.Errorf("mpi: agree report to root failed: %w", err)
	}
	msg, err := c.recvTag(root, tagAgreeResult)
	if err != nil {
		return 0, fmt.Errorf("mpi: agree result from root failed: %w", err)
	}
	if len(msg.Data) != 4 {
		return 0, fmt.Errorf("mpi: agree result is %d bytes", len(msg.Data))
	}
	out := binary.LittleEndian.Uint32(msg.Data)
	msg.Release()
	return out, nil
}
