package mpi

import (
	"fmt"
	"runtime"
	"testing"

	"xsim/internal/core"
	"xsim/internal/procmodel"
)

// benchWorldTree is benchWorld with tree collectives — the scalable
// algorithm the collective-heavy scale benchmarks use.
func benchWorldTree(b *testing.B, n int) *World {
	b.Helper()
	eng, err := core.New(core.Config{NumVPs: n})
	if err != nil {
		b.Fatal(err)
	}
	w, err := NewWorld(eng, WorldConfig{Net: testNet(n), Proc: procmodel.Paper(), Collectives: Tree})
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// allreduceClosure is the collective-heavy closure workload: one
// allreduce per step, the shape where every rank blocks inside a
// collective at every step. Rank 0 calls sample at the mid-step
// boundary, when every other rank is parked inside the collective — the
// steady-state resident footprint of the running simulation.
func allreduceClosure(steps int, sample func(), fail func(error)) func(*Env) {
	return func(e *Env) {
		defer e.Finalize()
		c := e.World()
		contrib := []float64{float64(e.Rank())}
		for i := 0; i < steps; i++ {
			if e.Rank() == 0 && i == steps/2 {
				sample()
			}
			if _, err := c.Allreduce(contrib, OpSum); err != nil {
				fail(err)
			}
		}
	}
}

// allreduceBenchProg is the program-mode twin: the same allreduce-per-step
// loop as a parked CollectiveState machine.
type allreduceBenchProg struct {
	steps, step int
	armed       bool
	cs          CollectiveState
	sample      func()
	fail        func(error)
}

func (p *allreduceBenchProg) Step(e *Env, wake any) (any, bool) {
	c := e.World()
	for {
		if p.step == p.steps {
			e.Finalize()
			return nil, true
		}
		if !p.armed {
			p.armed = true
			if e.Rank() == 0 && p.step == p.steps/2 {
				p.sample()
			}
			p.cs.BeginAllreduce([]float64{float64(e.Rank())}, OpSum)
		}
		done, park, err := c.CollectiveStep(&p.cs)
		if !done {
			return park, false
		}
		p.armed = false
		if err != nil {
			p.fail(err)
		}
		p.step++
	}
}

// memSampler measures the simulation's mid-run resident footprint: the
// baseline is read before the world is built, and sample (called by rank
// 0 at the workload's mid-step, when every other rank is parked) collects
// the live heap+stack after a GC. That is the number that decides how
// many virtual processes fit on one host: in closure mode it includes
// every parked rank's goroutine stack; in program mode a parked rank is
// only its state machine.
type memSampler struct {
	before, mid, after runtime.MemStats
}

// settle runs two collections so the second cycle finishes sweeping the
// first cycle's garbage: after one GC, HeapInuse still counts lazily
// swept spans and overstates the live footprint.
func settle(into *runtime.MemStats) {
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(into)
}

func (m *memSampler) baseline() { settle(&m.before) }

func (m *memSampler) sample() { settle(&m.mid) }

// final records the post-run footprint (world still live): the retained
// cost once every rank has finished — the accounting the pre-existing
// BenchmarkBytesPerVP gate uses.
func (m *memSampler) final() { settle(&m.after) }

// bytesPerVP is the mid-run peak: heap spans plus goroutine stacks
// (HeapInuse + StackInuse). Spans count whole 8 KiB pages, so this
// includes the allocator geometry the in-flight messages really occupy
// while the simulation runs — the honest "does it fit in RAM" number.
func (m *memSampler) bytesPerVP(n int) float64 {
	grew := (m.mid.HeapInuse + m.mid.StackInuse) - (m.before.HeapInuse + m.before.StackInuse)
	return float64(grew) / float64(n)
}

// retainedPerVP is the post-run live footprint: reachable bytes plus
// stacks (HeapAlloc + StackInuse). It deliberately excludes span
// geometry — after a run, partially-filled spans pinned by request churn
// are reusable capacity for the next simulation, not per-rank state — so
// this is the number that scales with the rank count and the one the
// ci.sh gate holds.
func (m *memSampler) retainedPerVP(n int) float64 {
	grew := (m.after.HeapAlloc + m.after.StackInuse) - (m.before.HeapAlloc + m.before.StackInuse)
	return float64(grew) / float64(n)
}

// BenchmarkAllreduceBytesPerVP measures the resident memory cost of one
// virtual process on the collective-heavy workload (tree allreduce per
// step): mid-run heap+stack growth divided by the rank count, plus the
// achieved rank-steps per second. In closure mode every rank parks a
// goroutine inside the collective; in program mode the same rank is a
// parked CollectiveState a few hundred bytes wide, which is what lets
// the workload scale to a million ranks.
func BenchmarkAllreduceBytesPerVP(b *testing.B) {
	const steps = 2
	measure := func(b *testing.B, n int, run func(w *World, sample func()) error) {
		for i := 0; i < b.N; i++ {
			var ms memSampler
			ms.baseline()
			w := benchWorldTree(b, n)
			start := b.Elapsed()
			if err := run(w, ms.sample); err != nil {
				b.Fatal(err)
			}
			elapsed := (b.Elapsed() - start).Seconds()
			ms.final()
			b.ReportMetric(ms.bytesPerVP(n), "bytes/vp")
			b.ReportMetric(ms.retainedPerVP(n), "retained-bytes/vp")
			b.ReportMetric(float64(n)*float64(steps)/elapsed, "rankstep/s")
			runtime.KeepAlive(w)
		}
	}
	for _, n := range []int{4096, 65536} {
		n := n
		b.Run(fmt.Sprintf("closure/ranks=%d", n), func(b *testing.B) {
			measure(b, n, func(w *World, sample func()) error {
				_, err := w.Run(allreduceClosure(steps, sample, func(err error) { b.Error(err) }))
				return err
			})
		})
	}
	for _, n := range []int{4096, 65536, 262144, 1048576} {
		n := n
		b.Run(fmt.Sprintf("prog/ranks=%d", n), func(b *testing.B) {
			measure(b, n, func(w *World, sample func()) error {
				_, err := w.RunProgs(func(rank int) Prog {
					return &allreduceBenchProg{steps: steps, sample: sample, fail: func(err error) { b.Error(err) }}
				})
				return err
			})
		})
	}
}
