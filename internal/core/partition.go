package core

import (
	"fmt"

	"xsim/internal/check"
	"xsim/internal/vclock"
)

// yieldKind is the VP→scheduler handoff message. The scheduler→VP resume
// token travels on the same per-VP gate channel (see vp.gate), so a full
// block/wake cycle costs exactly one channel operation pair per direction
// and allocates nothing.
type yieldKind int

const (
	yieldBlocked yieldKind = iota // VP parked in Block
	yieldDead                     // VP terminated
	gateResume                    // scheduler→VP: resume (wake data in vp fields)
)

// partition owns a contiguous range of VPs and executes them one at a time,
// interleaved by virtual timestamps — the analogue of one native MPI
// process in xSim's oversubscribed execution. With Workers > 1 the engine
// runs partitions concurrently under conservative window synchronisation.
type partition struct {
	id  int
	eng *Engine

	// lo, hi delimit the owned rank range [lo, hi).
	lo, hi int

	eventQ eventHeap
	ready  readyHeap

	// free is the partition's event free list: dispatched events are
	// recycled here and handed back out by Emit, so the steady-state
	// event path allocates nothing. Events that cross partitions simply
	// migrate from the emitter's pool to the dispatcher's.
	free []*Event

	// sctx is the partition's reusable handler context; it is passed to
	// every handler invocation, valid only for the duration of the call.
	sctx SchedCtx

	// crossOut buffers events destined for other partitions during a
	// window. At the window barrier each buffer is swapped (not copied)
	// into the destination partition's inbox slot.
	crossOut [][]*Event

	// inbox[src] is the buffer partition src published for this
	// partition in the current round; it is drained into eventQ after
	// the exchange barrier. Buffers ping-pong between crossOut and inbox
	// so the steady-state exchange allocates nothing.
	inbox [][]*Event

	// watermark is the virtual time of the item currently being
	// processed; wakes and handler emissions must not go backwards past
	// it (that would break deterministic global time order).
	watermark vclock.Time

	// seq numbers the engine's own pre-run events (ScheduleFailure).
	seq uint64

	live int // VPs not yet dead

	// idle is the carrier pool: goroutines whose previous VP died, parked
	// on their gate awaiting the next startVP assignment (carrier.go).
	idle []*carrier

	// validate mirrors Config.Validate: when set, the invariant checks in
	// this file and parallel.go are live; when clear they are single
	// untaken branches.
	validate bool

	// events and resumes count processed work items for the engine's
	// statistics; the remaining counters feed Engine.Metrics. All are
	// touched only by the partition's own worker.
	events      uint64
	resumes     uint64
	poolHits    uint64
	poolMisses  uint64
	crossEvents uint64
	rounds      uint64
	widthSum    vclock.Duration

	// Carrier-pool and program-mode lifecycle gauges (Engine.Metrics).
	carriersSpawned uint64
	carrierReuses   uint64
	carriersLive    int
	carriersHi      int
	carrierIdleHi   int
	progSteps       uint64
}

// handlerSrc returns the deterministic event source id for handler
// emissions on behalf of a rank (distinct from VP emissions, which use
// the rank itself, and from EngineSrc=-1): rank r maps to -2-r. Deriving
// the source from the rank rather than from the emitting partition keeps
// same-virtual-time tie-breaks identical at every worker count — with a
// partition-derived source, two handler emissions meeting in one queue at
// the same time would order by partition layout, which differs between
// the sequential and parallel engines.
func handlerSrc(rank int) int { return -2 - rank }

func (p *partition) owns(rank int) bool { return rank >= p.lo && rank < p.hi }

func (p *partition) nextSeq() uint64 {
	p.seq++
	return p.seq
}

// newEvent returns a zeroed event from the partition's free list, or a
// fresh allocation if the list is empty. Must only be called from the
// partition's own execution context (its scheduler or its running VP).
func (p *partition) newEvent() *Event {
	if n := len(p.free) - 1; n >= 0 {
		ev := p.free[n]
		p.free[n] = nil
		p.free = p.free[:n]
		p.poolHits++
		return ev
	}
	p.poolMisses++
	return new(Event)
}

// maxFreeEvents bounds the event free list so one burst (every rank
// emitting at a window edge) does not pin its peak working set forever;
// the cap comfortably covers steady-state traffic, and surplus recycles
// fall to the garbage collector.
const maxFreeEvents = 4096

// recycle zeroes a dispatched event and returns it to the free list. The
// event must no longer be referenced by any queue or handler.
func (p *partition) recycle(ev *Event) {
	*ev = Event{}
	if len(p.free) < maxFreeEvents {
		p.free = append(p.free, ev)
	}
}

// localNext returns the earliest pending work item's virtual time, or
// vclock.Never if the partition is idle. Called only between windows (or
// before the first), when no VP is running.
func (p *partition) localNext() vclock.Time {
	next := vclock.Never
	if ev := p.eventQ.peek(); ev != nil {
		next = ev.Time
	}
	if re, ok := p.ready.peek(); ok && re.at < next {
		next = re.at
	}
	return next
}

// stopStrideMask throttles the cancellation poll inside a window: the
// atomic stop flag is read once per stopStrideMask+1 processed items, so
// the hot path pays one local counter increment and a predictable branch,
// while a cancelled sequential run (whose single window spans the whole
// simulation) still stops promptly.
const stopStrideMask = 1<<10 - 1

// processWindow processes all pending items with virtual time strictly
// before horizon, in deterministic (time, src, seq) order, preferring
// events over VP resumes on equal times. Items generated during the window
// that still fall before the horizon are processed too. Dispatched events
// are recycled into the partition's free list once their handler returns.
// A Cancel observed mid-window returns early; the run is being torn down,
// so the unprocessed remainder of the window is irrelevant.
func (p *partition) processWindow(horizon vclock.Time) {
	for n := uint(0); ; n++ {
		if n&stopStrideMask == 0 && p.eng.stop.Load() {
			return
		}
		ev := p.eventQ.peek()
		re, haveReady := p.ready.peek()
		switch {
		case ev != nil && ev.Time < horizon && (!haveReady || ev.Time <= re.at):
			p.eventQ.pop()
			if p.validate && ev.Time < p.watermark {
				check.Failf("watermark-monotonic", ev.Target, ev.Time, eventDesc(ev),
					"partition %d dispatched an event before its watermark %v", p.id, p.watermark)
			}
			p.watermark = ev.Time
			p.events++
			p.dispatch(ev)
			p.recycle(ev)
		case haveReady && re.at < horizon:
			p.ready.pop()
			if p.validate && re.at < p.watermark {
				check.Failf("watermark-monotonic", re.rank, re.at, "",
					"partition %d resumed rank %d before its watermark %v", p.id, re.rank, p.watermark)
			}
			p.watermark = re.at
			p.resumes++
			p.resume(re.rank)
		default:
			return
		}
	}
}

// dispatch routes an event to its handler.
func (p *partition) dispatch(ev *Event) {
	switch ev.Kind {
	case kindFailure:
		p.handleFailureEvent(ev)
		return
	case kindTimer:
		v := &p.eng.vps[ev.Target]
		if v.state == vpBlocked && v.sleeping && ev.stamp == v.sleepSeq {
			p.wake(v, ev.Time, nil)
		}
		return
	}
	if int(ev.Kind) >= len(p.eng.handlers) || p.eng.handlers[ev.Kind] == nil {
		panic(fmt.Sprintf("core: no handler registered for event kind %d", ev.Kind))
	}
	p.eng.handlers[ev.Kind](&p.sctx, ev)
}

// handleFailureEvent activates a scheduled process failure. If the target
// VP is blocked it is woken so that the failure activates at the scheduled
// time; if it is ready or will run later, the time-of-failure field makes
// the failure activate at the VP's next clock update — the actual failure
// time is when the simulator regains control, at or after the scheduled
// time, exactly as in the paper.
func (p *partition) handleFailureEvent(ev *Event) {
	v := &p.eng.vps[ev.Target]
	if v.state == vpDead {
		return
	}
	if ev.Time < v.tof {
		v.tof = ev.Time
	}
	if v.state == vpBlocked {
		p.wake(v, ev.Time, nil)
	}
}

// wake moves a blocked VP to the ready heap. at is the logical wake time;
// the effective resume time also respects the VP's own clock and the
// partition watermark. The wake data is parked in the VP's own fields —
// nothing is allocated.
func (p *partition) wake(v *vp, at vclock.Time, val any) {
	if v.part != p {
		panic(fmt.Sprintf("core: partition %d woke rank %d owned by partition %d", p.id, v.rank, v.part.id))
	}
	if v.state != vpBlocked {
		panic(fmt.Sprintf("core: wake of rank %d in state %d", v.rank, v.state))
	}
	if p.validate && at < p.watermark {
		check.Failf("wake-monotonic", v.rank, at, "",
			"wake of rank %d at %v precedes partition %d's watermark %v", v.rank, at, p.id, p.watermark)
	}
	if at < p.watermark {
		at = p.watermark
	}
	v.state = vpReady
	v.wakeAt = at
	v.wakeVal = val
	p.ready.push(readyEntry{at: vclock.Max(at, v.clock), rank: v.rank})
}

// resume hands execution to a ready VP and waits for it to block or die.
// In program mode the step runs inline on the scheduler stack; in closure
// mode it is one send on the VP's gate (the wake data already sits in the
// VP's fields) and one receive of the yield notification, with a carrier
// attached lazily on the VP's first resume.
func (p *partition) resume(rank int) {
	v := &p.eng.vps[rank]
	clockBefore := v.clock
	var dead bool
	if p.eng.progMode() {
		dead = p.stepProgram(v)
	} else {
		if v.state == vpCreated {
			p.startVP(v)
		}
		v.gate <- gateResume
		if k := <-v.gate; k == yieldDead {
			p.recycleCarrier(v)
			dead = true
		}
	}
	if p.validate && v.clock < clockBefore {
		check.Failf("clock-monotonic", rank, v.clock, "",
			"rank %d's clock moved backwards across a resume: %v -> %v", rank, clockBefore, v.clock)
	}
	if dead {
		p.live--
	}
}

// kill tears down a VP that is still alive at engine shutdown.
func (p *partition) kill(v *vp) {
	switch v.state {
	case vpDead:
		return
	case vpBlocked, vpCreated, vpReady:
	default:
		panic(fmt.Sprintf("core: kill of running rank %d", v.rank))
	}
	if v.state == vpCreated || p.eng.progMode() {
		// No stack to unwind: a never-started VP has no carrier (lazy
		// spawn) and a parked program is pure data. Mark it dead directly;
		// DeathKilled skips the death hook, so the outcome matches the
		// unwind path exactly.
		v.killed = true
		v.wakeVal = nil
		v.blockReason = nil
		v.death = DeathKilled
		v.deathTime = v.clock
		v.state = vpDead
		p.live--
		return
	}
	v.wakeVal = nil
	v.killed = true
	v.gate <- gateResume
	if k := <-v.gate; k != yieldDead {
		panic("core: killed VP yielded without dying")
	}
	p.recycleCarrier(v)
	p.live--
}

// blockReasonString renders a Block reason for a deadlock report: plain
// strings pass through, and hot-path callers that parked with a lazy
// reason (anything implementing BlockReason() string) are formatted only
// here — never on the block fast path.
func blockReasonString(r any) string {
	switch x := r.(type) {
	case nil:
		return ""
	case string:
		return x
	case interface{ BlockReason() string }:
		return x.BlockReason()
	default:
		return fmt.Sprint(x)
	}
}

// blockedReport describes the blocked VPs of this partition for deadlock
// diagnostics.
func (p *partition) blockedReport() []string {
	var out []string
	for r := p.lo; r < p.hi; r++ {
		v := &p.eng.vps[r]
		if v.state == vpBlocked {
			out = append(out, fmt.Sprintf("rank %d blocked at %v: %s", v.rank, v.clock, blockReasonString(v.blockReason)))
		}
	}
	return out
}

// SchedCtx is the engine handle passed to event handlers. Handlers run in
// scheduler context: no VP of this partition is executing, so the handler
// may inspect and mutate the per-VP state of local VPs. The context is
// only valid for the duration of the handler call — handlers must not
// retain it (the engine reuses one SchedCtx per partition).
type SchedCtx struct {
	eng  *Engine
	part *partition
}

// Now returns the virtual time of the event being processed.
func (s *SchedCtx) Now() vclock.Time { return s.part.watermark }

// N returns the total number of VPs.
func (s *SchedCtx) N() int { return len(s.eng.vps) }

// LocalRanks returns the rank range [lo, hi) owned by this partition.
func (s *SchedCtx) LocalRanks() (lo, hi int) { return s.part.lo, s.part.hi }

// Partition returns this partition's id (see Ctx.Partition).
func (s *SchedCtx) Partition() int { return s.part.id }

// Alive reports whether rank has not terminated. rank must be local.
func (s *SchedCtx) Alive(rank int) bool { return s.local(rank).state != vpDead }

// Blocked reports whether rank is parked in Block. rank must be local.
func (s *SchedCtx) Blocked(rank int) bool { return s.local(rank).state == vpBlocked }

// Clock returns rank's virtual clock. rank must be local.
func (s *SchedCtx) Clock(rank int) vclock.Time { return s.local(rank).clock }

// Data returns rank's attached per-VP state. rank must be local.
func (s *SchedCtx) Data(rank int) any { return s.local(rank).userData }

// Wake resumes a blocked local VP at virtual time at (clamped to the
// current event time), delivering val as Block's return value.
func (s *SchedCtx) Wake(rank int, at vclock.Time, val any) {
	s.part.wake(s.local(rank), at, val)
}

// SetTimeOfFailure schedules rank's failure at t (earliest failure time);
// it takes effect at the VP's next clock update. rank must be local. It
// does not wake a blocked VP — emit a failure event via
// Engine.ScheduleFailure (pre-run) or use Wake for that.
func (s *SchedCtx) SetTimeOfFailure(rank int, t vclock.Time) {
	v := s.local(rank)
	if t < v.tof {
		v.tof = t
	}
}

// SetAbortAt schedules rank's unwind for a simulated MPI abort at time t;
// it takes effect at the VP's next clock update. rank must be local.
func (s *SchedCtx) SetAbortAt(rank int, t vclock.Time) {
	v := s.local(rank)
	if t < v.abortAt {
		v.abortAt = t
	}
}

// EmitFor schedules an event from handler context on behalf of a local
// rank — the rank whose simulated activity (a matched receive, a
// rendezvous transfer, a timeout) the handler is performing. The event's
// deterministic ordering key derives from that rank (Src = handlerSrc,
// Seq from the rank's own sequence counter), never from the emitting
// partition, so same-virtual-time tie-breaks are identical at every
// worker count. Its Time must not precede the current event time, and
// cross-partition targets must respect the engine lookahead. The event
// value is copied into a pooled event, so the argument never escapes.
func (s *SchedCtx) EmitFor(onBehalf int, ev Event) {
	v := s.local(onBehalf)
	if ev.Time < s.part.watermark {
		check.Failf("emit-before-now", onBehalf, ev.Time, eventDesc(&ev),
			"handler on partition %d emitted an event before the current event time %v", s.part.id, s.part.watermark)
	}
	pe := s.part.newEvent()
	*pe = ev
	pe.Src = handlerSrc(onBehalf)
	pe.Seq = v.nextSeq()
	s.eng.route(s.part, s.part.watermark, pe)
}

// Logf writes an informational message through the engine's logger. The
// formatting cost is only paid when a logger is configured.
func (s *SchedCtx) Logf(format string, args ...any) {
	if s.eng.cfg.Logf == nil {
		return
	}
	s.eng.logf("[sim @ %v] %s", s.part.watermark, fmt.Sprintf(format, args...))
}

func (s *SchedCtx) local(rank int) *vp {
	v := &s.eng.vps[rank]
	if v.part != s.part {
		panic(fmt.Sprintf("core: partition %d accessed rank %d owned by partition %d", s.part.id, rank, v.part.id))
	}
	return v
}
