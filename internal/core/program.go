package core

import "xsim/internal/vclock"

// Program is the resumable state-machine execution mode: an alternative to
// a closure body for VPs whose control flow can be expressed as explicit
// steps between blocking points. A parked Program VP is pure data — no
// goroutine, no stack — which is what makes million-rank worlds fit in
// memory.
//
// Step is called on the scheduler's own stack every time the VP is resumed
// (and once for the initial start, with wake == nil). It runs the VP's
// logic up to the next blocking point and returns:
//
//   - (park, false) to block: the VP parks with park as its block reason
//     (rendered by deadlock reports exactly like a Block argument), and the
//     next Step receives the waker's wake value.
//   - (_, true) when the VP's work is complete (DeathCompleted).
//
// Inside Step the full Ctx API is available except Block itself — a
// Program parks by returning, and Ctx.Block panics with a diagnostic if
// called without a carrier. Blocking primitives come in park-shaped
// forms instead: Ctx.SleepPark arms the timer Sleep would block on and
// hands back the park value to return from Step, and the MPI layer's
// step states (WaitState, RecvState, CollectiveState, ...) park on the
// same completion events their closure counterparts block on, so the two
// modes stay digest-identical. FailNow/Exitf/Abort work unchanged: they
// unwind via panic, which the scheduler recovers and classifies exactly
// as it does for carrier-run bodies.
type Program interface {
	Step(c *Ctx, wake any) (park any, done bool)
}

// stepProgram advances a Program VP by one Step on the scheduler stack,
// replicating the bookkeeping a carrier resume performs around Block.
// Returns true when the VP died (completed, failed, killed, or panicked).
func (p *partition) stepProgram(v *vp) bool {
	var wake any
	if v.state == vpCreated {
		// First entry: mirror the carrier-loop preamble.
		v.state = vpRunning
		v.clock = vclock.Max(v.clock, v.wakeAt)
	} else {
		// Resume from a park: mirror Block's wake-side bookkeeping
		// (including Sleep's post-Block clearing of the sleeping flag,
		// which guards against stale timers from abandoned sleeps).
		v.state = vpRunning
		v.blockReason = nil
		v.sleeping = false
		wake = v.wakeVal
		v.wakeVal = nil
		if v.wakeAt > v.clock {
			v.waited += v.wakeAt.Sub(v.clock)
			v.clock = v.wakeAt
		}
	}
	p.progSteps++
	park, done, died := p.runStep(v, wake)
	if died {
		v.prog = nil // a dead VP never steps again; free the program state
		return true
	}
	if done {
		v.finishDeath(p.eng, nil)
		v.prog = nil
		return true
	}
	v.state = vpBlocked
	v.blockReason = park
	return false
}

// runStep invokes Program.Step under the same recover/classify wrapper a
// carrier's runBody uses, so kills, failures, and stray panics inside a
// step land in the identical death taxonomy. died reports that the step
// unwound; park/done are only meaningful when it did not.
func (p *partition) runStep(v *vp, wake any) (park any, done bool, died bool) {
	defer func() {
		if r := recover(); r != nil {
			v.finishDeath(p.eng, r)
			died = true
		}
	}()
	if v.killed {
		panic(unwindSentinel{DeathKilled})
	}
	v.checkUnwind()
	if v.prog == nil {
		v.prog = p.eng.progFor(&v.ctx)
	}
	park, done = v.prog.Step(&v.ctx, wake)
	return park, done, false
}
