package core

import (
	"sync"

	"xsim/internal/check"
	"xsim/internal/vclock"
)

// This file implements the parallel (Workers > 1) execution protocol: a
// coordinator-free round structure in which every partition worker derives
// its own safe window from a shared table of next-item times.
//
// Each round has two barriers:
//
//	publish own localNext → barrier A → read all next times, derive
//	horizon → processWindow → swap crossOut buffers into destination
//	inboxes → barrier B → drain own inboxes into the event queue
//
// Compared to the previous coordinator design (which polled partitions
// sequentially, merged all cross-partition buffers in a serial section,
// and paid two channel round-trips per partition per window), the workers
// never exchange channel messages in steady state: the next-time fan-in is
// a shared padded array, the cross-partition exchange is a pair of
// pointer-slice swaps per partition pair, and the only synchronisation is
// the reusable barrier.
//
// Horizon extension: partition i's window is bounded by the earliest
// event that can still reach it. A lower bound on any future item at
// partition j is L(j) = min(next[j], globalMin+lookahead): j's own queue
// holds nothing below next[j], and anything j can still receive was (or
// will be) emitted at a clock at or after the global minimum, hence
// arrives at or after globalMin+lookahead. (The bound is a fixpoint:
// multi-hop chains pay the lookahead once per hop, so two hops already
// exceed it.) Partition i may therefore process every item strictly below
//
//	horizon(i) = min over j≠i of L(j) + lookahead
//	           = min(otherMin(i), globalMin+lookahead) + lookahead
//
// For partitions that do not hold the global minimum this equals the old
// coordinator horizon (globalMin+lookahead); for the partition that does —
// the bottleneck of the round — it extends the window to up to two
// lookaheads, batching what the coordinator design handled as two
// consecutive windows (two channel round-trips per partition) into one.
type nextSlot struct {
	t vclock.Time
	// Pad to a cache line so the per-partition slots don't false-share.
	_ [56]byte
}

// barrier is a reusable counter barrier. Broadcast wakeups through a
// sync.Cond keep each round allocation-free.
type barrier struct {
	mu    sync.Mutex
	cond  sync.Cond
	n     int
	count int
	gen   uint64
}

func (b *barrier) init(n int) {
	b.n = n
	b.cond.L = &b.mu
}

// wait blocks until all n workers have arrived.
func (b *barrier) wait() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// runParallel drives the partitions through conservative safe windows
// until every partition is idle (termination or deadlock). All workers
// compute the same global minimum each round, so they observe termination
// in the same round and the barrier population stays consistent.
func (e *Engine) runParallel() {
	e.next = make([]nextSlot, len(e.parts))
	e.bar.init(len(e.parts))
	var wg sync.WaitGroup
	wg.Add(len(e.parts))
	for _, p := range e.parts {
		go func(p *partition) {
			defer wg.Done()
			p.workerLoop()
		}(p)
	}
	wg.Wait()
}

// workerLoop is one partition's side of the round protocol.
func (p *partition) workerLoop() {
	e := p.eng
	for {
		// Cancellation consensus: partition 0 samples the stop flag before
		// barrier A and every worker reads the same decision after it (the
		// barrier's mutex orders the plain write), so all workers leave the
		// round loop in the same round and the barrier population stays
		// consistent.
		if p.id == 0 {
			e.stopRound = e.stop.Load()
		}
		e.next[p.id].t = p.localNext()
		e.bar.wait() // barrier A: all next times published
		if e.stopRound {
			return
		}
		own := e.next[p.id].t
		otherMin := vclock.Never
		for i := range e.next {
			if i == p.id {
				continue
			}
			if t := e.next[i].t; t < otherMin {
				otherMin = t
			}
		}
		if otherMin == vclock.Never && own == vclock.Never {
			return // global termination: everyone computes this identically
		}
		globalMin := own
		if otherMin < globalMin {
			globalMin = otherMin
		}
		// horizon = min(otherMin, globalMin+lookahead) + lookahead; see the
		// derivation at the top of this file.
		bound := globalMin.Add(e.cfg.Lookahead)
		if otherMin < bound {
			bound = otherMin
		}
		horizon := bound.Add(e.cfg.Lookahead)
		p.rounds++
		p.widthSum += horizon.Sub(globalMin)
		p.processWindow(horizon)
		p.publishCross()
		e.bar.wait() // barrier B: all cross buffers published
		p.collectCross()
	}
}

// publishCross swaps this partition's outgoing buffers into the
// destination partitions' inbox slots, taking back the buffers it
// published last round (already drained and truncated by the
// destination). The swap transfers ownership without copying; the barrier
// that follows makes it visible.
func (p *partition) publishCross() {
	for q, evs := range p.crossOut {
		if q == p.id {
			continue
		}
		dst := p.eng.parts[q]
		p.crossOut[q], dst.inbox[p.id] = dst.inbox[p.id], evs
	}
}

// collectCross drains the inbox buffers other partitions published this
// round into the event queue, then truncates them (clearing references)
// for their owners to reuse. The heap orders merged events by the
// deterministic key, so drain order does not matter.
func (p *partition) collectCross() {
	for q, evs := range p.inbox {
		if len(evs) == 0 {
			continue
		}
		for i, ev := range evs {
			if p.validate && ev.Time < p.watermark {
				// Horizon safety: the window protocol promises that no
				// cross-partition event can arrive in a partition's past.
				check.Failf("window-horizon", ev.Target, ev.Time, eventDesc(ev),
					"cross-partition event from partition %d arrived in partition %d's past (watermark %v)",
					q, p.id, p.watermark)
			}
			p.eventQ.push(ev)
			evs[i] = nil
		}
		p.inbox[q] = evs[:0]
	}
}
