package core

import (
	"sync"
	"sync/atomic"

	"xsim/internal/check"
	"xsim/internal/vclock"
)

// This file implements the parallel (Workers > 1) execution protocol: a
// coordinator-free round structure in which every partition worker derives
// its own safe window from a combining-tree reduction of next-item times.
//
// Each round has two synchronisation points:
//
//	contribute own localNext to the reduction tree → (tree release: all
//	contributions combined) → derive horizon from the reduced triple →
//	processWindow → swap crossOut buffers into destination inboxes →
//	barrier B → drain own inboxes into the event queue
//
// Compared to the previous flat design — every worker scanning a shared
// P-slot next-time array after a counter barrier — the reduction is
// tree-structured: each worker touches O(log P) combining nodes in the
// worst case (its leaf-to-root path, and only when it is the last arriver
// at every node), and derives its horizon from a constant-size result
// instead of re-scanning all P slots. Per-window coordination cost is
// therefore O(log P) per worker rather than O(P), which keeps window
// setup off the critical path once partitions number in the hundreds.
//
// Horizon extension (unchanged from the flat design): partition i's window
// is bounded by the earliest event that can still reach it. A lower bound
// on any future item at partition j is L(j) = min(next[j],
// globalMin+lookahead): j's own queue holds nothing below next[j], and
// anything j can still receive was (or will be) emitted at a clock at or
// after the global minimum, hence arrives at or after globalMin+lookahead.
// (The bound is a fixpoint: multi-hop chains pay the lookahead once per
// hop, so two hops already exceed it.) Partition i may therefore process
// every item strictly below
//
//	horizon(i) = min over j≠i of L(j) + lookahead
//	           = min(otherMin(i), globalMin+lookahead) + lookahead
//
// The reduction computes the triple (min1, argmin1, min2) — the global
// minimum, which partition holds it, and the second-smallest value — from
// which each worker derives otherMin in O(1): min1 if argmin1 is another
// partition, else min2. On ties min2 == min1, so the derived value equals
// the exact min-over-others either way.

// minTriple is the reduction value: the smallest contribution, the
// partition that contributed it, and the second-smallest contribution.
type minTriple struct {
	min1 vclock.Time
	arg1 int
	min2 vclock.Time
}

// mergeTriple combines two partial reductions. Ties keep a's argmin; the
// derived otherMin is tie-insensitive because min2 == min1 on a tie.
func mergeTriple(a, b minTriple) minTriple {
	if b.min1 < a.min1 {
		a, b = b, a
	}
	m2 := a.min2
	if b.min1 < m2 {
		m2 = b.min1
	}
	return minTriple{min1: a.min1, arg1: a.arg1, min2: m2}
}

// reduceNode is one combining node: up to two children deposit triples in
// slot and the last arriver merges them and climbs. arrived is the only
// cross-worker synchronisation below the root; its seq-cst increments
// order the plain slot writes for the combiner.
type reduceNode struct {
	slot    [2]minTriple
	parent  *reduceNode
	side    int // this node's slot index in parent
	expect  int32
	arrived atomic.Int32
	// Pad so adjacent nodes in the backing array don't false-share.
	_ [48]byte
}

// reduceTree is the static combining tree for one engine run: leaves for
// every partition, halving per level up to a single root.
type reduceTree struct {
	nodes []reduceNode
	start []*reduceNode // per-worker leaf node
	side  []int         // per-worker slot index in its leaf
}

func buildReduceTree(n int) *reduceTree {
	t := &reduceTree{start: make([]*reduceNode, n), side: make([]int, n)}
	total := 0
	for w := n; w > 1; w = (w + 1) / 2 {
		total += (w + 1) / 2
	}
	if total == 0 {
		total = 1 // degenerate single-worker tree: one root node
	}
	t.nodes = make([]reduceNode, total)
	if n == 1 {
		t.nodes[0].expect = 1
		t.start[0] = &t.nodes[0]
		return t
	}
	base := 0
	var prev []*reduceNode
	for w := n; w > 1; {
		cnt := (w + 1) / 2
		level := make([]*reduceNode, cnt)
		for j := 0; j < cnt; j++ {
			nd := &t.nodes[base+j]
			nd.expect = 2
			if j == cnt-1 && w%2 == 1 {
				nd.expect = 1
			}
			level[j] = nd
		}
		if prev == nil {
			for i := 0; i < n; i++ {
				t.start[i] = level[i/2]
				t.side[i] = i % 2
			}
		} else {
			for j, child := range prev {
				child.parent = level[j/2]
				child.side = j % 2
			}
		}
		base += cnt
		prev = level
		w = cnt
	}
	return t
}

// releaseGate parks non-combining workers until the root combine of the
// current round publishes the reduced triple. A generation counter (same
// scheme as barrier) makes it reusable and allocation-free; the cond-based
// wait never spins, which matters on single-CPU hosts.
type releaseGate struct {
	mu   sync.Mutex
	cond sync.Cond
	gen  uint64
}

func (g *releaseGate) init() { g.cond.L = &g.mu }

func (g *releaseGate) generation() uint64 {
	g.mu.Lock()
	gen := g.gen
	g.mu.Unlock()
	return gen
}

func (g *releaseGate) wait(gen uint64) {
	g.mu.Lock()
	for g.gen == gen {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

func (g *releaseGate) release() {
	g.mu.Lock()
	g.gen++
	g.cond.Broadcast()
	g.mu.Unlock()
}

// reduce contributes one worker's localNext to the round's tree reduction
// and returns the combined triple. The last arriver at each node merges
// and climbs; everyone else parks on the release gate. The generation is
// sampled before the contribution so a release that races ahead of the
// wait is never missed.
//
// Memory ordering: a worker's plain slot write precedes its seq-cst
// arrived.Add, which the combiner observes before reading the slots; the
// root combine transitively requires every node's last arrival, each of
// which reset that node's counter first, so all resets and reads
// happen-before release — the next round's writes cannot race them.
func (e *Engine) reduce(id int, own vclock.Time) minTriple {
	gen := e.winGate.generation()
	t := minTriple{min1: own, arg1: id, min2: vclock.Never}
	n := e.tree.start[id]
	side := e.tree.side[id]
	for {
		n.slot[side] = t
		if n.arrived.Add(1) < n.expect {
			e.winGate.wait(gen)
			return e.reduced
		}
		n.arrived.Store(0)
		if n.expect == 2 {
			t = mergeTriple(n.slot[0], n.slot[1])
		}
		if n.parent == nil {
			e.reduced = t
			e.winGate.release()
			return t
		}
		side = n.side
		n = n.parent
	}
}

// barrier is a reusable counter barrier. Broadcast wakeups through a
// sync.Cond keep each round allocation-free.
type barrier struct {
	mu    sync.Mutex
	cond  sync.Cond
	n     int
	count int
	gen   uint64
}

func (b *barrier) init(n int) {
	b.n = n
	b.cond.L = &b.mu
}

// wait blocks until all n workers have arrived.
func (b *barrier) wait() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// runParallel drives the partitions through conservative safe windows
// until every partition is idle (termination or deadlock). All workers
// receive the same reduced triple each round, so they observe termination
// in the same round and the tree/barrier populations stay consistent.
func (e *Engine) runParallel() {
	e.tree = buildReduceTree(len(e.parts))
	e.winGate.init()
	e.bar.init(len(e.parts))
	var wg sync.WaitGroup
	wg.Add(len(e.parts))
	for _, p := range e.parts {
		go func(p *partition) {
			defer wg.Done()
			p.workerLoop()
		}(p)
	}
	wg.Wait()
}

// workerLoop is one partition's side of the round protocol.
func (p *partition) workerLoop() {
	e := p.eng
	for {
		// Cancellation consensus: partition 0 samples the stop flag before
		// its tree contribution, and every worker reads the same decision
		// after the reduction releases (the root combine transitively
		// requires partition 0's seq-cst arrival, ordering the plain
		// write), so all workers leave the round loop in the same round.
		if p.id == 0 {
			e.stopRound = e.stop.Load()
		}
		g := e.reduce(p.id, p.localNext())
		if e.stopRound {
			return
		}
		if g.min1 == vclock.Never {
			return // global termination: everyone observes the same triple
		}
		globalMin := g.min1
		otherMin := g.min1
		if g.arg1 == p.id {
			otherMin = g.min2
		}
		// horizon = min(otherMin, globalMin+lookahead) + lookahead; see the
		// derivation at the top of this file.
		bound := globalMin.Add(e.cfg.Lookahead)
		if otherMin < bound {
			bound = otherMin
		}
		horizon := bound.Add(e.cfg.Lookahead)
		p.rounds++
		p.widthSum += horizon.Sub(globalMin)
		p.processWindow(horizon)
		p.publishCross()
		e.bar.wait() // barrier B: all cross buffers published
		p.collectCross()
	}
}

// publishCross swaps this partition's outgoing buffers into the
// destination partitions' inbox slots, taking back the buffers it
// published last round (already drained and truncated by the
// destination). The swap transfers ownership without copying; the barrier
// that follows makes it visible.
func (p *partition) publishCross() {
	for q, evs := range p.crossOut {
		if q == p.id {
			continue
		}
		dst := p.eng.parts[q]
		p.crossOut[q], dst.inbox[p.id] = dst.inbox[p.id], evs
	}
}

// collectCross drains the inbox buffers other partitions published this
// round into the event queue, then truncates them (clearing references)
// for their owners to reuse. The heap orders merged events by the
// deterministic key, so drain order does not matter.
func (p *partition) collectCross() {
	for q, evs := range p.inbox {
		if len(evs) == 0 {
			continue
		}
		for i, ev := range evs {
			if p.validate && ev.Time < p.watermark {
				// Horizon safety: the window protocol promises that no
				// cross-partition event can arrive in a partition's past.
				check.Failf("window-horizon", ev.Target, ev.Time, eventDesc(ev),
					"cross-partition event from partition %d arrived in partition %d's past (watermark %v)",
					q, p.id, p.watermark)
			}
			p.eventQ.push(ev)
			evs[i] = nil
		}
		p.inbox[q] = evs[:0]
	}
}
