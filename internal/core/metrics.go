package core

import "xsim/internal/vclock"

// MetricsSnapshot exposes the engine's internal counters, making the
// scheduler's performance claims (pooled events, coordinator-free windows)
// continuously observable instead of one-off benchmark lore. Counters are
// accumulated per partition without synchronisation — each is only touched
// by its partition's worker — and aggregated here after Run.
type MetricsSnapshot struct {
	// EventsDispatched and Resumes count the processed work items (same
	// quantities as Result.EventsProcessed/Resumes).
	EventsDispatched uint64
	Resumes          uint64
	// PoolHits and PoolMisses count event allocations served from the
	// per-partition free list vs fresh heap allocations. After warm-up,
	// PoolMisses stops growing — that is the 0 allocs/op steady state.
	PoolHits   uint64
	PoolMisses uint64
	// CrossEvents counts events routed between partitions (always 0 with
	// Workers = 1).
	CrossEvents uint64
	// EventHeapHighWater and ReadyHeapHighWater are the deepest any
	// partition's queues got — the working-set measure for the heaps.
	// ReadyHeapHighWater doubles as the peak-runnable-VPs gauge: every
	// runnable (woken or not-yet-started) VP sits in a ready heap.
	EventHeapHighWater int
	ReadyHeapHighWater int
	// VP-lifecycle gauges for the carrier execution model (carrier.go).
	// CarriersSpawned counts carrier goroutines created over the run and
	// CarrierReuses counts VP starts served by an already-pooled carrier;
	// their sum is the number of VP starts in closure mode. CarriersHighWater
	// is the live-goroutine high-water over partitions (the bounded-execution
	// claim: it tracks peak concurrently-live VPs, not world size), and
	// CarrierIdleHighWater the deepest any partition's idle pool got.
	// CarriersLive is the number of carrier goroutines still alive when the
	// snapshot was taken — 0 after a clean teardown, making it the leak
	// gauge.
	CarriersSpawned      uint64
	CarrierReuses        uint64
	CarriersHighWater    int
	CarrierIdleHighWater int
	CarriersLive         int
	// ProgramSteps counts Program.Step invocations (0 in closure mode).
	ProgramSteps uint64
	// BarrierRounds counts parallel window rounds summed over partitions
	// (0 with Workers = 1; every partition runs the same number of
	// rounds, so this is rounds × Workers).
	BarrierRounds uint64
	// WindowWidthSum accumulates each partition round's safe-window width
	// (horizon − global minimum); WindowWidthSum / BarrierRounds is the
	// mean width, which the horizon extension pushes past one lookahead.
	WindowWidthSum vclock.Duration
}

// Add accumulates other into m: counters sum, high-water marks take the
// maximum. The campaign layer uses it to pool metrics across many runs.
func (m *MetricsSnapshot) Add(other MetricsSnapshot) {
	m.EventsDispatched += other.EventsDispatched
	m.Resumes += other.Resumes
	m.PoolHits += other.PoolHits
	m.PoolMisses += other.PoolMisses
	m.CrossEvents += other.CrossEvents
	if other.EventHeapHighWater > m.EventHeapHighWater {
		m.EventHeapHighWater = other.EventHeapHighWater
	}
	if other.ReadyHeapHighWater > m.ReadyHeapHighWater {
		m.ReadyHeapHighWater = other.ReadyHeapHighWater
	}
	m.CarriersSpawned += other.CarriersSpawned
	m.CarrierReuses += other.CarrierReuses
	if other.CarriersHighWater > m.CarriersHighWater {
		m.CarriersHighWater = other.CarriersHighWater
	}
	if other.CarrierIdleHighWater > m.CarrierIdleHighWater {
		m.CarrierIdleHighWater = other.CarrierIdleHighWater
	}
	m.CarriersLive += other.CarriersLive
	m.ProgramSteps += other.ProgramSteps
	m.BarrierRounds += other.BarrierRounds
	m.WindowWidthSum += other.WindowWidthSum
}

// AvgWindowWidth returns the mean safe-window width per partition round,
// or 0 for sequential runs.
func (m MetricsSnapshot) AvgWindowWidth() vclock.Duration {
	if m.BarrierRounds == 0 {
		return 0
	}
	return m.WindowWidthSum / vclock.Duration(m.BarrierRounds)
}

// Metrics aggregates the per-partition counters. Call it after Run
// returns; it is not synchronised against running workers.
func (e *Engine) Metrics() MetricsSnapshot {
	var m MetricsSnapshot
	for _, p := range e.parts {
		m.EventsDispatched += p.events
		m.Resumes += p.resumes
		m.PoolHits += p.poolHits
		m.PoolMisses += p.poolMisses
		m.CrossEvents += p.crossEvents
		if p.eventQ.hi > m.EventHeapHighWater {
			m.EventHeapHighWater = p.eventQ.hi
		}
		if p.ready.hi > m.ReadyHeapHighWater {
			m.ReadyHeapHighWater = p.ready.hi
		}
		m.CarriersSpawned += p.carriersSpawned
		m.CarrierReuses += p.carrierReuses
		if p.carriersHi > m.CarriersHighWater {
			m.CarriersHighWater = p.carriersHi
		}
		if p.carrierIdleHi > m.CarrierIdleHighWater {
			m.CarrierIdleHighWater = p.carrierIdleHi
		}
		m.CarriersLive += p.carriersLive
		m.ProgramSteps += p.progSteps
		m.BarrierRounds += p.rounds
		m.WindowWidthSum += p.widthSum
	}
	return m
}
