package core

import (
	"runtime"
	"testing"

	"xsim/internal/vclock"
)

// BenchmarkHandoff measures the raw VP block/wake cycle: the cost of one
// simulated context switch. ReportAllocs guards the steady-state event
// path: with the event pool, field-based wakes, and the hand-rolled heaps
// the per-iteration cost must amortise to 0 allocs/op (the only
// allocations are one-time engine setup).
func BenchmarkHandoff(b *testing.B) {
	eng, err := New(Config{NumVPs: 2})
	if err != nil {
		b.Fatal(err)
	}
	registerPingBench(eng)
	rounds := b.N
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := eng.Run(func(c *Ctx) {
		peer := 1 - c.Rank()
		for i := 0; i < rounds; i++ {
			if c.Rank() == 0 {
				c.Emit(Event{Time: c.NowQuiet().Add(vclock.Microsecond), Kind: kindPingBench, Target: peer})
				c.Block("pong")
			} else {
				c.Block("ping")
				c.Emit(Event{Time: c.NowQuiet().Add(vclock.Microsecond), Kind: kindPingBench, Target: peer})
			}
		}
	}); err != nil {
		b.Fatal(err)
	}
}

const kindPingBench = FirstUserKind + 7

func registerPingBench(eng *Engine) {
	eng.RegisterHandler(kindPingBench, func(s *SchedCtx, ev *Event) {
		if s.Alive(ev.Target) && s.Blocked(ev.Target) {
			s.Wake(ev.Target, ev.Time, nil)
		}
	})
}

// BenchmarkEventHeap measures the event queue under a churning load.
func BenchmarkEventHeap(b *testing.B) {
	var h eventHeap
	evs := make([]*Event, 1024)
	for i := range evs {
		evs[i] = &Event{Time: vclock.Time(i * 7919 % 1024), Src: i % 16, Seq: uint64(i)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := evs[i%1024]
		h.push(ev)
		if h.len() > 512 {
			h.pop()
		}
	}
}

// BenchmarkReadyHeap measures the ready queue the same way; entries are
// plain values, so pushes must not box.
func BenchmarkReadyHeap(b *testing.B) {
	var h readyHeap
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.push(readyEntry{at: vclock.Time(i * 7919 % 1024), rank: i % 4096})
		if h.len() > 512 {
			h.pop()
		}
	}
}

// BenchmarkEngineStartup measures building and tearing down a 4096-VP
// engine (goroutine spawn + kill path).
func BenchmarkEngineStartup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng, err := New(Config{NumVPs: 4096})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Run(func(c *Ctx) {}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpawnTeardown measures the per-VP cost of standing up and
// tearing down a 64k-rank world where every rank runs to completion:
// carrier borrow + body + recycle in closure mode, a single inline step in
// program mode. Reported per VP so the numbers stay comparable across
// scales.
func BenchmarkSpawnTeardown(b *testing.B) {
	const n = 65536
	run := func(b *testing.B, exec func() error) {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := exec(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		runtime.ReadMemStats(&after)
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/n, "ns/vp")
		b.ReportMetric(float64(after.Mallocs-before.Mallocs)/float64(b.N)/n, "allocs/vp")
	}
	b.Run("closure", func(b *testing.B) {
		run(b, func() error {
			eng, err := New(Config{NumVPs: n})
			if err != nil {
				return err
			}
			_, err = eng.Run(func(c *Ctx) {})
			return err
		})
	})
	b.Run("prog", func(b *testing.B) {
		run(b, func() error {
			eng, err := New(Config{NumVPs: n})
			if err != nil {
				return err
			}
			_, err = eng.RunPrograms(func(*Ctx) Program { return doneProg{} })
			return err
		})
	})
}

type doneProg struct{}

func (doneProg) Step(c *Ctx, wake any) (any, bool) { return nil, true }

// BenchmarkParallelWindows measures the parallel window protocol under
// cross-partition ping traffic: 8 VPs over 4 workers, every rank paired
// with a rank in another partition, so each round all traffic crosses
// partitions and each window carries mailbox exchanges plus two barriers.
func BenchmarkParallelWindows(b *testing.B) {
	const (
		vps       = 8
		workers   = 4
		lookahead = vclock.Microsecond
	)
	eng, err := New(Config{NumVPs: vps, Workers: workers, Lookahead: lookahead})
	if err != nil {
		b.Fatal(err)
	}
	registerPingBench(eng)
	rounds := b.N
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := eng.Run(func(c *Ctx) {
		// Pair ranks across partitions: with 2 VPs per partition, rank r
		// partners with (r+4)%8, which always lives in another partition.
		peer := (c.Rank() + vps/2) % vps
		initiator := c.Rank() < vps/2
		for i := 0; i < rounds; i++ {
			if initiator {
				c.Emit(Event{Time: c.NowQuiet().Add(lookahead), Kind: kindPingBench, Target: peer})
				c.Block("pong")
			} else {
				c.Block("ping")
				c.Emit(Event{Time: c.NowQuiet().Add(lookahead), Kind: kindPingBench, Target: peer})
			}
		}
	}); err != nil {
		b.Fatal(err)
	}
}
