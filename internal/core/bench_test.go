package core

import (
	"testing"

	"xsim/internal/vclock"
)

// BenchmarkHandoff measures the raw VP block/wake cycle: the cost of one
// simulated context switch.
func BenchmarkHandoff(b *testing.B) {
	eng, err := New(Config{NumVPs: 2})
	if err != nil {
		b.Fatal(err)
	}
	registerPingBench(eng)
	rounds := b.N
	b.ResetTimer()
	if _, err := eng.Run(func(c *Ctx) {
		peer := 1 - c.Rank()
		for i := 0; i < rounds; i++ {
			if c.Rank() == 0 {
				c.Emit(Event{Time: c.NowQuiet().Add(vclock.Microsecond), Kind: kindPingBench, Target: peer})
				c.Block("pong")
			} else {
				c.Block("ping")
				c.Emit(Event{Time: c.NowQuiet().Add(vclock.Microsecond), Kind: kindPingBench, Target: peer})
			}
		}
	}); err != nil {
		b.Fatal(err)
	}
}

const kindPingBench = FirstUserKind + 7

func registerPingBench(eng *Engine) {
	eng.RegisterHandler(kindPingBench, func(s *SchedCtx, ev *Event) {
		if s.Alive(ev.Target) && s.Blocked(ev.Target) {
			s.Wake(ev.Target, ev.Time, nil)
		}
	})
}

// BenchmarkEventHeap measures the event queue under a churning load.
func BenchmarkEventHeap(b *testing.B) {
	var h eventHeap
	evs := make([]*Event, 1024)
	for i := range evs {
		evs[i] = &Event{Time: vclock.Time(i * 7919 % 1024), Src: i % 16, Seq: uint64(i)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := evs[i%1024]
		h.push(ev)
		if h.Len() > 512 {
			h.pop()
		}
	}
}

// BenchmarkEngineStartup measures building and tearing down a 4096-VP
// engine (goroutine spawn + kill path).
func BenchmarkEngineStartup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng, err := New(Config{NumVPs: 4096})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Run(func(c *Ctx) {}); err != nil {
			b.Fatal(err)
		}
	}
}
