package core

import (
	"strings"
	"testing"

	"xsim/internal/vclock"
)

// kindPing is a test event kind: wakes the target VP with the payload.
const kindPing = reservedKinds + iota

func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// registerPing installs a handler that completes a blocked VP's wait at the
// event time.
func registerPing(eng *Engine) {
	eng.RegisterHandler(kindPing, func(s *SchedCtx, ev *Event) {
		if s.Alive(ev.Target) && s.Blocked(ev.Target) {
			s.Wake(ev.Target, ev.Time, ev.Payload)
		}
	})
}

func TestSingleVPElapse(t *testing.T) {
	eng := newTestEngine(t, Config{NumVPs: 1})
	res, err := eng.Run(func(c *Ctx) {
		if c.Rank() != 0 || c.N() != 1 {
			t.Errorf("rank/N wrong: %d/%d", c.Rank(), c.N())
		}
		c.Elapse(5 * vclock.Second)
		if c.Now() != vclock.TimeFromSeconds(5) {
			t.Errorf("clock = %v", c.Now())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 || res.MaxClock != vclock.TimeFromSeconds(5) {
		t.Fatalf("result = %+v", res)
	}
}

func TestIndependentClocks(t *testing.T) {
	eng := newTestEngine(t, Config{NumVPs: 4})
	res, err := eng.Run(func(c *Ctx) {
		c.Elapse(vclock.Duration(c.Rank()+1) * vclock.Second)
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		if res.FinalClocks[r] != vclock.TimeFromSeconds(float64(r+1)) {
			t.Errorf("rank %d clock = %v", r, res.FinalClocks[r])
		}
	}
	if res.MinClock != vclock.TimeFromSeconds(1) || res.MaxClock != vclock.TimeFromSeconds(4) {
		t.Errorf("min/max = %v/%v", res.MinClock, res.MaxClock)
	}
	if res.AvgClock != vclock.TimeFromSeconds(2.5) {
		t.Errorf("avg = %v", res.AvgClock)
	}
}

func TestPingWakesBlockedVP(t *testing.T) {
	eng := newTestEngine(t, Config{NumVPs: 2})
	registerPing(eng)
	var got any
	var gotClock vclock.Time
	res, err := eng.Run(func(c *Ctx) {
		switch c.Rank() {
		case 0:
			c.Elapse(vclock.Second)
			c.Emit(Event{Time: c.Now().Add(vclock.Millisecond), Kind: kindPing, Target: 1, Payload: "hello"})
		case 1:
			got = c.Block("waiting for ping")
			gotClock = c.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != "hello" {
		t.Fatalf("payload = %v", got)
	}
	want := vclock.TimeFromSeconds(1.001)
	if gotClock != want {
		t.Fatalf("wake clock = %v, want %v", gotClock, want)
	}
	if res.Completed != 2 {
		t.Fatalf("completed = %d", res.Completed)
	}
}

func TestScheduledFailureDuringCompute(t *testing.T) {
	eng := newTestEngine(t, Config{NumVPs: 1})
	if err := eng.ScheduleFailure(0, vclock.TimeFromSeconds(3)); err != nil {
		t.Fatal(err)
	}
	reached := false
	res, err := eng.Run(func(c *Ctx) {
		// A single 10 s compute phase: the simulator regains control at
		// 10 s, past the scheduled 3 s, so the actual failure time is
		// 10 s (the scheduled time is only the earliest failure time).
		c.Elapse(10 * vclock.Second)
		reached = true
	})
	if err != nil {
		t.Fatal(err)
	}
	if reached {
		t.Fatal("VP survived its failure")
	}
	if res.Failed != 1 || res.Completed != 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.FinalClocks[0] != vclock.TimeFromSeconds(10) {
		t.Fatalf("failure clock = %v, want 10s", res.FinalClocks[0])
	}
}

func TestScheduledFailureWakesBlockedVP(t *testing.T) {
	eng := newTestEngine(t, Config{NumVPs: 1})
	if err := eng.ScheduleFailure(0, vclock.TimeFromSeconds(2)); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(func(c *Ctx) {
		c.Block("waiting forever")
		t.Error("blocked VP should fail, not resume")
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 {
		t.Fatalf("result = %+v", res)
	}
	// A blocked VP fails exactly at the scheduled time: the failure event
	// wakes it and the unwind activates at the scheduled clock.
	if res.FinalClocks[0] != vclock.TimeFromSeconds(2) {
		t.Fatalf("failure clock = %v, want 2s", res.FinalClocks[0])
	}
}

func TestFailureAtStart(t *testing.T) {
	eng := newTestEngine(t, Config{NumVPs: 1})
	if err := eng.ScheduleFailure(0, 0); err != nil {
		t.Fatal(err)
	}
	entered := false
	res, err := eng.Run(func(c *Ctx) { entered = true })
	if err != nil {
		t.Fatal(err)
	}
	if entered {
		t.Fatal("VP body should never start")
	}
	if res.Failed != 1 || res.FinalClocks[0] != 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestFailNow(t *testing.T) {
	eng := newTestEngine(t, Config{NumVPs: 1})
	res, err := eng.Run(func(c *Ctx) {
		c.Elapse(vclock.Second)
		c.FailNow()
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 || res.FinalClocks[0] != vclock.TimeFromSeconds(1) {
		t.Fatalf("result = %+v", res)
	}
}

func TestOnDeathHook(t *testing.T) {
	eng := newTestEngine(t, Config{NumVPs: 2})
	registerPing(eng)
	if err := eng.ScheduleFailure(0, vclock.TimeFromSeconds(1)); err != nil {
		t.Fatal(err)
	}
	var hookRank int
	var hookReason DeathReason
	var hookClock vclock.Time
	hooked := 0
	eng.OnDeath(func(c *Ctx, r DeathReason) {
		if r == DeathFailed {
			hookRank = c.Rank()
			hookReason = r
			hookClock = c.NowQuiet()
			hooked++
		}
	})
	_, err := eng.Run(func(c *Ctx) {
		if c.Rank() == 0 {
			c.Elapse(5 * vclock.Second)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if hooked != 1 || hookRank != 0 || hookReason != DeathFailed || hookClock != vclock.TimeFromSeconds(5) {
		t.Fatalf("hook: rank=%d reason=%v clock=%v count=%d", hookRank, hookReason, hookClock, hooked)
	}
}

func TestDeadlockDetection(t *testing.T) {
	eng := newTestEngine(t, Config{NumVPs: 2})
	res, err := eng.Run(func(c *Ctx) {
		if c.Rank() == 1 {
			c.Block("receive from rank 0 that never comes")
		}
	})
	if err == nil {
		t.Fatal("want deadlock error")
	}
	if !res.Deadlocked || len(res.Blocked) != 1 {
		t.Fatalf("result = %+v", res)
	}
	if !strings.Contains(res.Blocked[0], "never comes") {
		t.Errorf("blocked report = %q", res.Blocked[0])
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("err = %v", err)
	}
}

func TestPanicPropagation(t *testing.T) {
	eng := newTestEngine(t, Config{NumVPs: 2})
	_, err := eng.Run(func(c *Ctx) {
		if c.Rank() == 1 {
			panic("application bug")
		}
	})
	if err == nil || !strings.Contains(err.Error(), "application bug") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunTwiceFails(t *testing.T) {
	eng := newTestEngine(t, Config{NumVPs: 1})
	if _, err := eng.Run(func(c *Ctx) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(func(c *Ctx) {}); err == nil {
		t.Fatal("second Run should fail")
	}
}

func TestScheduleFailureValidation(t *testing.T) {
	eng := newTestEngine(t, Config{NumVPs: 2, StartClock: vclock.TimeFromSeconds(10)})
	if err := eng.ScheduleFailure(5, vclock.TimeFromSeconds(20)); err == nil {
		t.Error("out-of-range rank should fail")
	}
	if err := eng.ScheduleFailure(0, vclock.TimeFromSeconds(5)); err == nil {
		t.Error("failure before start clock should fail")
	}
	if _, err := eng.Run(func(c *Ctx) {}); err != nil {
		t.Fatal(err)
	}
	if err := eng.ScheduleFailure(0, vclock.TimeFromSeconds(20)); err == nil {
		t.Error("ScheduleFailure after Run should fail")
	}
}

func TestStartClock(t *testing.T) {
	start := vclock.TimeFromSeconds(7957)
	eng := newTestEngine(t, Config{NumVPs: 1, StartClock: start})
	res, err := eng.Run(func(c *Ctx) {
		if c.Now() != start {
			t.Errorf("initial clock = %v, want %v", c.Now(), start)
		}
		c.Elapse(vclock.Second)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxClock != start.Add(vclock.Second) {
		t.Fatalf("MaxClock = %v", res.MaxClock)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{NumVPs: 0}); err == nil {
		t.Error("NumVPs=0 should fail")
	}
	if _, err := New(Config{NumVPs: 4, Workers: -1}); err == nil {
		t.Error("negative Workers should fail")
	}
	if _, err := New(Config{NumVPs: 4, Workers: 2}); err == nil {
		t.Error("parallel without lookahead should fail")
	}
	if _, err := New(Config{NumVPs: 4, StartClock: -1}); err == nil {
		t.Error("negative StartClock should fail")
	}
	// Workers clamped to NumVPs.
	eng, err := New(Config{NumVPs: 2, Workers: 8, Lookahead: vclock.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Workers() != 2 {
		t.Errorf("workers = %d, want 2", eng.Workers())
	}
}

func TestVPData(t *testing.T) {
	eng := newTestEngine(t, Config{NumVPs: 1})
	if _, err := eng.Run(func(c *Ctx) {
		c.SetData(42)
		if c.Data().(int) != 42 {
			t.Error("data round trip failed")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestEmitBroadcast(t *testing.T) {
	const kindMark = kindPing + 1
	eng := newTestEngine(t, Config{NumVPs: 6, Workers: 3, Lookahead: vclock.Millisecond})
	marked := make([]bool, 6)
	eng.RegisterHandler(kindMark, func(s *SchedCtx, ev *Event) {
		lo, hi := s.LocalRanks()
		for r := lo; r < hi; r++ {
			marked[r] = true
		}
	})
	registerPing(eng)
	_, err := eng.Run(func(c *Ctx) {
		if c.Rank() == 0 {
			c.EmitBroadcast(Event{Time: c.Now().Add(vclock.Millisecond), Kind: kindMark})
		}
		c.Elapse(vclock.Second) // keep every VP alive past the broadcast
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, m := range marked {
		if !m {
			t.Errorf("rank %d not marked by broadcast", r)
		}
	}
}

func TestLookaheadViolationPanics(t *testing.T) {
	eng := newTestEngine(t, Config{NumVPs: 4, Workers: 2, Lookahead: vclock.Second})
	registerPing(eng)
	_, err := eng.Run(func(c *Ctx) {
		if c.Rank() == 0 {
			// Rank 3 is in the other partition; a 1 ms delay violates
			// the 1 s lookahead.
			c.Emit(Event{Time: c.Now().Add(vclock.Millisecond), Kind: kindPing, Target: 3})
		}
		if c.Rank() == 3 {
			c.Block("ping")
		}
	})
	if err == nil || !strings.Contains(err.Error(), "lookahead") {
		t.Fatalf("err = %v, want lookahead violation", err)
	}
}

func TestAbortViaSetAbortAt(t *testing.T) {
	const kindAbortAll = kindPing + 2
	eng := newTestEngine(t, Config{NumVPs: 3})
	eng.RegisterHandler(kindAbortAll, func(s *SchedCtx, ev *Event) {
		at := ev.Time
		lo, hi := s.LocalRanks()
		for r := lo; r < hi; r++ {
			if !s.Alive(r) {
				continue
			}
			s.SetAbortAt(r, at)
			if s.Blocked(r) {
				s.Wake(r, at, nil)
			}
		}
	})
	registerPing(eng)
	res, err := eng.Run(func(c *Ctx) {
		switch c.Rank() {
		case 0:
			c.Elapse(vclock.Second)
			c.EmitBroadcast(Event{Time: c.Now().Add(vclock.Millisecond), Kind: kindAbortAll})
			// Elapse models native compute: the simulator never regains
			// control, so this VP completes before processing the abort.
			c.Elapse(vclock.Hour)
		case 1:
			c.Block("waiting; released by abort")
		case 2:
			// Sleep yields to the simulator, so the abort interrupts it.
			c.Sleep(10 * vclock.Second)
			c.Elapse(vclock.Hour)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted != 2 || res.Completed != 1 {
		t.Fatalf("aborted = %d completed = %d; result %+v", res.Aborted, res.Completed, res)
	}
	// Ranks 1 and 2 are released at the abort time.
	for _, r := range []int{1, 2} {
		if res.FinalClocks[r] != vclock.TimeFromSeconds(1.001) {
			t.Errorf("rank %d abort clock = %v, want 1.001s", r, res.FinalClocks[r])
		}
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	eng := newTestEngine(t, Config{NumVPs: 1})
	res, err := eng.Run(func(c *Ctx) {
		c.Sleep(3 * vclock.Second)
		c.Sleep(0)  // no-op
		c.Sleep(-1) // no-op
		c.Sleep(2 * vclock.Second)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxClock != vclock.TimeFromSeconds(5) {
		t.Fatalf("clock after sleeps = %v, want 5s", res.MaxClock)
	}
}

func TestSleepInterruptedByFailure(t *testing.T) {
	eng := newTestEngine(t, Config{NumVPs: 1})
	if err := eng.ScheduleFailure(0, vclock.TimeFromSeconds(2)); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(func(c *Ctx) {
		c.Sleep(10 * vclock.Second)
		t.Error("sleep should have been interrupted by the failure")
	})
	if err != nil {
		t.Fatal(err)
	}
	// Unlike Elapse (failure at end of phase), a sleeping VP fails at
	// exactly the scheduled time.
	if res.Failed != 1 || res.FinalClocks[0] != vclock.TimeFromSeconds(2) {
		t.Fatalf("result = %+v", res)
	}
}

// pingPongWorkload bounces a token between rank pairs and returns final clocks.
func pingPongWorkload(t *testing.T, workers int) []vclock.Time {
	t.Helper()
	eng := newTestEngine(t, Config{NumVPs: 8, Workers: workers, Lookahead: vclock.Millisecond})
	registerPing(eng)
	res, err := eng.Run(func(c *Ctx) {
		peer := c.Rank() ^ 1
		for i := 0; i < 10; i++ {
			if c.Rank() < peer {
				c.Elapse(vclock.Duration(c.Rank()+1) * vclock.Millisecond)
				c.Emit(Event{Time: c.Now().Add(vclock.Millisecond), Kind: kindPing, Target: peer, Payload: i})
				got := c.Block("pong")
				if got.(int) != i {
					t.Errorf("bad pong %v", got)
				}
			} else {
				got := c.Block("ping")
				c.Elapse(2 * vclock.Millisecond)
				c.Emit(Event{Time: c.Now().Add(vclock.Millisecond), Kind: kindPing, Target: peer, Payload: got})
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.FinalClocks
}

func TestDeterminism(t *testing.T) {
	a := pingPongWorkload(t, 1)
	b := pingPongWorkload(t, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run-to-run mismatch at rank %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	seq := pingPongWorkload(t, 1)
	for _, w := range []int{2, 4, 8} {
		par := pingPongWorkload(t, w)
		for i := range seq {
			if seq[i] != par[i] {
				t.Fatalf("workers=%d mismatch at rank %d: %v vs %v", w, i, seq[i], par[i])
			}
		}
	}
}

func TestBusyWaitAccounting(t *testing.T) {
	eng := newTestEngine(t, Config{NumVPs: 2})
	registerPing(eng)
	res, err := eng.Run(func(c *Ctx) {
		switch c.Rank() {
		case 0:
			c.Elapse(3 * vclock.Second) // busy
			c.Emit(Event{Time: c.Now().Add(vclock.Millisecond), Kind: kindPing, Target: 1})
		case 1:
			c.Elapse(vclock.Second) // busy 1s
			c.Block("ping")         // waits from 1s to 3.001s
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Busy[0] != 3*vclock.Second || res.Waited[0] != 0 {
		t.Errorf("rank 0 busy/wait = %v/%v", res.Busy[0], res.Waited[0])
	}
	if res.Busy[1] != vclock.Second {
		t.Errorf("rank 1 busy = %v", res.Busy[1])
	}
	if want := vclock.FromSeconds(2.001); res.Waited[1] != want {
		t.Errorf("rank 1 waited = %v, want %v", res.Waited[1], want)
	}
	// Invariant: busy + waited equals the clock advance.
	for r := 0; r < 2; r++ {
		if got := res.Busy[r] + res.Waited[r]; vclock.Time(got) != res.FinalClocks[r] {
			t.Errorf("rank %d: busy+waited %v != clock %v", r, got, res.FinalClocks[r])
		}
	}
}

func TestSleepCountsAsWait(t *testing.T) {
	eng := newTestEngine(t, Config{NumVPs: 1})
	res, err := eng.Run(func(c *Ctx) {
		c.Sleep(4 * vclock.Second)
		c.Elapse(vclock.Second)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Waited[0] != 4*vclock.Second || res.Busy[0] != vclock.Second {
		t.Fatalf("busy/wait = %v/%v", res.Busy[0], res.Waited[0])
	}
}

func TestAdvanceToCountsAsWait(t *testing.T) {
	eng := newTestEngine(t, Config{NumVPs: 1})
	res, err := eng.Run(func(c *Ctx) {
		c.AdvanceTo(vclock.TimeFromSeconds(2))
		c.AdvanceTo(vclock.TimeFromSeconds(1)) // no-op: clock never goes back
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Waited[0] != 2*vclock.Second || res.FinalClocks[0] != vclock.TimeFromSeconds(2) {
		t.Fatalf("result = %+v", res)
	}
}

func TestDeathReasonString(t *testing.T) {
	for r, want := range map[DeathReason]string{
		DeathCompleted:  "completed",
		DeathFailed:     "failed",
		DeathAborted:    "aborted",
		DeathKilled:     "killed",
		DeathPanicked:   "panicked",
		DeathReason(99): "DeathReason(99)",
	} {
		if got := r.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(r), got, want)
		}
	}
}
