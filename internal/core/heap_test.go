package core

import (
	"math/rand"
	"testing"

	"xsim/internal/vclock"
)

// TestEventHeapOrder drains a randomly filled event heap and checks that
// events come out in deterministic (Time, Src, Seq) order.
func TestEventHeapOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h eventHeap
	const n = 2000
	for i := 0; i < n; i++ {
		h.push(&Event{
			Time: vclock.Time(rng.Intn(50)),
			Src:  rng.Intn(8),
			Seq:  uint64(i),
		})
	}
	prev := h.pop()
	for i := 1; i < n; i++ {
		ev := h.pop()
		if ev.before(prev) {
			t.Fatalf("pop %d out of order: %+v after %+v", i, ev, prev)
		}
		prev = ev
	}
	if h.len() != 0 {
		t.Fatalf("heap not empty after draining: len=%d", h.len())
	}
}

// TestEventHeapPopClearsSlots checks that popping leaves no stale *Event
// references in the heap's backing array. With event pooling this is a
// correctness property, not just a GC nicety: a retained pointer to a
// recycled event would alias a live queued event.
func TestEventHeapPopClearsSlots(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h eventHeap
	for i := 0; i < 100; i++ {
		h.push(&Event{Time: vclock.Time(rng.Intn(40)), Src: 0, Seq: uint64(i)})
	}
	for i := 0; i < 60; i++ {
		h.pop()
	}
	// The backing array beyond len must hold only nil slots.
	full := h.a[:cap(h.a)]
	for i := h.len(); i < len(full); i++ {
		if full[i] != nil {
			t.Fatalf("slot %d (len=%d, cap=%d) retains %+v after pop", i, h.len(), cap(h.a), full[i])
		}
	}
}

// TestReadyHeapOrder drains a randomly filled ready heap and checks
// (wake time, rank) order.
func TestReadyHeapOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var h readyHeap
	const n = 2000
	perm := rng.Perm(n)
	for i := 0; i < n; i++ {
		h.push(readyEntry{at: vclock.Time(rng.Intn(50)), rank: perm[i]})
	}
	prev := h.pop()
	for i := 1; i < n; i++ {
		e := h.pop()
		if entryBefore(e, prev) {
			t.Fatalf("pop %d out of order: %+v after %+v", i, e, prev)
		}
		prev = e
	}
}

// TestReadyHeapPopClearsSlots mirrors the event-heap test: vacated slots
// must be zeroed so the backing array holds no stale entries.
func TestReadyHeapPopClearsSlots(t *testing.T) {
	var h readyHeap
	for i := 0; i < 100; i++ {
		h.push(readyEntry{at: vclock.Time((i * 31) % 40), rank: i})
	}
	for i := 0; i < 60; i++ {
		h.pop()
	}
	full := h.a[:cap(h.a)]
	for i := h.len(); i < len(full); i++ {
		if full[i] != (readyEntry{}) {
			t.Fatalf("slot %d (len=%d, cap=%d) retains %+v after pop", i, h.len(), cap(h.a), full[i])
		}
	}
}
