package core

import (
	"fmt"
	"runtime/debug"

	"xsim/internal/check"
	"xsim/internal/vclock"
)

// DeathReason records why a VP stopped executing.
type DeathReason int

const (
	// DeathCompleted means the VP body returned normally.
	DeathCompleted DeathReason = iota
	// DeathFailed means the VP's scheduled (or self-triggered) process
	// failure activated.
	DeathFailed
	// DeathAborted means the VP unwound due to a simulated MPI abort.
	DeathAborted
	// DeathKilled means the engine tore the VP down at shutdown (e.g.
	// after a deadlock was detected).
	DeathKilled
	// DeathPanicked means the VP body panicked with a real error.
	DeathPanicked
)

// String returns a human-readable reason.
func (r DeathReason) String() string {
	switch r {
	case DeathCompleted:
		return "completed"
	case DeathFailed:
		return "failed"
	case DeathAborted:
		return "aborted"
	case DeathKilled:
		return "killed"
	case DeathPanicked:
		return "panicked"
	default:
		return fmt.Sprintf("DeathReason(%d)", int(r))
	}
}

// Unwind sentinels. VP unwinding uses panic/recover internally: the
// sentinel propagates out of arbitrarily nested application code to the VP
// wrapper, which classifies it. Application code must not recover() across
// simulator calls.
type unwindSentinel struct{ reason DeathReason }

// vpState tracks where a VP is in its lifecycle.
type vpState int

const (
	vpCreated vpState = iota // never executed: pure data, no carrier
	vpRunning                // currently executing (its partition's turn)
	vpReady                  // resumable, waiting in the ready heap
	vpBlocked                // waiting for a Wake
	vpDead                   // terminated
)

// vp is one simulated MPI process (virtual process). All fields are owned
// by the VP's partition: they are touched either by the VP goroutine while
// it runs (its partition's scheduler is parked) or by the partition
// scheduler while the VP is not running.
type vp struct {
	rank  int
	part  *partition
	clock vclock.Time

	// tof is the scheduled time of failure (earliest failure time); the
	// VP actually fails at the first clock update at or after tof. Never
	// means the VP never fails — the paper initialises this to "fail
	// never" on startup.
	tof vclock.Time
	// abortAt is the time of a pending simulated MPI abort, or Never.
	abortAt vclock.Time

	state vpState
	// blockReason is the value passed to Block, rendered only if a
	// deadlock report is ever printed: a string, or a value implementing
	// BlockReason() string for callers that want to avoid formatting a
	// reason on every block (see blockReasonString).
	blockReason any

	// gate is the bidirectional handoff channel: the scheduler sends
	// gateResume to hand control to the VP, and the VP sends its
	// yieldKind back on the same channel when it blocks or dies. Strict
	// alternation (only the running VP communicates with its scheduler)
	// makes the shared use race-free, and the channel ordering makes the
	// field-based resume data below safely visible on both sides.
	//
	// The channel is owned by the VP's carrier (carrier.go) and aliased
	// here only while the VP is assigned one: nil for VPs that have never
	// executed and for program VPs, which park as pure data.
	gate chan yieldKind
	// car is the carrier currently executing this VP's body, nil when the
	// VP has none (never started, program-mode, or dead).
	car *carrier
	// prog is the VP's resumable program in RunPrograms mode, created
	// lazily at the first step.
	prog Program

	// wakeAt, wakeVal, killed carry the resume data while the VP sits in
	// the ready heap: clock becomes max(clock, wakeAt), wakeVal is
	// returned from Block, and killed tears the VP down instead of
	// resuming it. Plain fields instead of a heap-allocated message keep
	// the block/wake cycle allocation-free.
	wakeAt  vclock.Time
	wakeVal any
	killed  bool

	death     DeathReason
	deathTime vclock.Time
	panicVal  any
	panicMsg  string

	// sleeping and sleepSeq guard Ctx.Sleep against stale timer events
	// (a timer for a sleep the VP already left must be dropped).
	sleeping bool
	sleepSeq uint64

	// busy accumulates virtual time spent executing (Elapse/Compute and
	// charged I/O); waited accumulates virtual time spent blocked or
	// advanced to operation completions. busy + waited equals the clock
	// advance since start, which the power model turns into energy.
	busy   vclock.Duration
	waited vclock.Duration

	// seq numbers this VP's emitted events for deterministic ordering.
	seq uint64
	// userData holds the higher layer's (MPI) per-VP state.
	userData any

	// ctx is the VP's durable simulator handle (it only holds the engine
	// and a self-pointer, both fixed for the run); keeping it in the flat
	// VP slab means bodies, programs and death hooks share one Ctx without
	// a per-call allocation.
	ctx Ctx
}

func (v *vp) nextSeq() uint64 {
	v.seq++
	return v.seq
}

// checkUnwind activates a pending failure or abort if the VP's clock has
// reached it. It must be called from VP context after every clock update —
// this is the paper's activation rule: a scheduled failure activates when
// the targeted process executes, updates its clock, and the clock reaches
// or passes the time of failure.
func (v *vp) checkUnwind() {
	failPending := v.clock >= v.tof
	abortPending := v.clock >= v.abortAt
	switch {
	case failPending && abortPending:
		// Both thresholds crossed: the earlier-scheduled one wins.
		if v.tof <= v.abortAt {
			panic(unwindSentinel{DeathFailed})
		}
		panic(unwindSentinel{DeathAborted})
	case failPending:
		panic(unwindSentinel{DeathFailed})
	case abortPending:
		panic(unwindSentinel{DeathAborted})
	}
}

// Ctx is the simulator handle passed to application (and MPI layer) code
// running inside a VP. All methods must be called from the VP's own
// goroutine.
type Ctx struct {
	eng *Engine
	vp  *vp
}

// Rank returns the VP's rank.
func (c *Ctx) Rank() int { return c.vp.rank }

// N returns the total number of VPs in the simulation.
func (c *Ctx) N() int { return len(c.eng.vps) }

// Now returns the VP's virtual clock. Reading the clock is a clock update
// point: like xSim's handling of timing functions (gettimeofday), it lets
// the simulator regain control, so a pending failure or abort activates
// here.
func (c *Ctx) Now() vclock.Time {
	c.vp.checkUnwind()
	return c.vp.clock
}

// NowQuiet returns the VP's virtual clock without giving the simulator a
// chance to activate failures. The MPI layer uses it for internal
// bookkeeping timestamps.
func (c *Ctx) NowQuiet() vclock.Time { return c.vp.clock }

// Elapse advances the VP's virtual clock by d, modelling computation or
// other local activity. Negative durations are ignored. The clock update
// is an activation point for pending failures and aborts.
func (c *Ctx) Elapse(d vclock.Duration) {
	if d > 0 {
		c.vp.clock = c.vp.clock.Add(d)
		c.vp.busy += d
	}
	c.vp.checkUnwind()
}

// BusyTime returns the virtual time this VP has spent executing.
func (c *Ctx) BusyTime() vclock.Duration { return c.vp.busy }

// WaitTime returns the virtual time this VP has spent blocked on
// communication or sleeping.
func (c *Ctx) WaitTime() vclock.Duration { return c.vp.waited }

// Sleep advances the VP's virtual clock by d while yielding to the
// simulator, unlike Elapse: events due before the deadline (message
// arrivals, failure activations, aborts) are processed in virtual-time
// order while the VP sleeps, so a sleeping VP fails or aborts at the
// scheduled time rather than at the end of the phase. Use Elapse to model
// native computation (the simulator cannot regain control mid-compute) and
// Sleep for interruptible waiting.
func (c *Ctx) Sleep(d vclock.Duration) {
	v := c.vp
	if d <= 0 {
		v.checkUnwind()
		return
	}
	v.sleepSeq++
	c.Emit(Event{Time: v.clock.Add(d), Kind: kindTimer, Target: v.rank, stamp: v.sleepSeq})
	v.sleeping = true
	c.Block("sleep")
	v.sleeping = false
}

// SleepPark is the program-mode counterpart of Sleep: it schedules the
// timer event that will wake the VP after d and returns the park value
// the Program must return from Step (ok true). For d <= 0 it returns
// (nil, false) after the same activation check Sleep performs — the
// program should treat that as an already-elapsed sleep and continue
// without parking. The scheduler clears the sleeping flag on resume,
// mirroring Sleep's post-Block bookkeeping.
func (c *Ctx) SleepPark(d vclock.Duration) (park any, ok bool) {
	v := c.vp
	if d <= 0 {
		v.checkUnwind()
		return nil, false
	}
	v.sleepSeq++
	c.Emit(Event{Time: v.clock.Add(d), Kind: kindTimer, Target: v.rank, stamp: v.sleepSeq})
	v.sleeping = true
	return "sleep", true
}

// AdvanceTo moves the VP's clock forward to t if t is later (e.g. to the
// completion time of an already-completed request). Like Elapse, it is an
// activation point for pending failures and aborts.
func (c *Ctx) AdvanceTo(t vclock.Time) {
	if t > c.vp.clock {
		c.vp.waited += t.Sub(c.vp.clock)
		c.vp.clock = t
	}
	c.vp.checkUnwind()
}

// AbortNow unwinds this VP as part of a simulated MPI abort at its current
// clock. It does not return.
func (c *Ctx) AbortNow() {
	c.vp.abortAt = c.vp.clock
	panic(unwindSentinel{DeathAborted})
}

// Block parks the VP until a handler wakes it via SchedCtx.Wake. It
// returns the value passed to Wake after advancing the clock to the wake
// time; the resume is an activation point. The reason appears in deadlock
// reports: pass a string, or — on hot paths that must not pay for
// formatting a reason that is almost never read — any value implementing
// BlockReason() string, which is rendered lazily only if a report is
// printed.
func (c *Ctx) Block(reason any) any {
	v := c.vp
	if v.gate == nil {
		// Program VPs have no goroutine to park: they must park by
		// returning from Step. A blocking call reaching here is a
		// programming error, not a deadlock waiting on a nil channel.
		panic(fmt.Sprintf("core: rank %d called Block from a program VP (park by returning from Program.Step)", v.rank))
	}
	v.state = vpBlocked
	v.blockReason = reason
	v.gate <- yieldBlocked // hand control to the scheduler
	<-v.gate               // wait for SchedCtx.Wake's resume
	v.state = vpRunning
	v.blockReason = nil
	if v.killed {
		panic(unwindSentinel{DeathKilled})
	}
	val := v.wakeVal
	v.wakeVal = nil // don't retain the value past this resume
	if v.wakeAt > v.clock {
		v.waited += v.wakeAt.Sub(v.clock)
		v.clock = v.wakeAt
	}
	v.checkUnwind()
	return val
}

// Emit schedules an event. The event's Src and Seq are assigned by the
// engine; its Time must not be before the VP's current clock, and events
// that cross partitions must respect the engine's lookahead (Time at least
// clock+lookahead) — both are programming errors that panic. The event
// value is copied into a pooled event drawn from the VP's partition, so
// the argument never escapes and steady-state emission allocates nothing.
func (c *Ctx) Emit(ev Event) {
	v := c.vp
	if ev.Time < v.clock {
		check.Failf("emit-before-now", v.rank, ev.Time, eventDesc(&ev),
			"rank %d emitted an event before its clock %v", v.rank, v.clock)
	}
	pe := v.part.newEvent()
	*pe = ev
	pe.Src = v.rank
	pe.Seq = v.nextSeq()
	c.eng.route(v.part, v.clock, pe)
}

// EmitBroadcast schedules one copy of ev per partition with Target set to
// BroadcastTarget. The same lookahead rule applies for remote partitions.
func (c *Ctx) EmitBroadcast(ev Event) {
	v := c.vp
	if ev.Time < v.clock {
		check.Failf("emit-before-now", v.rank, ev.Time, eventDesc(&ev),
			"rank %d broadcast an event before its clock %v", v.rank, v.clock)
	}
	ev.Target = BroadcastTarget
	for _, p := range c.eng.parts {
		pe := v.part.newEvent()
		*pe = ev
		pe.Src = v.rank
		pe.Seq = v.nextSeq()
		c.eng.routeToPartition(v.part, v.clock, p, pe)
	}
}

// FailNow triggers an immediate process failure of this VP (used for
// application-triggered failures such as returning from main without
// calling Finalize, or an explicit self-injection).
func (c *Ctx) FailNow() {
	c.vp.tof = c.vp.clock
	panic(unwindSentinel{DeathFailed})
}

// SetTimeOfFailure schedules this VP's own failure at t (the earliest
// failure time). Passing vclock.Never clears a pending schedule.
func (c *Ctx) SetTimeOfFailure(t vclock.Time) {
	c.vp.tof = t
	c.vp.checkUnwind()
}

// TimeOfFailure returns the VP's scheduled time of failure (vclock.Never
// if none).
func (c *Ctx) TimeOfFailure() vclock.Time { return c.vp.tof }

// Data returns the higher layer's per-VP state attached with SetData.
func (c *Ctx) Data() any { return c.vp.userData }

// SetData attaches per-VP state for the higher layer.
func (c *Ctx) SetData(d any) { c.vp.userData = d }

// Logf writes an informational message through the engine's logger,
// prefixed with the VP's rank and clock. With no logger configured it
// returns before formatting anything — mirroring the lazy BlockReason
// discipline, callers may log on hot paths without paying for Sprintf.
func (c *Ctx) Logf(format string, args ...any) {
	if c.eng.cfg.Logf == nil {
		return
	}
	c.eng.logf("[rank %d @ %v] %s", c.vp.rank, c.vp.clock, fmt.Sprintf(format, args...))
}

// Lookahead returns the engine's cross-partition lookahead. Higher layers
// must delay cross-partition events by at least this much.
func (c *Ctx) Lookahead() vclock.Duration { return c.eng.cfg.Lookahead }

// Partition returns the id of the partition that owns this VP. Partition
// assignment is fixed for the run, so higher layers may key
// partition-local storage (free lists, scratch buffers) by it.
func (c *Ctx) Partition() int { return c.vp.part.id }

// finishDeath classifies a VP's termination from the recover() outcome r
// (nil for a normal return) and runs the death hook. It is the single
// death path shared by carrier-executed bodies (carrier.go) and scheduler-
// stepped programs (program.go).
func (v *vp) finishDeath(eng *Engine, r any) {
	switch s := r.(type) {
	case nil:
		v.death = DeathCompleted
	case unwindSentinel:
		v.death = s.reason
	default:
		v.death = DeathPanicked
		v.panicVal = r
		v.panicMsg = fmt.Sprintf("rank %d panicked: %v\n%s", v.rank, r, debug.Stack())
	}
	v.deathTime = v.clock
	v.state = vpDead
	v.blockReason = nil
	if v.death != DeathKilled && eng.onDeath != nil {
		// Death bookkeeping (dropping queued messages, broadcasting
		// the failure notification) runs in VP context so it can
		// emit events on the VP's behalf.
		func() {
			defer func() {
				if r2 := recover(); r2 != nil {
					v.panicMsg = fmt.Sprintf("rank %d death hook panicked: %v\n%s", v.rank, r2, debug.Stack())
					if v.death != DeathPanicked {
						v.death = DeathPanicked
						v.panicVal = r2
					}
				}
			}()
			eng.onDeath(&v.ctx, v.death)
		}()
	}
}
