package core

import (
	"testing"

	"xsim/internal/vclock"
)

// runMetricsWorkload drives a ping-pong workload and returns the metrics.
func runMetricsWorkload(t *testing.T, workers int) (*Result, MetricsSnapshot) {
	t.Helper()
	const la = vclock.Duration(1000)
	eng, err := New(Config{NumVPs: 4, Workers: workers, Lookahead: la})
	if err != nil {
		t.Fatal(err)
	}
	kind := FirstUserKind
	eng.RegisterHandler(kind, func(s *SchedCtx, ev *Event) {
		if s.Blocked(ev.Target) {
			s.Wake(ev.Target, ev.Time, ev.Payload)
		}
	})
	res, err := eng.Run(func(c *Ctx) {
		peer := c.Rank() ^ 1
		for i := 0; i < 50; i++ {
			c.Emit(Event{Time: c.Now().Add(la), Kind: kind, Target: peer, Payload: i})
			c.Block("ping")
		}
		// Release the peer's final block.
		c.Emit(Event{Time: c.Now().Add(la), Kind: kind, Target: peer, Payload: -1})
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, eng.Metrics()
}

func TestMetricsSequential(t *testing.T) {
	res, m := runMetricsWorkload(t, 1)
	if m.EventsDispatched != res.EventsProcessed || m.Resumes != res.Resumes {
		t.Fatalf("metrics disagree with result: %+v vs %+v", m, res)
	}
	if m.EventsDispatched == 0 || m.Resumes == 0 {
		t.Fatalf("no work counted: %+v", m)
	}
	if m.PoolHits == 0 {
		t.Fatalf("event pool never hit: %+v", m)
	}
	// The pool serves the steady state: misses are bounded by the working
	// set (a handful of in-flight events), far below the total dispatched.
	if m.PoolMisses >= m.EventsDispatched/2 {
		t.Fatalf("pool misses %d not amortised over %d events", m.PoolMisses, m.EventsDispatched)
	}
	if m.CrossEvents != 0 || m.BarrierRounds != 0 || m.WindowWidthSum != 0 {
		t.Fatalf("sequential run recorded parallel metrics: %+v", m)
	}
	if m.EventHeapHighWater == 0 || m.ReadyHeapHighWater == 0 {
		t.Fatalf("heap high-water not tracked: %+v", m)
	}
}

func TestMetricsParallel(t *testing.T) {
	res1, _ := runMetricsWorkload(t, 1)
	res4, m := runMetricsWorkload(t, 4)
	// Determinism first: the parallel run's outcome matches sequential.
	for i := range res1.FinalClocks {
		if res1.FinalClocks[i] != res4.FinalClocks[i] {
			t.Fatalf("clock %d differs: %v vs %v", i, res1.FinalClocks[i], res4.FinalClocks[i])
		}
	}
	// Ranks 0^1 and 2^3 pair within partitions only at Workers=2; at
	// Workers=4 every pair spans partitions, so cross traffic must show.
	if m.CrossEvents == 0 {
		t.Fatalf("no cross-partition events at Workers=4: %+v", m)
	}
	if m.BarrierRounds == 0 || m.WindowWidthSum <= 0 {
		t.Fatalf("parallel window metrics missing: %+v", m)
	}
	// The horizon extension guarantees every window spans at least one
	// lookahead past the global minimum.
	if avg := m.AvgWindowWidth(); avg < 1000 {
		t.Fatalf("average window width %v below lookahead", avg)
	}
}
