package core

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"xsim/internal/vclock"
)

// pingPongBody builds a VP body in which each rank endlessly ping-pongs
// wake events with its ring neighbour — an unbounded simulation the
// engine can only leave through Cancel.
func pingPongBody(eng *Engine, delay vclock.Duration) func(*Ctx) {
	n := eng.NumVPs()
	return func(c *Ctx) {
		next := (c.Rank() + 1) % n
		if c.Rank() == 0 {
			c.Emit(Event{Time: c.Now().Add(delay), Kind: kindPing, Target: next})
		}
		for {
			c.Block("ping-pong")
			c.Emit(Event{Time: c.Now().Add(delay), Kind: kindPing, Target: next})
		}
	}
}

func TestCancelStopsSequentialRun(t *testing.T) {
	eng := newTestEngine(t, Config{NumVPs: 4})
	registerPing(eng)
	done := make(chan struct{})
	go func() {
		time.Sleep(10 * time.Millisecond)
		eng.Cancel()
		close(done)
	}()
	res, err := eng.Run(pingPongBody(eng, vclock.Millisecond))
	<-done
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if res == nil {
		t.Fatal("cancelled run should still return the partial result")
	}
	if res.Deadlocked {
		t.Fatal("a cancelled run must not be reported as a deadlock")
	}
	if res.EventsProcessed == 0 {
		t.Fatal("the run should have made progress before the cancel")
	}
	for r, d := range res.Deaths {
		if d != DeathKilled {
			t.Fatalf("rank %d death = %v, want killed", r, d)
		}
	}
}

func TestCancelStopsParallelRun(t *testing.T) {
	eng := newTestEngine(t, Config{NumVPs: 8, Workers: 4, Lookahead: vclock.Millisecond})
	registerPing(eng)
	go func() {
		time.Sleep(10 * time.Millisecond)
		eng.Cancel()
	}()
	res, err := eng.Run(pingPongBody(eng, vclock.Millisecond))
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if res.Deadlocked {
		t.Fatal("a cancelled run must not be reported as a deadlock")
	}
}

func TestCancelBeforeRunStopsImmediately(t *testing.T) {
	eng := newTestEngine(t, Config{NumVPs: 2})
	registerPing(eng)
	eng.Cancel()
	start := time.Now()
	_, err := eng.Run(pingPongBody(eng, vclock.Millisecond))
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("pre-cancelled run took %v", elapsed)
	}
}

func TestCancelAfterCompletionIsHarmless(t *testing.T) {
	eng := newTestEngine(t, Config{NumVPs: 2})
	res, err := eng.Run(func(c *Ctx) { c.Elapse(vclock.Second) })
	if err != nil {
		t.Fatal(err)
	}
	eng.Cancel() // e.g. a ctx watcher firing after the run finished
	if res.Completed != 2 {
		t.Fatalf("completed = %d", res.Completed)
	}
}

func TestCancelRaceWithCompletionKeepsCleanResult(t *testing.T) {
	// A run whose VPs all finish before the cancel flag is observed must
	// report clean completion and no error: cancellation only matters
	// when it actually cut VPs short.
	eng := newTestEngine(t, Config{NumVPs: 2})
	res, err := eng.Run(func(c *Ctx) {
		c.Elapse(vclock.Second)
		eng.Cancel() // flag set while the run is finishing anyway
	})
	if err != nil {
		t.Fatalf("run with no surviving VPs should not report cancellation: %v", err)
	}
	if res.Completed != 2 {
		t.Fatalf("completed = %d", res.Completed)
	}
}

func TestCancelLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		eng := newTestEngine(t, Config{NumVPs: 16, Workers: 2, Lookahead: vclock.Millisecond})
		registerPing(eng)
		go func() {
			time.Sleep(2 * time.Millisecond)
			eng.Cancel()
		}()
		if _, err := eng.Run(pingPongBody(eng, vclock.Millisecond)); err != nil && !errors.Is(err, ErrStopped) {
			t.Fatal(err)
		}
	}
	// VP goroutines die synchronously in the teardown kill, but give the
	// runtime a moment to retire them before counting.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

func TestDeadlockErrorWrapsSentinel(t *testing.T) {
	eng := newTestEngine(t, Config{NumVPs: 2})
	registerPing(eng)
	_, err := eng.Run(func(c *Ctx) {
		if c.Rank() == 0 {
			c.Block("waiting for a ping that never comes")
		}
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}
