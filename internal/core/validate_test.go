package core

import (
	"strings"
	"testing"

	"xsim/internal/check"
	"xsim/internal/vclock"
)

// A VP emitting an event into its own past is caught (always on, not just
// under Validate) and surfaces as a run error naming the invariant, the
// rank and the virtual time.
func TestEmitBeforeNowViolation(t *testing.T) {
	eng := newTestEngine(t, Config{NumVPs: 2})
	registerPing(eng)
	_, err := eng.Run(func(c *Ctx) {
		if c.Rank() != 0 {
			c.Elapse(vclock.Second)
			return
		}
		c.Elapse(vclock.Second)
		c.Emit(Event{Kind: kindPing, Time: vclock.TimeFromSeconds(0.5), Target: 1})
	})
	if err == nil {
		t.Fatal("emitting into the past should fail the run")
	}
	for _, want := range []string{"invariant violation [emit-before-now]", "rank 0", "0.5"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// A handler emitting an event before the partition watermark via EmitFor
// panics with a *check.Violation carrying the diagnostic dump.
func TestHandlerEmitForBeforeWatermarkViolation(t *testing.T) {
	eng := newTestEngine(t, Config{NumVPs: 2})
	const kindStale = reservedKinds + 100
	eng.RegisterHandler(kindPing, func(s *SchedCtx, ev *Event) {
		// Emitting at time zero while processing an event at 1s is a
		// simulator bug; EmitFor must refuse it.
		s.EmitFor(ev.Target, Event{Kind: kindStale, Time: 0, Target: ev.Target})
	})
	var v *check.Violation
	func() {
		defer func() {
			if r := recover(); r != nil {
				var ok bool
				if v, ok = check.AsViolation(r); !ok {
					panic(r)
				}
			}
		}()
		eng.Run(func(c *Ctx) {
			if c.Rank() == 0 {
				c.Emit(Event{Kind: kindPing, Time: vclock.TimeFromSeconds(1), Target: 1})
			}
			c.Elapse(2 * vclock.Second)
		})
	}()
	if v == nil {
		t.Fatal("stale EmitFor should panic with a violation")
	}
	if v.Invariant != "emit-before-now" || v.Rank != 1 {
		t.Fatalf("violation = %+v", v)
	}
	if !strings.Contains(v.Error(), "kind=") {
		t.Errorf("violation dump %q should describe the event", v.Error())
	}
}

// Validate must not change results — same clocks and terminations with
// checking on and off, sequentially and windowed.
func TestValidateDoesNotChangeResults(t *testing.T) {
	run := func(validate bool, workers int) *Result {
		eng := newTestEngine(t, Config{
			NumVPs: 4, Workers: workers, Lookahead: vclock.Microsecond, Validate: validate,
		})
		registerPing(eng)
		res, err := eng.Run(func(c *Ctx) {
			next := (c.Rank() + 1) % c.N()
			for i := 0; i < 5; i++ {
				c.Elapse(vclock.Duration(c.Rank()+1) * vclock.Microsecond)
				c.Emit(Event{Kind: kindPing, Time: c.Now().Add(2 * vclock.Microsecond), Target: next})
				c.Block("ping wait")
			}
		})
		if err != nil {
			t.Fatalf("validate=%v workers=%d: %v", validate, workers, err)
		}
		return res
	}
	for _, workers := range []int{1, 2} {
		ref := run(false, workers)
		got := run(true, workers)
		for r := range ref.FinalClocks {
			if ref.FinalClocks[r] != got.FinalClocks[r] || ref.Deaths[r] != got.Deaths[r] {
				t.Fatalf("workers=%d rank %d: validate changed result: %v/%v vs %v/%v",
					workers, r, ref.FinalClocks[r], ref.Deaths[r], got.FinalClocks[r], got.Deaths[r])
			}
		}
	}
}
