package core

import "xsim/internal/vclock"

// A carrier is a reusable goroutine that executes VP bodies. VPs no longer
// each own a goroutine for the whole run: a VP that has never started is
// pure data, and its first resume borrows a carrier from its partition's
// pool — spawning one only when the pool is empty. While the VP lives, the
// carrier's stack is the VP's stack (Block parks the carrier goroutine on
// the shared gate channel, exactly as the old per-VP goroutine did); when
// the VP dies, the carrier hands its stack off by looping back to the pool
// and adopting the next VP the scheduler assigns it.
//
// Live goroutine count therefore scales with started-and-not-yet-dead VPs
// rather than world size, and a run of run-to-completion bodies executes on
// a single carrier per partition. Bodies that park forever still pin one
// goroutine each — the Program execution mode (program.go) is the escape
// hatch that removes the stack entirely.
type carrier struct {
	// gate is the handoff channel, owned by the carrier for its lifetime
	// and recycled across every VP it adopts; vp.gate aliases it while the
	// VP is assigned.
	gate chan yieldKind
	// v is the carrier's current assignment, written by the scheduler
	// before the resume send that starts the adoption; nil is the shutdown
	// token (drainCarriers).
	v *vp
}

// loop adopts VPs assigned by the scheduler until it receives the shutdown
// token. Each adoption is bracketed by the same gate protocol a resumed VP
// uses, so the scheduler cannot tell a fresh carrier from a recycled one.
func (cr *carrier) loop(e *Engine) {
	for {
		<-cr.gate // resume for a fresh assignment (or shutdown)
		v := cr.v
		if v == nil {
			cr.gate <- yieldDead
			return
		}
		v.state = vpRunning
		v.clock = vclock.Max(v.clock, v.wakeAt)
		cr.runBody(e, v)
		cr.gate <- yieldDead
	}
}

// runBody executes one VP body to termination, classifying the outcome and
// running the death hook in the deferred recover (finishDeath).
func (cr *carrier) runBody(e *Engine, v *vp) {
	defer func() {
		v.finishDeath(e, recover())
	}()
	if v.killed {
		panic(unwindSentinel{DeathKilled})
	}
	v.checkUnwind()
	e.body(&v.ctx)
}

// startVP gives a never-executed VP a carrier: the top of the partition's
// idle pool, or a freshly spawned goroutine when the pool is empty. Called
// by the scheduler immediately before the first resume send.
func (p *partition) startVP(v *vp) {
	var cr *carrier
	if n := len(p.idle) - 1; n >= 0 {
		cr = p.idle[n]
		p.idle[n] = nil
		p.idle = p.idle[:n]
		p.carrierReuses++
	} else {
		cr = &carrier{gate: make(chan yieldKind)}
		p.carriersSpawned++
		p.carriersLive++
		if p.carriersLive > p.carriersHi {
			p.carriersHi = p.carriersLive
		}
		go cr.loop(p.eng)
	}
	cr.v = v
	v.car = cr
	v.gate = cr.gate
}

// recycleCarrier detaches a dead VP's carrier and returns it to the idle
// pool for the next startVP.
func (p *partition) recycleCarrier(v *vp) {
	cr := v.car
	if cr == nil {
		return
	}
	v.car = nil
	v.gate = nil
	cr.v = nil
	p.idle = append(p.idle, cr)
	if len(p.idle) > p.carrierIdleHi {
		p.carrierIdleHi = len(p.idle)
	}
}

// drainCarriers retires every pooled carrier at engine teardown. The
// handshake is synchronous: when it returns, each carrier has acknowledged
// the shutdown token and is exiting, and the partition's live-carrier
// gauge reads zero. Every carrier is guaranteed to be in the pool here —
// VP death (including the teardown kills) always recycles the carrier.
func (p *partition) drainCarriers() {
	for i, cr := range p.idle {
		cr.gate <- gateResume
		if k := <-cr.gate; k != yieldDead {
			panic("core: drained carrier yielded without exiting")
		}
		p.carriersLive--
		p.idle[i] = nil
	}
	p.idle = p.idle[:0]
}
