// Package core implements the heart of the simulator: a deterministic
// discrete-event engine that executes simulated MPI processes (virtual
// processes, VPs) as cooperatively scheduled goroutines with per-VP virtual
// clocks.
//
// The execution model mirrors xSim's: each VP runs application code
// natively and yields to the simulator only when it blocks in a receive or
// performs a simulator-internal function; the simulator interleaves VPs by
// message receive timestamps. With Workers > 1, VPs are partitioned across
// worker goroutines (the analogue of xSim's native MPI processes) that
// synchronise through conservative safe windows bounded by the
// cross-partition lookahead, so parallel runs produce results identical to
// sequential ones.
//
// Process failures follow the paper's semantics: each VP carries a time of
// failure (initialised to "fail never"); a scheduled failure activates when
// the VP next updates its clock at or past that time, i.e. the scheduled
// time is the earliest failure time and the actual failure time is when the
// simulator regains control.
package core

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"

	"xsim/internal/check"
	"xsim/internal/vclock"
)

// ErrStopped is wrapped by the error Run returns when the run was cut
// short by Cancel: the engine stopped at a window boundary, tore down the
// surviving VPs, and the Result holds the partial state.
var ErrStopped = errors.New("core: run cancelled")

// ErrDeadlock is wrapped by the error Run returns when the simulation
// ended with live VPs blocked forever.
var ErrDeadlock = errors.New("core: deadlock detected")

// Config parameterises an Engine.
type Config struct {
	// NumVPs is the number of simulated MPI processes.
	NumVPs int
	// Workers is the number of partitions executing VPs. 1 (the default
	// when zero) is fully sequential; larger values run partitions
	// concurrently under conservative window synchronisation.
	Workers int
	// Lookahead is the minimum virtual delay of any cross-partition
	// event, required when Workers > 1. Higher layers must never emit a
	// cross-partition event closer than this to the emitting VP's clock;
	// the network model's minimum link latency is the natural choice.
	Lookahead vclock.Duration
	// StartClock initialises every VP's clock, supporting continuous
	// virtual time across simulated application restarts (the paper's
	// exit-time file).
	StartClock vclock.Time
	// Logf, when non-nil, receives the simulator's informational
	// messages (failure injections, aborts, shutdown statistics).
	Logf func(format string, args ...any)
	// Validate compiles the engine's internal invariant checks into the
	// run: per-VP clock monotonicity across resumes, monotonic partition
	// watermarks, wake ordering, and parallel-window horizon safety.
	// A violation panics with a *check.Violation naming the VP, event and
	// virtual time. When false the checks reduce to an untaken branch on
	// the hot paths (no allocation, no work).
	Validate bool
}

// Handler processes events of a registered kind in scheduler context.
type Handler func(*SchedCtx, *Event)

// Engine drives one simulation run.
type Engine struct {
	cfg Config
	// vps is the flat backing array of all VPs: one contiguous value slab
	// instead of a pointer-per-VP table, so a million-rank world costs one
	// allocation and no per-VP pointer chasing. Addresses into it are
	// stable (the slice is never grown), so &e.vps[r] may be retained.
	vps   []vp
	parts []*partition
	// handlers is indexed by Kind — a dense slice instead of a map keeps
	// the per-event dispatch to a bounds check and a load.
	handlers []Handler
	onDeath  func(*Ctx, DeathReason)
	ran      bool

	// body is the closure-mode VP body (Run); progFor the program-mode
	// factory (RunPrograms). Exactly one is set for a run.
	body    func(*Ctx)
	progFor func(*Ctx) Program

	// tree, winGate and reduced coordinate the parallel window protocol
	// (parallel.go): the combining tree folds per-partition next-item
	// times into the global (min1, argmin, min2) triple, winGate releases
	// the round once the root has it, and bar is the reusable barrier for
	// the cross-event exchange.
	tree    *reduceTree
	winGate releaseGate
	reduced minTriple
	bar     barrier

	// stop is the cooperative cancellation flag (Cancel). Partitions poll
	// it at window boundaries and every stopStride processed items, so a
	// cancelled run returns within one simulation window. stopRound is
	// the per-round consensus derived from it by partition 0 under the
	// round barrier, so every worker observes the same decision in the
	// same round.
	stop      atomic.Bool
	stopRound bool
}

// Cancel requests a cooperative stop of a running simulation. It is safe
// to call from any goroutine, before, during, or after Run; the engine
// observes it at the next window boundary (or every stopStride processed
// items within a window), tears down the surviving VPs, and Run returns
// an error wrapping ErrStopped alongside the partial Result.
func (e *Engine) Cancel() { e.stop.Store(true) }

// New validates cfg and builds an engine.
func New(cfg Config) (*Engine, error) {
	if cfg.NumVPs <= 0 {
		return nil, fmt.Errorf("core: NumVPs must be positive, got %d", cfg.NumVPs)
	}
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("core: Workers must be positive, got %d", cfg.Workers)
	}
	if cfg.Workers > cfg.NumVPs {
		cfg.Workers = cfg.NumVPs
	}
	if cfg.Workers > 1 && cfg.Lookahead <= 0 {
		return nil, errors.New("core: Workers > 1 requires a positive Lookahead")
	}
	if cfg.StartClock < 0 {
		return nil, fmt.Errorf("core: StartClock must be non-negative, got %v", cfg.StartClock)
	}
	eng := &Engine{
		cfg:   cfg,
		vps:   make([]vp, cfg.NumVPs),
		parts: make([]*partition, cfg.Workers),
	}
	// Contiguous block partitioning: neighbouring ranks usually
	// communicate most, so blocks minimise cross-partition traffic.
	per := cfg.NumVPs / cfg.Workers
	extra := cfg.NumVPs % cfg.Workers
	lo := 0
	for i := range eng.parts {
		hi := lo + per
		if i < extra {
			hi++
		}
		p := &partition{
			id:       i,
			eng:      eng,
			lo:       lo,
			hi:       hi,
			crossOut: make([][]*Event, cfg.Workers),
			inbox:    make([][]*Event, cfg.Workers),
			live:     hi - lo,
			validate: cfg.Validate,
		}
		p.sctx = SchedCtx{eng: eng, part: p}
		eng.parts[i] = p
		for r := lo; r < hi; r++ {
			v := &eng.vps[r]
			v.rank = r
			v.part = p
			v.clock = cfg.StartClock
			v.tof = vclock.Never
			v.abortAt = vclock.Never
			// No gate, no goroutine: a VP that has never executed is pure
			// data. Its first resume borrows a carrier (carrier.go).
			v.ctx = Ctx{eng: eng, vp: v}
		}
		lo = hi
	}
	return eng, nil
}

// vpAt returns the VP for a rank. The pointer is stable for the engine's
// lifetime.
func (e *Engine) vpAt(rank int) *vp { return &e.vps[rank] }

// RegisterHandler installs the handler for an event kind. Kinds below the
// engine-reserved range or duplicate registrations panic (programming
// errors).
func (e *Engine) RegisterHandler(kind Kind, h Handler) {
	if kind < reservedKinds {
		panic(fmt.Sprintf("core: kind %d is reserved by the engine", kind))
	}
	for len(e.handlers) <= int(kind) {
		e.handlers = append(e.handlers, nil)
	}
	if e.handlers[kind] != nil {
		panic(fmt.Sprintf("core: duplicate handler for kind %d", kind))
	}
	e.handlers[kind] = h
}

// OnDeath installs a hook invoked in VP context when a VP terminates for
// any reason except an engine-shutdown kill. The MPI layer uses it to drop
// queued messages and broadcast failure notifications.
func (e *Engine) OnDeath(hook func(*Ctx, DeathReason)) { e.onDeath = hook }

// ScheduleFailure schedules a process failure of rank at virtual time t
// (the earliest failure time). Must be called before Run.
func (e *Engine) ScheduleFailure(rank int, t vclock.Time) error {
	if e.ran {
		return errors.New("core: ScheduleFailure after Run")
	}
	if rank < 0 || rank >= len(e.vps) {
		return fmt.Errorf("core: failure rank %d out of range [0,%d)", rank, len(e.vps))
	}
	if t < e.cfg.StartClock {
		return fmt.Errorf("core: failure time %v precedes start clock %v", t, e.cfg.StartClock)
	}
	v := &e.vps[rank]
	if t < v.tof {
		v.tof = t
	}
	p := v.part
	p.eventQ.push(&Event{Time: t, Src: EngineSrc, Seq: p.nextSeq(), Kind: kindFailure, Target: rank})
	return nil
}

// Result summarises a simulation run.
type Result struct {
	// FinalClocks holds each VP's virtual clock at termination.
	FinalClocks []vclock.Time
	// Deaths holds each VP's termination reason.
	Deaths []DeathReason
	// Busy and Waited hold each VP's accumulated executing and blocked
	// virtual time (their sum is the VP's clock advance since start);
	// the power model turns them into energy.
	Busy   []vclock.Duration
	Waited []vclock.Duration
	// MinClock, MaxClock, AvgClock summarise the final clocks — the
	// per-process timing statistics xSim prints at shutdown. MaxClock is
	// the simulated time of the application exit, which the paper's
	// restart support persists to carry virtual time across runs.
	MinClock, MaxClock vclock.Time
	AvgClock           vclock.Time
	// Completed, Failed, Aborted count VPs by death reason.
	Completed, Failed, Aborted int
	// Deadlocked reports whether the run ended with live VPs blocked
	// forever; Blocked describes them.
	Deadlocked bool
	Blocked    []string
	// EventsProcessed and Resumes count the engine's processed work
	// items (events dispatched and VP resumes) — throughput telemetry.
	EventsProcessed uint64
	Resumes         uint64
}

// Run executes body once per VP and drives the simulation to completion.
// It returns an error if the configuration was already consumed, a VP
// panicked, or the simulation deadlocked (the deadlock Result is still
// returned for inspection).
//
// No goroutine is spawned per VP up front: every VP starts as pure data in
// the ready heap, and its first resume borrows a carrier goroutine from
// its partition's pool (carrier.go). Live goroutine count therefore scales
// with the VPs that have started and not yet died, not with world size.
func (e *Engine) Run(body func(*Ctx)) (*Result, error) {
	if e.ran {
		return nil, errors.New("core: engine can only run once")
	}
	e.ran = true
	e.body = body
	return e.run()
}

// RunPrograms executes one Program per VP and drives the simulation to
// completion. progFor is called once per VP, in VP context, at the VP's
// first execution. Program VPs never own a goroutine or a stack: a parked
// program is pure data, so this is the execution mode that scales to
// millions of VPs (see Program).
func (e *Engine) RunPrograms(progFor func(*Ctx) Program) (*Result, error) {
	if e.ran {
		return nil, errors.New("core: engine can only run once")
	}
	e.ran = true
	e.progFor = progFor
	return e.run()
}

// run is the shared driver behind Run and RunPrograms.
func (e *Engine) run() (*Result, error) {
	for i := range e.vps {
		v := &e.vps[i]
		v.wakeAt = e.cfg.StartClock
		v.part.ready.push(readyEntry{at: e.cfg.StartClock, rank: v.rank})
	}

	if len(e.parts) == 1 {
		e.parts[0].processWindow(vclock.Never)
	} else {
		e.runParallel()
	}

	// Termination, cancellation, or deadlock: any VP still alive either
	// was cut short by Cancel or is blocked forever.
	cancelled := e.stop.Load()
	res := &Result{
		FinalClocks: make([]vclock.Time, len(e.vps)),
		Deaths:      make([]DeathReason, len(e.vps)),
		Busy:        make([]vclock.Duration, len(e.vps)),
		Waited:      make([]vclock.Duration, len(e.vps)),
	}
	alive := 0
	for _, p := range e.parts {
		if p.live > 0 {
			alive += p.live
			if !cancelled {
				res.Deadlocked = true
				res.Blocked = append(res.Blocked, p.blockedReport()...)
			}
		}
		res.EventsProcessed += p.events
		res.Resumes += p.resumes
	}
	// Tear down surviving VPs, then retire the idle carrier goroutines so
	// nothing leaks. Both are synchronous: when run returns, every VP is
	// dead and every carrier has been handed its shutdown token.
	for _, p := range e.parts {
		for r := p.lo; r < p.hi; r++ {
			p.kill(&e.vps[r])
		}
		p.drainCarriers()
	}

	var firstPanic string
	var sum vclock.Time
	res.MinClock = vclock.Never
	for i := range e.vps {
		v := &e.vps[i]
		res.FinalClocks[i] = v.clock
		res.Deaths[i] = v.death
		res.Busy[i] = v.busy
		res.Waited[i] = v.waited
		switch v.death {
		case DeathCompleted:
			res.Completed++
		case DeathFailed:
			res.Failed++
		case DeathAborted:
			res.Aborted++
		case DeathPanicked:
			if firstPanic == "" {
				firstPanic = v.panicMsg
			}
		}
		if v.clock < res.MinClock {
			res.MinClock = v.clock
		}
		if v.clock > res.MaxClock {
			res.MaxClock = v.clock
		}
		sum += v.clock
	}
	res.AvgClock = sum / vclock.Time(len(e.vps))
	e.logf("[sim] shutdown: %d completed, %d failed, %d aborted; process times min %v max %v avg %v",
		res.Completed, res.Failed, res.Aborted, res.MinClock, res.MaxClock, res.AvgClock)

	if firstPanic != "" {
		return res, fmt.Errorf("core: %s", firstPanic)
	}
	if cancelled && alive > 0 {
		return res, fmt.Errorf("%w with %d VPs still alive at %v", ErrStopped, alive, res.MaxClock)
	}
	if res.Deadlocked {
		return res, fmt.Errorf("%w with %d blocked VPs:\n%s",
			ErrDeadlock, len(res.Blocked), strings.Join(res.Blocked, "\n"))
	}
	return res, nil
}

// route delivers an event emitted at senderClock by from's current VP or
// handler to the partition owning its target.
func (e *Engine) route(from *partition, senderClock vclock.Time, ev *Event) {
	if ev.Target < 0 || ev.Target >= len(e.vps) {
		panic(fmt.Sprintf("core: event target %d out of range", ev.Target))
	}
	e.routeToPartition(from, senderClock, e.vps[ev.Target].part, ev)
}

// progMode reports whether this run executes Programs (RunPrograms) rather
// than goroutine bodies.
func (e *Engine) progMode() bool {
	return e.progFor != nil
}

// routeToPartition delivers an event to an explicit partition, enforcing
// the lookahead constraint for cross-partition delivery.
func (e *Engine) routeToPartition(from *partition, senderClock vclock.Time, to *partition, ev *Event) {
	if to == from {
		from.eventQ.push(ev)
		return
	}
	if ev.Time < senderClock.Add(e.cfg.Lookahead) {
		check.Failf("lookahead", ev.Target, ev.Time, eventDesc(ev),
			"cross-partition event from partition %d to %d violates lookahead %v from sender clock %v",
			from.id, to.id, e.cfg.Lookahead, senderClock)
	}
	from.crossEvents++
	from.crossOut[to.id] = append(from.crossOut[to.id], ev)
}

// NumVPs returns the number of simulated processes.
func (e *Engine) NumVPs() int { return len(e.vps) }

// Lookahead returns the configured cross-partition lookahead.
func (e *Engine) Lookahead() vclock.Duration { return e.cfg.Lookahead }

// Workers returns the number of partitions.
func (e *Engine) Workers() int { return len(e.parts) }

// ValidateEnabled reports whether the engine's invariant checks are
// compiled in; higher layers (MPI) inherit their own Validate mode from
// it.
func (e *Engine) ValidateEnabled() bool { return e.cfg.Validate }

func (e *Engine) logf(format string, args ...any) {
	if e.cfg.Logf != nil {
		e.cfg.Logf(format, args...)
	}
}
