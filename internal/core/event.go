package core

import (
	"fmt"

	"xsim/internal/vclock"
)

// Kind identifies the handler that processes an event. Kinds below
// reservedKinds are reserved by the engine; higher layers (the simulated MPI
// layer) register their own kinds.
type Kind int

// Engine-internal event kinds.
const (
	// kindFailure activates a scheduled process failure for a blocked VP.
	kindFailure Kind = iota
	// kindTimer wakes a VP parked in Ctx.Sleep.
	kindTimer
	// reservedKinds is the first kind available to higher layers.
	reservedKinds
)

// FirstUserKind is the first event kind available to higher layers;
// register handlers for FirstUserKind+i.
const FirstUserKind = reservedKinds

// EngineSrc is the Src value of events emitted by the engine itself or
// scheduled before the simulation starts (e.g. failure injections).
const EngineSrc = -1

// BroadcastTarget addresses an event to a partition as a whole rather than
// to a single VP; the handler may then touch every VP local to that
// partition. Use Ctx.EmitBroadcast to deliver one copy per partition.
const BroadcastTarget = -1

// Event is a timestamped occurrence delivered to the partition owning its
// target VP. Events are processed in deterministic global virtual-time
// order; the ordering key is (Time, Src, Seq), which is unique because each
// source numbers its events sequentially.
//
// Events are pooled: the engine recycles an event into the dispatching
// partition's free list as soon as its handler returns. Handlers must not
// retain the *Event pointer (or aliases of it) past the handler call;
// retaining the Payload value is safe, since payloads are never recycled.
type Event struct {
	// Time is the virtual time at which the event takes effect.
	Time vclock.Time
	// Src is the rank of the VP that emitted the event, or EngineSrc.
	Src int
	// Seq is the per-source sequence number, assigned by the engine.
	Seq uint64
	// Kind selects the registered handler.
	Kind Kind
	// Target is the rank of the VP the event concerns, or BroadcastTarget
	// for partition-level events.
	Target int
	// Payload carries handler-specific data.
	Payload any

	// stamp carries the engine's internal timer generation (Ctx.Sleep)
	// without boxing it through Payload.
	stamp uint64
}

// eventDesc renders an event for invariant-violation dumps. Only called
// on failure paths — never on the steady-state event path.
func eventDesc(ev *Event) string {
	return fmt.Sprintf("kind=%d time=%v src=%d seq=%d target=%d", ev.Kind, ev.Time, ev.Src, ev.Seq, ev.Target)
}

// before reports whether e is ordered before o under the deterministic
// (Time, Src, Seq) key.
func (e *Event) before(o *Event) bool {
	if e.Time != o.Time {
		return e.Time < o.Time
	}
	if e.Src != o.Src {
		return e.Src < o.Src
	}
	return e.Seq < o.Seq
}

// eventHeap is a hand-rolled 4-ary min-heap of events ordered by the
// deterministic key. A 4-ary layout halves the tree depth of a binary heap
// and keeps the four children of a node on one cache line; compared to
// container/heap it avoids the interface{} indirection and per-push
// boxing, so push and pop inline into the scheduler loop.
type eventHeap struct {
	a []*Event
	// hi is the high-water depth, for Engine.Metrics.
	hi int
}

// len returns the number of queued events.
func (h *eventHeap) len() int { return len(h.a) }

// push inserts an event.
func (h *eventHeap) push(ev *Event) {
	a := append(h.a, ev)
	if len(a) > h.hi {
		h.hi = len(a)
	}
	i := len(a) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !ev.before(a[parent]) {
			break
		}
		a[i] = a[parent]
		i = parent
	}
	a[i] = ev
	h.a = a
}

// pop removes and returns the earliest event; it panics on an empty heap.
// The vacated tail slot is nilled so the heap's backing array never retains
// a reference to a popped (and possibly recycled) event.
func (h *eventHeap) pop() *Event {
	a := h.a
	n := len(a) - 1
	root := a[0]
	moved := a[n]
	a[n] = nil
	a = a[:n]
	if n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			end := c + 4
			if end > n {
				end = n
			}
			min := c
			for j := c + 1; j < end; j++ {
				if a[j].before(a[min]) {
					min = j
				}
			}
			if !a[min].before(moved) {
				break
			}
			a[i] = a[min]
			i = min
		}
		a[i] = moved
	}
	h.a = a
	return root
}

// peek returns the earliest event without removing it, or nil if empty.
func (h *eventHeap) peek() *Event {
	if len(h.a) == 0 {
		return nil
	}
	return h.a[0]
}

// readyEntry is a VP that can resume execution at a known virtual time.
type readyEntry struct {
	at   vclock.Time
	rank int
}

// entryBefore reports whether x is ordered before y under the (wake time,
// rank) key, which is unique because a VP is ready at most once.
func entryBefore(x, y readyEntry) bool {
	if x.at != y.at {
		return x.at < y.at
	}
	return x.rank < y.rank
}

// readyHeap is a hand-rolled 4-ary min-heap of resumable VPs ordered by
// (wake time, rank). Entries are plain values, so unlike the old
// container/heap version nothing is boxed on push.
type readyHeap struct {
	a []readyEntry
	// hi is the high-water depth, for Engine.Metrics.
	hi int
}

// len returns the number of ready VPs.
func (h *readyHeap) len() int { return len(h.a) }

// push inserts an entry.
func (h *readyHeap) push(e readyEntry) {
	a := append(h.a, e)
	if len(a) > h.hi {
		h.hi = len(a)
	}
	i := len(a) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !entryBefore(e, a[parent]) {
			break
		}
		a[i] = a[parent]
		i = parent
	}
	a[i] = e
	h.a = a
}

// pop removes and returns the earliest entry; it panics on an empty heap.
// The vacated tail slot is zeroed, mirroring eventHeap.pop, so the backing
// array holds no stale entries.
func (h *readyHeap) pop() readyEntry {
	a := h.a
	n := len(a) - 1
	root := a[0]
	moved := a[n]
	a[n] = readyEntry{}
	a = a[:n]
	if n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			end := c + 4
			if end > n {
				end = n
			}
			min := c
			for j := c + 1; j < end; j++ {
				if entryBefore(a[j], a[min]) {
					min = j
				}
			}
			if !entryBefore(a[min], moved) {
				break
			}
			a[i] = a[min]
			i = min
		}
		a[i] = moved
	}
	h.a = a
	return root
}

// peek returns the earliest entry without removing it.
func (h *readyHeap) peek() (readyEntry, bool) {
	if len(h.a) == 0 {
		return readyEntry{}, false
	}
	return h.a[0], true
}
