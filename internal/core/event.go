package core

import (
	"container/heap"

	"xsim/internal/vclock"
)

// Kind identifies the handler that processes an event. Kinds below
// reservedKinds are reserved by the engine; higher layers (the simulated MPI
// layer) register their own kinds.
type Kind int

// Engine-internal event kinds.
const (
	// kindFailure activates a scheduled process failure for a blocked VP.
	kindFailure Kind = iota
	// kindTimer wakes a VP parked in Ctx.Sleep.
	kindTimer
	// reservedKinds is the first kind available to higher layers.
	reservedKinds
)

// FirstUserKind is the first event kind available to higher layers;
// register handlers for FirstUserKind+i.
const FirstUserKind = reservedKinds

// EngineSrc is the Src value of events emitted by the engine itself or
// scheduled before the simulation starts (e.g. failure injections).
const EngineSrc = -1

// BroadcastTarget addresses an event to a partition as a whole rather than
// to a single VP; the handler may then touch every VP local to that
// partition. Use Engine.EmitBroadcast to deliver one copy per partition.
const BroadcastTarget = -1

// Event is a timestamped occurrence delivered to the partition owning its
// target VP. Events are processed in deterministic global virtual-time
// order; the ordering key is (Time, Src, Seq), which is unique because each
// source numbers its events sequentially.
type Event struct {
	// Time is the virtual time at which the event takes effect.
	Time vclock.Time
	// Src is the rank of the VP that emitted the event, or EngineSrc.
	Src int
	// Seq is the per-source sequence number, assigned by the engine.
	Seq uint64
	// Kind selects the registered handler.
	Kind Kind
	// Target is the rank of the VP the event concerns, or BroadcastTarget
	// for partition-level events.
	Target int
	// Payload carries handler-specific data.
	Payload any
}

// before reports whether e is ordered before o under the deterministic
// (Time, Src, Seq) key.
func (e *Event) before(o *Event) bool {
	if e.Time != o.Time {
		return e.Time < o.Time
	}
	if e.Src != o.Src {
		return e.Src < o.Src
	}
	return e.Seq < o.Seq
}

// eventHeap is a min-heap of events ordered by the deterministic key.
type eventHeap []*Event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].before(h[j]) }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// push inserts an event.
func (h *eventHeap) push(ev *Event) { heap.Push(h, ev) }

// pop removes and returns the earliest event; it panics on an empty heap.
func (h *eventHeap) pop() *Event { return heap.Pop(h).(*Event) }

// peek returns the earliest event without removing it, or nil if empty.
func (h *eventHeap) peek() *Event {
	if len(*h) == 0 {
		return nil
	}
	return (*h)[0]
}

// readyEntry is a VP that can resume execution at a known virtual time.
type readyEntry struct {
	at   vclock.Time
	rank int
}

// readyHeap is a min-heap of resumable VPs ordered by (wake time, rank),
// which is unique because a VP is ready at most once.
type readyHeap []readyEntry

func (h readyHeap) Len() int { return len(h) }
func (h readyHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].rank < h[j].rank
}
func (h readyHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *readyHeap) Push(x interface{}) { *h = append(*h, x.(readyEntry)) }
func (h *readyHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

func (h *readyHeap) push(e readyEntry) { heap.Push(h, e) }
func (h *readyHeap) pop() readyEntry   { return heap.Pop(h).(readyEntry) }
func (h *readyHeap) peek() (readyEntry, bool) {
	if len(*h) == 0 {
		return readyEntry{}, false
	}
	return (*h)[0], true
}
