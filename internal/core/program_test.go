package core

import (
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"xsim/internal/vclock"
)

// pingProg is a two-phase program: rank 0 elapses and pings rank 1; rank 1
// parks until the ping arrives, then records the wake payload and clock.
type pingProg struct {
	t       *testing.T
	phase   int
	got     *any
	gotTime *vclock.Time
}

func (p *pingProg) Step(c *Ctx, wake any) (any, bool) {
	switch c.Rank() {
	case 0:
		c.Elapse(vclock.Second)
		c.Emit(Event{Time: c.Now().Add(vclock.Millisecond), Kind: kindPing, Target: 1, Payload: "hello"})
		return nil, true
	default:
		if p.phase == 0 {
			p.phase = 1
			return "waiting for ping", false
		}
		*p.got = wake
		*p.gotTime = c.Now()
		return nil, true
	}
}

func TestProgramPingMatchesClosure(t *testing.T) {
	eng := newTestEngine(t, Config{NumVPs: 2})
	registerPing(eng)
	var got any
	var gotClock vclock.Time
	res, err := eng.RunPrograms(func(c *Ctx) Program {
		return &pingProg{t: t, got: &got, gotTime: &gotClock}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != "hello" {
		t.Fatalf("payload = %v", got)
	}
	if want := vclock.TimeFromSeconds(1.001); gotClock != want {
		t.Fatalf("wake clock = %v, want %v", gotClock, want)
	}
	if res.Completed != 2 {
		t.Fatalf("completed = %d", res.Completed)
	}
	m := eng.Metrics()
	if m.ProgramSteps == 0 {
		t.Fatal("ProgramSteps = 0 for a program run")
	}
	if m.CarriersSpawned != 0 {
		t.Fatalf("CarriersSpawned = %d for a program run (programs own no goroutine)", m.CarriersSpawned)
	}
}

// elapseProg elapses rank+1 seconds and completes — the program analogue
// of TestIndependentClocks' closure body.
type elapseProg struct{}

func (elapseProg) Step(c *Ctx, wake any) (any, bool) {
	c.Elapse(vclock.Duration(c.Rank()+1) * vclock.Second)
	return nil, true
}

func TestProgramClocksMatchClosureRun(t *testing.T) {
	body := func(c *Ctx) { c.Elapse(vclock.Duration(c.Rank()+1) * vclock.Second) }
	closure := newTestEngine(t, Config{NumVPs: 8})
	cres, err := closure.Run(body)
	if err != nil {
		t.Fatal(err)
	}
	prog := newTestEngine(t, Config{NumVPs: 8})
	pres, err := prog.RunPrograms(func(*Ctx) Program { return elapseProg{} })
	if err != nil {
		t.Fatal(err)
	}
	for r := range cres.FinalClocks {
		if cres.FinalClocks[r] != pres.FinalClocks[r] || cres.Deaths[r] != pres.Deaths[r] {
			t.Fatalf("rank %d: closure (%v, %v) vs program (%v, %v)",
				r, cres.FinalClocks[r], cres.Deaths[r], pres.FinalClocks[r], pres.Deaths[r])
		}
	}
}

// parkForever parks on the first step and never expects a resume.
type parkForever struct{ reason string }

func (p *parkForever) Step(c *Ctx, wake any) (any, bool) {
	return p.reason, false
}

func TestProgramDeadlockReportsParkedVPs(t *testing.T) {
	eng := newTestEngine(t, Config{NumVPs: 3})
	_, err := eng.RunPrograms(func(c *Ctx) Program {
		return &parkForever{reason: "waiting for a message that never comes"}
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	for _, want := range []string{"rank 0", "rank 2", "waiting for a message that never comes"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("deadlock report missing %q:\n%s", want, err)
		}
	}
}

// blockingProg illegally calls Ctx.Block from a program step.
type blockingProg struct{}

func (blockingProg) Step(c *Ctx, wake any) (any, bool) {
	c.Block("illegal")
	return nil, true
}

func TestProgramBlockPanicsWithDiagnostic(t *testing.T) {
	eng := newTestEngine(t, Config{NumVPs: 1})
	_, err := eng.RunPrograms(func(*Ctx) Program { return blockingProg{} })
	if err == nil || !strings.Contains(err.Error(), "called Block from a program VP") {
		t.Fatalf("err = %v, want the program-Block diagnostic", err)
	}
}

// failProg fails rank 0 immediately and completes everyone else.
type failProg struct{}

func (failProg) Step(c *Ctx, wake any) (any, bool) {
	if c.Rank() == 0 {
		c.FailNow()
	}
	return nil, true
}

func TestProgramDeathClassification(t *testing.T) {
	eng := newTestEngine(t, Config{NumVPs: 2})
	var deaths []DeathReason
	eng.OnDeath(func(c *Ctx, r DeathReason) { deaths = append(deaths, r) })
	res, err := eng.RunPrograms(func(*Ctx) Program { return failProg{} })
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 || res.Completed != 1 {
		t.Fatalf("failed/completed = %d/%d", res.Failed, res.Completed)
	}
	if len(deaths) != 2 {
		t.Fatalf("death hook ran %d times", len(deaths))
	}
}

func TestProgramCancelLeavesNoLiveState(t *testing.T) {
	eng := newTestEngine(t, Config{NumVPs: 16})
	eng.Cancel()
	_, err := eng.RunPrograms(func(*Ctx) Program {
		return &parkForever{reason: "parked at cancel"}
	})
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if m := eng.Metrics(); m.CarriersLive != 0 {
		t.Fatalf("CarriersLive = %d after teardown", m.CarriersLive)
	}
}

func TestCarrierPoolRecyclesAcrossVPs(t *testing.T) {
	const n = 64
	eng := newTestEngine(t, Config{NumVPs: n})
	res, err := eng.Run(func(c *Ctx) { c.Elapse(vclock.Second) })
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != n {
		t.Fatalf("completed = %d", res.Completed)
	}
	m := eng.Metrics()
	// Run-to-completion bodies execute one at a time per partition, each
	// dying before the next starts: one carrier serves the whole world.
	if m.CarriersSpawned != 1 {
		t.Fatalf("CarriersSpawned = %d, want 1", m.CarriersSpawned)
	}
	if m.CarrierReuses != n-1 {
		t.Fatalf("CarrierReuses = %d, want %d", m.CarrierReuses, n-1)
	}
	if m.CarriersHighWater != 1 {
		t.Fatalf("CarriersHighWater = %d, want 1", m.CarriersHighWater)
	}
	if m.CarriersLive != 0 {
		t.Fatalf("CarriersLive = %d after teardown", m.CarriersLive)
	}
}

func TestCancelMidWindowLeavesNoCarriers(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		eng := newTestEngine(t, Config{NumVPs: 8, Workers: workers, Lookahead: vclock.Millisecond})
		registerPing(eng)
		started := make(chan struct{}, 8)
		_, err := eng.Run(func(c *Ctx) {
			select {
			case started <- struct{}{}:
				eng.Cancel()
			default:
			}
			c.Block("cancelled mid-window")
		})
		if !errors.Is(err, ErrStopped) {
			t.Fatalf("workers=%d: err = %v, want ErrStopped", workers, err)
		}
		if m := eng.Metrics(); m.CarriersLive != 0 {
			t.Fatalf("workers=%d: CarriersLive = %d after teardown", workers, m.CarriersLive)
		}
	}
}

// TestReduceTreeMatchesFlatScan drives the combining-tree reduction with
// concurrent workers across several rounds and widths, checking every
// worker receives exactly the triple a flat O(P) scan would compute.
func TestReduceTreeMatchesFlatScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 16, 33} {
		e := &Engine{tree: buildReduceTree(n)}
		e.winGate.init()
		for round := 0; round < 50; round++ {
			vals := make([]vclock.Time, n)
			for i := range vals {
				if rng.Intn(4) == 0 {
					vals[i] = vclock.Never
				} else {
					vals[i] = vclock.Time(rng.Intn(8)) // dense: force ties
				}
			}
			// Flat reference: (min1, argmin1, min2) with lowest-index
			// argmin on ties is not guaranteed by the tree, so compare the
			// derived quantities every worker actually uses.
			flatOther := func(id int) vclock.Time {
				m := vclock.Never
				for j, v := range vals {
					if j != id && v < m {
						m = v
					}
				}
				return m
			}
			flatMin := vclock.Never
			for _, v := range vals {
				if v < flatMin {
					flatMin = v
				}
			}
			got := make([]minTriple, n)
			var wg sync.WaitGroup
			wg.Add(n)
			for i := 0; i < n; i++ {
				go func(id int) {
					defer wg.Done()
					got[id] = e.reduce(id, vals[id])
				}(i)
			}
			wg.Wait()
			for id, g := range got {
				if g.min1 != flatMin {
					t.Fatalf("n=%d round=%d worker %d: min1 = %v, want %v (vals %v)", n, round, id, g.min1, flatMin, vals)
				}
				other := g.min1
				if g.arg1 == id {
					other = g.min2
				}
				if other != flatOther(id) {
					t.Fatalf("n=%d round=%d worker %d: derived otherMin = %v, want %v (triple %+v, vals %v)",
						n, round, id, other, flatOther(id), g, vals)
				}
			}
		}
	}
}
