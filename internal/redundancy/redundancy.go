// Package redundancy implements redMPI-style dual modular redundancy on
// top of the simulated MPI layer — the paper's related-work system for
// online detection of soft errors (§II-C): each logical rank is backed by
// two replicas; messages flow replica-to-replica, and receivers compare
// message digests with their partner replica, so a single bit flip in
// either replica's data is detected the first time it crosses the network.
// With detection disabled the replicas run isolated, which is how redMPI
// doubles as a fault-injection study tool (comparing a corrupted replica's
// trajectory against the clean one).
package redundancy

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"

	"xsim/internal/mpi"
)

// SDCError reports a detected silent data corruption: the two replicas of
// a sender disagreed on a message's contents.
type SDCError struct {
	// LogicalSrc and Tag identify the corrupted message.
	LogicalSrc, Tag int
	// Replica is the receiving replica that detected the mismatch.
	Replica int
}

// Error implements error.
func (e *SDCError) Error() string {
	return fmt.Sprintf("redundancy: silent data corruption detected in message from logical rank %d tag %d (replica %d)",
		e.LogicalSrc, e.Tag, e.Replica)
}

// Comm is a dual-redundant communicator: a logical communicator of size
// Size() whose every rank is two physical replicas. Replica 0 of logical
// rank r is world rank r; replica 1 is world rank r + Size().
type Comm struct {
	world   *mpi.Comm
	n       int // logical size
	logical int // this process's logical rank
	replica int // 0 or 1
	// Detect enables online comparison of message digests between
	// replica pairs (redMPI's detection mode). When false, replicas run
	// isolated (redMPI's fault-injection mode).
	Detect bool
}

// Tags: application tags occupy the non-negative space; the digest
// exchange uses a distinct tag derived from the application tag so
// comparisons never collide with payload traffic.
const digestTagBase = 1 << 20

// Wrap builds the redundant communicator for this process. The world size
// must be even: the upper half mirrors the lower half.
func Wrap(env *mpi.Env) (*Comm, error) {
	n := env.Size()
	if n%2 != 0 {
		return nil, fmt.Errorf("redundancy: world size %d must be even for dual redundancy", n)
	}
	half := n / 2
	c := &Comm{world: env.World(), n: half, Detect: true}
	if env.Rank() < half {
		c.logical = env.Rank()
		c.replica = 0
	} else {
		c.logical = env.Rank() - half
		c.replica = 1
	}
	return c, nil
}

// Size returns the logical communicator size.
func (c *Comm) Size() int { return c.n }

// Logical returns this process's logical rank.
func (c *Comm) Logical() int { return c.logical }

// Replica returns this process's replica index (0 or 1).
func (c *Comm) Replica() int { return c.replica }

// Partner returns the world rank of this process's partner replica.
func (c *Comm) Partner() int {
	if c.replica == 0 {
		return c.logical + c.n
	}
	return c.logical
}

// worldRank translates a logical rank to the world rank of the same
// replica.
func (c *Comm) worldRank(logical int) int {
	if c.replica == 0 {
		return logical
	}
	return logical + c.n
}

// digest hashes a payload for the replica comparison.
func digest(data []byte) uint64 {
	h := fnv.New64a()
	h.Write(data)
	return h.Sum64()
}

// Send sends data to the same replica of the logical destination. Both
// replicas of the logical sender perform the send with their own (ideally
// identical) data; divergence is what detection catches at the receiver.
func (c *Comm) Send(dst, tag int, data []byte) error {
	if dst < 0 || dst >= c.n {
		return fmt.Errorf("redundancy: destination %d out of range [0,%d)", dst, c.n)
	}
	return c.world.Send(c.worldRank(dst), tag, data)
}

// Recv receives from the same replica of the logical source. With Detect
// enabled, the two receiving replicas then exchange digests of what they
// received and compare: a mismatch means one replica of the sender
// produced corrupted data, and both receivers report SDCError — redMPI's
// online detection. The replicas otherwise continue unharmed (detection
// without correction, the dual-redundancy limit redMPI documents; triple
// redundancy would vote).
func (c *Comm) Recv(src, tag int) (*mpi.Message, error) {
	if src < 0 || src >= c.n {
		return nil, fmt.Errorf("redundancy: source %d out of range [0,%d)", src, c.n)
	}
	msg, err := c.world.Recv(c.worldRank(src), tag)
	if err != nil {
		return nil, err
	}
	if !c.Detect {
		return msg, nil
	}
	mine := digest(msg.Data)
	buf := binary.LittleEndian.AppendUint64(nil, mine)
	dtag := digestTagBase + tag
	var theirsMsg *mpi.Message
	// Deterministic ordering between the partners: replica 0 sends its
	// digest first, replica 1 receives first.
	if c.replica == 0 {
		if err := c.world.Send(c.Partner(), dtag, buf); err != nil {
			return nil, err
		}
		theirsMsg, err = c.world.Recv(c.Partner(), dtag)
	} else {
		theirsMsg, err = c.world.Recv(c.Partner(), dtag)
		if err == nil {
			err = c.world.Send(c.Partner(), dtag, buf)
		}
	}
	if err != nil {
		return nil, err
	}
	theirs := binary.LittleEndian.Uint64(theirsMsg.Data)
	if theirs != mine {
		return msg, &SDCError{LogicalSrc: src, Tag: tag, Replica: c.replica}
	}
	return msg, nil
}

// Allreduce folds contributions across the logical communicator within
// this replica sphere (linear: logical rank 0 gathers and broadcasts).
// With Detect enabled every hop is digest-compared with the partner.
// Detection does not stop the collective — like redMPI, corruption is
// reported while execution continues — so the result is returned together
// with the first SDCError observed, if any.
func (c *Comm) Allreduce(contrib []float64, op mpi.ReduceOp) ([]float64, error) {
	const tag = 1<<19 + 1
	var sdc error
	recv := func(src, tag int) (*mpi.Message, error) {
		msg, err := c.Recv(src, tag)
		if err != nil {
			var e *SDCError
			if errors.As(err, &e) && msg != nil {
				if sdc == nil {
					sdc = err
				}
				return msg, nil
			}
			return nil, err
		}
		return msg, nil
	}
	if c.logical == 0 {
		acc := append([]float64(nil), contrib...)
		for r := 1; r < c.n; r++ {
			msg, err := recv(r, tag)
			if err != nil {
				return nil, err
			}
			vals, err := decodeF64s(msg.Data, len(contrib))
			if err != nil {
				return nil, err
			}
			op(acc, vals)
		}
		for r := 1; r < c.n; r++ {
			if err := c.Send(r, tag+1, encodeF64s(acc)); err != nil {
				return nil, err
			}
		}
		return acc, sdc
	}
	if err := c.Send(0, tag, encodeF64s(contrib)); err != nil {
		return nil, err
	}
	msg, err := recv(0, tag+1)
	if err != nil {
		return nil, err
	}
	out, err := decodeF64s(msg.Data, len(contrib))
	if err != nil {
		return nil, err
	}
	return out, sdc
}

// encodeF64s/decodeF64s mirror the MPI layer's helpers (kept local so the
// package only depends on the public MPI surface).
func encodeF64s(vals []float64) []byte {
	buf := make([]byte, 0, 8*len(vals))
	for _, v := range vals {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

func decodeF64s(buf []byte, n int) ([]float64, error) {
	if len(buf) != 8*n {
		return nil, fmt.Errorf("redundancy: payload is %d bytes, want %d", len(buf), 8*n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out, nil
}
