// Package redundancy implements redMPI-style modular redundancy on top of
// the simulated MPI layer — the paper's related-work system for online
// detection of soft errors (§II-C) — generalised to r-way replication with
// failover. Each logical rank is backed by r physical replicas (replica k
// of logical rank L is world rank L + k·n for logical size n), and two
// protocols govern how messages cross the replica groups:
//
//   - Parallel (the redMPI classic, and the default): payloads flow within
//     a replica sphere (replica k talks only to replica k) and the
//     receiving replicas compare message digests across spheres, so a
//     single bit flip in any replica's data is detected the first time it
//     crosses the network. With r ≥ 3 the digest vote also attributes the
//     corruption to the outvoted replica. A dead partner degrades
//     detection (its digests are skipped, online, without deadlocking),
//     but payload delivery inside its sphere dies with it.
//   - Mirror: every live sender replica sends a copy to every live
//     receiver replica (r² copies per logical message), and the receiver
//     digests the copies it got and majority-votes. This is the failover
//     protocol: a logical rank stays alive as long as one of its replicas
//     lives, because every surviving receiver still gets a copy from some
//     surviving sender, and at r ≥ 3 the vote returns a majority copy —
//     detection with correction.
//
// With detection disabled the Parallel protocol runs the replica spheres
// fully isolated, which is how redMPI doubles as a fault-injection study
// tool (comparing a corrupted replica's trajectory against the clean one).
//
// Reserved tag space: application tags occupy [0, UserTagLimit). The
// layer reserves [UserTagLimit, digestTagBase) for its own collectives and
// [digestTagBase, ∞) for digest exchange (the digest companion of tag t
// travels on digestTagBase+t). Send and Recv reject tags outside the
// application space with *TagRangeError — tags that collided with the
// digest range used to corrupt the comparison stream silently.
package redundancy

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"

	"xsim/internal/mpi"
)

// SDCError reports a detected silent data corruption: the replicas of a
// sender disagreed on a message's contents.
type SDCError struct {
	// LogicalSrc and Tag identify the corrupted message.
	LogicalSrc, Tag int
	// Replica is the receiving replica that detected the mismatch.
	Replica int
	// Corrupt lists the replica indices outvoted by a strict digest
	// majority (r ≥ 3 voting); nil when no strict majority exists — dual
	// redundancy detects but cannot attribute.
	Corrupt []int
}

// Error implements error.
func (e *SDCError) Error() string {
	return fmt.Sprintf("redundancy: silent data corruption detected in message from logical rank %d tag %d (replica %d)",
		e.LogicalSrc, e.Tag, e.Replica)
}

// TagRangeError reports an application tag outside [0, UserTagLimit); the
// space above is reserved for the layer's collective and digest traffic.
type TagRangeError struct {
	// Tag is the rejected tag.
	Tag int
}

// Error implements error.
func (e *TagRangeError) Error() string {
	return fmt.Sprintf("redundancy: tag %d outside the application tag space [0, %d): [%d, %d) is reserved for the layer's collectives and tags at and above %d for digest exchange",
		e.Tag, UserTagLimit, UserTagLimit, digestTagBase, digestTagBase)
}

// ReplicaFailedError reports that every replica of a logical rank has
// failed — the point past which failover cannot keep the rank alive.
type ReplicaFailedError struct {
	// Logical is the exhausted logical rank.
	Logical int
	// Op names the operation that hit the exhaustion ("send" or "recv").
	Op string
}

// Error implements error.
func (e *ReplicaFailedError) Error() string {
	return fmt.Sprintf("redundancy: %s: every replica of logical rank %d has failed", e.Op, e.Logical)
}

// Protocol selects how messages cross the replica groups.
type Protocol int

const (
	// Parallel is redMPI's message-efficient protocol: payloads stay
	// within a replica sphere and only digests cross spheres. Detection
	// without failover.
	Parallel Protocol = iota
	// Mirror sends every payload from every live sender replica to every
	// live receiver replica, digesting and voting at the receiver.
	// Failover (and correction at r ≥ 3) at r× the message volume.
	Mirror
)

// String names the protocol.
func (p Protocol) String() string {
	switch p {
	case Parallel:
		return "parallel"
	case Mirror:
		return "mirror"
	}
	return fmt.Sprintf("protocol(%d)", int(p))
}

// Tag-space layout. Application tags occupy [0, UserTagLimit); everything
// above is reserved so layer-internal traffic can never collide with
// payload traffic.
const (
	// UserTagLimit bounds the application tag space accepted by Send and
	// Recv.
	UserTagLimit = 1 << 19
	// digestTagBase maps a payload tag t (application or collective) to
	// its digest-exchange companion digestTagBase+t.
	digestTagBase = 1 << 20
	// collectiveTag is the base tag of the layer's own collectives; it
	// sits in the reserved [UserTagLimit, digestTagBase) band.
	collectiveTag = UserTagLimit + 1
)

// checkTag validates an application tag against the reserved space.
func checkTag(tag int) error {
	if tag < 0 || tag >= UserTagLimit {
		return &TagRangeError{Tag: tag}
	}
	return nil
}

// Comm is an r-way redundant communicator: a logical communicator of size
// Size() whose every rank is r physical replicas.
type Comm struct {
	world   *mpi.Comm
	env     *mpi.Env
	n       int // logical size
	logical int // this process's logical rank
	replica int // replica index in [0, r)
	r       int // replication degree
	// Protocol selects the replication protocol (default Parallel).
	Protocol Protocol
	// Detect enables online comparison of message digests between
	// replicas (redMPI's detection mode). When false, Parallel runs the
	// replica spheres isolated (redMPI's fault-injection mode) and Mirror
	// skips the vote (first live copy wins).
	Detect bool
	// scratch backs the 8-byte digest sends so the hottest detection path
	// does not allocate per message (eager sends copy at post time, so
	// reusing the buffer across messages is safe).
	scratch [8]byte
}

// Wrap builds the classic dual-redundant communicator for this process.
// The world size must be even: the upper half mirrors the lower half.
func Wrap(env *mpi.Env) (*Comm, error) { return WrapN(env, 2) }

// WrapN builds an r-way redundant communicator: the world splits into r
// replica groups of n = Size()/r processes each. Degree 1 is the
// degenerate unreplicated communicator (useful as an experiment
// baseline). WrapN switches the world communicator to ErrorsReturn: the
// layer handles peer-failure errors itself (failover, degraded
// detection), so failures must reach it instead of aborting the job.
func WrapN(env *mpi.Env, r int) (*Comm, error) {
	n := env.Size()
	if r < 1 {
		return nil, fmt.Errorf("redundancy: replication degree %d must be at least 1", r)
	}
	if n%r != 0 {
		return nil, fmt.Errorf("redundancy: world size %d must be divisible by replication degree %d", n, r)
	}
	logical := n / r
	c := &Comm{
		world:   env.World(),
		env:     env,
		n:       logical,
		logical: env.Rank() % logical,
		replica: env.Rank() / logical,
		r:       r,
		Detect:  true,
	}
	c.world.SetErrorHandler(mpi.ErrorsReturn)
	return c, nil
}

// Size returns the logical communicator size.
func (c *Comm) Size() int { return c.n }

// Logical returns this process's logical rank.
func (c *Comm) Logical() int { return c.logical }

// Replica returns this process's replica index in [0, Degree()).
func (c *Comm) Replica() int { return c.replica }

// Degree returns the replication degree r.
func (c *Comm) Degree() int { return c.r }

// Partner returns the world rank of this process's next replica (its only
// partner at degree 2, itself at degree 1).
func (c *Comm) Partner() int {
	return c.worldRankOf(c.logical, (c.replica+1)%c.r)
}

// Alive returns the number of replicas of logical rank l not known to
// this process to have failed. It is local knowledge: a replica that died
// but whose failure notification has not yet arrived still counts.
func (c *Comm) Alive(l int) int {
	alive := 0
	for k := 0; k < c.r; k++ {
		if !c.env.PeerFailed(c.worldRankOf(l, k)) {
			alive++
		}
	}
	return alive
}

// worldRankOf translates a logical rank and replica index to a world rank.
func (c *Comm) worldRankOf(logical, replica int) int {
	return logical + replica*c.n
}

// worldRank translates a logical rank to the world rank of this process's
// own replica sphere.
func (c *Comm) worldRank(logical int) int {
	return c.worldRankOf(logical, c.replica)
}

// checkRank validates a logical rank operand.
func (c *Comm) checkRank(kind string, l int) error {
	if l < 0 || l >= c.n {
		return fmt.Errorf("redundancy: %s %d out of range [0,%d)", kind, l, c.n)
	}
	return nil
}

// digest hashes a payload for the replica comparison.
func digest(data []byte) uint64 {
	h := fnv.New64a()
	h.Write(data)
	return h.Sum64()
}

// Send sends data to the logical destination. Under Parallel every
// replica of the logical sender performs the send into its own sphere
// with its own (ideally identical) data; divergence is what detection
// catches at the receiver. Under Mirror the payload is copied to every
// live replica of the destination, and a destination whose replicas have
// all failed yields *ReplicaFailedError.
func (c *Comm) Send(dst, tag int, data []byte) error {
	if err := c.checkRank("destination", dst); err != nil {
		return err
	}
	if err := checkTag(tag); err != nil {
		return err
	}
	return c.send(dst, tag, data)
}

// send is Send past validation; the layer's collectives enter here with
// reserved tags.
func (c *Comm) send(dst, tag int, data []byte) error {
	if c.Protocol == Mirror {
		return c.sendMirror(dst, tag, data)
	}
	return c.world.Send(c.worldRank(dst), tag, data)
}

// sendMirror delivers one copy to every live replica of dst. A replica
// that is known dead is skipped; one that dies in transit is treated the
// same (its copy is covered by the copies the other sender replicas
// deliver).
func (c *Comm) sendMirror(dst, tag int, data []byte) error {
	delivered := 0
	for k := 0; k < c.r; k++ {
		w := c.worldRankOf(dst, k)
		if c.env.PeerFailed(w) {
			continue
		}
		err := c.world.Send(w, tag, data)
		if err != nil {
			var pf *mpi.ProcFailedError
			if errors.As(err, &pf) {
				continue
			}
			return err
		}
		delivered++
	}
	if delivered == 0 {
		return &ReplicaFailedError{Logical: dst, Op: "send"}
	}
	return nil
}

// Recv receives from the logical source. Under Parallel the payload comes
// from the same replica sphere and, with Detect enabled, the receiving
// replicas then exchange digests of what they received: a mismatch means
// some replica of the sender produced corrupted data, reported as
// *SDCError (with the corrupt replicas attributed when r ≥ 3 forms a
// strict majority). Under Mirror one copy is collected from every live
// replica of the source and the digest vote happens locally; a source
// whose replicas have all failed yields *ReplicaFailedError. In both
// protocols a returned *SDCError still carries the received message —
// like redMPI, corruption is reported while execution continues.
func (c *Comm) Recv(src, tag int) (*mpi.Message, error) {
	if err := c.checkRank("source", src); err != nil {
		return nil, err
	}
	if err := checkTag(tag); err != nil {
		return nil, err
	}
	return c.recv(src, tag)
}

// recv is Recv past validation; the layer's collectives enter here with
// reserved tags.
func (c *Comm) recv(src, tag int) (*mpi.Message, error) {
	if c.Protocol == Mirror {
		return c.recvMirror(src, tag)
	}
	return c.recvParallel(src, tag)
}

// recvParallel receives within the replica sphere, then digest-compares
// with the partner replicas.
func (c *Comm) recvParallel(src, tag int) (*mpi.Message, error) {
	msg, err := c.world.Recv(c.worldRank(src), tag)
	if err != nil {
		return nil, err
	}
	if !c.Detect || c.r < 2 {
		return msg, nil
	}
	// Cross-sphere digest exchange among the receiving replicas. Each
	// pair orders deterministically (the lower replica index sends
	// first), and digests ride the reserved companion of the payload tag.
	// A partner that is known dead — or dies mid-exchange — is skipped:
	// detection degrades to the surviving replicas instead of
	// deadlocking.
	digests := make([]uint64, c.r)
	present := make([]bool, c.r)
	digests[c.replica] = digest(msg.Data)
	present[c.replica] = true
	binary.LittleEndian.PutUint64(c.scratch[:], digests[c.replica])
	dtag := digestTagBase + tag
	for j := 0; j < c.r; j++ {
		if j == c.replica {
			continue
		}
		w := c.worldRankOf(c.logical, j)
		if c.env.PeerFailed(w) {
			continue
		}
		var theirs *mpi.Message
		var derr error
		if c.replica < j {
			if derr = c.world.Send(w, dtag, c.scratch[:]); derr == nil {
				theirs, derr = c.world.Recv(w, dtag)
			}
		} else {
			if theirs, derr = c.world.Recv(w, dtag); derr == nil {
				derr = c.world.Send(w, dtag, c.scratch[:])
			}
		}
		if derr != nil {
			var pf *mpi.ProcFailedError
			if errors.As(derr, &pf) {
				theirs.Release()
				continue
			}
			theirs.Release()
			msg.Release()
			return nil, derr
		}
		digests[j] = binary.LittleEndian.Uint64(theirs.Data)
		present[j] = true
		theirs.Release()
	}
	if corrupt, mismatch := voteDigests(digests, present); mismatch {
		return msg, &SDCError{LogicalSrc: src, Tag: tag, Replica: c.replica, Corrupt: corrupt}
	}
	return msg, nil
}

// recvMirror collects one copy from every live replica of src and votes.
func (c *Comm) recvMirror(src, tag int) (*mpi.Message, error) {
	// Post receives to every source replica not already known dead. A
	// replica that died unnotified completes its receive with a
	// process-failure error after the detection timeout, so the wait
	// below never deadlocks — and a copy the replica sent before dying
	// still matches and delivers.
	reqs := make([]*mpi.Request, 0, c.r)
	idxs := make([]int, 0, c.r)
	for k := 0; k < c.r; k++ {
		w := c.worldRankOf(src, k)
		if c.env.PeerFailed(w) {
			continue
		}
		req, err := c.world.Irecv(w, tag)
		if err != nil {
			// Drain what was already posted (copies arrive or failure
			// timeouts fire), then surface the posting error.
			for _, r := range reqs {
				_, _ = c.world.Wait(r)
				c.world.Free(r)
			}
			return nil, err
		}
		reqs = append(reqs, req)
		idxs = append(idxs, k)
	}
	msgs := make([]*mpi.Message, 0, len(reqs))
	from := make([]int, 0, len(reqs))
	var hard error
	for i, req := range reqs {
		_, err := c.world.Wait(req)
		if err != nil {
			var pf *mpi.ProcFailedError
			if !errors.As(err, &pf) && hard == nil {
				hard = err
			}
			c.world.Free(req)
			continue
		}
		m := req.TakeMsg()
		c.world.Free(req)
		msgs = append(msgs, m)
		from = append(from, idxs[i])
	}
	if hard != nil {
		for _, m := range msgs {
			m.Release()
		}
		return nil, hard
	}
	if len(msgs) == 0 {
		return nil, &ReplicaFailedError{Logical: src, Op: "recv"}
	}
	chosen := 0
	var sdc *SDCError
	if c.Detect && len(msgs) > 1 {
		digests := make([]uint64, c.r)
		present := make([]bool, c.r)
		for i, m := range msgs {
			digests[from[i]] = digest(m.Data)
			present[from[i]] = true
		}
		if corrupt, mismatch := voteDigests(digests, present); mismatch {
			sdc = &SDCError{LogicalSrc: src, Tag: tag, Replica: c.replica, Corrupt: corrupt}
			if len(corrupt) > 0 {
				// A strict majority exists: return a majority copy, so
				// the vote corrects the corruption for the application.
				for i, k := range from {
					if !intsContain(corrupt, k) {
						chosen = i
						break
					}
				}
			}
		}
	}
	out := msgs[chosen]
	for i, m := range msgs {
		if i != chosen {
			m.Release()
		}
	}
	if sdc != nil {
		return out, sdc
	}
	return out, nil
}

// voteDigests compares the present digests. mismatch reports any
// disagreement; corrupt lists the replica indices outvoted by a strict
// majority, nil when none exists (r = 2, or an even split).
func voteDigests(digests []uint64, present []bool) (corrupt []int, mismatch bool) {
	total := 0
	var ref uint64
	seen := false
	for i, ok := range present {
		if !ok {
			continue
		}
		total++
		if !seen {
			ref, seen = digests[i], true
		} else if digests[i] != ref {
			mismatch = true
		}
	}
	if !mismatch {
		return nil, false
	}
	var best uint64
	bestN := 0
	for i, ok := range present {
		if !ok {
			continue
		}
		n := 0
		for j, ok2 := range present {
			if ok2 && digests[j] == digests[i] {
				n++
			}
		}
		if n > bestN {
			best, bestN = digests[i], n
		}
	}
	if 2*bestN <= total {
		return nil, true
	}
	for i, ok := range present {
		if ok && digests[i] != best {
			corrupt = append(corrupt, i)
		}
	}
	return corrupt, true
}

// intsContain reports whether s contains v.
func intsContain(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// Allreduce folds contributions across the logical communicator (linear:
// logical rank 0 gathers and broadcasts) on the layer's reserved
// collective tags. With Detect enabled every hop is digest-compared
// across replicas. Detection does not stop the collective — like redMPI,
// corruption is reported while execution continues — so the result is
// returned together with the first SDCError observed, if any.
func (c *Comm) Allreduce(contrib []float64, op mpi.ReduceOp) ([]float64, error) {
	const tag = collectiveTag
	var sdc error
	recv := func(src, tag int) (*mpi.Message, error) {
		msg, err := c.recv(src, tag)
		if err != nil {
			var e *SDCError
			if errors.As(err, &e) && msg != nil {
				if sdc == nil {
					sdc = err
				}
				return msg, nil
			}
			return nil, err
		}
		return msg, nil
	}
	if c.logical == 0 {
		acc := append([]float64(nil), contrib...)
		for r := 1; r < c.n; r++ {
			msg, err := recv(r, tag)
			if err != nil {
				return nil, err
			}
			vals, err := decodeF64s(msg.Data, len(contrib))
			if err != nil {
				return nil, err
			}
			op(acc, vals)
		}
		for r := 1; r < c.n; r++ {
			if err := c.send(r, tag+1, encodeF64s(acc)); err != nil {
				return nil, err
			}
		}
		return acc, sdc
	}
	if err := c.send(0, tag, encodeF64s(contrib)); err != nil {
		return nil, err
	}
	msg, err := recv(0, tag+1)
	if err != nil {
		return nil, err
	}
	out, err := decodeF64s(msg.Data, len(contrib))
	if err != nil {
		return nil, err
	}
	return out, sdc
}

// encodeF64s/decodeF64s mirror the MPI layer's helpers (kept local so the
// package only depends on the public MPI surface).
func encodeF64s(vals []float64) []byte {
	buf := make([]byte, 0, 8*len(vals))
	for _, v := range vals {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

func decodeF64s(buf []byte, n int) ([]float64, error) {
	if len(buf) != 8*n {
		return nil, fmt.Errorf("redundancy: payload is %d bytes, want %d", len(buf), 8*n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out, nil
}
