package redundancy

import (
	"errors"
	"testing"

	"xsim/internal/core"
	"xsim/internal/mpi"
	"xsim/internal/netmodel"
	"xsim/internal/procmodel"
	"xsim/internal/softerror"
	"xsim/internal/topology"
	"xsim/internal/vclock"
)

// runDMR runs app on a 2×logical world.
func runDMR(t *testing.T, logical int, app func(*mpi.Env, *Comm)) *core.Result {
	t.Helper()
	n := 2 * logical
	eng, err := core.New(core.Config{NumVPs: n})
	if err != nil {
		t.Fatal(err)
	}
	net := &netmodel.Model{
		Topo:           topology.NewFullyConnected(n),
		System:         netmodel.LinkParams{Latency: vclock.Microsecond, Bandwidth: 1e9, DetectionTimeout: 10 * vclock.Millisecond},
		OnNode:         netmodel.LinkParams{Latency: vclock.Microsecond, Bandwidth: 1e9, DetectionTimeout: 10 * vclock.Millisecond},
		EagerThreshold: 256 * 1024,
	}
	w, err := mpi.NewWorld(eng, mpi.WorldConfig{Net: net, Proc: procmodel.Paper()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(func(e *mpi.Env) {
		defer e.Finalize()
		dmr, err := Wrap(e)
		if err != nil {
			t.Error(err)
			return
		}
		app(e, dmr)
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestGeometry(t *testing.T) {
	runDMR(t, 4, func(e *mpi.Env, d *Comm) {
		if d.Size() != 4 {
			t.Errorf("logical size = %d", d.Size())
		}
		wantLogical := e.Rank() % 4
		wantReplica := e.Rank() / 4
		if d.Logical() != wantLogical || d.Replica() != wantReplica {
			t.Errorf("rank %d: logical %d replica %d", e.Rank(), d.Logical(), d.Replica())
		}
		// Partners are mutual.
		if d.Partner() != (e.Rank()+4)%8 {
			t.Errorf("rank %d partner = %d", e.Rank(), d.Partner())
		}
	})
}

func TestWrapOddWorld(t *testing.T) {
	eng, _ := core.New(core.Config{NumVPs: 3})
	net := &netmodel.Model{
		Topo:   topology.NewFullyConnected(3),
		System: netmodel.LinkParams{Latency: vclock.Microsecond, Bandwidth: 1e9},
		OnNode: netmodel.LinkParams{Latency: vclock.Microsecond, Bandwidth: 1e9},
	}
	w, _ := mpi.NewWorld(eng, mpi.WorldConfig{Net: net, Proc: procmodel.Paper()})
	if _, err := w.Run(func(e *mpi.Env) {
		defer e.Finalize()
		if _, err := Wrap(e); err == nil {
			t.Error("odd world should fail to wrap")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCleanTransferNoFalsePositive(t *testing.T) {
	res := runDMR(t, 2, func(e *mpi.Env, d *Comm) {
		if d.Logical() == 0 {
			if err := d.Send(1, 0, []byte("identical")); err != nil {
				t.Errorf("send: %v", err)
			}
		} else {
			msg, err := d.Recv(0, 0)
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			if string(msg.Data) != "identical" {
				t.Errorf("data = %q", msg.Data)
			}
		}
	})
	if res.Completed != 4 {
		t.Fatalf("completed = %d", res.Completed)
	}
}

func TestBitFlipDetected(t *testing.T) {
	detected := make([]bool, 4) // world size
	runDMR(t, 2, func(e *mpi.Env, d *Comm) {
		if d.Logical() == 0 {
			data := []float64{1, 2, 3}
			if d.Replica() == 1 {
				// The soft error: replica 1's copy of the payload is
				// silently corrupted before the send.
				softerror.FlipFloat64(data, 1, 13)
			}
			buf := encodeF64s(data)
			if err := d.Send(1, 0, buf); err != nil {
				t.Errorf("send: %v", err)
			}
		} else {
			_, err := d.Recv(0, 0)
			var sdc *SDCError
			if errors.As(err, &sdc) {
				detected[e.Rank()] = true
				if sdc.LogicalSrc != 0 {
					t.Errorf("detected src = %d", sdc.LogicalSrc)
				}
			} else if err != nil {
				t.Errorf("unexpected error: %v", err)
			}
		}
	})
	// Both replicas of the logical receiver detect the mismatch.
	if !detected[1] || !detected[3] {
		t.Fatalf("detection flags = %v, want both receiver replicas", detected)
	}
}

func TestDetectionDisabledIsolatesReplicas(t *testing.T) {
	// redMPI's fault-injection mode: detection off, the corrupted replica
	// runs to completion with diverged data and nobody notices online.
	divergence := make([]string, 4)
	runDMR(t, 2, func(e *mpi.Env, d *Comm) {
		d.Detect = false
		if d.Logical() == 0 {
			payload := "clean"
			if d.Replica() == 1 {
				payload = "corrupt"
			}
			if err := d.Send(1, 0, []byte(payload)); err != nil {
				t.Errorf("send: %v", err)
			}
		} else {
			msg, err := d.Recv(0, 0)
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			divergence[e.Rank()] = string(msg.Data)
		}
	})
	if divergence[1] != "clean" || divergence[3] != "corrupt" {
		t.Fatalf("isolated replicas = %v", divergence)
	}
}

func TestAllreduceDetectsCorruption(t *testing.T) {
	// A single corrupted contribution propagates into the reduction —
	// and the digest comparison catches it at the first hop.
	sawSDC := false
	runDMR(t, 3, func(e *mpi.Env, d *Comm) {
		contrib := []float64{float64(d.Logical())}
		if d.Logical() == 2 && d.Replica() == 1 {
			softerror.FlipFloat64(contrib, 0, 60)
		}
		_, err := d.Allreduce(contrib, mpi.OpSum)
		var sdc *SDCError
		if errors.As(err, &sdc) {
			sawSDC = true
		}
	})
	if !sawSDC {
		t.Fatal("corrupted contribution went undetected")
	}
}

func TestAllreduceCleanValues(t *testing.T) {
	runDMR(t, 3, func(e *mpi.Env, d *Comm) {
		sum, err := d.Allreduce([]float64{float64(d.Logical())}, mpi.OpSum)
		if err != nil {
			t.Errorf("allreduce: %v", err)
			return
		}
		if sum[0] != 3 { // 0+1+2
			t.Errorf("sum = %v", sum[0])
		}
	})
}

func TestSendRecvValidation(t *testing.T) {
	runDMR(t, 2, func(e *mpi.Env, d *Comm) {
		if err := d.Send(5, 0, nil); err == nil {
			t.Error("out-of-range logical dst should fail")
		}
		if _, err := d.Recv(-1, 0); err == nil {
			t.Error("out-of-range logical src should fail")
		}
	})
}
