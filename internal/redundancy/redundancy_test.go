package redundancy

import (
	"errors"
	"testing"

	"xsim/internal/core"
	"xsim/internal/mpi"
	"xsim/internal/netmodel"
	"xsim/internal/procmodel"
	"xsim/internal/softerror"
	"xsim/internal/topology"
	"xsim/internal/vclock"
)

// runDMR runs app on a 2×logical world.
func runDMR(t *testing.T, logical int, app func(*mpi.Env, *Comm)) *core.Result {
	t.Helper()
	n := 2 * logical
	eng, err := core.New(core.Config{NumVPs: n})
	if err != nil {
		t.Fatal(err)
	}
	net := &netmodel.Model{
		Topo:           topology.NewFullyConnected(n),
		System:         netmodel.LinkParams{Latency: vclock.Microsecond, Bandwidth: 1e9, DetectionTimeout: 10 * vclock.Millisecond},
		OnNode:         netmodel.LinkParams{Latency: vclock.Microsecond, Bandwidth: 1e9, DetectionTimeout: 10 * vclock.Millisecond},
		EagerThreshold: 256 * 1024,
	}
	w, err := mpi.NewWorld(eng, mpi.WorldConfig{Net: net, Proc: procmodel.Paper()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(func(e *mpi.Env) {
		defer e.Finalize()
		dmr, err := Wrap(e)
		if err != nil {
			t.Error(err)
			return
		}
		app(e, dmr)
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestGeometry(t *testing.T) {
	runDMR(t, 4, func(e *mpi.Env, d *Comm) {
		if d.Size() != 4 {
			t.Errorf("logical size = %d", d.Size())
		}
		wantLogical := e.Rank() % 4
		wantReplica := e.Rank() / 4
		if d.Logical() != wantLogical || d.Replica() != wantReplica {
			t.Errorf("rank %d: logical %d replica %d", e.Rank(), d.Logical(), d.Replica())
		}
		// Partners are mutual.
		if d.Partner() != (e.Rank()+4)%8 {
			t.Errorf("rank %d partner = %d", e.Rank(), d.Partner())
		}
	})
}

func TestWrapOddWorld(t *testing.T) {
	eng, _ := core.New(core.Config{NumVPs: 3})
	net := &netmodel.Model{
		Topo:   topology.NewFullyConnected(3),
		System: netmodel.LinkParams{Latency: vclock.Microsecond, Bandwidth: 1e9},
		OnNode: netmodel.LinkParams{Latency: vclock.Microsecond, Bandwidth: 1e9},
	}
	w, _ := mpi.NewWorld(eng, mpi.WorldConfig{Net: net, Proc: procmodel.Paper()})
	if _, err := w.Run(func(e *mpi.Env) {
		defer e.Finalize()
		if _, err := Wrap(e); err == nil {
			t.Error("odd world should fail to wrap")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCleanTransferNoFalsePositive(t *testing.T) {
	res := runDMR(t, 2, func(e *mpi.Env, d *Comm) {
		if d.Logical() == 0 {
			if err := d.Send(1, 0, []byte("identical")); err != nil {
				t.Errorf("send: %v", err)
			}
		} else {
			msg, err := d.Recv(0, 0)
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			if string(msg.Data) != "identical" {
				t.Errorf("data = %q", msg.Data)
			}
		}
	})
	if res.Completed != 4 {
		t.Fatalf("completed = %d", res.Completed)
	}
}

func TestBitFlipDetected(t *testing.T) {
	detected := make([]bool, 4) // world size
	runDMR(t, 2, func(e *mpi.Env, d *Comm) {
		if d.Logical() == 0 {
			data := []float64{1, 2, 3}
			if d.Replica() == 1 {
				// The soft error: replica 1's copy of the payload is
				// silently corrupted before the send.
				softerror.FlipFloat64(data, 1, 13)
			}
			buf := encodeF64s(data)
			if err := d.Send(1, 0, buf); err != nil {
				t.Errorf("send: %v", err)
			}
		} else {
			_, err := d.Recv(0, 0)
			var sdc *SDCError
			if errors.As(err, &sdc) {
				detected[e.Rank()] = true
				if sdc.LogicalSrc != 0 {
					t.Errorf("detected src = %d", sdc.LogicalSrc)
				}
			} else if err != nil {
				t.Errorf("unexpected error: %v", err)
			}
		}
	})
	// Both replicas of the logical receiver detect the mismatch.
	if !detected[1] || !detected[3] {
		t.Fatalf("detection flags = %v, want both receiver replicas", detected)
	}
}

func TestDetectionDisabledIsolatesReplicas(t *testing.T) {
	// redMPI's fault-injection mode: detection off, the corrupted replica
	// runs to completion with diverged data and nobody notices online.
	divergence := make([]string, 4)
	runDMR(t, 2, func(e *mpi.Env, d *Comm) {
		d.Detect = false
		if d.Logical() == 0 {
			payload := "clean"
			if d.Replica() == 1 {
				payload = "corrupt"
			}
			if err := d.Send(1, 0, []byte(payload)); err != nil {
				t.Errorf("send: %v", err)
			}
		} else {
			msg, err := d.Recv(0, 0)
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			divergence[e.Rank()] = string(msg.Data)
		}
	})
	if divergence[1] != "clean" || divergence[3] != "corrupt" {
		t.Fatalf("isolated replicas = %v", divergence)
	}
}

func TestAllreduceDetectsCorruption(t *testing.T) {
	// A single corrupted contribution propagates into the reduction —
	// and the digest comparison catches it at the first hop.
	sawSDC := false
	runDMR(t, 3, func(e *mpi.Env, d *Comm) {
		contrib := []float64{float64(d.Logical())}
		if d.Logical() == 2 && d.Replica() == 1 {
			softerror.FlipFloat64(contrib, 0, 60)
		}
		_, err := d.Allreduce(contrib, mpi.OpSum)
		var sdc *SDCError
		if errors.As(err, &sdc) {
			sawSDC = true
		}
	})
	if !sawSDC {
		t.Fatal("corrupted contribution went undetected")
	}
}

func TestAllreduceCleanValues(t *testing.T) {
	runDMR(t, 3, func(e *mpi.Env, d *Comm) {
		sum, err := d.Allreduce([]float64{float64(d.Logical())}, mpi.OpSum)
		if err != nil {
			t.Errorf("allreduce: %v", err)
			return
		}
		if sum[0] != 3 { // 0+1+2
			t.Errorf("sum = %v", sum[0])
		}
	})
}

func TestSendRecvValidation(t *testing.T) {
	runDMR(t, 2, func(e *mpi.Env, d *Comm) {
		if err := d.Send(5, 0, nil); err == nil {
			t.Error("out-of-range logical dst should fail")
		}
		if _, err := d.Recv(-1, 0); err == nil {
			t.Error("out-of-range logical src should fail")
		}
	})
}

// runReplicated runs app on an r×logical world with optional injected
// process failures (world rank → failure time).
func runReplicated(t *testing.T, logical, r int, failures map[int]vclock.Time, app func(*mpi.Env, *Comm)) *core.Result {
	t.Helper()
	n := r * logical
	eng, err := core.New(core.Config{NumVPs: n})
	if err != nil {
		t.Fatal(err)
	}
	for rank, at := range failures {
		if err := eng.ScheduleFailure(rank, at); err != nil {
			t.Fatal(err)
		}
	}
	net := &netmodel.Model{
		Topo:           topology.NewFullyConnected(n),
		System:         netmodel.LinkParams{Latency: vclock.Microsecond, Bandwidth: 1e9, DetectionTimeout: 10 * vclock.Millisecond},
		OnNode:         netmodel.LinkParams{Latency: vclock.Microsecond, Bandwidth: 1e9, DetectionTimeout: 10 * vclock.Millisecond},
		EagerThreshold: 256 * 1024,
	}
	w, err := mpi.NewWorld(eng, mpi.WorldConfig{Net: net, Proc: procmodel.Paper()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(func(e *mpi.Env) {
		defer e.Finalize()
		c, err := WrapN(e, r)
		if err != nil {
			t.Error(err)
			return
		}
		app(e, c)
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWrapNGeometry(t *testing.T) {
	runReplicated(t, 2, 3, nil, func(e *mpi.Env, c *Comm) {
		if c.Size() != 2 || c.Degree() != 3 {
			t.Errorf("size=%d degree=%d", c.Size(), c.Degree())
		}
		wantLogical := e.Rank() % 2
		wantReplica := e.Rank() / 2
		if c.Logical() != wantLogical || c.Replica() != wantReplica {
			t.Errorf("rank %d: logical %d replica %d", e.Rank(), c.Logical(), c.Replica())
		}
		// The partner chain cycles through all three replica spheres.
		if c.Partner() != (e.Rank()+2)%6 {
			t.Errorf("rank %d partner = %d", e.Rank(), c.Partner())
		}
		if got := c.Alive(c.Logical()); got != 3 {
			t.Errorf("alive = %d", got)
		}
	})
}

func TestWrapNNotDivisible(t *testing.T) {
	runReplicated(t, 4, 1, nil, func(e *mpi.Env, c *Comm) {
		if _, err := WrapN(e, 3); err == nil {
			t.Error("4 ranks at degree 3 should fail to wrap")
		}
		if _, err := WrapN(e, 0); err == nil {
			t.Error("degree 0 should fail to wrap")
		}
	})
}

func TestTagRangeRejected(t *testing.T) {
	// User tags live in [0, 1<<19): everything above is reserved for the
	// layer's collectives and digest traffic, and must be rejected before
	// any message moves — a user payload on a digest tag would be consumed
	// as a digest by the partner replica.
	runDMR(t, 2, func(e *mpi.Env, d *Comm) {
		var tre *TagRangeError
		for _, tag := range []int{UserTagLimit, 1 << 20, -1} {
			if err := d.Send(1, tag, nil); !errors.As(err, &tre) {
				t.Errorf("Send tag %d: got %v, want TagRangeError", tag, err)
			} else if tre.Tag != tag {
				t.Errorf("Send tag %d reported as %d", tag, tre.Tag)
			}
			if _, err := d.Recv(0, tag); !errors.As(err, &tre) {
				t.Errorf("Recv tag %d: got %v, want TagRangeError", tag, err)
			}
		}
		// The largest user tag is fine end to end.
		if d.Logical() == 0 {
			if err := d.Send(1, UserTagLimit-1, []byte("hi")); err != nil {
				t.Errorf("send max user tag: %v", err)
			}
		} else {
			msg, err := d.Recv(0, UserTagLimit-1)
			if err != nil {
				t.Errorf("recv max user tag: %v", err)
			}
			msg.Release()
		}
	})
}

func TestParallelTripleVotesOutCorruptReplica(t *testing.T) {
	// At r = 3 the Parallel protocol's cross-sphere digest vote identifies
	// WHICH replica diverged, not just that something did.
	blamed := make([][]int, 6)
	runReplicated(t, 2, 3, nil, func(e *mpi.Env, c *Comm) {
		if c.Logical() == 0 {
			payload := []byte("payloadA")
			if c.Replica() == 1 {
				payload = []byte("payloadB") // silent corruption in sphere 1
			}
			if err := c.Send(1, 3, payload); err != nil {
				t.Errorf("send: %v", err)
			}
		} else {
			msg, err := c.Recv(0, 3)
			var sdc *SDCError
			if errors.As(err, &sdc) {
				blamed[e.Rank()] = sdc.Corrupt
			} else if err != nil {
				t.Errorf("recv: %v", err)
			}
			msg.Release()
		}
	})
	// Every receiver replica must attribute the corruption to replica 1.
	for _, rank := range []int{1, 3, 5} {
		if len(blamed[rank]) != 1 || blamed[rank][0] != 1 {
			t.Fatalf("rank %d blamed %v, want [1]", rank, blamed[rank])
		}
	}
}

func TestMirrorCleanDelivery(t *testing.T) {
	res := runReplicated(t, 2, 2, nil, func(e *mpi.Env, c *Comm) {
		c.Protocol = Mirror
		if c.Logical() == 0 {
			if err := c.Send(1, 0, []byte("mirrored")); err != nil {
				t.Errorf("send: %v", err)
			}
		} else {
			msg, err := c.Recv(0, 0)
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			if string(msg.Data) != "mirrored" {
				t.Errorf("data = %q", msg.Data)
			}
			msg.Release()
		}
	})
	if res.Completed != 4 {
		t.Fatalf("completed = %d", res.Completed)
	}
}

func TestMirrorTripleVotesAndCorrects(t *testing.T) {
	// At r = 3 the Mirror receiver holds all three copies: the vote both
	// attributes the corruption and hands the caller majority data.
	got := make([]string, 6)
	blamed := make([][]int, 6)
	runReplicated(t, 2, 3, nil, func(e *mpi.Env, c *Comm) {
		c.Protocol = Mirror
		if c.Logical() == 0 {
			payload := []byte("good-data")
			if c.Replica() == 1 {
				payload = []byte("bad--data")
			}
			if err := c.Send(1, 0, payload); err != nil {
				t.Errorf("send: %v", err)
			}
		} else {
			msg, err := c.Recv(0, 0)
			var sdc *SDCError
			if errors.As(err, &sdc) {
				blamed[e.Rank()] = sdc.Corrupt
			} else if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			got[e.Rank()] = string(msg.Data)
			msg.Release()
		}
	})
	for _, rank := range []int{1, 3, 5} {
		if got[rank] != "good-data" {
			t.Errorf("rank %d got %q, want majority data", rank, got[rank])
		}
		if len(blamed[rank]) != 1 || blamed[rank][0] != 1 {
			t.Errorf("rank %d blamed %v, want [1]", rank, blamed[rank])
		}
	}
}

func TestMirrorFailoverSurvivesReplicaDeath(t *testing.T) {
	// Logical rank 1 loses its replica-1 process (world rank 3) mid-run;
	// the Mirror protocol keeps the logical rank alive through replica 0,
	// and the whole 5-iteration ping-pong completes without a deadlock.
	const iters = 5
	failures := map[int]vclock.Time{3: vclock.Time(2500 * vclock.Microsecond)}
	res := runReplicated(t, 2, 2, failures, func(e *mpi.Env, c *Comm) {
		c.Protocol = Mirror
		for i := 0; i < iters; i++ {
			e.Elapse(vclock.Millisecond)
			peer := 1 - c.Logical()
			if err := c.Send(peer, 0, []byte("ping")); err != nil {
				t.Errorf("rank %d iter %d send: %v", e.Rank(), i, err)
				return
			}
			msg, err := c.Recv(peer, 0)
			if err != nil {
				t.Errorf("rank %d iter %d recv: %v", e.Rank(), i, err)
				return
			}
			msg.Release()
		}
	})
	if res.Completed != 3 || res.Failed != 1 {
		t.Fatalf("completed=%d failed=%d, want 3/1", res.Completed, res.Failed)
	}
}

func TestMirrorAllReplicasDead(t *testing.T) {
	// Both replicas of logical rank 0 die before sending: the receiver's
	// Recv must return ReplicaFailedError once the timeouts expire, not
	// hang.
	failures := map[int]vclock.Time{
		0: vclock.Time(100 * vclock.Microsecond),
		2: vclock.Time(200 * vclock.Microsecond),
	}
	sawExhaustion := false
	res := runReplicated(t, 2, 2, failures, func(e *mpi.Env, c *Comm) {
		c.Protocol = Mirror
		if c.Logical() == 0 {
			e.Elapse(vclock.Second) // die before ever sending
			return
		}
		_, err := c.Recv(0, 0)
		var rfe *ReplicaFailedError
		if errors.As(err, &rfe) {
			if rfe.Logical != 0 || rfe.Op != "recv" {
				t.Errorf("exhaustion error = %+v", rfe)
			}
			if e.Rank() == 1 {
				sawExhaustion = true
			}
		} else {
			t.Errorf("rank %d: got %v, want ReplicaFailedError", e.Rank(), err)
		}
	})
	if !sawExhaustion {
		t.Fatal("receiver never observed replica exhaustion")
	}
	if res.Failed != 2 {
		t.Fatalf("failed = %d, want 2", res.Failed)
	}
}

func TestParallelPartnerDeathMidDigestExchange(t *testing.T) {
	// The satellite regression: replica 0 of the sender sends its payload
	// and digest, then its receiving partner (replica 1 of the receiver)
	// dies while replica 1 of the receiver still owes replica 0 a digest.
	// Jitter the death across the digest-exchange window over many seeds:
	// every interleaving must terminate cleanly (degraded detection), never
	// deadlock, and the payload must always arrive intact.
	for seed := int64(0); seed < 20; seed++ {
		// 0 µs .. 47.5 µs in 2.5 µs steps, straddling the payload+digest
		// exchange (a few µs) and the post-exchange window.
		at := vclock.Time(seed * 2500 * int64(vclock.Nanosecond))
		failures := map[int]vclock.Time{3: at}
		delivered := make([]string, 4)
		res := runReplicated(t, 2, 2, failures, func(e *mpi.Env, c *Comm) {
			if c.Logical() == 0 {
				if err := c.Send(1, 0, []byte("survivor")); err != nil {
					t.Errorf("seed %d: rank %d send: %v", seed, e.Rank(), err)
				}
				return
			}
			if c.Replica() == 1 {
				// The victim: may die before, during, or after its recv.
				msg, err := c.Recv(0, 0)
				if err == nil {
					msg.Release()
				}
				return
			}
			msg, err := c.Recv(0, 0)
			if err != nil {
				t.Errorf("seed %d: surviving receiver: %v", seed, err)
				return
			}
			delivered[e.Rank()] = string(msg.Data)
			msg.Release()
		})
		if delivered[1] != "survivor" {
			t.Fatalf("seed %d: surviving receiver got %q", seed, delivered[1])
		}
		if res.Completed+res.Failed != 4 {
			t.Fatalf("seed %d: completed=%d failed=%d aborted=%d",
				seed, res.Completed, res.Failed, res.Aborted)
		}
	}
}
