// Package ulfm provides user-level failure mitigation recovery patterns on
// top of the simulated MPI layer's ULFM surface (Revoke/Shrink/Agree) —
// the run-through alternative to checkpoint/restart that the paper lists
// as future work. Applications wrap their communication phases in
// RunWithRecovery: when a process failure surfaces, the communicator is
// revoked so every survivor observes the failure, shrunk to the survivors,
// and the work retried on the new communicator.
package ulfm

import (
	"errors"
	"fmt"

	"xsim/internal/mpi"
)

// IsProcFailed reports whether err (or anything it wraps) is a process
// failure detection.
func IsProcFailed(err error) (*mpi.ProcFailedError, bool) {
	var pf *mpi.ProcFailedError
	if errors.As(err, &pf) {
		return pf, true
	}
	return nil, false
}

// IsRevoked reports whether err (or anything it wraps) is a communicator
// revocation.
func IsRevoked(err error) bool {
	var rv *mpi.RevokedError
	return errors.As(err, &rv)
}

// Recoverable reports whether err is a failure the ULFM recovery loop can
// handle (process failure or revocation).
func Recoverable(err error) bool {
	if _, ok := IsProcFailed(err); ok {
		return true
	}
	return IsRevoked(err)
}

// Work is one attempt of an application phase on the current communicator.
// attempt counts retries (0 = first try).
type Work func(c *mpi.Comm, attempt int) error

// RunWithRecovery runs work on c, recovering from process failures by
// revoking the communicator, shrinking it to the survivors, and retrying
// on the shrunk communicator. It returns the communicator the work finally
// succeeded on (which may be c itself) and the terminal error, if any.
// Communicators must use ErrorsReturn (or a user handler): a fatal error
// handler aborts before recovery can run.
//
// Every surviving member must call RunWithRecovery with the same work:
// revocation guarantees that survivors blocked elsewhere observe the
// failure and join the Shrink.
func RunWithRecovery(c *mpi.Comm, maxAttempts int, work Work) (*mpi.Comm, error) {
	if maxAttempts <= 0 {
		return c, fmt.Errorf("ulfm: maxAttempts must be positive")
	}
	var err error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		err = work(c, attempt)
		if err == nil {
			return c, nil
		}
		if !Recoverable(err) {
			return c, err
		}
		// Make the failure global, then rebuild from the survivors.
		if !c.Revoked() {
			c.Revoke()
		}
		shrunk, serr := c.Shrink()
		if serr != nil {
			return c, fmt.Errorf("ulfm: shrink after %v: %w", err, serr)
		}
		shrunk.SetErrorHandler(mpi.ErrorsReturn)
		c = shrunk
	}
	return c, fmt.Errorf("ulfm: giving up after %d attempts: %w", maxAttempts, err)
}
