package ulfm

import (
	"errors"
	"fmt"
	"testing"

	"xsim/internal/core"
	"xsim/internal/fault"
	"xsim/internal/mpi"
	"xsim/internal/netmodel"
	"xsim/internal/procmodel"
	"xsim/internal/topology"
	"xsim/internal/vclock"
)

func testWorld(t *testing.T, n int, failures fault.Schedule) *mpi.World {
	t.Helper()
	eng, err := core.New(core.Config{NumVPs: n})
	if err != nil {
		t.Fatal(err)
	}
	net := &netmodel.Model{
		Topo:           topology.NewFullyConnected(n),
		System:         netmodel.LinkParams{Latency: vclock.Microsecond, Bandwidth: 1e9, DetectionTimeout: 10 * vclock.Millisecond},
		OnNode:         netmodel.LinkParams{Latency: vclock.Microsecond, Bandwidth: 1e9, DetectionTimeout: 10 * vclock.Millisecond},
		EagerThreshold: 256 * 1024,
	}
	w, err := mpi.NewWorld(eng, mpi.WorldConfig{Net: net, Proc: procmodel.Paper()})
	if err != nil {
		t.Fatal(err)
	}
	if err := fault.Apply(w.Engine(), failures); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestErrorClassifiers(t *testing.T) {
	pf := &mpi.ProcFailedError{Rank: 3, FailedAt: 0, Op: "recv"}
	if got, ok := IsProcFailed(fmt.Errorf("wrapped: %w", pf)); !ok || got.Rank != 3 {
		t.Error("IsProcFailed failed on wrapped error")
	}
	if _, ok := IsProcFailed(errors.New("other")); ok {
		t.Error("IsProcFailed false positive")
	}
	rv := &mpi.RevokedError{Comm: 1}
	if !IsRevoked(fmt.Errorf("wrapped: %w", rv)) {
		t.Error("IsRevoked failed on wrapped error")
	}
	if !Recoverable(pf) || !Recoverable(rv) || Recoverable(errors.New("nope")) {
		t.Error("Recoverable misclassifies")
	}
}

func TestRevokeReleasesBlockedOperations(t *testing.T) {
	const n = 3
	w := testWorld(t, n, nil)
	res, err := w.Run(func(e *mpi.Env) {
		defer e.Finalize()
		c := e.World()
		c.SetErrorHandler(mpi.ErrorsReturn)
		switch e.Rank() {
		case 0:
			e.Elapse(vclock.Millisecond)
			c.Revoke()
		default:
			// Blocked in a receive that no failure would ever release:
			// the revocation must.
			_, err := c.Recv(0, 99)
			if !IsRevoked(err) {
				t.Errorf("rank %d recv err = %v, want RevokedError", e.Rank(), err)
			}
			// Future operations on the revoked communicator fail fast.
			if err := c.SendN(0, 1, 8); !IsRevoked(err) {
				t.Errorf("rank %d send err = %v, want RevokedError", e.Rank(), err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != n {
		t.Fatalf("completed = %d (%+v)", res.Completed, res)
	}
}

func TestShrinkExcludesFailedRank(t *testing.T) {
	const n = 5
	const deadRank = 2
	w := testWorld(t, n, fault.Schedule{{Rank: deadRank, At: vclock.Time(vclock.Millisecond)}})
	w.Engine() // silence linters; engine already configured
	res, err := w.Run(func(e *mpi.Env) {
		c := e.World()
		c.SetErrorHandler(mpi.ErrorsReturn)
		if e.Rank() == deadRank {
			e.Elapse(vclock.Hour) // failure activates mid-compute
			return
		}
		defer e.Finalize()
		// Rank 0 detects the failure directly; the others learn of it
		// through the revocation.
		if e.Rank() == 0 {
			if _, err := c.Recv(deadRank, 0); err == nil {
				t.Error("recv from dead rank should fail")
			}
			c.Revoke()
		} else {
			_, err := c.Recv(0, 99) // parked until the revocation
			if !IsRevoked(err) {
				t.Errorf("rank %d: %v", e.Rank(), err)
			}
		}
		shrunk, err := c.Shrink()
		if err != nil {
			t.Errorf("rank %d shrink: %v", e.Rank(), err)
			return
		}
		if shrunk.Size() != n-1 {
			t.Errorf("rank %d shrunk size = %d, want %d", e.Rank(), shrunk.Size(), n-1)
		}
		// The shrunk communicator is fully usable.
		shrunk.SetErrorHandler(mpi.ErrorsReturn)
		sum, err := shrunk.Allreduce([]float64{1}, mpi.OpSum)
		if err != nil {
			t.Errorf("rank %d allreduce on shrunk: %v", e.Rank(), err)
			return
		}
		if sum[0] != float64(n-1) {
			t.Errorf("rank %d allreduce = %v, want %d", e.Rank(), sum[0], n-1)
		}
		// Rank translation: the dead world rank is absent.
		for _, wr := range shrunk.Group() {
			if wr == deadRank {
				t.Errorf("dead rank %d still in shrunk group %v", deadRank, shrunk.Group())
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 || res.Completed != n-1 {
		t.Fatalf("result = %+v", res)
	}
}

func TestAgreeAcrossFailure(t *testing.T) {
	const n = 4
	const deadRank = 3
	w := testWorld(t, n, fault.Schedule{{Rank: deadRank, At: 0}})
	res, err := w.Run(func(e *mpi.Env) {
		if e.Rank() == deadRank {
			return // fails at startup
		}
		defer e.Finalize()
		c := e.World()
		c.SetErrorHandler(mpi.ErrorsReturn)
		// Give the failure notification time to propagate so the root
		// does not wait a full timeout for the dead rank's report.
		e.Sleep(vclock.Millisecond)
		flag := uint32(0b111)
		if e.Rank() == 1 {
			flag = 0b101
		}
		got, err := c.Agree(flag)
		if err != nil {
			t.Errorf("rank %d agree: %v", e.Rank(), err)
			return
		}
		if got != 0b101 {
			t.Errorf("rank %d agree = %b, want 101", e.Rank(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 || res.Completed != n-1 {
		t.Fatalf("result = %+v", res)
	}
}

func TestRunWithRecovery(t *testing.T) {
	const n = 6
	const deadRank = 4
	w := testWorld(t, n, fault.Schedule{{Rank: deadRank, At: vclock.Time(vclock.Millisecond)}})
	attemptsByRank := make([]int, n)
	w2 := w
	res, err := w2.Run(func(e *mpi.Env) {
		c := e.World()
		c.SetErrorHandler(mpi.ErrorsReturn)
		if e.Rank() == deadRank {
			e.Elapse(vclock.Hour)
			return
		}
		defer e.Finalize()
		final, err := RunWithRecovery(c, 3, func(c *mpi.Comm, attempt int) error {
			attemptsByRank[e.Rank()]++
			// A ring reduction over the current membership: fails on the
			// first attempt (dead member), succeeds after the shrink.
			sum, err := c.Allreduce([]float64{1}, mpi.OpSum)
			if err != nil {
				return err
			}
			if want := float64(c.Size()); sum[0] != want {
				return fmt.Errorf("allreduce = %v, want %v", sum[0], want)
			}
			return nil
		})
		if err != nil {
			t.Errorf("rank %d recovery failed: %v", e.Rank(), err)
			return
		}
		if final.Size() != n-1 {
			t.Errorf("rank %d final comm size = %d", e.Rank(), final.Size())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 || res.Completed != n-1 {
		t.Fatalf("result = %+v", res)
	}
	for r, a := range attemptsByRank {
		if r == deadRank {
			continue
		}
		if a < 2 {
			t.Errorf("rank %d attempts = %d, want >= 2 (retry after shrink)", r, a)
		}
	}
}

func TestRunWithRecoveryNonRecoverable(t *testing.T) {
	const n = 2
	w := testWorld(t, n, nil)
	if _, err := w.Run(func(e *mpi.Env) {
		defer e.Finalize()
		c := e.World()
		boom := errors.New("application bug")
		_, err := RunWithRecovery(c, 3, func(*mpi.Comm, int) error { return boom })
		if !errors.Is(err, boom) {
			t.Errorf("err = %v, want the application bug", err)
		}
		if _, err := RunWithRecovery(c, 0, func(*mpi.Comm, int) error { return nil }); err == nil {
			t.Error("maxAttempts=0 should fail")
		}
	}); err != nil {
		t.Fatal(err)
	}
}
