package ulfm

import (
	"testing"

	"xsim/internal/core"
	"xsim/internal/fault"
	"xsim/internal/mpi"
	"xsim/internal/netmodel"
	"xsim/internal/procmodel"
	"xsim/internal/topology"
	"xsim/internal/vclock"
)

// parallelWorld builds a world on a windowed parallel engine with
// invariant checking enabled.
func parallelWorld(t *testing.T, n, workers int, failures fault.Schedule) *mpi.World {
	t.Helper()
	eng, err := core.New(core.Config{
		NumVPs: n, Workers: workers, Lookahead: vclock.Microsecond, Validate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	net := &netmodel.Model{
		Topo:           topology.NewFullyConnected(n),
		System:         netmodel.LinkParams{Latency: vclock.Microsecond, Bandwidth: 1e9, DetectionTimeout: 10 * vclock.Millisecond},
		OnNode:         netmodel.LinkParams{Latency: vclock.Microsecond, Bandwidth: 1e9, DetectionTimeout: 10 * vclock.Millisecond},
		EagerThreshold: 256 * 1024,
	}
	w, err := mpi.NewWorld(eng, mpi.WorldConfig{Net: net, Proc: procmodel.Paper()})
	if err != nil {
		t.Fatal(err)
	}
	if err := fault.Apply(w.Engine(), failures); err != nil {
		t.Fatal(err)
	}
	return w
}

// TestRevokeParallel runs the revoke-releases-blocked-operations scenario
// on the windowed engine: outcomes (terminations and final clocks) must
// match the sequential run at every worker count.
func TestRevokeParallel(t *testing.T) {
	const n = 4
	scenario := func(workers int) *core.Result {
		w := parallelWorld(t, n, workers, nil)
		res, err := w.Run(func(e *mpi.Env) {
			defer e.Finalize()
			c := e.World()
			c.SetErrorHandler(mpi.ErrorsReturn)
			if e.Rank() == 0 {
				e.Elapse(vclock.Millisecond)
				c.Revoke()
				return
			}
			if _, err := c.Recv(0, 99); !IsRevoked(err) {
				t.Errorf("workers=%d rank %d recv err = %v, want RevokedError", workers, e.Rank(), err)
			}
			if err := c.SendN(0, 1, 8); !IsRevoked(err) {
				t.Errorf("workers=%d rank %d send err = %v, want RevokedError", workers, e.Rank(), err)
			}
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Completed != n {
			t.Fatalf("workers=%d completed = %d (%+v)", workers, res.Completed, res)
		}
		return res
	}
	ref := scenario(1)
	for _, workers := range []int{2, 4} {
		got := scenario(workers)
		for r := 0; r < n; r++ {
			if got.FinalClocks[r] != ref.FinalClocks[r] || got.Deaths[r] != ref.Deaths[r] {
				t.Fatalf("workers=%d rank %d diverges: %v/%v vs sequential %v/%v",
					workers, r, got.FinalClocks[r], got.Deaths[r], ref.FinalClocks[r], ref.Deaths[r])
			}
		}
	}
}

// TestShrinkRecoveryParallel runs the full ULFM recovery sequence —
// failure, detection, revoke, shrink, collective on the shrunk
// communicator — on the windowed engine at several worker counts and
// requires sequential-identical outcomes.
func TestShrinkRecoveryParallel(t *testing.T) {
	const n = 5
	const deadRank = 2
	scenario := func(workers int) *core.Result {
		w := parallelWorld(t, n, workers, fault.Schedule{{Rank: deadRank, At: vclock.Time(vclock.Millisecond)}})
		res, err := w.Run(func(e *mpi.Env) {
			c := e.World()
			c.SetErrorHandler(mpi.ErrorsReturn)
			if e.Rank() == deadRank {
				e.Elapse(vclock.Hour)
				return
			}
			defer e.Finalize()
			if e.Rank() == 0 {
				if _, err := c.Recv(deadRank, 0); err == nil {
					t.Errorf("workers=%d: recv from dead rank should fail", workers)
				}
				c.Revoke()
			} else {
				if _, err := c.Recv(0, 99); !IsRevoked(err) {
					t.Errorf("workers=%d rank %d: %v", workers, e.Rank(), err)
				}
			}
			shrunk, err := c.Shrink()
			if err != nil {
				t.Errorf("workers=%d rank %d shrink: %v", workers, e.Rank(), err)
				return
			}
			if shrunk.Size() != n-1 {
				t.Errorf("workers=%d rank %d shrunk size = %d", workers, e.Rank(), shrunk.Size())
			}
			shrunk.SetErrorHandler(mpi.ErrorsReturn)
			sum, err := shrunk.Allreduce([]float64{1}, mpi.OpSum)
			if err != nil {
				t.Errorf("workers=%d rank %d allreduce: %v", workers, e.Rank(), err)
				return
			}
			if sum[0] != float64(n-1) {
				t.Errorf("workers=%d rank %d allreduce = %v", workers, e.Rank(), sum[0])
			}
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Failed != 1 || res.Completed != n-1 {
			t.Fatalf("workers=%d result = %+v", workers, res)
		}
		return res
	}
	ref := scenario(1)
	for _, workers := range []int{2, 4} {
		got := scenario(workers)
		for r := 0; r < n; r++ {
			if got.FinalClocks[r] != ref.FinalClocks[r] || got.Deaths[r] != ref.Deaths[r] {
				t.Fatalf("workers=%d rank %d diverges: %v/%v vs sequential %v/%v",
					workers, r, got.FinalClocks[r], got.Deaths[r], ref.FinalClocks[r], ref.Deaths[r])
			}
		}
	}
}
