package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Sum != 0 || s.Mean != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.N != 1 || s.Min != 7 || s.Max != 7 || s.Mean != 7 || s.Median != 7 || s.Mode != 7 || s.StdDev != 0 {
		t.Fatalf("single summary wrong: %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	// 1..5: mean 3, median 3, population stddev sqrt(2).
	s := Summarize([]float64{5, 3, 1, 2, 4})
	if s.Min != 1 || s.Max != 5 || !almostEqual(s.Mean, 3) || !almostEqual(s.Median, 3) {
		t.Fatalf("summary wrong: %+v", s)
	}
	if !almostEqual(s.StdDev, math.Sqrt(2)) {
		t.Fatalf("stddev = %v, want sqrt(2)", s.StdDev)
	}
}

func TestMedianEven(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 10})
	if !almostEqual(s.Median, 2.5) {
		t.Fatalf("median = %v, want 2.5", s.Median)
	}
}

func TestMode(t *testing.T) {
	s := Summarize([]float64{4, 4, 4, 1, 2, 2, 9})
	if s.Mode != 4 {
		t.Fatalf("mode = %v, want 4", s.Mode)
	}
	// Tie: smallest most-frequent value wins.
	s = Summarize([]float64{2, 2, 7, 7, 5})
	if s.Mode != 2 {
		t.Fatalf("tie mode = %v, want 2", s.Mode)
	}
}

func TestSummarizeInts(t *testing.T) {
	s := SummarizeInts([]int{1, 98, 17, 4, 4})
	if s.Min != 1 || s.Max != 98 || s.Mode != 4 || s.N != 5 {
		t.Fatalf("int summary wrong: %+v", s)
	}
}

func TestQuickSummaryInvariants(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		if s.Min != sorted[0] || s.Max != sorted[len(sorted)-1] {
			return false
		}
		if s.Mean < s.Min-1e-9 || s.Mean > s.Max+1e-9 {
			return false
		}
		if s.Median < s.Min-1e-9 || s.Median > s.Max+1e-9 {
			return false
		}
		return s.StdDev >= 0 && s.N == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"Field", "Value"}, [][]string{
		{"Victims", "100"},
		{"Injections", "2197"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Field") {
		t.Errorf("header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("separator wrong: %q", lines[1])
	}
	// Numeric cells right-align: "100" should be padded on the left to the
	// width of "Value".
	if !strings.Contains(lines[2], "  100") {
		t.Errorf("numeric alignment wrong: %q", lines[2])
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 10 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); !almostEqual(got, 5.5) {
		t.Errorf("p50 = %v, want 5.5", got)
	}
	if got := Percentile(xs, 90); !almostEqual(got, 9.1) {
		t.Errorf("p90 = %v, want 9.1", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
}

func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []int16, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		return Percentile(xs, pa) <= Percentile(xs, pb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{1, 1, 1, 1, 5, 9, 9}
	h := Histogram(xs, 4, 20)
	lines := strings.Split(strings.TrimRight(h, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 bins, got %d:\n%s", len(lines), h)
	}
	// The first bin holds the four 1s and owns the longest bar.
	if !strings.Contains(lines[0], "4") || !strings.Contains(lines[0], "████████████████████") {
		t.Errorf("first bin wrong: %q", lines[0])
	}
	if Histogram(nil, 4, 20) != "(empty)\n" {
		t.Error("empty histogram rendering wrong")
	}
	// Constant samples collapse into one populated bin without panicking.
	if h := Histogram([]float64{3, 3, 3}, 5, 10); !strings.Contains(h, "3") {
		t.Errorf("constant histogram: %q", h)
	}
}

func TestNumericCell(t *testing.T) {
	for s, want := range map[string]bool{
		"100":     true,
		"5,248 s": true,
		"1e-6":    true,
		"—":       true,
		"":        true,
		"Victims": false,
		"3.5x":    false,
	} {
		if got := numericCell(s); got != want {
			t.Errorf("numericCell(%q) = %v, want %v", s, got, want)
		}
	}
}
