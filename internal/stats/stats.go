// Package stats provides the summary statistics and fixed-width table
// rendering used by the experiment harnesses. The statistics mirror those
// reported in the paper: Table I reports min/max/mean/median/mode/stddev of
// injections-to-failure, and the simulator prints per-rank timing summaries
// (minimum, maximum, average) at shutdown.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds the descriptive statistics of a sample, matching the fields
// of Table I in the paper.
type Summary struct {
	N      int     // sample size
	Sum    float64 // sum of all observations
	Min    float64
	Max    float64
	Mean   float64
	Median float64
	Mode   float64 // smallest most-frequent value (observations rounded to integers)
	StdDev float64 // population standard deviation
}

// Summarize computes a Summary over xs. It returns the zero Summary for an
// empty sample.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[s.N-1]
	for _, x := range sorted {
		s.Sum += x
	}
	s.Mean = s.Sum / float64(s.N)
	if s.N%2 == 1 {
		s.Median = sorted[s.N/2]
	} else {
		s.Median = (sorted[s.N/2-1] + sorted[s.N/2]) / 2
	}
	s.Mode = mode(sorted)
	var ss float64
	for _, x := range sorted {
		d := x - s.Mean
		ss += d * d
	}
	s.StdDev = math.Sqrt(ss / float64(s.N))
	return s
}

// SummarizeInts computes a Summary over integer observations.
func SummarizeInts(xs []int) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// mode returns the smallest most-frequent value of a sorted sample, with
// observations rounded to the nearest integer (Table I counts discrete
// injection counts).
func mode(sorted []float64) float64 {
	best, bestCount := math.Round(sorted[0]), 0
	cur, curCount := math.Round(sorted[0]), 0
	for _, x := range sorted {
		r := math.Round(x)
		if r == cur {
			curCount++
		} else {
			cur, curCount = r, 1
		}
		if curCount > bestCount {
			best, bestCount = cur, curCount
		}
	}
	return best
}

// Table renders rows as a fixed-width text table with a header row and a
// separator, in the style of the paper's result tables. Column widths adapt
// to the widest cell. Numeric-looking cells are right-aligned.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				if numericCell(c) {
					fmt.Fprintf(&b, "%*s", widths[i], c)
				} else {
					fmt.Fprintf(&b, "%-*s", widths[i], c)
				}
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	total := 0
	for i, w := range widths {
		if i > 0 {
			total += 2
		}
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// Percentile returns the p-th percentile (0..100) of the sample using
// nearest-rank interpolation; it returns 0 for an empty sample.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Histogram renders a fixed-width text histogram of the sample over
// `buckets` equal-width bins, one line per bin with a proportional bar.
func Histogram(xs []float64, buckets, barWidth int) string {
	if len(xs) == 0 || buckets <= 0 {
		return "(empty)\n"
	}
	if barWidth <= 0 {
		barWidth = 40
	}
	s := Summarize(xs)
	width := (s.Max - s.Min) / float64(buckets)
	if width == 0 {
		width = 1
	}
	counts := make([]int, buckets)
	for _, x := range xs {
		b := int((x - s.Min) / width)
		if b >= buckets {
			b = buckets - 1
		}
		counts[b]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	for i, c := range counts {
		lo := s.Min + float64(i)*width
		hi := lo + width
		bar := 0
		if maxCount > 0 {
			bar = c * barWidth / maxCount
		}
		if c > 0 && bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&b, "%8.1f–%-8.1f %4d %s\n", lo, hi, c, strings.Repeat("█", bar))
	}
	return b.String()
}

// numericCell reports whether a cell looks like a number (possibly with
// units or separators), used for right-alignment.
func numericCell(s string) bool {
	if s == "" || s == "—" || s == "-" {
		return true
	}
	seenDigit := false
	for _, r := range s {
		switch {
		case r >= '0' && r <= '9':
			seenDigit = true
		case r == '.' || r == ',' || r == '-' || r == '+' || r == 'e' || r == 'E' || r == 's' || r == '%' || r == ' ':
			// allowed in numeric cells ("5,248 s", "1e-6", "50 %")
		default:
			return false
		}
	}
	return seenDigit
}
