// Package check carries the invariant-violation machinery behind the
// simulator's Validate mode: a structured Violation naming the VP, the
// event, and the virtual time at which an engine or MPI invariant broke,
// raised as a panic so the run stops at the first violation with a
// diagnostic dump instead of silently diverging.
//
// The checks themselves live next to the state they guard (internal/core,
// internal/mpi) and are compiled in behind a per-run flag; this package
// only defines how a violation is reported and recognised.
package check

import (
	"fmt"
	"strings"

	"xsim/internal/vclock"
)

// Violation describes one broken invariant. The engine surfaces it like
// any VP panic (the run's error contains the dump below); tests recover
// it directly via AsViolation.
type Violation struct {
	// Invariant is the short stable name of the broken invariant, e.g.
	// "window-horizon" or "posted-index".
	Invariant string
	// Rank is the VP the violation concerns, or a negative value when the
	// violation is not attributable to a single VP.
	Rank int
	// Time is the virtual time at which the violation was observed.
	Time vclock.Time
	// Event describes the event or work item involved, empty when none.
	Event string
	// Detail states what was expected and what was found.
	Detail string
}

// Error renders the diagnostic dump.
func (v *Violation) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "invariant violation [%s]", v.Invariant)
	if v.Rank >= 0 {
		fmt.Fprintf(&sb, " rank %d", v.Rank)
	}
	fmt.Fprintf(&sb, " at virtual time %v", v.Time)
	if v.Event != "" {
		fmt.Fprintf(&sb, "\n  event: %s", v.Event)
	}
	fmt.Fprintf(&sb, "\n  %s", v.Detail)
	return sb.String()
}

// Failf raises a Violation by panicking with it. rank may be negative for
// violations not attributable to a single VP; event may be empty.
func Failf(invariant string, rank int, at vclock.Time, event, format string, args ...any) {
	panic(&Violation{
		Invariant: invariant,
		Rank:      rank,
		Time:      at,
		Event:     event,
		Detail:    fmt.Sprintf(format, args...),
	})
}

// AsViolation extracts a *Violation from a recover() value.
func AsViolation(r any) (*Violation, bool) {
	v, ok := r.(*Violation)
	return v, ok
}
