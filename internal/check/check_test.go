package check

import (
	"strings"
	"testing"

	"xsim/internal/vclock"
)

func TestFailfPanicsWithViolation(t *testing.T) {
	defer func() {
		v, ok := AsViolation(recover())
		if !ok {
			t.Fatalf("recover did not yield a *Violation")
		}
		if v.Invariant != "clock-monotonic" || v.Rank != 3 {
			t.Fatalf("wrong violation fields: %+v", v)
		}
		msg := v.Error()
		for _, want := range []string{"clock-monotonic", "rank 3", "event: kind=7", "went backwards"} {
			if !strings.Contains(msg, want) {
				t.Errorf("dump %q missing %q", msg, want)
			}
		}
	}()
	Failf("clock-monotonic", 3, vclock.Time(42), "kind=7", "clock went backwards by %d", 5)
	t.Fatal("Failf returned")
}

func TestDumpOmitsNegativeRankAndEmptyEvent(t *testing.T) {
	v := &Violation{Invariant: "window-horizon", Rank: -1, Time: 7, Detail: "d"}
	msg := v.Error()
	if strings.Contains(msg, "rank") || strings.Contains(msg, "event:") {
		t.Fatalf("dump should omit rank/event: %q", msg)
	}
}

func TestAsViolationRejectsOtherPanics(t *testing.T) {
	if _, ok := AsViolation("boom"); ok {
		t.Fatal("AsViolation accepted a string")
	}
	if _, ok := AsViolation(nil); ok {
		t.Fatal("AsViolation accepted nil")
	}
}
