package runner

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestBackoffDelayDeterministicAndJittered(t *testing.T) {
	base := 100 * time.Millisecond
	// Deterministic: the same (seed, index, attempt) always yields the
	// same delay — campaigns stay reproducible with retries enabled.
	for attempt := 1; attempt <= 4; attempt++ {
		a := BackoffDelay(base, 7, 3, attempt)
		b := BackoffDelay(base, 7, 3, attempt)
		if a != b {
			t.Fatalf("attempt %d: %v != %v", attempt, a, b)
		}
	}
	// Jittered: different runs of the same campaign must not thundering-
	// herd; distinct (seed, index) pairs spread their delays.
	seen := map[time.Duration]bool{}
	for index := 0; index < 8; index++ {
		seen[BackoffDelay(base, 7, index, 1)] = true
	}
	if len(seen) < 6 {
		t.Fatalf("only %d distinct delays across 8 indices", len(seen))
	}
	// Every delay stays within the documented jitter band around
	// base·2^(attempt-1): [0.5, 1.5).
	for attempt := 1; attempt <= 3; attempt++ {
		want := base << (attempt - 1)
		d := BackoffDelay(base, 1, 1, attempt)
		if d < want/2 || d >= want+want/2 {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, d, want/2, want+want/2)
		}
	}
}

func TestBackoffDelayGrowsAndCaps(t *testing.T) {
	base := time.Second
	// The mean of the jitter band doubles per attempt; compare against
	// the band floor to tolerate jitter.
	prevFloor := time.Duration(0)
	for attempt := 1; attempt <= 5; attempt++ {
		floor := (base << (attempt - 1)) / 2
		if floor <= prevFloor {
			t.Fatalf("band floor not growing at attempt %d", attempt)
		}
		d := BackoffDelay(base, 9, 0, attempt)
		if d < floor {
			t.Fatalf("attempt %d: delay %v below band floor %v", attempt, d, floor)
		}
		prevFloor = floor
	}
	// Huge attempt counts cap at maxBackoff (less downward jitter)
	// instead of overflowing.
	for _, attempt := range []int{20, 40, 63, 1000} {
		d := BackoffDelay(base, 9, 0, attempt)
		if d > maxBackoff || d < maxBackoff/2 {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, maxBackoff/2, maxBackoff)
		}
	}
	// Zero base keeps retries immediate.
	if d := BackoffDelay(0, 9, 0, 3); d != 0 {
		t.Fatalf("zero base gave %v", d)
	}
}

func TestRunBackoffDelaysRetries(t *testing.T) {
	attempts := 0
	start := time.Now()
	tasks := []Task[int]{{
		Spec: Spec{Index: 0},
		Run: func(ctx context.Context) (int, error) {
			attempts++
			if attempts < 3 {
				return 0, MarkTransient(errors.New("flaky"))
			}
			return 1, nil
		},
	}}
	cfg := Config{Retries: 3, RetryBackoff: 20 * time.Millisecond, Pool: 1}
	if _, _, err := Run(context.Background(), cfg, tasks); err != nil {
		t.Fatal(err)
	}
	// Two backoffs at ≥ base/2 jitter floor each: at least 20 ms total.
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("retries completed in %v, expected backoff delays", elapsed)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
}

func TestRunBackoffHonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	tasks := []Task[int]{{
		Spec: Spec{Index: 0},
		Run: func(ctx context.Context) (int, error) {
			cancel() // fail after cancelling: the backoff sleep must cut short
			return 0, MarkTransient(errors.New("flaky"))
		},
	}}
	start := time.Now()
	cfg := Config{Retries: 3, RetryBackoff: time.Minute, Pool: 1}
	_, _, err := Run(ctx, cfg, tasks)
	if err == nil {
		t.Fatal("expected an error after cancellation")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled backoff still slept %v", elapsed)
	}
}

func TestRunSplitsQueueWaitFromRunWall(t *testing.T) {
	// One worker, two tasks: the second task's wait includes the first
	// task's run time, and the split shows up both in per-run progress
	// and the pooled stats.
	block := 30 * time.Millisecond
	tasks := []Task[int]{
		{Spec: Spec{Index: 0}, Run: func(ctx context.Context) (int, error) {
			time.Sleep(block)
			return 0, nil
		}},
		{Spec: Spec{Index: 1}, Run: func(ctx context.Context) (int, error) {
			return 1, nil
		}},
	}
	var started []Progress
	cfg := Config{Pool: 1, OnProgress: func(p Progress) {
		if p.State == StateStarted {
			started = append(started, p)
		}
	}}
	_, stats, err := Run(context.Background(), cfg, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if len(started) != 2 {
		t.Fatalf("started events = %d, want 2", len(started))
	}
	// Pool=1 runs tasks in order; the second run queued behind the
	// first's sleep.
	var second Progress
	for _, p := range started {
		if p.Spec.Index == 1 {
			second = p
		}
	}
	if second.Wait < block/2 {
		t.Fatalf("second run's queue wait = %v, want ≥ %v", second.Wait, block/2)
	}
	if stats.QueueWait < second.Wait {
		t.Fatalf("stats.QueueWait = %v < second run's wait %v", stats.QueueWait, second.Wait)
	}
}
