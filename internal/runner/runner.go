// Package runner is the campaign-orchestration engine: it executes many
// independent simulation runs across a bounded worker pool, the way the
// paper's evaluation is actually built — Table II's rank×failure grid, the
// checkpoint-interval sweep, and the restart chains are all campaigns of
// hundreds of runs that share nothing but a seed-derivation rule.
//
// The runner owns the concerns every driver used to reimplement (or skip):
//
//   - a bounded pool (default GOMAXPROCS, composing with each run's own
//     engine parallelism via PoolSize),
//   - context.Context cancellation and per-run deadlines,
//   - panic isolation — a crashing run becomes a typed *RunError carrying
//     the run's Spec instead of killing the whole campaign,
//   - bounded retry for transient harness errors,
//   - deterministic seed derivation (campaign seed + run index), so a
//     campaign's results are identical regardless of pool size or
//     completion order,
//   - streaming progress callbacks and aggregate Stats.
//
// Results are returned indexed by task position, never by completion
// order, which is what makes pool-size-independent digests possible.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Spec identifies one run of a campaign. It travels with every progress
// report and error so a failure deep in a grid names the cell it came
// from.
type Spec struct {
	// Index is the run's position in the campaign (0-based); results are
	// returned in Index order.
	Index int
	// Label names the run for humans ("mttf=3000s c=125 seed=2").
	Label string
	// Seed is the run's derived seed (informational; the task closure has
	// already captured it).
	Seed int64
}

// String renders the spec for error messages.
func (s Spec) String() string {
	if s.Label == "" {
		return fmt.Sprintf("run %d", s.Index)
	}
	return fmt.Sprintf("run %d (%s)", s.Index, s.Label)
}

// Task is one unit of campaign work: an independent run producing a T.
type Task[T any] struct {
	Spec Spec
	// Run executes the task. It must honour ctx (the simulator's engine
	// does, at window boundaries) and be safe to run concurrently with
	// other tasks — tasks must not share mutable state.
	Run func(ctx context.Context) (T, error)
}

// State is a run's lifecycle stage, as seen by progress callbacks.
type State int

const (
	// StateStarted means the run was handed to a pool worker.
	StateStarted State = iota
	// StateRetrying means an attempt failed with a transient error and
	// the run will be attempted again.
	StateRetrying
	// StateCompleted means the run finished successfully.
	StateCompleted
	// StateFailed means the run failed terminally (error, panic, or
	// cancellation).
	StateFailed
)

// String returns a human-readable state.
func (s State) String() string {
	switch s {
	case StateStarted:
		return "started"
	case StateRetrying:
		return "retrying"
	case StateCompleted:
		return "completed"
	case StateFailed:
		return "failed"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Progress is one streaming progress report. Callbacks are invoked
// serially (never concurrently), but from pool worker goroutines.
type Progress struct {
	Spec    Spec
	State   State
	Attempt int // 1-based attempt number
	// Err is the attempt's error for StateRetrying/StateFailed.
	Err error
	// Elapsed is the attempt's wall time (zero for StateStarted).
	Elapsed time.Duration
	// Wait is the run's queue wait: the wall time between the campaign
	// starting and this run's first attempt being handed to a pool
	// worker. Fairness metrics need it separated from Elapsed — a run
	// can spend seconds queued behind other tenants and milliseconds
	// executing.
	Wait time.Duration
	// Done, Failed, Total summarise the campaign so far: Done counts
	// finished runs (completed or failed), Failed the terminal failures.
	Done, Failed, Total int
}

// Stats aggregates a campaign's execution counters.
type Stats struct {
	// Started, Completed, Failed count runs by outcome; Started includes
	// runs that later failed. Skipped counts runs never started because
	// the campaign was cancelled first.
	Started, Completed, Failed, Skipped int
	// Retries counts extra attempts beyond each run's first.
	Retries int
	// Panics counts attempts that ended in a recovered panic.
	Panics int
	// Wall is the campaign's total wall-clock time.
	Wall time.Duration
	// RunWall sums every attempt's wall time — the serial-equivalent
	// cost; RunWall/Wall approximates the achieved pool speedup.
	RunWall time.Duration
	// QueueWait sums every started run's queue wait (campaign start to
	// first attempt). QueueWait/Started is the mean pool-queueing delay,
	// the half of the latency RunWall does not explain.
	QueueWait time.Duration
}

// Config parameterises a campaign execution.
type Config struct {
	// Pool is the maximum number of runs in flight (default: PoolSize's
	// composition of GOMAXPROCS with EngineWorkers).
	Pool int
	// EngineWorkers is each run's internal engine parallelism; the
	// default pool budget divides GOMAXPROCS by it so pool × engine
	// workers stays at the machine's parallelism.
	EngineWorkers int
	// RunTimeout, when positive, is each run's deadline; a run that
	// exceeds it fails with a cancellation error.
	RunTimeout time.Duration
	// Retries is the number of extra attempts for runs failing with a
	// transient error (see MarkTransient); terminal errors never retry.
	Retries int
	// RetryBackoff, when positive, is the base delay before the first
	// retry; attempt n waits RetryBackoff·2^(n-1) scaled by a seeded
	// jitter factor in [0.5, 1.5) derived from the run's spec, so the
	// delays are reproducible per run yet decorrelated across a
	// campaign. Zero keeps retries immediate (the historical
	// behaviour). Delays are capped at 30 s and cut short by
	// cancellation.
	RetryBackoff time.Duration
	// OnProgress, when set, receives serialized progress reports.
	OnProgress func(Progress)
	// Logf, when set, receives a one-line summary per completed or
	// failed run (a convenience when no OnProgress is installed).
	Logf func(format string, args ...any)
}

// PoolSize composes the campaign pool budget with each run's engine
// parallelism: an explicit pool wins; otherwise GOMAXPROCS is divided by
// the per-run engine workers so the total parallelism (pool × engine
// workers) matches the machine.
func PoolSize(pool, engineWorkers int) int {
	if pool > 0 {
		return pool
	}
	if engineWorkers < 1 {
		engineWorkers = 1
	}
	n := runtime.GOMAXPROCS(0) / engineWorkers
	if n < 1 {
		n = 1
	}
	return n
}

// DeriveSeed maps a campaign seed and a run index to the run's seed with
// a splitmix64 finalizer: consecutive indexes land far apart, and the
// derivation depends only on (campaign seed, index) — never on pool size
// or completion order — so campaigns are repeatable at any parallelism.
func DeriveSeed(campaignSeed int64, index int) int64 {
	z := uint64(campaignSeed) + uint64(index+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// RunError is the typed error a failing run becomes: it carries the run's
// spec, the attempt count, and the underlying cause, so a campaign error
// names the grid cell instead of killing the campaign anonymously.
type RunError struct {
	Spec     Spec
	Attempts int
	// Err is the final attempt's error; for a recovered panic it is a
	// *PanicError.
	Err error
}

// Error implements error.
func (e *RunError) Error() string {
	return fmt.Sprintf("runner: %s failed after %d attempt(s): %v", e.Spec, e.Attempts, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *RunError) Unwrap() error { return e.Err }

// PanicError is a run panic converted into an error by the pool's panic
// isolation.
type PanicError struct {
	Value any
	Stack string
}

// Error implements error.
func (e *PanicError) Error() string { return fmt.Sprintf("run panicked: %v", e.Value) }

// transientError marks an error as retryable.
type transientError struct{ err error }

func (t *transientError) Error() string { return t.err.Error() }
func (t *transientError) Unwrap() error { return t.err }

// MarkTransient wraps err so the pool's bounded retry applies to it.
// Deterministic simulation errors should stay terminal; this is for
// harness-level failures (resource exhaustion, flaky I/O) that a retry
// can plausibly clear.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err (or anything it wraps) was marked
// transient.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// Run executes the tasks across the pool and returns their results in
// task order. Individual run failures do not stop the campaign: the
// failed slots hold T's zero value and the returned error joins one
// *RunError per failure. Cancellation stops new launches, cancels
// in-flight runs, and is reported as a *RunError wrapping the context's
// error for every unfinished run it affected; already-completed results
// are kept.
func Run[T any](ctx context.Context, cfg Config, tasks []Task[T]) ([]T, Stats, error) {
	start := time.Now()
	results := make([]T, len(tasks))
	errs := make([]error, len(tasks))

	pool := PoolSize(cfg.Pool, cfg.EngineWorkers)
	if pool > len(tasks) {
		pool = len(tasks)
	}

	var (
		mu    sync.Mutex // guards stats, done/failed counters, progress serialization
		stats Stats
		done  int
	)
	report := func(p Progress) {
		if cfg.OnProgress == nil && cfg.Logf == nil {
			return
		}
		mu.Lock()
		p.Done = done
		p.Failed = stats.Failed
		p.Total = len(tasks)
		if cfg.OnProgress != nil {
			cfg.OnProgress(p)
		}
		if cfg.Logf != nil && (p.State == StateCompleted || p.State == StateFailed) {
			status := "ok"
			if p.State == StateFailed {
				status = fmt.Sprintf("FAILED: %v", p.Err)
			}
			cfg.Logf("[campaign %d/%d] %s: %s (%v)", p.Done, p.Total, p.Spec, status, p.Elapsed.Round(time.Millisecond))
		}
		mu.Unlock()
	}

	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(pool)
	for w := 0; w < pool; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				t := &tasks[i]
				wait := time.Since(start)
				mu.Lock()
				stats.Started++
				stats.QueueWait += wait
				mu.Unlock()
				res, attempts, runWall, err := runOne(ctx, cfg, t, wait, report)
				mu.Lock()
				stats.RunWall += runWall
				stats.Retries += attempts - 1
				if _, isPanic := asPanic(err); isPanic {
					stats.Panics++
				}
				if err != nil {
					stats.Failed++
					errs[i] = &RunError{Spec: t.Spec, Attempts: attempts, Err: err}
				} else {
					stats.Completed++
					results[i] = res
				}
				done++
				mu.Unlock()
				state := StateCompleted
				if err != nil {
					state = StateFailed
				}
				report(Progress{Spec: t.Spec, State: state, Attempt: attempts, Err: err, Elapsed: runWall, Wait: wait})
			}
		}()
	}

feed:
	for i := range tasks {
		select {
		case next <- i:
		case <-ctx.Done():
			// Unstarted tasks become skipped; their error names the
			// cancellation so callers can errors.Is(err, context.Canceled).
			mu.Lock()
			for j := i; j < len(tasks); j++ {
				stats.Skipped++
				errs[j] = &RunError{Spec: tasks[j].Spec, Attempts: 0, Err: context.Cause(ctx)}
			}
			mu.Unlock()
			break feed
		}
	}
	close(next)
	wg.Wait()

	stats.Wall = time.Since(start)
	return results, stats, errors.Join(errs...)
}

// runOne executes one task with per-attempt panic isolation, deadline,
// bounded transient retry, and backed-off re-attempts. It returns the
// result, the number of attempts, the summed attempt wall time, and the
// final error.
func runOne[T any](ctx context.Context, cfg Config, t *Task[T], wait time.Duration, report func(Progress)) (res T, attempts int, wall time.Duration, err error) {
	for attempts = 1; ; attempts++ {
		report(Progress{Spec: t.Spec, State: StateStarted, Attempt: attempts, Wait: wait})
		attemptStart := time.Now()
		res, err = runAttempt(ctx, cfg.RunTimeout, t)
		wall += time.Since(attemptStart)
		if err == nil || ctx.Err() != nil || !IsTransient(err) || attempts > cfg.Retries {
			return res, attempts, wall, err
		}
		report(Progress{Spec: t.Spec, State: StateRetrying, Attempt: attempts, Err: err, Elapsed: time.Since(attemptStart), Wait: wait})
		if !sleepBackoff(ctx, BackoffDelay(cfg.RetryBackoff, t.Spec.Seed, t.Spec.Index, attempts)) {
			// Cancelled mid-backoff: the transient error stands, and the
			// ctx.Err() check above ends the loop on the next iteration.
			return res, attempts, wall, err
		}
	}
}

// maxBackoff caps a single retry delay: exponential growth past tens of
// seconds only postpones the terminal failure report.
const maxBackoff = 30 * time.Second

// BackoffDelay is the pre-retry delay for the given attempt (1-based):
// base·2^(attempt-1) scaled by a jitter factor in [0.5, 1.5) derived
// deterministically from the run's seed and index via a splitmix64
// finalizer. A zero base means no delay. The derivation depends only on
// (base, seed, index, attempt) — never on pool size or wall time — so a
// re-run campaign backs off identically.
func BackoffDelay(base time.Duration, seed int64, index, attempt int) time.Duration {
	if base <= 0 || attempt < 1 {
		return 0
	}
	shift := attempt - 1
	if shift > 16 {
		shift = 16
	}
	d := base << shift
	if d <= 0 || d > maxBackoff {
		d = maxBackoff
	}
	// splitmix64 over (seed, index, attempt): the same mix DeriveSeed
	// uses, with the attempt folded in so consecutive retries of one run
	// jitter independently.
	z := uint64(seed) ^ uint64(index+1)*0x9E3779B97F4A7C15 ^ uint64(attempt)*0xBF58476D1CE4E5B9
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	// Map the top 53 bits to [0.5, 1.5).
	jitter := 0.5 + float64(z>>11)/float64(1<<53)
	if jittered := time.Duration(float64(d) * jitter); jittered < maxBackoff {
		return jittered
	}
	return maxBackoff
}

// sleepBackoff waits for d, returning false if ctx was cancelled first.
func sleepBackoff(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-timer.C:
		return true
	}
}

// runAttempt is one attempt: it applies the per-run deadline and converts
// a panic into a *PanicError instead of unwinding the pool worker.
func runAttempt[T any](ctx context.Context, timeout time.Duration, t *Task[T]) (res T, err error) {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, timeout,
			fmt.Errorf("runner: %s exceeded its %v deadline", t.Spec, timeout))
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: string(debug.Stack())}
		}
	}()
	return t.Run(ctx)
}

// asPanic extracts a *PanicError from err, if any.
func asPanic(err error) (*PanicError, bool) {
	var p *PanicError
	if errors.As(err, &p) {
		return p, true
	}
	return nil, false
}
