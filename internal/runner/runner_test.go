package runner

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunReturnsResultsInTaskOrder(t *testing.T) {
	const n = 50
	tasks := make([]Task[int], n)
	for i := range tasks {
		i := i
		tasks[i] = Task[int]{
			Spec: Spec{Index: i},
			Run: func(ctx context.Context) (int, error) {
				// Finish in scrambled order.
				time.Sleep(time.Duration((n-i)%7) * time.Millisecond)
				return i * i, nil
			},
		}
	}
	for _, pool := range []int{1, 3, 8} {
		res, stats, err := Run(context.Background(), Config{Pool: pool}, tasks)
		if err != nil {
			t.Fatalf("pool %d: %v", pool, err)
		}
		for i, v := range res {
			if v != i*i {
				t.Fatalf("pool %d: result[%d] = %d, want %d", pool, i, v, i*i)
			}
		}
		if stats.Completed != n || stats.Failed != 0 || stats.Started != n {
			t.Fatalf("pool %d: stats %+v", pool, stats)
		}
	}
}

func TestRunIsolatesPanics(t *testing.T) {
	tasks := []Task[string]{
		{Spec: Spec{Index: 0, Label: "ok"}, Run: func(ctx context.Context) (string, error) { return "fine", nil }},
		{Spec: Spec{Index: 1, Label: "boom"}, Run: func(ctx context.Context) (string, error) { panic("kaboom") }},
		{Spec: Spec{Index: 2, Label: "ok2"}, Run: func(ctx context.Context) (string, error) { return "also fine", nil }},
	}
	res, stats, err := Run(context.Background(), Config{Pool: 2}, tasks)
	if err == nil {
		t.Fatal("want an error for the panicking run")
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("error %v is not a *RunError", err)
	}
	if re.Spec.Index != 1 {
		t.Fatalf("RunError names index %d, want 1", re.Spec.Index)
	}
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "kaboom" {
		t.Fatalf("want a *PanicError carrying the panic value, got %v", err)
	}
	if res[0] != "fine" || res[2] != "also fine" {
		t.Fatalf("surviving results lost: %q", res)
	}
	if stats.Completed != 2 || stats.Failed != 1 || stats.Panics != 1 {
		t.Fatalf("stats %+v", stats)
	}
}

func TestRunRetriesTransientErrors(t *testing.T) {
	var attempts atomic.Int32
	tasks := []Task[int]{{
		Spec: Spec{Index: 0},
		Run: func(ctx context.Context) (int, error) {
			if attempts.Add(1) < 3 {
				return 0, MarkTransient(errors.New("flaky"))
			}
			return 42, nil
		},
	}}
	res, stats, err := Run(context.Background(), Config{Retries: 3}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 42 || attempts.Load() != 3 || stats.Retries != 2 {
		t.Fatalf("res %v attempts %d stats %+v", res, attempts.Load(), stats)
	}
}

func TestRunDoesNotRetryTerminalErrors(t *testing.T) {
	var attempts atomic.Int32
	terminal := errors.New("deterministic failure")
	tasks := []Task[int]{{
		Spec: Spec{Index: 0},
		Run: func(ctx context.Context) (int, error) {
			attempts.Add(1)
			return 0, terminal
		},
	}}
	_, _, err := Run(context.Background(), Config{Retries: 5}, tasks)
	if !errors.Is(err, terminal) {
		t.Fatalf("err %v does not wrap the terminal cause", err)
	}
	if attempts.Load() != 1 {
		t.Fatalf("terminal error was attempted %d times, want 1", attempts.Load())
	}
}

func TestRunRetryBudgetIsBounded(t *testing.T) {
	var attempts atomic.Int32
	tasks := []Task[int]{{
		Spec: Spec{Index: 0},
		Run: func(ctx context.Context) (int, error) {
			attempts.Add(1)
			return 0, MarkTransient(errors.New("always flaky"))
		},
	}}
	_, stats, err := Run(context.Background(), Config{Retries: 2}, tasks)
	if err == nil {
		t.Fatal("want failure after the retry budget")
	}
	if attempts.Load() != 3 || stats.Retries != 2 || stats.Failed != 1 {
		t.Fatalf("attempts %d stats %+v", attempts.Load(), stats)
	}
}

func TestRunCancellationSkipsAndCancels(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var startedRuns atomic.Int32
	tasks := make([]Task[int], 20)
	for i := range tasks {
		tasks[i] = Task[int]{
			Spec: Spec{Index: i},
			Run: func(ctx context.Context) (int, error) {
				if startedRuns.Add(1) == 1 {
					close(started)
				}
				<-ctx.Done()
				return 0, context.Cause(ctx)
			},
		}
	}
	go func() {
		<-started
		cancel()
	}()
	_, stats, err := Run(ctx, Config{Pool: 2}, tasks)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v does not wrap context.Canceled", err)
	}
	if stats.Skipped == 0 {
		t.Fatalf("expected skipped runs, stats %+v", stats)
	}
	if stats.Completed != 0 {
		t.Fatalf("no run should complete, stats %+v", stats)
	}
}

func TestRunTimeoutAppliesPerRun(t *testing.T) {
	tasks := []Task[int]{{
		Spec: Spec{Index: 0, Label: "slow"},
		Run: func(ctx context.Context) (int, error) {
			select {
			case <-ctx.Done():
				return 0, context.Cause(ctx)
			case <-time.After(5 * time.Second):
				return 1, nil
			}
		},
	}}
	start := time.Now()
	_, _, err := Run(context.Background(), Config{RunTimeout: 20 * time.Millisecond}, tasks)
	if err == nil {
		t.Fatal("want a deadline error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline did not cut the run short (%v)", elapsed)
	}
}

func TestRunProgressIsSerializedAndComplete(t *testing.T) {
	const n = 16
	var completed, started int
	tasks := make([]Task[int], n)
	for i := range tasks {
		tasks[i] = Task[int]{Spec: Spec{Index: i}, Run: func(ctx context.Context) (int, error) { return 0, nil }}
	}
	_, _, err := Run(context.Background(), Config{
		Pool: 4,
		OnProgress: func(p Progress) {
			// No mutex here: the runner promises serialized callbacks, so
			// -race flags any violation.
			switch p.State {
			case StateStarted:
				started++
			case StateCompleted:
				completed++
				if p.Total != n {
					t.Errorf("Total = %d, want %d", p.Total, n)
				}
			}
		},
	}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if started != n || completed != n {
		t.Fatalf("progress saw %d started, %d completed, want %d each", started, completed, n)
	}
}

func TestDeriveSeedDeterministicAndSpread(t *testing.T) {
	seen := make(map[int64]bool)
	for i := 0; i < 1000; i++ {
		s1 := DeriveSeed(133, i)
		s2 := DeriveSeed(133, i)
		if s1 != s2 {
			t.Fatalf("DeriveSeed not deterministic at index %d", i)
		}
		if seen[s1] {
			t.Fatalf("seed collision at index %d", i)
		}
		seen[s1] = true
	}
	if DeriveSeed(133, 0) == DeriveSeed(134, 0) {
		t.Fatal("different campaign seeds should derive different run seeds")
	}
}

func TestPoolSizeComposition(t *testing.T) {
	if got := PoolSize(7, 4); got != 7 {
		t.Fatalf("explicit pool ignored: %d", got)
	}
	maxprocs := runtime.GOMAXPROCS(0)
	if got := PoolSize(0, 1); got != maxprocs {
		t.Fatalf("default pool = %d, want GOMAXPROCS (%d)", got, maxprocs)
	}
	if got := PoolSize(0, 2*maxprocs); got != 1 {
		t.Fatalf("oversubscribed engine workers should clamp the pool to 1, got %d", got)
	}
}

func TestRunErrorNamesTheSpec(t *testing.T) {
	err := &RunError{Spec: Spec{Index: 3, Label: "mttf=3000 c=125"}, Attempts: 2, Err: errors.New("boom")}
	msg := err.Error()
	for _, want := range []string{"run 3", "mttf=3000 c=125", "2 attempt"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
}
