// Package procmodel provides the processor model that converts application
// work into simulated compute time. Mirroring the paper's configuration, a
// simulated compute node can be slowed down relative to a reference core
// (the paper runs the simulated node 1000× slower than a single 1.7 GHz AMD
// Opteron 6164 HE core to permit simulations with realistic failure
// frequencies while lessening native load).
package procmodel

import (
	"fmt"

	"xsim/internal/vclock"
)

// Model converts abstract work units ("ops") into virtual compute time.
// One op is one reference-core clock cycle's worth of work; an application
// that would retire W cycles on the reference core takes
// W / (ReferenceHz / Slowdown) simulated seconds on the modelled node.
type Model struct {
	// ReferenceHz is the clock rate of the reference core in Hz.
	ReferenceHz float64
	// Slowdown divides the effective rate of the simulated node relative
	// to the reference core. 1 means the node matches the reference core;
	// the paper's evaluation uses 1000.
	Slowdown float64
}

// Paper returns the processor model used in the paper's evaluation:
// a node operating 1000× slower than a 1.7 GHz Opteron core.
func Paper() Model {
	return Model{ReferenceHz: 1.7e9, Slowdown: 1000}
}

// Validate reports a configuration error, if any.
func (m Model) Validate() error {
	if m.ReferenceHz <= 0 {
		return fmt.Errorf("procmodel: ReferenceHz must be positive, got %g", m.ReferenceHz)
	}
	if m.Slowdown <= 0 {
		return fmt.Errorf("procmodel: Slowdown must be positive, got %g", m.Slowdown)
	}
	return nil
}

// EffectiveHz returns the simulated node's effective rate in ops/second.
func (m Model) EffectiveHz() float64 { return m.ReferenceHz / m.Slowdown }

// ComputeTime returns the virtual time consumed by ops work units.
func (m Model) ComputeTime(ops float64) vclock.Duration {
	if ops <= 0 {
		return 0
	}
	return vclock.FromSeconds(ops / m.EffectiveHz())
}

// Ops returns the work that fits into d virtual time, the inverse of
// ComputeTime.
func (m Model) Ops(d vclock.Duration) float64 {
	return d.Seconds() * m.EffectiveHz()
}

// ScaleNative converts natively measured execution time into simulated time
// by applying the slowdown factor. This mirrors xSim's handling of real
// application compute phases: native time is measured and scaled by the
// processor model.
func (m Model) ScaleNative(native vclock.Duration) vclock.Duration {
	return vclock.FromSeconds(native.Seconds() * m.Slowdown)
}

// String describes the model.
func (m Model) String() string {
	return fmt.Sprintf("%.3g Hz reference core, %.4gx slowdown (%.3g ops/s effective)",
		m.ReferenceHz, m.Slowdown, m.EffectiveHz())
}
