package procmodel

import (
	"math"
	"testing"
	"testing/quick"

	"xsim/internal/vclock"
)

func TestPaperModel(t *testing.T) {
	m := Paper()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := m.EffectiveHz(); got != 1.7e6 {
		t.Fatalf("effective rate = %g, want 1.7e6", got)
	}
}

func TestComputeTime(t *testing.T) {
	m := Model{ReferenceHz: 1e9, Slowdown: 1}
	// 1e9 ops at 1 GHz = 1 second.
	if d := m.ComputeTime(1e9); d != vclock.Second {
		t.Fatalf("ComputeTime = %v, want 1s", d)
	}
	// Slowing the node 10x makes the same work take 10 seconds.
	m.Slowdown = 10
	if d := m.ComputeTime(1e9); d != 10*vclock.Second {
		t.Fatalf("ComputeTime = %v, want 10s", d)
	}
}

func TestComputeTimeNonPositive(t *testing.T) {
	m := Paper()
	if m.ComputeTime(0) != 0 || m.ComputeTime(-5) != 0 {
		t.Fatal("non-positive work must take zero time")
	}
}

func TestOpsInverse(t *testing.T) {
	m := Paper()
	f := func(raw uint32) bool {
		ops := float64(raw%1e9) + 1
		back := m.Ops(m.ComputeTime(ops))
		return math.Abs(back-ops) < 1e-3*ops+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScaleNative(t *testing.T) {
	m := Model{ReferenceHz: 1.7e9, Slowdown: 1000}
	// 1 ms of native compute becomes 1 s of simulated compute.
	if d := m.ScaleNative(vclock.Millisecond); d != vclock.Second {
		t.Fatalf("ScaleNative = %v, want 1s", d)
	}
}

func TestValidate(t *testing.T) {
	for _, m := range []Model{
		{ReferenceHz: 0, Slowdown: 1},
		{ReferenceHz: 1e9, Slowdown: 0},
		{ReferenceHz: -1, Slowdown: 1},
	} {
		if m.Validate() == nil {
			t.Errorf("Validate(%+v) should fail", m)
		}
	}
}

func TestComputeTimeMonotone(t *testing.T) {
	m := Paper()
	f := func(a, b uint32) bool {
		x, y := float64(a), float64(b)
		if x > y {
			x, y = y, x
		}
		return m.ComputeTime(x) <= m.ComputeTime(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
