package fsmodel

import (
	"bytes"
	"testing"

	"xsim/internal/vclock"
)

func TestWriterChunkedRoundTrip(t *testing.T) {
	store := NewStore()
	w := store.Create("chunked")
	var want []byte
	for i := 0; i < 100; i++ {
		chunk := bytes.Repeat([]byte{byte(i)}, 37)
		if _, err := w.Write(chunk); err != nil {
			t.Fatal(err)
		}
		want = append(want, chunk...)
	}
	// The file is visible — and incomplete — while being written.
	data, complete, err := store.Open("chunked")
	if err != nil {
		t.Fatal(err)
	}
	if complete {
		t.Fatal("file complete before Commit")
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("mid-write contents diverged: %d bytes, want %d", len(data), len(want))
	}
	// Mutating the opened copy must not corrupt the store.
	if len(data) > 0 {
		data[0] ^= 0xFF
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	data, complete, err = store.Open("chunked")
	if err != nil {
		t.Fatal(err)
	}
	if !complete || !bytes.Equal(data, want) {
		t.Fatalf("committed contents diverged (complete=%v, %d bytes)", complete, len(data))
	}
}

// BenchmarkWriterAppend pins the chunked-append cost: each op writes 1 MiB
// in 4 KiB chunks. The old implementation re-copied the whole buffer into
// the store on every chunk (O(n²) bytes per file); the fix shares the
// writer's buffer with the store under the lock, making appends amortized
// O(1).
func BenchmarkWriterAppend(b *testing.B) {
	chunk := make([]byte, 4096)
	const chunks = 256 // 1 MiB per file
	b.SetBytes(int64(len(chunk) * chunks))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		store := NewStore()
		w := store.Create("bench")
		for c := 0; c < chunks; c++ {
			if _, err := w.Write(chunk); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestHierarchyValidate(t *testing.T) {
	if err := (Hierarchy{}).Validate(); err != nil {
		t.Fatalf("empty hierarchy: %v", err)
	}
	if err := PaperTieredFS().Validate(); err != nil {
		t.Fatalf("paper hierarchy: %v", err)
	}
	bad := Hierarchy{{Name: "node", Volatile: true}}
	if err := bad.Validate(); err == nil {
		t.Fatal("volatile last tier accepted")
	}
	bad = Hierarchy{{Name: "node", Capacity: -1}, {Name: "pfs"}}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative capacity accepted")
	}
	bad = Hierarchy{{Name: "node", Model: Model{WriteBandwidth: -1}}, {Name: "pfs"}}
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid tier model accepted")
	}
}

func TestAggregateBandwidthContention(t *testing.T) {
	m := Model{WriteBandwidth: 1e9, AggregateWriteBandwidth: 4e9,
		ReadBandwidth: 2e9, AggregateReadBandwidth: 8e9}
	const n = 1 << 20
	// One client, or few enough that the aggregate share exceeds the
	// per-client bandwidth: the per-client rate governs.
	if got, want := m.WriteCostAmong(n, 1), m.WriteCost(n); got != want {
		t.Fatalf("1 client: %v, want %v", got, want)
	}
	if got, want := m.WriteCostAmong(n, 4), m.WriteCost(n); got != want {
		t.Fatalf("4 clients under aggregate: %v, want %v", got, want)
	}
	// Enough clients saturate the backplane: each gets aggregate/clients.
	if got, want := m.WriteCostAmong(n, 8), vclock.FromSeconds(float64(n)/5e8); got != want {
		t.Fatalf("8 clients: %v, want %v", got, want)
	}
	if got, want := m.ReadCostAmong(n, 16), vclock.FromSeconds(float64(n)/5e8); got != want {
		t.Fatalf("16 readers: %v, want %v", got, want)
	}
	// A zero model stays free at any client count.
	if got := (Model{}).WriteCostAmong(n, 1<<20); got != 0 {
		t.Fatalf("zero model charged %v", got)
	}
}

func TestPlaceTierSpillAndUsage(t *testing.T) {
	h := Hierarchy{
		{Name: "node", Capacity: 100, Volatile: true},
		{Name: "pfs"},
	}
	store := NewStore()
	if got := store.PlaceTier(h, 0, 60); got != 0 {
		t.Fatalf("first placement at tier %d, want 0", got)
	}
	w := store.CreateAt("a", 0, 0, 60)
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := store.Usage(0, 0); got != 60 {
		t.Fatalf("usage %d, want 60", got)
	}
	// The next 60 bytes would exceed the 100-byte node tier: spill to PFS.
	if got := store.PlaceTier(h, 0, 60); got != 1 {
		t.Fatalf("over-capacity placement at tier %d, want 1", got)
	}
	// Another rank's capacity is independent.
	if got := store.PlaceTier(h, 1, 60); got != 0 {
		t.Fatalf("other owner's placement at tier %d, want 0", got)
	}
	// Deleting the file releases the capacity.
	store.Delete("a")
	if got := store.Usage(0, 0); got != 0 {
		t.Fatalf("usage after delete %d, want 0", got)
	}
	if got := store.PlaceTier(h, 0, 60); got != 0 {
		t.Fatalf("post-delete placement at tier %d, want 0", got)
	}
	// Recreating a placed file under a new tier moves its charge.
	store.CreateAt("b", 0, 2, 40)
	store.CreateAt("b", 1, 2, 70)
	if got := store.Usage(0, 2); got != 0 {
		t.Fatalf("old tier still charged %d", got)
	}
	if got := store.Usage(1, 2); got != 70 {
		t.Fatalf("new tier charged %d, want 70", got)
	}
}

func TestNearestCopyAndResolveFailure(t *testing.T) {
	h := Hierarchy{
		{Name: "node", Volatile: true},
		{Name: "bb"},
		{Name: "pfs"},
	}
	store := NewStore()
	w := store.CreateAt("ckpt", 0, 3, 10)
	if _, err := w.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	t100 := vclock.TimeFromSeconds(100)
	t200 := vclock.TimeFromSeconds(200)
	store.AddDrain("ckpt", 1, t100)
	store.AddDrain("ckpt", 2, t200)

	// Origin alive: the node copy is immediately available.
	if tier, at, ok := store.NearestCopy("ckpt", vclock.TimeFromSeconds(50)); !ok || tier != 0 || at != 0 {
		t.Fatalf("origin alive: tier=%d at=%v ok=%v", tier, at, ok)
	}

	// The owner fails at t=150: the bb drain (t=100) completed, the pfs
	// drain (t=200) was still in flight and is lost with its source.
	store.ResolveFailure(h, 3, vclock.TimeFromSeconds(150))
	if got := store.TierOf("ckpt"); got != -1 {
		t.Fatalf("lost origin still reports tier %d", got)
	}
	if !store.Exists("ckpt") {
		t.Fatal("file with a completed drain was deleted")
	}
	if tier, at, ok := store.NearestCopy("ckpt", vclock.TimeFromSeconds(150)); !ok || tier != 1 || at != t100 {
		t.Fatalf("after failure: tier=%d at=%v ok=%v, want bb@100s", tier, at, ok)
	}
	// A reader whose clock is still before the drain completion sees the
	// future availability time.
	if tier, at, ok := store.NearestCopy("ckpt", vclock.TimeFromSeconds(10)); !ok || tier != 1 || at != t100 {
		t.Fatalf("pre-drain reader: tier=%d at=%v ok=%v", tier, at, ok)
	}
	// The pfs drain never lands, even long after its scheduled time.
	if tier, _, ok := store.NearestCopy("ckpt", vclock.TimeFromSeconds(1e6)); !ok || tier != 1 {
		t.Fatalf("lost pfs drain resurfaced: tier=%d ok=%v", tier, ok)
	}
	// The surviving copy's contents are still readable.
	data, complete, err := store.Open("ckpt")
	if err != nil || !complete || string(data) != "0123456789" {
		t.Fatalf("surviving copy: %q complete=%v err=%v", data, complete, err)
	}
}

func TestResolveFailureWithoutDrainsDeletes(t *testing.T) {
	h := Hierarchy{{Name: "node", Volatile: true}, {Name: "pfs"}}
	store := NewStore()
	store.CreateAt("mine", 0, 1, 50)
	store.CreateAt("theirs", 0, 2, 50)
	store.CreateAt("durable", 1, 1, 50)
	// A drain that had not completed at the failure is lost too.
	store.AddDrain("mine", 1, vclock.TimeFromSeconds(100))
	store.ResolveFailure(h, 1, vclock.TimeFromSeconds(10))

	if store.Exists("mine") {
		t.Fatal("volatile copy with only in-flight drains survived its owner")
	}
	if got := store.Usage(0, 1); got != 0 {
		t.Fatalf("lost file still charged: %d", got)
	}
	if !store.Exists("theirs") {
		t.Fatal("another owner's file was resolved away")
	}
	if !store.Exists("durable") {
		t.Fatal("non-volatile file was resolved away")
	}
	if tier, _, ok := store.NearestCopy("durable", 0); !ok || tier != 1 {
		t.Fatalf("durable file: tier=%d ok=%v", tier, ok)
	}
}
