package fsmodel

import (
	"errors"
	"testing"
	"testing/quick"

	"xsim/internal/vclock"
)

func TestZeroModelIsFree(t *testing.T) {
	var m Model
	if m.MetadataCost() != 0 || m.WriteCost(1<<20) != 0 || m.ReadCost(1<<20) != 0 {
		t.Fatal("zero model must charge nothing")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPaperPFSCosts(t *testing.T) {
	m := PaperPFS()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// 1 GB at 1 GB/s = 1 s.
	if got := m.WriteCost(1e9); got != vclock.Second {
		t.Fatalf("WriteCost = %v", got)
	}
	// 2 GB at 2 GB/s = 1 s.
	if got := m.ReadCost(2e9); got != vclock.Second {
		t.Fatalf("ReadCost = %v", got)
	}
	if got := m.MetadataCost(); got != vclock.Millisecond {
		t.Fatalf("MetadataCost = %v", got)
	}
}

func TestValidateErrors(t *testing.T) {
	for _, m := range []Model{
		{MetadataLatency: -1},
		{WriteBandwidth: -1},
		{ReadBandwidth: -1},
	} {
		if m.Validate() == nil {
			t.Errorf("Validate(%+v) should fail", m)
		}
	}
}

func TestCreateWriteCommitOpen(t *testing.T) {
	s := NewStore()
	w := s.Create("ckpt.0")
	if _, err := w.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	// Before commit, the file exists but is incomplete (corrupted if a
	// failure strikes now).
	if !s.Exists("ckpt.0") || s.Complete("ckpt.0") {
		t.Fatal("pre-commit state wrong")
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	data, complete, err := s.Open("ckpt.0")
	if err != nil || !complete || string(data) != "hello world" {
		t.Fatalf("Open = %q, %v, %v", data, complete, err)
	}
	if w.Len() != 11 || w.Name() != "ckpt.0" {
		t.Fatal("writer accessors wrong")
	}
}

func TestIncompleteFileVisible(t *testing.T) {
	s := NewStore()
	w := s.Create("ckpt.partial")
	if _, err := w.Write([]byte("partial data")); err != nil {
		t.Fatal(err)
	}
	// Never committed: simulates a process failure during checkpointing.
	data, complete, err := s.Open("ckpt.partial")
	if err != nil {
		t.Fatal(err)
	}
	if complete {
		t.Fatal("uncommitted file must be incomplete")
	}
	if string(data) != "partial data" {
		t.Fatalf("partial contents = %q", data)
	}
}

func TestDoubleCommitAndWriteAfterCommit(t *testing.T) {
	s := NewStore()
	w := s.Create("f")
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err == nil {
		t.Error("double commit should fail")
	}
	if _, err := w.Write([]byte("x")); err == nil {
		t.Error("write after commit should fail")
	}
}

func TestCommitDeletedFile(t *testing.T) {
	s := NewStore()
	w := s.Create("f")
	s.Delete("f")
	if err := w.Commit(); err == nil {
		t.Error("commit of deleted file should fail")
	}
}

func TestOpenMissing(t *testing.T) {
	s := NewStore()
	_, _, err := s.Open("nope")
	if !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
}

func TestDeleteIdempotent(t *testing.T) {
	s := NewStore()
	s.Create("f").Commit()
	s.Delete("f")
	s.Delete("f") // no-op
	if s.Exists("f") {
		t.Fatal("file should be gone")
	}
}

func TestListAndLen(t *testing.T) {
	s := NewStore()
	for _, n := range []string{"ckpt.500.r2", "ckpt.500.r0", "ckpt.250.r1", "other"} {
		w := s.Create(n)
		w.Commit()
	}
	got := s.List("ckpt.500.")
	if len(got) != 2 || got[0] != "ckpt.500.r0" || got[1] != "ckpt.500.r2" {
		t.Fatalf("List = %v", got)
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Size("other") != 0 || s.Size("missing") != -1 {
		t.Fatal("Size wrong")
	}
}

func TestCreateTruncates(t *testing.T) {
	s := NewStore()
	w := s.Create("f")
	w.Write([]byte("old contents"))
	w.Commit()
	w2 := s.Create("f")
	if s.Complete("f") {
		t.Fatal("re-created file must be incomplete again")
	}
	if s.Size("f") != 0 {
		t.Fatal("re-created file must be empty")
	}
	w2.Write([]byte("new"))
	w2.Commit()
	data, _, _ := s.Open("f")
	if string(data) != "new" {
		t.Fatalf("contents = %q", data)
	}
}

func TestOpenReturnsCopy(t *testing.T) {
	s := NewStore()
	w := s.Create("f")
	w.Write([]byte("abc"))
	w.Commit()
	data, _, _ := s.Open("f")
	data[0] = 'X'
	again, _, _ := s.Open("f")
	if string(again) != "abc" {
		t.Fatal("Open must return a copy")
	}
}

func TestQuickCostsMonotone(t *testing.T) {
	m := PaperPFS()
	f := func(a, b uint32) bool {
		x, y := int(a%1e9), int(b%1e9)
		if x > y {
			x, y = y, x
		}
		return m.WriteCost(x) <= m.WriteCost(y) && m.ReadCost(x) <= m.ReadCost(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStoreRoundTrip(t *testing.T) {
	s := NewStore()
	f := func(name string, contents []byte) bool {
		if name == "" {
			return true
		}
		w := s.Create(name)
		if _, err := w.Write(contents); err != nil {
			return false
		}
		if err := w.Commit(); err != nil {
			return false
		}
		data, complete, err := s.Open(name)
		return err == nil && complete && string(data) == string(contents)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
