// Package fsmodel provides the simulated parallel file system used for
// application-level checkpoint/restart. It has two halves:
//
//   - Store: the persistent contents of the simulated file system. A Store
//     outlives individual simulation runs, so checkpoints written before an
//     abort are visible to the restarted application — exactly like a real
//     parallel file system outliving an application crash. Files written by
//     a process that failed before committing remain in an incomplete state,
//     which is how the paper's "incomplete or corrupted checkpoint" failure
//     modes arise.
//
//   - Model: the cost model (metadata latency, read/write bandwidth). The
//     paper notes its file system model was a work in progress and excludes
//     checkpoint I/O overhead from the Table II experiments; Model therefore
//     supports a disabled mode in which all operations are free, plus a
//     full cost mode used by the checkpoint-I/O ablation.
package fsmodel

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"xsim/internal/vclock"
)

// Model is the file-system cost model. The zero Model charges no time for
// any operation (matching the paper's Table II configuration).
type Model struct {
	// MetadataLatency is charged for each open, create, commit, and
	// delete operation.
	MetadataLatency vclock.Duration
	// WriteBandwidth and ReadBandwidth are per-client bandwidths in
	// bytes per second; zero means infinitely fast.
	WriteBandwidth float64
	ReadBandwidth  float64
	// AggregateWriteBandwidth and AggregateReadBandwidth cap the file
	// system's total throughput across all concurrent clients, in bytes
	// per second; zero means unlimited. When n clients write at once
	// (the checkpoint phase), each one's effective bandwidth is the
	// smaller of its per-client bandwidth and the aggregate share — the
	// contention that breaks the zero-cost assumption at 32k ranks.
	AggregateWriteBandwidth float64
	AggregateReadBandwidth  float64
}

// PaperPFS returns a plausible parallel-file-system cost model used by the
// checkpoint-I/O ablation: 1 ms metadata operations, 1 GB/s writes and
// 2 GB/s reads per client.
func PaperPFS() Model {
	return Model{
		MetadataLatency: vclock.Millisecond,
		WriteBandwidth:  1e9,
		ReadBandwidth:   2e9,
	}
}

// Validate reports a configuration error, if any.
func (m Model) Validate() error {
	if m.MetadataLatency < 0 {
		return fmt.Errorf("fsmodel: MetadataLatency must be non-negative")
	}
	if m.WriteBandwidth < 0 || m.ReadBandwidth < 0 {
		return fmt.Errorf("fsmodel: bandwidths must be non-negative")
	}
	if m.AggregateWriteBandwidth < 0 || m.AggregateReadBandwidth < 0 {
		return fmt.Errorf("fsmodel: aggregate bandwidths must be non-negative")
	}
	return nil
}

// MetadataCost returns the virtual time of one metadata operation.
func (m Model) MetadataCost() vclock.Duration { return m.MetadataLatency }

// WriteCost returns the virtual time of one uncontended client writing n
// bytes.
func (m Model) WriteCost(n int) vclock.Duration { return m.WriteCostAmong(n, 1) }

// ReadCost returns the virtual time of one uncontended client reading n
// bytes.
func (m Model) ReadCost(n int) vclock.Duration { return m.ReadCostAmong(n, 1) }

// WriteCostAmong returns the virtual time of writing n bytes while clients
// processes write concurrently: the per-client bandwidth capped by an even
// share of the aggregate.
func (m Model) WriteCostAmong(n, clients int) vclock.Duration {
	return cost(n, effectiveBW(m.WriteBandwidth, m.AggregateWriteBandwidth, clients))
}

// ReadCostAmong returns the virtual time of reading n bytes while clients
// processes read concurrently.
func (m Model) ReadCostAmong(n, clients int) vclock.Duration {
	return cost(n, effectiveBW(m.ReadBandwidth, m.AggregateReadBandwidth, clients))
}

// effectiveBW combines a per-client bandwidth with an even share of the
// aggregate; zero means unlimited on either axis.
func effectiveBW(perClient, aggregate float64, clients int) float64 {
	bw := perClient
	if aggregate > 0 && clients > 1 {
		share := aggregate / float64(clients)
		if bw == 0 || share < bw {
			bw = share
		}
	}
	return bw
}

// cost converts n bytes at bw bytes/second into virtual time (0 = free).
func cost(n int, bw float64) vclock.Duration {
	if n <= 0 || bw == 0 {
		return 0
	}
	return vclock.FromSeconds(float64(n) / bw)
}

// Tier is one level of a hierarchical checkpoint storage system: its own
// cost model plus the capacity and volatility that distinguish node-local
// memory from a burst buffer from the parallel file system.
type Tier struct {
	// Name labels the tier in reports ("node", "bb", "pfs").
	Name string
	// Model is the tier's cost model (metadata latency, per-client and
	// aggregate bandwidths).
	Model
	// Capacity is the per-owner capacity in bytes (0 = unbounded): a
	// write that would push one rank's resident bytes past it spills to
	// the next tier down.
	Capacity int
	// Volatile marks storage that dies with the owning process —
	// node-local memory. A failed rank's volatile copies (and their
	// in-flight drains) are lost; copies already drained to deeper
	// non-volatile tiers survive.
	Volatile bool
}

// Hierarchy is an ordered multi-tier storage system, fastest (and most
// volatile) tier first, most durable tier last. An empty hierarchy means
// flat single-tier storage under the plain Model.
type Hierarchy []Tier

// Validate reports a configuration error, if any.
func (h Hierarchy) Validate() error {
	if len(h) == 0 {
		return nil
	}
	for i, t := range h {
		if err := t.Model.Validate(); err != nil {
			return fmt.Errorf("fsmodel: tier %d (%s): %w", i, t.Name, err)
		}
		if t.Capacity < 0 {
			return fmt.Errorf("fsmodel: tier %d (%s): Capacity must be non-negative", i, t.Name)
		}
	}
	if h[len(h)-1].Volatile {
		return fmt.Errorf("fsmodel: the last (most durable) tier must not be volatile")
	}
	return nil
}

// PaperTieredFS returns the three-tier hierarchy used by the
// checkpoint-I/O ablation, following the node-local → burst-buffer → PFS
// structure of scalable multi-level checkpointing systems: a volatile
// node-local tier (fast, dies with the process), a burst-buffer tier, and
// the parallel file system with a shared aggregate bandwidth that 32k
// concurrent writers must split.
func PaperTieredFS() Hierarchy {
	return Hierarchy{
		{
			Name: "node",
			Model: Model{
				MetadataLatency: 10 * vclock.Microsecond,
				WriteBandwidth:  5e9,
				ReadBandwidth:   5e9,
			},
			Capacity: 4 << 30, // 4 GiB of node memory set aside for checkpoints
			Volatile: true,
		},
		{
			Name: "bb",
			Model: Model{
				MetadataLatency:         100 * vclock.Microsecond,
				WriteBandwidth:          1e9,
				ReadBandwidth:           2e9,
				AggregateWriteBandwidth: 1e12,
				AggregateReadBandwidth:  2e12,
			},
		},
		{
			Name: "pfs",
			Model: Model{
				MetadataLatency:         vclock.Millisecond,
				WriteBandwidth:          1e9,
				ReadBandwidth:           2e9,
				AggregateWriteBandwidth: 256e9,
				AggregateReadBandwidth:  512e9,
			},
		},
	}
}

// PaperPFSShared returns the flat parallel-file-system model of the
// ablation's flat arm: PaperPFS per-client parameters plus the same
// aggregate bandwidth cap as PaperTieredFS's PFS tier, so the two arms
// differ only in the hierarchy, not in the disk system behind it.
func PaperPFSShared() Model {
	m := PaperPFS()
	m.AggregateWriteBandwidth = 256e9
	m.AggregateReadBandwidth = 512e9
	return m
}

// drain records one asynchronous copy of a file to a deeper tier: the
// copy exists at tier from virtual time at on. Drain completion is a lazy
// timed event — recorded when the write commits, consulted whenever a
// reader asks which tiers hold the file.
type drain struct {
	tier int
	at   vclock.Time
}

// file is the stored state of one simulated file.
type file struct {
	data     []byte
	complete bool
	// tier is the origin tier the file was written to (0 in flat
	// stores); owner is the writing rank (-1 = unowned) and size the
	// declared virtual size, both used by capacity accounting and
	// failure resolution.
	tier  int
	owner int
	size  int
	// lost marks an origin copy destroyed by its owner's failure
	// (volatile tier); the file then survives only through completed
	// drains.
	lost   bool
	drains []drain
}

// usageKey addresses one rank's resident bytes on one tier.
type usageKey struct {
	tier, owner int
}

// Store holds the persistent contents of the simulated file system. It is
// safe for concurrent use by the parallel engine's partitions.
type Store struct {
	mu    sync.Mutex
	files map[string]*file
	// usage tracks declared bytes per (tier, owner) for the hierarchy's
	// capacity/spill decisions; nil until the first tiered create.
	usage map[usageKey]int
}

// NewStore returns an empty simulated file system.
func NewStore() *Store {
	return &Store{files: make(map[string]*file)}
}

// Writer is an open simulated file being written. It is not safe for
// concurrent use; each simulated process writes its own files.
type Writer struct {
	store *Store
	name  string
	buf   []byte
	done  bool
}

// Create creates (or truncates) name and returns a Writer. The file exists
// immediately but stays incomplete until Commit; a process failure between
// Create and Commit therefore leaves a corrupted file behind, and a failure
// before Create leaves the file missing — the two checkpoint failure modes
// the paper's application distinguishes.
func (s *Store) Create(name string) *Writer {
	return s.CreateAt(name, 0, -1, 0)
}

// CreateAt is Create with tier placement: the file originates at the
// given tier, owned by the writing rank, with size declared virtual bytes
// charged against the owner's capacity on that tier (synthetic checkpoint
// files declare their modelled size without materialising it).
func (s *Store) CreateAt(name string, tier, owner, size int) *Writer {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.files[name]; ok {
		s.uncharge(old)
	}
	f := &file{tier: tier, owner: owner, size: size}
	s.files[name] = f
	s.charge(f)
	return &Writer{store: s, name: name}
}

// charge and uncharge maintain the per-(tier, owner) capacity accounting;
// both are called with the store lock held.
func (s *Store) charge(f *file) {
	if f.size == 0 {
		return
	}
	if s.usage == nil {
		s.usage = make(map[usageKey]int)
	}
	s.usage[usageKey{f.tier, f.owner}] += f.size
}

func (s *Store) uncharge(f *file) {
	if f.size == 0 || s.usage == nil {
		return
	}
	s.usage[usageKey{f.tier, f.owner}] -= f.size
}

// Usage returns owner's declared resident bytes on tier.
func (s *Store) Usage(tier, owner int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.usage[usageKey{tier, owner}]
}

// PlaceTier picks the tier a new size-byte file of owner should originate
// at: the first tier of h with room under its per-owner capacity, falling
// through to the last (durable, unbounded-by-convention) tier.
func (s *Store) PlaceTier(h Hierarchy, owner, size int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	for t := 0; t < len(h)-1; t++ {
		if h[t].Capacity == 0 || s.usage[usageKey{t, owner}]+size <= h[t].Capacity {
			return t
		}
	}
	return len(h) - 1
}

// Write appends p to the file. It never fails; the simulated PFS has
// unbounded capacity. Appends are amortized O(1): the store shares the
// writer's buffer (readers copy out under the same lock, and appends only
// ever touch bytes past every previously published length).
func (w *Writer) Write(p []byte) (int, error) {
	if w.done {
		return 0, fmt.Errorf("fsmodel: write to committed file %q", w.name)
	}
	w.store.mu.Lock()
	w.buf = append(w.buf, p...)
	if f, ok := w.store.files[w.name]; ok {
		f.data = w.buf
	}
	w.store.mu.Unlock()
	return len(p), nil
}

// Commit marks the file complete. Further writes fail.
func (w *Writer) Commit() error {
	if w.done {
		return fmt.Errorf("fsmodel: double commit of %q", w.name)
	}
	w.done = true
	w.store.mu.Lock()
	defer w.store.mu.Unlock()
	f, ok := w.store.files[w.name]
	if !ok {
		return fmt.Errorf("fsmodel: commit of deleted file %q", w.name)
	}
	f.complete = true
	return nil
}

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Name returns the file's name.
func (w *Writer) Name() string { return w.name }

// ErrNotExist is returned when opening a missing file.
var ErrNotExist = fmt.Errorf("fsmodel: file does not exist")

// Open returns a copy of the file's contents and whether it was committed
// completely. Opening a missing file returns ErrNotExist.
func (s *Store) Open(name string) (data []byte, complete bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.files[name]
	if !ok {
		return nil, false, fmt.Errorf("%w: %q", ErrNotExist, name)
	}
	return append([]byte(nil), f.data...), f.complete, nil
}

// Exists reports whether name exists (complete or not).
func (s *Store) Exists(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.files[name]
	return ok
}

// Complete reports whether name exists and was committed.
func (s *Store) Complete(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.files[name]
	return ok && f.complete
}

// Size returns the current size of name in bytes, or -1 if it is missing.
func (s *Store) Size(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.files[name]
	if !ok {
		return -1
	}
	return len(f.data)
}

// Delete removes name (every tier's copy). Deleting a missing file is a
// no-op, mirroring the idempotent cleanup scripts the paper's application
// uses.
func (s *Store) Delete(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.files[name]; ok {
		s.uncharge(f)
		delete(s.files, name)
	}
}

// AddDrain records an asynchronous staging copy: name is (or will be)
// present at tier from virtual time at on. The caller computes at from the
// deeper tier's write cost; nothing happens at that time — readers simply
// start seeing the copy once their clocks pass it (a lazy timed event).
func (s *Store) AddDrain(name string, tier int, at vclock.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.files[name]; ok {
		f.drains = append(f.drains, drain{tier: tier, at: at})
	}
}

// TierOf returns name's origin tier, or -1 if the file is missing or its
// origin copy was lost with its owner.
func (s *Store) TierOf(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.files[name]
	if !ok || f.lost {
		return -1
	}
	return f.tier
}

// NearestCopy returns the fastest (lowest-index) tier holding a copy of
// name as of virtual time now, and the time that copy became (or becomes)
// available: when no copy exists yet — the origin was lost and the only
// surviving drain is still in flight — it returns the earliest future
// drain with at > now. ok is false when the file is missing or no copy
// will ever exist.
func (s *Store) NearestCopy(name string, now vclock.Time) (tier int, at vclock.Time, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, okf := s.files[name]
	if !okf {
		return 0, 0, false
	}
	if !f.lost {
		return f.tier, 0, true
	}
	best := -1
	var bestAt vclock.Time
	var soonest vclock.Time
	haveFuture := false
	for _, d := range f.drains {
		if d.at <= now {
			if best == -1 || d.tier < best {
				best, bestAt = d.tier, d.at
			}
		} else if !haveFuture || d.at < soonest {
			soonest, haveFuture = d.at, true
			tier = d.tier
		}
	}
	if best >= 0 {
		return best, bestAt, true
	}
	if haveFuture {
		return tier, soonest, true
	}
	return 0, 0, false
}

// ResolveFailure applies the buddy-copy failure mode for one failed rank:
// every file the rank owns on a volatile tier loses its origin copy, and
// the drains still in flight at the time of failure (their source died
// with the node) never complete. Files left with no surviving copy are
// removed; files that had finished draining survive on the deeper tiers.
// It is bookkeeping between runs, outside simulated time.
func (s *Store) ResolveFailure(h Hierarchy, owner int, at vclock.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, f := range s.files {
		if f.owner != owner || f.lost {
			continue
		}
		if f.tier >= len(h) || !h[f.tier].Volatile {
			continue
		}
		kept := f.drains[:0]
		for _, d := range f.drains {
			if d.at <= at {
				kept = append(kept, d)
			}
		}
		f.drains = kept
		f.lost = true
		if len(f.drains) == 0 {
			s.uncharge(f)
			delete(s.files, name)
		}
	}
}

// List returns the names of all files with the given prefix, sorted.
func (s *Store) List(prefix string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var names []string
	for name := range s.files {
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// Len returns the number of files in the store.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.files)
}
