// Package fsmodel provides the simulated parallel file system used for
// application-level checkpoint/restart. It has two halves:
//
//   - Store: the persistent contents of the simulated file system. A Store
//     outlives individual simulation runs, so checkpoints written before an
//     abort are visible to the restarted application — exactly like a real
//     parallel file system outliving an application crash. Files written by
//     a process that failed before committing remain in an incomplete state,
//     which is how the paper's "incomplete or corrupted checkpoint" failure
//     modes arise.
//
//   - Model: the cost model (metadata latency, read/write bandwidth). The
//     paper notes its file system model was a work in progress and excludes
//     checkpoint I/O overhead from the Table II experiments; Model therefore
//     supports a disabled mode in which all operations are free, plus a
//     full cost mode used by the checkpoint-I/O ablation.
package fsmodel

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"xsim/internal/vclock"
)

// Model is the file-system cost model. The zero Model charges no time for
// any operation (matching the paper's Table II configuration).
type Model struct {
	// MetadataLatency is charged for each open, create, commit, and
	// delete operation.
	MetadataLatency vclock.Duration
	// WriteBandwidth and ReadBandwidth are per-client bandwidths in
	// bytes per second; zero means infinitely fast.
	WriteBandwidth float64
	ReadBandwidth  float64
}

// PaperPFS returns a plausible parallel-file-system cost model used by the
// checkpoint-I/O ablation: 1 ms metadata operations, 1 GB/s writes and
// 2 GB/s reads per client.
func PaperPFS() Model {
	return Model{
		MetadataLatency: vclock.Millisecond,
		WriteBandwidth:  1e9,
		ReadBandwidth:   2e9,
	}
}

// Validate reports a configuration error, if any.
func (m Model) Validate() error {
	if m.MetadataLatency < 0 {
		return fmt.Errorf("fsmodel: MetadataLatency must be non-negative")
	}
	if m.WriteBandwidth < 0 || m.ReadBandwidth < 0 {
		return fmt.Errorf("fsmodel: bandwidths must be non-negative")
	}
	return nil
}

// MetadataCost returns the virtual time of one metadata operation.
func (m Model) MetadataCost() vclock.Duration { return m.MetadataLatency }

// WriteCost returns the virtual time of writing n bytes.
func (m Model) WriteCost(n int) vclock.Duration {
	if n <= 0 || m.WriteBandwidth == 0 {
		return 0
	}
	return vclock.FromSeconds(float64(n) / m.WriteBandwidth)
}

// ReadCost returns the virtual time of reading n bytes.
func (m Model) ReadCost(n int) vclock.Duration {
	if n <= 0 || m.ReadBandwidth == 0 {
		return 0
	}
	return vclock.FromSeconds(float64(n) / m.ReadBandwidth)
}

// file is the stored state of one simulated file.
type file struct {
	data     []byte
	complete bool
}

// Store holds the persistent contents of the simulated file system. It is
// safe for concurrent use by the parallel engine's partitions.
type Store struct {
	mu    sync.Mutex
	files map[string]*file
}

// NewStore returns an empty simulated file system.
func NewStore() *Store {
	return &Store{files: make(map[string]*file)}
}

// Writer is an open simulated file being written. It is not safe for
// concurrent use; each simulated process writes its own files.
type Writer struct {
	store *Store
	name  string
	buf   []byte
	done  bool
}

// Create creates (or truncates) name and returns a Writer. The file exists
// immediately but stays incomplete until Commit; a process failure between
// Create and Commit therefore leaves a corrupted file behind, and a failure
// before Create leaves the file missing — the two checkpoint failure modes
// the paper's application distinguishes.
func (s *Store) Create(name string) *Writer {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.files[name] = &file{complete: false}
	return &Writer{store: s, name: name}
}

// Write appends p to the file. It never fails; the simulated PFS has
// unbounded capacity.
func (w *Writer) Write(p []byte) (int, error) {
	if w.done {
		return 0, fmt.Errorf("fsmodel: write to committed file %q", w.name)
	}
	w.buf = append(w.buf, p...)
	w.store.mu.Lock()
	if f, ok := w.store.files[w.name]; ok {
		f.data = append([]byte(nil), w.buf...)
	}
	w.store.mu.Unlock()
	return len(p), nil
}

// Commit marks the file complete. Further writes fail.
func (w *Writer) Commit() error {
	if w.done {
		return fmt.Errorf("fsmodel: double commit of %q", w.name)
	}
	w.done = true
	w.store.mu.Lock()
	defer w.store.mu.Unlock()
	f, ok := w.store.files[w.name]
	if !ok {
		return fmt.Errorf("fsmodel: commit of deleted file %q", w.name)
	}
	f.complete = true
	return nil
}

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Name returns the file's name.
func (w *Writer) Name() string { return w.name }

// ErrNotExist is returned when opening a missing file.
var ErrNotExist = fmt.Errorf("fsmodel: file does not exist")

// Open returns a copy of the file's contents and whether it was committed
// completely. Opening a missing file returns ErrNotExist.
func (s *Store) Open(name string) (data []byte, complete bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.files[name]
	if !ok {
		return nil, false, fmt.Errorf("%w: %q", ErrNotExist, name)
	}
	return append([]byte(nil), f.data...), f.complete, nil
}

// Exists reports whether name exists (complete or not).
func (s *Store) Exists(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.files[name]
	return ok
}

// Complete reports whether name exists and was committed.
func (s *Store) Complete(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.files[name]
	return ok && f.complete
}

// Size returns the current size of name in bytes, or -1 if it is missing.
func (s *Store) Size(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.files[name]
	if !ok {
		return -1
	}
	return len(f.data)
}

// Delete removes name. Deleting a missing file is a no-op, mirroring the
// idempotent cleanup scripts the paper's application uses.
func (s *Store) Delete(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.files, name)
}

// List returns the names of all files with the given prefix, sorted.
func (s *Store) List(prefix string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var names []string
	for name := range s.files {
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// Len returns the number of files in the store.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.files)
}
