package checkpoint

import (
	"encoding/binary"
	"errors"
	"testing"

	"xsim/internal/fsmodel"
)

// Regression: a synthetic checkpoint header with the payload-size top bit
// set decodes to a negative PayloadSize; before validation it reached
// ReadCost() as a negative size and charged a negative read time.
func TestDecodeRejectsNegativeHeaderFields(t *testing.T) {
	cases := map[string][]byte{
		"payload-size":   header(flagSynthetic, 10, 0, 1<<63, 0),
		"iteration":      header(0, 1<<63, 0, 0, 0),
		"rank":           header(0, 0, 1<<63, 0, 0),
		"base-iteration": header(flagSynthetic|flagIncremental, 10, 0, 0, 1<<63),
	}
	for name, data := range cases {
		if _, _, err := decode(data, true); !errors.Is(err, ErrCorrupted) {
			t.Errorf("%s: decode = %v, want ErrCorrupted", name, err)
		}
	}
}

// Regression: an exit-time file with the top bit set decoded to a
// negative start clock, which the engine rejects at the next restart;
// LoadExitTime must treat it as corrupt instead.
func TestLoadExitTimeRejectsNegativeTime(t *testing.T) {
	store := fsmodel.NewStore()
	w := store.Create(exitTimeFile)
	if _, err := w.Write(binary.LittleEndian.AppendUint64(nil, 1<<63)); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if tm, ok := LoadExitTime(store); ok {
		t.Fatalf("LoadExitTime accepted negative time %d", tm)
	}
}
