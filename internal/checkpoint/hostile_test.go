package checkpoint

import (
	"encoding/binary"
	"errors"
	"testing"

	"xsim/internal/fsmodel"
)

// Regression: a synthetic checkpoint header with the payload-size top bit
// set decodes to a negative PayloadSize; before validation it reached
// ReadCost() as a negative size and charged a negative read time.
func TestDecodeRejectsNegativeHeaderFields(t *testing.T) {
	cases := map[string][]byte{
		"payload-size":   header(flagSynthetic, 10, 0, 1<<63, 0),
		"iteration":      header(0, 1<<63, 0, 0, 0),
		"rank":           header(0, 0, 1<<63, 0, 0),
		"base-iteration": header(flagSynthetic|flagIncremental, 10, 0, 0, 1<<63),
	}
	for name, data := range cases {
		if _, _, err := decode(data, true); !errors.Is(err, ErrCorrupted) {
			t.Errorf("%s: decode = %v, want ErrCorrupted", name, err)
		}
	}
}

// Regression: decode accepted an incremental checkpoint whose base
// iteration was at or above its own iteration — a self- or
// forward-referential chain link that can never restore. Only ChainValid
// rejected it, so FS.Read would happily return a checkpoint that the
// restart machinery could not use.
func TestDecodeRejectsForwardBase(t *testing.T) {
	hostile := map[string][]byte{
		"base-equals-iteration": header(flagSynthetic|flagIncremental, 50, 0, 0, 50),
		"base-above-iteration":  header(flagSynthetic|flagIncremental, 50, 0, 0, 51),
	}
	for name, data := range hostile {
		if _, _, err := decode(data, true); !errors.Is(err, ErrCorrupted) {
			t.Errorf("%s: decode = %v, want ErrCorrupted", name, err)
		}
	}
	// A well-formed delta (base strictly below) still decodes.
	meta, _, err := decode(header(flagSynthetic|flagIncremental, 50, 0, 0, 49), true)
	if err != nil {
		t.Fatalf("valid delta rejected: %v", err)
	}
	if !meta.Incremental || meta.BaseIteration != 49 {
		t.Fatalf("valid delta decoded as %+v", meta)
	}
	// A non-incremental header ignores the base field entirely.
	if _, _, err := decode(header(flagSynthetic, 50, 0, 0, 0), true); err != nil {
		t.Fatalf("full checkpoint rejected: %v", err)
	}
}

// Regression: an exit-time file with the top bit set decoded to a
// negative start clock, which the engine rejects at the next restart;
// LoadExitTime must treat it as corrupt instead.
func TestLoadExitTimeRejectsNegativeTime(t *testing.T) {
	store := fsmodel.NewStore()
	w := store.Create(exitTimeFile)
	if _, err := w.Write(binary.LittleEndian.AppendUint64(nil, 1<<63)); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if tm, ok := LoadExitTime(store); ok {
		t.Fatalf("LoadExitTime accepted negative time %d", tm)
	}
}
