// Package checkpoint implements application-level checkpoint/restart on
// top of the simulated parallel file system, following the structure of
// the paper's heat application: each rank periodically writes a checkpoint
// file containing the application's configuration and current data, a
// global barrier follows so the previous checkpoint set can be deleted
// safely, and on restart the application loads the last valid checkpoint —
// deleting corrupted files (present but missing information) while a
// cleanup pass outside the application (the paper's shell script) removes
// incomplete sets (files missing entirely due to a failure during
// checkpointing).
//
// The package also persists the simulated application exit time across
// runs (the paper's xSim extension for continuous virtual timing after an
// abort and restart).
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"xsim/internal/fsmodel"
	"xsim/internal/mpi"
	"xsim/internal/vclock"
)

// magic identifies checkpoint files.
var magic = [4]byte{'X', 'C', 'K', 'P'}

const headerLen = 4 + 4 + 4 + 8 + 8 + 8 + 8 // magic, version, flags, iteration, rank, payload length, base iteration

// version is the checkpoint format version.
const version = 1

// flagSynthetic marks a checkpoint whose payload bytes were not stored:
// large-scale modelled experiments charge the write cost of the full
// payload without materialising it (like the payload-free messages of the
// MPI layer).
const flagSynthetic = 1 << 0

// flagIncremental marks a delta checkpoint: it holds only the data changed
// since its base iteration, so restoring it requires the base checkpoint
// (and any intermediate deltas) as well — the incremental/differential
// checkpointing technique of the paper's related work.
const flagIncremental = 1 << 1

// ErrCorrupted reports a checkpoint file that exists but misses
// information (the paper's "corrupted checkpoint").
var ErrCorrupted = errors.New("checkpoint: corrupted checkpoint file")

// Meta describes a checkpoint file.
type Meta struct {
	// Iteration is the application iteration the checkpoint captures.
	Iteration int
	// Rank is the writing process's rank.
	Rank int
	// PayloadSize is the checkpoint payload size in bytes. For synthetic
	// checkpoints (WriteSized) the size is recorded but the bytes are
	// not stored.
	PayloadSize int
	// Synthetic reports whether the payload bytes were omitted.
	Synthetic bool
	// Incremental reports whether this is a delta checkpoint, and
	// BaseIteration names the checkpoint it builds on (the previous full
	// checkpoint or delta).
	Incremental   bool
	BaseIteration int
}

// FileName returns the checkpoint file name of one rank at one iteration.
func FileName(prefix string, iteration, rank int) string {
	return fmt.Sprintf("%s.ckpt.%d.r%d", prefix, iteration, rank)
}

// setPrefix returns the common prefix of one iteration's checkpoint set.
func setPrefix(prefix string, iteration int) string {
	return fmt.Sprintf("%s.ckpt.%d.", prefix, iteration)
}

// FS gives one simulated process timed access to the simulated parallel
// file system: operations advance the process's virtual clock according to
// the file-system cost model, and a process failure mid-write leaves a
// corrupted (incomplete) file behind.
type FS struct {
	env     *mpi.Env
	store   *fsmodel.Store
	model   fsmodel.Model
	hier    fsmodel.Hierarchy
	clients int
}

// NewFS returns the process's file-system handle; the world must have been
// configured with a file-system store.
func NewFS(env *mpi.Env) (*FS, error) {
	store := env.FSStore()
	if store == nil {
		return nil, errors.New("checkpoint: world has no file-system store")
	}
	return &FS{
		env:     env,
		store:   store,
		model:   env.FSModel(),
		hier:    env.FSHierarchy(),
		clients: env.Size(),
	}, nil
}

// Store returns the underlying simulated file system.
func (fs *FS) Store() *fsmodel.Store { return fs.store }

// Tiered reports whether the world was configured with a multi-tier
// storage hierarchy (staged writes and tier-aware reads) rather than the
// flat single-tier cost model.
func (fs *FS) Tiered() bool { return len(fs.hier) > 0 }

// Write writes one rank's checkpoint: header, then payload, committed at
// the end. The virtual write time is charged *between* creating the file
// and committing it, so a process failure during the write leaves the file
// present but incomplete — exactly the paper's corrupted-checkpoint
// failure mode.
func (fs *FS) Write(prefix string, meta Meta, payload []byte) error {
	meta.PayloadSize = len(payload)
	meta.Synthetic = false
	return fs.write(prefix, meta, payload)
}

// WriteSized writes a synthetic checkpoint: the header records a payload
// of size bytes and the write charges the corresponding virtual time, but
// the bytes are not materialised. Large-scale modelled experiments use it
// the way the MPI layer uses payload-free messages.
func (fs *FS) WriteSized(prefix string, meta Meta, size int) error {
	meta.PayloadSize = size
	meta.Synthetic = true
	meta.Incremental = false
	return fs.write(prefix, meta, nil)
}

// WriteIncremental writes a delta checkpoint holding only the data changed
// since baseIteration (which must itself be restorable). The virtual write
// time covers only the delta, which is incremental checkpointing's entire
// point; restoring requires the whole chain back to a full checkpoint.
func (fs *FS) WriteIncremental(prefix string, meta Meta, baseIteration int, delta []byte) error {
	meta.PayloadSize = len(delta)
	meta.Synthetic = false
	meta.Incremental = true
	meta.BaseIteration = baseIteration
	return fs.write(prefix, meta, delta)
}

// WriteIncrementalSized is WriteIncremental with a synthetic payload of
// deltaSize bytes, for modelled experiments.
func (fs *FS) WriteIncrementalSized(prefix string, meta Meta, baseIteration, deltaSize int) error {
	meta.PayloadSize = deltaSize
	meta.Synthetic = true
	meta.Incremental = true
	meta.BaseIteration = baseIteration
	return fs.write(prefix, meta, nil)
}

func (fs *FS) write(prefix string, meta Meta, payload []byte) error {
	name := FileName(prefix, meta.Iteration, meta.Rank)
	size := headerLen + meta.PayloadSize
	var w *fsmodel.Writer
	tier := fs.model
	if fs.Tiered() {
		// Staged write: the checkpoint commits to the fastest tier with
		// room (usually node-local memory) at that tier's cost; drains to
		// the deeper tiers are scheduled after Commit.
		t := fs.store.PlaceTier(fs.hier, meta.Rank, size)
		tier = fs.hier[t].Model
		fs.env.Elapse(tier.MetadataCost())
		w = fs.store.CreateAt(name, t, meta.Rank, size)
	} else {
		fs.env.Elapse(tier.MetadataCost())
		w = fs.store.Create(name)
	}
	var flags uint32
	if meta.Synthetic {
		flags |= flagSynthetic
	}
	if meta.Incremental {
		flags |= flagIncremental
	}
	hdr := make([]byte, 0, headerLen)
	hdr = append(hdr, magic[:]...)
	hdr = binary.LittleEndian.AppendUint32(hdr, version)
	hdr = binary.LittleEndian.AppendUint32(hdr, flags)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(meta.Iteration))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(meta.Rank))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(meta.PayloadSize))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(meta.BaseIteration))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	// The write cost elapses while the file is incomplete: a failure
	// activating here corrupts the checkpoint.
	fs.env.Elapse(tier.WriteCostAmong(size, fs.clients))
	if _, err := w.Write(payload); err != nil {
		return err
	}
	fs.env.Elapse(tier.MetadataCost())
	if err := w.Commit(); err != nil {
		return err
	}
	if fs.Tiered() {
		fs.scheduleDrains(name, size)
	}
	return nil
}

// scheduleDrains records the asynchronous staging of a committed file down
// the hierarchy: each deeper tier's copy completes one write (at that
// tier's shared cost) after the previous one, overlapping the
// application's subsequent compute. A failure of the owner before a drain
// completes loses that drain (the source copy died with the node) — the
// buddy-copy failure mode resolved by Store.ResolveFailure.
func (fs *FS) scheduleDrains(name string, size int) {
	origin := fs.store.TierOf(name)
	if origin < 0 {
		return
	}
	at := fs.env.Now()
	for q := origin + 1; q < len(fs.hier); q++ {
		at = at.Add(fs.hier[q].MetadataCost() + fs.hier[q].WriteCostAmong(size, fs.clients))
		fs.store.AddDrain(name, q, at)
	}
}

// Read loads and validates one rank's checkpoint. It returns ErrCorrupted
// (wrapped) for files that exist but miss information, and
// fsmodel.ErrNotExist (wrapped) for missing files.
func (fs *FS) Read(prefix string, iteration, rank int) (Meta, []byte, error) {
	name := FileName(prefix, iteration, rank)
	tier, wait := fs.readGate(name)
	if wait > 0 {
		fs.env.Sleep(wait)
	}
	return fs.readWithTier(name, tier, iteration, rank)
}

// readGate resolves which tier a read of name is served from and how long
// the reader must wait first: when the only surviving copy is a drain
// still in flight, the read blocks until it lands (interruptible — a
// failure can strike mid-wait). Splitting the gate from the read body
// lets program-mode restores park on the wait instead of sleeping.
func (fs *FS) readGate(name string) (tier fsmodel.Model, wait vclock.Duration) {
	tier = fs.model
	if fs.Tiered() {
		// Read from the fastest tier holding a copy.
		t, at, ok := fs.store.NearestCopy(name, fs.env.Now())
		if ok {
			if now := fs.env.Now(); at > now {
				wait = at.Sub(now)
			}
			tier = fs.hier[t].Model
		}
	}
	return tier, wait
}

// readWithTier is the body of Read after the tier gate: metadata charge,
// open, decode, read charge, validation.
func (fs *FS) readWithTier(name string, tier fsmodel.Model, iteration, rank int) (Meta, []byte, error) {
	fs.env.Elapse(tier.MetadataCost())
	data, complete, err := fs.store.Open(name)
	if err != nil {
		return Meta{}, nil, err
	}
	meta, payload, err := decode(data, complete)
	if err == nil {
		fs.env.Elapse(tier.ReadCostAmong(headerLen+meta.PayloadSize, fs.clients))
	} else {
		fs.env.Elapse(tier.ReadCostAmong(len(data), fs.clients))
	}
	if err != nil {
		return Meta{}, nil, fmt.Errorf("%w: %s", err, name)
	}
	if meta.Iteration != iteration || meta.Rank != rank {
		return Meta{}, nil, fmt.Errorf("%w: %s has meta %+v", ErrCorrupted, name, meta)
	}
	return meta, payload, nil
}

// ChargeRestore charges the virtual time of restoring iteration's
// checkpoint for rank without materialising payloads: the whole chain of
// delta checkpoints back to a full one is read, each file from the fastest
// tier holding a copy. Modelled-mode restarts use it the way WriteSized
// models payload-free checkpoint writes.
func (fs *FS) ChargeRestore(prefix string, rank, iteration int) error {
	for hops := 0; hops < 1000; hops++ { // bound against base-pointer cycles
		meta, _, err := fs.Read(prefix, iteration, rank)
		if err != nil {
			return err
		}
		if !meta.Incremental {
			return nil
		}
		iteration = meta.BaseIteration
	}
	return fmt.Errorf("%w: restore chain from iteration %d too long", ErrCorrupted, iteration)
}

// RestoreState carries one checkpoint restore across program steps: the
// step form of Read (chargeOnly=false, one file, payload kept) and of
// ChargeRestore (chargeOnly=true, the whole delta chain, costs only).
// The only blocking point — waiting for an in-flight drain to land — is
// parked on instead of slept through. Zero value ready after Begin;
// reused restore after restore.
type RestoreState struct {
	prefix     string
	rank       int
	iteration  int
	chargeOnly bool

	hops    int
	gated   bool
	name    string
	tier    fsmodel.Model
	wait    vclock.Duration
	sl      mpi.SleepState
	meta    Meta
	payload []byte
}

// Begin arms a restore of iteration's checkpoint for rank.
func (rs *RestoreState) Begin(prefix string, rank, iteration int, chargeOnly bool) {
	*rs = RestoreState{prefix: prefix, rank: rank, iteration: iteration, chargeOnly: chargeOnly}
}

// Meta returns the last read file's metadata after RestoreStep reports
// done (for chargeOnly chains, the full checkpoint ending the chain).
func (rs *RestoreState) Meta() Meta { return rs.meta }

// Payload returns the requested checkpoint's payload after a
// chargeOnly=false RestoreStep reports done.
func (rs *RestoreState) Payload() []byte { return rs.payload }

// RestoreStep advances the restore; call it from every program step until
// it reports done, returning the park value meanwhile. Errors are the
// same as Read's.
func (fs *FS) RestoreStep(rs *RestoreState) (done bool, park any, err error) {
	for {
		if rs.hops >= 1000 { // bound against base-pointer cycles
			return true, nil, fmt.Errorf("%w: restore chain from iteration %d too long", ErrCorrupted, rs.iteration)
		}
		if !rs.gated {
			rs.name = FileName(rs.prefix, rs.iteration, rs.rank)
			rs.tier, rs.wait = fs.readGate(rs.name)
			rs.gated = true
		}
		if rs.wait > 0 {
			done, park := fs.env.SleepStep(&rs.sl, rs.wait)
			if !done {
				return false, park, nil
			}
			rs.wait = 0
		}
		meta, payload, err := fs.readWithTier(rs.name, rs.tier, rs.iteration, rs.rank)
		if err != nil {
			return true, nil, err
		}
		rs.meta, rs.payload = meta, payload
		rs.gated = false
		if !rs.chargeOnly || !meta.Incremental {
			return true, nil, nil
		}
		rs.iteration = meta.BaseIteration
		rs.hops++
	}
}

// Delete removes one rank's checkpoint file (idempotent).
func (fs *FS) Delete(prefix string, iteration, rank int) {
	name := FileName(prefix, iteration, rank)
	tier := fs.model
	if fs.Tiered() {
		t := fs.store.TierOf(name)
		if t < 0 {
			t = 0
		}
		tier = fs.hier[t].Model
	}
	fs.env.Elapse(tier.MetadataCost())
	fs.store.Delete(name)
}

// decode parses and validates a checkpoint file.
func decode(data []byte, complete bool) (Meta, []byte, error) {
	if !complete {
		return Meta{}, nil, fmt.Errorf("%w (uncommitted)", ErrCorrupted)
	}
	if len(data) < headerLen {
		return Meta{}, nil, fmt.Errorf("%w (truncated header)", ErrCorrupted)
	}
	if string(data[:4]) != string(magic[:]) {
		return Meta{}, nil, fmt.Errorf("%w (bad magic)", ErrCorrupted)
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != version {
		return Meta{}, nil, fmt.Errorf("%w (version %d)", ErrCorrupted, v)
	}
	flags := binary.LittleEndian.Uint32(data[8:])
	meta := Meta{
		Iteration:     int(binary.LittleEndian.Uint64(data[12:])),
		Rank:          int(binary.LittleEndian.Uint64(data[20:])),
		PayloadSize:   int(binary.LittleEndian.Uint64(data[28:])),
		BaseIteration: int(binary.LittleEndian.Uint64(data[36:])),
		Synthetic:     flags&flagSynthetic != 0,
		Incremental:   flags&flagIncremental != 0,
	}
	// All header counters are non-negative by construction; a corrupt file
	// with a top bit set decodes to a negative int, and a negative
	// PayloadSize on a synthetic checkpoint would otherwise reach
	// ReadCost() as a negative size and charge a negative read time.
	if meta.Iteration < 0 || meta.Rank < 0 || meta.PayloadSize < 0 || meta.BaseIteration < 0 {
		return Meta{}, nil, fmt.Errorf("%w (negative header field)", ErrCorrupted)
	}
	// A delta must build on an earlier iteration; a self- or
	// forward-referential base pointer can never restore (ChainValid would
	// reject it, but Read must not accept the file in the first place).
	if meta.Incremental && meta.BaseIteration >= meta.Iteration {
		return Meta{}, nil, fmt.Errorf("%w (base iteration %d not before iteration %d)",
			ErrCorrupted, meta.BaseIteration, meta.Iteration)
	}
	payload := data[headerLen:]
	if meta.Synthetic {
		if len(payload) != 0 {
			return Meta{}, nil, fmt.Errorf("%w (synthetic checkpoint carries %d payload bytes)", ErrCorrupted, len(payload))
		}
		return meta, nil, nil
	}
	if len(payload) != meta.PayloadSize {
		return Meta{}, nil, fmt.Errorf("%w (payload %d bytes, header says %d)", ErrCorrupted, len(payload), meta.PayloadSize)
	}
	return meta, payload, nil
}

// LatestValid returns this rank's newest iteration with a valid (complete,
// well-formed) checkpoint file, deleting any newer corrupted files it
// encounters on the way — the paper's application "automatically loads the
// last checkpoint and automatically deletes any corrupted checkpoint". The
// second result is false when no valid checkpoint exists.
//
// It discovers candidate iterations by scanning the store; applications
// that know their checkpoint cadence should prefer LatestValidAmong, which
// probes candidates directly — a full scan per rank is quadratic at scale.
func (fs *FS) LatestValid(prefix string, rank int) (int, bool) {
	return fs.LatestValidAmong(prefix, rank, Iterations(fs.store, prefix))
}

// LatestValidAmong is LatestValid restricted to the given candidate
// iterations (ascending); it probes each candidate with O(1) lookups
// instead of scanning the store.
func (fs *FS) LatestValidAmong(prefix string, rank int, iters []int) (int, bool) {
	for i := len(iters) - 1; i >= 0; i-- {
		it := iters[i]
		name := FileName(prefix, it, rank)
		if !fs.store.Exists(name) {
			continue
		}
		fs.env.Elapse(fs.model.MetadataCost())
		data, complete, err := fs.store.Open(name)
		if err != nil {
			continue
		}
		meta, _, err := decode(data, complete)
		if err != nil {
			// Corrupted: delete and keep looking at older sets.
			fs.Delete(prefix, it, rank)
			continue
		}
		// A delta checkpoint is only restorable if its chain back to a
		// full checkpoint is intact.
		if meta.Incremental && !ChainValid(fs.store, prefix, rank, it) {
			continue
		}
		return it, true
	}
	return 0, false
}

// ChainValid reports whether the checkpoint at iteration can be restored:
// a full checkpoint must be valid; a delta additionally needs every link
// back to a full checkpoint valid (incremental checkpointing's restore
// requirement). It inspects the store directly without charging virtual
// time.
func ChainValid(store *fsmodel.Store, prefix string, rank, iteration int) bool {
	for hops := 0; hops < 1000; hops++ { // bound against base-pointer cycles
		data, complete, err := store.Open(FileName(prefix, iteration, rank))
		if err != nil {
			return false
		}
		meta, _, err := decode(data, complete)
		if err != nil {
			return false
		}
		if !meta.Incremental {
			return true
		}
		if meta.BaseIteration >= iteration {
			return false // corrupt base pointer
		}
		iteration = meta.BaseIteration
	}
	return false
}

// Chain returns the iterations of the checkpoint chain ending at
// iteration, base first: the full checkpoint followed by every delta up to
// and including iteration. For a full checkpoint the chain is just
// {iteration}. It returns nil if any link is missing, corrupt, or cyclic,
// and inspects the store directly without charging virtual time (a
// bookkeeping scan, like ChainValid).
func Chain(store *fsmodel.Store, prefix string, rank, iteration int) []int {
	var rev []int
	for hops := 0; hops < 1000; hops++ { // bound against base-pointer cycles
		data, complete, err := store.Open(FileName(prefix, iteration, rank))
		if err != nil {
			return nil
		}
		meta, _, err := decode(data, complete)
		if err != nil {
			return nil
		}
		rev = append(rev, iteration)
		if !meta.Incremental {
			out := make([]int, len(rev))
			for i, it := range rev {
				out[len(rev)-1-i] = it
			}
			return out
		}
		iteration = meta.BaseIteration
	}
	return nil
}

// Iterations lists the iterations that have at least one checkpoint file
// under prefix, ascending. It inspects the store directly without charging
// virtual time (a bookkeeping scan).
func Iterations(store *fsmodel.Store, prefix string) []int {
	seen := make(map[int]bool)
	lead := prefix + ".ckpt."
	for _, name := range store.List(lead) {
		rest := strings.TrimPrefix(name, lead)
		itStr, _, ok := strings.Cut(rest, ".r")
		if !ok {
			continue
		}
		if it, err := strconv.Atoi(itStr); err == nil {
			seen[it] = true
		}
	}
	out := make([]int, 0, len(seen))
	for it := range seen {
		out = append(out, it)
	}
	sort.Ints(out)
	return out
}

// SetComplete reports whether iteration's checkpoint set has a committed,
// well-formed file for every one of n ranks.
func SetComplete(store *fsmodel.Store, prefix string, iteration, n int) bool {
	for r := 0; r < n; r++ {
		data, complete, err := store.Open(FileName(prefix, iteration, r))
		if err != nil {
			return false
		}
		if _, _, err := decode(data, complete); err != nil {
			return false
		}
	}
	return true
}

// CleanIncompleteSets deletes every checkpoint set that is missing files
// or contains corrupted files, keeping only fully valid sets. It mirrors
// the shell script the paper runs before a restart ("incomplete
// checkpoints are deleted using a shell script") and therefore operates on
// the store directly, outside simulated time. It returns the iterations
// removed.
func CleanIncompleteSets(store *fsmodel.Store, prefix string, n int) []int {
	return CleanIncompleteSetsBy(store, prefix, func(it int) bool {
		return SetComplete(store, prefix, it, n)
	})
}

// CleanIncompleteSetsBy is CleanIncompleteSets with a pluggable
// completeness criterion: every checkpoint set whose iteration fails the
// test is deleted. Replicated runs need it — their restart can resume from
// a set in which a dead replica's file is missing as long as every logical
// rank is covered by some surviving replica, so the every-rank criterion
// would destroy exactly the sets worth keeping.
func CleanIncompleteSetsBy(store *fsmodel.Store, prefix string, complete func(iteration int) bool) []int {
	var removed []int
	for _, it := range Iterations(store, prefix) {
		if complete(it) {
			continue
		}
		for _, name := range store.List(setPrefix(prefix, it)) {
			store.Delete(name)
		}
		removed = append(removed, it)
	}
	return removed
}

// DeleteSet removes iteration's entire checkpoint set from the store
// (bookkeeping, no virtual time).
func DeleteSet(store *fsmodel.Store, prefix string, iteration int) {
	for _, name := range store.List(setPrefix(prefix, iteration)) {
		store.Delete(name)
	}
}

// exitTimeFile is the reserved name holding the simulated exit time.
const exitTimeFile = "__xsim.exit_time"

// SaveExitTime persists the simulated time of the application exit (the
// maximum simulated process time) so a restarted run can initialise every
// process clock from it — xSim's support for continuous virtual timing
// across abort/restart cycles.
func SaveExitTime(store *fsmodel.Store, t vclock.Time) error {
	w := store.Create(exitTimeFile)
	if _, err := w.Write(binary.LittleEndian.AppendUint64(nil, uint64(t))); err != nil {
		return err
	}
	return w.Commit()
}

// LoadExitTime reads the persisted exit time; ok is false when none was
// saved.
func LoadExitTime(store *fsmodel.Store) (t vclock.Time, ok bool) {
	data, complete, err := store.Open(exitTimeFile)
	if err != nil || !complete || len(data) != 8 {
		return 0, false
	}
	t = vclock.Time(binary.LittleEndian.Uint64(data))
	if t < 0 {
		// A corrupt (or hostile) exit-time file with the top bit set would
		// decode as a negative start clock, which the engine rejects;
		// treat it as no saved exit time.
		return 0, false
	}
	return t, true
}

// ClearExitTime removes the persisted exit time (fresh experiment).
func ClearExitTime(store *fsmodel.Store) { store.Delete(exitTimeFile) }
