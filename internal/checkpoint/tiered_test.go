package checkpoint

import (
	"testing"

	"xsim/internal/core"
	"xsim/internal/fsmodel"
	"xsim/internal/mpi"
	"xsim/internal/netmodel"
	"xsim/internal/procmodel"
	"xsim/internal/topology"
	"xsim/internal/vclock"
)

// withTieredEnv runs body inside a 1-rank simulated world whose checkpoint
// storage is the given multi-tier hierarchy.
func withTieredEnv(t *testing.T, store *fsmodel.Store, h fsmodel.Hierarchy, body func(*mpi.Env)) {
	t.Helper()
	eng, err := core.New(core.Config{NumVPs: 1})
	if err != nil {
		t.Fatal(err)
	}
	net := &netmodel.Model{
		Topo:   topology.NewFullyConnected(1),
		System: netmodel.LinkParams{Latency: vclock.Microsecond, Bandwidth: 1e9, DetectionTimeout: vclock.Second},
		OnNode: netmodel.LinkParams{Latency: vclock.Microsecond, Bandwidth: 1e9, DetectionTimeout: vclock.Second},
	}
	w, err := mpi.NewWorld(eng, mpi.WorldConfig{
		Net: net, Proc: procmodel.Paper(), FSStore: store, FSHierarchy: h,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(func(e *mpi.Env) {
		body(e)
		if !e.Finalized() {
			e.Finalize()
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// drainTimes returns the expected completion times of a size-byte file's
// drains down the hierarchy, given its commit time.
func drainTimes(h fsmodel.Hierarchy, commit vclock.Time, size int) []vclock.Time {
	at := commit
	var out []vclock.Time
	for q := 1; q < len(h); q++ {
		at = at.Add(h[q].MetadataCost() + h[q].WriteCostAmong(size, 1))
		out = append(out, at)
	}
	return out
}

func TestTieredWriteCommitsAtLocalTierCost(t *testing.T) {
	h := fsmodel.PaperTieredFS()
	store := fsmodel.NewStore()
	const payload = 1 << 20
	withTieredEnv(t, store, h, func(e *mpi.Env) {
		fs, err := NewFS(e)
		if err != nil {
			t.Fatal(err)
		}
		if !fs.Tiered() {
			t.Fatal("hierarchy-configured FS reports flat")
		}
		before := e.Now()
		if err := fs.WriteSized("heat", Meta{Iteration: 5, Rank: 0}, payload); err != nil {
			t.Fatal(err)
		}
		// The commit charges only the fast node-local tier; the deeper
		// tiers drain asynchronously, overlapping subsequent compute.
		node := h[0]
		want := 2*node.MetadataCost() + node.WriteCostAmong(headerLen+payload, 1)
		if got := e.Now().Sub(before); got != want {
			t.Fatalf("tiered write charged %v, want node-local %v", got, want)
		}
		name := FileName("heat", 5, 0)
		if got := store.TierOf(name); got != 0 {
			t.Fatalf("checkpoint originated at tier %d, want 0", got)
		}
		// Reading it back immediately uses the node-local copy.
		before = e.Now()
		meta, _, err := fs.Read("heat", 5, 0)
		if err != nil {
			t.Fatal(err)
		}
		want = node.MetadataCost() + node.ReadCostAmong(headerLen+payload, 1)
		if got := e.Now().Sub(before); got != want {
			t.Fatalf("tiered read charged %v, want node-local %v", got, want)
		}
		if !meta.Synthetic || meta.PayloadSize != payload {
			t.Fatalf("meta = %+v", meta)
		}
	})
}

func TestDrainInterruptedByFailureFallsBackATier(t *testing.T) {
	h := fsmodel.PaperTieredFS()
	store := fsmodel.NewStore()
	const payload = 1 << 20
	size := headerLen + payload
	var commit vclock.Time
	withTieredEnv(t, store, h, func(e *mpi.Env) {
		fs, _ := NewFS(e)
		if err := fs.WriteSized("heat", Meta{Iteration: 7, Rank: 0}, payload); err != nil {
			t.Fatal(err)
		}
		commit = e.Now()
	})

	drains := drainTimes(h, commit, size)
	bbAt, pfsAt := drains[0], drains[1]
	if !(commit < bbAt && bbAt < pfsAt) {
		t.Fatalf("drain times not ordered: commit=%v bb=%v pfs=%v", commit, bbAt, pfsAt)
	}
	// The owner fails after the burst-buffer drain completed but while the
	// PFS drain was still in flight: the node-local origin and the
	// in-flight PFS copy die with the node, the burst-buffer copy survives.
	store.ResolveFailure(h, 0, bbAt.Add(vclock.Microsecond))

	name := FileName("heat", 7, 0)
	if got := store.TierOf(name); got != -1 {
		t.Fatalf("lost origin still reports tier %d", got)
	}
	tier, at, ok := store.NearestCopy(name, pfsAt)
	if !ok || tier != 1 || at != bbAt {
		t.Fatalf("NearestCopy = tier %d at %v ok %v, want bb tier 1 at %v", tier, at, ok, bbAt)
	}

	// The restarted run (fresh clock) reads the checkpoint: the surviving
	// copy is the burst-buffer drain, which lands at bbAt in continuous
	// virtual time — the reader waits for it and is charged the
	// burst-buffer tier's read cost, not the node's and not the PFS's.
	withTieredEnv(t, store, h, func(e *mpi.Env) {
		fs, _ := NewFS(e)
		meta, _, err := fs.Read("heat", 7, 0)
		if err != nil {
			t.Fatalf("restart read: %v", err)
		}
		if meta.Iteration != 7 || meta.PayloadSize != payload {
			t.Fatalf("restart meta = %+v", meta)
		}
		bb := h[1]
		want := bbAt.Add(bb.MetadataCost() + bb.ReadCostAmong(size, 1))
		if got := e.Now(); got != want {
			t.Fatalf("restart read finished at %v, want wait-for-drain + bb read = %v", got, want)
		}
	})

	// A failure before any drain completes loses the checkpoint entirely.
	store2 := fsmodel.NewStore()
	withTieredEnv(t, store2, h, func(e *mpi.Env) {
		fs, _ := NewFS(e)
		if err := fs.WriteSized("heat", Meta{Iteration: 7, Rank: 0}, payload); err != nil {
			t.Fatal(err)
		}
		commit = e.Now()
	})
	store2.ResolveFailure(h, 0, commit)
	if store2.Exists(name) {
		t.Fatal("checkpoint with no completed drain survived its owner")
	}
}

func TestChainWalksBasePointers(t *testing.T) {
	store := fsmodel.NewStore()
	withEnv(t, store, fsmodel.Model{}, 0, func(e *mpi.Env) {
		fs, _ := NewFS(e)
		if err := fs.WriteSized("heat", Meta{Iteration: 100, Rank: 0}, 10); err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteIncrementalSized("heat", Meta{Iteration: 110, Rank: 0}, 100, 1); err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteIncrementalSized("heat", Meta{Iteration: 120, Rank: 0}, 110, 1); err != nil {
			t.Fatal(err)
		}
	})
	got := Chain(store, "heat", 0, 120)
	want := []int{100, 110, 120}
	if len(got) != len(want) {
		t.Fatalf("Chain = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Chain = %v, want %v", got, want)
		}
	}
	if got := Chain(store, "heat", 0, 100); len(got) != 1 || got[0] != 100 {
		t.Fatalf("full checkpoint chain = %v, want [100]", got)
	}
	store.Delete(FileName("heat", 110, 0))
	if got := Chain(store, "heat", 0, 120); got != nil {
		t.Fatalf("broken chain = %v, want nil", got)
	}
}
