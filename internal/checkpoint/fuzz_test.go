package checkpoint

import (
	"encoding/binary"
	"testing"

	"xsim/internal/fsmodel"
)

// header builds a checkpoint header for fuzz seeds.
func header(flags uint32, iteration, rank, payloadSize, base uint64) []byte {
	hdr := make([]byte, 0, headerLen)
	hdr = append(hdr, magic[:]...)
	hdr = binary.LittleEndian.AppendUint32(hdr, version)
	hdr = binary.LittleEndian.AppendUint32(hdr, flags)
	hdr = binary.LittleEndian.AppendUint64(hdr, iteration)
	hdr = binary.LittleEndian.AppendUint64(hdr, rank)
	hdr = binary.LittleEndian.AppendUint64(hdr, payloadSize)
	hdr = binary.LittleEndian.AppendUint64(hdr, base)
	return hdr
}

// FuzzDecode exercises the checkpoint file parser with arbitrary bytes:
// it must never panic, and anything it accepts must be self-consistent —
// non-negative header counters and a payload matching the header's size.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{}, true)
	f.Add(append(header(0, 3, 1, 2, 0), 0xAB, 0xCD), true)
	f.Add(append(header(0, 3, 1, 2, 0), 0xAB, 0xCD), false) // uncommitted
	f.Add(header(flagSynthetic, 10, 0, 4096, 0), true)
	f.Add(header(flagSynthetic, 10, 0, 1<<63, 0), true) // negative PayloadSize
	f.Add(header(0, 1<<63, 0, 0, 0), true)              // negative Iteration
	f.Add(append(header(0, 1, 1, 1<<40, 0), 1), true)   // payload size lie
	f.Fuzz(func(t *testing.T, data []byte, complete bool) {
		meta, payload, err := decode(data, complete)
		if err != nil {
			return
		}
		if meta.Iteration < 0 || meta.Rank < 0 || meta.PayloadSize < 0 || meta.BaseIteration < 0 {
			t.Fatalf("decode accepted negative header fields: %+v", meta)
		}
		if meta.Synthetic {
			if payload != nil {
				t.Fatalf("synthetic checkpoint decoded payload of %d bytes", len(payload))
			}
		} else if len(payload) != meta.PayloadSize {
			t.Fatalf("payload %d bytes but header says %d", len(payload), meta.PayloadSize)
		}
	})
}

// FuzzLoadExitTime exercises the persisted exit-time parser: whatever the
// file holds, it must never panic and never report a time the engine's
// start clock would reject.
func FuzzLoadExitTime(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(binary.LittleEndian.AppendUint64(nil, 12345))
	f.Add(binary.LittleEndian.AppendUint64(nil, 1<<63)) // negative time
	f.Add(binary.LittleEndian.AppendUint64(nil, ^uint64(0)))
	f.Fuzz(func(t *testing.T, data []byte) {
		store := fsmodel.NewStore()
		w := store.Create(exitTimeFile)
		if _, err := w.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := w.Commit(); err != nil {
			t.Fatal(err)
		}
		if tm, ok := LoadExitTime(store); ok && tm < 0 {
			t.Fatalf("LoadExitTime accepted negative time %d", tm)
		}
	})
}
