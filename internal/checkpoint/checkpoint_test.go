package checkpoint

import (
	"errors"
	"testing"

	"xsim/internal/core"
	"xsim/internal/fsmodel"
	"xsim/internal/mpi"
	"xsim/internal/netmodel"
	"xsim/internal/procmodel"
	"xsim/internal/topology"
	"xsim/internal/vclock"
)

// withEnv runs body inside a 1-rank simulated world with a PFS.
func withEnv(t *testing.T, store *fsmodel.Store, model fsmodel.Model, failAt vclock.Time, body func(*mpi.Env)) *core.Result {
	t.Helper()
	eng, err := core.New(core.Config{NumVPs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if failAt > 0 {
		if err := eng.ScheduleFailure(0, failAt); err != nil {
			t.Fatal(err)
		}
	}
	net := &netmodel.Model{
		Topo:   topology.NewFullyConnected(1),
		System: netmodel.LinkParams{Latency: vclock.Microsecond, Bandwidth: 1e9, DetectionTimeout: vclock.Second},
		OnNode: netmodel.LinkParams{Latency: vclock.Microsecond, Bandwidth: 1e9, DetectionTimeout: vclock.Second},
	}
	w, err := mpi.NewWorld(eng, mpi.WorldConfig{Net: net, Proc: procmodel.Paper(), FSStore: store, FSModel: model})
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(func(e *mpi.Env) {
		body(e)
		if !e.Finalized() {
			e.Finalize()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWriteReadRoundTrip(t *testing.T) {
	store := fsmodel.NewStore()
	payload := []byte("grid state at iteration 500")
	withEnv(t, store, fsmodel.Model{}, 0, func(e *mpi.Env) {
		fs, err := NewFS(e)
		if err != nil {
			t.Fatal(err)
		}
		if err := fs.Write("heat", Meta{Iteration: 500, Rank: 0}, payload); err != nil {
			t.Fatal(err)
		}
		meta, got, err := fs.Read("heat", 500, 0)
		if err != nil {
			t.Fatal(err)
		}
		if meta.Iteration != 500 || meta.Rank != 0 || string(got) != string(payload) {
			t.Fatalf("read back %+v %q", meta, got)
		}
	})
}

func TestWriteChargesTime(t *testing.T) {
	store := fsmodel.NewStore()
	model := fsmodel.PaperPFS()
	payload := make([]byte, 1e6)
	withEnv(t, store, model, 0, func(e *mpi.Env) {
		fs, _ := NewFS(e)
		before := e.Now()
		if err := fs.Write("heat", Meta{Iteration: 1, Rank: 0}, payload); err != nil {
			t.Fatal(err)
		}
		want := 2*model.MetadataCost() + model.WriteCost(headerLen+len(payload))
		if got := e.Now().Sub(before); got != want {
			t.Fatalf("write charged %v, want %v", got, want)
		}
	})
}

func TestFailureDuringWriteCorruptsCheckpoint(t *testing.T) {
	store := fsmodel.NewStore()
	model := fsmodel.PaperPFS() // 1 MB takes ~1 ms: fail in the middle
	payload := make([]byte, 1e6)
	// Timeline: 1 ms metadata (file not yet created), then create, then
	// ~1 ms payload write. Failing at 1.5 ms lands mid-write, after the
	// file exists but before it commits.
	res := withEnv(t, store, model, vclock.Time(1500*vclock.Microsecond), func(e *mpi.Env) {
		fs, _ := NewFS(e)
		if err := fs.Write("heat", Meta{Iteration: 2, Rank: 0}, payload); err != nil {
			t.Fatal(err)
		}
		t.Error("write should have been interrupted by the failure")
	})
	if res.Failed != 1 {
		t.Fatalf("result = %+v", res)
	}
	// The file exists (created before the failure) but is incomplete:
	// the paper's corrupted checkpoint.
	name := FileName("heat", 2, 0)
	if !store.Exists(name) {
		t.Fatal("corrupted checkpoint should exist")
	}
	if store.Complete(name) {
		t.Fatal("corrupted checkpoint should be incomplete")
	}
	// A later reader rejects it.
	withEnv(t, store, model, 0, func(e *mpi.Env) {
		fs, _ := NewFS(e)
		if _, _, err := fs.Read("heat", 2, 0); !errors.Is(err, ErrCorrupted) {
			t.Errorf("read err = %v, want ErrCorrupted", err)
		}
	})
}

func TestReadMissing(t *testing.T) {
	store := fsmodel.NewStore()
	withEnv(t, store, fsmodel.Model{}, 0, func(e *mpi.Env) {
		fs, _ := NewFS(e)
		if _, _, err := fs.Read("heat", 9, 0); !errors.Is(err, fsmodel.ErrNotExist) {
			t.Errorf("err = %v, want ErrNotExist", err)
		}
	})
}

func TestLatestValidSkipsCorrupted(t *testing.T) {
	store := fsmodel.NewStore()
	withEnv(t, store, fsmodel.Model{}, 0, func(e *mpi.Env) {
		fs, _ := NewFS(e)
		if err := fs.Write("heat", Meta{Iteration: 100, Rank: 0}, []byte("old")); err != nil {
			t.Fatal(err)
		}
		if err := fs.Write("heat", Meta{Iteration: 200, Rank: 0}, []byte("new")); err != nil {
			t.Fatal(err)
		}
	})
	// Corrupt the newer checkpoint: create-without-commit.
	store.Create(FileName("heat", 300, 0)).Write([]byte("partial"))
	withEnv(t, store, fsmodel.Model{}, 0, func(e *mpi.Env) {
		fs, _ := NewFS(e)
		it, ok := fs.LatestValid("heat", 0)
		if !ok || it != 200 {
			t.Fatalf("LatestValid = %d, %v; want 200, true", it, ok)
		}
	})
	// The corrupted file was deleted on the way.
	if store.Exists(FileName("heat", 300, 0)) {
		t.Error("corrupted checkpoint should have been deleted")
	}
}

func TestLatestValidNone(t *testing.T) {
	store := fsmodel.NewStore()
	withEnv(t, store, fsmodel.Model{}, 0, func(e *mpi.Env) {
		fs, _ := NewFS(e)
		if _, ok := fs.LatestValid("heat", 0); ok {
			t.Error("empty store should have no valid checkpoint")
		}
	})
}

func TestIterationsAndSetComplete(t *testing.T) {
	store := fsmodel.NewStore()
	withEnv(t, store, fsmodel.Model{}, 0, func(e *mpi.Env) {
		fs, _ := NewFS(e)
		for _, it := range []int{125, 250} {
			for r := 0; r < 1; r++ {
				if err := fs.Write("heat", Meta{Iteration: it, Rank: r}, nil); err != nil {
					t.Fatal(err)
				}
			}
		}
	})
	got := Iterations(store, "heat")
	if len(got) != 2 || got[0] != 125 || got[1] != 250 {
		t.Fatalf("Iterations = %v", got)
	}
	if !SetComplete(store, "heat", 125, 1) {
		t.Error("set 125 should be complete")
	}
	if SetComplete(store, "heat", 125, 2) {
		t.Error("set 125 should be incomplete for 2 ranks")
	}
}

func TestCleanIncompleteSets(t *testing.T) {
	store := fsmodel.NewStore()
	const n = 3
	withEnv(t, store, fsmodel.Model{}, 0, func(e *mpi.Env) {
		fs, _ := NewFS(e)
		// Set 100: complete for all 3 ranks (this env plays each rank's
		// writer role; rank identity is in the meta, not the env).
		for r := 0; r < n; r++ {
			if err := fs.Write("heat", Meta{Iteration: 100, Rank: r}, nil); err != nil {
				t.Fatal(err)
			}
		}
		// Set 200: missing rank 2 (failure during checkpointing).
		for r := 0; r < n-1; r++ {
			if err := fs.Write("heat", Meta{Iteration: 200, Rank: r}, nil); err != nil {
				t.Fatal(err)
			}
		}
	})
	removed := CleanIncompleteSets(store, "heat", n)
	if len(removed) != 1 || removed[0] != 200 {
		t.Fatalf("removed = %v", removed)
	}
	if got := Iterations(store, "heat"); len(got) != 1 || got[0] != 100 {
		t.Fatalf("surviving iterations = %v", got)
	}
}

func TestDeleteSet(t *testing.T) {
	store := fsmodel.NewStore()
	withEnv(t, store, fsmodel.Model{}, 0, func(e *mpi.Env) {
		fs, _ := NewFS(e)
		fs.Write("heat", Meta{Iteration: 1, Rank: 0}, nil)
		fs.Write("heat", Meta{Iteration: 2, Rank: 0}, nil)
	})
	DeleteSet(store, "heat", 1)
	if got := Iterations(store, "heat"); len(got) != 1 || got[0] != 2 {
		t.Fatalf("iterations after delete = %v", got)
	}
}

func TestWriteSizedSynthetic(t *testing.T) {
	store := fsmodel.NewStore()
	model := fsmodel.PaperPFS()
	withEnv(t, store, model, 0, func(e *mpi.Env) {
		fs, _ := NewFS(e)
		before := e.Now()
		if err := fs.WriteSized("heat", Meta{Iteration: 5, Rank: 0}, 1e6); err != nil {
			t.Fatal(err)
		}
		// Full write cost charged despite no payload bytes stored.
		want := 2*model.MetadataCost() + model.WriteCost(headerLen+1e6)
		if got := e.Now().Sub(before); got != want {
			t.Fatalf("synthetic write charged %v, want %v", got, want)
		}
		meta, payload, err := fs.Read("heat", 5, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !meta.Synthetic || meta.PayloadSize != 1e6 || payload != nil {
			t.Fatalf("meta = %+v payload = %d bytes", meta, len(payload))
		}
	})
	// Tiny on disk.
	if store.Size(FileName("heat", 5, 0)) > 100 {
		t.Fatal("synthetic checkpoint materialised its payload")
	}
}

func TestIncrementalChain(t *testing.T) {
	store := fsmodel.NewStore()
	withEnv(t, store, fsmodel.Model{}, 0, func(e *mpi.Env) {
		fs, _ := NewFS(e)
		if err := fs.Write("heat", Meta{Iteration: 100, Rank: 0}, []byte("full state")); err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteIncremental("heat", Meta{Iteration: 110, Rank: 0}, 100, []byte("delta1")); err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteIncremental("heat", Meta{Iteration: 120, Rank: 0}, 110, []byte("delta2")); err != nil {
			t.Fatal(err)
		}
		if !ChainValid(store, "heat", 0, 120) {
			t.Fatal("intact chain should be valid")
		}
		// The newest restorable iteration is the tip of the chain.
		it, ok := fs.LatestValidAmong("heat", 0, []int{100, 110, 120})
		if !ok || it != 120 {
			t.Fatalf("latest = %d, %v", it, ok)
		}
		// Breaking a middle link invalidates everything above it.
		fs.Delete("heat", 110, 0)
		if ChainValid(store, "heat", 0, 120) {
			t.Fatal("broken chain should be invalid")
		}
		it, ok = fs.LatestValidAmong("heat", 0, []int{100, 110, 120})
		if !ok || it != 100 {
			t.Fatalf("latest after break = %d, %v (want the full checkpoint)", it, ok)
		}
	})
}

func TestIncrementalSizedCost(t *testing.T) {
	store := fsmodel.NewStore()
	model := fsmodel.PaperPFS()
	withEnv(t, store, model, 0, func(e *mpi.Env) {
		fs, _ := NewFS(e)
		if err := fs.WriteSized("heat", Meta{Iteration: 1, Rank: 0}, 1e6); err != nil {
			t.Fatal(err)
		}
		before := e.Now()
		// A 10% delta costs a tenth of the payload write time.
		if err := fs.WriteIncrementalSized("heat", Meta{Iteration: 2, Rank: 0}, 1, 1e5); err != nil {
			t.Fatal(err)
		}
		got := e.Now().Sub(before)
		want := 2*model.MetadataCost() + model.WriteCost(headerLen+1e5)
		if got != want {
			t.Fatalf("delta charged %v, want %v", got, want)
		}
		meta, _, err := fs.Read("heat", 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !meta.Incremental || meta.BaseIteration != 1 {
			t.Fatalf("meta = %+v", meta)
		}
		if !ChainValid(store, "heat", 0, 2) {
			t.Fatal("synthetic chain should be valid")
		}
	})
}

func TestChainValidCycleGuard(t *testing.T) {
	store := fsmodel.NewStore()
	withEnv(t, store, fsmodel.Model{}, 0, func(e *mpi.Env) {
		fs, _ := NewFS(e)
		// A delta claiming a base at or above itself is corrupt.
		if err := fs.WriteIncremental("heat", Meta{Iteration: 50, Rank: 0}, 50, []byte("x")); err != nil {
			t.Fatal(err)
		}
		if ChainValid(store, "heat", 0, 50) {
			t.Fatal("self-referential chain should be invalid")
		}
	})
}

func TestExitTimePersistence(t *testing.T) {
	store := fsmodel.NewStore()
	if _, ok := LoadExitTime(store); ok {
		t.Fatal("fresh store should have no exit time")
	}
	want := vclock.TimeFromSeconds(7957)
	if err := SaveExitTime(store, want); err != nil {
		t.Fatal(err)
	}
	got, ok := LoadExitTime(store)
	if !ok || got != want {
		t.Fatalf("LoadExitTime = %v, %v", got, ok)
	}
	// Overwrite with a later exit.
	if err := SaveExitTime(store, want.Add(vclock.Second)); err != nil {
		t.Fatal(err)
	}
	if got, _ := LoadExitTime(store); got != want.Add(vclock.Second) {
		t.Fatalf("updated exit time = %v", got)
	}
	ClearExitTime(store)
	if _, ok := LoadExitTime(store); ok {
		t.Fatal("cleared store should have no exit time")
	}
}

func TestNewFSWithoutStore(t *testing.T) {
	eng, _ := core.New(core.Config{NumVPs: 1})
	net := &netmodel.Model{
		Topo:   topology.NewFullyConnected(1),
		System: netmodel.LinkParams{Latency: vclock.Microsecond, Bandwidth: 1e9},
		OnNode: netmodel.LinkParams{Latency: vclock.Microsecond, Bandwidth: 1e9},
	}
	w, err := mpi.NewWorld(eng, mpi.WorldConfig{Net: net, Proc: procmodel.Paper()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(func(e *mpi.Env) {
		if _, err := NewFS(e); err == nil {
			t.Error("NewFS without a store should fail")
		}
		e.Finalize()
	}); err != nil {
		t.Fatal(err)
	}
}
