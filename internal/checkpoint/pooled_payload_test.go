package checkpoint

import (
	"bytes"
	"testing"

	"xsim/internal/core"
	"xsim/internal/fsmodel"
	"xsim/internal/mpi"
	"xsim/internal/netmodel"
	"xsim/internal/procmodel"
	"xsim/internal/topology"
	"xsim/internal/vclock"
)

// TestPooledPayloadRoundTrip checkpoints a received message whose Data
// lives in the MPI payload pool, releases the buffer, keeps traffic
// flowing so the pool reuses it, and then restores the checkpoint: the
// stored bytes must be the ones that were received, not whatever the
// reused buffer holds by then.
func TestPooledPayloadRoundTrip(t *testing.T) {
	eng, err := core.New(core.Config{NumVPs: 2})
	if err != nil {
		t.Fatal(err)
	}
	net := &netmodel.Model{
		Topo:   topology.NewFullyConnected(2),
		System: netmodel.LinkParams{Latency: vclock.Microsecond, Bandwidth: 1e9, DetectionTimeout: vclock.Second},
		OnNode: netmodel.LinkParams{Latency: vclock.Microsecond, Bandwidth: 1e9, DetectionTimeout: vclock.Second},
	}
	store := fsmodel.NewStore()
	w, err := mpi.NewWorld(eng, mpi.WorldConfig{Net: net, Proc: procmodel.Paper(), FSStore: store, FSModel: fsmodel.Model{}})
	if err != nil {
		t.Fatal(err)
	}
	state := bytes.Repeat([]byte{0xC3}, 96)
	clobber := bytes.Repeat([]byte{0x3C}, 96)
	if _, err := w.Run(func(e *mpi.Env) {
		c := e.World()
		if e.Rank() == 0 {
			if err := c.Send(1, 1, state); err != nil {
				t.Errorf("send state: %v", err)
			}
			m, err := c.Recv(1, 2)
			if err != nil {
				t.Errorf("recv echo: %v", err)
			} else {
				m.Release()
			}
			e.Finalize()
			return
		}
		fs, err := NewFS(e)
		if err != nil {
			t.Fatal(err)
		}
		m, err := c.Recv(0, 1)
		if err != nil {
			t.Errorf("recv state: %v", err)
			e.Finalize()
			return
		}
		if err := fs.Write("state", Meta{Iteration: 7, Rank: 1}, m.Data); err != nil {
			t.Errorf("checkpoint write: %v", err)
		}
		m.Release()
		// Reuse the released buffer for different bytes before restoring.
		if err := c.Send(0, 2, clobber); err != nil {
			t.Errorf("send echo: %v", err)
		}
		meta, got, err := fs.Read("state", 7, 1)
		if err != nil {
			t.Errorf("checkpoint read: %v", err)
		} else {
			if meta.Iteration != 7 || meta.Rank != 1 {
				t.Errorf("restored meta %+v", meta)
			}
			if !bytes.Equal(got, state) {
				t.Errorf("restored payload %x..., want %x...", got[:4], state[:4])
			}
		}
		e.Finalize()
	}); err != nil {
		t.Fatal(err)
	}
}
