// Package heat implements the paper's targeted application: an iterative
// solver for the heat equation on a regular 3-D grid, decomposed into
// cubes distributed across the MPI ranks. Each rank performs the same
// total number of iterations, updating every data point from its
// neighbours; a halo exchange between neighbouring cubes runs at a
// configurable iteration interval, and a checkpoint is written at a
// configurable interval, followed by a global barrier after which the
// previous checkpoint is deleted safely. On restart the application
// automatically loads the last checkpoint (deleting corrupted ones).
//
// Two fidelity modes are supported:
//
//   - Real compute: the grid is allocated and the 7-point stencil actually
//     runs, halo faces and checkpoints carry real data. Used by the
//     correctness tests and small examples.
//
//   - Modelled compute (RealCompute=false): compute phases charge
//     processor-model time for the same number of point updates, halos are
//     payload-free messages of the real face sizes, and checkpoints are
//     synthetic files of the real size. This is how the 32,768-rank
//     experiments of the paper are reproduced on a laptop: xSim likewise
//     scales time by a processor model rather than simulating cycles.
package heat

import (
	"encoding/binary"
	"fmt"
	"math"

	"xsim/internal/checkpoint"
	"xsim/internal/mpi"
	"xsim/internal/vclock"
)

// Config parameterises the heat application.
type Config struct {
	// NX, NY, NZ is the global grid (the paper uses 512×512×512).
	NX, NY, NZ int
	// PX, PY, PZ is the process grid (the paper uses 32×32×32); the
	// product must equal the world size and each dimension must divide
	// the corresponding grid dimension.
	PX, PY, PZ int
	// Iterations is the total iteration count (the paper uses 1,000).
	Iterations int
	// ExchangeInterval is the halo-exchange interval in iterations. The
	// paper sets it equal to the checkpoint interval so a halo exchange
	// takes place right before a checkpoint.
	ExchangeInterval int
	// CheckpointInterval is the checkpoint interval in iterations; the
	// final iteration always writes a checkpoint (the baseline run's
	// single result checkpoint).
	CheckpointInterval int
	// Prefix names the checkpoint files (default "heat").
	Prefix string
	// RealCompute selects real grids and stencils over modelled time.
	RealCompute bool
	// PointCost is the modelled work per point update in reference-core
	// cycles; see PaperWorkload for the calibration.
	PointCost float64
	// Alpha is the diffusion coefficient of the explicit update (real
	// compute mode); stability requires Alpha <= 1/6.
	Alpha float64
	// Tracker, when set, records per-rank progress and phases for the
	// failure-mode analysis (§V-D of the paper).
	Tracker *Tracker
	// OnFinal, when set, receives each rank's total heat after the last
	// iteration (real compute mode only) — used by correctness tests and
	// examples to check conservation.
	OnFinal func(rank int, totalHeat float64)
	// CheckpointPayload, when positive, overrides the modelled checkpoint
	// payload size in bytes (modelled compute only). The I/O ablation
	// uses it to model production-scale state per rank — the 16³-points
	// cube of the paper's workload is ~32 KB, far too small for
	// checkpoint I/O to matter at any bandwidth.
	CheckpointPayload int
	// DeltaFraction, when positive (modelled compute only), enables
	// incremental checkpointing: between full checkpoints each cadence
	// point writes a delta of DeltaFraction × payload bytes, and every
	// FullEvery-th checkpoint is full, bounding the restore chain.
	DeltaFraction float64
	// FullEvery bounds the incremental chain length (default 4); only
	// meaningful with DeltaFraction > 0.
	FullEvery int
	// onIter, when set, is called at the top of every iteration (before
	// the compute phase) with the rank and 1-based iteration number. It
	// is package-private: the scale benchmarks use it to sample the
	// simulator's resident footprint at a deterministic mid-run point.
	onIter func(rank, iter int)
	// ProactiveTrigger, when non-zero, makes every rank write one extra
	// off-interval checkpoint at the first iteration boundary at or past
	// this virtual time — proactive fault tolerance driven by a failure
	// predictor (the campaign sets it to the predicted failure time
	// minus the prediction lead). vclock.Never means "proactive mode
	// without a trigger this run": no extra checkpoint is written, but
	// restarts still consider the off-cadence checkpoints earlier runs
	// may have left behind.
	ProactiveTrigger vclock.Time
}

// PaperWorkload returns the paper's Table II workload: a 512³ grid over
// 32,768 ranks in 32³ cubes (16³ points per rank), 1,000 iterations,
// modelled compute. PointCost is calibrated so one iteration takes about
// 5.25 simulated seconds on the paper's processor model (a node 1000×
// slower than a 1.7 GHz Opteron core), matching the paper's no-failure
// baseline of 5,248 s for 1,000 iterations.
func PaperWorkload() Config {
	return Config{
		NX: 512, NY: 512, NZ: 512,
		PX: 32, PY: 32, PZ: 32,
		Iterations:         1000,
		ExchangeInterval:   1000,
		CheckpointInterval: 1000,
		Prefix:             "heat",
		PointCost:          2178, // 4096 points × 2178 cycles / 1.7e6 Hz ≈ 5.25 s/iteration
		Alpha:              1.0 / 6.0,
	}
}

// Validate reports a configuration error, if any.
func (c *Config) Validate(worldSize int) error {
	if c.NX <= 0 || c.NY <= 0 || c.NZ <= 0 {
		return fmt.Errorf("heat: grid %dx%dx%d must be positive", c.NX, c.NY, c.NZ)
	}
	if c.PX <= 0 || c.PY <= 0 || c.PZ <= 0 {
		return fmt.Errorf("heat: process grid %dx%dx%d must be positive", c.PX, c.PY, c.PZ)
	}
	if c.PX*c.PY*c.PZ != worldSize {
		return fmt.Errorf("heat: process grid %dx%dx%d needs %d ranks, world has %d",
			c.PX, c.PY, c.PZ, c.PX*c.PY*c.PZ, worldSize)
	}
	if c.NX%c.PX != 0 || c.NY%c.PY != 0 || c.NZ%c.PZ != 0 {
		return fmt.Errorf("heat: grid %dx%dx%d not divisible by process grid %dx%dx%d",
			c.NX, c.NY, c.NZ, c.PX, c.PY, c.PZ)
	}
	if c.Iterations <= 0 {
		return fmt.Errorf("heat: Iterations must be positive")
	}
	if c.ExchangeInterval <= 0 || c.CheckpointInterval <= 0 {
		return fmt.Errorf("heat: intervals must be positive")
	}
	if c.PointCost < 0 {
		return fmt.Errorf("heat: PointCost must be non-negative")
	}
	if c.RealCompute && (c.Alpha <= 0 || c.Alpha > 1.0/6.0) {
		return fmt.Errorf("heat: Alpha %g outside stable range (0, 1/6]", c.Alpha)
	}
	if c.CheckpointPayload < 0 {
		return fmt.Errorf("heat: CheckpointPayload must be non-negative")
	}
	if c.DeltaFraction < 0 || c.DeltaFraction >= 1 {
		return fmt.Errorf("heat: DeltaFraction %g outside [0, 1)", c.DeltaFraction)
	}
	if c.RealCompute && (c.CheckpointPayload > 0 || c.DeltaFraction > 0) {
		return fmt.Errorf("heat: CheckpointPayload and DeltaFraction are modelled-compute knobs")
	}
	if c.FullEvery < 0 {
		return fmt.Errorf("heat: FullEvery must be non-negative")
	}
	return nil
}

// Local returns the per-rank cube dimensions.
func (c *Config) Local() (nx, ny, nz int) {
	return c.NX / c.PX, c.NY / c.PY, c.NZ / c.PZ
}

// PointsPerRank returns the number of grid points each rank owns.
func (c *Config) PointsPerRank() int {
	nx, ny, nz := c.Local()
	return nx * ny * nz
}

// CheckpointBytes returns the per-rank checkpoint payload size: the cube's
// data points as float64 plus the application configuration the paper's
// checkpoint includes.
func (c *Config) CheckpointBytes() int { return 8*c.PointsPerRank() + 64 }

// payloadBytes returns the modelled checkpoint payload: the override when
// set, the real grid size otherwise.
func (c *Config) payloadBytes() int {
	if !c.RealCompute && c.CheckpointPayload > 0 {
		return c.CheckpointPayload
	}
	return c.CheckpointBytes()
}

// deltaBytes returns the modelled incremental-checkpoint payload.
func (c *Config) deltaBytes() int {
	d := int(c.DeltaFraction * float64(c.payloadBytes()))
	if d < 1 {
		d = 1
	}
	return d
}

// fullEvery returns the configured or default full-checkpoint period of
// the incremental chain.
func (c *Config) fullEvery() int {
	if c.FullEvery > 0 {
		return c.FullEvery
	}
	return 4
}

// prefix returns the configured or default checkpoint prefix.
func (c *Config) prefix() string {
	if c.Prefix == "" {
		return "heat"
	}
	return c.Prefix
}

// checkpointIterations returns every iteration at which this
// configuration writes a checkpoint, ascending.
func (c *Config) checkpointIterations() []int {
	var out []int
	for it := c.CheckpointInterval; it <= c.Iterations; it += c.CheckpointInterval {
		out = append(out, it)
	}
	if len(out) == 0 || out[len(out)-1] != c.Iterations {
		out = append(out, c.Iterations)
	}
	return out
}

// Phase identifies where in its cycle a rank currently is; the paper's
// "first impressions" analysis classifies failures and detections by
// phase (computation, halo exchange, checkpoint, barrier, delete).
type Phase int32

// Application phases.
const (
	PhaseInit Phase = iota
	PhaseCompute
	PhaseHalo
	PhaseCheckpoint
	PhaseBarrier
	PhaseDelete
	PhaseDone
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseInit:
		return "init"
	case PhaseCompute:
		return "compute"
	case PhaseHalo:
		return "halo-exchange"
	case PhaseCheckpoint:
		return "checkpoint"
	case PhaseBarrier:
		return "barrier"
	case PhaseDelete:
		return "delete-old-checkpoint"
	case PhaseDone:
		return "done"
	default:
		return fmt.Sprintf("Phase(%d)", int32(p))
	}
}

// Tracker records per-rank progress across a run. Each rank writes only
// its own slots while the simulation runs; read it after Run returns.
type Tracker struct {
	phases    []Phase
	iters     []int
	ckpts     []int
	startIter []int
}

// NewTracker sizes a tracker for n ranks.
func NewTracker(n int) *Tracker {
	return &Tracker{
		phases:    make([]Phase, n),
		iters:     make([]int, n),
		ckpts:     make([]int, n),
		startIter: make([]int, n),
	}
}

// PhaseOf returns the last phase rank entered.
func (t *Tracker) PhaseOf(rank int) Phase { return t.phases[rank] }

// IterOf returns the last iteration rank started.
func (t *Tracker) IterOf(rank int) int { return t.iters[rank] }

// CheckpointsOf returns the checkpoints rank completed.
func (t *Tracker) CheckpointsOf(rank int) int { return t.ckpts[rank] }

// StartIterOf returns the iteration rank restarted from (0 = fresh).
func (t *Tracker) StartIterOf(rank int) int { return t.startIter[rank] }

// PhaseCounts histograms the ranks' last phases.
func (t *Tracker) PhaseCounts() map[Phase]int {
	out := make(map[Phase]int)
	for _, p := range t.phases {
		out[p]++
	}
	return out
}

func (t *Tracker) setPhase(rank int, p Phase) {
	if t != nil {
		t.phases[rank] = p
	}
}

// Run executes the heat application inside one simulated MPI process. It
// is the paper's application loop: restart from the last valid checkpoint
// if one exists, then iterate with compute, halo-exchange, checkpoint,
// barrier and delete phases, and finalise cleanly.
func Run(env *mpi.Env, cfg Config) {
	if err := cfg.Validate(env.Size()); err != nil {
		panic(err)
	}
	world := env.World()
	rank := env.Rank()
	tr := cfg.Tracker
	tr.setPhase(rank, PhaseInit)

	fs, err := checkpoint.NewFS(env)
	if err != nil {
		panic(err)
	}
	st := newState(&cfg, rank)

	// Restart support: load the newest valid checkpoint, deleting any
	// corrupted ones encountered (the cleanup script outside the
	// simulation already removed incomplete sets). The candidate
	// iterations follow from the checkpoint cadence, so each rank probes
	// them directly instead of scanning the store.
	startIter := 0
	candidates := cfg.checkpointIterations()
	if cfg.ProactiveTrigger > 0 {
		// Proactive checkpoints land off the regular cadence, so every
		// iteration is a restart candidate.
		candidates = make([]int, cfg.Iterations)
		for i := range candidates {
			candidates[i] = i + 1
		}
	}
	if it, ok := fs.LatestValidAmong(cfg.prefix(), rank, candidates); ok {
		if cfg.RealCompute {
			_, payload, err := fs.Read(cfg.prefix(), it, rank)
			if err != nil {
				panic(fmt.Sprintf("heat: rank %d cannot reload checkpoint %d: %v", rank, it, err))
			}
			st.restore(payload)
		} else if fs.Tiered() || cfg.DeltaFraction > 0 {
			// Tier-aware restore: read the whole delta chain, each file
			// from the fastest tier holding a surviving copy.
			if err := fs.ChargeRestore(cfg.prefix(), rank, it); err != nil {
				panic(fmt.Sprintf("heat: rank %d cannot reload checkpoint %d: %v", rank, it, err))
			}
		} else {
			env.Elapse(env.FSModel().ReadCost(cfg.payloadBytes()))
		}
		startIter = it
	}
	if tr != nil {
		tr.startIter[rank] = startIter
	}
	prevCkpt := startIter // previous checkpoint iteration (0 = none)
	incr := !cfg.RealCompute && cfg.DeltaFraction > 0
	var chain []int // current incremental chain, base (full checkpoint) first
	if incr && startIter > 0 {
		chain = checkpoint.Chain(env.FSStore(), cfg.prefix(), rank, startIter)
	}

	// Initialise the ghost layers of the (initial or restored) state so
	// the first computation phase sees its neighbours' boundaries.
	tr.setPhase(rank, PhaseHalo)
	st.haloExchange(env, world)

	proactiveDone := false
	for iter := startIter + 1; iter <= cfg.Iterations; iter++ {
		if cfg.onIter != nil {
			cfg.onIter(rank, iter)
		}
		if tr != nil {
			tr.iters[rank] = iter
		}
		tr.setPhase(rank, PhaseCompute)
		st.computeIteration(env)

		if iter%cfg.ExchangeInterval == 0 || iter == cfg.Iterations {
			tr.setPhase(rank, PhaseHalo)
			st.haloExchange(env, world)
		}
		// Proactive fault tolerance: a failure predictor fired, so write
		// an extra checkpoint now to minimise the progress a restart
		// would lose.
		proactive := cfg.ProactiveTrigger > 0 && !proactiveDone &&
			env.Now() >= cfg.ProactiveTrigger
		if proactive {
			proactiveDone = true
		}
		if proactive || iter%cfg.CheckpointInterval == 0 || iter == cfg.Iterations {
			tr.setPhase(rank, PhaseCheckpoint)
			meta := checkpoint.Meta{Iteration: iter, Rank: rank}
			full := !incr || len(chain) == 0 || len(chain) >= cfg.fullEvery()
			switch {
			case cfg.RealCompute:
				err = fs.Write(cfg.prefix(), meta, st.encode())
			case full:
				err = fs.WriteSized(cfg.prefix(), meta, cfg.payloadBytes())
			default:
				err = fs.WriteIncrementalSized(cfg.prefix(), meta, chain[len(chain)-1], cfg.deltaBytes())
			}
			if err != nil {
				panic(fmt.Sprintf("heat: rank %d checkpoint %d: %v", rank, iter, err))
			}
			// A global barrier synchronises all processes so the
			// previous checkpoint can be deleted safely.
			tr.setPhase(rank, PhaseBarrier)
			if err := world.Barrier(); err != nil {
				panic(fmt.Sprintf("heat: rank %d barrier after checkpoint %d: %v", rank, iter, err))
			}
			tr.setPhase(rank, PhaseDelete)
			if incr {
				// A full checkpoint supersedes the previous chain; a delta
				// extends the chain and deletes nothing (every link is
				// still needed for restore).
				if full {
					for _, old := range chain {
						if old != iter {
							fs.Delete(cfg.prefix(), old, rank)
						}
					}
					chain = append(chain[:0], iter)
				} else {
					chain = append(chain, iter)
				}
			} else if prevCkpt > 0 && prevCkpt != iter {
				fs.Delete(cfg.prefix(), prevCkpt, rank)
			}
			if tr != nil {
				tr.ckpts[rank]++
			}
			prevCkpt = iter
		}
	}
	tr.setPhase(rank, PhaseDone)
	if cfg.OnFinal != nil && cfg.RealCompute {
		cfg.OnFinal(rank, st.TotalHeat())
	}
	env.Finalize()
}

// state holds one rank's grid (real mode) or just its geometry (modelled
// mode).
type state struct {
	cfg        *Config
	rank       int
	px, py, pz int // this rank's coordinates in the process grid
	nx, ny, nz int // local cube dimensions
	cur, next  []float64
}

// newState builds the per-rank state; real mode initialises the grid with
// a deterministic hot spot per rank so heat actually flows.
func newState(cfg *Config, rank int) *state {
	nx, ny, nz := cfg.Local()
	s := &state{cfg: cfg, rank: rank, nx: nx, ny: ny, nz: nz}
	s.px = rank % cfg.PX
	s.py = (rank / cfg.PX) % cfg.PY
	s.pz = rank / (cfg.PX * cfg.PY)
	if cfg.RealCompute {
		// Ghost layers on every side: (nx+2)(ny+2)(nz+2).
		n := (nx + 2) * (ny + 2) * (nz + 2)
		s.cur = make([]float64, n)
		s.next = make([]float64, n)
		s.cur[s.idx(1+rank%nx, 1+rank%ny, 1+rank%nz)] = 1000
	}
	return s
}

// idx addresses the ghosted local grid; interior points are 1..n.
func (s *state) idx(i, j, k int) int {
	return i + j*(s.nx+2) + k*(s.nx+2)*(s.ny+2)
}

// neighbor returns the world rank of the process-grid neighbour in the
// given direction (periodic).
func (s *state) neighbor(dx, dy, dz int) int {
	cfg := s.cfg
	x := (s.px + dx + cfg.PX) % cfg.PX
	y := (s.py + dy + cfg.PY) % cfg.PY
	z := (s.pz + dz + cfg.PZ) % cfg.PZ
	return x + y*cfg.PX + z*cfg.PX*cfg.PY
}

// computeIteration runs (or models) one stencil sweep over the cube.
func (s *state) computeIteration(env *mpi.Env) {
	env.Compute(float64(s.cfg.PointsPerRank()) * s.cfg.PointCost)
	if !s.cfg.RealCompute {
		return
	}
	a := s.cfg.Alpha
	for k := 1; k <= s.nz; k++ {
		for j := 1; j <= s.ny; j++ {
			for i := 1; i <= s.nx; i++ {
				c := s.idx(i, j, k)
				u := s.cur[c]
				s.next[c] = u + a*(s.cur[c-1]+s.cur[c+1]+
					s.cur[c-(s.nx+2)]+s.cur[c+(s.nx+2)]+
					s.cur[c-(s.nx+2)*(s.ny+2)]+s.cur[c+(s.nx+2)*(s.ny+2)]-6*u)
			}
		}
	}
	s.cur, s.next = s.next, s.cur
}

// direction describes one of the six halo faces.
type direction struct {
	dx, dy, dz int
	tag        int
}

// directions lists the six face exchanges; tags pair opposite directions
// so a rank's send in +x matches its neighbour's receive in -x.
var directions = []direction{
	{+1, 0, 0, 0}, {-1, 0, 0, 1},
	{0, +1, 0, 2}, {0, -1, 0, 3},
	{0, 0, +1, 4}, {0, 0, -1, 5},
}

// oppositeTag returns the tag the neighbour uses for the reverse direction.
func oppositeTag(tag int) int { return tag ^ 1 }

// faceSize returns the byte size of the face payload in a direction.
func (s *state) faceSize(d direction) int {
	switch {
	case d.dx != 0:
		return 8 * s.ny * s.nz
	case d.dy != 0:
		return 8 * s.nx * s.nz
	default:
		return 8 * s.nx * s.ny
	}
}

// haloExchange swaps boundary faces with the six neighbours: receives are
// posted first, then sends, then everything completes — the standard
// deadlock-free pattern. In modelled mode the messages carry sizes only.
func (s *state) haloExchange(env *mpi.Env, world *mpi.Comm) {
	reqs := make([]*mpi.Request, 0, 12)
	recvs := make([]*mpi.Request, 0, 6)
	for _, d := range directions {
		req, err := world.Irecv(s.neighbor(d.dx, d.dy, d.dz), oppositeTag(d.tag))
		if err != nil {
			panic(fmt.Sprintf("heat: halo irecv: %v", err))
		}
		recvs = append(recvs, req)
		reqs = append(reqs, req)
	}
	for _, d := range directions {
		var req *mpi.Request
		var err error
		if s.cfg.RealCompute {
			req, err = world.Isend(s.neighbor(d.dx, d.dy, d.dz), d.tag, s.packFace(d))
		} else {
			req, err = world.IsendN(s.neighbor(d.dx, d.dy, d.dz), d.tag, s.faceSize(d))
		}
		if err != nil {
			panic(fmt.Sprintf("heat: halo isend: %v", err))
		}
		reqs = append(reqs, req)
	}
	if err := world.Waitall(reqs); err != nil {
		panic(fmt.Sprintf("heat: halo waitall: %v", err))
	}
	if s.cfg.RealCompute {
		for i, d := range directions {
			msg, err := world.Wait(recvs[i])
			if err != nil {
				panic(fmt.Sprintf("heat: halo wait: %v", err))
			}
			s.unpackFace(d, msg.Data)
		}
	}
}

// packFace serialises the boundary layer the neighbour in direction d
// needs (this rank's outermost interior plane facing d).
func (s *state) packFace(d direction) []byte {
	buf := make([]byte, 0, s.faceSize(d))
	put := func(v float64) []byte {
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	switch {
	case d.dx != 0:
		i := 1
		if d.dx > 0 {
			i = s.nx
		}
		for k := 1; k <= s.nz; k++ {
			for j := 1; j <= s.ny; j++ {
				buf = put(s.cur[s.idx(i, j, k)])
			}
		}
	case d.dy != 0:
		j := 1
		if d.dy > 0 {
			j = s.ny
		}
		for k := 1; k <= s.nz; k++ {
			for i := 1; i <= s.nx; i++ {
				buf = put(s.cur[s.idx(i, j, k)])
			}
		}
	default:
		k := 1
		if d.dz > 0 {
			k = s.nz
		}
		for j := 1; j <= s.ny; j++ {
			for i := 1; i <= s.nx; i++ {
				buf = put(s.cur[s.idx(i, j, k)])
			}
		}
	}
	return buf
}

// unpackFace stores a received face into the ghost layer on the side the
// message came from. The neighbour in direction d sent its face toward us,
// so it fills our ghost plane on that side.
func (s *state) unpackFace(d direction, data []byte) {
	get := func(n int) float64 {
		return math.Float64frombits(binary.LittleEndian.Uint64(data[8*n:]))
	}
	n := 0
	switch {
	case d.dx != 0:
		i := 0
		if d.dx > 0 {
			i = s.nx + 1
		}
		for k := 1; k <= s.nz; k++ {
			for j := 1; j <= s.ny; j++ {
				s.cur[s.idx(i, j, k)] = get(n)
				n++
			}
		}
	case d.dy != 0:
		j := 0
		if d.dy > 0 {
			j = s.ny + 1
		}
		for k := 1; k <= s.nz; k++ {
			for i := 1; i <= s.nx; i++ {
				s.cur[s.idx(i, j, k)] = get(n)
				n++
			}
		}
	default:
		k := 0
		if d.dz > 0 {
			k = s.nz + 1
		}
		for j := 1; j <= s.ny; j++ {
			for i := 1; i <= s.nx; i++ {
				s.cur[s.idx(i, j, k)] = get(n)
				n++
			}
		}
	}
}

// encode serialises the interior grid for a checkpoint (configuration
// header plus the current data, per the paper).
func (s *state) encode() []byte {
	buf := make([]byte, 0, 8*s.cfg.PointsPerRank()+64)
	for _, v := range []int{s.cfg.NX, s.cfg.NY, s.cfg.NZ, s.cfg.PX, s.cfg.PY, s.cfg.PZ, s.rank, s.cfg.Iterations} {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	for k := 1; k <= s.nz; k++ {
		for j := 1; j <= s.ny; j++ {
			for i := 1; i <= s.nx; i++ {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.cur[s.idx(i, j, k)]))
			}
		}
	}
	return buf
}

// restore loads a checkpoint payload produced by encode.
func (s *state) restore(payload []byte) {
	if len(payload) != 64+8*s.cfg.PointsPerRank() {
		panic(fmt.Sprintf("heat: checkpoint payload is %d bytes, want %d", len(payload), 64+8*s.cfg.PointsPerRank()))
	}
	off := 64
	for k := 1; k <= s.nz; k++ {
		for j := 1; j <= s.ny; j++ {
			for i := 1; i <= s.nx; i++ {
				s.cur[s.idx(i, j, k)] = math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
				off += 8
			}
		}
	}
}

// TotalHeat sums the interior grid (a conserved quantity under the
// periodic stencil); the correctness tests check it.
func (s *state) TotalHeat() float64 {
	var sum float64
	for k := 1; k <= s.nz; k++ {
		for j := 1; j <= s.ny; j++ {
			for i := 1; i <= s.nx; i++ {
				sum += s.cur[s.idx(i, j, k)]
			}
		}
	}
	return sum
}
