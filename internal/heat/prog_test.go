package heat

import (
	"math"
	"testing"

	"xsim/internal/checkpoint"
	"xsim/internal/core"
	"xsim/internal/fault"
	"xsim/internal/fsmodel"
	"xsim/internal/mpi"
	"xsim/internal/netmodel"
	"xsim/internal/topology"
	"xsim/internal/vclock"
)

// testWorldH is testWorld with a multi-tier storage hierarchy.
func testWorldH(t *testing.T, n, workers int, store *fsmodel.Store, h fsmodel.Hierarchy, start vclock.Time, failures fault.Schedule) *mpi.World {
	t.Helper()
	eng, err := core.New(core.Config{NumVPs: n, Workers: workers, Lookahead: vclock.Microsecond, StartClock: start})
	if err != nil {
		t.Fatal(err)
	}
	net := &netmodel.Model{
		Topo:           topology.NewFullyConnected(n),
		System:         netmodel.LinkParams{Latency: vclock.Microsecond, Bandwidth: 1e9, DetectionTimeout: 10 * vclock.Millisecond},
		OnNode:         netmodel.LinkParams{Latency: vclock.Microsecond, Bandwidth: 1e9, DetectionTimeout: 10 * vclock.Millisecond},
		EagerThreshold: 256 * 1024,
	}
	w, err := mpi.NewWorld(eng, mpi.WorldConfig{Net: net, Proc: fastProc, FSStore: store, FSHierarchy: h})
	if err != nil {
		t.Fatal(err)
	}
	if err := fault.Apply(eng, failures); err != nil {
		t.Fatal(err)
	}
	return w
}

// compareRuns fails the test when two runs are observationally different.
func compareRuns(t *testing.T, label string, ref, got *core.Result) {
	t.Helper()
	if ref.Completed != got.Completed || ref.Failed != got.Failed || ref.Aborted != got.Aborted {
		t.Fatalf("%s: closure %d/%d/%d vs prog %d/%d/%d (completed/failed/aborted)",
			label, ref.Completed, ref.Failed, ref.Aborted, got.Completed, got.Failed, got.Aborted)
	}
	for r := range ref.FinalClocks {
		if ref.FinalClocks[r] != got.FinalClocks[r] || ref.Deaths[r] != got.Deaths[r] {
			t.Fatalf("%s rank %d: closure (%v, %v) vs prog (%v, %v)",
				label, r, ref.FinalClocks[r], ref.Deaths[r], got.FinalClocks[r], got.Deaths[r])
		}
	}
}

// TestHeatProgMatchesClosure checks the program-mode heat application is
// observationally identical to the closure one across the fidelity modes:
// modelled, real compute (with conservation), incremental checkpointing,
// and a tiered store.
func TestHeatProgMatchesClosure(t *testing.T) {
	const n = 8
	for _, tc := range []struct {
		name string
		mut  func(*Config)
		hier fsmodel.Hierarchy
	}{
		{name: "modelled", mut: func(c *Config) { c.RealCompute = false }},
		{name: "real", mut: func(c *Config) {}},
		{name: "incremental", mut: func(c *Config) {
			c.RealCompute = false
			c.CheckpointPayload = 1000
			c.DeltaFraction = 0.25
		}},
		{name: "tiered", mut: func(c *Config) { c.RealCompute = false }, hier: fsmodel.PaperTieredFS()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallReal(n)
			cfg.Iterations = 40
			cfg.CheckpointInterval = 10
			tc.mut(&cfg)

			newWorld := func(workers int, store *fsmodel.Store) *mpi.World {
				if tc.hier != nil {
					return testWorldH(t, n, workers, store, tc.hier, 0, nil)
				}
				return testWorld(t, n, workers, store, 0, nil)
			}

			var refHeat, progHeat float64
			if cfg.RealCompute {
				cfg.OnFinal = func(rank int, h float64) { refHeat += h }
			}
			ref, err := newWorld(1, fsmodel.NewStore()).Run(func(e *mpi.Env) { Run(e, cfg) })
			if err != nil {
				t.Fatal(err)
			}
			if ref.Completed != n {
				t.Fatalf("closure completed = %d", ref.Completed)
			}
			for _, workers := range []int{1, 2} {
				pcfg := cfg
				if cfg.RealCompute {
					progHeat = 0
					pcfg.OnFinal = func(rank int, h float64) { progHeat += h }
				}
				got, err := newWorld(workers, fsmodel.NewStore()).RunProgs(NewProg(pcfg))
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				compareRuns(t, tc.name, ref, got)
				if cfg.RealCompute && math.Abs(progHeat-refHeat) > 1e-9*math.Abs(refHeat) {
					t.Fatalf("workers=%d: prog total heat %v, closure %v", workers, progHeat, refHeat)
				}
			}
		})
	}
}

// TestHeatProgRestartMatchesClosure injects a failure (closure mode, which
// is deterministic at one worker), persists the surviving checkpoints, and
// checks closure and program restarts from identical stores agree —
// including the incremental-chain restore path.
func TestHeatProgRestartMatchesClosure(t *testing.T) {
	const n = 8
	cfg := smallReal(n)
	cfg.RealCompute = false
	cfg.Iterations = 60
	cfg.CheckpointInterval = 10
	cfg.CheckpointPayload = 1000
	cfg.DeltaFraction = 0.25

	// Two identical failure runs produce two identical stores, so the
	// restart comparison cannot cross-contaminate.
	crash := func() (*fsmodel.Store, vclock.Time) {
		store := fsmodel.NewStore()
		w := testWorld(t, n, 1, store, 0, fault.Schedule{{Rank: 2, At: vclock.Time(vclock.Millisecond)}})
		res, err := w.Run(func(e *mpi.Env) { Run(e, cfg) })
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed != 1 {
			t.Skipf("failure did not activate before completion: %+v", res)
		}
		checkpoint.CleanIncompleteSets(store, "heat", n)
		if len(checkpoint.Iterations(store, "heat")) == 0 {
			t.Skip("no surviving checkpoint set; failure struck too early")
		}
		return store, res.MaxClock
	}

	store1, start1 := crash()
	store2, start2 := crash()
	if start1 != start2 {
		t.Fatalf("crash runs diverged: %v vs %v", start1, start2)
	}

	tr1 := NewTracker(n)
	ccfg := cfg
	ccfg.Tracker = tr1
	ref, err := testWorld(t, n, 1, store1, start1, nil).Run(func(e *mpi.Env) { Run(e, ccfg) })
	if err != nil {
		t.Fatal(err)
	}
	tr2 := NewTracker(n)
	pcfg := cfg
	pcfg.Tracker = tr2
	got, err := testWorld(t, n, 1, store2, start2, nil).RunProgs(NewProg(pcfg))
	if err != nil {
		t.Fatal(err)
	}
	compareRuns(t, "restart", ref, got)
	for r := 0; r < n; r++ {
		if tr1.StartIterOf(r) != tr2.StartIterOf(r) {
			t.Errorf("rank %d: closure restarted from %d, prog from %d", r, tr1.StartIterOf(r), tr2.StartIterOf(r))
		}
		if tr2.PhaseOf(r) != PhaseDone {
			t.Errorf("rank %d: prog phase %v, want done", r, tr2.PhaseOf(r))
		}
	}
}
