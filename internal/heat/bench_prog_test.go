package heat

import (
	"fmt"
	"runtime"
	"testing"

	"xsim/internal/core"
	"xsim/internal/fsmodel"
	"xsim/internal/mpi"
	"xsim/internal/netmodel"
	"xsim/internal/topology"
	"xsim/internal/vclock"
)

// benchGrids maps a rank count to its process grid and global grid
// (2×2×2 points per rank, so modelled state stays tiny and the measured
// footprint is the simulator's own cost, not the workload's).
var benchGrids = map[int]struct{ px, py, pz, nx, ny, nz int }{
	4096:    {16, 16, 16, 32, 32, 32},
	65536:   {64, 64, 16, 128, 128, 32},
	262144:  {64, 64, 64, 128, 128, 128},
	1048576: {128, 128, 64, 256, 256, 128},
}

// benchConfig is the checkpointing scale workload, shaped like the
// paper's Table II loop: modelled compute every iteration, and a halo
// exchange, 1 MiB modelled checkpoint, global barrier, and checkpoint
// delete every CheckpointInterval — two full checkpoint rounds over four
// iterations. Rank 0 calls sample at the start of iteration 3, right
// after it leaves the first checkpoint's barrier, when every other rank
// is parked inside it — the steady state between checkpoint rounds.
func benchConfig(n int, sample func()) Config {
	g, ok := benchGrids[n]
	if !ok {
		panic(fmt.Sprintf("heat bench: no grid for %d ranks", n))
	}
	return Config{
		NX: g.nx, NY: g.ny, NZ: g.nz,
		PX: g.px, PY: g.py, PZ: g.pz,
		Iterations:         4,
		ExchangeInterval:   2,
		CheckpointInterval: 2,
		PointCost:          1000,
		CheckpointPayload:  1 << 20,
		onIter: func(rank, iter int) {
			if rank == 0 && iter == 3 {
				sample()
			}
		},
	}
}

// benchWorld builds a world sized for the scale benchmarks: tree
// collectives (the barrier per iteration must not be O(n)) and an
// in-memory checkpoint store with the free I/O model.
func benchWorld(b testing.TB, n int) *mpi.World {
	b.Helper()
	eng, err := core.New(core.Config{NumVPs: n})
	if err != nil {
		b.Fatal(err)
	}
	net := &netmodel.Model{
		Topo:           topology.NewFullyConnected(n),
		System:         netmodel.LinkParams{Latency: vclock.Microsecond, Bandwidth: 1e9, DetectionTimeout: 10 * vclock.Millisecond},
		OnNode:         netmodel.LinkParams{Latency: vclock.Microsecond, Bandwidth: 1e9, DetectionTimeout: 10 * vclock.Millisecond},
		EagerThreshold: 256 * 1024,
	}
	w, err := mpi.NewWorld(eng, mpi.WorldConfig{
		Net: net, Proc: fastProc,
		FSStore: fsmodel.NewStore(), FSModel: fsmodel.Model{},
		Collectives: mpi.Tree,
	})
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// memSampler reads the baseline before the world is built; sample
// (called from rank 0 mid-run, when all other ranks are parked) records
// the live heap+stack after a GC. The delta is the simulation's resident
// footprint — in closure mode it includes every parked rank's goroutine
// stack, in program mode only the parked state machines.
type memSampler struct {
	before, mid, after runtime.MemStats
}

// settle runs two collections so the second cycle finishes sweeping the
// first cycle's garbage: after one GC, HeapInuse still counts lazily
// swept spans and overstates the live footprint.
func settle(into *runtime.MemStats) {
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(into)
}

func (m *memSampler) baseline() { settle(&m.before) }

func (m *memSampler) sample() { settle(&m.mid) }

// final records the post-run footprint (world and checkpoint store still
// live): the retained cost once every rank has finished — the accounting
// the ci.sh memory gates use, matching mpi.BenchmarkBytesPerVP.
func (m *memSampler) final() { settle(&m.after) }

// bytesPerVP is the mid-run peak: heap spans plus goroutine stacks
// (HeapInuse + StackInuse). Spans count whole 8 KiB pages, so this
// includes the allocator geometry the message burst really occupies
// while the simulation runs — the honest "does it fit in RAM" number.
func (m *memSampler) bytesPerVP(n int) float64 {
	grew := (m.mid.HeapInuse + m.mid.StackInuse) - (m.before.HeapInuse + m.before.StackInuse)
	return float64(grew) / float64(n)
}

// retainedPerVP is the post-run live footprint: reachable bytes plus
// stacks (HeapAlloc + StackInuse). It deliberately excludes span
// geometry — after a run, partially-filled spans pinned by the halo
// exchange's request churn are reusable capacity for the next
// simulation, not per-rank state — so this is the number that scales
// with the rank count and the one the ci.sh gate holds.
func (m *memSampler) retainedPerVP(n int) float64 {
	grew := (m.after.HeapAlloc + m.after.StackInuse) - (m.before.HeapAlloc + m.before.StackInuse)
	return float64(grew) / float64(n)
}

// BenchmarkHeatCkptBytesPerVP measures the per-rank resident memory and
// throughput of the checkpointing heat workload, closure vs program
// mode. ci.sh gates the program-mode 262144-rank point: it must stay
// within the memory budget that makes the 256k–1M experiments feasible.
func BenchmarkHeatCkptBytesPerVP(b *testing.B) {
	const iters = 4
	measure := func(b *testing.B, n int, run func(w *mpi.World, cfg Config) error) {
		for i := 0; i < b.N; i++ {
			var ms memSampler
			cfg := benchConfig(n, ms.sample)
			ms.baseline()
			w := benchWorld(b, n)
			start := b.Elapsed()
			if err := run(w, cfg); err != nil {
				b.Fatal(err)
			}
			elapsed := (b.Elapsed() - start).Seconds()
			ms.final()
			b.ReportMetric(ms.bytesPerVP(n), "bytes/vp")
			b.ReportMetric(ms.retainedPerVP(n), "retained-bytes/vp")
			b.ReportMetric(float64(n)*float64(iters)/elapsed, "rankstep/s")
			runtime.KeepAlive(w)
		}
	}
	for _, n := range []int{4096, 65536} {
		n := n
		b.Run(fmt.Sprintf("closure/ranks=%d", n), func(b *testing.B) {
			measure(b, n, func(w *mpi.World, cfg Config) error {
				_, err := w.Run(func(e *mpi.Env) { Run(e, cfg) })
				return err
			})
		})
	}
	for _, n := range []int{4096, 65536, 262144, 1048576} {
		n := n
		b.Run(fmt.Sprintf("prog/ranks=%d", n), func(b *testing.B) {
			measure(b, n, func(w *mpi.World, cfg Config) error {
				_, err := w.RunProgs(NewProg(cfg))
				return err
			})
		})
	}
}
